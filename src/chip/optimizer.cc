#include "chip/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/units.hh"

namespace neurometer {

double
solveClockForTops(const ChipConfig &cfg, double target_tops)
{
    requireConfig(target_tops > 0.0, "TOPS target must be positive");

    // Peak ops/cycle is architectural: TU/RT geometry only.
    const CoreConfig &cc = cfg.core;
    const double ops_per_cycle_core =
        cc.numTU * 2.0 * double(cc.tu.rows) * cc.tu.cols +
        cc.numRT * 2.0 * double(cc.rt.inputs);
    const double ops_per_cycle = ops_per_cycle_core * cfg.numCores();
    requireConfig(ops_per_cycle > 0.0, "architecture has no compute units");

    const double freq = target_tops * units::tera / ops_per_cycle;

    // Verify timing closure by building at that clock. ChipModel throws
    // ConfigError when a component cannot reach it.
    ChipConfig probe = cfg;
    probe.freqHz = freq;
    ChipModel chip(probe);
    requireModel(std::abs(chip.peakTops() - target_tops) <
                     1e-6 * target_tops + 1e-9,
                 "clock solve missed the TOPS target");
    return freq;
}

std::vector<std::pair<int, int>>
candidateGrids(int max_cores)
{
    std::vector<std::pair<int, int>> grids;
    for (int ty = 1; ty <= 64; ty *= 2) {
        for (int tx : {ty, ty / 2}) {
            if (tx < 1)
                continue;
            if (tx * ty > max_cores)
                continue;
            grids.emplace_back(tx, ty);
        }
    }
    // Ascending core count; (tx==ty) before (ty/2, ty) at equal count.
    std::sort(grids.begin(), grids.end(),
              [](const auto &a, const auto &b) {
                  const int ca = a.first * a.second;
                  const int cb = b.first * b.second;
                  if (ca != cb)
                      return ca < cb;
                  return a.first > b.first;
              });
    grids.erase(std::unique(grids.begin(), grids.end()), grids.end());
    return grids;
}

GridSearchResult
maximizeCores(const ChipConfig &base, int tu_length, int tu_per_core,
              const DesignConstraints &constraints)
{
    GridSearchResult best;
    best.point.tuLength = tu_length;
    best.point.tuPerCore = tu_per_core;

    for (const auto &[tx, ty] : candidateGrids()) {
        DesignPoint dp;
        dp.tuLength = tu_length;
        dp.tuPerCore = tu_per_core;
        dp.tx = tx;
        dp.ty = ty;

        ChipConfig cfg = applyDesignPoint(base, dp);
        std::optional<ChipModel> chip;
        try {
            chip.emplace(cfg);
        } catch (const ConfigError &) {
            continue; // timing or banking infeasible at this grid
        }

        if (chip->areaMm2() > constraints.areaBudgetMm2)
            continue; // a sibling grid shape may still fit
        if (chip->tdpW() > constraints.powerBudgetW)
            continue;
        if (chip->peakTops() >
            constraints.topsUpperBound * (1.0 + 1e-6)) {
            continue; // overshoots the peak-TOPS cap
        }

        if (!best.feasible || chip->peakTops() > best.peakTops ||
            (chip->peakTops() == best.peakTops &&
             chip->areaMm2() < best.areaMm2)) {
            best.point = dp;
            best.peakTops = chip->peakTops();
            best.areaMm2 = chip->areaMm2();
            best.tdpW = chip->tdpW();
            best.feasible = true;
        }
    }
    return best;
}

ChipModel
buildChip(const ChipConfig &base, const DesignPoint &dp)
{
    return ChipModel(applyDesignPoint(base, dp));
}

} // namespace neurometer
