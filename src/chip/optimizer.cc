#include "chip/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/units.hh"

namespace neurometer {

double
solveClockForTops(const ChipConfig &cfg, double target_tops)
{
    requireConfig(target_tops > 0.0, "TOPS target must be positive");

    // Peak ops/cycle is architectural: TU/RT geometry only.
    const CoreConfig &cc = cfg.core;
    const double ops_per_cycle_core =
        cc.numTU * 2.0 * double(cc.tu.rows) * cc.tu.cols +
        cc.numRT * 2.0 * double(cc.rt.inputs);
    const double ops_per_cycle = ops_per_cycle_core * cfg.numCores();
    requireConfig(ops_per_cycle > 0.0, "architecture has no compute units");

    const double freq = target_tops * units::tera / ops_per_cycle;

    // Verify timing closure by building at that clock. ChipModel throws
    // ConfigError when a component cannot reach it.
    ChipConfig probe = cfg;
    probe.freqHz = freq;
    ChipModel chip(probe);
    requireModel(std::abs(chip.peakTops() - target_tops) <
                     1e-6 * target_tops + 1e-9,
                 "clock solve missed the TOPS target");
    return freq;
}

std::vector<std::pair<int, int>>
candidateGrids(int max_cores)
{
    std::vector<std::pair<int, int>> grids;
    for (int ty = 1; ty <= 64; ty *= 2) {
        for (int tx : {ty, ty / 2}) {
            if (tx < 1)
                continue;
            if (tx * ty > max_cores)
                continue;
            grids.emplace_back(tx, ty);
        }
    }
    // Ascending core count; (tx==ty) before (ty/2, ty) at equal count.
    std::sort(grids.begin(), grids.end(),
              [](const auto &a, const auto &b) {
                  const int ca = a.first * a.second;
                  const int cb = b.first * b.second;
                  if (ca != cb)
                      return ca < cb;
                  return a.first > b.first;
              });
    grids.erase(std::unique(grids.begin(), grids.end()), grids.end());
    return grids;
}

const char *
feasibilityStr(Feasibility f)
{
    switch (f) {
      case Feasibility::Feasible:
        return "feasible";
      case Feasibility::TimingInfeasible:
        return "timing_infeasible";
      case Feasibility::AreaOverBudget:
        return "area_over_budget";
      case Feasibility::PowerOverBudget:
        return "power_over_budget";
      case Feasibility::TopsOverCap:
        return "tops_over_cap";
    }
    return "unknown";
}

PointMetrics
measurePoint(const ChipConfig &cfg)
{
    PointMetrics m;
    std::optional<ChipModel> chip;
    try {
        chip.emplace(cfg);
    } catch (const ConfigError &e) {
        m.buildError = e.what(); // timing or banking infeasible
        return m;
    }
    m.buildOk = true;
    m.peakTops = chip->peakTops();
    m.areaMm2 = chip->areaMm2();
    m.tdpW = chip->tdpW();
    m.topsPerWatt = chip->peakTopsPerWatt();
    m.topsPerTco = chip->peakTopsPerTco();

    // Per-core subtrees are identical; find() returns the first
    // instance, so scale by the core count.
    const Breakdown &bd = chip->breakdown();
    const double total_a = bd.total().areaUm2;
    const double n_cores = cfg.numCores();
    m.memAreaPct = 100.0 * n_cores * bd.areaOfUm2("mem") / total_a;
    m.tuAreaPct =
        100.0 * n_cores * bd.areaOfUm2("tensor_units") / total_a;
    m.nocAreaPct = 100.0 *
                   (bd.areaOfUm2("noc") +
                    n_cores * bd.areaOfUm2("cdb")) /
                   total_a;
    m.ctrlAreaPct = 100.0 * n_cores *
                    (bd.areaOfUm2("scalar_unit") +
                     bd.areaOfUm2("ifu") + bd.areaOfUm2("lsu")) /
                    total_a;
    return m;
}

Feasibility
classify(const PointMetrics &m, const DesignConstraints &c)
{
    if (!m.buildOk)
        return Feasibility::TimingInfeasible;
    if (m.areaMm2 > c.areaBudgetMm2)
        return Feasibility::AreaOverBudget;
    if (m.tdpW > c.powerBudgetW)
        return Feasibility::PowerOverBudget;
    if (m.peakTops > c.topsUpperBound * (1.0 + 1e-6))
        return Feasibility::TopsOverCap;
    return Feasibility::Feasible;
}

GridSearchResult
maximizeCores(const ChipConfig &base, int tu_length, int tu_per_core,
              const DesignConstraints &constraints,
              const PointEvaluator &eval)
{
    GridSearchResult best;
    best.point.tuLength = tu_length;
    best.point.tuPerCore = tu_per_core;

    bool first_grid = true;
    for (const auto &[tx, ty] : candidateGrids()) {
        DesignPoint dp;
        dp.tuLength = tu_length;
        dp.tuPerCore = tu_per_core;
        dp.tx = tx;
        dp.ty = ty;

        const ChipConfig cfg = applyDesignPoint(base, dp);
        const PointMetrics m = eval ? eval(cfg) : measurePoint(cfg);
        const Feasibility why = classify(m, constraints);
        if (first_grid) {
            best.why = why; // smallest grid = the binding bottleneck
            first_grid = false;
        }
        if (why != Feasibility::Feasible)
            continue; // a sibling grid shape may still fit

        if (!best.feasible || m.peakTops > best.peakTops ||
            (m.peakTops == best.peakTops &&
             m.areaMm2 < best.areaMm2)) {
            best.point = dp;
            best.peakTops = m.peakTops;
            best.areaMm2 = m.areaMm2;
            best.tdpW = m.tdpW;
            best.feasible = true;
            best.why = Feasibility::Feasible;
        }
    }
    return best;
}

ChipModel
buildChip(const ChipConfig &base, const DesignPoint &dp)
{
    return ChipModel(applyDesignPoint(base, dp));
}

} // namespace neurometer
