/**
 * @file
 * Whole-chip assembly: cores, NoC, off-chip ports (DRAM/HBM, PCIe,
 * ICI), white space, TDP rollup, and the runtime power interface that
 * external performance simulators feed with activity statistics.
 */

#ifndef NEUROMETER_CHIP_CHIP_HH
#define NEUROMETER_CHIP_CHIP_HH

#include <memory>

#include "chip/config.hh"
#include "chip/core.hh"
#include "common/breakdown.hh"

namespace neurometer {

/**
 * Runtime activity statistics, as average rates over a run. These are
 * exactly the "runtime statistics" inputs of the paper's Fig. 1 —
 * produced by an external performance simulator (our perf/ module or
 * any other through this interface).
 */
struct RuntimeStats
{
    double tuOpsPerS = 0.0;       ///< arithmetic ops retired on TUs
    double rtOpsPerS = 0.0;
    double vuOpsPerS = 0.0;
    double memReadBytesPerS = 0.0;
    double memWriteBytesPerS = 0.0;
    double vregBytesPerS = 0.0;
    double cdbBytesPerS = 0.0;
    double nocByteHopsPerS = 0.0;
    double offchipBytesPerS = 0.0;
};

/** The fully evaluated chip. */
class ChipModel
{
  public:
    explicit ChipModel(const ChipConfig &cfg);

    const ChipConfig &config() const { return _cfg; }
    const TechNode &tech() const { return *_tech; }
    const CoreModel &core() const { return *_core; }

    /**
     * Full-activity breakdown: "cores" (replicated core trees), "noc",
     * "offchip" (dram/pcie/ici), "white_space".
     */
    const Breakdown &breakdown() const { return _bd; }

    /** Die area including white space (mm^2). */
    double areaMm2() const { return _areaMm2; }

    /** Thermal design power: activity-factored dynamic + leakage (W). */
    double tdpW() const { return _tdpW; }

    /** Peak arithmetic throughput in TOPS (10^12 ops/s). */
    double peakTops() const;

    /** Peak-performance efficiency metrics. */
    double peakTopsPerWatt() const { return peakTops() / tdpW(); }
    /** TOPS/TCO proxy: TOPS / (mm^4 * W); see DESIGN.md. */
    double peakTopsPerTco() const;

    /** Runtime power for measured activity (paper Fig. 1 right path). */
    Power runtimePower(const RuntimeStats &stats) const;

    /** Minimum cycle the slowest component supports. */
    double minCycleS() const;

    /** Energy costs per event, for external simulators. */
    const CoreEnergies &coreEnergies() const { return _core->energies(); }
    double nocEnergyPerByteHopJ() const { return _nocEnergyPerByteHop; }
    double offchipEnergyPerByteJ() const { return _offchipEnergyPerByte; }

  private:
    ChipConfig _cfg;
    std::unique_ptr<TechNode> _tech;
    std::unique_ptr<CoreModel> _core;
    Breakdown _bd{"chip"};
    double _areaMm2 = 0.0;
    double _tdpW = 0.0;
    double _minCycleS = 0.0;
    double _nocEnergyPerByteHop = 0.0;
    double _offchipEnergyPerByte = 0.0;
    Power _leakage;
    double _idleDynamicW = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_CHIP_CHIP_HH
