/**
 * @file
 * Core-level assembly: IFU + LSU + EXU (TUs/RTs, VU, VReg, CDB) + SU +
 * the core's slice of the distributed on-chip Mem (paper Fig. 6).
 * Dependent hardware is derived here: VU lane count and VReg width
 * follow the TU array length; VReg ports follow the functional-unit
 * count (2R+1W each); Mem banking/ports are searched from the
 * throughput the compute units demand.
 */

#ifndef NEUROMETER_CHIP_CORE_HH
#define NEUROMETER_CHIP_CORE_HH

#include <memory>
#include <vector>

#include "chip/config.hh"
#include "common/breakdown.hh"
#include "components/cdb.hh"
#include "components/reduction_tree.hh"
#include "components/tensor_unit.hh"
#include "components/vector_regfile.hh"
#include "components/vector_unit.hh"

namespace neurometer {

/** Per-access / per-op energies the runtime analysis consumes. */
struct CoreEnergies
{
    double tuPerOpJ = 0.0;       ///< per arithmetic op (MAC = 2 ops)
    double rtPerOpJ = 0.0;
    double vuPerOpJ = 0.0;
    double memReadPerByteJ = 0.0;
    double memWritePerByteJ = 0.0;
    double vregPerByteJ = 0.0;
    double cdbPerByteJ = 0.0;
};

/** One accelerator core, fully derived and evaluated. */
class CoreModel
{
  public:
    CoreModel(const TechNode &tech, const ChipConfig &cfg);

    /**
     * Full-activity PAT tree. Children: "exu" (with "tensor_units",
     * "reduction_trees", "vector_unit", "vector_regfile", "cdb"),
     * "mem", "ifu", "lsu", "scalar_unit".
     */
    const Breakdown &breakdown() const { return _bd; }

    double minCycleS() const { return _minCycleS; }

    /** Peak arithmetic ops per cycle from TUs + RTs (paper's TOPS). */
    double peakOpsPerCycle() const { return _peakOpsPerCycle; }
    double peakOpsPerS() const { return _peakOpsPerCycle * _freqHz; }

    const CoreEnergies &energies() const { return _energies; }

    /** Resolved dependent parameters (for reporting / tests). */
    int vuLanes() const { return _vuLanes; }
    int vregReadPorts() const { return _vregReadPorts; }
    int vregWritePorts() const { return _vregWritePorts; }
    const MemoryDesign &memDesign() const { return _memDesign; }

    double areaUm2() const { return _bd.total().areaUm2; }

  private:
    double _freqHz = 0.0;
    Breakdown _bd{"core"};
    double _minCycleS = 0.0;
    double _peakOpsPerCycle = 0.0;
    CoreEnergies _energies;
    int _vuLanes = 0;
    int _vregReadPorts = 0;
    int _vregWritePorts = 0;
    MemoryDesign _memDesign;
};

} // namespace neurometer

#endif // NEUROMETER_CHIP_CORE_HH
