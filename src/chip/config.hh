/**
 * @file
 * User-facing configuration of a NeuroMeter accelerator chip.
 *
 * Per the paper's input interface, users specify only high-level
 * architecture (core count, TU geometry, data types, memory capacity,
 * bandwidth targets) plus circuit/technology parameters; NeuroMeter
 * derives the dependent hardware (VU lanes, VReg ports/width, memory
 * banking, NoC link width) automatically.
 */

#ifndef NEUROMETER_CHIP_CONFIG_HH
#define NEUROMETER_CHIP_CONFIG_HH

#include <string>

#include "components/noc.hh"
#include "components/periph.hh"
#include "components/reduction_tree.hh"
#include "components/tensor_unit.hh"
#include "memory/sram_array.hh"

namespace neurometer {

/** Per-core architecture configuration. */
struct CoreConfig
{
    int numTU = 1;               ///< N in the paper's (X, N, Tx, Ty)
    TensorUnitConfig tu;

    int numRT = 0;               ///< reduction trees per core
    ReductionTreeConfig rt;

    /** VU lanes; 0 = auto (matches TU array length). */
    int vuLanes = 0;
    int vregEntries = 32;
    /** TUs share one VReg read/write port group instead of 2R1W each. */
    bool shareVregPorts = false;

    bool hasScalarUnit = true;

    /** Per-core Mem slice; 0 = auto from ChipConfig::totalMemBytes. */
    double memSliceBytes = 0.0;
    /** Mem access width; 0 = auto (TU array length * operand bytes). */
    double memBlockBytes = 0.0;
};

/** TDP activity factors (fraction of full-utilization dynamic power). */
struct ActivityFactors
{
    double tensorUnit = 0.95;
    double reductionTree = 0.95;
    double vectorUnit = 0.50;
    double vectorRegfile = 0.80;
    double mem = 0.90;
    double cdb = 0.60;
    double noc = 0.50;
    double scalarUnit = 0.35;
    double ifu = 0.30;
    double lsu = 0.50;
    double offchip = 0.85;
};

/** Whole-chip configuration. */
struct ChipConfig
{
    /** @name Technology / circuit level */
    /** @{ */
    double nodeNm = 28.0;
    double vddVolt = 0.0;    ///< 0 = node default
    double freqHz = 700e6;
    /** @} */

    /** @name Chip architecture level */
    /** @{ */
    int tx = 1;              ///< tiles in x
    int ty = 1;              ///< tiles in y
    CoreConfig core;

    /** Auto topology: ring when Tx*Ty <= 4, 2D mesh when >= 8. */
    bool autoNocTopology = true;
    NocTopology nocTopology = NocTopology::Mesh2D;
    double nocBisectionBwBytesPerS = 256e9;

    double totalMemBytes = 32.0 * 1024.0 * 1024.0;
    MemCellType memCell = MemCellType::SRAM;
    /** Run Mem as a cache hierarchy instead of a scratchpad. */
    bool memCacheMode = false;

    DramKind dram = DramKind::HBM2;
    double offchipBwBytesPerS = 700e9;
    int pcieLanes = 16;
    int iciLinks = 0;
    double iciGbpsPerDirection = 496.0;

    /** Fraction of die left as white space / unmodeled blocks. */
    double whiteSpaceFraction = 0.21;
    /** @} */

    ActivityFactors tdpActivity;

    int numCores() const { return tx * ty; }

    /** @name Config files (key = value, dotted schema paths)
     * Parsing and echoing are driven by the field registry in
     * chip/config_schema.hh; every registered field is accepted as a
     * `name = value` line and unknown keys, malformed or out-of-bounds
     * values, and duplicate keys throw ConfigError citing
     * `source:line`. */
    /** @{ */
    /** Parse a config file; diagnostics cite the path + line. */
    static ChipConfig fromFile(const std::string &path);
    /** Parse config text; `source` labels diagnostics. */
    static ChipConfig fromString(const std::string &text,
                                 const std::string &source = "<string>");
    /** Complete field echo; fromString(toString()) is exact (the
     *  round-trip reproduces an identical eval-cache key). */
    std::string toString() const;
    /** @} */
};

/** A (X, N, Tx, Ty) tuple from the paper's design space (Sec. III-A). */
struct DesignPoint
{
    int tuLength = 64; ///< X
    int tuPerCore = 1; ///< N
    int tx = 1;
    int ty = 1;

    std::string
    str() const
    {
        return "(" + std::to_string(tuLength) + "," +
               std::to_string(tuPerCore) + "," + std::to_string(tx) +
               "," + std::to_string(ty) + ")";
    }

    bool operator==(const DesignPoint &) const = default;
};

/** Apply a design point onto a base chip config. */
ChipConfig applyDesignPoint(ChipConfig base, const DesignPoint &dp);

/** Validate a config, throwing ConfigError with a precise message. */
void validate(const ChipConfig &cfg);

} // namespace neurometer

#endif // NEUROMETER_CHIP_CONFIG_HH
