#include "chip/core.hh"

#include <algorithm>
#include <cmath>

#include "circuit/logic.hh"
#include "common/error.hh"
#include "components/periph.hh"
#include "components/scalar_unit.hh"
#include "memory/design_cache.hh"
#include "memory/fifo.hh"

namespace neurometer {

CoreModel::CoreModel(const TechNode &tech, const ChipConfig &cfg)
{
    const CoreConfig &cc = cfg.core;
    _freqHz = cfg.freqHz;
    const double cycle = 1.0 / cfg.freqHz;

    // ---- Tensor units -------------------------------------------------
    TensorUnitConfig tu_cfg = cc.tu;
    tu_cfg.freqHz = cfg.freqHz;
    std::unique_ptr<TensorUnitModel> tu;
    Breakdown tus("tensor_units");
    if (cc.numTU > 0) {
        tu = std::make_unique<TensorUnitModel>(tech, tu_cfg);
        for (int i = 0; i < cc.numTU; ++i) {
            Breakdown one = tu->breakdown();
            one.setName("tu" + std::to_string(i));
            tus.addChild(std::move(one));
        }
        _peakOpsPerCycle += cc.numTU * tu->peakOpsPerCycle();
        _energies.tuPerOpJ = tu->energyPerMacJ() / 2.0;
    }

    // ---- Reduction trees -------------------------------------------------
    ReductionTreeConfig rt_cfg = cc.rt;
    rt_cfg.freqHz = cfg.freqHz;
    std::unique_ptr<ReductionTreeModel> rt;
    Breakdown rts("reduction_trees");
    if (cc.numRT > 0) {
        rt = std::make_unique<ReductionTreeModel>(tech, rt_cfg);
        for (int i = 0; i < cc.numRT; ++i) {
            Breakdown one = rt->breakdown();
            one.setName("rt" + std::to_string(i));
            rts.addChild(std::move(one));
        }
        _peakOpsPerCycle += cc.numRT * rt->peakOpsPerCycle();
        _energies.rtPerOpJ = rt->breakdown().total().power.dynamicW /
                             (rt->peakOpsPerS());
    }

    // ---- Vector unit (lanes follow the TU array length) -----------------
    _vuLanes = cc.vuLanes > 0
        ? cc.vuLanes
        : (cc.numTU > 0 ? cc.tu.cols
                        : std::max(8, cc.rt.inputs / 8));
    VectorUnitConfig vu_cfg;
    vu_cfg.lanes = _vuLanes;
    vu_cfg.laneType = cc.numTU > 0 ? cc.tu.accType : cc.rt.accType;
    vu_cfg.freqHz = cfg.freqHz;
    VectorUnitModel vu(tech, vu_cfg);
    _energies.vuPerOpJ =
        vu.breakdown().total().power.dynamicW / vu.peakOpsPerS();

    // ---- Vector register file -------------------------------------------
    // 2R+1W per functional unit; TUs optionally share one port group.
    const int fu_groups =
        1 /*VU*/ + (cc.shareVregPorts
                        ? (cc.numTU + cc.numRT > 0 ? 1 : 0)
                        : cc.numTU + cc.numRT);
    _vregReadPorts = 2 * fu_groups;
    _vregWritePorts = fu_groups;
    VectorRegfileConfig vr_cfg;
    vr_cfg.lanes = _vuLanes;
    vr_cfg.laneBits = 32;
    vr_cfg.entries = cc.vregEntries;
    vr_cfg.readPorts = _vregReadPorts;
    vr_cfg.writePorts = _vregWritePorts;
    vr_cfg.freqHz = cfg.freqHz;
    VectorRegfileModel vreg(tech, vr_cfg);
    const double vreg_block_bytes = double(_vuLanes) * vr_cfg.laneBits / 8.0;
    _energies.vregPerByteJ = vreg.readEnergyJ() / vreg_block_bytes;

    // ---- On-chip memory slice ---------------------------------------------
    const int mul_bytes =
        std::max(1, dataTypeBits(cc.numTU > 0 ? cc.tu.mulType
                                              : cc.rt.mulType) / 8);
    double block_bytes = cc.memBlockBytes;
    if (block_bytes <= 0.0) {
        block_bytes = std::max(
            32.0, double(cc.numTU > 0 ? cc.tu.rows : cc.rt.inputs) *
                      mul_bytes);
    }
    double slice_bytes = cc.memSliceBytes;
    if (slice_bytes <= 0.0)
        slice_bytes = cfg.totalMemBytes / cfg.numCores();

    MemoryRequest mem_req;
    mem_req.capacityBytes = slice_bytes;
    mem_req.blockBytes = block_bytes;
    mem_req.cell = cfg.memCell;
    mem_req.cacheMode = cfg.memCacheMode;
    mem_req.readPorts = 1;
    mem_req.writePorts = 1;
    mem_req.searchPorts = true;
    mem_req.targetCycleS = cycle;
    // Operand streaming demand: each TU consumes one block per cycle;
    // results write back at roughly half that rate.
    const double streams =
        std::max(1, cc.numTU + cc.numRT);
    mem_req.targetReadBwBytesPerS =
        streams * block_bytes * cfg.freqHz;
    mem_req.targetWriteBwBytesPerS =
        0.5 * streams * block_bytes * cfg.freqHz;
    _memDesign = memoryDesignCache().optimize(tech, mem_req);
    _energies.memReadPerByteJ = _memDesign.readEnergyJ / block_bytes;
    _energies.memWritePerByteJ = _memDesign.writeEnergyJ / block_bytes;

    PAT mem_pat;
    mem_pat.areaUm2 = _memDesign.areaUm2;
    mem_pat.power.dynamicW =
        cfg.freqHz * (_memDesign.readPorts * _memDesign.readEnergyJ +
                      _memDesign.writePorts * _memDesign.writeEnergyJ);
    mem_pat.power.leakageW = _memDesign.leakageW;
    mem_pat.timing.delayS = _memDesign.accessDelayS;
    mem_pat.timing.cycleS = _memDesign.randomCycleS / _memDesign.banks;

    // ---- Central data bus ----------------------------------------------------
    const double exu_area = tus.total().areaUm2 + rts.total().areaUm2 +
                            vu.breakdown().total().areaUm2 +
                            vreg.breakdown().total().areaUm2;
    CdbConfig cdb_cfg;
    cdb_cfg.busBits = std::max(64, _vuLanes * 16);
    cdb_cfg.attachedUnits = cc.numTU + cc.numRT + 2; // VU + Mem
    cdb_cfg.routedAreaUm2 = exu_area + mem_pat.areaUm2;
    cdb_cfg.freqHz = cfg.freqHz;
    CdbModel cdb(tech, cdb_cfg);
    _energies.cdbPerByteJ = cdb.energyPerByteJ();

    // ---- Instruction fetch unit (lightweight, per the paper) -------------
    Breakdown ifu("ifu");
    {
        LogicBlock fetch;
        fetch.gates = 20000.0;
        fetch.depthFo4 = 12.0;
        fetch.activity = 0.25;
        PAT p = logicPAT(tech, fetch, cfg.freqHz);
        p += scratchpadPAT(tech, 4096.0, 128, cfg.freqHz, 0.5, true);
        ifu.self() = p;
    }

    // ---- Load/store unit: DMA to off-chip + staging queues ----------------
    Breakdown lsu("lsu");
    {
        const double offchip_slice =
            cfg.offchipBwBytesPerS / cfg.numCores();
        Breakdown dma = dmaEngine(tech, offchip_slice, cfg.freqHz);
        lsu.addChild(std::move(dma));
        FifoConfig stage;
        stage.entries = 16;
        stage.widthBits = int(block_bytes) * 8;
        stage.freqHz = cfg.freqHz;
        stage.activity = 0.6;
        lsu.addLeaf("staging", fifoPAT(tech, stage));
    }

    // ---- Scalar unit ------------------------------------------------------------
    std::unique_ptr<ScalarUnitModel> su;
    if (cc.hasScalarUnit) {
        ScalarUnitConfig su_cfg;
        su_cfg.freqHz = cfg.freqHz;
        su = std::make_unique<ScalarUnitModel>(tech, su_cfg);
    }

    // ---- Assemble the tree ------------------------------------------------------
    Breakdown exu("exu");
    if (cc.numTU > 0)
        exu.addChild(std::move(tus));
    if (cc.numRT > 0)
        exu.addChild(std::move(rts));
    exu.addChild(vu.breakdown());
    exu.addChild(vreg.breakdown());
    exu.addChild(cdb.breakdown());

    _bd = Breakdown("core");
    _bd.addChild(std::move(exu));
    _bd.addChild(Breakdown("mem", mem_pat));
    _bd.addChild(std::move(ifu));
    _bd.addChild(std::move(lsu));
    if (su)
        _bd.addChild(su->breakdown());

    // ---- Timing closure ---------------------------------------------------------
    _minCycleS = 0.0;
    if (tu)
        _minCycleS = std::max(_minCycleS, tu->minCycleS());
    if (rt)
        _minCycleS = std::max(_minCycleS, rt->minCycleS());
    _minCycleS = std::max({_minCycleS, vu.minCycleS(), vreg.minCycleS(),
                           cdb.minCycleS()});
    _bd.self().timing.cycleS = _minCycleS;
}

} // namespace neurometer
