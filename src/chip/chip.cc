#include "chip/chip.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/units.hh"
#include "components/noc.hh"
#include "components/periph.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer {

namespace {

/** Scale the dynamic power of a named subtree by an activity factor. */
void
applyActivity(Breakdown &root, const std::string &name, double factor)
{
    // Walk mutable children by rebuilding is clumsy; instead scale in
    // place through a recursive non-const find.
    struct Walker
    {
        static Breakdown *
        find(Breakdown &node, const std::string &target)
        {
            if (node.name() == target)
                return &node;
            for (auto &c :
                 const_cast<std::vector<Breakdown> &>(node.children())) {
                if (Breakdown *hit = find(c, target))
                    return hit;
            }
            return nullptr;
        }
    };
    if (Breakdown *hit = Walker::find(root, name))
        hit->scaleDynamic(factor);
}

} // namespace

ChipModel::ChipModel(const ChipConfig &cfg) : _cfg(cfg)
{
    obs::TraceScope build_span("chip.build");
    static const obs::Counter builds = obs::counter("chip.builds");
    static const obs::Histogram build_hist =
        obs::histogram("chip.build_s");
    builds.inc();
    obs::ScopedTimer timer(build_hist);
    faultInjector().at("chip.build");

    {
        // Phase 1: validation, tech resolution, and the core model —
        // the expensive part (every memory search lives under here).
        obs::TraceScope phase("chip.core_model");
        validate(cfg);
        _tech = std::make_unique<TechNode>(
            TechNode::make(cfg.nodeNm, cfg.vddVolt));
        _core = std::make_unique<CoreModel>(*_tech, cfg);
    }

    requireConfig(_core->minCycleS() <= 1.0 / cfg.freqHz * 1.0001,
                  "core cannot close timing at the requested clock; "
                  "slowest component needs " +
                      std::to_string(_core->minCycleS() * 1e12) + " ps");

    obs::TraceScope assemble_span("chip.assemble");

    const int n_cores = cfg.numCores();

    // ---- Cores --------------------------------------------------------
    Breakdown cores("cores");
    for (int i = 0; i < n_cores; ++i) {
        Breakdown one = _core->breakdown();
        one.setName("core" + std::to_string(i));
        cores.addChild(std::move(one));
    }
    const double tile_area = _core->areaUm2();

    // ---- NoC ------------------------------------------------------------
    NocConfig noc_cfg;
    noc_cfg.tx = cfg.tx;
    noc_cfg.ty = cfg.ty;
    noc_cfg.topology = cfg.autoNocTopology
        ? (n_cores <= 4 ? NocTopology::Ring : NocTopology::Mesh2D)
        : cfg.nocTopology;
    noc_cfg.bisectionBwBytesPerS = cfg.nocBisectionBwBytesPerS;
    noc_cfg.freqHz = cfg.freqHz;
    noc_cfg.tileAreaUm2 = tile_area;
    std::unique_ptr<NocModel> noc;
    Breakdown noc_bd("noc");
    if (n_cores > 1) {
        noc = std::make_unique<NocModel>(*_tech, noc_cfg);
        noc_bd = noc->breakdown();
        _nocEnergyPerByteHop = noc->energyPerByteHopJ();
    }

    // ---- Clock distribution ---------------------------------------------
    // The paper amortizes the clock network into components; we carry it
    // as an explicit tree sized from the sequenced (core) power so the
    // amortization is reproducible.
    PAT clock;
    {
        const Power core_power = cores.total().power;
        clock.power.dynamicW = 0.10 * core_power.dynamicW;
        clock.power.leakageW = 0.02 * core_power.leakageW;
        clock.areaUm2 = 0.008 * cores.total().areaUm2;
    }

    // ---- Off-chip interfaces ----------------------------------------------
    Breakdown offchip("offchip");
    offchip.addChild(dramPort(*_tech, cfg.dram, cfg.offchipBwBytesPerS));
    if (cfg.pcieLanes > 0)
        offchip.addChild(pcieInterface(*_tech, cfg.pcieLanes));
    if (cfg.iciLinks > 0) {
        offchip.addChild(iciInterface(*_tech, cfg.iciLinks,
                                      cfg.iciGbpsPerDirection));
    }
    _offchipEnergyPerByte =
        offchip.total().power.dynamicW / cfg.offchipBwBytesPerS;

    // ---- Assembly -------------------------------------------------------------
    _bd = Breakdown("chip");
    _bd.addChild(std::move(cores));
    if (n_cores > 1)
        _bd.addChild(std::move(noc_bd));
    _bd.addLeaf("clock_tree", clock);
    _bd.addChild(std::move(offchip));

    const double modeled_area = _bd.total().areaUm2;
    const double ws_area = modeled_area * cfg.whiteSpaceFraction /
                           (1.0 - cfg.whiteSpaceFraction);
    PAT ws;
    ws.areaUm2 = ws_area;
    _bd.addLeaf("white_space", ws);

    _areaMm2 = um2ToMm2(_bd.total().areaUm2);
    _minCycleS = std::max(_core->minCycleS(),
                          noc ? noc->minCycleS() : 0.0);
    _bd.self().timing.cycleS = _minCycleS;

    // ---- TDP: per-component activity factors -------------------------------
    obs::TraceScope tdp_span("chip.tdp");
    Breakdown tdp_tree = _bd;
    const ActivityFactors &af = cfg.tdpActivity;
    applyActivity(tdp_tree, "noc", af.noc);
    applyActivity(tdp_tree, "offchip", af.offchip);
    // Factors inside every core instance.
    for (int i = 0; i < n_cores; ++i) {
        const std::string cn = "core" + std::to_string(i);
        struct Walker
        {
            static Breakdown *
            find(Breakdown &node, const std::string &target)
            {
                if (node.name() == target)
                    return &node;
                for (auto &c : const_cast<std::vector<Breakdown> &>(
                         node.children())) {
                    if (Breakdown *hit = find(c, target))
                        return hit;
                }
                return nullptr;
            }
        };
        Breakdown *core_node = Walker::find(tdp_tree, cn);
        requireModel(core_node != nullptr, "core node missing in TDP tree");
        applyActivity(*core_node, "tensor_units", af.tensorUnit);
        applyActivity(*core_node, "reduction_trees", af.reductionTree);
        applyActivity(*core_node, "vector_unit", af.vectorUnit);
        applyActivity(*core_node, "vector_regfile", af.vectorRegfile);
        applyActivity(*core_node, "cdb", af.cdb);
        applyActivity(*core_node, "mem", af.mem);
        applyActivity(*core_node, "ifu", af.ifu);
        applyActivity(*core_node, "lsu", af.lsu);
        applyActivity(*core_node, "scalar_unit", af.scalarUnit);
    }
    const Power tdp_power = tdp_tree.total().power;
    _tdpW = tdp_power.total();

    const Power full = _bd.total().power;
    _leakage.leakageW = full.leakageW;
    // Clock/idle floor: un-gated clock load burns a fraction of the
    // full-activity dynamic power even at zero utilization.
    _idleDynamicW = 0.06 * full.dynamicW;
}

double
ChipModel::peakTops() const
{
    return _core->peakOpsPerS() * _cfg.numCores() / units::tera;
}

double
ChipModel::peakTopsPerTco() const
{
    const double a = _areaMm2;
    return peakTops() / (a * a * tdpW()) * 1e6; // scaled for readability
}

Power
ChipModel::runtimePower(const RuntimeStats &s) const
{
    const CoreEnergies &e = _core->energies();
    Power p;
    p.dynamicW = s.tuOpsPerS * e.tuPerOpJ + s.rtOpsPerS * e.rtPerOpJ +
                 s.vuOpsPerS * e.vuPerOpJ +
                 s.memReadBytesPerS * e.memReadPerByteJ +
                 s.memWriteBytesPerS * e.memWritePerByteJ +
                 s.vregBytesPerS * e.vregPerByteJ +
                 s.cdbBytesPerS * e.cdbPerByteJ +
                 s.nocByteHopsPerS * _nocEnergyPerByteHop +
                 s.offchipBytesPerS * _offchipEnergyPerByte +
                 _idleDynamicW;
    p.leakageW = _leakage.leakageW;
    return p;
}

double
ChipModel::minCycleS() const
{
    return _minCycleS;
}

} // namespace neurometer
