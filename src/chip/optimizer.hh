/**
 * @file
 * Design-space optimization on top of ChipModel:
 *  - clock-rate search for a peak-TOPS target (the paper's default
 *    optimization input), and
 *  - core-count maximization under area/power budgets with a TOPS
 *    upper bound (the Sec. III datacenter sweep).
 */

#ifndef NEUROMETER_CHIP_OPTIMIZER_HH
#define NEUROMETER_CHIP_OPTIMIZER_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chip/chip.hh"

namespace neurometer {

/** Budgets/limits for the datacenter sweep (paper Table I). */
struct DesignConstraints
{
    double areaBudgetMm2 = 500.0;
    double powerBudgetW = 300.0;
    double topsUpperBound = 92.0;
};

/**
 * Why a design point is (in)feasible under a DesignConstraints set.
 * Checks run in the listed order and report the first violation, so a
 * point that busts several budgets carries the earliest one.
 */
enum class Feasibility {
    Feasible,
    /** Timing or banking closure failed: ChipModel refused the config. */
    TimingInfeasible,
    AreaOverBudget,
    PowerOverBudget,
    /** Peak throughput overshoots the TOPS upper bound. */
    TopsOverCap,
};

/** Short lower_snake name for a Feasibility value (stable, for export). */
const char *feasibilityStr(Feasibility f);

/**
 * Constraint-independent metrics of one fully resolved ChipConfig —
 * everything a sweep needs without re-building the ChipModel. This is
 * the unit of work the explore/ evaluation cache memoizes; feasibility
 * against any DesignConstraints is classified afterwards (classify()),
 * so one cached evaluation serves every constraint set.
 */
struct PointMetrics
{
    /** False when ChipModel construction threw ConfigError. */
    bool buildOk = false;
    /** The ConfigError message when !buildOk (timing/banking detail). */
    std::string buildError;

    double peakTops = 0.0;
    double areaMm2 = 0.0;
    double tdpW = 0.0;
    double topsPerWatt = 0.0;
    double topsPerTco = 0.0;

    /** @name Area shares (percent of total die, incl. white space) */
    /** @{ */
    double memAreaPct = 0.0;  ///< all cores' Mem slices
    double tuAreaPct = 0.0;   ///< all cores' tensor units
    double nocAreaPct = 0.0;  ///< chip NoC + all cores' CDBs
    double ctrlAreaPct = 0.0; ///< scalar units + IFUs + LSUs
    /** @} */

    bool operator==(const PointMetrics &) const = default;
};

/** Build the ChipModel for `cfg` and roll it up into PointMetrics. */
PointMetrics measurePoint(const ChipConfig &cfg);

/** First constraint a measured point violates (Feasible when none). */
Feasibility classify(const PointMetrics &m, const DesignConstraints &c);

/**
 * Evaluation hook for the grid search: maps a resolved config to its
 * metrics. The explore/ engine injects a memoizing wrapper here; the
 * default is a plain measurePoint() call.
 */
using PointEvaluator = std::function<PointMetrics(const ChipConfig &)>;

/**
 * Find the minimum clock rate that delivers `target_tops` of peak
 * throughput for the given architecture, verifying timing closure.
 *
 * @returns the clock (Hz).
 * @throws ConfigError when no component-feasible clock reaches it.
 */
double solveClockForTops(const ChipConfig &cfg, double target_tops);

/**
 * Candidate (Tx, Ty) grids: power-of-two counts with Tx == Ty or
 * Tx == Ty/2 (paper Sec. III-A), ascending in core count.
 */
std::vector<std::pair<int, int>> candidateGrids(int max_cores = 256);

/** Result of maximizing the core count for one (X, N) design point. */
struct GridSearchResult
{
    DesignPoint point;
    double peakTops = 0.0;
    double areaMm2 = 0.0;
    double tdpW = 0.0;
    bool feasible = false;
    /**
     * Feasible when any grid fit. Otherwise: the violation of the
     * *smallest* candidate grid — the shape most likely to fit — which
     * names the binding bottleneck (area vs power vs timing) for this
     * (X, N) point.
     */
    Feasibility why = Feasibility::TimingInfeasible;
};

/**
 * Maximize total core count for TU length X / count N under the
 * constraints; returns the chosen grid and its headline metrics.
 *
 * @param eval optional memoizing evaluator (see PointEvaluator); the
 *             default measures each candidate grid from scratch.
 */
GridSearchResult maximizeCores(const ChipConfig &base, int tu_length,
                               int tu_per_core,
                               const DesignConstraints &constraints,
                               const PointEvaluator &eval = {});

/** Build the chip for a design point (convenience wrapper). */
ChipModel buildChip(const ChipConfig &base, const DesignPoint &dp);

} // namespace neurometer

#endif // NEUROMETER_CHIP_OPTIMIZER_HH
