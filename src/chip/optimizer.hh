/**
 * @file
 * Design-space optimization on top of ChipModel:
 *  - clock-rate search for a peak-TOPS target (the paper's default
 *    optimization input), and
 *  - core-count maximization under area/power budgets with a TOPS
 *    upper bound (the Sec. III datacenter sweep).
 */

#ifndef NEUROMETER_CHIP_OPTIMIZER_HH
#define NEUROMETER_CHIP_OPTIMIZER_HH

#include <memory>
#include <optional>
#include <vector>

#include "chip/chip.hh"

namespace neurometer {

/** Budgets/limits for the datacenter sweep (paper Table I). */
struct DesignConstraints
{
    double areaBudgetMm2 = 500.0;
    double powerBudgetW = 300.0;
    double topsUpperBound = 92.0;
};

/**
 * Find the minimum clock rate that delivers `target_tops` of peak
 * throughput for the given architecture, verifying timing closure.
 *
 * @returns the clock (Hz).
 * @throws ConfigError when no component-feasible clock reaches it.
 */
double solveClockForTops(const ChipConfig &cfg, double target_tops);

/**
 * Candidate (Tx, Ty) grids: power-of-two counts with Tx == Ty or
 * Tx == Ty/2 (paper Sec. III-A), ascending in core count.
 */
std::vector<std::pair<int, int>> candidateGrids(int max_cores = 256);

/** Result of maximizing the core count for one (X, N) design point. */
struct GridSearchResult
{
    DesignPoint point;
    double peakTops = 0.0;
    double areaMm2 = 0.0;
    double tdpW = 0.0;
    bool feasible = false;
};

/**
 * Maximize total core count for TU length X / count N under the
 * constraints; returns the chosen grid and its headline metrics.
 */
GridSearchResult maximizeCores(const ChipConfig &base, int tu_length,
                               int tu_per_core,
                               const DesignConstraints &constraints);

/** Build the chip for a design point (convenience wrapper). */
ChipModel buildChip(const ChipConfig &base, const DesignPoint &dp);

} // namespace neurometer

#endif // NEUROMETER_CHIP_OPTIMIZER_HH
