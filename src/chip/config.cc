#include "chip/config.hh"

#include "common/error.hh"

namespace neurometer {

ChipConfig
applyDesignPoint(ChipConfig base, const DesignPoint &dp)
{
    base.core.numTU = dp.tuPerCore;
    base.core.tu.rows = dp.tuLength;
    base.core.tu.cols = dp.tuLength;
    base.tx = dp.tx;
    base.ty = dp.ty;
    return base;
}

void
validate(const ChipConfig &cfg)
{
    requireConfig(cfg.tx >= 1 && cfg.ty >= 1, "Tx/Ty must be >= 1");
    requireConfig(cfg.freqHz > 0.0, "clock rate must be positive");
    requireConfig(cfg.nodeNm >= 7.0 && cfg.nodeNm <= 65.0,
                  "technology node outside supported range");
    requireConfig(cfg.core.numTU + cfg.core.numRT >= 1,
                  "a core needs at least one TU or RT");
    requireConfig(cfg.core.numTU >= 0 && cfg.core.numRT >= 0,
                  "negative unit counts");
    requireConfig(cfg.core.tu.rows > 0 && cfg.core.tu.cols > 0,
                  "TU dimensions must be positive");
    requireConfig(cfg.totalMemBytes > 0.0, "on-chip memory must be > 0");
    requireConfig(cfg.whiteSpaceFraction >= 0.0 &&
                      cfg.whiteSpaceFraction < 0.9,
                  "white space fraction out of range [0, 0.9)");
    requireConfig(cfg.offchipBwBytesPerS > 0.0,
                  "off-chip bandwidth must be > 0");
}

} // namespace neurometer
