#include "chip/config.hh"

#include "chip/config_schema.hh"
#include "common/error.hh"

namespace neurometer {

ChipConfig
applyDesignPoint(ChipConfig base, const DesignPoint &dp)
{
    base.core.numTU = dp.tuPerCore;
    base.core.tu.rows = dp.tuLength;
    base.core.tu.cols = dp.tuLength;
    base.tx = dp.tx;
    base.ty = dp.ty;
    return base;
}

void
validate(const ChipConfig &cfg)
{
    // Per-field bounds live in the schema — one table serves
    // validation, parsing, and the eval-cache key alike.
    for (const FieldDef<ChipConfig> &f : chipSchema().fields())
        f.check(cfg);

    // Cross-field rules the per-field registry cannot express.
    requireConfig(cfg.core.numTU + cfg.core.numRT >= 1,
                  "a core needs at least one TU or RT");
}

} // namespace neurometer
