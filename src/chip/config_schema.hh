/**
 * @file
 * The ChipConfig field schema: one registry enumerating every user
 * input of the model — name (dotted path), kind, bounds, and doc —
 * that powers the cache key (explore/eval_cache), validate(), the
 * config-file parser (ChipConfig::fromFile/fromString/toString), and
 * name-addressed sweep axes (explore/sweep).
 *
 * Completeness contract: every ChipConfig/CoreConfig/TensorUnitConfig/
 * ReductionTreeConfig/ActivityFactors member is either registered here
 * or explicitly listed as derived in config_schema.cc. sizeof
 * static_asserts there trip the build when a struct gains a field, and
 * tests/test_config_schema.cc asserts every registered field perturbs
 * the cache key.
 */

#ifndef NEUROMETER_CHIP_CONFIG_SCHEMA_HH
#define NEUROMETER_CHIP_CONFIG_SCHEMA_HH

#include "chip/config.hh"
#include "common/fields.hh"

namespace neurometer {

/**
 * The singleton ChipConfig registry. Field order is the serialization
 * ABI: the eval-cache key walks it front to back, so reordering or
 * interleaving entries invalidates persisted keys (in-process caches
 * only notice as a cold start, but keep order appends-only anyway).
 */
const FieldRegistry<ChipConfig> &chipSchema();

} // namespace neurometer

#endif // NEUROMETER_CHIP_CONFIG_SCHEMA_HH
