#include "chip/config_schema.hh"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/error.hh"

namespace neurometer {

/*
 * Completeness tripwires: when one of these fires you added (or
 * resized) a config field. Register it in buildChipSchema() below —
 * or, if it is derived rather than user-set, add it to the "derived,
 * not registered" note — then update the expected size. Skipping the
 * registration silently corrupts eval-cache keys and config files,
 * which is exactly what these asserts exist to prevent.
 */
static_assert(sizeof(TensorUnitConfig) == 64,
              "TensorUnitConfig changed: update buildChipSchema()");
static_assert(sizeof(ReductionTreeConfig) == 24,
              "ReductionTreeConfig changed: update buildChipSchema()");
static_assert(sizeof(CoreConfig) == 136,
              "CoreConfig changed: update buildChipSchema()");
static_assert(sizeof(ActivityFactors) == 88,
              "ActivityFactors changed: update buildChipSchema()");
static_assert(sizeof(ChipConfig) == 328,
              "ChipConfig changed: update buildChipSchema()");

namespace {

std::vector<std::string>
dataTypeNames()
{
    // Index order must match enum class DataType (circuit/arith.hh).
    return {"int8", "int16", "int32", "bf16", "fp16", "fp32"};
}

FieldRegistry<ChipConfig>
buildChipSchema()
{
    FieldRegistry<ChipConfig> reg;

    // Accessor-based registration: #path doubles as the dotted name,
    // so a typo'd path is a compile error, not a mismatched key.
#define NM_FIELD(path, bounds, doc)                                    \
    reg.add(makeField<ChipConfig>(                                     \
        #path, bounds, doc,                                            \
        [](auto &c) -> auto & { return c.path; }))
#define NM_ENUM(path, names, doc)                                      \
    reg.add(makeEnumField<ChipConfig>(                                 \
        #path, doc, [](auto &c) -> auto & { return c.path; }, names))

    /*
     * Registration order is the cache-key ABI (see config_schema.hh):
     * it reproduces the historical hand-rolled serializer layout —
     * tech/circuit, chip architecture, core, TDP activity factors.
     *
     * Derived, not registered: core.tu.freqHz and core.rt.freqHz are
     * overwritten with ChipConfig::freqHz during core assembly, so
     * they are not independent inputs of a chip evaluation.
     */

    // Technology / circuit level.
    NM_FIELD(nodeNm, inRange(7.0, 65.0),
             "technology node (nm)");
    NM_FIELD(vddVolt, atLeast(0.0),
             "supply voltage (V); 0 = node default");
    NM_FIELD(freqHz, greaterThan(0.0), "clock rate (Hz)");

    // Chip architecture level.
    NM_FIELD(tx, atLeast(1), "tiles in x");
    NM_FIELD(ty, atLeast(1), "tiles in y");
    NM_FIELD(autoNocTopology, unbounded(),
             "pick ring/mesh automatically from the core count");
    NM_ENUM(nocTopology,
            (std::vector<std::string>{"bus", "ring", "mesh2d",
                                      "htree"}),
            "NoC topology when autoNocTopology = false");
    NM_FIELD(nocBisectionBwBytesPerS, greaterThan(0.0),
             "NoC bisection bandwidth target (B/s)");
    NM_FIELD(totalMemBytes, greaterThan(0.0),
             "total on-chip memory (bytes)");
    NM_ENUM(memCell,
            (std::vector<std::string>{"sram", "dff", "edram"}),
            "on-chip memory cell type");
    NM_FIELD(memCacheMode, unbounded(),
             "run Mem as a cache hierarchy instead of a scratchpad");
    NM_ENUM(dram, (std::vector<std::string>{"ddr3", "ddr4", "hbm2"}),
            "off-chip DRAM kind");
    NM_FIELD(offchipBwBytesPerS, greaterThan(0.0),
             "off-chip bandwidth (B/s)");
    NM_FIELD(pcieLanes, atLeast(0), "PCIe lane count");
    NM_FIELD(iciLinks, atLeast(0),
             "inter-chip interconnect link count");
    NM_FIELD(iciGbpsPerDirection, atLeast(0.0),
             "ICI bandwidth per link per direction (Gb/s)");
    NM_FIELD(whiteSpaceFraction, rightOpen(0.0, 0.9),
             "fraction of die left as white space");

    // Core architecture.
    NM_FIELD(core.numTU, atLeast(0), "tensor units per core (N)");
    NM_FIELD(core.tu.rows, atLeast(1), "TU systolic-array rows (X)");
    NM_FIELD(core.tu.cols, atLeast(1), "TU systolic-array columns");
    NM_ENUM(core.tu.mulType, dataTypeNames(),
            "TU multiplier operand type");
    NM_ENUM(core.tu.accType, dataTypeNames(),
            "TU accumulation type");
    NM_ENUM(core.tu.interconnect,
            (std::vector<std::string>{"unicast", "multicast"}),
            "inner-TU interconnect style");
    NM_ENUM(core.tu.dataflow,
            (std::vector<std::string>{"weight_stationary",
                                      "output_stationary"}),
            "systolic dataflow (unicast TUs)");
    NM_FIELD(core.tu.perCellSramBytes, atLeast(0.0),
             "per-cell SRAM scratchpad beyond pipeline registers");
    NM_FIELD(core.tu.perCellRegBytes, atLeast(0.0),
             "per-cell register bytes; 0 = auto from dataflow");
    NM_FIELD(core.tu.perCellCtrlGates, atLeast(0.0),
             "per-cell control logic (NAND2-equivalent gates)");
    NM_FIELD(core.tu.ioFifoDepth, atLeast(0),
             "TU edge I/O FIFO depth (entries)");
    NM_FIELD(core.numRT, atLeast(0), "reduction trees per core");
    NM_FIELD(core.rt.inputs, atLeast(1),
             "RT input count (power of two)");
    NM_ENUM(core.rt.mulType, dataTypeNames(),
            "RT multiplier operand type");
    NM_ENUM(core.rt.accType, dataTypeNames(),
            "RT accumulation type");
    NM_FIELD(core.rt.pipelineEveryLayers, atLeast(0),
             "pipeline flops every this many RT layers (0 = none)");
    NM_FIELD(core.vuLanes, atLeast(0),
             "vector-unit lanes; 0 = auto (TU array length)");
    NM_FIELD(core.vregEntries, atLeast(1),
             "vector register file entries");
    NM_FIELD(core.shareVregPorts, unbounded(),
             "TUs share one VReg port group instead of 2R1W each");
    NM_FIELD(core.hasScalarUnit, unbounded(),
             "include the scalar control core");
    NM_FIELD(core.memSliceBytes, atLeast(0.0),
             "per-core Mem slice (bytes); 0 = auto from totalMemBytes");
    NM_FIELD(core.memBlockBytes, atLeast(0.0),
             "Mem access width (bytes); 0 = auto");

    // TDP activity factors (fractions of full-utilization power).
    NM_FIELD(tdpActivity.tensorUnit, inRange(0.0, 1.0),
             "TU TDP activity factor");
    NM_FIELD(tdpActivity.reductionTree, inRange(0.0, 1.0),
             "RT TDP activity factor");
    NM_FIELD(tdpActivity.vectorUnit, inRange(0.0, 1.0),
             "VU TDP activity factor");
    NM_FIELD(tdpActivity.vectorRegfile, inRange(0.0, 1.0),
             "VReg TDP activity factor");
    NM_FIELD(tdpActivity.mem, inRange(0.0, 1.0),
             "Mem TDP activity factor");
    NM_FIELD(tdpActivity.cdb, inRange(0.0, 1.0),
             "CDB TDP activity factor");
    NM_FIELD(tdpActivity.noc, inRange(0.0, 1.0),
             "NoC TDP activity factor");
    NM_FIELD(tdpActivity.scalarUnit, inRange(0.0, 1.0),
             "scalar-unit TDP activity factor");
    NM_FIELD(tdpActivity.ifu, inRange(0.0, 1.0),
             "instruction-fetch TDP activity factor");
    NM_FIELD(tdpActivity.lsu, inRange(0.0, 1.0),
             "load/store TDP activity factor");
    NM_FIELD(tdpActivity.offchip, inRange(0.0, 1.0),
             "off-chip interface TDP activity factor");

#undef NM_FIELD
#undef NM_ENUM
    return reg;
}

/** "config error: " prefix of a nested ConfigError being re-thrown
 *  with a file/line location prepended. */
std::string
stripConfigPrefix(const char *what)
{
    const std::string msg = what;
    const std::string prefix = "config error: ";
    return msg.rfind(prefix, 0) == 0 ? msg.substr(prefix.size()) : msg;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

} // namespace

const FieldRegistry<ChipConfig> &
chipSchema()
{
    static const FieldRegistry<ChipConfig> schema = buildChipSchema();
    return schema;
}

ChipConfig
ChipConfig::fromString(const std::string &text, const std::string &source)
{
    const FieldRegistry<ChipConfig> &schema = chipSchema();
    ChipConfig cfg;
    std::unordered_set<std::string> seen;

    // No legitimate config line approaches this; a longer one means a
    // binary or corrupted file, which should fail with a line number
    // instead of being quoted back verbatim in an error message.
    constexpr std::size_t kMaxLineBytes = 4096;

    std::istringstream in(text);
    std::string raw;
    for (int line = 1; std::getline(in, raw); ++line) {
        const auto loc = [&] {
            return source + ":" + std::to_string(line) + ": ";
        };
        if (raw.size() > kMaxLineBytes)
            throw ConfigError(loc() + "line too long (" +
                              std::to_string(raw.size()) + " bytes, max " +
                              std::to_string(kMaxLineBytes) + ")");
        // '#' starts a comment anywhere on the line.
        const std::size_t hash = raw.find('#');
        const std::string stmt =
            trim(hash == std::string::npos ? raw : raw.substr(0, hash));
        if (stmt.empty())
            continue;

        const std::size_t eq = stmt.find('=');
        if (eq == std::string::npos)
            throw ConfigError(loc() + "expected 'key = value', got '" +
                              stmt + "'");
        const std::string key = trim(stmt.substr(0, eq));
        const std::string value = trim(stmt.substr(eq + 1));
        if (key.empty())
            throw ConfigError(loc() + "missing key before '='");
        if (value.empty())
            throw ConfigError(loc() + "missing value for key '" + key +
                              "'");

        const FieldDef<ChipConfig> *field = schema.find(key);
        if (!field)
            throw ConfigError(loc() + "unknown key '" + key +
                              "' (run `neurometer fields` for the "
                              "schema)");
        if (!seen.insert(key).second)
            throw ConfigError(loc() + "duplicate key '" + key + "'");

        try {
            field->setText(cfg, value);
        } catch (const ConfigError &e) {
            throw ConfigError(loc() + stripConfigPrefix(e.what()));
        }
    }
    return cfg;
}

ChipConfig
ChipConfig::fromFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    requireConfig(f.good(), "cannot open config file " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    return fromString(buf.str(), path);
}

std::string
ChipConfig::toString() const
{
    // Exact echo: every field, schema order, values rendered so that
    // fromString(toString()) reproduces an identical cache key.
    std::string out =
        "# NeuroMeter chip configuration (complete field echo)\n";
    for (const FieldDef<ChipConfig> &f : chipSchema().fields())
        out += f.name + " = " + f.getText(*this) + "\n";
    return out;
}

} // namespace neurometer
