/**
 * @file
 * Minimal ascii table writer used by the benchmark harnesses to print the
 * rows/series of the paper's tables and figures.
 */

#ifndef NEUROMETER_COMMON_TABLE_HH
#define NEUROMETER_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace neurometer {

/** Column-aligned ascii table with a header row. */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render with aligned columns and a separator under the header. */
    std::string str() const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace neurometer

#endif // NEUROMETER_COMMON_TABLE_HH
