#include "common/error.hh"

#include "common/fault.hh"

namespace neurometer {

const char *
errorCategoryStr(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::None:
        return "none";
      case ErrorCategory::Config:
        return "config";
      case ErrorCategory::Model:
        return "model";
      case ErrorCategory::Io:
        return "io";
      case ErrorCategory::Cancelled:
        return "cancelled";
      case ErrorCategory::Injected:
        return "injected";
      case ErrorCategory::Unknown:
        return "unknown";
    }
    return "unknown";
}

ErrorCategory
errorCategoryFromStr(const std::string &s)
{
    if (s == "none")
        return ErrorCategory::None;
    if (s == "config")
        return ErrorCategory::Config;
    if (s == "model")
        return ErrorCategory::Model;
    if (s == "io")
        return ErrorCategory::Io;
    if (s == "cancelled")
        return ErrorCategory::Cancelled;
    if (s == "injected")
        return ErrorCategory::Injected;
    return ErrorCategory::Unknown;
}

PointError
captureCurrentException(const std::string &site)
{
    PointError e;
    e.site = site;
    try {
        throw; // re-raise the in-flight exception to dispatch on type
    } catch (const InjectedFault &f) {
        e.category = ErrorCategory::Injected;
        e.site = f.site(); // keep the site the fault was planted at
        e.message = f.what();
    } catch (const ConfigError &f) {
        e.category = ErrorCategory::Config;
        e.message = f.what();
    } catch (const ModelError &f) {
        e.category = ErrorCategory::Model;
        e.message = f.what();
    } catch (const IoError &f) {
        e.category = ErrorCategory::Io;
        e.message = f.what();
    } catch (const CancelledError &f) {
        e.category = ErrorCategory::Cancelled;
        e.message = f.what();
    } catch (const std::exception &f) {
        e.category = ErrorCategory::Unknown;
        e.message = f.what();
    } catch (...) {
        e.category = ErrorCategory::Unknown;
        e.message = "non-standard exception";
    }
    return e;
}

} // namespace neurometer
