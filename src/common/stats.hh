/**
 * @file
 * Small statistics helpers used when averaging metrics across workloads
 * (the paper uses arithmetic means for throughput and geometric means for
 * ratio metrics such as utilization and efficiency).
 */

#ifndef NEUROMETER_COMMON_STATS_HH
#define NEUROMETER_COMMON_STATS_HH

#include <cmath>
#include <span>

#include "common/error.hh"

namespace neurometer {

/** Arithmetic mean; requires a non-empty input. */
inline double
arithMean(std::span<const double> xs)
{
    requireModel(!xs.empty(), "arithMean of empty span");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Geometric mean; requires non-empty, strictly positive input. */
inline double
geoMean(std::span<const double> xs)
{
    requireModel(!xs.empty(), "geoMean of empty span");
    double log_sum = 0.0;
    for (double x : xs) {
        requireModel(x > 0.0, "geoMean of non-positive value");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Relative error of a modeled value against a reference. */
inline double
relError(double modeled, double reference)
{
    requireModel(reference != 0.0, "relError against zero reference");
    return (modeled - reference) / reference;
}

} // namespace neurometer

#endif // NEUROMETER_COMMON_STATS_HH
