/**
 * @file
 * A minimal JSON value model: recursive-descent parser plus an
 * escape-correct compact serializer.
 *
 * Grown out of the test-only reader in tests/test_obs.cc and promoted
 * here so the serve/ wire protocol, the obs/ emitters, and the tests
 * all share one implementation. The scope is deliberately small —
 * everything NeuroMeter itself emits or accepts parses with it — not
 * a general standards-lawyer JSON library:
 *   - numbers are doubles (64-bit ints above 2^53 lose precision),
 *   - \uXXXX escapes outside Latin-1 are truncated to their low byte
 *     (NeuroMeter only ever emits \u00XX for control characters),
 *   - object keys keep insertion order and duplicates are preserved
 *     (find() returns the first).
 *
 * dump() emits a single line with no unescaped control characters, so
 * a dumped value is always safe to frame as one newline-delimited
 * message (see serve/net.hh).
 */

#ifndef NEUROMETER_COMMON_JSON_HH
#define NEUROMETER_COMMON_JSON_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace neurometer::json {

/** Malformed JSON text or a type-mismatched accessor. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg)
        : std::runtime_error("json error: " + msg)
    {}
};

/** One JSON value; which members are meaningful depends on `kind`. */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Value> items;                              ///< Array
    std::vector<std::pair<std::string, Value>> members;    ///< Object

    /** First member named `key`, or nullptr (object kinds only). */
    const Value *find(const std::string &key) const;

    /** @name Checked accessors (throw Error on a kind mismatch) */
    /** @{ */
    const std::string &asString() const;
    double asNumber() const;
    bool asBool() const;
    /** @} */

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Compact single-line serialization (see file comment). */
    std::string dump() const;

    /** @name Builders (for assembling responses by hand) */
    /** @{ */
    static Value null();
    static Value boolean_(bool b);
    static Value number_(double v);
    static Value string_(std::string s);
    static Value array_();
    static Value object_();
    /** Append a member (object kinds; no duplicate-key check). */
    Value &set(const std::string &key, Value v);
    /** Append an element (array kinds). */
    Value &push(Value v);
    /** @} */
};

/** Parse one complete JSON document; throws Error on malformed text
 *  (including trailing garbage after the value). */
Value parse(const std::string &text);

/** JSON string literal: quotes + escapes for `"` `\` and controls. */
std::string quote(const std::string &s);

/** JSON number with round-trip (%.17g) precision; non-finite values
 *  render as null (JSON has no inf/nan). */
std::string number(double v);

/** parse() + dump(): re-render pretty-printed JSON (manifests, the
 *  obs snapshot, export::toJson) onto a single wire-safe line. */
std::string compact(const std::string &text);

} // namespace neurometer::json

#endif // NEUROMETER_COMMON_JSON_HH
