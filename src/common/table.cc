#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hh"

namespace neurometer {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : _header(std::move(header))
{
    requireModel(!_header.empty(), "AsciiTable with empty header");
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    requireModel(row.size() == _header.size(),
                 "AsciiTable row arity mismatch");
    _rows.push_back(std::move(row));
}

std::string
AsciiTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
AsciiTable::str() const
{
    std::vector<size_t> widths(_header.size());
    for (size_t i = 0; i < _header.size(); ++i)
        widths[i] = _header[i].size();
    for (const auto &row : _rows)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : "  ")
               << std::setw(static_cast<int>(widths[i]))
               << (i == 0 ? std::left : std::right) << row[i];
            // setw/left-right interplay: re-apply alignment per column.
            os << std::right;
        }
        os << "\n";
    };

    emit(_header);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

} // namespace neurometer
