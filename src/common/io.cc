#include "common/io.hh"

#include <atomic>
#include <cstdio>
#include <fstream>

#include <unistd.h>

#include "common/error.hh"
#include "common/fault.hh"

namespace neurometer {

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    // Unique per process *and* per call: concurrent writers to the
    // same destination each stage their own temporary, and whichever
    // rename lands last wins whole.
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp = path + ".tmp." + std::to_string(getpid()) +
                            "." + std::to_string(seq.fetch_add(1));

    const auto fail = [&](const std::string &what) {
        std::remove(tmp.c_str());
        throw IoError(what);
    };

    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f.good())
            fail("cannot open " + tmp + " for writing");
        f << content;
        f.close();
        if (!f.good())
            fail("failed writing " + tmp);
    }

    try {
        faultInjector().at("io.write");
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fail("cannot rename " + tmp + " to " + path);
}

} // namespace neurometer
