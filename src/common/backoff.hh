/**
 * @file
 * Bounded exponential backoff with deterministic jitter.
 *
 * Used wherever a client retries a flaky rendezvous: workers
 * reconnecting to the coordinator, `neurometer metrics --url` racing a
 * daemon that is still binding its port, smoke scripts starting three
 * processes at once. The schedule is pure math — no sleeping, no
 * clocks — so callers own the waiting and tests can assert the exact
 * delays. Jitter is derived from a splitmix64 stream seeded by the
 * caller (typically stableHash64 of a worker name), which decorrelates
 * a fleet of workers without introducing nondeterminism into any
 * single one.
 */

#ifndef NEUROMETER_COMMON_BACKOFF_HH
#define NEUROMETER_COMMON_BACKOFF_HH

#include <cstdint>

namespace neurometer {

/**
 * The delay schedule: delay k is `initialS * multiplier^k`, capped at
 * `maxS`, then spread by up to +/- `jitter` (fractional) using a
 * deterministic per-seed stream. With jitter 0.25 and initial 0.05 the
 * first delays land around 50ms, 100ms, 200ms ... each within 25% of
 * nominal.
 */
class Backoff
{
  public:
    struct Options
    {
        double initialS = 0.05;   ///< first delay, seconds
        double maxS = 2.0;        ///< cap on the nominal delay
        double multiplier = 2.0;  ///< growth factor per attempt
        double jitter = 0.25;     ///< fractional spread, 0 = none
        std::uint64_t seed = 0;   ///< jitter stream seed
    };

    Backoff() = default;
    explicit Backoff(Options opts) : _opts(opts), _state(opts.seed) {}

    /** Delay in seconds for the next attempt; advances the schedule. */
    double
    nextS()
    {
        double nominal = _opts.initialS;
        for (unsigned k = 0; k < _attempt && nominal < _opts.maxS; ++k)
            nominal *= _opts.multiplier;
        if (nominal > _opts.maxS)
            nominal = _opts.maxS;
        ++_attempt;
        if (_opts.jitter <= 0.0)
            return nominal;
        // splitmix64 step -> uniform in [-1, 1) -> scale by jitter.
        _state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        const double unit =
            2.0 * (double(z >> 11) * 0x1.0p-53) - 1.0;
        return nominal * (1.0 + _opts.jitter * unit);
    }

    /** Attempts issued so far (== nextS() calls). */
    unsigned attempts() const { return _attempt; }

    /** Restart the schedule (after a successful rendezvous). */
    void
    reset()
    {
        _attempt = 0;
        _state = _opts.seed;
    }

    const Options &options() const { return _opts; }

  private:
    Options _opts{};
    unsigned _attempt = 0;
    std::uint64_t _state = 0;
};

} // namespace neurometer

#endif // NEUROMETER_COMMON_BACKOFF_HH
