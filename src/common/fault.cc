#include "common/fault.hh"

#include <algorithm>
#include <cstdlib>

namespace neurometer {

void
FaultInjector::arm(const std::string &site, Plan plan)
{
    std::lock_guard<std::mutex> lk(_mu);
    SiteState &s = _sites[site];
    s.plan = std::move(plan);
    s.hits = 0;
    s.injected = 0;
    s.active = true;
    _armed.store(true, std::memory_order_relaxed);
}

void
FaultInjector::armFromSpec(const std::string &spec)
{
    const std::size_t eq = spec.find('=');
    requireConfig(eq != std::string::npos && eq > 0 &&
                      eq + 1 < spec.size(),
                  "fault spec must be SITE=HITS or SITE=every:N, got '" +
                      spec + "'");
    const std::string site = spec.substr(0, eq);
    const std::string rule = spec.substr(eq + 1);

    Plan plan;
    const auto parse_u64 = [&](const std::string &text) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
        requireConfig(end && *end == '\0' && !text.empty(),
                      "bad number '" + text + "' in fault spec '" + spec +
                          "'");
        return std::uint64_t(v);
    };
    if (rule.rfind("every:", 0) == 0) {
        std::string n = rule.substr(6);
        const std::size_t plus = n.find('+');
        if (plus != std::string::npos) {
            plan.offset = parse_u64(n.substr(plus + 1));
            n = n.substr(0, plus);
        }
        plan.everyN = parse_u64(n);
        requireConfig(plan.everyN > 0,
                      "every:N needs N >= 1 in '" + spec + "'");
    } else {
        std::size_t b = 0;
        while (b <= rule.size()) {
            const std::size_t comma = rule.find(',', b);
            const std::size_t e =
                comma == std::string::npos ? rule.size() : comma;
            if (e > b)
                plan.failHits.push_back(parse_u64(rule.substr(b, e - b)));
            b = e + 1;
        }
        requireConfig(!plan.failHits.empty(),
                      "fault spec '" + spec + "' lists no hits");
    }
    arm(site, std::move(plan));
}

void
FaultInjector::disarm(const std::string &site)
{
    std::lock_guard<std::mutex> lk(_mu);
    const auto it = _sites.find(site);
    if (it != _sites.end())
        it->second.active = false;
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lk(_mu);
    _sites.clear();
    _armed.store(false, std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::hits(const std::string &site) const
{
    std::lock_guard<std::mutex> lk(_mu);
    const auto it = _sites.find(site);
    return it == _sites.end() ? 0 : it->second.hits;
}

std::uint64_t
FaultInjector::injected(const std::string &site) const
{
    std::lock_guard<std::mutex> lk(_mu);
    const auto it = _sites.find(site);
    return it == _sites.end() ? 0 : it->second.injected;
}

void
FaultInjector::atSlow(const char *site)
{
    std::uint64_t hit = 0;
    bool fail = false;
    {
        std::lock_guard<std::mutex> lk(_mu);
        const auto it = _sites.find(site);
        if (it == _sites.end() || !it->second.active)
            return;
        SiteState &s = it->second;
        hit = s.hits++;
        const Plan &p = s.plan;
        fail = std::find(p.failHits.begin(), p.failHits.end(), hit) !=
               p.failHits.end();
        fail = fail || (p.everyN > 0 && hit % p.everyN == p.offset);
        if (fail)
            ++s.injected;
    }
    if (fail)
        throw InjectedFault(site, hit);
}

FaultInjector &
faultInjector()
{
    static FaultInjector injector;
    return injector;
}

} // namespace neurometer
