/**
 * @file
 * Error-handling primitives.
 *
 * Following the gem5 fatal()/panic() distinction:
 *   - ConfigError is thrown for user-caused problems (invalid or
 *     unsatisfiable configuration) — the analog of fatal().
 *   - ModelError is thrown for internal inconsistencies that indicate a
 *     bug in NeuroMeter itself — the analog of panic().
 */

#ifndef NEUROMETER_COMMON_ERROR_HH
#define NEUROMETER_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace neurometer {

/** User-facing configuration error: bad or unsatisfiable inputs. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("config error: " + msg)
    {}
};

/** Internal modeling invariant violation: a NeuroMeter bug. */
class ModelError : public std::logic_error
{
  public:
    explicit ModelError(const std::string &msg)
        : std::logic_error("model error: " + msg)
    {}
};

/** Throw ConfigError unless a user-supplied condition holds. */
inline void
requireConfig(bool cond, const std::string &msg)
{
    if (!cond)
        throw ConfigError(msg);
}

/** Throw ModelError unless an internal invariant holds. */
inline void
requireModel(bool cond, const std::string &msg)
{
    if (!cond)
        throw ModelError(msg);
}

} // namespace neurometer

#endif // NEUROMETER_COMMON_ERROR_HH
