/**
 * @file
 * Error-handling primitives.
 *
 * Following the gem5 fatal()/panic() distinction:
 *   - ConfigError is thrown for user-caused problems (invalid or
 *     unsatisfiable configuration) — the analog of fatal().
 *   - ModelError is thrown for internal inconsistencies that indicate a
 *     bug in NeuroMeter itself — the analog of panic().
 *   - IoError is thrown when the filesystem fails underneath an
 *     otherwise valid request (exports, checkpoints, manifests).
 *
 * On top of the exception classes sits a structured taxonomy for
 * fault-tolerant sweeps: PointError records *what kind* of failure a
 * design point hit (category), *where* (site), and the message, so a
 * per-point failure survives into result rows, checkpoints, and run
 * manifests instead of aborting a multi-hour exploration.
 */

#ifndef NEUROMETER_COMMON_ERROR_HH
#define NEUROMETER_COMMON_ERROR_HH

#include <exception>
#include <stdexcept>
#include <string>

namespace neurometer {

/** User-facing configuration error: bad or unsatisfiable inputs. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("config error: " + msg)
    {}
};

/** Internal modeling invariant violation: a NeuroMeter bug. */
class ModelError : public std::logic_error
{
  public:
    explicit ModelError(const std::string &msg)
        : std::logic_error("model error: " + msg)
    {}
};

/** Filesystem failure underneath a valid request (write, rename). */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &msg)
        : std::runtime_error("io error: " + msg)
    {}
};

/** A run was cancelled cooperatively (SIGINT, deadline, request). */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &msg)
        : std::runtime_error("cancelled: " + msg)
    {}
};

/**
 * What kind of failure a design point hit. `None` is the resting state
 * of an untouched PointError; `Injected` marks a synthetic fault from
 * the test harness (common/fault.hh); `Unknown` is the catch-all for
 * exceptions outside the NeuroMeter taxonomy (bad_alloc, user code).
 */
enum class ErrorCategory {
    None,
    Config,
    Model,
    Io,
    Cancelled,
    Injected,
    Unknown,
};

/** Stable lower_snake name for an ErrorCategory (export/checkpoint). */
const char *errorCategoryStr(ErrorCategory c);

/** Inverse of errorCategoryStr(); Unknown for unrecognized text. */
ErrorCategory errorCategoryFromStr(const std::string &s);

/**
 * One structured per-point failure: the category, the site that raised
 * it ("memory.search", "chip.build", "sweep.eval", ...), and the
 * original message. Empty (category None) means "no error".
 */
struct PointError
{
    ErrorCategory category = ErrorCategory::None;
    std::string site;
    std::string message;

    bool ok() const { return category == ErrorCategory::None; }

    bool operator==(const PointError &) const = default;
};

/**
 * Classify the in-flight exception into a PointError. Call from inside
 * a catch block; `site` labels the boundary that caught it. An
 * InjectedFault (common/fault.hh) keeps the site it was injected at.
 */
PointError captureCurrentException(const std::string &site);

/** Throw ConfigError unless a user-supplied condition holds. */
inline void
requireConfig(bool cond, const std::string &msg)
{
    if (!cond)
        throw ConfigError(msg);
}

/** Throw ModelError unless an internal invariant holds. */
inline void
requireModel(bool cond, const std::string &msg)
{
    if (!cond)
        throw ModelError(msg);
}

} // namespace neurometer

#endif // NEUROMETER_COMMON_ERROR_HH
