/**
 * @file
 * Power/Area/Timing value types — the common currency of every model.
 */

#ifndef NEUROMETER_COMMON_PAT_HH
#define NEUROMETER_COMMON_PAT_HH

namespace neurometer {

/**
 * Power of a hardware block, split into dynamic and static (leakage)
 * components. Dynamic power here is an *achievable* power at some stated
 * activity; TDP vs runtime power differ only in the activity factors fed
 * into the models.
 */
struct Power
{
    double dynamicW = 0.0;
    double leakageW = 0.0;

    double total() const { return dynamicW + leakageW; }

    Power &
    operator+=(const Power &o)
    {
        dynamicW += o.dynamicW;
        leakageW += o.leakageW;
        return *this;
    }

    friend Power
    operator+(Power a, const Power &b)
    {
        a += b;
        return a;
    }

    friend Power
    operator*(double s, Power p)
    {
        p.dynamicW *= s;
        p.leakageW *= s;
        return p;
    }
};

/**
 * Timing of a hardware block.
 *
 * delayS is the end-to-end signal propagation delay through the block
 * (e.g. Elmore delay of its critical wire or logic path); cycleS is the
 * minimum clock period the block supports after internal pipelining.
 */
struct Timing
{
    double delayS = 0.0;
    double cycleS = 0.0;

    /** Combine with a block in the same pipeline stage set. */
    Timing &
    mergeParallel(const Timing &o)
    {
        delayS = delayS > o.delayS ? delayS : o.delayS;
        cycleS = cycleS > o.cycleS ? cycleS : o.cycleS;
        return *this;
    }
};

/** The full power/area/timing triple. Area in um^2 (see units.hh). */
struct PAT
{
    double areaUm2 = 0.0;
    Power power;
    Timing timing;

    PAT &
    operator+=(const PAT &o)
    {
        areaUm2 += o.areaUm2;
        power += o.power;
        timing.mergeParallel(o.timing);
        return *this;
    }

    friend PAT
    operator+(PAT a, const PAT &b)
    {
        a += b;
        return a;
    }
};

} // namespace neurometer

#endif // NEUROMETER_COMMON_PAT_HH
