/**
 * @file
 * Unit conventions and conversion helpers used across NeuroMeter.
 *
 * Internal conventions (deviating from these at a module boundary is a bug):
 *   - length:      micrometers (um)
 *   - area:        square micrometers (um^2); reports convert to mm^2
 *   - resistance:  ohm
 *   - capacitance: farad
 *   - time:        seconds
 *   - energy:      joules
 *   - power:       watts
 *   - frequency:   hertz
 */

#ifndef NEUROMETER_COMMON_UNITS_HH
#define NEUROMETER_COMMON_UNITS_HH

namespace neurometer {

namespace units {

constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double tera = 1e12;

constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;
constexpr double femto = 1e-15;

/** Square micrometers per square millimeter. */
constexpr double um2PerMm2 = 1e6;

/** Bytes per kibibyte / mebibyte. */
constexpr double kib = 1024.0;
constexpr double mib = 1024.0 * 1024.0;

} // namespace units

/** Convert an internal area (um^2) to mm^2 for reporting. */
constexpr double
um2ToMm2(double um2)
{
    return um2 / units::um2PerMm2;
}

/** Convert mm^2 (typical user-facing budgets) to internal um^2. */
constexpr double
mm2ToUm2(double mm2)
{
    return mm2 * units::um2PerMm2;
}

} // namespace neurometer

#endif // NEUROMETER_COMMON_UNITS_HH
