/**
 * @file
 * Stable (process- and host-independent) 64-bit string hashing.
 *
 * std::hash makes no cross-run guarantees, so anything persisted or
 * shared between processes — shard assignment of sweep points, backoff
 * jitter seeds derived from worker names — must not use it. The FNV-1a
 * core below is fully specified by its constants; the splitmix-style
 * finalizer spreads the avalanche so low-modulus reductions (hash % N
 * shard picks) stay uniform even for near-identical config keys.
 */

#ifndef NEUROMETER_COMMON_HASH_HH
#define NEUROMETER_COMMON_HASH_HH

#include <cstdint>
#include <string_view>

namespace neurometer {

/**
 * Deterministic 64-bit hash of `text`: FNV-1a with a splitmix64
 * finalizer. The value for a given string is identical across
 * processes, hosts, compilers, and library versions — it is part of
 * the sharding contract (a checkpoint row written by shard 2/8 on one
 * machine must hash to shard 2/8 everywhere).
 */
constexpr std::uint64_t
stableHash64(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV offset basis
    for (const char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL; // FNV prime
    }
    // splitmix64 finalizer: full avalanche so `h % N` is uniform.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

} // namespace neurometer

#endif // NEUROMETER_COMMON_HASH_HH
