#include "common/breakdown.hh"

#include <iomanip>
#include <sstream>

#include "common/units.hh"

namespace neurometer {

PAT
Breakdown::total() const
{
    PAT t = _self;
    for (const auto &c : _children)
        t += c.total();
    return t;
}

const Breakdown *
Breakdown::find(const std::string &node_name) const
{
    if (_name == node_name)
        return this;
    for (const auto &c : _children) {
        if (const Breakdown *hit = c.find(node_name))
            return hit;
    }
    return nullptr;
}

double
Breakdown::areaOfUm2(const std::string &node_name) const
{
    const Breakdown *node = find(node_name);
    return node ? node->total().areaUm2 : 0.0;
}

double
Breakdown::powerOfW(const std::string &node_name) const
{
    const Breakdown *node = find(node_name);
    return node ? node->total().power.total() : 0.0;
}

void
Breakdown::scale(double factor)
{
    _self.areaUm2 *= factor;
    _self.power.dynamicW *= factor;
    _self.power.leakageW *= factor;
    for (auto &c : _children)
        c.scale(factor);
}

void
Breakdown::scaleDynamic(double factor)
{
    _self.power.dynamicW *= factor;
    for (auto &c : _children)
        c.scaleDynamic(factor);
}

namespace {

void
reportNode(std::ostream &os, const Breakdown &node, int depth,
           int max_depth, double root_area, double root_power)
{
    const PAT t = node.total();
    const double area_mm2 = um2ToMm2(t.areaUm2);
    const double power_w = t.power.total();

    os << std::left << std::setw(44)
       << (std::string(2 * depth, ' ') + node.name())
       << std::right << std::fixed << std::setprecision(3)
       << std::setw(10) << area_mm2
       << std::setw(7) << std::setprecision(1)
       << (root_area > 0 ? 100.0 * t.areaUm2 / root_area : 0.0)
       << std::setw(10) << std::setprecision(3) << power_w
       << std::setw(7) << std::setprecision(1)
       << (root_power > 0 ? 100.0 * power_w / root_power : 0.0)
       << std::setw(10) << std::setprecision(1)
       << t.timing.cycleS * 1e12
       << "\n";

    if (depth >= max_depth)
        return;
    for (const auto &c : node.children())
        reportNode(os, c, depth + 1, max_depth, root_area, root_power);
}

} // namespace

std::string
Breakdown::report(int max_depth) const
{
    std::ostringstream os;
    const PAT t = total();
    os << std::left << std::setw(44) << "component"
       << std::right
       << std::setw(10) << "mm^2" << std::setw(7) << "%"
       << std::setw(10) << "W" << std::setw(7) << "%"
       << std::setw(10) << "Tcyc_ps" << "\n";
    os << std::string(88, '-') << "\n";
    reportNode(os, *this, 0, max_depth, t.areaUm2, t.power.total());
    return os.str();
}

} // namespace neurometer
