/**
 * @file
 * Hierarchical power/area/timing breakdown tree.
 *
 * Every modeled component returns a Breakdown: its own PAT contribution
 * plus named children. The chip model composes these into the full-chip
 * tree that validation benches slice into the paper's ring charts.
 */

#ifndef NEUROMETER_COMMON_BREAKDOWN_HH
#define NEUROMETER_COMMON_BREAKDOWN_HH

#include <string>
#include <vector>

#include "common/pat.hh"

namespace neurometer {

/** A named node in the PAT breakdown tree. */
class Breakdown
{
  public:
    Breakdown() = default;

    explicit Breakdown(std::string name) : _name(std::move(name)) {}

    Breakdown(std::string name, PAT self)
        : _name(std::move(name)), _self(self)
    {}

    const std::string &name() const { return _name; }

    /** This node's own contribution, excluding children. */
    const PAT &self() const { return _self; }
    PAT &self() { return _self; }

    const std::vector<Breakdown> &children() const { return _children; }

    /** Append a child subtree and return a reference to it. */
    Breakdown &
    addChild(Breakdown child)
    {
        _children.push_back(std::move(child));
        return _children.back();
    }

    /** Convenience: add a leaf child. */
    Breakdown &
    addLeaf(const std::string &child_name, const PAT &pat)
    {
        return addChild(Breakdown(child_name, pat));
    }

    /**
     * Recursive total over this node and all descendants. Timing merges
     * as parallel blocks (max of delays and cycle times).
     */
    PAT total() const;

    /**
     * Find the first descendant (depth-first, including this node) whose
     * name matches. Returns nullptr when absent.
     */
    const Breakdown *find(const std::string &node_name) const;

    /** Total area of the named subtree, or 0 when absent. */
    double areaOfUm2(const std::string &node_name) const;

    /** Total power of the named subtree, or 0 when absent. */
    double powerOfW(const std::string &node_name) const;

    /**
     * Render the tree as an indented ascii table of area (mm^2, %),
     * power (W, %), and per-node cycle time.
     *
     * @param max_depth levels to expand (0 = only this node).
     */
    std::string report(int max_depth = 8) const;

    /** Multiply all areas/powers in the subtree by a scalar. */
    void scale(double factor);

    /** Multiply only dynamic power in the subtree (activity scaling). */
    void scaleDynamic(double factor);

    /** Rename this node (used when instantiating templates). */
    void setName(std::string n) { _name = std::move(n); }

  private:
    std::string _name;
    PAT _self;
    std::vector<Breakdown> _children;
};

} // namespace neurometer

#endif // NEUROMETER_COMMON_BREAKDOWN_HH
