#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace neurometer::json {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &s) : _s(s) {}

    Value
    parse()
    {
        Value v = value();
        skipWs();
        if (_i != _s.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw Error("at byte " + std::to_string(_i) + ": " + why);
    }

    void
    skipWs()
    {
        while (_i < _s.size() &&
               (_s[_i] == ' ' || _s[_i] == '\n' || _s[_i] == '\t' ||
                _s[_i] == '\r'))
            ++_i;
    }

    char
    peek()
    {
        skipWs();
        if (_i >= _s.size())
            fail("unexpected end");
        return _s[_i];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_i;
    }

    Value
    value()
    {
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"': {
            Value v;
            v.kind = Value::Kind::String;
            v.text = string();
            return v;
          }
          case 't':
          case 'f':
            return boolean();
          case 'n':
            literal("null");
            return {};
          default:
            return num();
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++_i)
            if (_i >= _s.size() || _s[_i] != *p)
                fail(std::string("bad literal, wanted ") + word);
    }

    Value
    boolean()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    Value
    num()
    {
        const std::size_t start = _i;
        if (_i < _s.size() && (_s[_i] == '-' || _s[_i] == '+'))
            ++_i;
        while (_i < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_i])) ||
                _s[_i] == '.' || _s[_i] == 'e' || _s[_i] == 'E' ||
                _s[_i] == '-' || _s[_i] == '+'))
            ++_i;
        if (_i == start)
            fail("expected number");
        Value v;
        v.kind = Value::Kind::Number;
        try {
            v.number = std::stod(_s.substr(start, _i - start));
        } catch (const std::exception &) {
            fail("bad number '" + _s.substr(start, _i - start) + "'");
        }
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_i >= _s.size())
                fail("unterminated string");
            const char c = _s[_i++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_i >= _s.size())
                fail("unterminated escape");
            const char e = _s[_i++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (_i + 4 > _s.size())
                    fail("short \\u escape");
                unsigned code = 0;
                try {
                    code = static_cast<unsigned>(
                        std::stoul(_s.substr(_i, 4), nullptr, 16));
                } catch (const std::exception &) {
                    fail("bad \\u escape");
                }
                _i += 4;
                // Control-plane only: NeuroMeter emits \u00XX for
                // control chars; wider code points keep the low byte.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value
    array()
    {
        expect('[');
        Value v;
        v.kind = Value::Kind::Array;
        if (peek() == ']') {
            ++_i;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            if (peek() == ',') {
                ++_i;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value
    object()
    {
        expect('{');
        Value v;
        v.kind = Value::Kind::Object;
        if (peek() == '}') {
            ++_i;
            return v;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = string();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++_i;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string &_s;
    std::size_t _i = 0;
};

const char *
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Null:
        return "null";
      case Value::Kind::Bool:
        return "bool";
      case Value::Kind::Number:
        return "number";
      case Value::Kind::String:
        return "string";
      case Value::Kind::Array:
        return "array";
      case Value::Kind::Object:
        return "object";
    }
    return "?";
}

[[noreturn]] void
kindMismatch(const char *wanted, Value::Kind got)
{
    throw Error(std::string("expected ") + wanted + ", got " +
                kindName(got));
}

void
dumpInto(const Value &v, std::string &out)
{
    switch (v.kind) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case Value::Kind::Number:
        out += number(v.number);
        break;
      case Value::Kind::String:
        out += quote(v.text);
        break;
      case Value::Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                out += ", ";
            dumpInto(v.items[i], out);
        }
        out += ']';
        break;
      }
      case Value::Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            if (i)
                out += ", ";
            out += quote(v.members[i].first);
            out += ": ";
            dumpInto(v.members[i].second, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

const std::string &
Value::asString() const
{
    if (kind != Kind::String)
        kindMismatch("string", kind);
    return text;
}

double
Value::asNumber() const
{
    if (kind != Kind::Number)
        kindMismatch("number", kind);
    return number;
}

bool
Value::asBool() const
{
    if (kind != Kind::Bool)
        kindMismatch("bool", kind);
    return boolean;
}

std::string
Value::dump() const
{
    std::string out;
    dumpInto(*this, out);
    return out;
}

Value
Value::null()
{
    return {};
}

Value
Value::boolean_(bool b)
{
    Value v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
}

Value
Value::number_(double d)
{
    Value v;
    v.kind = Kind::Number;
    v.number = d;
    return v;
}

Value
Value::string_(std::string s)
{
    Value v;
    v.kind = Kind::String;
    v.text = std::move(s);
    return v;
}

Value
Value::array_()
{
    Value v;
    v.kind = Kind::Array;
    return v;
}

Value
Value::object_()
{
    Value v;
    v.kind = Kind::Object;
    return v;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (kind != Kind::Object)
        kindMismatch("object", kind);
    members.emplace_back(key, std::move(v));
    return *this;
}

Value &
Value::push(Value v)
{
    if (kind != Kind::Array)
        kindMismatch("array", kind);
    items.push_back(std::move(v));
    return *this;
}

Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
compact(const std::string &text)
{
    return parse(text).dump();
}

} // namespace neurometer::json
