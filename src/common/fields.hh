/**
 * @file
 * Reflection-lite field registry: a runtime description of the scalar
 * fields of a config struct (name, kind, bounds, doc, accessors) that
 * lets one table drive serialization, validation, parsing, and
 * name-addressed sweeps instead of four hand-maintained copies.
 *
 * A FieldDef views one field through a uniform double-valued lens
 * (bool -> 0/1, enum -> index); the text-facing helpers render and
 * parse the natural spelling of each kind ("true", "bf16", "0.21").
 * A FieldRegistry is an ordered, name-indexed collection of defs —
 * iteration order is part of the contract (cache keys depend on it).
 */

#ifndef NEUROMETER_COMMON_FIELDS_HH
#define NEUROMETER_COMMON_FIELDS_HH

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/error.hh"

namespace neurometer {

/** Value categories a registered field can have. */
enum class FieldKind { Bool, Int, Double, Enum };

/**
 * Shortest decimal rendering that parses back to exactly `v`: %.15g
 * when that round-trips, escalating to %.17g (which always does).
 * The workhorse behind exact config-file echoes and axis labels.
 */
inline std::string
exactDoubleText(double v)
{
    char buf[40];
    for (int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

inline const char *
fieldKindName(FieldKind k)
{
    switch (k) {
      case FieldKind::Bool:
        return "bool";
      case FieldKind::Int:
        return "int";
      case FieldKind::Double:
        return "double";
      case FieldKind::Enum:
        return "enum";
    }
    return "?";
}

/** Numeric interval a field value must lie in, open or closed per end. */
struct FieldBounds
{
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool loExclusive = false;
    bool hiExclusive = false;

    bool
    contains(double v) const
    {
        if (loExclusive ? v <= lo : v < lo)
            return false;
        if (hiExclusive ? v >= hi : v > hi)
            return false;
        return true;
    }

    /** True when at least one end constrains. */
    bool
    bounded() const
    {
        return std::isfinite(lo) || std::isfinite(hi);
    }

    /** "[0, 1]", "(0, inf)", "[0, 0.9)" — for error messages/docs. */
    std::string
    str() const
    {
        auto end = [](double v) -> std::string {
            if (std::isinf(v))
                return v > 0 ? "inf" : "-inf";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%g", v);
            return buf;
        };
        // Infinite ends are always open by convention.
        const bool lo_open = loExclusive || std::isinf(lo);
        const bool hi_open = hiExclusive || std::isinf(hi);
        return std::string(lo_open ? "(" : "[") + end(lo) + ", " +
               end(hi) + (hi_open ? ")" : "]");
    }
};

inline FieldBounds
unbounded()
{
    return {};
}

inline FieldBounds
atLeast(double lo)
{
    FieldBounds b;
    b.lo = lo;
    return b;
}

inline FieldBounds
greaterThan(double lo)
{
    FieldBounds b;
    b.lo = lo;
    b.loExclusive = true;
    return b;
}

/** Closed interval [lo, hi]. */
inline FieldBounds
inRange(double lo, double hi)
{
    FieldBounds b;
    b.lo = lo;
    b.hi = hi;
    return b;
}

/** Half-open interval [lo, hi). */
inline FieldBounds
rightOpen(double lo, double hi)
{
    FieldBounds b = inRange(lo, hi);
    b.hiExclusive = true;
    return b;
}

/** One registered field of an Owner struct. */
template <typename Owner>
struct FieldDef
{
    std::string name; ///< dotted path, e.g. "core.tu.rows"
    FieldKind kind = FieldKind::Double;
    FieldBounds bounds;
    std::string doc;
    /** Enum kind only: spelling per enumerator, index order. */
    std::vector<std::string> enumNames;

    std::function<double(const Owner &)> rawGet;
    std::function<void(Owner &, double)> rawSet;

    /** Field value as a double (bool -> 0/1, enum -> index). */
    double
    get(const Owner &o) const
    {
        return rawGet(o);
    }

    /** Checked write; throws ConfigError naming the field. */
    void
    set(Owner &o, double v) const
    {
        checkValue(v);
        rawSet(o, v);
    }

    /** Throw ConfigError when the field's current value is invalid. */
    void
    check(const Owner &o) const
    {
        checkValue(get(o));
    }

    /** Exact textual rendering (round-trips through setText). */
    std::string
    getText(const Owner &o) const
    {
        const double v = get(o);
        char buf[40];
        switch (kind) {
          case FieldKind::Bool:
            return v != 0.0 ? "true" : "false";
          case FieldKind::Int:
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
            return buf;
          case FieldKind::Double:
            return exactDoubleText(v);
          case FieldKind::Enum:
            return enumNames.at(static_cast<std::size_t>(v));
        }
        return "";
    }

    /** Parse + checked write; throws ConfigError on any problem. */
    void
    setText(Owner &o, const std::string &text) const
    {
        set(o, parseText(text));
    }

    /** Parse `text` per this field's kind without writing anywhere. */
    double
    parseText(const std::string &text) const
    {
        switch (kind) {
          case FieldKind::Bool: {
            const std::string t = lower(text);
            if (t == "true" || t == "1")
                return 1.0;
            if (t == "false" || t == "0")
                return 0.0;
            throw ConfigError(name + ": expected true/false, got '" +
                              text + "'");
          }
          case FieldKind::Enum: {
            const std::string t = lower(text);
            for (std::size_t i = 0; i < enumNames.size(); ++i)
                if (t == enumNames[i])
                    return double(i);
            std::string valid;
            for (const std::string &n : enumNames)
                valid += (valid.empty() ? "" : ", ") + n;
            throw ConfigError(name + ": unknown value '" + text +
                              "' (valid: " + valid + ")");
          }
          case FieldKind::Int:
          case FieldKind::Double: {
            char *end = nullptr;
            const double v = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || !std::isfinite(v))
                throw ConfigError(name + ": '" + text + "' is not a " +
                                  fieldKindName(kind));
            return v;
          }
        }
        throw ModelError("unhandled field kind");
    }

  private:
    static std::string
    lower(const std::string &s)
    {
        std::string out = s;
        for (char &c : out)
            c = char(std::tolower(static_cast<unsigned char>(c)));
        return out;
    }

    void
    checkValue(double v) const
    {
        const bool integral =
            std::isfinite(v) && v == std::floor(v);
        switch (kind) {
          case FieldKind::Bool:
            requireConfig(v == 0.0 || v == 1.0,
                          name + " must be true/false");
            break;
          case FieldKind::Enum:
            requireConfig(integral && v >= 0.0 &&
                              v < double(enumNames.size()),
                          name + ": enum value out of range");
            break;
          case FieldKind::Int:
            requireConfig(integral,
                          name + " must be an integer");
            [[fallthrough]];
          case FieldKind::Double:
            if (!bounds.contains(v)) {
                char buf[40];
                std::snprintf(buf, sizeof(buf), "%g", v);
                throw ConfigError(name + " = " + buf +
                                  " out of range " + bounds.str());
            }
            break;
        }
    }
};

/** Ordered, name-indexed set of FieldDefs for one Owner struct. */
template <typename Owner>
class FieldRegistry
{
  public:
    FieldRegistry &
    add(FieldDef<Owner> f)
    {
        requireModel(!f.name.empty(), "unnamed field");
        requireModel(_index.emplace(f.name, _fields.size()).second,
                     "duplicate field '" + f.name + "'");
        _fields.push_back(std::move(f));
        return *this;
    }

    /** Null when no field has this name. */
    const FieldDef<Owner> *
    find(const std::string &name) const
    {
        const auto it = _index.find(name);
        return it == _index.end() ? nullptr : &_fields[it->second];
    }

    /** Like find(), but throws ConfigError on an unknown name. */
    const FieldDef<Owner> &
    at(const std::string &name) const
    {
        const FieldDef<Owner> *f = find(name);
        if (!f)
            throw ConfigError("unknown field '" + name + "'");
        return *f;
    }

    /** Registration order — stable, part of the serialization ABI. */
    const std::vector<FieldDef<Owner>> &
    fields() const
    {
        return _fields;
    }

    std::size_t
    size() const
    {
        return _fields.size();
    }

  private:
    std::vector<FieldDef<Owner>> _fields;
    std::unordered_map<std::string, std::size_t> _index;
};

namespace field_detail {

template <typename T>
constexpr FieldKind
kindOf()
{
    if constexpr (std::is_same_v<T, bool>)
        return FieldKind::Bool;
    else if constexpr (std::is_enum_v<T>)
        return FieldKind::Enum;
    else if constexpr (std::is_integral_v<T>)
        return FieldKind::Int;
    else {
        static_assert(std::is_floating_point_v<T>,
                      "unsupported field type");
        return FieldKind::Double;
    }
}

} // namespace field_detail

/**
 * Build a FieldDef from an accessor lambda returning a mutable
 * reference to the member (`[](auto &c) -> auto & { return c.x; }`).
 * The kind is deduced from the member type; enums must go through
 * makeEnumField() so they carry their spellings.
 */
template <typename Owner, typename Accessor>
FieldDef<Owner>
makeField(std::string name, FieldBounds bounds, std::string doc,
          Accessor acc)
{
    using T = std::remove_reference_t<decltype(acc(
        std::declval<Owner &>()))>;
    static_assert(!std::is_enum_v<T>, "use makeEnumField for enums");

    FieldDef<Owner> f;
    f.name = std::move(name);
    f.kind = field_detail::kindOf<T>();
    f.bounds = bounds;
    f.doc = std::move(doc);
    f.rawGet = [acc](const Owner &o) {
        return double(acc(const_cast<Owner &>(o)));
    };
    f.rawSet = [acc](Owner &o, double v) { acc(o) = T(v); };
    return f;
}

/** makeField() for enum members; `names` is indexed by enum value. */
template <typename Owner, typename Accessor>
FieldDef<Owner>
makeEnumField(std::string name, std::string doc, Accessor acc,
              std::vector<std::string> names)
{
    using T = std::remove_reference_t<decltype(acc(
        std::declval<Owner &>()))>;
    static_assert(std::is_enum_v<T>, "makeEnumField needs an enum");

    FieldDef<Owner> f;
    f.name = std::move(name);
    f.kind = FieldKind::Enum;
    f.doc = std::move(doc);
    f.enumNames = std::move(names);
    f.rawGet = [acc](const Owner &o) {
        return double(
            static_cast<std::underlying_type_t<T>>(
                acc(const_cast<Owner &>(o))));
    };
    f.rawSet = [acc](Owner &o, double v) {
        acc(o) = T(static_cast<std::underlying_type_t<T>>(v));
    };
    return f;
}

} // namespace neurometer

#endif // NEUROMETER_COMMON_FIELDS_HH
