/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * Long-running sweeps must survive per-point failures, checkpoint
 * partial progress, and never corrupt outputs — claims that can only
 * be *proven* by making real code paths fail on demand. Hot paths
 * register themselves as named sites (`faultInjector().at("memory.search")`)
 * and tests arm a site with a deterministic plan: explicit hit indices
 * or an every-Nth rule. An armed site counts every hit and throws an
 * InjectedFault on the planned ones; a disarmed injector costs one
 * relaxed atomic load per site visit.
 *
 * InjectedFault deliberately derives from std::runtime_error directly
 * — not ConfigError/ModelError — so the result caches (EvalCache,
 * MemoryDesignCache) never memoize a synthetic failure: the entry is
 * left uncomputed and a later request for the same key retries.
 */

#ifndef NEUROMETER_COMMON_FAULT_HH
#define NEUROMETER_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hh"

namespace neurometer {

/** A synthetic failure raised by an armed fault-injection site. */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(const std::string &site, std::uint64_t hit)
        : std::runtime_error("injected fault at " + site + " (hit #" +
                             std::to_string(hit) + ")"),
          _site(site)
    {}

    /** The site the fault was injected at ("memory.search", ...). */
    const std::string &site() const { return _site; }

  private:
    std::string _site;
};

/** Process-wide registry of instrumented sites and their fault plans. */
class FaultInjector
{
  public:
    /**
     * Which hits of a site fail. `failHits` lists explicit 0-based hit
     * indices; `everyN > 0` additionally fails every Nth hit starting
     * at `offset` (hit % everyN == offset). Both rules are pure
     * functions of the per-site hit counter — rerunning the same
     * serial workload injects the identical faults.
     */
    struct Plan
    {
        std::vector<std::uint64_t> failHits{};
        std::uint64_t everyN = 0;
        std::uint64_t offset = 0;
    };

    /** Arm `site` with `plan`, resetting its hit/injected counters. */
    void arm(const std::string &site, Plan plan);

    /**
     * Arm from a "site=SPEC" string (CLI/CI surface). SPEC is either a
     * comma list of hit indices ("memory.search=2,5") or
     * "every:N[+OFFSET]" ("chip.build=every:3+1"). Throws ConfigError
     * on a malformed spec.
     */
    void armFromSpec(const std::string &spec);

    /** Disarm one site (its counters stop advancing). */
    void disarm(const std::string &site);

    /** Disarm every site and drop all counters. */
    void reset();

    /** Times an armed `site` was visited (0 when never armed). */
    std::uint64_t hits(const std::string &site) const;

    /** Faults actually thrown at `site`. */
    std::uint64_t injected(const std::string &site) const;

    /**
     * The instrumentation point. Disarmed (the default) this is one
     * relaxed atomic load. Armed, it counts the hit and throws
     * InjectedFault when the site's plan says this hit fails.
     */
    void
    at(const char *site)
    {
        if (!_armed.load(std::memory_order_relaxed))
            return;
        atSlow(site);
    }

  private:
    void atSlow(const char *site);

    struct SiteState
    {
        Plan plan;
        std::uint64_t hits = 0;
        std::uint64_t injected = 0;
        bool active = false;
    };

    mutable std::mutex _mu;
    std::atomic<bool> _armed{false};
    std::unordered_map<std::string, SiteState> _sites;
};

/** The process-wide injector every instrumented site consults. */
FaultInjector &faultInjector();

} // namespace neurometer

#endif // NEUROMETER_COMMON_FAULT_HH
