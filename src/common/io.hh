/**
 * @file
 * Crash-safe file output.
 *
 * Every artifact NeuroMeter writes — sweep CSV/JSON exports, run
 * manifests, Chrome traces, checkpoints — goes through one helper that
 * writes to a temporary sibling and atomically renames it into place.
 * A reader (or a crash, or a cancelled run) therefore only ever sees
 * either the previous complete file or the new complete file, never a
 * torn half-write.
 */

#ifndef NEUROMETER_COMMON_IO_HH
#define NEUROMETER_COMMON_IO_HH

#include <string>

namespace neurometer {

/**
 * Write `content` to `path` atomically: the bytes land in a unique
 * `<path>.tmp.<pid>.<seq>` sibling first (same directory, so the
 * rename cannot cross filesystems) and are renamed over `path` only
 * after a successful close. On any failure the temporary is removed
 * and IoError is thrown — the destination keeps whatever it held.
 *
 * Fault-injection site: "io.write" (common/fault.hh).
 */
void writeFileAtomic(const std::string &path, const std::string &content);

} // namespace neurometer

#endif // NEUROMETER_COMMON_IO_HH
