/**
 * @file
 * Prometheus text exposition (format 0.0.4) for metric snapshots.
 *
 * renderPrometheus() turns an obs::Snapshot into the line protocol a
 * Prometheus/VictoriaMetrics scraper expects: counters become
 * `<name>_total`, derived hit rates and gauges become plain gauges
 * (non-finite values use the NaN/+Inf/-Inf literals), and histograms
 * expand into cumulative `_bucket{le="..."}` series plus `_sum` and
 * `_count`. Dotted metric names are sanitized into the metric-name
 * charset `[a-zA-Z_:][a-zA-Z0-9_:]*`, and registration docs (see
 * Registry::counter(name, doc)) surface as `# HELP` lines.
 *
 * The serve daemon's GET /metrics endpoint is the main consumer; the
 * format is also what `neurometer metrics --url` prints.
 */

#ifndef NEUROMETER_OBS_EXPOSITION_HH
#define NEUROMETER_OBS_EXPOSITION_HH

#include <string>

#include "obs/metrics.hh"

namespace neurometer::obs {

/** Content-Type header value for the exposition body. */
inline constexpr const char *kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/**
 * Map an internal dotted metric name onto the Prometheus charset:
 * every character outside [a-zA-Z0-9_] becomes '_', a leading digit
 * gains a '_' prefix, and an empty name becomes "_".
 */
std::string sanitizeMetricName(const std::string &name);

/** Escape HELP text: backslashes and newlines per the format spec. */
std::string escapeHelp(const std::string &text);

/** Render one sample value: NaN / +Inf / -Inf literals, else %.17g. */
std::string promValue(double v);

/** Render the whole snapshot as exposition text (trailing newline). */
std::string renderPrometheus(const Snapshot &snap);

} // namespace neurometer::obs

#endif // NEUROMETER_OBS_EXPOSITION_HH
