#include "obs/metrics.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/error.hh"
#include "obs/manifest.hh"

namespace neurometer::obs {

namespace {

// Fixed per-shard slot capacities: a shard is one flat slab of
// atomics, so handles index it directly with no per-access lookup.
// Raising these only costs idle bytes per thread.
constexpr std::uint32_t kMaxCounters = 192;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 32;
// Power-of-two nanosecond buckets: bucket i holds values in
// (2^(i-1), 2^i] ns; 48 buckets span ~3 days.
constexpr std::uint32_t kBuckets = 48;

struct HistShard
{
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sumNs{0};
    std::atomic<std::uint64_t> minNs{UINT64_MAX};
    std::atomic<std::uint64_t> maxNs{0};
};

struct Shard
{
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<HistShard, kMaxHistograms> hists{};
};

struct State
{
    std::mutex mu; ///< guards names + shard list, never metric cells
    std::vector<std::string> counterNames;
    std::vector<std::string> gaugeNames;
    std::vector<std::string> histNames;
    std::vector<std::string> counterDocs;
    std::vector<std::string> gaugeDocs;
    std::vector<std::string> histDocs;
    std::vector<std::shared_ptr<Shard>> shards;
    std::array<std::atomic<double>, kMaxGauges> gauges{};
};

State &
state()
{
    // Leaked on purpose: worker threads owned by function-local static
    // objects (e.g. the process-wide memory-design cache) may record
    // metrics during static destruction.
    static State *s = new State;
    return *s;
}

Shard &
localShard()
{
    thread_local std::shared_ptr<Shard> tls;
    if (!tls) {
        tls = std::make_shared<Shard>();
        State &s = state();
        std::lock_guard<std::mutex> lk(s.mu);
        // The registry co-owns the shard so a thread's contributions
        // survive its exit (snapshot() still merges them).
        s.shards.push_back(tls);
    }
    return *tls;
}

std::uint32_t
intern(std::vector<std::string> &names, std::vector<std::string> &docs,
       const std::string &name, const std::string &doc, std::uint32_t cap,
       const char *kind)
{
    for (std::uint32_t i = 0; i < names.size(); ++i) {
        if (names[i] == name) {
            if (docs[i].empty() && !doc.empty())
                docs[i] = doc;
            return i;
        }
    }
    requireModel(names.size() < cap,
                 std::string("obs: too many registered ") + kind +
                     " metrics (cap " + std::to_string(cap) + ")");
    names.push_back(name);
    docs.push_back(doc);
    return std::uint32_t(names.size() - 1);
}

std::uint64_t
toNs(double seconds)
{
    if (!(seconds > 0.0))
        return 0;
    const double ns = seconds * 1e9;
    return ns >= 9e18 ? std::uint64_t(9e18) : std::uint64_t(std::llround(ns));
}

std::uint32_t
bucketOf(std::uint64_t ns)
{
    const std::uint32_t b = std::uint32_t(std::bit_width(ns));
    return std::min(b, kBuckets - 1);
}

void
atomicMin(std::atomic<std::uint64_t> &slot, std::uint64_t v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** Upper bound of bucket i in seconds. */
double
bucketUpperS(std::uint32_t i)
{
    return double(std::uint64_t(1) << i) * 1e-9;
}

/** Short human time: 412ns / 3.2us / 1.4ms / 2.1s. */
std::string
humanTime(double s)
{
    char buf[32];
    if (s <= 0.0)
        std::snprintf(buf, sizeof(buf), "0");
    else if (s < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.0fns", s * 1e9);
    else if (s < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
    else if (s < 1.0)
        std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2fs", s);
    return buf;
}

} // namespace

void
Counter::inc(std::uint64_t n) const
{
    localShard().counters[_id].fetch_add(n, std::memory_order_relaxed);
}

void
Gauge::set(double v) const
{
    state().gauges[_id].store(v, std::memory_order_relaxed);
}

void
Gauge::add(double v) const
{
    std::atomic<double> &slot = state().gauges[_id];
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

void
Histogram::record(double seconds) const
{
    const std::uint64_t ns = toNs(seconds);
    HistShard &h = localShard().hists[_id];
    h.buckets[bucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sumNs.fetch_add(ns, std::memory_order_relaxed);
    atomicMin(h.minNs, ns);
    atomicMax(h.maxNs, ns);
}

Counter
Registry::counter(const std::string &name, const std::string &doc)
{
    State &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return Counter(intern(s.counterNames, s.counterDocs, name, doc,
                          kMaxCounters, "counter"));
}

Gauge
Registry::gauge(const std::string &name, const std::string &doc)
{
    State &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return Gauge(
        intern(s.gaugeNames, s.gaugeDocs, name, doc, kMaxGauges, "gauge"));
}

Histogram
Registry::histogram(const std::string &name, const std::string &doc)
{
    State &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return Histogram(intern(s.histNames, s.histDocs, name, doc,
                            kMaxHistograms, "histogram"));
}

Snapshot
Registry::snapshot() const
{
    State &s = state();
    std::vector<std::string> counter_names, gauge_names, hist_names;
    std::vector<std::string> counter_docs, gauge_docs, hist_docs;
    std::vector<std::shared_ptr<Shard>> shards;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        counter_names = s.counterNames;
        gauge_names = s.gaugeNames;
        hist_names = s.histNames;
        counter_docs = s.counterDocs;
        gauge_docs = s.gaugeDocs;
        hist_docs = s.histDocs;
        shards = s.shards;
    }

    Snapshot snap;
    auto keep_docs = [&snap](const std::vector<std::string> &names,
                             const std::vector<std::string> &docs) {
        for (std::size_t i = 0; i < names.size(); ++i)
            if (!docs[i].empty())
                snap.docs.emplace_back(names[i], docs[i]);
    };
    keep_docs(counter_names, counter_docs);
    keep_docs(gauge_names, gauge_docs);
    keep_docs(hist_names, hist_docs);
    snap.counters.reserve(counter_names.size());
    for (std::uint32_t i = 0; i < counter_names.size(); ++i) {
        std::uint64_t sum = 0;
        for (const auto &sh : shards)
            sum += sh->counters[i].load(std::memory_order_relaxed);
        snap.counters.emplace_back(counter_names[i], sum);
    }

    snap.gauges.reserve(gauge_names.size());
    for (std::uint32_t i = 0; i < gauge_names.size(); ++i) {
        snap.gauges.emplace_back(
            gauge_names[i], s.gauges[i].load(std::memory_order_relaxed));
    }

    snap.histograms.reserve(hist_names.size());
    for (std::uint32_t i = 0; i < hist_names.size(); ++i) {
        std::array<std::uint64_t, kBuckets> buckets{};
        std::uint64_t count = 0, sum_ns = 0;
        std::uint64_t min_ns = UINT64_MAX, max_ns = 0;
        for (const auto &sh : shards) {
            const HistShard &h = sh->hists[i];
            for (std::uint32_t b = 0; b < kBuckets; ++b)
                buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
            count += h.count.load(std::memory_order_relaxed);
            sum_ns += h.sumNs.load(std::memory_order_relaxed);
            min_ns = std::min(min_ns,
                              h.minNs.load(std::memory_order_relaxed));
            max_ns = std::max(max_ns,
                              h.maxNs.load(std::memory_order_relaxed));
        }
        HistogramSnapshot hs;
        hs.count = count;
        hs.sumS = double(sum_ns) * 1e-9;
        hs.minS = count == 0 ? 0.0 : double(min_ns) * 1e-9;
        hs.maxS = double(max_ns) * 1e-9;
        for (std::uint32_t b = 0; b < kBuckets; ++b)
            if (buckets[b] != 0)
                hs.buckets.emplace_back(bucketUpperS(b), buckets[b]);
        // Quantile = linear interpolation within the containing
        // power-of-two bucket, clamped to the observed [min, max] so
        // a one-sample histogram reports the sample itself.
        auto quantile = [&](double q) {
            if (count == 0)
                return 0.0;
            const std::uint64_t target = std::uint64_t(
                std::max(1.0, std::ceil(q * double(count))));
            std::uint64_t cum = 0;
            for (std::uint32_t b = 0; b < kBuckets; ++b) {
                if (buckets[b] == 0)
                    continue;
                if (cum + buckets[b] >= target) {
                    const double lo = b == 0 ? 0.0 : bucketUpperS(b - 1);
                    const double hi = bucketUpperS(b);
                    const double frac =
                        double(target - cum) / double(buckets[b]);
                    const double v = lo + frac * (hi - lo);
                    return std::min(std::max(v, hs.minS), hs.maxS);
                }
                cum += buckets[b];
            }
            return hs.maxS;
        };
        hs.p50S = quantile(0.50);
        hs.p90S = quantile(0.90);
        hs.p99S = quantile(0.99);
        snap.histograms.emplace_back(hist_names[i], hs);
    }

    auto by_name = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    std::sort(snap.docs.begin(), snap.docs.end(), by_name);
    return snap;
}

void
Registry::reset()
{
    State &s = state();
    std::vector<std::shared_ptr<Shard>> shards;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        shards = s.shards;
    }
    for (const auto &sh : shards) {
        for (auto &c : sh->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &h : sh->hists) {
            for (auto &b : h.buckets)
                b.store(0, std::memory_order_relaxed);
            h.count.store(0, std::memory_order_relaxed);
            h.sumNs.store(0, std::memory_order_relaxed);
            h.minNs.store(UINT64_MAX, std::memory_order_relaxed);
            h.maxNs.store(0, std::memory_order_relaxed);
        }
    }
    for (auto &g : s.gauges)
        g.store(0.0, std::memory_order_relaxed);
}

Registry &
registry()
{
    static Registry r;
    return r;
}

std::uint64_t
Snapshot::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

const std::string *
Snapshot::doc(const std::string &name) const
{
    for (const auto &[n, d] : docs)
        if (n == name)
            return &d;
    return nullptr;
}

std::vector<std::pair<std::string, double>>
Snapshot::hitRates() const
{
    std::vector<std::pair<std::string, double>> rates;
    for (const auto &[name, hits] : counters) {
        const std::size_t suffix = name.rfind(".hits");
        if (suffix == std::string::npos || suffix + 5 != name.size())
            continue;
        const std::string base = name.substr(0, suffix);
        const std::uint64_t misses = counter(base + ".misses");
        const std::uint64_t total = hits + misses;
        if (total == 0)
            continue;
        rates.emplace_back(base + ".hit_rate",
                           double(hits) / double(total));
    }
    return rates;
}

std::string
Snapshot::format() const
{
    std::string out;
    char line[256];
    if (!counters.empty()) {
        out += "counters:\n";
        for (const auto &[name, v] : counters) {
            std::snprintf(line, sizeof(line), "  %-36s %12llu\n",
                          name.c_str(),
                          static_cast<unsigned long long>(v));
            out += line;
        }
    }
    const auto rates = hitRates();
    if (!rates.empty()) {
        out += "derived:\n";
        for (const auto &[name, r] : rates) {
            const std::string base = name.substr(0, name.rfind('.'));
            std::snprintf(
                line, sizeof(line), "  %-36s %11.1f%%  (%llu/%llu)\n",
                name.c_str(), 100.0 * r,
                static_cast<unsigned long long>(counter(base + ".hits")),
                static_cast<unsigned long long>(
                    counter(base + ".hits") + counter(base + ".misses")));
            out += line;
        }
    }
    if (!gauges.empty()) {
        out += "gauges:\n";
        for (const auto &[name, v] : gauges) {
            std::snprintf(line, sizeof(line), "  %-36s %12.4g\n",
                          name.c_str(), v);
            out += line;
        }
    }
    if (!histograms.empty()) {
        out += "histograms:          "
               "count      mean       p50       p90       p99       max\n";
        for (const auto &[name, h] : histograms) {
            std::snprintf(line, sizeof(line),
                          "  %-16s %8llu %9s %9s %9s %9s %9s\n",
                          name.c_str(),
                          static_cast<unsigned long long>(h.count),
                          humanTime(h.meanS()).c_str(),
                          humanTime(h.p50S).c_str(),
                          humanTime(h.p90S).c_str(),
                          humanTime(h.p99S).c_str(),
                          humanTime(h.maxS).c_str());
            out += line;
        }
    }
    return out;
}

std::string
Snapshot::toJson() const
{
    std::string s = "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        s += (i ? ", " : "") + jsonQuote(counters[i].first) + ": " +
             std::to_string(counters[i].second);
    }
    s += "},\n  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        s += (i ? ", " : "") + jsonQuote(gauges[i].first) + ": " +
             jsonNum(gauges[i].second);
    }
    s += "},\n  \"derived\": {";
    const auto rates = hitRates();
    for (std::size_t i = 0; i < rates.size(); ++i) {
        s += (i ? ", " : "") + jsonQuote(rates[i].first) + ": " +
             jsonNum(rates[i].second);
    }
    s += "},\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const auto &[name, h] = histograms[i];
        s += (i ? ",\n    " : "\n    ") + jsonQuote(name) + ": {";
        s += "\"count\": " + std::to_string(h.count);
        s += ", \"sum_s\": " + jsonNum(h.sumS);
        s += ", \"mean_s\": " + jsonNum(h.meanS());
        s += ", \"min_s\": " + jsonNum(h.minS);
        s += ", \"max_s\": " + jsonNum(h.maxS);
        s += ", \"p50_s\": " + jsonNum(h.p50S);
        s += ", \"p90_s\": " + jsonNum(h.p90S);
        s += ", \"p99_s\": " + jsonNum(h.p99S);
        s += "}";
    }
    s += histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
    return s;
}

} // namespace neurometer::obs
