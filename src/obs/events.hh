/**
 * @file
 * Flight recorder: a process-wide fixed-size ring of structured
 * events (request lifecycle, point failures, cancellations,
 * checkpoint flushes, slow-point records) with severity, wall-clock
 * timestamp, and the serve request id the work was attributed to.
 *
 * The ring keeps the last kEventCapacity events; older ones are
 * overwritten (total recorded count stays queryable). It is meant for
 * "what was the daemon doing just before X" questions: /statusz
 * renders the tail, run manifests embed the tail, and `neurometer
 * serve --flight-recorder FILE` dumps the whole ring as JSONL on
 * shutdown or a fatal error.
 *
 * The same file hosts the slow-op tracker: a bounded worst-N list of
 * the most expensive point evaluations (by wall-clock), labelled with
 * the design point and request id, so "which config is eating the
 * sweep" is answerable live from /statusz and post-hoc from
 * manifests.
 *
 * Writes take one short mutex (no allocation beyond the strings being
 * stored); this is for events that happen at most a few thousand
 * times per run, not per-MAC hot paths — use obs::Counter there.
 */

#ifndef NEUROMETER_OBS_EVENTS_HH
#define NEUROMETER_OBS_EVENTS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace neurometer::obs {

/** Events kept in the ring before overwrite. */
inline constexpr std::size_t kEventCapacity = 512;

/** Worst evaluations retained by the slow-op tracker. */
inline constexpr std::size_t kSlowOpCapacity = 10;

enum class EventSeverity { Info, Warn, Error };

/** "info" / "warn" / "error". */
const char *eventSeverityStr(EventSeverity sev);

/** One flight-recorder entry. */
struct Event
{
    std::uint64_t seq = 0;     ///< 1-based monotonic sequence number
    std::int64_t wallMs = 0;   ///< unix epoch milliseconds
    EventSeverity severity = EventSeverity::Info;
    std::string type;      ///< dotted kind, e.g. "request.start"
    std::string requestId; ///< serve request id ("r42"), may be empty
    std::string detail;    ///< free-form human text
};

/** Append to the ring (thread-safe). */
void recordEvent(EventSeverity sev, const std::string &type,
                 const std::string &request_id, const std::string &detail);

/** Last events, oldest first; max_n = 0 means the whole ring. */
std::vector<Event> recentEvents(std::size_t max_n = 0);

/** Ring events of one dotted `type`, oldest first — lifecycle
 *  assertions ("every lease.expire has a lease.reassign") in tests and
 *  the coordinator's own degradation accounting. */
std::vector<Event> eventsOfType(const std::string &type);

/** Total events ever recorded (including overwritten ones). */
std::uint64_t eventsRecorded();

/** Drop all buffered events and reset the sequence (tests). */
void clearEvents();

/** One event as a compact JSON object. */
std::string eventJson(const Event &e);

/** Tail of the ring as a JSON array (for manifests). */
std::string eventsJson(std::size_t max_n = 0);

/** Whole ring as JSON-lines text, one event per line. */
std::string eventsToJsonl();

/** Atomically write eventsToJsonl() to `path`; throws IoError. */
void dumpFlightRecorder(const std::string &path);

// ---------------------------------------------------------------------
// Slow-op tracker

/** One expensive evaluation, as ranked by the tracker. */
struct SlowOp
{
    std::string site;      ///< where it ran: "sweep.point", "search.point"
    std::string label;     ///< design point / config description
    double seconds = 0.0;  ///< eval wall-clock
    std::string requestId; ///< serve request id, may be empty
};

/**
 * Offer an evaluation to the worst-N tracker. Returns the 0-based
 * rank it entered at (0 = new slowest overall) or -1 when it was not
 * slow enough to be tracked. Engines record a flight-recorder event
 * only for rank 0, so "new slowest point" events stay rare.
 */
int recordSlowOp(const std::string &site, const std::string &label,
                 double seconds, const std::string &request_id);

/** Current worst evaluations, slowest first. */
std::vector<SlowOp> slowOps();

/** Forget all tracked slow ops (tests, per-run manifests). */
void clearSlowOps();

/** slowOps() as a JSON array (for manifests and /statusz tooling). */
std::string slowOpsJson();

} // namespace neurometer::obs

#endif // NEUROMETER_OBS_EVENTS_HH
