/**
 * @file
 * Process-wide metrics registry: named monotonic counters, gauges, and
 * latency histograms, unified behind one snapshot/merge API.
 *
 * Hot-path writes are sharded per thread: every thread owns a private
 * slab of relaxed atomics, so an increment is one uncontended
 * fetch_add with no shared cache line — "lock-free-ish" in the sense
 * that the only lock in the system guards name interning and shard
 * registration, never a metric update. snapshot() merges all shards
 * (including those of threads that have already exited; the registry
 * keeps every shard alive) into a point-in-time Snapshot that can be
 * formatted for humans or serialized to JSON for run manifests.
 *
 * Handles are cheap value types resolved once by name; call sites keep
 * them in function-local statics:
 *
 *   static const obs::Counter hits = obs::counter("eval_cache.hits");
 *   hits.inc();
 *
 * Histograms record durations in seconds into power-of-two nanosecond
 * buckets; quantiles reported by a snapshot interpolate linearly
 * within the containing bucket (clamped to the observed min/max), so
 * they are estimates bounded by the bucket width — use the tracer for
 * exact per-span timings.
 */

#ifndef NEUROMETER_OBS_METRICS_HH
#define NEUROMETER_OBS_METRICS_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace neurometer::obs {

/** Monotonic counter handle (per-thread sharded; see file comment). */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) const;

  private:
    friend class Registry;
    explicit Counter(std::uint32_t id) : _id(id) {}
    std::uint32_t _id;
};

/** Last-write-wins scalar (not sharded: one atomic per gauge). */
class Gauge
{
  public:
    void set(double v) const;
    void add(double v) const;

  private:
    friend class Registry;
    explicit Gauge(std::uint32_t id) : _id(id) {}
    std::uint32_t _id;
};

/** Latency histogram handle; record() takes seconds. */
class Histogram
{
  public:
    void record(double seconds) const;

  private:
    friend class Registry;
    explicit Histogram(std::uint32_t id) : _id(id) {}
    std::uint32_t _id;
};

/** Merged view of one histogram at snapshot time. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sumS = 0.0;
    double minS = 0.0;
    double maxS = 0.0;
    /** @name Within-bucket interpolated quantiles (see file comment) */
    /** @{ */
    double p50S = 0.0;
    double p90S = 0.0;
    double p99S = 0.0;
    /** @} */
    /** Non-empty buckets, ascending: (upper bound in seconds, count).
     *  Exposition renders these as cumulative `_bucket` series. */
    std::vector<std::pair<double, std::uint64_t>> buckets;

    double meanS() const { return count == 0 ? 0.0 : sumS / double(count); }
};

/**
 * Point-in-time merge of every shard, sorted by metric name. The one
 * formatting path for run telemetry: the CLI, the benches, and the
 * run manifests all render metrics through format()/toJson().
 */
struct Snapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    /** (name, help text) for every metric registered with a doc,
     *  sorted by name; exposition renders them as HELP lines. */
    std::vector<std::pair<std::string, std::string>> docs;

    /** Value of a counter, or 0 when it was never registered. */
    std::uint64_t counter(const std::string &name) const;

    /** Help text registered for `name`, or nullptr. */
    const std::string *doc(const std::string &name) const;

    /**
     * Derived ratios: for every counter pair `<base>.hits` /
     * `<base>.misses` with at least one event, (`<base>.hit_rate`,
     * rate in [0,1]). This is how cache hit rates reach manifests
     * without every cache hand-rolling the division.
     */
    std::vector<std::pair<std::string, double>> hitRates() const;

    /** Human-readable multi-line rendering (aligned, rate-annotated). */
    std::string format() const;

    /** JSON object: counters, gauges, derived rates, histograms. */
    std::string toJson() const;
};

/** The process-wide metric namespace. */
class Registry
{
  public:
    /** Intern `name` (registering it on first use) -> stable handle.
     *  The same name always resolves to the same underlying metric.
     *  A non-empty `doc` becomes the metric's help text (first writer
     *  wins; later registrations may fill in a missing doc). */
    Counter counter(const std::string &name, const std::string &doc = "");
    Gauge gauge(const std::string &name, const std::string &doc = "");
    Histogram histogram(const std::string &name,
                        const std::string &doc = "");

    /** Merge every shard into a consistent-enough point-in-time view
     *  (individual cells are read with relaxed atomics). */
    Snapshot snapshot() const;

    /**
     * Zero every counter/gauge/histogram cell, keeping registrations
     * and handles valid. Data-race-free against concurrent writers,
     * but increments in flight may land on either side of the sweep —
     * reset between phases, not during one (tests, cold-cache benches).
     */
    void reset();

  private:
    friend Registry &registry();
    Registry() = default;
};

/** The singleton registry (never destroyed: safe from late threads). */
Registry &registry();

/** @name Convenience: registry().counter(name) etc. */
/** @{ */
inline Counter counter(const std::string &name, const std::string &doc = "")
{
    return registry().counter(name, doc);
}
inline Gauge gauge(const std::string &name, const std::string &doc = "")
{
    return registry().gauge(name, doc);
}
inline Histogram histogram(const std::string &name,
                           const std::string &doc = "")
{
    return registry().histogram(name, doc);
}
inline Snapshot snapshot()
{
    return registry().snapshot();
}
/** @} */

/** RAII timer: records its scope's duration into a histogram. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram h)
        : _h(h), _t0(std::chrono::steady_clock::now())
    {}
    ~ScopedTimer()
    {
        _h.record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - _t0)
                      .count());
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram _h;
    std::chrono::steady_clock::time_point _t0;
};

} // namespace neurometer::obs

#endif // NEUROMETER_OBS_METRICS_HH
