#include "obs/events.hh"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/manifest.hh"
#include "obs/metrics.hh"

namespace neurometer::obs {

namespace {

struct EventState
{
    std::mutex mu;
    std::vector<Event> ring; ///< ring buffer, capacity kEventCapacity
    std::size_t next = 0;    ///< overwrite position once full
    std::uint64_t seq = 0;   ///< total ever recorded
    std::vector<SlowOp> slow; ///< sorted slowest-first, ≤ kSlowOpCapacity
};

EventState &
eventState()
{
    // Leaked like the metrics registry: engine worker threads may
    // record events during static destruction.
    static EventState *s = new EventState;
    return *s;
}

std::int64_t
nowWallMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
eventSeverityStr(EventSeverity sev)
{
    switch (sev) {
    case EventSeverity::Warn:
        return "warn";
    case EventSeverity::Error:
        return "error";
    case EventSeverity::Info:
        break;
    }
    return "info";
}

void
recordEvent(EventSeverity sev, const std::string &type,
            const std::string &request_id, const std::string &detail)
{
    static const Counter recorded = counter(
        "obs.events.recorded", "flight-recorder events recorded (ring "
                               "keeps the most recent 512)");
    Event e;
    e.wallMs = nowWallMs();
    e.severity = sev;
    e.type = type;
    e.requestId = request_id;
    e.detail = detail;

    EventState &s = eventState();
    {
        std::lock_guard<std::mutex> lk(s.mu);
        e.seq = ++s.seq;
        if (s.ring.size() < kEventCapacity) {
            s.ring.push_back(std::move(e));
        } else {
            s.ring[s.next] = std::move(e);
            s.next = (s.next + 1) % kEventCapacity;
        }
    }
    recorded.inc();
}

std::vector<Event>
recentEvents(std::size_t max_n)
{
    EventState &s = eventState();
    std::vector<Event> out;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        out.reserve(s.ring.size());
        // Oldest-first: from the overwrite cursor around the ring.
        for (std::size_t i = 0; i < s.ring.size(); ++i)
            out.push_back(s.ring[(s.next + i) % s.ring.size()]);
    }
    if (max_n != 0 && out.size() > max_n)
        out.erase(out.begin(), out.end() - std::ptrdiff_t(max_n));
    return out;
}

std::vector<Event>
eventsOfType(const std::string &type)
{
    std::vector<Event> out;
    for (Event &e : recentEvents(0)) {
        if (e.type == type)
            out.push_back(std::move(e));
    }
    return out;
}

std::uint64_t
eventsRecorded()
{
    EventState &s = eventState();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.seq;
}

void
clearEvents()
{
    EventState &s = eventState();
    std::lock_guard<std::mutex> lk(s.mu);
    s.ring.clear();
    s.next = 0;
    s.seq = 0;
}

std::string
eventJson(const Event &e)
{
    std::string out = "{";
    out += "\"seq\": " + std::to_string(e.seq);
    out += ", \"wall_ms\": " + std::to_string(e.wallMs);
    out += ", \"severity\": " +
           jsonQuote(eventSeverityStr(e.severity));
    out += ", \"type\": " + jsonQuote(e.type);
    out += ", \"request_id\": " + jsonQuote(e.requestId);
    out += ", \"detail\": " + jsonQuote(e.detail);
    out += "}";
    return out;
}

std::string
eventsJson(std::size_t max_n)
{
    const std::vector<Event> tail = recentEvents(max_n);
    std::string out = "[";
    for (std::size_t i = 0; i < tail.size(); ++i)
        out += (i ? ", " : "") + eventJson(tail[i]);
    out += "]";
    return out;
}

std::string
eventsToJsonl()
{
    std::string out;
    for (const Event &e : recentEvents())
        out += eventJson(e) + "\n";
    return out;
}

void
dumpFlightRecorder(const std::string &path)
{
    writeTextFile(path, eventsToJsonl());
}

// ---------------------------------------------------------------------

int
recordSlowOp(const std::string &site, const std::string &label,
             double seconds, const std::string &request_id)
{
    EventState &s = eventState();
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.slow.size() >= kSlowOpCapacity &&
        seconds <= s.slow.back().seconds)
        return -1;
    SlowOp op;
    op.site = site;
    op.label = label;
    op.seconds = seconds;
    op.requestId = request_id;
    const auto pos = std::upper_bound(
        s.slow.begin(), s.slow.end(), op,
        [](const SlowOp &a, const SlowOp &b) { return a.seconds > b.seconds; });
    const int rank = int(pos - s.slow.begin());
    s.slow.insert(pos, std::move(op));
    if (s.slow.size() > kSlowOpCapacity)
        s.slow.pop_back();
    return rank;
}

std::vector<SlowOp>
slowOps()
{
    EventState &s = eventState();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.slow;
}

void
clearSlowOps()
{
    EventState &s = eventState();
    std::lock_guard<std::mutex> lk(s.mu);
    s.slow.clear();
}

std::string
slowOpsJson()
{
    const std::vector<SlowOp> ops = slowOps();
    std::string out = "[";
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const SlowOp &op = ops[i];
        out += i ? ", {" : "{";
        out += "\"site\": " + jsonQuote(op.site);
        out += ", \"label\": " + jsonQuote(op.label);
        out += ", \"seconds\": " + jsonNum(op.seconds);
        out += ", \"request_id\": " + jsonQuote(op.requestId);
        out += "}";
    }
    out += "]";
    return out;
}

} // namespace neurometer::obs
