/**
 * @file
 * Scoped tracer: RAII TraceScope spans with thread ids and
 * steady-clock timestamps, ring-buffered per thread and exported as
 * Chrome trace-event JSON — load the file in chrome://tracing or
 * https://ui.perfetto.dev to see where wall-clock goes inside a sweep.
 *
 * The tracer is compiled in only when the NEUROMETER_TRACE CMake
 * option is ON (the default, and on in CI), which defines
 * NEUROMETER_TRACE_ENABLED=1 for the whole tree. When OFF, TraceScope
 * aliases an empty struct whose constructor takes and ignores the
 * same arguments, so call sites compile unchanged and optimize to
 * nothing — tests static_assert the type is empty.
 *
 * When compiled in, tracing can still be switched off at runtime
 * (setTraceEnabled(false)); a disabled span skips the clock reads.
 * Span names must be string literals (or otherwise outlive the trace):
 * only the pointer is stored. The optional integer arg lands in the
 * event's "args" — sweeps use it for the point index.
 */

#ifndef NEUROMETER_OBS_TRACE_HH
#define NEUROMETER_OBS_TRACE_HH

#include <cstdint>
#include <string>

#ifndef NEUROMETER_TRACE_ENABLED
#define NEUROMETER_TRACE_ENABLED 0
#endif

namespace neurometer::obs {

/** The compiled-out stand-in: same shape, zero size, zero cost. */
struct NullTraceScope
{
    explicit NullTraceScope(const char *, std::uint64_t = 0) {}
    NullTraceScope(const NullTraceScope &) = delete;
    NullTraceScope &operator=(const NullTraceScope &) = delete;
};

#if NEUROMETER_TRACE_ENABLED

/** One timed span: records [construction, destruction) of its scope. */
class RealTraceScope
{
  public:
    explicit RealTraceScope(const char *name, std::uint64_t arg = 0);
    ~RealTraceScope();
    RealTraceScope(const RealTraceScope &) = delete;
    RealTraceScope &operator=(const RealTraceScope &) = delete;

  private:
    const char *_name;
    std::uint64_t _arg;
    std::uint64_t _startNs;
    bool _live;
};

using TraceScope = RealTraceScope;
inline constexpr bool traceCompiledIn = true;

/** Runtime switch (default on). Spans opened while off are dropped. */
void setTraceEnabled(bool on);
bool traceEnabled();

/** Drop every buffered event (thread buffers stay registered). */
void clearTrace();

/** Events currently buffered across all threads. */
std::uint64_t traceEventCount();

/**
 * Chrome trace-event JSON of every buffered span: one "X" (complete)
 * event per span plus a thread_name metadata event per thread. Each
 * per-thread ring holds the most recent 64Ki spans; older ones are
 * overwritten (total-started counts are in traceEventCount callers'
 * hands via metrics counters, not here).
 */
std::string traceToJson();

#else // !NEUROMETER_TRACE_ENABLED

using TraceScope = NullTraceScope;
inline constexpr bool traceCompiledIn = false;

inline void setTraceEnabled(bool) {}
inline bool traceEnabled()
{
    return false;
}
inline void clearTrace() {}
inline std::uint64_t traceEventCount()
{
    return 0;
}
inline std::string traceToJson()
{
    return "{\"traceEvents\": []}\n";
}

#endif // NEUROMETER_TRACE_ENABLED

} // namespace neurometer::obs

#endif // NEUROMETER_OBS_TRACE_HH
