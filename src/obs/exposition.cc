#include "obs/exposition.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace neurometer::obs {

namespace {

bool
isNameChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** One full metric family: optional HELP, TYPE, then sample lines. */
void
family(std::string &out, const Snapshot &snap, const std::string &raw_name,
       const std::string &exposed, const char *type,
       const std::string &samples)
{
    if (const std::string *d = snap.doc(raw_name))
        out += "# HELP " + exposed + " " + escapeHelp(*d) + "\n";
    out += "# TYPE " + exposed + " ";
    out += type;
    out += "\n";
    out += samples;
}

/** Short float for `le` labels: bucket bounds are powers of two in
 *  nanoseconds, %g keeps them unambiguous and readable. */
std::string
leBound(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name)
        out += isNameChar(c) ? c : '_';
    if (out.empty())
        out = "_";
    if (std::isdigit(static_cast<unsigned char>(out[0])) != 0)
        out.insert(out.begin(), '_');
    return out;
}

std::string
escapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
promValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "+Inf" : "-Inf";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
renderPrometheus(const Snapshot &snap)
{
    std::string out;
    out.reserve(4096);

    for (const auto &[name, v] : snap.counters) {
        const std::string exposed = sanitizeMetricName(name) + "_total";
        family(out, snap, name, exposed, "counter",
               exposed + " " + std::to_string(v) + "\n");
    }

    for (const auto &[name, v] : snap.hitRates()) {
        const std::string exposed = sanitizeMetricName(name);
        family(out, snap, name, exposed, "gauge",
               exposed + " " + promValue(v) + "\n");
    }

    for (const auto &[name, v] : snap.gauges) {
        const std::string exposed = sanitizeMetricName(name);
        family(out, snap, name, exposed, "gauge",
               exposed + " " + promValue(v) + "\n");
    }

    for (const auto &[name, h] : snap.histograms) {
        const std::string exposed = sanitizeMetricName(name);
        std::string samples;
        std::uint64_t cum = 0;
        for (const auto &[upper_s, n] : h.buckets) {
            cum += n;
            samples += exposed + "_bucket{le=\"" + leBound(upper_s) +
                       "\"} " + std::to_string(cum) + "\n";
        }
        samples += exposed + "_bucket{le=\"+Inf\"} " +
                   std::to_string(h.count) + "\n";
        samples += exposed + "_sum " + promValue(h.sumS) + "\n";
        samples += exposed + "_count " + std::to_string(h.count) + "\n";
        family(out, snap, name, exposed, "histogram", samples);
    }

    return out;
}

} // namespace neurometer::obs
