/**
 * @file
 * Run manifests: a machine-readable JSON record written next to every
 * sweep/bench export so any CSV can be traced back to exactly what
 * produced it — the command, the resolved config, the build (git
 * describe, compiler, flags), elapsed time, and a final metrics
 * snapshot. Plus the small JSON-rendering helpers the rest of obs/
 * shares (quoting, number formatting, timestamps).
 */

#ifndef NEUROMETER_OBS_MANIFEST_HH
#define NEUROMETER_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace neurometer::obs {

/** JSON string literal (quotes, escapes control chars/backslashes). */
std::string jsonQuote(const std::string &s);

/** JSON number with round-trip precision; inf/nan render as null. */
std::string jsonNum(double v);

/** Current wall-clock time as ISO-8601 UTC ("2026-08-05T09:31:02Z"). */
std::string isoTimestampUtc();

/** Compile-time identity of this binary, for manifests. */
struct BuildInfo
{
    /** `git describe --always --dirty --tags` at configure time. */
    static std::string gitDescribe();
    /** Compiler identification (__VERSION__). */
    static std::string compiler();
    /** CMAKE_BUILD_TYPE the library was built with. */
    static std::string buildType();
    /** Whether the Chrome-trace tracer is compiled in. */
    static bool traceCompiledIn();
};

/**
 * Ordered key -> JSON-value builder. Values set through set() are
 * rendered as the matching JSON type; raw() splices pre-rendered JSON
 * (arrays, nested objects, a metrics Snapshot::toJson()) under a key.
 * str() renders the whole object with keys in insertion order.
 */
class ManifestBuilder
{
  public:
    ManifestBuilder &set(const std::string &key, const std::string &value);
    ManifestBuilder &set(const std::string &key, const char *value);
    ManifestBuilder &set(const std::string &key, double value);
    ManifestBuilder &set(const std::string &key, std::int64_t value);
    ManifestBuilder &set(const std::string &key, bool value);
    ManifestBuilder &raw(const std::string &key, const std::string &json);

    std::string str() const;

  private:
    std::vector<std::pair<std::string, std::string>> _items;
};

/**
 * A builder pre-filled with the standard header every NeuroMeter run
 * manifest shares: tool, command, timestamp, git describe, compiler,
 * build type, trace availability.
 */
ManifestBuilder runManifest(const std::string &tool,
                            const std::string &command);

/**
 * The standard bench epilogue: write runManifest(tool, tool) plus the
 * current metrics snapshot (under "metrics") to `path`.
 */
void writeMetricsManifest(const std::string &tool, const std::string &path);

/** Atomic write (common/io.hh); throws IoError on I/O failure. */
void writeTextFile(const std::string &path, const std::string &content);

} // namespace neurometer::obs

#endif // NEUROMETER_OBS_MANIFEST_HH
