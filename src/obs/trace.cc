#include "obs/trace.hh"

#if NEUROMETER_TRACE_ENABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/manifest.hh"
#include "obs/metrics.hh"

namespace neurometer::obs {

namespace {

constexpr std::size_t kRingCapacity = std::size_t(1) << 16;

struct TraceEvent
{
    const char *name;
    std::uint64_t arg;
    std::uint64_t startNs;
    std::uint64_t durNs;
};

struct TraceBuffer
{
    // Locked by the owning thread per event end and by exporters; the
    // lock is private to one thread's buffer, so it is effectively
    // uncontended on the hot path.
    std::mutex mu;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;       ///< write cursor (wraps at capacity)
    std::uint64_t stored = 0;   ///< min(total written, capacity)
    int tid = 0;
};

struct TraceState
{
    std::mutex mu; ///< guards the buffer list / tid assignment
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::atomic<bool> enabled{true};
    int nextTid = 1;
};

TraceState &
state()
{
    // Leaked on purpose (mirrors obs/metrics): late threads may still
    // close spans during static destruction.
    static TraceState *s = new TraceState;
    return *s;
}

std::uint64_t
nowNs()
{
    // Anchored at first use so timestamps are small positive offsets.
    static const std::chrono::steady_clock::time_point anchor =
        std::chrono::steady_clock::now();
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - anchor)
            .count());
}

TraceBuffer &
localBuffer()
{
    thread_local std::shared_ptr<TraceBuffer> tls;
    if (!tls) {
        tls = std::make_shared<TraceBuffer>();
        TraceState &s = state();
        std::lock_guard<std::mutex> lk(s.mu);
        tls->tid = s.nextTid++;
        s.buffers.push_back(tls);
    }
    return *tls;
}

} // namespace

RealTraceScope::RealTraceScope(const char *name, std::uint64_t arg)
    : _name(name), _arg(arg), _startNs(0),
      _live(state().enabled.load(std::memory_order_relaxed))
{
    if (_live)
        _startNs = nowNs();
}

RealTraceScope::~RealTraceScope()
{
    if (!_live)
        return;
    const std::uint64_t end = nowNs();
    TraceBuffer &b = localBuffer();
    std::lock_guard<std::mutex> lk(b.mu);
    if (b.ring.size() < kRingCapacity) {
        b.ring.push_back({_name, _arg, _startNs, end - _startNs});
        b.next = b.ring.size() % kRingCapacity;
    } else {
        // Overwriting the oldest span: the exported Chrome trace is
        // silently truncated, so make the loss countable.
        static const Counter dropped = counter(
            "obs.trace.dropped_spans",
            "trace spans overwritten by per-thread ring overflow (the "
            "exported Chrome trace is missing these)");
        dropped.inc();
        b.ring[b.next] = {_name, _arg, _startNs, end - _startNs};
        b.next = (b.next + 1) % kRingCapacity;
    }
    b.stored = b.ring.size();
}

void
setTraceEnabled(bool on)
{
    state().enabled.store(on, std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return state().enabled.load(std::memory_order_relaxed);
}

void
clearTrace()
{
    TraceState &s = state();
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        buffers = s.buffers;
    }
    for (const auto &b : buffers) {
        std::lock_guard<std::mutex> lk(b->mu);
        b->ring.clear();
        b->next = 0;
        b->stored = 0;
    }
}

std::uint64_t
traceEventCount()
{
    TraceState &s = state();
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        buffers = s.buffers;
    }
    std::uint64_t n = 0;
    for (const auto &b : buffers) {
        std::lock_guard<std::mutex> lk(b->mu);
        n += b->stored;
    }
    return n;
}

std::string
traceToJson()
{
    TraceState &s = state();
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        buffers = s.buffers;
    }

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    char line[256];
    for (const auto &b : buffers) {
        std::vector<TraceEvent> events;
        int tid;
        {
            std::lock_guard<std::mutex> lk(b->mu);
            tid = b->tid;
            events.reserve(b->ring.size());
            // Oldest first: once the ring has wrapped, `next` points
            // at the oldest surviving event.
            const std::size_t n = b->ring.size();
            const std::size_t start =
                n < kRingCapacity ? 0 : b->next;
            for (std::size_t i = 0; i < n; ++i)
                events.push_back(b->ring[(start + i) % n]);
        }
        if (events.empty())
            continue;
        if (!first)
            out += ",\n";
        first = false;
        std::snprintf(line, sizeof(line),
                      "{\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"tid\": %d, "
                      "\"args\": {\"name\": \"thread %d\"}}",
                      tid, tid);
        out += line;
        for (const TraceEvent &e : events) {
            std::snprintf(line, sizeof(line),
                          ",\n{\"name\": %s, \"cat\": \"neurometer\", "
                          "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                          "\"pid\": 1, \"tid\": %d, "
                          "\"args\": {\"arg\": %llu}}",
                          jsonQuote(e.name).c_str(),
                          double(e.startNs) / 1e3, double(e.durNs) / 1e3,
                          tid,
                          static_cast<unsigned long long>(e.arg));
            out += line;
        }
    }
    out += "\n]}\n";
    return out;
}

} // namespace neurometer::obs

#endif // NEUROMETER_TRACE_ENABLED
