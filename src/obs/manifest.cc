#include "obs/manifest.hh"

#include <cmath>
#include <cstdio>
#include <ctime>

#include "common/error.hh"
#include "common/io.hh"
#include "common/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

#ifndef NEUROMETER_GIT_DESCRIBE
#define NEUROMETER_GIT_DESCRIBE "unknown"
#endif
#ifndef NEUROMETER_BUILD_TYPE
#define NEUROMETER_BUILD_TYPE "unknown"
#endif

namespace neurometer::obs {

std::string
jsonQuote(const std::string &s)
{
    return json::quote(s);
}

std::string
jsonNum(double v)
{
    return json::number(v);
}

std::string
isoTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string
BuildInfo::gitDescribe()
{
    return NEUROMETER_GIT_DESCRIBE;
}

std::string
BuildInfo::compiler()
{
#ifdef __VERSION__
    return __VERSION__;
#else
    return "unknown";
#endif
}

std::string
BuildInfo::buildType()
{
    return NEUROMETER_BUILD_TYPE;
}

bool
BuildInfo::traceCompiledIn()
{
    return obs::traceCompiledIn;
}

ManifestBuilder &
ManifestBuilder::set(const std::string &key, const std::string &value)
{
    _items.emplace_back(key, jsonQuote(value));
    return *this;
}

ManifestBuilder &
ManifestBuilder::set(const std::string &key, const char *value)
{
    return set(key, std::string(value));
}

ManifestBuilder &
ManifestBuilder::set(const std::string &key, double value)
{
    _items.emplace_back(key, jsonNum(value));
    return *this;
}

ManifestBuilder &
ManifestBuilder::set(const std::string &key, std::int64_t value)
{
    _items.emplace_back(key, std::to_string(value));
    return *this;
}

ManifestBuilder &
ManifestBuilder::set(const std::string &key, bool value)
{
    _items.emplace_back(key, value ? "true" : "false");
    return *this;
}

ManifestBuilder &
ManifestBuilder::raw(const std::string &key, const std::string &json)
{
    // Trim the trailing newline JSON renderers in this codebase emit
    // so the splice nests cleanly.
    std::string j = json;
    while (!j.empty() && (j.back() == '\n' || j.back() == ' '))
        j.pop_back();
    _items.emplace_back(key, std::move(j));
    return *this;
}

std::string
ManifestBuilder::str() const
{
    std::string s = "{\n";
    for (std::size_t i = 0; i < _items.size(); ++i) {
        // Re-indent nested multi-line values by one level.
        std::string value = _items[i].second;
        std::string indented;
        indented.reserve(value.size());
        for (char c : value) {
            indented += c;
            if (c == '\n')
                indented += "  ";
        }
        s += "  " + jsonQuote(_items[i].first) + ": " + indented;
        s += i + 1 < _items.size() ? ",\n" : "\n";
    }
    s += "}\n";
    return s;
}

ManifestBuilder
runManifest(const std::string &tool, const std::string &command)
{
    ManifestBuilder m;
    m.set("tool", tool)
        .set("command", command)
        .set("created_at", isoTimestampUtc())
        .set("git_describe", BuildInfo::gitDescribe())
        .set("compiler", BuildInfo::compiler())
        .set("build_type", BuildInfo::buildType())
        .set("trace_enabled", BuildInfo::traceCompiledIn());
    return m;
}

void
writeMetricsManifest(const std::string &tool, const std::string &path)
{
    ManifestBuilder m = runManifest(tool, tool);
    m.raw("metrics", snapshot().toJson());
    writeTextFile(path, m.str());
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    // Manifests and traces are forensic artifacts: a crash mid-write
    // must never leave a torn JSON behind, so all writes are atomic.
    writeFileAtomic(path, content);
}

} // namespace neurometer::obs
