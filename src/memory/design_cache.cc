#include "memory/design_cache.hh"

#include <cstdio>
#include <cstring>

#include "common/error.hh"
#include "obs/metrics.hh"

namespace neurometer {

/*
 * Every MemoryRequest field must be serialized by memoryRequestKey().
 * When a field is added, removed, or resized, extend the key and
 * update this tripwire — skipping it silently aliases distinct
 * requests onto one cached design.
 */
static_assert(sizeof(MemoryRequest) == 72,
              "MemoryRequest changed: update memoryRequestKey()");

std::string
memoryRequestKey(const MemoryRequest &r, const TechNode &tech)
{
    // Hex-float ("%a") doubles are exact and locale-free; '|'
    // separators keep adjacent fields from aliasing. The tech node is
    // identified by its constructor inputs (feature size, resolved
    // supply) — every derived parameter is a function of those.
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%a|%a|%d|%d|%d|%d|%d|%d|%d|%d|%a|%a|%a|%a|%a",
                  r.capacityBytes, r.blockBytes,
                  static_cast<int>(r.cell), r.readPorts, r.writePorts,
                  static_cast<int>(r.searchPorts), r.fixedBanks,
                  static_cast<int>(r.cacheMode), r.cacheWays, r.tagBits,
                  r.targetCycleS, r.targetReadBwBytesPerS,
                  r.targetWriteBwBytesPerS, tech.nodeNm(), tech.vdd());
    return buf;
}

namespace {

/** Undo the "config error: " / "model error: " prefix the exception
 *  constructors prepend, so a cached rethrow doesn't double it. */
std::string
stripPrefix(const char *what, const char *prefix)
{
    const std::size_t n = std::strlen(prefix);
    return std::strncmp(what, prefix, n) == 0 ? std::string(what + n)
                                              : std::string(what);
}

} // namespace

MemoryDesign
MemoryDesignCache::getOrCompute(const std::string &key,
                                const Compute &compute)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(_mu);
        std::shared_ptr<Entry> &slot = _map[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    bool computed_here = false;
    std::unique_lock<std::mutex> lk(entry->mu);
    while (entry->state != State::Done) {
        if (entry->state == State::Computing) {
            entry->cv.wait(lk);
            continue;
        }
        // Claim the entry; search outside the lock so other keys
        // (and stats/size) never stall behind a slow optimize().
        entry->state = State::Computing;
        lk.unlock();
        Outcome outcome = Outcome::Value;
        MemoryDesign value;
        std::string error;
        try {
            value = compute();
        } catch (const ConfigError &e) {
            outcome = Outcome::ConfigFailure;
            error = stripPrefix(e.what(), "config error: ");
        } catch (const ModelError &e) {
            outcome = Outcome::ModelFailure;
            error = stripPrefix(e.what(), "model error: ");
        } catch (...) {
            // Anything else (an injected fault, bad_alloc) is not a
            // search result: roll back to Empty so a later request
            // (possibly a blocked waiter) retries. Counts neither hit
            // nor miss.
            lk.lock();
            entry->state = State::Empty;
            entry->cv.notify_all();
            throw;
        }
        lk.lock();
        entry->outcome = outcome;
        entry->value = value;
        entry->error = error;
        entry->state = State::Done;
        computed_here = true;
        entry->cv.notify_all();
    }
    const Outcome outcome = entry->outcome;
    const std::string error = entry->error;
    const MemoryDesign value = entry->value;
    lk.unlock();
    // clear() zeroes the per-instance atomics below; the registry
    // counters stay monotonic across clears (they are run telemetry,
    // not cache state).
    static const obs::Counter reg_hits =
        obs::counter("memory_design_cache.hits");
    static const obs::Counter reg_misses =
        obs::counter("memory_design_cache.misses");
    if (computed_here) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        reg_misses.inc();
    } else {
        _hits.fetch_add(1, std::memory_order_relaxed);
        reg_hits.inc();
    }

    switch (outcome) {
      case Outcome::ConfigFailure:
        throw ConfigError(error);
      case Outcome::ModelFailure:
        throw ModelError(error);
      case Outcome::Value:
        break;
    }
    return value;
}

MemoryDesign
MemoryDesignCache::optimize(const TechNode &tech, const MemoryRequest &req)
{
    return getOrCompute("opt|" + memoryRequestKey(req, tech), [&] {
        return MemoryModel(tech).optimize(req);
    });
}

MemoryDesign
MemoryDesignCache::evaluate(const TechNode &tech, const MemoryRequest &req,
                            int banks, int rows, int cols, int read_ports,
                            int write_ports)
{
    char geom[96];
    std::snprintf(geom, sizeof(geom), "ev|%d|%d|%d|%d|%d|", banks, rows,
                  cols, read_ports, write_ports);
    return getOrCompute(geom + memoryRequestKey(req, tech), [&] {
        return MemoryModel(tech).evaluate(req, banks, rows, cols,
                                          read_ports, write_ports);
    });
}

MemoryCacheStats
MemoryDesignCache::stats() const
{
    MemoryCacheStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    return s;
}

std::size_t
MemoryDesignCache::size() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _map.size();
}

void
MemoryDesignCache::clear()
{
    std::lock_guard<std::mutex> lk(_mu);
    _map.clear();
    _hits.store(0);
    _misses.store(0);
}

MemoryDesignCache &
memoryDesignCache()
{
    static MemoryDesignCache cache;
    return cache;
}

} // namespace neurometer
