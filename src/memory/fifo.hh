/**
 * @file
 * FIFO / small-scratchpad models: DFF-based for shallow queues (TU I/O
 * FIFOs, NoC router buffers), SRAM-backed above a size threshold.
 */

#ifndef NEUROMETER_MEMORY_FIFO_HH
#define NEUROMETER_MEMORY_FIFO_HH

#include "common/pat.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** Configuration of a FIFO queue. */
struct FifoConfig
{
    int entries = 4;
    int widthBits = 32;
    double freqHz = 1e9;
    /** Push+pop events per cycle at full utilization (<= 2.0). */
    double activity = 1.0;
};

/**
 * Evaluate a FIFO at full utilization (scale dynamic power externally
 * for lower activity). Uses DFF storage below 16 Kbit, SRAM above.
 */
PAT fifoPAT(const TechNode &tech, const FifoConfig &cfg);

/**
 * A small single-ported scratchpad (e.g. the per-PE spad in Eyeriss),
 * accessed @p accesses_per_cycle times per cycle at full utilization.
 */
PAT scratchpadPAT(const TechNode &tech, double bytes, int width_bits,
                  double freq_hz, double accesses_per_cycle,
                  bool sram_cells);

} // namespace neurometer

#endif // NEUROMETER_MEMORY_FIFO_HH
