/**
 * @file
 * Process-wide memoization of memory-array searches.
 *
 * Every ChipModel build runs at least three memory searches — the core
 * Mem slice (an optimize() over ~3k candidates), the scalar-unit
 * register file, and the vector register file — plus the FIFO/
 * scratchpad helpers, and design-space sweeps rebuild thousands of
 * chips whose memory subsystems are identical (only the TU geometry
 * varies). The cache keys on a canonical serialization of the
 * MemoryRequest plus the technology identity (node, supply), so those
 * sweeps never re-run a memory search at all.
 *
 * Concurrency mirrors explore/eval_cache: a mutex guards the map only
 * for lookup/insert — never while a design is being computed — and
 * concurrent requests for the same uncached key rendezvous on a
 * per-entry state machine (Empty -> Computing -> Done) guarded by the
 * entry's own mutex, so each design is computed exactly once on
 * success. Searches that throw ConfigError/ModelError are cached too
 * and rethrown with the original message on every later request; any
 * other exception (e.g. an injected fault) resets the entry to Empty
 * and wakes waiters so a later request retries — synthetic failures
 * are never memoized.
 */

#ifndef NEUROMETER_MEMORY_DESIGN_CACHE_HH
#define NEUROMETER_MEMORY_DESIGN_CACHE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "memory/sram_array.hh"

namespace neurometer {

/**
 * Canonical cache key: every MemoryRequest field plus the tech-node
 * identity (feature size, supply) with exact hex-float formatting.
 * Two requests share a key iff every modeled input is bit-identical.
 */
std::string memoryRequestKey(const MemoryRequest &req,
                             const TechNode &tech);

/** Hit/miss counters, sampled atomically per counter. */
struct MemoryCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    hitRate() const
    {
        const std::uint64_t n = hits + misses;
        return n == 0 ? 0.0 : double(hits) / double(n);
    }
};

/** Memoized, thread-safe memory-search result map. */
class MemoryDesignCache
{
  public:
    using Compute = std::function<MemoryDesign()>;

    /**
     * Memoize an arbitrary memory search under `key`. The request
     * that triggers the computation counts as a miss; every other
     * request for the key — including ones that block while another
     * thread computes it — counts as a hit. A compute that throws
     * ConfigError or ModelError caches the failure.
     */
    MemoryDesign getOrCompute(const std::string &key,
                              const Compute &compute);

    /** Memoized MemoryModel(tech).optimize(req). */
    MemoryDesign optimize(const TechNode &tech, const MemoryRequest &req);

    /** Memoized MemoryModel(tech).evaluate(req, geometry, ports). */
    MemoryDesign evaluate(const TechNode &tech, const MemoryRequest &req,
                          int banks, int rows, int cols, int read_ports,
                          int write_ports);

    MemoryCacheStats stats() const;

    /** Number of distinct cached searches (failures included). */
    std::size_t size() const;

    /** Drop all entries and zero the counters (not concurrency-safe
     *  against in-flight getOrCompute calls). */
    void clear();

  private:
    enum class Outcome { Value, ConfigFailure, ModelFailure };
    enum class State { Empty, Computing, Done };

    struct Entry
    {
        std::mutex mu;
        std::condition_variable cv;
        State state = State::Empty;
        Outcome outcome = Outcome::Value;
        MemoryDesign value;
        std::string error; ///< message minus the class prefix
    };

    mutable std::mutex _mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> _map;
    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
};

/** The process-wide instance shared by every model that embeds Mem. */
MemoryDesignCache &memoryDesignCache();

} // namespace neurometer

#endif // NEUROMETER_MEMORY_DESIGN_CACHE_HH
