/**
 * @file
 * CACTI-lite memory array model.
 *
 * Models a multi-banked on-chip memory (SRAM, DFF, or eDRAM cells) the
 * way the paper describes Mem: the user gives capacity, block size, port
 * requirements (or throughput targets from which ports are searched),
 * and a cycle-time target; the internal optimizer picks the number of
 * banks, subarray geometry, and ports.
 *
 * Structure: chip Mem = banks x bank; bank = subarrays x subarray
 * (rows x cols mat with row decoder, wordline drivers, bitlines, sense
 * amps, column mux) + intra-bank H-tree; banks are stitched by a global
 * repeated bus sized for the access width.
 */

#ifndef NEUROMETER_MEMORY_SRAM_ARRAY_HH
#define NEUROMETER_MEMORY_SRAM_ARRAY_HH

#include <cstdint>
#include <string>

#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** Storage cell families supported by Mem (paper Sec. II-A). */
enum class MemCellType { SRAM, DFF, EDRAM };

std::string memCellTypeName(MemCellType t);

/** User-level memory request (the high-level config the paper asks for). */
struct MemoryRequest
{
    double capacityBytes = 0.0;
    double blockBytes = 32.0;     ///< bytes delivered per port per access
    MemCellType cell = MemCellType::SRAM;

    /**
     * Explicit per-bank port counts. When searchPorts is set these are
     * treated as minimums and the optimizer raises them until the
     * bandwidth targets are met (how TPU-v2's "two read ports and one
     * write port per bank" VMem config is "automatically searched ...
     * with the given throughput requirement").
     */
    int readPorts = 1;
    int writePorts = 1;
    bool searchPorts = false;

    /** Pin the bank count (0 = let the optimizer search it). */
    int fixedBanks = 0;

    /**
     * Cache mode (paper Sec. II-A: Mem "can be configured as a
     * software-managed scratchpad ... or a cache hierarchy"): adds
     * per-line tag storage, way comparators, and the associated
     * lookup energy/latency.
     */
    bool cacheMode = false;
    int cacheWays = 4;
    int tagBits = 24;

    double targetCycleS = 0.0;          ///< 0 = unconstrained
    double targetReadBwBytesPerS = 0.0; ///< 0 = unconstrained
    double targetWriteBwBytesPerS = 0.0;
};

/** A fully resolved memory design point with its evaluation. */
struct MemoryDesign
{
    // Resolved low-level parameters.
    int banks = 1;
    int rows = 0;
    int cols = 0;
    int subarraysPerBank = 0;
    int readPorts = 1;
    int writePorts = 1;

    // Evaluation.
    double readEnergyJ = 0.0;   ///< per block read
    double writeEnergyJ = 0.0;
    double accessDelayS = 0.0;  ///< address -> data
    double randomCycleS = 0.0;  ///< min back-to-back access period
    double readBwBytesPerS = 0.0;
    double writeBwBytesPerS = 0.0;
    double areaUm2 = 0.0;
    double leakageW = 0.0;

    Breakdown breakdown;        ///< cells / periphery / routing split
    bool feasible = false;

    /** Dynamic power at given access rates (accesses/s per port class). */
    Power powerAt(double reads_per_s, double writes_per_s) const;
};

/**
 * Deterministic "is `a` a better optimizer result than `b`": smaller
 * area first; on exactly equal area prefer fewer total ports, then
 * fewer read ports, then fewer banks, then smaller rows, then smaller
 * cols. Both the pruned and the exhaustive search rank candidates with
 * this comparator, so they return bit-identical designs.
 */
bool betterMemoryDesign(const MemoryDesign &a, const MemoryDesign &b);

/** Counters describing one optimizer search (perf introspection). */
struct MemorySearchStats
{
    std::uint64_t candidates = 0; ///< geometry points enumerated
    std::uint64_t screened = 0;   ///< rejected by the cheap screen
    std::uint64_t bounded = 0;    ///< skipped by the area lower bound
    std::uint64_t evaluated = 0;  ///< full PAT evaluations run
};

/** Analytical evaluator + optimizer for memory arrays. */
class MemoryModel
{
  public:
    explicit MemoryModel(const TechNode &tech) : _tech(tech) {}

    /**
     * Evaluate one fixed design point. Geometry that cannot hold the
     * capacity yields feasible=false.
     */
    MemoryDesign evaluate(const MemoryRequest &req, int banks, int rows,
                          int cols, int read_ports, int write_ports) const;

    /**
     * Search banks/subarray geometry/ports for the minimum-area design
     * meeting the request's cycle and bandwidth targets.
     *
     * The search is pruned: a cheap screening pass (capacity fit,
     * cycle-time lower bound from decode/sense depth, port-count
     * bandwidth ceiling) rejects candidates without evaluating them,
     * a per-candidate cell-area lower bound skips points that cannot
     * beat the incumbent, and the port loops exit early once even a
     * perfectly packed higher-port array must be larger than the best
     * design found. The full Breakdown tree is built only for the
     * returned design. Pruning is conservative: the result is
     * bit-identical to optimizeExhaustive().
     *
     * @throws ConfigError when no enumerated design satisfies them.
     */
    MemoryDesign optimize(const MemoryRequest &req,
                          MemorySearchStats *stats = nullptr) const;

    /**
     * Reference search: the same candidate space and tie-breaking as
     * optimize(), but every candidate gets a full evaluation (no
     * screening, no bounding). The equivalence anchor for the pruned
     * search, and the baseline for bench/model_speed comparisons.
     */
    MemoryDesign optimizeExhaustive(const MemoryRequest &req,
                                    MemorySearchStats *stats
                                    = nullptr) const;

  private:
    MemoryDesign evaluateImpl(const MemoryRequest &req, int banks,
                              int rows, int cols, int read_ports,
                              int write_ports,
                              bool with_breakdown) const;

    MemoryDesign search(const MemoryRequest &req, bool pruned,
                        MemorySearchStats *stats) const;

    const TechNode &_tech;
};

} // namespace neurometer

#endif // NEUROMETER_MEMORY_SRAM_ARRAY_HH
