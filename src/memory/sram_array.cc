#include "memory/sram_array.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "circuit/fit.hh"
#include "circuit/wire.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/units.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer {

std::string
memCellTypeName(MemCellType t)
{
    switch (t) {
      case MemCellType::SRAM: return "sram";
      case MemCellType::DFF: return "dff";
      case MemCellType::EDRAM: return "edram";
    }
    throw ModelError("unknown memory cell type");
}

Power
MemoryDesign::powerAt(double reads_per_s, double writes_per_s) const
{
    Power p;
    p.dynamicW = reads_per_s * readEnergyJ + writes_per_s * writeEnergyJ;
    p.leakageW = leakageW;
    return p;
}

namespace {

/** Per-cell geometry/electrical properties after port scaling. */
struct CellProps
{
    double areaUm2;
    double widthUm;
    double heightUm;
    double bitlineCapF;   // cap each cell adds to its column
    double wordlineCapF;  // cap each cell adds to its row
    double driveROhm;     // discharge resistance seen by the bitline
    double leakW;
    double cyclePenalty;  // multiplicative (eDRAM restore etc.)
};

CellProps
cellProps(const TechNode &tech, MemCellType type, int ports)
{
    constexpr double aspect = 1.4; // width : height
    CellProps c{};
    const double min_w_um = 3.0 * tech.nodeNm() * 1e-3;
    switch (type) {
      case MemCellType::SRAM: {
        const double g = 1.0 + fit::portCellGrowth * (ports - 1);
        c.areaUm2 = tech.sramCellUm2() * g * g;
        c.bitlineCapF = tech.sramCellBitlineCapF();
        c.wordlineCapF = 2.0 * tech.cGateFPerUm() * 1.5 * min_w_um;
        c.driveROhm = tech.rOnOhmUm() / (2.0 * min_w_um);
        c.leakW = tech.sramCellLeakW() * (1.0 + 0.3 * (ports - 1));
        c.cyclePenalty = 1.0;
        break;
      }
      case MemCellType::DFF: {
        const double g = 1.0 + 0.15 * (ports - 1);
        c.areaUm2 = tech.dffAreaUm2() * g;
        c.bitlineCapF = 0.08e-15; // read-mux drain load
        c.wordlineCapF = tech.cGateFPerUm() * 1.5 * min_w_um;
        c.driveROhm = tech.rOnOhmUm() / (8.0 * min_w_um); // active drive
        c.leakW = tech.dffLeakW();
        c.cyclePenalty = 1.0;
        break;
      }
      case MemCellType::EDRAM: {
        const double g = 1.0 + fit::portCellGrowth * (ports - 1);
        c.areaUm2 = tech.edramCellUm2() * g * g;
        c.bitlineCapF = 0.8 * tech.sramCellBitlineCapF();
        c.wordlineCapF = tech.cGateFPerUm() * 1.5 * min_w_um;
        c.driveROhm = 1.5 * tech.rOnOhmUm() / (2.0 * min_w_um);
        c.leakW = 0.1 * tech.sramCellLeakW() +
                  tech.edramRefreshWPerBit();
        c.cyclePenalty = 1.5; // destructive read + restore
        break;
      }
      default:
        throw ModelError("unknown memory cell type");
    }
    c.widthUm = std::sqrt(c.areaUm2 * aspect);
    c.heightUm = std::sqrt(c.areaUm2 / aspect);
    return c;
}

/** Fraction of the supply the bitline swings before sensing. */
constexpr double bitlineSwing = 0.12;

/** Candidate enumerations shared by the pruned/exhaustive searches. */
const std::vector<int> bank_choices = {1, 2, 4, 8, 16, 32, 64,
                                       128, 256, 512};
const std::vector<int> row_choices = {16, 32, 64, 128, 256, 512, 1024};
const std::vector<int> col_choices = {16, 32, 64, 128, 256, 512};

/** The multiplicative layout factors every bit of cell area pays on the
 *  way to chip area: mat overhead x bank layout x chip assembly. */
constexpr double cellAreaToChipArea = 1.12 * fit::bankLayoutOverhead * 1.05;

} // namespace

bool
betterMemoryDesign(const MemoryDesign &a, const MemoryDesign &b)
{
    if (a.areaUm2 != b.areaUm2)
        return a.areaUm2 < b.areaUm2;
    const int ap = a.readPorts + a.writePorts;
    const int bp = b.readPorts + b.writePorts;
    if (ap != bp)
        return ap < bp;
    if (a.readPorts != b.readPorts)
        return a.readPorts < b.readPorts;
    if (a.banks != b.banks)
        return a.banks < b.banks;
    if (a.rows != b.rows)
        return a.rows < b.rows;
    return a.cols < b.cols;
}

MemoryDesign
MemoryModel::evaluate(const MemoryRequest &req, int banks, int rows,
                      int cols, int read_ports, int write_ports) const
{
    return evaluateImpl(req, banks, rows, cols, read_ports, write_ports,
                        /*with_breakdown=*/true);
}

MemoryDesign
MemoryModel::evaluateImpl(const MemoryRequest &req, int banks, int rows,
                          int cols, int read_ports, int write_ports,
                          bool with_breakdown) const
{
    requireConfig(req.capacityBytes > 0.0, "memory capacity must be > 0");
    requireConfig(req.blockBytes > 0.0, "memory block size must be > 0");
    requireModel(banks > 0 && rows > 0 && cols > 0, "bad geometry");
    requireModel(read_ports >= 1 && write_ports >= 0, "bad ports");

    MemoryDesign d;
    d.banks = banks;
    d.rows = rows;
    d.cols = cols;
    d.readPorts = read_ports;
    d.writePorts = write_ports;

    const int ports = read_ports + write_ports;
    const CellProps cell = cellProps(_tech, req.cell, ports);
    const WireModel wires(_tech);
    const double vdd = _tech.vdd();

    const double cap_bits = req.capacityBytes * 8.0;
    const double block_bits = req.blockBytes * 8.0;
    const double bits_per_sub = static_cast<double>(rows) * cols;
    d.subarraysPerBank = static_cast<int>(
        std::ceil(cap_bits / (banks * bits_per_sub)));
    if (d.subarraysPerBank < 1)
        d.subarraysPerBank = 1;

    // Subarrays activated per access / column mux degree.
    const double active_subs = std::max(1.0, block_bits / cols);
    const double mux_deg = std::max(1.0, cols / block_bits);
    if (active_subs > d.subarraysPerBank) {
        d.feasible = false; // bank cannot deliver one block per access
        return d;
    }

    // ---- Subarray geometry ----------------------------------------
    const double wl_len = cols * cell.widthUm;
    const double bl_len = rows * cell.heightUm;

    const double cell_area = bits_per_sub * cell.areaUm2;
    const double dec_gates =
        rows * (fit::rowDriverGates + std::log2(std::max(2.0, double(rows))) / 4.0);
    const double sa_per_sub = cols / mux_deg; // output bits per subarray
    const double periph_gates =
        ports * dec_gates +
        cols * 2.0 +                                     // precharge
        read_ports * sa_per_sub * fit::senseAmpGates +   // sense amps
        write_ports * cols * 1.5;                        // write drivers
    const double sub_area =
        (cell_area + periph_gates * _tech.nand2AreaUm2()) * 1.12;

    // ---- Subarray timing -------------------------------------------
    const double dec_delay =
        (2.0 * std::log2(std::max(2.0, double(rows))) + 4.0) * _tech.fo4S();
    const WireParams &local = _tech.wire(WireLayer::Local);
    const double c_wl = cols * cell.wordlineCapF + local.cFPerUm * wl_len;
    const double r_wl = local.rOhmPerUm * wl_len;
    const double r_wl_drv = wires.unitDriverROhm() / 8.0;
    const double wl_delay = 0.69 * r_wl_drv * c_wl + 0.38 * r_wl * c_wl;

    const double c_bl = rows * cell.bitlineCapF + local.cFPerUm * bl_len;
    const double r_bl = local.rOhmPerUm * bl_len;
    const double bl_delay =
        (cell.driveROhm + 0.5 * r_bl) * c_bl * bitlineSwing / 0.5;
    const double sa_delay = 2.0 * _tech.fo4S();

    const double sub_access =
        dec_delay + wl_delay + bl_delay + sa_delay + 2.0 * _tech.fo4S();
    d.randomCycleS = 1.2 * sub_access * cell.cyclePenalty;

    // ---- Bank assembly ----------------------------------------------
    const double bank_core_area =
        d.subarraysPerBank * sub_area * fit::bankLayoutOverhead;
    const double htree_len = 1.2 * std::sqrt(bank_core_area);
    const double data_bits = block_bits * ports;
    const double addr_bits = 32.0 * ports;
    const WireResult htree_wire =
        wires.repeated(WireLayer::Intermediate, htree_len,
                       wires.unitDriverCF());
    const double htree_area =
        (data_bits + addr_bits) *
        (htree_wire.repeaterAreaUm2 + 0.25 * htree_wire.routingAreaUm2);
    const double bank_area = bank_core_area + htree_area;

    // ---- Chip-level assembly ----------------------------------------
    const double arrays_area = banks * bank_area;
    double global_area = 0.0;
    WireResult global_wire{};
    if (banks > 1) {
        const double global_len = 1.1 * std::sqrt(arrays_area);
        global_wire = wires.repeated(WireLayer::Global, global_len,
                                     wires.unitDriverCF());
        global_area = data_bits *
            (global_wire.repeaterAreaUm2 +
             0.25 * global_wire.routingAreaUm2);
    }
    d.areaUm2 = arrays_area * 1.05 + global_area;

    // ---- Energy ------------------------------------------------------
    const double e_dec = dec_gates * 0.5 * _tech.nand2EnergyJ();
    const double e_wl = c_wl * vdd * vdd;
    // All columns of an active subarray swing by the sense margin.
    const double e_bl_read = cols * c_bl * vdd * (vdd * bitlineSwing);
    const double e_sa = sa_per_sub * fit::senseAmpGates *
                        _tech.nand2EnergyJ();
    const double e_sub_read =
        e_dec + e_wl + e_bl_read + e_sa +
        sa_per_sub * 2.0 * _tech.nand2EnergyJ(); // output drive
    const double e_htree = 0.5 * (block_bits + 32.0) * htree_wire.energyJ;
    const double e_global =
        banks > 1 ? 0.5 * block_bits * global_wire.energyJ : 0.0;

    d.readEnergyJ = active_subs * e_sub_read + e_htree + e_global;
    // Writes drive selected columns full swing; no sensing.
    const double e_bl_write =
        block_bits / active_subs * c_bl * vdd * vdd +
        (cols - block_bits / active_subs) * c_bl * vdd *
            (vdd * bitlineSwing) * 0.5;
    d.writeEnergyJ = active_subs * (e_dec + e_wl + e_bl_write) + e_htree +
                     e_global;

    // ---- Delay / bandwidth -------------------------------------------
    d.accessDelayS = sub_access + htree_wire.delayS + global_wire.delayS;

    // Ports are per bank; banks operate concurrently (software-managed
    // scratchpads are laid out conflict-free), so bandwidth scales with
    // the bank count as well as the per-bank ports.
    const double min_pipe_cycle = 2.0 * _tech.dffDelayS();
    const double issue_cycle = std::max(d.randomCycleS, min_pipe_cycle);
    const double eff_cycle = req.targetCycleS > 0.0
        ? std::max(req.targetCycleS, issue_cycle)
        : issue_cycle;
    d.readBwBytesPerS = banks * read_ports * req.blockBytes / eff_cycle;
    d.writeBwBytesPerS =
        banks * write_ports * req.blockBytes / eff_cycle;

    // ---- Leakage -------------------------------------------------------
    const double total_bits =
        static_cast<double>(banks) * d.subarraysPerBank * bits_per_sub;
    d.leakageW = total_bits * cell.leakW +
                 banks * d.subarraysPerBank * periph_gates *
                     _tech.nand2LeakW() +
                 banks * (data_bits + addr_bits) * htree_wire.leakageW;

    // ---- Cache mode: tags, comparators, lookup costs -------------------
    double tag_area = 0.0;
    double tag_leak = 0.0;
    if (req.cacheMode) {
        requireConfig(req.cacheWays >= 1 && req.tagBits >= 1,
                      "cache config must be positive");
        const double lines = req.capacityBytes / req.blockBytes;
        const double tag_bits = lines * (req.tagBits + 2.0); // +V/D
        tag_area = tag_bits * cell.areaUm2 * 1.25; // tag periphery
        tag_leak = tag_bits * cell.leakW;
        d.areaUm2 += tag_area;
        d.leakageW += tag_leak;
        // Lookup: read `ways` tags + compare, then the selected way.
        const double e_tag =
            req.cacheWays *
            (req.tagBits + 2.0) *
            (c_bl * vdd * (vdd * bitlineSwing) / rows +
             2.0 * _tech.nand2EnergyJ());
        const double e_cmp = req.cacheWays * req.tagBits * 1.5 *
                             _tech.nand2EnergyJ();
        d.readEnergyJ += e_tag + e_cmp;
        d.writeEnergyJ += e_tag + e_cmp;
        // Tag lookup pipelines ahead of the data access, so it
        // lengthens latency but the bandwidth/feasibility terms
        // (computed above) are unaffected.
        const double t_cmp = 4.0 * _tech.fo4S();
        d.accessDelayS += t_cmp;
        d.randomCycleS += t_cmp;
    }

    // ---- Feasibility ----------------------------------------------------
    d.feasible = true;
    if (req.targetCycleS > 0.0 && issue_cycle > req.targetCycleS)
        d.feasible = false;
    if (req.targetReadBwBytesPerS > 0.0 &&
        d.readBwBytesPerS < req.targetReadBwBytesPerS)
        d.feasible = false;
    if (req.targetWriteBwBytesPerS > 0.0 &&
        d.writeBwBytesPerS < req.targetWriteBwBytesPerS)
        d.feasible = false;

    // ---- Breakdown (lazy: skipped per candidate during a search) ---------
    if (with_breakdown) {
        d.breakdown = Breakdown("mem");
        PAT cells_pat;
        cells_pat.areaUm2 = banks * d.subarraysPerBank * cell_area;
        cells_pat.power.leakageW = total_bits * cell.leakW;
        d.breakdown.addLeaf("cells", cells_pat);
        PAT periph_pat;
        periph_pat.areaUm2 = d.areaUm2 - cells_pat.areaUm2 -
                             htree_area * banks - global_area;
        periph_pat.areaUm2 = std::max(0.0, periph_pat.areaUm2);
        periph_pat.power.leakageW = banks * d.subarraysPerBank *
                                    periph_gates * _tech.nand2LeakW();
        d.breakdown.addLeaf("periphery", periph_pat);
        PAT route_pat;
        route_pat.areaUm2 = htree_area * banks + global_area;
        d.breakdown.addLeaf("routing", route_pat);
        d.breakdown.self().timing.delayS = d.accessDelayS;
        d.breakdown.self().timing.cycleS = issue_cycle;
    }

    return d;
}

namespace {

/** Folds a search's MemorySearchStats into the process-wide registry
 *  on scope exit — also when the search throws (no-fit ConfigError),
 *  so run telemetry counts the work done, not just the successes. */
struct SearchStatsRecorder
{
    const MemorySearchStats &st;

    ~SearchStatsRecorder()
    {
        static const obs::Counter searches =
            obs::counter("memory_search.searches");
        static const obs::Counter candidates =
            obs::counter("memory_search.candidates");
        static const obs::Counter screened =
            obs::counter("memory_search.screened");
        static const obs::Counter bounded =
            obs::counter("memory_search.bounded");
        static const obs::Counter evaluated =
            obs::counter("memory_search.evaluated");
        searches.inc();
        candidates.inc(st.candidates);
        screened.inc(st.screened);
        bounded.inc(st.bounded);
        evaluated.inc(st.evaluated);
    }
};

} // namespace

MemoryDesign
MemoryModel::search(const MemoryRequest &req, bool pruned,
                    MemorySearchStats *stats) const
{
    obs::TraceScope span("memory.search",
                         std::uint64_t(req.capacityBytes));
    static const obs::Histogram search_hist =
        obs::histogram("memory.search_s");
    obs::ScopedTimer timer(search_hist);
    faultInjector().at("memory.search");
    // evaluate() would reject these on the first candidate; hoisted so
    // both search flavors fail identically even when the screen would
    // discard every candidate before an evaluation runs.
    requireConfig(req.capacityBytes > 0.0, "memory capacity must be > 0");
    requireConfig(req.blockBytes > 0.0, "memory block size must be > 0");
    if (req.cacheMode) {
        requireConfig(req.cacheWays >= 1 && req.tagBits >= 1,
                      "cache config must be positive");
    }

    const int max_rp = req.searchPorts ? 4 : req.readPorts;
    const int wp_lo = std::max(1, req.writePorts);
    const int wp_hi = std::max(1, req.searchPorts ? 2 : req.writePorts);

    const double cap_bits = req.capacityBytes * 8.0;
    const double block_bits = req.blockBytes * 8.0;
    const double min_pipe_cycle = 2.0 * _tech.dffDelayS();
    const double fo4 = _tech.fo4S();
    const bool bw_constrained = req.targetReadBwBytesPerS > 0.0 ||
                                req.targetWriteBwBytesPerS > 0.0;
    // Each bank must hold at least one minimum-geometry subarray of
    // data; banking beyond that is pure area waste — unless a
    // bandwidth target might need the extra bank-level parallelism.
    const double min_sub_bits =
        double(row_choices.front()) * col_choices.front();

    // Smallest chip area any design with `ports` ports can reach:
    // every stored bit pays the port-scaled cell area plus the
    // multiplicative layout factors (periphery, H-trees, and the
    // global bus only add to it). Monotone in the port count.
    auto area_floor = [&](int ports) {
        const CellProps c = cellProps(_tech, req.cell, ports);
        double floor_um2 = cap_bits * c.areaUm2 * cellAreaToChipArea;
        if (req.cacheMode) {
            const double lines = req.capacityBytes / req.blockBytes;
            floor_um2 += lines * (req.tagBits + 2.0) * c.areaUm2 * 1.25;
        }
        return floor_um2;
    };

    MemorySearchStats local;
    MemorySearchStats &st = stats ? *stats : local;
    // Registry totals include the counts already in *stats when a
    // caller hands in a non-zero struct; in-tree callers always pass
    // a fresh one.
    SearchStatsRecorder recorder{st};

    MemoryDesign best;
    bool have_best = false;

    for (int rp = req.readPorts; rp <= max_rp; ++rp) {
        if (pruned && have_best &&
            area_floor(rp + wp_lo) >= best.areaUm2) {
            break; // area grows with ports: no higher rp can win
        }
        for (int wp = wp_lo; wp <= wp_hi; ++wp) {
            const int ports = rp + wp;
            const CellProps cell = cellProps(_tech, req.cell, ports);
            const double port_floor = area_floor(ports);
            if (pruned && have_best && port_floor >= best.areaUm2)
                break; // monotone in wp too
            const double tag_area =
                req.cacheMode ? req.capacityBytes / req.blockBytes *
                                    (req.tagBits + 2.0) * cell.areaUm2 *
                                    1.25
                              : 0.0;
            for (int banks : bank_choices) {
                if (req.fixedBanks > 0 && banks != req.fixedBanks)
                    continue;
                if (!bw_constrained && banks > 1 &&
                    banks * min_sub_bits > cap_bits) {
                    continue; // overbanked: more banks than data
                }
                for (int rows : row_choices) {
                    for (int cols : col_choices) {
                        const double bits_per_sub =
                            static_cast<double>(rows) * cols;
                        if (bits_per_sub > cap_bits * 2.0)
                            continue; // subarray bigger than the memory
                        ++st.candidates;

                        if (pruned) {
                            // ---- Screening pass: no PAT, no strings.
                            // Mirrors evaluate()'s capacity math, then
                            // bounds cycle time below (decode + sense
                            // depth only; wordline/bitline RC only add)
                            // and bandwidth above.
                            int subs = static_cast<int>(std::ceil(
                                cap_bits / (banks * bits_per_sub)));
                            if (subs < 1)
                                subs = 1;
                            const double active_subs =
                                std::max(1.0, block_bits / cols);
                            bool may_fit = active_subs <= subs;
                            const double cycle_lb =
                                1.2 * cell.cyclePenalty *
                                (2.0 * std::log2(
                                           std::max(2.0, double(rows))) +
                                 8.0) *
                                fo4;
                            const double issue_lb =
                                std::max(cycle_lb, min_pipe_cycle);
                            if (may_fit && req.targetCycleS > 0.0 &&
                                issue_lb > req.targetCycleS)
                                may_fit = false;
                            if (may_fit && bw_constrained) {
                                const double eff_lb =
                                    req.targetCycleS > 0.0
                                        ? std::max(req.targetCycleS,
                                                   issue_lb)
                                        : issue_lb;
                                if (req.targetReadBwBytesPerS > 0.0 &&
                                    banks * rp * req.blockBytes /
                                            eff_lb <
                                        req.targetReadBwBytesPerS)
                                    may_fit = false;
                                if (may_fit &&
                                    req.targetWriteBwBytesPerS > 0.0 &&
                                    banks * wp * req.blockBytes /
                                            eff_lb <
                                        req.targetWriteBwBytesPerS)
                                    may_fit = false;
                            }
                            if (!may_fit) {
                                ++st.screened;
                                continue;
                            }
                            // ---- Dominance bound: the true area
                            // strictly exceeds the packed-cell floor,
                            // so a floor at or above the incumbent can
                            // never win (even on tie-breaks).
                            if (have_best) {
                                const double lb_area =
                                    double(banks) * subs * bits_per_sub *
                                        cell.areaUm2 *
                                        cellAreaToChipArea +
                                    tag_area;
                                if (lb_area >= best.areaUm2) {
                                    ++st.bounded;
                                    continue;
                                }
                            }
                        }

                        ++st.evaluated;
                        MemoryDesign d =
                            evaluateImpl(req, banks, rows, cols, rp, wp,
                                         /*with_breakdown=*/false);
                        if (!d.feasible)
                            continue;
                        if (!have_best || betterMemoryDesign(d, best)) {
                            best = d;
                            have_best = true;
                        }
                    }
                }
            }
        }
    }

    if (!have_best) {
        throw ConfigError(
            "memory optimizer: no design meets cycle/bandwidth targets "
            "(capacity " + std::to_string(req.capacityBytes) + " B)");
    }
    // Lazy breakdown: only the winning design pays for the PAT tree.
    return evaluateImpl(req, best.banks, best.rows, best.cols,
                        best.readPorts, best.writePorts,
                        /*with_breakdown=*/true);
}

MemoryDesign
MemoryModel::optimize(const MemoryRequest &req,
                      MemorySearchStats *stats) const
{
    return search(req, /*pruned=*/true, stats);
}

MemoryDesign
MemoryModel::optimizeExhaustive(const MemoryRequest &req,
                                MemorySearchStats *stats) const
{
    return search(req, /*pruned=*/false, stats);
}

} // namespace neurometer
