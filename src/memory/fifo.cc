#include "memory/fifo.hh"

#include <algorithm>
#include <cmath>

#include "circuit/fit.hh"
#include "circuit/logic.hh"
#include "common/error.hh"
#include "memory/design_cache.hh"
#include "memory/sram_array.hh"

namespace neurometer {

namespace {

/** Pointer/control logic shared by both FIFO flavors. */
LogicBlock
fifoControl(int entries)
{
    LogicBlock ctrl;
    const double ptr_bits = std::max(1.0, std::log2(double(entries)));
    ctrl.gates = 2.0 * (ptr_bits * 8.0) + 30.0; // counters + full/empty
    ctrl.depthFo4 = 6.0;
    ctrl.activity = 0.3;
    return ctrl;
}

} // namespace

PAT
fifoPAT(const TechNode &tech, const FifoConfig &cfg)
{
    requireConfig(cfg.entries > 0 && cfg.widthBits > 0,
                  "FIFO entries/width must be positive");

    const double bits = double(cfg.entries) * cfg.widthBits;
    PAT pat;

    if (bits <= 16.0 * 1024.0) {
        // Register-based: write enables one entry; read muxes one out.
        PAT store = registersPAT(tech, bits, cfg.freqHz,
                                 /*toggle=*/0.5 / cfg.entries,
                                 /*clock_gate_duty=*/
                                 std::min(1.0, cfg.activity));
        // Read mux tree: width * (entries-1) 2:1 muxes ~ 1.2 gates each.
        LogicBlock mux;
        mux.gates = 1.2 * cfg.widthBits * std::max(0, cfg.entries - 1);
        mux.depthFo4 = 1.5 * std::max(1.0, std::log2(double(cfg.entries)));
        mux.activity = 0.25;
        PAT muxp = logicPAT(tech, mux, cfg.freqHz * cfg.activity);
        PAT ctrl = logicPAT(tech, fifoControl(cfg.entries),
                            cfg.freqHz * cfg.activity);
        pat = store + muxp + ctrl;
    } else {
        MemoryRequest req;
        req.capacityBytes = bits / 8.0;
        req.blockBytes = cfg.widthBits / 8.0;
        req.cell = MemCellType::SRAM;
        req.readPorts = 1;
        req.writePorts = 1;
        req.targetCycleS = 1.0 / cfg.freqHz;
        MemoryDesign d = memoryDesignCache().optimize(tech, req);
        pat.areaUm2 = d.areaUm2;
        const double rate = cfg.freqHz * 0.5 * cfg.activity;
        Power p = d.powerAt(rate, rate);
        pat.power = p;
        pat.timing.delayS = d.accessDelayS;
        pat.timing.cycleS = d.randomCycleS;
        PAT ctrl = logicPAT(tech, fifoControl(cfg.entries),
                            cfg.freqHz * cfg.activity);
        pat += ctrl;
    }
    return pat;
}

PAT
scratchpadPAT(const TechNode &tech, double bytes, int width_bits,
              double freq_hz, double accesses_per_cycle, bool sram_cells)
{
    requireConfig(bytes > 0.0, "scratchpad size must be positive");

    if (!sram_cells || bytes <= 96.0) {
        // Small register files stay flops.
        PAT store = registersPAT(tech, bytes * 8.0, freq_hz,
                                 0.3 * accesses_per_cycle);
        return store;
    }

    // Compact single-bank SRAM: pick a near-square subarray.
    const double bits = bytes * 8.0;
    int rows = 16;
    while (double(rows) * 2.0 * rows < bits && rows < 512)
        rows *= 2;
    int cols = std::max(16, int(std::ceil(bits / rows)));

    MemoryRequest req;
    req.capacityBytes = bytes;
    req.blockBytes = width_bits / 8.0;
    req.cell = MemCellType::SRAM;
    req.readPorts = 1;
    req.writePorts = 1;
    MemoryDesign d =
        memoryDesignCache().evaluate(tech, req, 1, rows, cols, 1, 1);

    PAT pat;
    pat.areaUm2 = d.areaUm2;
    const double rate = freq_hz * accesses_per_cycle;
    pat.power = d.powerAt(0.6 * rate, 0.4 * rate);
    pat.timing.delayS = d.accessDelayS;
    pat.timing.cycleS = d.randomCycleS;
    return pat;
}

} // namespace neurometer
