/**
 * @file
 * The sweep coordinator: fault-tolerant work distribution for sharded
 * sweeps, layered on the serve daemon's JSON-over-TCP protocol.
 *
 * `neurometer serve --coordinate` owns one sweep grid and leases index
 * ranges of it to `neurometer work` processes. The protocol adds four
 * methods to the daemon:
 *
 *   job       {}                          -> {config, axes, points,
 *                                             lease_timeout_s,
 *                                             heartbeat_s}
 *   lease     {worker}                    -> {lease, indices} |
 *                                            {wait, retry_ms} | {done}
 *   report    {worker, lease, rows:[{index, entry}]}
 *                                         -> {done, total, complete,
 *                                             duplicates}
 *   heartbeat {worker, lease}             -> {ok} | {ok:false, expired}
 *
 * Liveness is heartbeat-based: a lease not renewed within the
 * configured timeout expires, its unfinished points return to the
 * front of the queue, and the next lease() call — from any surviving
 * worker — picks them up (counted in `coord.leases.reassigned`). Rows
 * travel as checkpointEntryLine() strings, the exact bytes a local
 * checkpoint would hold, so metrics cross the wire bit-identically and
 * the finalized export matches a single-process sweep byte for byte.
 * Reports are idempotent: a point reported twice (late report after
 * expiry + reassignment) counts once, duplicates are tallied, and an
 * ok row is never displaced by a failed one.
 *
 * Degradation is graceful in both directions: killed workers only slow
 * the sweep down (their leases expire and reassign), and a sweep with
 * a single surviving worker still completes.
 */

#ifndef NEUROMETER_SERVE_COORDINATOR_HH
#define NEUROMETER_SERVE_COORDINATOR_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chip/config.hh"
#include "chip/optimizer.hh"
#include "common/json.hh"
#include "explore/checkpoint.hh"
#include "explore/sweep.hh"

namespace neurometer::serve {

/** `neurometer serve --coordinate` knobs. */
struct CoordinateOptions
{
    /** Master switch: false = the daemon has no coordinator. */
    bool enabled = false;
    /** The chip config text every worker evaluates against. */
    std::string configText{};
    /** Sweep axes, identical to a local sweep's --axis specs. */
    std::vector<NamedAxis> axes{};
    /** Points per lease; 0 = auto (grid/16, clamped to [1, 32]). */
    std::size_t leaseSize = 0;
    /** Seconds without a heartbeat/report before a lease expires. */
    double leaseTimeoutS = 10.0;
    /** Suggested heartbeat cadence for workers; 0 = timeout / 3. */
    double heartbeatS = 0.0;
    /** Merged export written when the sweep completes (empty = none). */
    std::string outPath{};
    /** Export JSON instead of CSV. */
    bool outJson = false;
    /** Durable checkpoint ledger of reported points (empty = none);
     *  the finished file is --resume compatible. */
    std::string checkpointPath{};
    DesignConstraints constraints{};
};

/**
 * The lease ledger and merge endpoint. Thread-safe: connection threads
 * call job/lease/report/heartbeat concurrently while the server's run
 * loop drives expireStale(). The steady clock is injectable so expiry
 * logic is testable without real waiting.
 */
class Coordinator
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;
    using Clock = std::function<TimePoint()>;

    /** Throws ConfigError on a bad config/axes before any socket
     *  work — a coordinator that cannot expand its grid never starts. */
    explicit Coordinator(CoordinateOptions opts, Clock clock = {});

    /** @name Protocol handlers (results for the wire, pre-`ok` wrap) */
    /** @{ */
    json::Value job() const;
    json::Value lease(const std::string &worker);
    json::Value report(const std::string &worker, std::uint64_t leaseId,
                       const json::Value &rows);
    json::Value heartbeat(const std::string &worker,
                          std::uint64_t leaseId);
    /** @} */

    /**
     * Expire leases whose deadline passed: their unfinished points go
     * back to the *front* of the queue (reassigned before untouched
     * work) and `coord.leases.expired` counts each. Returns how many
     * leases expired. Called from the server's poll loop.
     */
    std::size_t expireStale();

    /** True once every point is reported and the export is written. */
    bool complete() const
    {
        return _complete.load(std::memory_order_acquire);
    }

    std::size_t totalPoints() const { return _keys.size(); }
    std::size_t donePoints() const;

    /** Human-readable section for /statusz: progress, queue depth,
     *  and every active lease with its worker and time to expiry. */
    std::string statusText() const;

    const CoordinateOptions &options() const { return _opts; }

  private:
    struct Lease
    {
        std::uint64_t id = 0;
        std::string worker;
        std::vector<std::size_t> indices; ///< not yet reported
        TimePoint deadline{};
        bool reassigned = false; ///< contained previously-leased work
    };

    enum class PointState : std::uint8_t { Pending, Leased, Done };

    double heartbeatS() const;
    void finalizeLocked();

    CoordinateOptions _opts;
    Clock _clock;
    ChipConfig _base;
    std::unique_ptr<GridExpander> _expander;
    std::vector<std::string> _keys; ///< configKey() per grid index

    mutable std::mutex _mu;
    std::vector<PointState> _state;
    std::vector<char> _everLeased; ///< reassignment detection
    std::vector<CheckpointEntry> _entries; ///< valid where Done
    std::deque<std::size_t> _pending; ///< grid indices, front = next
    std::map<std::uint64_t, Lease> _leases;
    std::uint64_t _nextLease = 0;
    std::size_t _done = 0;
    std::unique_ptr<SweepCheckpoint> _ckpt;
    bool _finalized = false;
    std::atomic<bool> _complete{false};
};

} // namespace neurometer::serve

#endif // NEUROMETER_SERVE_COORDINATOR_HH
