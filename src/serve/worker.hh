/**
 * @file
 * The sweep worker: `neurometer work` — the client half of the
 * coordinator protocol (serve/coordinator.hh).
 *
 * A worker connects to a coordinating daemon (with bounded-backoff
 * connect retries, so a fleet launched alongside the coordinator
 * converges instead of racing the bind), fetches the job description,
 * then loops: lease a batch of grid indices, evaluate each point
 * locally (measurePoint, failures isolated into checkpoint rows, never
 * aborting the lease), heartbeat while the batch runs, and report the
 * finished rows as canonical checkpointEntryLine() strings. On {wait}
 * it idles the suggested interval; on {done} it exits 0.
 *
 * Fault model: the worker is the expendable side. Its death (SIGKILL
 * included) costs nothing but the current lease — the coordinator
 * expires and reassigns it. Re-executing a reassigned lease is safe by
 * construction: evaluation is deterministic and the coordinator's
 * report handler is idempotent. An optional local checkpoint memoizes
 * completed points across worker restarts, so a restarted worker
 * re-reports rather than re-evaluates work it already finished.
 */

#ifndef NEUROMETER_SERVE_WORKER_HH
#define NEUROMETER_SERVE_WORKER_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "explore/cancel.hh"

namespace neurometer::serve {

/** `neurometer work` knobs. */
struct WorkerOptions
{
    /** Coordinator port on 127.0.0.1. */
    std::uint16_t port = 0;
    /** Worker name in leases/events; empty = "w<pid>". */
    std::string name{};
    /** Local checkpoint memo (empty = none): completed points survive
     *  worker restarts and are re-reported, not re-evaluated. */
    std::string checkpointPath{};
    /** Artificial per-point delay — lets tests and smoke scripts hold
     *  a lease open long enough to kill the worker mid-batch. */
    int throttleMs = 0;
    /** Connect-retry budget (serve/net.hh connectLocalRetry). */
    int connectBudgetMs = 5000;
    /** Drop the connection and return after N leases without
     *  reporting the last one — a test hook simulating a crash that
     *  forces lease expiry + reassignment. 0 = run to completion. */
    std::size_t abandonAfterLeases = 0;
    CancelToken cancel{};
};

/**
 * Run one worker to completion. Returns the process exit code:
 * 0 = the sweep completed ({done} received), 3 = cancelled mid-run
 * (the coordinator will reassign the abandoned lease), 0 also for the
 * abandonAfterLeases test hook. Throws ConfigError/IoError on a bad
 * job description or an unrecoverable transport failure.
 */
int runWorker(const WorkerOptions &opts);

} // namespace neurometer::serve

#endif // NEUROMETER_SERVE_WORKER_HH
