#include "serve/worker.hh"

#include <unistd.h>

#include <chrono>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chip/config.hh"
#include "chip/optimizer.hh"
#include "common/error.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "explore/checkpoint.hh"
#include "explore/eval_cache.hh"
#include "explore/sweep.hh"
#include "neurometer/api.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"

namespace neurometer::serve {

namespace {

/** One blocking request/response exchange with the coordinator. */
class Rpc
{
  public:
    Rpc(Fd fd, CancelToken cancel)
        : _fd(std::move(fd)), _reader(_fd.get()),
          _cancel(std::move(cancel))
    {}

    /** Send `method`+`params`, block for the reply, unwrap `result`.
     *  A wire-level error becomes ConfigError; EOF becomes IoError. */
    json::Value
    call(const std::string &method, json::Value params)
    {
        json::Value req = json::Value::object_();
        req.set("method", json::Value::string_(method))
            .set("id", json::Value::number_(double(++_seq)))
            .set("params", std::move(params));
        writeLine(_fd.get(), req.dump());

        std::string line;
        for (;;) {
            const ReadStatus st = _reader.readLine(line, 200);
            if (st == ReadStatus::Line)
                break;
            if (st == ReadStatus::Eof)
                throw IoError("coordinator closed the connection");
            if (_cancel.cancelled())
                throw IoError(
                    "cancelled while waiting for the coordinator");
        }
        const json::Value resp = json::parse(line);
        const json::Value *ok = resp.find("ok");
        requireConfig(ok != nullptr, "response missing 'ok'");
        if (!ok->asBool()) {
            const json::Value *err = resp.find("error");
            std::string msg = method + " failed";
            if (err != nullptr && err->isObject()) {
                if (const json::Value *m = err->find("message"))
                    msg += ": " + m->asString();
            }
            throw ConfigError(msg);
        }
        const json::Value *result = resp.find("result");
        requireConfig(result != nullptr, "response missing 'result'");
        return *result;
    }

  private:
    Fd _fd;
    LineReader _reader;
    CancelToken _cancel;
    std::uint64_t _seq = 0;
};

/** The job description, parsed off the wire. */
struct Job
{
    ChipConfig base;
    std::vector<NamedAxis> axes;
    std::size_t points = 0;
    double heartbeatS = 0.0;
};

Job
parseJob(const json::Value &v)
{
    Job job;
    const json::Value *config = v.find("config");
    requireConfig(config != nullptr, "job missing 'config'");
    job.base = ChipConfig::fromString(config->asString(), "<job>");

    const json::Value *axes = v.find("axes");
    requireConfig(axes != nullptr && axes->isArray(),
                  "job missing 'axes'");
    for (const json::Value &ax : axes->items) {
        NamedAxis a;
        const json::Value *path = ax.find("path");
        const json::Value *values = ax.find("values");
        requireConfig(path != nullptr && values != nullptr &&
                          values->isArray(),
                      "malformed job axis");
        a.path = path->asString();
        for (const json::Value &val : values->items)
            a.values.push_back(val.asString());
        job.axes.push_back(std::move(a));
    }
    if (const json::Value *n = v.find("points"))
        job.points = std::size_t(n->asNumber());
    if (const json::Value *hb = v.find("heartbeat_s"))
        job.heartbeatS = hb->asNumber();
    return job;
}

/** Evaluate grid point `k` into its canonical checkpoint entry; an
 *  evaluation failure is isolated into the entry, not thrown. */
CheckpointEntry
evalPoint(const GridExpander &expander, std::size_t k)
{
    const GridPoint p = expander.at(k);
    CheckpointEntry e;
    e.key = configKey(p.config);
    try {
        e.metrics = measurePoint(p.config);
    } catch (...) {
        e.failed = true;
        e.error = captureCurrentException("work.eval");
    }
    return e;
}

} // namespace

int
runWorker(const WorkerOptions &opts)
{
    const std::string name =
        opts.name.empty() ? "w" + std::to_string(::getpid()) : opts.name;

    Rpc rpc(connectLocalRetry(opts.port, opts.connectBudgetMs,
                              stableHash64(name)),
            opts.cancel);
    const Job job = parseJob(rpc.call("job", json::Value::object_()));
    const GridExpander expander(sweepGridForConfig(job.base, job.axes),
                                job.base);
    requireConfig(expander.size() == job.points || job.points == 0,
                  "job grid size disagrees with the coordinator");

    // Optional local memo: points this worker (or a predecessor on the
    // same checkpoint file) already evaluated are re-reported from the
    // memo instead of re-run. Keys the memo by configKey, same as the
    // coordinator's ledger.
    std::unique_ptr<SweepCheckpoint> memo;
    std::unordered_map<std::string, CheckpointEntry> known;
    if (!opts.checkpointPath.empty()) {
        const std::string baseKey = configKey(job.base);
        known = SweepCheckpoint::load(opts.checkpointPath, baseKey);
        memo = std::make_unique<SweepCheckpoint>(opts.checkpointPath,
                                                 baseKey, 8);
        for (const auto &[key, entry] : known)
            memo->add(entry);
    }

    using SteadyClock = std::chrono::steady_clock;
    std::size_t leasesTaken = 0;
    for (;;) {
        if (opts.cancel.cancelled())
            return 3;

        json::Value params = json::Value::object_();
        params.set("worker", json::Value::string_(name));
        const json::Value granted = rpc.call("lease", std::move(params));

        if (const json::Value *done = granted.find("done");
            done != nullptr && done->asBool()) {
            if (memo)
                memo->flush();
            return 0;
        }
        if (granted.find("wait") != nullptr) {
            double retry_ms = 200.0;
            if (const json::Value *r = granted.find("retry_ms"))
                retry_ms = r->asNumber();
            // Sleep in short slices so cancellation stays responsive.
            auto left_us = useconds_t(retry_ms * 1e3);
            while (left_us > 0 && !opts.cancel.cancelled()) {
                const useconds_t slice =
                    left_us < 50000 ? left_us : useconds_t(50000);
                ::usleep(slice);
                left_us -= slice;
            }
            continue;
        }

        const json::Value *leaseId = granted.find("lease");
        const json::Value *indices = granted.find("indices");
        requireConfig(leaseId != nullptr && indices != nullptr &&
                          indices->isArray(),
                      "malformed lease grant");
        ++leasesTaken;
        const bool abandon = opts.abandonAfterLeases != 0 &&
                             leasesTaken >= opts.abandonAfterLeases;

        json::Value rows = json::Value::array_();
        auto last_beat = SteadyClock::now();
        bool cancelled = false;
        for (const json::Value &idx : indices->items) {
            if (opts.cancel.cancelled()) {
                cancelled = true;
                break;
            }
            const std::size_t k = std::size_t(idx.asNumber());
            requireConfig(k < expander.size(),
                          "leased index out of range");

            CheckpointEntry e;
            const std::string key = configKey(expander.at(k).config);
            if (const auto it = known.find(key); it != known.end()) {
                e = it->second; // memoized: re-report, don't re-run
            } else {
                e = evalPoint(expander, k);
                if (opts.throttleMs > 0)
                    ::usleep(useconds_t(opts.throttleMs) * 1000);
                known.emplace(e.key, e);
                if (memo)
                    memo->add(e);
            }

            json::Value row = json::Value::object_();
            row.set("index", json::Value::number_(double(k)))
                .set("entry",
                     json::Value::string_(checkpointEntryLine(e)));
            rows.push(std::move(row));

            if (job.heartbeatS > 0.0) {
                const double since =
                    std::chrono::duration<double>(SteadyClock::now() -
                                                  last_beat)
                        .count();
                if (since >= job.heartbeatS) {
                    json::Value hb = json::Value::object_();
                    hb.set("worker", json::Value::string_(name))
                        .set("lease", *leaseId);
                    const json::Value pong =
                        rpc.call("heartbeat", std::move(hb));
                    last_beat = SteadyClock::now();
                    if (const json::Value *ok = pong.find("ok");
                        ok != nullptr && !ok->asBool())
                        break; // lease expired under us: stop early,
                               // report what we have (idempotent)
                }
            }
        }

        if (abandon) {
            // Crash simulation: vanish without reporting. The lease
            // expires on the coordinator and its points reassign.
            if (memo)
                memo->flush();
            return 0;
        }

        json::Value rep = json::Value::object_();
        rep.set("worker", json::Value::string_(name))
            .set("lease", *leaseId)
            .set("rows", std::move(rows));
        const json::Value ack = rpc.call("report", std::move(rep));

        if (cancelled) {
            if (memo)
                memo->flush();
            return 3;
        }
        if (const json::Value *complete = ack.find("complete");
            complete != nullptr && complete->asBool()) {
            if (memo)
                memo->flush();
            return 0;
        }
    }
}

} // namespace neurometer::serve
