/**
 * @file
 * Blocking-socket and newline-framing primitives for the evaluation
 * service (serve/server.hh) and its test clients.
 *
 * Everything here is deliberately boring POSIX: RAII file descriptors,
 * EINTR-safe read/write loops, poll()-bounded blocking so callers can
 * interleave I/O with shutdown checks, and SIGPIPE-free writes
 * (MSG_NOSIGNAL) so a client that disconnects mid-response surfaces
 * as an IoError instead of killing the daemon. Handler code never
 * touches recv()/send() directly — it speaks lines.
 */

#ifndef NEUROMETER_SERVE_NET_HH
#define NEUROMETER_SERVE_NET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace neurometer::serve {

/** RAII owner of one file descriptor (socket); movable, not copyable. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&o) noexcept : _fd(o._fd) { o._fd = -1; }
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            _fd = o._fd;
            o._fd = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    /** Close the current fd (if any) and adopt `fd`. */
    void reset(int fd = -1);
    /** Give up ownership without closing. */
    int release();

  private:
    int _fd = -1;
};

/**
 * Write all `n` bytes to a socket, restarting on EINTR and short
 * writes; SIGPIPE is suppressed (MSG_NOSIGNAL). Throws IoError when
 * the peer is gone or the write fails.
 */
void writeAll(int fd, const void *data, std::size_t n);

/** writeAll of `line` plus the terminating '\n' (one framed message).
 *  `line` must not itself contain a newline (json::Value::dump() and
 *  the other single-line renderers never do). */
void writeLine(int fd, const std::string &line);

/** Outcome of one LineReader::readLine call. */
enum class ReadStatus {
    Line,    ///< a complete line was delivered
    Eof,     ///< peer closed (a torn trailing partial line is dropped)
    Timeout, ///< poll timeout expired with no complete line
};

/**
 * Buffered newline-delimited framing over one blocking socket.
 * Extracts one '\n'-terminated line at a time (terminator stripped,
 * CRLF tolerated); poll()-based timeouts let callers check a shutdown
 * flag between blocking stretches. A line longer than `max_line`
 * throws IoError — the stream cannot be resynchronized, so callers
 * should answer with an error and drop the connection.
 */
class LineReader
{
  public:
    explicit LineReader(int fd, std::size_t max_line = 1 << 20)
        : _fd(fd), _maxLine(max_line)
    {}

    /**
     * Block until a full line, EOF, or timeout. `timeout_ms` < 0
     * blocks indefinitely; 0 polls. EINTR restarts the wait.
     */
    ReadStatus readLine(std::string &out, int timeout_ms = -1);

  private:
    int _fd;
    std::size_t _maxLine;
    std::string _buf;
};

/**
 * A listening TCP socket bound to loopback (the service is a local
 * evaluation daemon, not an internet-facing server). Port 0 binds an
 * ephemeral port; port() reports the actual one.
 */
class ListenSocket
{
  public:
    explicit ListenSocket(std::uint16_t port, int backlog = 64);

    std::uint16_t port() const { return _port; }
    int fd() const { return _fd.get(); }

    /**
     * Accept one client, waiting at most `timeout_ms` (< 0 = forever).
     * Returns an invalid Fd on timeout; throws IoError on hard accept
     * failures. EINTR restarts the wait.
     */
    Fd acceptClient(int timeout_ms);

  private:
    Fd _fd;
    std::uint16_t _port = 0;
};

/** Connect to the loopback daemon at `port` (tests, smoke clients). */
Fd connectLocal(std::uint16_t port);

/**
 * connectLocal with bounded exponential-backoff retries on
 * ECONNREFUSED/ETIMEDOUT — the race every script loses when it starts
 * a daemon and connects "immediately". Retries for up to
 * `budget_ms` of accumulated backoff (common/backoff.hh schedule,
 * deterministic jitter from `seed`), then rethrows the last IoError.
 * Hard failures other than refused/timeout are not retried.
 */
Fd connectLocalRetry(std::uint16_t port, int budget_ms = 5000,
                     std::uint64_t seed = 0);

} // namespace neurometer::serve

#endif // NEUROMETER_SERVE_NET_HH
