#include "serve/http.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>

#include "common/error.hh"
#include "serve/net.hh"

namespace neurometer::serve {

namespace {

/** Verbs whose request lines flip a connection into HTTP mode. The
 *  JSON protocol's lines always start with '{', so any of these
 *  prefixes is unambiguous. */
const char *const kHttpVerbs[] = {"GET ", "HEAD ", "POST ", "PUT ",
                                  "DELETE ", "OPTIONS "};

} // namespace

bool
looksLikeHttp(const std::string &first_line)
{
    for (const char *verb : kHttpVerbs)
        if (first_line.rfind(verb, 0) == 0)
            return true;
    return false;
}

bool
parseHttpRequestLine(const std::string &line, HttpRequest &out)
{
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos)
        return false;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos)
        return false;
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out.version = line.substr(sp2 + 1);
    if (out.method.empty() || out.target.empty() ||
        out.version.rfind("HTTP/", 0) != 0)
        return false;
    const std::size_t query = out.target.find('?');
    if (query != std::string::npos)
        out.target.erase(query);
    return true;
}

const char *
httpStatusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    default:
        return "Internal Server Error";
    }
}

std::string
httpResponse(int status, const std::string &content_type,
             const std::string &body)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      httpStatusText(status) + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n";
    out += "\r\n";
    out += body;
    return out;
}

HttpReply
httpGet(std::uint16_t port, const std::string &target, int timeout_ms)
{
    // Retry the connect with bounded backoff: scrapers and CLI scripts
    // routinely race the daemon's startup, and a first-ECONNREFUSED
    // failure there is noise, not signal.
    Fd fd = connectLocalRetry(port, timeout_ms);
    const std::string req = "GET " + target +
                            " HTTP/1.1\r\nHost: 127.0.0.1:" +
                            std::to_string(port) +
                            "\r\nConnection: close\r\n\r\n";
    writeAll(fd.get(), req.data(), req.size());

    // The server always closes after one response: read to EOF.
    std::string raw;
    for (;;) {
        struct pollfd p;
        p.fd = fd.get();
        p.events = POLLIN;
        p.revents = 0;
        int rc;
        do {
            rc = ::poll(&p, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0)
            throw IoError(std::string("poll: ") + std::strerror(errno));
        if (rc == 0)
            throw IoError("http get " + target + ": response timed out");
        char chunk[65536];
        ssize_t r;
        do {
            r = ::recv(fd.get(), chunk, sizeof(chunk), 0);
        } while (r < 0 && errno == EINTR);
        if (r < 0)
            throw IoError(std::string("recv: ") + std::strerror(errno));
        if (r == 0)
            break;
        raw.append(chunk, std::size_t(r));
    }

    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos)
        throw IoError("http get " + target + ": malformed response");
    const std::size_t line_end = raw.find("\r\n");
    const std::string status_line = raw.substr(0, line_end);
    // "HTTP/1.1 200 OK"
    const std::size_t sp = status_line.find(' ');
    if (status_line.rfind("HTTP/", 0) != 0 || sp == std::string::npos)
        throw IoError("http get " + target + ": bad status line \"" +
                      status_line + "\"");
    HttpReply reply;
    reply.status = std::atoi(status_line.c_str() + sp + 1);
    reply.body = raw.substr(head_end + 4);
    return reply;
}

} // namespace neurometer::serve
