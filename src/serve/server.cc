#include "serve/server.hh"

#include <chrono>
#include <utility>

#include "chip/config.hh"
#include "explore/export.hh"
#include "explore/search.hh"
#include "explore/sweep.hh"
#include "neurometer/api.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer::serve {

namespace {

obs::Gauge
inflightGauge()
{
    static const obs::Gauge g = obs::gauge("serve.inflight");
    return g;
}

/**
 * RAII admission slot: atomically claims one in-flight unit unless the
 * server is already at capacity. Lock-free CAS so a rejected request
 * never waits behind an admitted one.
 */
class InflightSlot
{
  public:
    InflightSlot(std::atomic<int> &inflight, int max)
        : _inflight(inflight)
    {
        int cur = _inflight.load(std::memory_order_relaxed);
        while (cur < max &&
               !_inflight.compare_exchange_weak(
                   cur, cur + 1, std::memory_order_relaxed)) {
        }
        _ok = cur < max;
        if (_ok)
            inflightGauge().set(double(cur + 1));
    }

    ~InflightSlot()
    {
        if (_ok) {
            const int now =
                _inflight.fetch_sub(1, std::memory_order_relaxed) - 1;
            inflightGauge().set(double(now));
        }
    }

    InflightSlot(const InflightSlot &) = delete;
    InflightSlot &operator=(const InflightSlot &) = delete;

    bool ok() const { return _ok; }

  private:
    std::atomic<int> &_inflight;
    bool _ok = false;
};

/** Chain a per-request token to server shutdown + optional deadline. */
CancelToken
requestToken(const Request &req, const CancelToken &server_cancel)
{
    CancelToken token;
    token.follow(server_cancel);
    const double deadline_ms = numberParamOr(req, "deadline_ms", 0.0);
    requireConfig(deadline_ms >= 0, "'deadline_ms' must be >= 0");
    if (deadline_ms > 0)
        token.cancelAfterSeconds(deadline_ms / 1000.0);
    return token;
}

/** Named axes from the request's `axes` param (array of
 *  {path, values} objects; values may be strings, numbers, bools). */
std::vector<NamedAxis>
axesParam(const Request &req)
{
    std::vector<NamedAxis> axes;
    const json::Value *arr =
        req.params.isObject() ? req.params.find("axes") : nullptr;
    if (arr == nullptr || arr->isNull())
        return axes;
    requireConfig(arr->isArray(), "'axes' must be an array");
    for (const json::Value &e : arr->items) {
        requireConfig(e.isObject(),
                      "each axis must be a {path, values} object");
        const json::Value *path = e.find("path");
        requireConfig(path != nullptr &&
                          path->kind == json::Value::Kind::String,
                      "axis 'path' must be a string");
        const json::Value *vals = e.find("values");
        requireConfig(vals != nullptr && vals->isArray() &&
                          !vals->items.empty(),
                      "axis 'values' must be a non-empty array");
        NamedAxis ax{path->text, {}};
        for (const json::Value &v : vals->items) {
            switch (v.kind) {
              case json::Value::Kind::String:
                ax.values.push_back(v.text);
                break;
              case json::Value::Kind::Number:
                ax.values.push_back(json::number(v.number));
                break;
              case json::Value::Kind::Bool:
                ax.values.push_back(v.boolean ? "true" : "false");
                break;
              default:
                throw ConfigError(
                    "axis values must be strings, numbers, or "
                    "booleans");
            }
        }
        axes.push_back(std::move(ax));
    }
    return axes;
}

} // namespace

Server::Server(ServeOptions opts)
    : _opts(std::move(opts)), _pool(_opts.threads)
{
    _maxInflight = _opts.maxInflight > 0 ? _opts.maxInflight
                                         : 2 * _pool.numThreads();
    _startTime = std::chrono::steady_clock::now();
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (_started)
        return;
    _listen = std::make_unique<ListenSocket>(_opts.port);
    _port = _listen->port();
    _started = true;
    _acceptThread = std::thread([this] { acceptLoop(); });
}

void
Server::run()
{
    start();
    while (!_opts.cancel.cancelled()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(_opts.pollIntervalMs));
    }
    stop();
}

void
Server::stop()
{
    if (!_started || _stopped)
        return;
    _stopped = true;
    _opts.cancel.requestCancel();
    if (_acceptThread.joinable())
        _acceptThread.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(_connMu);
        conns.swap(_connThreads);
    }
    for (std::thread &t : conns) {
        if (t.joinable())
            t.join();
    }
    _listen.reset();
}

void
Server::acceptLoop()
{
    while (!_opts.cancel.cancelled()) {
        Fd client;
        try {
            client = _listen->acceptClient(_opts.pollIntervalMs);
        } catch (...) {
            // A transient accept failure (fd pressure, aborted
            // handshake) must not take the daemon down; back off one
            // poll interval and keep listening.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(_opts.pollIntervalMs));
            continue;
        }
        if (!client.valid())
            continue;
        std::lock_guard<std::mutex> lk(_connMu);
        _connThreads.emplace_back(
            [this, fd = std::move(client)]() mutable {
                connectionLoop(std::move(fd));
            });
    }
}

void
Server::connectionLoop(Fd client)
{
    static const obs::Counter conns = obs::counter("serve.connections");
    conns.inc();
    LineReader reader(client.get());
    std::string line;
    while (!_opts.cancel.cancelled()) {
        ReadStatus st;
        try {
            st = reader.readLine(line, _opts.pollIntervalMs);
        } catch (const IoError &e) {
            // Oversize line or a failed read: the byte stream cannot
            // be resynchronized, so answer once and drop the client.
            try {
                writeLine(client.get(),
                          errorResponse(
                              json::Value::null(),
                              errorCategoryStr(ErrorCategory::Io),
                              "serve.read", e.what()));
            } catch (...) {
            }
            break;
        }
        if (st == ReadStatus::Timeout)
            continue;
        if (st == ReadStatus::Eof)
            break;
        const std::string resp = dispatchLine(line);
        try {
            writeLine(client.get(), resp);
        } catch (const IoError &) {
            break; // peer went away mid-response
        }
    }
}

std::string
Server::dispatchLine(const std::string &line)
{
    static const obs::Counter ok_reqs =
        obs::counter("serve.requests.ok");
    static const obs::Counter failed_reqs =
        obs::counter("serve.requests.failed");
    static const obs::Counter rejected_reqs =
        obs::counter("serve.requests.rejected");
    static const obs::Histogram req_hist =
        obs::histogram("serve.request_s");

    Request req;
    try {
        req = parseRequest(line);
    } catch (...) {
        // No trustworthy id to echo on a line that never parsed.
        failed_reqs.inc();
        return errorResponse(json::Value::null(),
                             captureCurrentException("serve.parse"));
    }
    try {
        obs::ScopedTimer timer(req_hist);
        const std::string result = handle(req);
        ok_reqs.inc();
        return okResponse(req.id, result);
    } catch (const ServeError &e) {
        (e.category == kBusyCategory ? rejected_reqs : failed_reqs)
            .inc();
        return errorResponse(req.id, e);
    } catch (...) {
        failed_reqs.inc();
        return errorResponse(req.id,
                             captureCurrentException("serve.request"));
    }
}

std::string
Server::handle(const Request &req)
{
    if (req.method == "eval") {
        obs::TraceScope span("serve.eval");
        static const obs::Histogram h = obs::histogram("serve.eval_s");
        obs::ScopedTimer t(h);
        return handleEval(req);
    }
    if (req.method == "sweep") {
        obs::TraceScope span("serve.sweep");
        static const obs::Histogram h =
            obs::histogram("serve.sweep_s");
        obs::ScopedTimer t(h);
        return handleSweep(req);
    }
    if (req.method == "search") {
        obs::TraceScope span("serve.search");
        static const obs::Histogram h =
            obs::histogram("serve.search_s");
        obs::ScopedTimer t(h);
        return handleSearch(req);
    }
    if (req.method == "simulate") {
        obs::TraceScope span("serve.simulate");
        static const obs::Histogram h =
            obs::histogram("serve.simulate_s");
        obs::ScopedTimer t(h);
        return handleSimulate(req);
    }
    if (req.method == "fields") {
        obs::TraceScope span("serve.fields");
        return fieldsJson();
    }
    if (req.method == "metrics") {
        obs::TraceScope span("serve.metrics");
        return json::compact(obs::snapshot().toJson());
    }
    if (req.method == "health") {
        obs::TraceScope span("serve.health");
        return handleHealth();
    }
    throw ConfigError("unknown method '" + req.method + "'");
}

std::string
Server::handleEval(const Request &req)
{
    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    if (token.cancelled())
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline",
                         "deadline expired before evaluation started"};

    // The shared pool is the evaluation bottleneck by design: a
    // deadline that expires while this request waits its turn in the
    // queue turns into a cancelled error instead of late work.
    std::vector<EvalRecord> recs(1);
    auto fut = _pool.submit([&] {
        if (token.cancelled())
            throw CancelledError("deadline expired in queue");
        recs[0] = evalConfigRecord(cfg, &_cache);
    });
    try {
        fut.get();
    } catch (const CancelledError &e) {
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline", e.what()};
    }
    return json::parse(toJson(recs)).items.at(0).dump();
}

std::string
Server::handleSimulate(const Request &req)
{
    static const obs::Counter sims = obs::counter("serve.simulations");

    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    SimulateRequest sreq;
    sreq.workload = stringParamOr(req, "workload", sreq.workload);
    sreq.dataflow = stringParamOr(req, "dataflow", sreq.dataflow);
    const double batch = numberParamOr(req, "batch", 1.0);
    requireConfig(batch >= 1.0 && batch == double(int(batch)),
                  "'batch' must be a positive integer");
    sreq.batch = int(batch);
    sreq.swOptimizations = boolParamOr(req, "sw_opt", true);
    const bool layers = boolParamOr(req, "layers", false);
    if (token.cancelled())
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline",
                         "deadline expired before simulation started"};

    // Same queue discipline as eval: the chip build + per-layer
    // mapping runs on the shared pool, and a deadline that fires
    // while queued becomes a cancelled error instead of late work.
    std::string out;
    auto fut = _pool.submit([&] {
        if (token.cancelled())
            throw CancelledError("deadline expired in queue");
        out = simResultJson(simulateWorkload(cfg, sreq), layers);
    });
    try {
        fut.get();
    } catch (const CancelledError &e) {
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline", e.what()};
    }
    sims.inc();
    return out;
}

std::string
Server::handleSweep(const Request &req)
{
    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    const SweepGrid grid = sweepGridForConfig(cfg, axesParam(req));

    SweepOptions sopts;
    sopts.sharedCache = &_cache;
    sopts.sharedPool = &_pool;
    sopts.cancel = token;
    sopts.keepInfeasible = boolParamOr(req, "keep_infeasible", true);
    SweepEngine engine(cfg, sopts);

    // parallelFor is driven from this connection thread (a non-pool
    // thread), which the pool supports for concurrent callers.
    const std::vector<EvalRecord> recs = engine.run(grid);
    const SweepRunStats &stats = engine.lastRun();

    json::Value out = json::Value::object_();
    out.set("cancelled", json::Value::boolean_(stats.cancelled))
        .set("total", json::Value::number_(double(stats.total)))
        .set("ok", json::Value::number_(double(stats.ok)))
        .set("failed", json::Value::number_(double(stats.failed)))
        .set("not_evaluated",
             json::Value::number_(double(stats.notEvaluated)))
        .set("points", json::parse(toJson(recs)));
    return out.dump();
}

std::string
Server::handleSearch(const Request &req)
{
    static const obs::Counter searches = obs::counter("serve.searches");

    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    const SweepGrid grid = sweepGridForConfig(cfg, axesParam(req));

    SearchOptions sopts;
    const double seed = numberParamOr(req, "seed", 1.0);
    requireConfig(seed >= 0 && seed == double(std::uint64_t(seed)),
                  "'seed' must be a non-negative integer");
    sopts.seed = std::uint64_t(seed);
    const double budget = numberParamOr(req, "budget", 0.0);
    requireConfig(budget >= 0 && budget == double(int(budget)),
                  "'budget' must be a non-negative integer");
    sopts.evalBudget = std::size_t(budget);
    const std::string objectives =
        stringParamOr(req, "objectives", "");
    if (!objectives.empty())
        sopts.objectives = parseObjectives(objectives);
    sopts.sweep.sharedCache = &_cache;
    sopts.sweep.sharedPool = &_pool;
    sopts.sweep.cancel = token;
    SearchEngine engine(cfg, sopts);

    const SearchResult r = engine.run(grid);

    const char *termination =
        r.stats.cancelled         ? "cancelled"
        : r.stats.budgetExhausted ? "budget"
        : r.stats.spaceExhausted  ? "space"
        : r.stats.stagnated       ? "stagnated"
                                  : "unknown";
    json::Value frontier = json::Value::array_();
    for (std::size_t i : r.frontier)
        frontier.items.push_back(json::Value::number_(double(i)));

    json::Value out = json::Value::object_();
    out.set("cancelled", json::Value::boolean_(r.stats.cancelled))
        .set("grid_points",
             json::Value::number_(double(r.stats.gridPoints)))
        .set("evals", json::Value::number_(double(r.stats.selected)))
        .set("rounds", json::Value::number_(double(r.stats.rounds)))
        .set("restored",
             json::Value::number_(double(r.stats.restored)))
        .set("failed", json::Value::number_(double(r.stats.failed)))
        .set("cache_hits",
             json::Value::number_(double(r.stats.cacheHits)))
        .set("hypervolume", json::Value::number_(r.stats.hypervolume))
        .set("termination", json::Value::string_(termination))
        .set("frontier", std::move(frontier))
        .set("points", json::parse(toJson(r.records)));
    if (!r.stats.cancelled)
        searches.inc();
    return out.dump();
}

std::string
Server::handleHealth()
{
    const double uptime_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - _startTime)
            .count();
    json::Value out = json::Value::object_();
    out.set("status", json::Value::string_("ok"))
        .set("uptime_s", json::Value::number_(uptime_s))
        .set("inflight", json::Value::number_(double(inflight())))
        .set("max_inflight",
             json::Value::number_(double(_maxInflight)))
        .set("threads",
             json::Value::number_(double(_pool.numThreads())));
    return out.dump();
}

} // namespace neurometer::serve
