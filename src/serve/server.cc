#include "serve/server.hh"

#include <chrono>
#include <cstdio>
#include <utility>

#include "chip/config.hh"
#include "explore/export.hh"
#include "explore/search.hh"
#include "explore/sweep.hh"
#include "neurometer/api.hh"
#include "obs/events.hh"
#include "obs/exposition.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/http.hh"

namespace neurometer::serve {

namespace {

obs::Gauge
inflightGauge()
{
    static const obs::Gauge g = obs::gauge(
        "serve.inflight", "eval/sweep/search requests currently admitted");
    return g;
}

/**
 * RAII admission slot: atomically claims one in-flight unit unless the
 * server is already at capacity. Lock-free CAS so a rejected request
 * never waits behind an admitted one.
 */
class InflightSlot
{
  public:
    InflightSlot(std::atomic<int> &inflight, int max)
        : _inflight(inflight)
    {
        int cur = _inflight.load(std::memory_order_relaxed);
        while (cur < max &&
               !_inflight.compare_exchange_weak(
                   cur, cur + 1, std::memory_order_relaxed)) {
        }
        _ok = cur < max;
        if (_ok)
            inflightGauge().set(double(cur + 1));
    }

    ~InflightSlot()
    {
        if (_ok) {
            const int now =
                _inflight.fetch_sub(1, std::memory_order_relaxed) - 1;
            inflightGauge().set(double(now));
        }
    }

    InflightSlot(const InflightSlot &) = delete;
    InflightSlot &operator=(const InflightSlot &) = delete;

    bool ok() const { return _ok; }

  private:
    std::atomic<int> &_inflight;
    bool _ok = false;
};

/** Flight-recorder request id: "r" + the monotonic request number. */
std::string
requestIdStr(std::uint64_t rid)
{
    return "r" + std::to_string(rid);
}

/** Chain a per-request token to server shutdown + optional deadline. */
CancelToken
requestToken(const Request &req, const CancelToken &server_cancel)
{
    CancelToken token;
    token.follow(server_cancel);
    const double deadline_ms = numberParamOr(req, "deadline_ms", 0.0);
    requireConfig(deadline_ms >= 0, "'deadline_ms' must be >= 0");
    if (deadline_ms > 0)
        token.cancelAfterSeconds(deadline_ms / 1000.0);
    return token;
}

/** Named axes from the request's `axes` param (array of
 *  {path, values} objects; values may be strings, numbers, bools). */
std::vector<NamedAxis>
axesParam(const Request &req)
{
    std::vector<NamedAxis> axes;
    const json::Value *arr =
        req.params.isObject() ? req.params.find("axes") : nullptr;
    if (arr == nullptr || arr->isNull())
        return axes;
    requireConfig(arr->isArray(), "'axes' must be an array");
    for (const json::Value &e : arr->items) {
        requireConfig(e.isObject(),
                      "each axis must be a {path, values} object");
        const json::Value *path = e.find("path");
        requireConfig(path != nullptr &&
                          path->kind == json::Value::Kind::String,
                      "axis 'path' must be a string");
        const json::Value *vals = e.find("values");
        requireConfig(vals != nullptr && vals->isArray() &&
                          !vals->items.empty(),
                      "axis 'values' must be a non-empty array");
        NamedAxis ax{path->text, {}};
        for (const json::Value &v : vals->items) {
            switch (v.kind) {
              case json::Value::Kind::String:
                ax.values.push_back(v.text);
                break;
              case json::Value::Kind::Number:
                ax.values.push_back(json::number(v.number));
                break;
              case json::Value::Kind::Bool:
                ax.values.push_back(v.boolean ? "true" : "false");
                break;
              default:
                throw ConfigError(
                    "axis values must be strings, numbers, or "
                    "booleans");
            }
        }
        axes.push_back(std::move(ax));
    }
    return axes;
}

} // namespace

Server::Server(ServeOptions opts)
    : _opts(std::move(opts)), _pool(_opts.threads)
{
    _maxInflight = _opts.maxInflight > 0 ? _opts.maxInflight
                                         : 2 * _pool.numThreads();
    if (_opts.coordinate.enabled)
        _coordinator = std::make_unique<Coordinator>(_opts.coordinate);
    _startTime = std::chrono::steady_clock::now();
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (_started)
        return;
    _listen = std::make_unique<ListenSocket>(_opts.port);
    _port = _listen->port();
    _started = true;
    _acceptThread = std::thread([this] { acceptLoop(); });
}

void
Server::run()
{
    start();
    // Once the coordinated sweep completes, linger briefly before
    // closing sockets: workers idling in a {wait, retry_ms} backoff
    // (<= 500ms) must get their {done} answer instead of a torn
    // connection. Non-coordinator daemons never set this.
    std::chrono::steady_clock::time_point drain_until{};
    while (!_opts.cancel.cancelled()) {
        if (_coordinator != nullptr) {
            // The poll loop is the coordinator's liveness driver:
            // expire overdue leases every tick, and shut down once
            // the sweep is complete, the export is on disk, and the
            // drain window has passed.
            _coordinator->expireStale();
            if (_coordinator->complete()) {
                const auto now = std::chrono::steady_clock::now();
                if (drain_until == std::chrono::steady_clock::time_point{})
                    drain_until = now + std::chrono::seconds(1);
                else if (now >= drain_until)
                    break;
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(_opts.pollIntervalMs));
    }
    stop();
}

void
Server::stop()
{
    if (!_started || _stopped)
        return;
    _stopped = true;
    _opts.cancel.requestCancel();
    if (_acceptThread.joinable())
        _acceptThread.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(_connMu);
        conns.swap(_connThreads);
    }
    for (std::thread &t : conns) {
        if (t.joinable())
            t.join();
    }
    _listen.reset();
}

void
Server::acceptLoop()
{
    while (!_opts.cancel.cancelled()) {
        Fd client;
        try {
            client = _listen->acceptClient(_opts.pollIntervalMs);
        } catch (...) {
            // A transient accept failure (fd pressure, aborted
            // handshake) must not take the daemon down; back off one
            // poll interval and keep listening.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(_opts.pollIntervalMs));
            continue;
        }
        if (!client.valid())
            continue;
        std::lock_guard<std::mutex> lk(_connMu);
        _connThreads.emplace_back(
            [this, fd = std::move(client)]() mutable {
                connectionLoop(std::move(fd));
            });
    }
}

void
Server::connectionLoop(Fd client)
{
    static const obs::Counter conns = obs::counter(
        "serve.connections", "TCP connections accepted by the daemon");
    conns.inc();
    LineReader reader(client.get());
    std::string line;
    while (!_opts.cancel.cancelled()) {
        ReadStatus st;
        try {
            st = reader.readLine(line, _opts.pollIntervalMs);
        } catch (const IoError &e) {
            // Oversize line or a failed read: the byte stream cannot
            // be resynchronized, so answer once and drop the client.
            try {
                writeLine(client.get(),
                          errorResponse(
                              json::Value::null(),
                              errorCategoryStr(ErrorCategory::Io),
                              "serve.read", e.what()));
            } catch (...) {
            }
            break;
        }
        if (st == ReadStatus::Timeout)
            continue;
        if (st == ReadStatus::Eof)
            break;
        if (looksLikeHttp(line)) {
            // A scraper, not a JSON client: answer one HTTP request
            // and close (our responses say `Connection: close`).
            httpConnection(client, reader, line);
            break;
        }
        const std::string resp = dispatchLine(line);
        try {
            writeLine(client.get(), resp);
        } catch (const IoError &) {
            break; // peer went away mid-response
        }
    }
}

void
Server::httpConnection(Fd &client, LineReader &reader,
                       const std::string &request_line)
{
    static const obs::Counter scrapes = obs::counter(
        "serve.http_requests",
        "HTTP observability requests served (/metrics, /health, "
        "/statusz)");

    // Drain the header block; an HTTP/1.1 request ends at the first
    // empty line and we accept no bodies. Bound the header count so a
    // hostile client cannot pin the connection thread.
    std::string header;
    for (int i = 0; i < 128; ++i) {
        ReadStatus st;
        try {
            st = reader.readLine(header, _opts.pollIntervalMs);
        } catch (const IoError &) {
            return; // oversize header line: drop the client
        }
        if (st == ReadStatus::Eof)
            return;
        if (st == ReadStatus::Timeout) {
            if (_opts.cancel.cancelled())
                return;
            --i;
            continue;
        }
        if (header.empty())
            break;
    }

    HttpRequest req;
    std::string reply;
    if (!parseHttpRequestLine(request_line, req)) {
        reply = httpResponse(400, "text/plain; charset=utf-8",
                             "malformed request line\n");
    } else {
        reply = httpReplyFor(req.method, req.target);
    }
    scrapes.inc();
    try {
        writeAll(client.get(), reply.data(), reply.size());
    } catch (const IoError &) {
        // scraper went away mid-response; nothing to salvage
    }
}

std::string
Server::httpReplyFor(const std::string &method, const std::string &target)
{
    obs::TraceScope span("serve.http");
    if (method != "GET") {
        return httpResponse(405, "text/plain; charset=utf-8",
                            "only GET is supported\n");
    }
    if (target == "/metrics") {
        return httpResponse(200, obs::kPrometheusContentType,
                            obs::renderPrometheus(obs::snapshot()));
    }
    if (target == "/health") {
        return httpResponse(200, "application/json",
                            handleHealth() + "\n");
    }
    if (target == "/statusz") {
        return httpResponse(200, "text/plain; charset=utf-8",
                            statuszText());
    }
    return httpResponse(404, "text/plain; charset=utf-8",
                        "not found; try /metrics, /health, /statusz\n");
}

std::string
Server::statuszText()
{
    const obs::Snapshot snap = obs::snapshot();
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      _startTime)
            .count();
    char line[256];
    std::string out = "neurometer serve - statusz\n\n";
    std::snprintf(line, sizeof(line), "uptime_s:     %.1f\n", uptime_s);
    out += line;
    out += "build:        " + obs::BuildInfo::gitDescribe() + " (" +
           obs::BuildInfo::compiler() + ", " +
           obs::BuildInfo::buildType() + ")\n";
    out += "port:         " + std::to_string(_port) + "\n";
    out += "threads:      " + std::to_string(_pool.numThreads()) + "\n";
    out += "inflight:     " + std::to_string(inflight()) + " / " +
           std::to_string(_maxInflight) + "\n";
    std::snprintf(
        line, sizeof(line),
        "requests:     ok=%llu failed=%llu rejected=%llu http=%llu\n",
        static_cast<unsigned long long>(snap.counter("serve.requests.ok")),
        static_cast<unsigned long long>(
            snap.counter("serve.requests.failed")),
        static_cast<unsigned long long>(
            snap.counter("serve.requests.rejected")),
        static_cast<unsigned long long>(
            snap.counter("serve.http_requests")));
    out += line;

    if (_coordinator != nullptr)
        out += _coordinator->statusText();

    const auto rates = snap.hitRates();
    if (!rates.empty()) {
        out += "\ncache hit rates:\n";
        for (const auto &[name, r] : rates) {
            std::snprintf(line, sizeof(line), "  %-32s %6.1f%%\n",
                          name.c_str(), 100.0 * r);
            out += line;
        }
    }

    const std::vector<obs::SlowOp> slow = obs::slowOps();
    if (!slow.empty()) {
        out += "\nslow points (worst by eval wall-clock):\n";
        for (std::size_t i = 0; i < slow.size(); ++i) {
            std::snprintf(line, sizeof(line),
                          "  %2zu. %10.6fs  %-6s %s [%s]\n", i + 1,
                          slow[i].seconds,
                          slow[i].requestId.empty()
                              ? "-"
                              : slow[i].requestId.c_str(),
                          slow[i].label.c_str(), slow[i].site.c_str());
            out += line;
        }
    }

    const std::vector<obs::Event> events = obs::recentEvents(20);
    std::snprintf(line, sizeof(line),
                  "\nrecent events (%zu shown of %llu recorded):\n",
                  events.size(),
                  static_cast<unsigned long long>(obs::eventsRecorded()));
    out += line;
    for (const obs::Event &e : events) {
        std::snprintf(line, sizeof(line),
                      "  #%-6llu %-5s %-20s %-6s %s\n",
                      static_cast<unsigned long long>(e.seq),
                      obs::eventSeverityStr(e.severity), e.type.c_str(),
                      e.requestId.empty() ? "-" : e.requestId.c_str(),
                      e.detail.c_str());
        out += line;
    }
    return out;
}

std::string
Server::dispatchLine(const std::string &line)
{
    static const obs::Counter ok_reqs = obs::counter(
        "serve.requests.ok", "RPC requests answered successfully");
    static const obs::Counter failed_reqs = obs::counter(
        "serve.requests.failed", "RPC requests that ended in an error");
    static const obs::Counter rejected_reqs = obs::counter(
        "serve.requests.rejected",
        "RPC requests rejected by max-inflight admission control");
    static const obs::Histogram req_hist = obs::histogram(
        "serve.request_s", "end-to-end RPC request latency in seconds");

    Request req;
    try {
        req = parseRequest(line);
    } catch (...) {
        // No trustworthy id to echo on a line that never parsed.
        failed_reqs.inc();
        obs::recordEvent(obs::EventSeverity::Error, "request.fail", "",
                         "unparseable request line");
        return errorResponse(json::Value::null(),
                             captureCurrentException("serve.parse"));
    }
    const std::uint64_t rid =
        _requestSeq.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::string rid_str = requestIdStr(rid);
    obs::recordEvent(obs::EventSeverity::Info, "request.start", rid_str,
                     req.method);
    try {
        obs::TraceScope span("serve.request", rid);
        obs::ScopedTimer timer(req_hist);
        const std::string result = handle(req, rid);
        ok_reqs.inc();
        obs::recordEvent(obs::EventSeverity::Info, "request.finish",
                         rid_str, req.method + " ok");
        return okResponse(req.id, result);
    } catch (const ServeError &e) {
        const bool busy = e.category == kBusyCategory;
        (busy ? rejected_reqs : failed_reqs).inc();
        obs::recordEvent(busy ? obs::EventSeverity::Warn
                              : obs::EventSeverity::Error,
                         busy ? "request.reject" : "request.fail",
                         rid_str, req.method + ": " + e.message);
        return errorResponse(req.id, e);
    } catch (...) {
        failed_reqs.inc();
        const PointError err = captureCurrentException("serve.request");
        obs::recordEvent(obs::EventSeverity::Error, "request.fail",
                         rid_str, req.method + ": " + err.message);
        return errorResponse(req.id, err);
    }
}

std::string
Server::handle(const Request &req, std::uint64_t rid)
{
    if (req.method == "eval") {
        obs::TraceScope span("serve.eval", rid);
        static const obs::Histogram h = obs::histogram("serve.eval_s");
        obs::ScopedTimer t(h);
        return handleEval(req);
    }
    if (req.method == "sweep") {
        obs::TraceScope span("serve.sweep", rid);
        static const obs::Histogram h =
            obs::histogram("serve.sweep_s");
        obs::ScopedTimer t(h);
        return handleSweep(req, rid);
    }
    if (req.method == "search") {
        obs::TraceScope span("serve.search", rid);
        static const obs::Histogram h =
            obs::histogram("serve.search_s");
        obs::ScopedTimer t(h);
        return handleSearch(req, rid);
    }
    if (req.method == "simulate") {
        obs::TraceScope span("serve.simulate");
        static const obs::Histogram h =
            obs::histogram("serve.simulate_s");
        obs::ScopedTimer t(h);
        return handleSimulate(req);
    }
    if (req.method == "fields") {
        obs::TraceScope span("serve.fields");
        return fieldsJson();
    }
    if (req.method == "metrics") {
        obs::TraceScope span("serve.metrics");
        return json::compact(obs::snapshot().toJson());
    }
    if (req.method == "health") {
        obs::TraceScope span("serve.health");
        return handleHealth();
    }
    if (req.method == "job" || req.method == "lease" ||
        req.method == "report" || req.method == "heartbeat") {
        obs::TraceScope span("serve.coordinate");
        return handleCoordinate(req);
    }
    throw ConfigError("unknown method '" + req.method + "'");
}

std::string
Server::handleEval(const Request &req)
{
    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    if (token.cancelled())
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline",
                         "deadline expired before evaluation started"};

    // The shared pool is the evaluation bottleneck by design: a
    // deadline that expires while this request waits its turn in the
    // queue turns into a cancelled error instead of late work.
    std::vector<EvalRecord> recs(1);
    auto fut = _pool.submit([&] {
        if (token.cancelled())
            throw CancelledError("deadline expired in queue");
        recs[0] = evalConfigRecord(cfg, &_cache);
    });
    try {
        fut.get();
    } catch (const CancelledError &e) {
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline", e.what()};
    }
    return json::parse(toJson(recs)).items.at(0).dump();
}

std::string
Server::handleSimulate(const Request &req)
{
    static const obs::Counter sims = obs::counter("serve.simulations");

    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    SimulateRequest sreq;
    sreq.workload = stringParamOr(req, "workload", sreq.workload);
    sreq.dataflow = stringParamOr(req, "dataflow", sreq.dataflow);
    const double batch = numberParamOr(req, "batch", 1.0);
    requireConfig(batch >= 1.0 && batch == double(int(batch)),
                  "'batch' must be a positive integer");
    sreq.batch = int(batch);
    sreq.swOptimizations = boolParamOr(req, "sw_opt", true);
    const bool layers = boolParamOr(req, "layers", false);
    if (token.cancelled())
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline",
                         "deadline expired before simulation started"};

    // Same queue discipline as eval: the chip build + per-layer
    // mapping runs on the shared pool, and a deadline that fires
    // while queued becomes a cancelled error instead of late work.
    std::string out;
    auto fut = _pool.submit([&] {
        if (token.cancelled())
            throw CancelledError("deadline expired in queue");
        out = simResultJson(simulateWorkload(cfg, sreq), layers);
    });
    try {
        fut.get();
    } catch (const CancelledError &e) {
        throw ServeError{errorCategoryStr(ErrorCategory::Cancelled),
                         "serve.deadline", e.what()};
    }
    sims.inc();
    return out;
}

std::string
Server::handleSweep(const Request &req, std::uint64_t rid)
{
    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    const SweepGrid grid = sweepGridForConfig(cfg, axesParam(req));

    SweepOptions sopts;
    sopts.sharedCache = &_cache;
    sopts.sharedPool = &_pool;
    sopts.cancel = token;
    sopts.requestId = requestIdStr(rid);
    sopts.keepInfeasible = boolParamOr(req, "keep_infeasible", true);
    SweepEngine engine(cfg, sopts);

    // parallelFor is driven from this connection thread (a non-pool
    // thread), which the pool supports for concurrent callers.
    const std::vector<EvalRecord> recs = engine.run(grid);
    const SweepRunStats &stats = engine.lastRun();

    json::Value out = json::Value::object_();
    out.set("cancelled", json::Value::boolean_(stats.cancelled))
        .set("total", json::Value::number_(double(stats.total)))
        .set("ok", json::Value::number_(double(stats.ok)))
        .set("failed", json::Value::number_(double(stats.failed)))
        .set("not_evaluated",
             json::Value::number_(double(stats.notEvaluated)))
        .set("points", json::parse(toJson(recs)));
    return out.dump();
}

std::string
Server::handleSearch(const Request &req, std::uint64_t rid)
{
    static const obs::Counter searches = obs::counter("serve.searches");

    InflightSlot slot(_inflight, _maxInflight);
    if (!slot.ok())
        throw ServeError{kBusyCategory, "serve.admission",
                         "server is at max-inflight (" +
                             std::to_string(_maxInflight) +
                             " requests); retry later"};

    const CancelToken token = requestToken(req, _opts.cancel);
    const ChipConfig cfg =
        ChipConfig::fromString(stringParam(req, "config"), "<request>");
    const SweepGrid grid = sweepGridForConfig(cfg, axesParam(req));

    SearchOptions sopts;
    const double seed = numberParamOr(req, "seed", 1.0);
    requireConfig(seed >= 0 && seed == double(std::uint64_t(seed)),
                  "'seed' must be a non-negative integer");
    sopts.seed = std::uint64_t(seed);
    const double budget = numberParamOr(req, "budget", 0.0);
    requireConfig(budget >= 0 && budget == double(int(budget)),
                  "'budget' must be a non-negative integer");
    sopts.evalBudget = std::size_t(budget);
    const std::string objectives =
        stringParamOr(req, "objectives", "");
    if (!objectives.empty())
        sopts.objectives = parseObjectives(objectives);
    sopts.sweep.sharedCache = &_cache;
    sopts.sweep.sharedPool = &_pool;
    sopts.sweep.cancel = token;
    sopts.sweep.requestId = requestIdStr(rid);
    SearchEngine engine(cfg, sopts);

    const SearchResult r = engine.run(grid);

    const char *termination =
        r.stats.cancelled         ? "cancelled"
        : r.stats.budgetExhausted ? "budget"
        : r.stats.spaceExhausted  ? "space"
        : r.stats.stagnated       ? "stagnated"
                                  : "unknown";
    json::Value frontier = json::Value::array_();
    for (std::size_t i : r.frontier)
        frontier.items.push_back(json::Value::number_(double(i)));

    json::Value out = json::Value::object_();
    out.set("cancelled", json::Value::boolean_(r.stats.cancelled))
        .set("grid_points",
             json::Value::number_(double(r.stats.gridPoints)))
        .set("evals", json::Value::number_(double(r.stats.selected)))
        .set("rounds", json::Value::number_(double(r.stats.rounds)))
        .set("restored",
             json::Value::number_(double(r.stats.restored)))
        .set("failed", json::Value::number_(double(r.stats.failed)))
        .set("cache_hits",
             json::Value::number_(double(r.stats.cacheHits)))
        .set("hypervolume", json::Value::number_(r.stats.hypervolume))
        .set("termination", json::Value::string_(termination))
        .set("frontier", std::move(frontier))
        .set("points", json::parse(toJson(r.records)));
    if (!r.stats.cancelled)
        searches.inc();
    return out.dump();
}

std::string
Server::handleCoordinate(const Request &req)
{
    requireConfig(_coordinator != nullptr,
                  "'" + req.method +
                      "' requires a coordinating daemon (serve "
                      "--coordinate)");
    if (req.method == "job")
        return _coordinator->job().dump();

    const std::string worker = stringParam(req, "worker");
    if (req.method == "lease")
        return _coordinator->lease(worker).dump();

    const double lease = numberParamOr(req, "lease", -1.0);
    requireConfig(lease >= 0 && lease == double(std::uint64_t(lease)),
                  "'lease' must be a non-negative integer");
    const auto leaseId = std::uint64_t(lease);
    if (req.method == "heartbeat")
        return _coordinator->heartbeat(worker, leaseId).dump();

    const json::Value *rows =
        req.params.isObject() ? req.params.find("rows") : nullptr;
    requireConfig(rows != nullptr, "'rows' is required");
    return _coordinator->report(worker, leaseId, *rows).dump();
}

std::string
Server::handleHealth()
{
    const double uptime_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - _startTime)
            .count();
    json::Value out = json::Value::object_();
    out.set("status", json::Value::string_("ok"))
        .set("uptime_s", json::Value::number_(uptime_s))
        .set("inflight", json::Value::number_(double(inflight())))
        .set("max_inflight",
             json::Value::number_(double(_maxInflight)))
        .set("threads",
             json::Value::number_(double(_pool.numThreads())));
    return out.dump();
}

} // namespace neurometer::serve
