#include "serve/coordinator.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "explore/eval_cache.hh"
#include "explore/export.hh"
#include "neurometer/api.hh"
#include "obs/events.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"

namespace neurometer::serve {

namespace {

obs::Counter
leasesGranted()
{
    static const obs::Counter c = obs::counter(
        "coord.leases.granted", "work leases granted to sweep workers");
    return c;
}

obs::Counter
leasesExpired()
{
    static const obs::Counter c = obs::counter(
        "coord.leases.expired",
        "leases whose heartbeat timeout elapsed (worker presumed dead)");
    return c;
}

obs::Counter
leasesReassigned()
{
    static const obs::Counter c = obs::counter(
        "coord.leases.reassigned",
        "granted leases containing previously-leased (expired) work");
    return c;
}

obs::Counter
pointsReported()
{
    static const obs::Counter c = obs::counter(
        "coord.points.reported", "sweep points accepted from workers");
    return c;
}

obs::Counter
duplicateRows()
{
    static const obs::Counter c = obs::counter(
        "coord.reports.duplicate_rows",
        "reported rows for already-done points (idempotent re-runs)");
    return c;
}

/** Range text for lease events: "[3..17] (15 pts)". */
std::string
indicesLabel(const std::vector<std::size_t> &idx)
{
    if (idx.empty())
        return "[] (0 pts)";
    const auto [lo, hi] = std::minmax_element(idx.begin(), idx.end());
    return "[" + std::to_string(*lo) + ".." + std::to_string(*hi) +
           "] (" + std::to_string(idx.size()) + " pts)";
}

} // namespace

Coordinator::Coordinator(CoordinateOptions opts, Clock clock)
    : _opts(std::move(opts)),
      _clock(clock ? std::move(clock)
                   : [] { return std::chrono::steady_clock::now(); }),
      _base(ChipConfig::fromString(_opts.configText, "<coordinate>"))
{
    requireConfig(_opts.leaseTimeoutS > 0.0,
                  "--lease-timeout must be positive");
    const SweepGrid grid = sweepGridForConfig(_base, _opts.axes);
    _expander = std::make_unique<GridExpander>(grid, _base);
    const std::size_t n = _expander->size();
    requireConfig(n > 0, "coordinate grid is empty");

    _keys.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
        _keys.push_back(configKey(_expander->at(k).config));

    _state.assign(n, PointState::Pending);
    _everLeased.assign(n, 0);
    _entries.resize(n);
    for (std::size_t k = 0; k < n; ++k)
        _pending.push_back(k);

    if (_opts.leaseSize == 0)
        _opts.leaseSize = std::clamp<std::size_t>(n / 16, 1, 32);

    if (!_opts.checkpointPath.empty()) {
        _ckpt = std::make_unique<SweepCheckpoint>(
            _opts.checkpointPath, configKey(_base), 32);
    }
    obs::recordEvent(obs::EventSeverity::Info, "coord.start", "",
                     std::to_string(n) + " points, lease size " +
                         std::to_string(_opts.leaseSize) + ", timeout " +
                         std::to_string(_opts.leaseTimeoutS) + "s");
}

double
Coordinator::heartbeatS() const
{
    return _opts.heartbeatS > 0.0 ? _opts.heartbeatS
                                  : _opts.leaseTimeoutS / 3.0;
}

json::Value
Coordinator::job() const
{
    json::Value axes = json::Value::array_();
    for (const NamedAxis &a : _opts.axes) {
        json::Value ax = json::Value::object_();
        ax.set("path", json::Value::string_(a.path));
        json::Value vals = json::Value::array_();
        for (const std::string &v : a.values)
            vals.push(json::Value::string_(v));
        ax.set("values", std::move(vals));
        axes.push(std::move(ax));
    }
    json::Value out = json::Value::object_();
    out.set("config", json::Value::string_(_opts.configText))
        .set("axes", std::move(axes))
        .set("points", json::Value::number_(double(_keys.size())))
        .set("lease_timeout_s",
             json::Value::number_(_opts.leaseTimeoutS))
        .set("heartbeat_s", json::Value::number_(heartbeatS()));
    return out;
}

json::Value
Coordinator::lease(const std::string &worker)
{
    std::lock_guard<std::mutex> lk(_mu);
    json::Value out = json::Value::object_();

    // Pop pending indices off the queue front; stale entries (points a
    // late report already finished) are skipped, not granted.
    std::vector<std::size_t> granted;
    bool reassigned = false;
    while (!_pending.empty() && granted.size() < _opts.leaseSize) {
        const std::size_t k = _pending.front();
        _pending.pop_front();
        if (_state[k] != PointState::Pending)
            continue;
        _state[k] = PointState::Leased;
        reassigned = reassigned || _everLeased[k];
        _everLeased[k] = 1;
        granted.push_back(k);
    }

    if (granted.empty()) {
        if (_done == _keys.size()) {
            out.set("done", json::Value::boolean_(true));
            return out;
        }
        // Everything is leased out but not yet reported: the worker
        // should idle briefly — an expiry may refill the queue.
        out.set("wait", json::Value::boolean_(true))
            .set("retry_ms",
                 json::Value::number_(std::min(
                     500.0, 1e3 * _opts.leaseTimeoutS / 4.0)));
        return out;
    }

    Lease l;
    l.id = ++_nextLease;
    l.worker = worker;
    l.indices = granted;
    l.deadline = _clock() + std::chrono::nanoseconds(std::int64_t(
                                _opts.leaseTimeoutS * 1e9));
    l.reassigned = reassigned;

    leasesGranted().inc();
    obs::recordEvent(obs::EventSeverity::Info, "lease.grant", "",
                     "lease " + std::to_string(l.id) + " -> " + worker +
                         " " + indicesLabel(granted));
    if (reassigned) {
        leasesReassigned().inc();
        obs::recordEvent(obs::EventSeverity::Warn, "lease.reassign", "",
                         "lease " + std::to_string(l.id) +
                             " re-leases expired work to " + worker);
    }

    json::Value idx = json::Value::array_();
    for (const std::size_t k : granted)
        idx.push(json::Value::number_(double(k)));
    out.set("lease", json::Value::number_(double(l.id)))
        .set("indices", std::move(idx));
    _leases.emplace(l.id, std::move(l));
    return out;
}

json::Value
Coordinator::report(const std::string &worker, std::uint64_t leaseId,
                    const json::Value &rows)
{
    requireConfig(rows.isArray(), "'rows' must be an array");
    std::lock_guard<std::mutex> lk(_mu);

    std::size_t accepted = 0;
    std::size_t duplicates = 0;
    for (const json::Value &row : rows.items) {
        requireConfig(row.isObject(),
                      "each row must be an {index, entry} object");
        const json::Value *idx = row.find("index");
        const json::Value *entry_line = row.find("entry");
        requireConfig(idx != nullptr &&
                          idx->kind == json::Value::Kind::Number,
                      "row 'index' must be a number");
        requireConfig(entry_line != nullptr &&
                          entry_line->kind ==
                              json::Value::Kind::String,
                      "row 'entry' must be a string");
        const std::size_t k = std::size_t(idx->number);
        requireConfig(double(k) == idx->number && k < _keys.size(),
                      "row index out of range");
        CheckpointEntry e =
            parseCheckpointEntry(entry_line->text, "<report>");
        // The key is the point's identity: a row whose key does not
        // match its claimed index evaluated the wrong config.
        requireConfig(e.key == _keys[k],
                      "row " + std::to_string(k) +
                          " key does not match the grid point");
        if (_state[k] == PointState::Done) {
            // Idempotent re-execution: a late report after expiry and
            // reassignment. An ok row may still upgrade a failed one.
            ++duplicates;
            duplicateRows().inc();
            if (_entries[k].failed && !e.failed)
                _entries[k] = std::move(e);
            continue;
        }
        _state[k] = PointState::Done;
        _entries[k] = std::move(e);
        ++_done;
        ++accepted;
        pointsReported().inc();
        if (_ckpt)
            _ckpt->add(_entries[k]);
    }

    // Close the lease; any of its points the worker did not finish
    // (cancelled mid-lease) return to the queue immediately. Unknown
    // lease ids — expired before this report arrived — are tolerated:
    // the rows above were accepted regardless.
    const auto it = _leases.find(leaseId);
    if (it != _leases.end()) {
        for (const std::size_t k : it->second.indices) {
            if (_state[k] == PointState::Leased) {
                _state[k] = PointState::Pending;
                _pending.push_front(k);
            }
        }
        _leases.erase(it);
    }

    obs::recordEvent(obs::EventSeverity::Info, "lease.report", "",
                     worker + " lease " + std::to_string(leaseId) +
                         ": " + std::to_string(accepted) +
                         " accepted, " + std::to_string(duplicates) +
                         " duplicate");

    if (_done == _keys.size() && !_finalized)
        finalizeLocked();

    json::Value out = json::Value::object_();
    out.set("done", json::Value::number_(double(_done)))
        .set("total", json::Value::number_(double(_keys.size())))
        .set("complete",
             json::Value::boolean_(_done == _keys.size()))
        .set("duplicates", json::Value::number_(double(duplicates)));
    return out;
}

json::Value
Coordinator::heartbeat(const std::string &worker, std::uint64_t leaseId)
{
    std::lock_guard<std::mutex> lk(_mu);
    json::Value out = json::Value::object_();
    const auto it = _leases.find(leaseId);
    if (it == _leases.end()) {
        // The lease expired (or never existed): the worker should
        // abandon it — its points are already back in the queue.
        out.set("ok", json::Value::boolean_(false))
            .set("expired", json::Value::boolean_(true));
        return out;
    }
    it->second.deadline =
        _clock() + std::chrono::nanoseconds(
                       std::int64_t(_opts.leaseTimeoutS * 1e9));
    (void)worker;
    out.set("ok", json::Value::boolean_(true));
    return out;
}

std::size_t
Coordinator::expireStale()
{
    std::lock_guard<std::mutex> lk(_mu);
    const TimePoint now = _clock();
    std::size_t expired = 0;
    for (auto it = _leases.begin(); it != _leases.end();) {
        if (it->second.deadline > now) {
            ++it;
            continue;
        }
        Lease l = std::move(it->second);
        it = _leases.erase(it);
        ++expired;
        // Unfinished points go to the FRONT (reverse order, so the
        // queue preserves ascending grid order): reassign dead work
        // before untouched work, keeping the tail latency bounded.
        std::size_t returned = 0;
        for (auto k = l.indices.rbegin(); k != l.indices.rend(); ++k) {
            if (_state[*k] == PointState::Leased) {
                _state[*k] = PointState::Pending;
                _pending.push_front(*k);
                ++returned;
            }
        }
        leasesExpired().inc();
        obs::recordEvent(obs::EventSeverity::Warn, "lease.expire", "",
                         "lease " + std::to_string(l.id) + " (" +
                             l.worker + ") timed out; " +
                             std::to_string(returned) +
                             " points requeued");
    }
    return expired;
}

std::size_t
Coordinator::donePoints() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _done;
}

void
Coordinator::finalizeLocked()
{
    _finalized = true;

    // Reassemble grid-ordered records exactly the way a resumed local
    // sweep would: every entry came in as a canonical checkpoint line,
    // so the export is byte-identical to a single-process run.
    std::vector<EvalRecord> records;
    records.reserve(_keys.size());
    for (std::size_t k = 0; k < _keys.size(); ++k) {
        GridPoint p = _expander->at(k);
        EvalRecord &r = p.record;
        const CheckpointEntry &e = _entries[k];
        r.metrics = e.metrics;
        r.status = e.failed ? PointStatus::Failed : PointStatus::Ok;
        r.error = e.error;
        r.why = classify(r.metrics, _opts.constraints);
        records.push_back(std::move(r));
    }

    if (_ckpt)
        _ckpt->flush();
    if (!_opts.outPath.empty()) {
        writeFile(_opts.outPath,
                  _opts.outJson ? toJson(records) : toCsv(records));

        const obs::Snapshot snap = obs::snapshot();
        obs::ManifestBuilder m = obs::runManifest(
            "neurometer coordinate", "neurometer serve --coordinate");
        m.set("points", std::int64_t(_keys.size()))
            .set("lease_size", std::int64_t(_opts.leaseSize))
            .set("lease_timeout_s", _opts.leaseTimeoutS)
            .set("leases_granted",
                 std::int64_t(snap.counter("coord.leases.granted")))
            .set("leases_expired",
                 std::int64_t(snap.counter("coord.leases.expired")))
            .set("leases_reassigned",
                 std::int64_t(snap.counter("coord.leases.reassigned")))
            .set("duplicate_rows",
                 std::int64_t(
                     snap.counter("coord.reports.duplicate_rows")))
            .set("output", _opts.outPath)
            .set("format", _opts.outJson ? "json" : "csv")
            .raw("events", obs::eventsJson(40));
        obs::writeTextFile(_opts.outPath + ".manifest.json", m.str());
    }

    obs::recordEvent(obs::EventSeverity::Info, "coord.done", "",
                     std::to_string(_keys.size()) + " points merged" +
                         (_opts.outPath.empty()
                              ? ""
                              : " -> " + _opts.outPath));
    _complete.store(true, std::memory_order_release);
}

std::string
Coordinator::statusText() const
{
    std::lock_guard<std::mutex> lk(_mu);
    const TimePoint now = _clock();
    char line[192];
    std::string out = "\ncoordinator:\n";
    std::snprintf(line, sizeof(line),
                  "  points:       %zu / %zu done, %zu queued, %zu "
                  "leases active\n",
                  _done, _keys.size(), _pending.size(), _leases.size());
    out += line;
    for (const auto &[id, l] : _leases) {
        const double left =
            std::chrono::duration<double>(l.deadline - now).count();
        std::snprintf(line, sizeof(line),
                      "  lease %-6llu %-12s %3zu pts, expires in "
                      "%.1fs\n",
                      static_cast<unsigned long long>(id),
                      l.worker.c_str(), l.indices.size(), left);
        out += line;
    }
    return out;
}

} // namespace neurometer::serve
