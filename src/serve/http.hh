/**
 * @file
 * Minimal HTTP/1.1 for the observability plane — just enough for a
 * scraper (Prometheus, curl) to GET /metrics, /health, and /statusz
 * from the serve daemon's existing listener.
 *
 * The daemon speaks newline-framed JSON by default; the connection
 * loop sniffs the first line and, when it looks like an HTTP request
 * line ("GET /metrics HTTP/1.1"), switches that connection to HTTP:
 * headers are drained, one response is written with Content-Length,
 * and the connection closes (`Connection: close` — scrapers reconnect
 * per scrape, which keeps the server loop trivial). No TLS, no
 * chunked encoding, no request bodies: observability GETs only.
 *
 * httpGet() is the matching loopback client, used by
 * `neurometer metrics --url` and the tests.
 */

#ifndef NEUROMETER_SERVE_HTTP_HH
#define NEUROMETER_SERVE_HTTP_HH

#include <cstdint>
#include <string>

namespace neurometer::serve {

/** Parsed HTTP request line. */
struct HttpRequest
{
    std::string method;  ///< "GET"
    std::string target;  ///< "/metrics" (query string stripped)
    std::string version; ///< "HTTP/1.1"
};

/** Does this first line of a connection start an HTTP exchange? */
bool looksLikeHttp(const std::string &first_line);

/**
 * Parse "METHOD target HTTP/x.y". Returns false on a malformed line
 * (caller answers 400). A query string in the target is dropped.
 */
bool parseHttpRequestLine(const std::string &line, HttpRequest &out);

/** Canonical reason phrase for the handful of statuses we emit. */
const char *httpStatusText(int status);

/** A full response: status line, standard headers, body. */
std::string httpResponse(int status, const std::string &content_type,
                         const std::string &body);

/** Status + body of a fetched resource. */
struct HttpReply
{
    int status = 0;
    std::string body;
};

/**
 * Blocking GET of `target` from a daemon on 127.0.0.1:`port`. Reads
 * until the server closes (our responses always close). The connect
 * retries ECONNREFUSED with bounded exponential backoff (up to
 * `timeout_ms`), so callers racing a daemon that is still binding its
 * port converge instead of failing on the first refusal. Throws
 * IoError on exhausted/hard connect failure, transport failure, or an
 * unparseable response.
 */
HttpReply httpGet(std::uint16_t port, const std::string &target,
                  int timeout_ms = 30000);

} // namespace neurometer::serve

#endif // NEUROMETER_SERVE_HTTP_HH
