/**
 * @file
 * The serve/ wire protocol: newline-delimited JSON request/response.
 *
 * One request per line:
 *
 *   {"method": "eval", "id": 7, "params": {"config": "..."}}
 *
 * `method` is required; `id` is echoed back verbatim (any JSON value,
 * null when absent) so clients can correlate pipelined requests;
 * `params` is an optional object of method-specific arguments. One
 * response per line, either
 *
 *   {"id": 7, "ok": true, "result": ...}
 *   {"id": 7, "ok": false,
 *    "error": {"category": "...", "site": "...", "message": "..."}}
 *
 * Error objects reuse the structured PointError taxonomy
 * (common/error.hh) plus the serve-specific "busy" category for
 * admission-control rejections.
 */

#ifndef NEUROMETER_SERVE_PROTOCOL_HH
#define NEUROMETER_SERVE_PROTOCOL_HH

#include <string>

#include "common/error.hh"
#include "common/json.hh"

namespace neurometer::serve {

/** One parsed request line: the method plus its correlation id and
 *  parameter object (both optional on the wire). */
struct Request
{
    std::string method;
    json::Value id;     ///< echoed verbatim; Null when absent
    json::Value params; ///< Object kind; empty object when absent
};

/**
 * Parse one request line. Throws ConfigError — not json::Error — on
 * malformed JSON, a non-object request, a missing/non-string method,
 * or non-object params, so the caller can answer with a structured
 * category="config" error without special-casing parse failures.
 */
Request parseRequest(const std::string &line);

/**
 * A structured failure on the serve path, carrying exactly what the
 * wire error object needs. Thrown by method handlers (admission
 * rejections, deadline expiry) and turned into an errorResponse() at
 * the dispatch boundary. Categories follow errorCategoryStr() plus
 * "busy" (kBusyCategory).
 */
struct ServeError
{
    std::string category;
    std::string site;
    std::string message;
};

/** Category used for admission-control rejections (not a PointError
 *  category: the request was never attempted). */
inline constexpr const char *kBusyCategory = "busy";

/** Success response line (no trailing newline). `result_json` must be
 *  pre-rendered compact JSON — json::Value::dump(), json::compact() —
 *  and is embedded verbatim. */
std::string okResponse(const json::Value &id,
                       const std::string &result_json);

/** Failure response line from explicit category/site/message text. */
std::string errorResponse(const json::Value &id,
                          const std::string &category,
                          const std::string &site,
                          const std::string &message);

/** Failure response line from a captured PointError. */
std::string errorResponse(const json::Value &id, const PointError &err);

/** Failure response line from a ServeError. */
std::string errorResponse(const json::Value &id, const ServeError &err);

/** @name Param accessors (throw ConfigError on missing/mismatched) */
/** @{ */
/** Required string parameter `key`. */
std::string stringParam(const Request &req, const std::string &key);
/** Optional string parameter `key`; `def` when absent. */
std::string stringParamOr(const Request &req, const std::string &key,
                          const std::string &def);
/** Optional numeric parameter `key`; `def` when absent. */
double numberParamOr(const Request &req, const std::string &key,
                     double def);
/** Optional boolean parameter `key`; `def` when absent. */
bool boolParamOr(const Request &req, const std::string &key, bool def);
/** @} */

} // namespace neurometer::serve

#endif // NEUROMETER_SERVE_PROTOCOL_HH
