#include "serve/protocol.hh"

namespace neurometer::serve {

Request
parseRequest(const std::string &line)
{
    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::Error &e) {
        throw ConfigError(std::string("malformed request: ") +
                          e.what());
    }
    requireConfig(doc.isObject(), "request must be a JSON object");

    Request req;
    const json::Value *method = doc.find("method");
    requireConfig(method != nullptr, "request is missing 'method'");
    requireConfig(method->kind == json::Value::Kind::String,
                  "'method' must be a string");
    req.method = method->text;

    if (const json::Value *id = doc.find("id"))
        req.id = *id;
    if (const json::Value *params = doc.find("params")) {
        requireConfig(params->isObject(),
                      "'params' must be an object");
        req.params = *params;
    } else {
        req.params = json::Value::object_();
    }
    return req;
}

std::string
okResponse(const json::Value &id, const std::string &result_json)
{
    // The result is pre-rendered compact JSON; splice it in verbatim
    // rather than re-parsing (metrics snapshots can be large).
    return "{\"id\": " + id.dump() +
           ", \"ok\": true, \"result\": " + result_json + "}";
}

std::string
errorResponse(const json::Value &id, const std::string &category,
              const std::string &site, const std::string &message)
{
    json::Value err = json::Value::object_();
    err.set("category", json::Value::string_(category))
        .set("site", json::Value::string_(site))
        .set("message", json::Value::string_(message));
    json::Value resp = json::Value::object_();
    resp.set("id", id)
        .set("ok", json::Value::boolean_(false))
        .set("error", std::move(err));
    return resp.dump();
}

std::string
errorResponse(const json::Value &id, const PointError &err)
{
    return errorResponse(id, errorCategoryStr(err.category), err.site,
                         err.message);
}

std::string
errorResponse(const json::Value &id, const ServeError &err)
{
    return errorResponse(id, err.category, err.site, err.message);
}

namespace {

const json::Value *
findParam(const Request &req, const std::string &key)
{
    return req.params.isObject() ? req.params.find(key) : nullptr;
}

} // namespace

std::string
stringParam(const Request &req, const std::string &key)
{
    const json::Value *v = findParam(req, key);
    requireConfig(v != nullptr,
                  "method '" + req.method +
                      "' requires string param '" + key + "'");
    requireConfig(v->kind == json::Value::Kind::String,
                  "param '" + key + "' must be a string");
    return v->text;
}

std::string
stringParamOr(const Request &req, const std::string &key,
              const std::string &def)
{
    const json::Value *v = findParam(req, key);
    if (v == nullptr || v->isNull())
        return def;
    requireConfig(v->kind == json::Value::Kind::String,
                  "param '" + key + "' must be a string");
    return v->text;
}

double
numberParamOr(const Request &req, const std::string &key, double def)
{
    const json::Value *v = findParam(req, key);
    if (v == nullptr || v->isNull())
        return def;
    requireConfig(v->kind == json::Value::Kind::Number,
                  "param '" + key + "' must be a number");
    return v->number;
}

bool
boolParamOr(const Request &req, const std::string &key, bool def)
{
    const json::Value *v = findParam(req, key);
    if (v == nullptr || v->isNull())
        return def;
    requireConfig(v->kind == json::Value::Kind::Bool,
                  "param '" + key + "' must be a boolean");
    return v->boolean;
}

} // namespace neurometer::serve
