#include "serve/net.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/backoff.hh"
#include "common/error.hh"

namespace neurometer::serve {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

/** poll() one fd for readability; EINTR-safe. 1 = ready, 0 = timeout. */
int
pollIn(int fd, int timeout_ms)
{
    for (;;) {
        struct pollfd p;
        p.fd = fd;
        p.events = POLLIN;
        p.revents = 0;
        const int rc = ::poll(&p, 1, timeout_ms);
        if (rc >= 0)
            return rc;
        if (errno == EINTR)
            continue; // SIGINT etc.: the caller re-checks its flags
        throwErrno("poll");
    }
}

} // namespace

void
Fd::reset(int fd)
{
    if (_fd >= 0) {
        // EINTR on close is unrecoverable either way; don't retry
        // (POSIX leaves the fd state unspecified, retrying can close
        // a descriptor another thread just opened).
        ::close(_fd);
    }
    _fd = fd;
}

int
Fd::release()
{
    const int fd = _fd;
    _fd = -1;
    return fd;
}

void
writeAll(int fd, const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a vanished peer must be an IoError (EPIPE),
        // never a process-killing SIGPIPE.
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("send");
        }
        p += w;
        n -= std::size_t(w);
    }
}

void
writeLine(int fd, const std::string &line)
{
    std::string framed;
    framed.reserve(line.size() + 1);
    framed = line;
    framed += '\n';
    writeAll(fd, framed.data(), framed.size());
}

ReadStatus
LineReader::readLine(std::string &out, int timeout_ms)
{
    for (;;) {
        const std::size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            // Enforce the cap even when the whole oversize line landed
            // in one recv() — the check below only sees partial lines.
            if (nl > _maxLine) {
                throw IoError("request line exceeds " +
                              std::to_string(_maxLine) + " bytes");
            }
            out.assign(_buf, 0, nl);
            if (!out.empty() && out.back() == '\r')
                out.pop_back(); // tolerate CRLF clients
            _buf.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        if (_buf.size() > _maxLine) {
            throw IoError("request line exceeds " +
                          std::to_string(_maxLine) + " bytes");
        }

        if (pollIn(_fd, timeout_ms) == 0)
            return ReadStatus::Timeout;

        char chunk[65536];
        ssize_t r;
        do {
            r = ::recv(_fd, chunk, sizeof(chunk), 0);
        } while (r < 0 && errno == EINTR);
        if (r < 0)
            throwErrno("recv");
        if (r == 0) {
            // Peer closed. A trailing partial line is a torn request:
            // there is nobody left to answer, drop it.
            _buf.clear();
            return ReadStatus::Eof;
        }
        _buf.append(chunk, std::size_t(r));
    }
}

ListenSocket::ListenSocket(std::uint16_t port, int backlog)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    _fd.reset(fd);

    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind 127.0.0.1:" + std::to_string(port));
    if (::listen(fd, backlog) != 0)
        throwErrno("listen");

    // Port 0 = ephemeral: read back what the kernel picked.
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        throwErrno("getsockname");
    _port = ntohs(addr.sin_port);
}

Fd
ListenSocket::acceptClient(int timeout_ms)
{
    if (pollIn(_fd.get(), timeout_ms) == 0)
        return Fd{};
    int cfd;
    do {
        cfd = ::accept(_fd.get(), nullptr, nullptr);
    } while (cfd < 0 && errno == EINTR);
    if (cfd < 0) {
        // The ready client can vanish between poll and accept.
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return Fd{};
        throwErrno("accept");
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Fd{cfd};
}

Fd
connectLocalRetry(std::uint16_t port, int budget_ms, std::uint64_t seed)
{
    Backoff backoff({.initialS = 0.02,
                     .maxS = 0.5,
                     .multiplier = 2.0,
                     .jitter = 0.25,
                     .seed = seed});
    double waited_s = 0.0;
    for (;;) {
        try {
            return connectLocal(port);
        } catch (const IoError &) {
            // Only the startup races are worth retrying: the daemon
            // has not bound yet (refused) or the SYN got dropped.
            if (errno != ECONNREFUSED && errno != ETIMEDOUT)
                throw;
            const double delay_s = backoff.nextS();
            if ((waited_s + delay_s) * 1e3 > double(budget_ms))
                throw;
            waited_s += delay_s;
            ::usleep(useconds_t(delay_s * 1e6));
        }
    }
}

Fd
connectLocal(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    Fd out{fd};

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        throwErrno("connect 127.0.0.1:" + std::to_string(port));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return out;
}

} // namespace neurometer::serve
