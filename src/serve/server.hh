/**
 * @file
 * The evaluation service: a long-lived loopback TCP daemon that keeps
 * the expensive state — the process-wide memory-design cache, a shared
 * EvalCache, a warmed worker pool — alive across requests, so repeat
 * evaluations cost a cache lookup instead of a full chip build.
 *
 * Wire protocol (serve/protocol.hh): one JSON object per line in each
 * direction. Methods:
 *
 *   eval     {config, deadline_ms?}        -> one EvalRecord object
 *   simulate {config, workload?, dataflow?,
 *             batch?, sw_opt?, layers?,
 *             deadline_ms?}                -> one SimResult object
 *   sweep    {config, axes?, deadline_ms?,
 *             keep_infeasible?}            -> {cancelled, counts, points}
 *   search   {config, axes?, budget?, seed?,
 *             objectives?, deadline_ms?}   -> {stats, frontier, points}
 *   fields   {}                            -> config schema array
 *   metrics  {}                            -> obs:: snapshot object
 *   health   {}                            -> {status, uptime_s, ...}
 *
 * HTTP observability plane: the same listener also answers plain
 * HTTP/1.1 GETs — the connection loop sniffs the first line (JSON
 * requests start with '{', HTTP request lines with a verb) and
 * serves:
 *
 *   GET /metrics  Prometheus text exposition of the obs:: snapshot
 *   GET /health   the health JSON (same shape as the RPC)
 *   GET /statusz  human-readable status: uptime, build, inflight,
 *                 cache hit rates, slow points, recent events
 *
 * Every RPC request gets a monotonically increasing id ("r1", "r2",
 * ...) that threads through the trace span ("serve.request" arg),
 * flight-recorder events (obs/events.hh), and — for sweep/search —
 * SweepOptions::requestId, so slow design points recorded by the
 * engines attribute back to the request that asked for them.
 *
 * `search` runs the guided design-space search (explore/search.hh
 * SearchEngine) over the request's axes against the daemon's shared
 * cache and pool: repeat searches — or a search after a sweep of the
 * same space — rendezvous with already-evaluated points instead of
 * recomputing them. `objectives` is a comma-separated list (see
 * parseObjectives); `seed` makes the trajectory reproducible.
 * Completed runs land in the `serve.searches` counter and the
 * `serve.search_s` histogram.
 *
 * `simulate` runs the TfSim per-layer performance pipeline (see
 * neurometer/api.hh simulateWorkload): workload is a named graph
 * (resnet50, inception_v3, nasnet, alexnet, transformer), dataflow is
 * ws|os|is, and the result object is byte-identical to what
 * `neurometer simulate --json` prints for the same inputs. Timings
 * land in the `serve.simulate_s` histogram and completed runs in the
 * `serve.simulations` counter.
 *
 * Concurrency model: one accept thread, one thread per connection
 * (requests on a connection are served in order), with eval/sweep work
 * fanned out on the shared ThreadPool. Admission control bounds the
 * number of in-flight eval/sweep requests (`maxInflight`); requests
 * beyond it are rejected immediately with a structured "busy" error
 * rather than queued behind a multi-minute sweep. Per-request
 * deadlines chain a request CancelToken onto the server's shutdown
 * token (CancelToken::follow), so both the deadline and SIGINT stop a
 * sweep cooperatively — in-flight points drain, the partial result is
 * returned, the daemon survives.
 *
 * Failure isolation: a request that throws — malformed JSON, a config
 * the schema rejects, an injected fault, bad_alloc — becomes one
 * structured error response (the PointError taxonomy) on that
 * connection; it never kills the daemon or other connections.
 */

#ifndef NEUROMETER_SERVE_SERVER_HH
#define NEUROMETER_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explore/cancel.hh"
#include "explore/eval_cache.hh"
#include "explore/thread_pool.hh"
#include "serve/coordinator.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"

namespace neurometer::serve {

/** Daemon knobs (`neurometer serve` flags map onto these 1:1). */
struct ServeOptions
{
    /** Listen port; 0 binds an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;
    /** Shared worker-pool threads; 0 = hardware concurrency. */
    int threads = 0;
    /** Max concurrent eval/sweep requests before rejecting with a
     *  "busy" error; 0 = twice the worker-thread count. */
    int maxInflight = 0;
    /** Shutdown token: fire it (or SIGINT via armSigint()) to stop.
     *  Per-request tokens chain onto it with CancelToken::follow(). */
    CancelToken cancel{};
    /** Accept/read poll granularity — the upper bound on how long a
     *  blocked thread takes to notice shutdown (tests shrink it). */
    int pollIntervalMs = 100;
    /** Sweep-coordinator mode (serve/coordinator.hh): when enabled,
     *  the daemon also answers job/lease/report/heartbeat, run()'s
     *  poll loop drives lease expiry, and run() returns once every
     *  point is reported and the merged export is written. */
    CoordinateOptions coordinate{};
};

/**
 * The daemon. start() binds and spawns the accept thread; run() is
 * start() plus "block until the shutdown token fires, then drain";
 * stop() fires the token and joins everything (idempotent — the
 * destructor calls it too).
 *
 * The server owns the process-shared hot state: one EvalCache and one
 * ThreadPool that every request — and every SweepEngine spun up for a
 * sweep request, via SweepOptions::sharedCache/sharedPool — uses.
 */
class Server
{
  public:
    explicit Server(ServeOptions opts = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the listen socket and spawn the accept thread. Throws
     *  IoError when the port is taken. Idempotent. */
    void start();

    /** start(), then block until the shutdown token fires, then
     *  stop(). The `neurometer serve` main loop. */
    void run();

    /** Fire the shutdown token, drain in-flight requests, join every
     *  thread, close the socket. Idempotent and safe to call from
     *  another thread (not from a handler). */
    void stop();

    /** Actual listen port (resolves port 0 after start()). */
    std::uint16_t port() const { return _port; }

    /** Eval/sweep requests currently admitted (diagnostic). */
    int inflight() const
    {
        return _inflight.load(std::memory_order_relaxed);
    }

    const ServeOptions &options() const { return _opts; }
    EvalCache &cache() { return _cache; }
    ThreadPool &pool() { return _pool; }

    /** The coordinator when --coordinate is on, else nullptr. */
    Coordinator *coordinator() { return _coordinator.get(); }

    /**
     * Process one request line into one response line — the whole
     * protocol minus the sockets. Public so unit tests (and embedders
     * that bring their own transport) can drive the dispatcher
     * directly; never throws (failures become error responses).
     */
    std::string dispatchLine(const std::string &line);

    /**
     * Full HTTP response bytes (status line, headers, body) for one
     * observability request — the GET /metrics | /health | /statusz
     * dispatcher minus the sockets. Public for the same reason as
     * dispatchLine.
     */
    std::string httpReplyFor(const std::string &method,
                             const std::string &target);

    /** The human-readable /statusz body. */
    std::string statuszText();

  private:
    void acceptLoop();
    void connectionLoop(Fd client);
    void httpConnection(Fd &client, LineReader &reader,
                        const std::string &request_line);

    /** Run `req`, returning the compact-JSON result text. Throws
     *  ServeError (busy, deadline) or model exceptions on failure. */
    std::string handle(const Request &req, std::uint64_t rid);

    std::string handleEval(const Request &req);
    std::string handleSimulate(const Request &req);
    std::string handleSweep(const Request &req, std::uint64_t rid);
    std::string handleSearch(const Request &req, std::uint64_t rid);
    std::string handleHealth();
    /** job/lease/report/heartbeat — the coordinator methods. These
     *  bypass max-inflight admission: they are bookkeeping, and a
     *  worker's report must never bounce off a busy daemon. */
    std::string handleCoordinate(const Request &req);

    ServeOptions _opts;
    int _maxInflight = 0;
    ThreadPool _pool;
    EvalCache _cache;
    std::unique_ptr<Coordinator> _coordinator;

    std::unique_ptr<ListenSocket> _listen;
    std::uint16_t _port = 0;
    std::thread _acceptThread;
    std::mutex _connMu;
    std::vector<std::thread> _connThreads;
    bool _started = false;
    bool _stopped = false;

    std::atomic<int> _inflight{0};
    std::atomic<std::uint64_t> _requestSeq{0};
    std::chrono::steady_clock::time_point _startTime{};
};

} // namespace neurometer::serve

#endif // NEUROMETER_SERVE_SERVER_HH
