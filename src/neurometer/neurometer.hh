/**
 * @file
 * Umbrella public header for the NeuroMeter library.
 */

#ifndef NEUROMETER_NEUROMETER_HH
#define NEUROMETER_NEUROMETER_HH

#include "chip/chip.hh"
#include "chip/config.hh"
#include "chip/config_schema.hh"
#include "chip/core.hh"
#include "chip/optimizer.hh"
#include "circuit/arith.hh"
#include "circuit/logic.hh"
#include "circuit/rc_tree.hh"
#include "circuit/wire.hh"
#include "common/breakdown.hh"
#include "common/error.hh"
#include "common/fields.hh"
#include "common/pat.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "components/cdb.hh"
#include "components/noc.hh"
#include "components/periph.hh"
#include "components/reduction_tree.hh"
#include "components/scalar_unit.hh"
#include "components/tensor_unit.hh"
#include "components/vector_regfile.hh"
#include "components/vector_unit.hh"
#include "explore/eval_cache.hh"
#include "explore/export.hh"
#include "explore/pareto.hh"
#include "explore/sweep.hh"
#include "explore/thread_pool.hh"
#include "memory/design_cache.hh"
#include "memory/fifo.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "perf/tfsim.hh"
#include "perf/workload.hh"
#include "sparse/csr.hh"
#include "sparse/roofline.hh"
#include "sparse/sparse_matrix.hh"
#include "memory/sram_array.hh"
#include "tech/tech_node.hh"

#endif // NEUROMETER_NEUROMETER_HH
