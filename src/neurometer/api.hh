/**
 * @file
 * The embeddable evaluation API ("libneurometer"): the entry points
 * that used to live as private helpers inside tools/neurometer_cli.cc,
 * split out so the CLI, the serve/ daemon, and any future embedder
 * (search layers, sweep coordinators) evaluate configs through the
 * exact same code path. Nothing here knows about argv, sockets, or
 * output formats — inputs are resolved ChipConfigs and named axes,
 * outputs are EvalRecords and schema descriptions.
 */

#ifndef NEUROMETER_NEUROMETER_API_HH
#define NEUROMETER_NEUROMETER_API_HH

#include <string>
#include <vector>

#include "chip/config.hh"
#include "chip/config_schema.hh"
#include "explore/eval_cache.hh"
#include "explore/search.hh"
#include "explore/sweep.hh"
#include "perf/tfsim.hh"

namespace neurometer {

/**
 * Evaluate one fully resolved config into the EvalRecord shape the
 * export/ writers understand (the `neurometer eval` result). With a
 * cache, the evaluation is memoized through it — repeat configs cost
 * a key computation instead of a chip build (the serve/ hot path);
 * without one it is a plain measurePoint() call.
 */
EvalRecord evalConfigRecord(const ChipConfig &cfg,
                            EvalCache *cache = nullptr);

/**
 * A sweep grid anchored at `cfg`'s own design point with `axes` layered
 * on top — the `neurometer sweep` semantics: the config file supplies
 * the base design, every varied field goes through a named axis (which
 * may also override the geometry fields themselves). Non-square TUs
 * survive via an implicit core.tu.cols axis (applyDesignPoint squares
 * the TU otherwise).
 */
SweepGrid sweepGridForConfig(const ChipConfig &cfg,
                             const std::vector<NamedAxis> &axes);

/**
 * Guided search over the same grid sweepGridForConfig() builds — the
 * `neurometer search` semantics. The config anchors the base design,
 * `axes` span the space, and the SearchEngine recovers the Pareto
 * frontier of `opts.objectives` within `opts.evalBudget` evaluations
 * (see explore/search.hh for the algorithm and its determinism
 * guarantees). Checkpoint, cancellation, shared cache/pool, and
 * progress reporting all flow through `opts.sweep` unchanged.
 */
SearchResult searchGridForConfig(const ChipConfig &cfg,
                                 const std::vector<NamedAxis> &axes,
                                 const SearchOptions &opts = {});

/**
 * One performance-simulation request: a named workload run through the
 * TfSim per-layer pipeline under a named dataflow. Workload and
 * dataflow arrive as strings (the CLI/serve surface) and are resolved
 * through workloadByName()/parseDataflow(), so both frontends reject
 * unknown names with the same ConfigError text.
 */
struct SimulateRequest
{
    std::string workload = "resnet50";
    std::string dataflow = "ws";   ///< ws | os | is
    int batch = 1;
    bool swOptimizations = true;
};

/**
 * Build the chip for `cfg` and simulate `req` through TfSim. The one
 * simulation entry point behind `neurometer simulate` and the serve
 * daemon's `simulate` method — both render the result with
 * simResultJson, so the two surfaces return byte-identical JSON for
 * the same (config, workload, dataflow, batch).
 */
SimResult simulateWorkload(const ChipConfig &cfg,
                           const SimulateRequest &req);

/**
 * The unified SimResult report: run identity (workload, dataflow,
 * batch, sw_opt), end-to-end metrics, activity rates, and runtime
 * power. With `include_layers`, appends the per-layer cost table.
 * Sparse roofline runs rendered through SparseRoofline::simulate()
 * serialize with the same function.
 */
std::string simResultJson(const SimResult &r,
                          bool include_layers = false);

/** Human-readable allowed-values text of one schema field: bounds for
 *  numerics, the name list for enums, "true/false" for bools. */
std::string fieldRangeText(const FieldDef<ChipConfig> &f);

/** The whole config schema as a compact JSON array of
 *  {name, type, default, range, doc} objects (the serve `fields`
 *  method; same content as the `neurometer fields` table). */
std::string fieldsJson();

} // namespace neurometer

#endif // NEUROMETER_NEUROMETER_API_HH
