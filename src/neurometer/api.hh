/**
 * @file
 * The embeddable evaluation API ("libneurometer"): the entry points
 * that used to live as private helpers inside tools/neurometer_cli.cc,
 * split out so the CLI, the serve/ daemon, and any future embedder
 * (search layers, sweep coordinators) evaluate configs through the
 * exact same code path. Nothing here knows about argv, sockets, or
 * output formats — inputs are resolved ChipConfigs and named axes,
 * outputs are EvalRecords and schema descriptions.
 */

#ifndef NEUROMETER_NEUROMETER_API_HH
#define NEUROMETER_NEUROMETER_API_HH

#include <string>
#include <vector>

#include "chip/config.hh"
#include "chip/config_schema.hh"
#include "explore/eval_cache.hh"
#include "explore/sweep.hh"

namespace neurometer {

/**
 * Evaluate one fully resolved config into the EvalRecord shape the
 * export/ writers understand (the `neurometer eval` result). With a
 * cache, the evaluation is memoized through it — repeat configs cost
 * a key computation instead of a chip build (the serve/ hot path);
 * without one it is a plain measurePoint() call.
 */
EvalRecord evalConfigRecord(const ChipConfig &cfg,
                            EvalCache *cache = nullptr);

/**
 * A sweep grid anchored at `cfg`'s own design point with `axes` layered
 * on top — the `neurometer sweep` semantics: the config file supplies
 * the base design, every varied field goes through a named axis (which
 * may also override the geometry fields themselves). Non-square TUs
 * survive via an implicit core.tu.cols axis (applyDesignPoint squares
 * the TU otherwise).
 */
SweepGrid sweepGridForConfig(const ChipConfig &cfg,
                             const std::vector<NamedAxis> &axes);

/** Human-readable allowed-values text of one schema field: bounds for
 *  numerics, the name list for enums, "true/false" for bools. */
std::string fieldRangeText(const FieldDef<ChipConfig> &f);

/** The whole config schema as a compact JSON array of
 *  {name, type, default, range, doc} objects (the serve `fields`
 *  method; same content as the `neurometer fields` table). */
std::string fieldsJson();

} // namespace neurometer

#endif // NEUROMETER_NEUROMETER_API_HH
