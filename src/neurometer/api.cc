#include "neurometer/api.hh"

#include "common/json.hh"

namespace neurometer {

SimResult
simulateWorkload(const ChipConfig &cfg, const SimulateRequest &req)
{
    SimConfig sc;
    sc.batch = req.batch;
    sc.swOptimizations = req.swOptimizations;
    sc.dataflow = parseDataflow(req.dataflow);
    const ChipModel chip(cfg);
    return TfSim(chip).run(workloadByName(req.workload), sc);
}

std::string
simResultJson(const SimResult &r, bool include_layers)
{
    using json::Value;
    Value o = Value::object_();
    o.set("workload", Value::string_(r.workload))
        .set("dataflow", Value::string_(r.dataflow))
        .set("batch", Value::number_(r.batch))
        .set("sw_opt", Value::boolean_(r.swOptimizations))
        .set("latency_s", Value::number_(r.latencyS))
        .set("throughput_fps", Value::number_(r.throughputFps))
        .set("achieved_tops", Value::number_(r.achievedTops))
        .set("tu_utilization", Value::number_(r.tuUtilization))
        .set("tops_per_watt", Value::number_(r.achievedTopsPerWatt))
        .set("tops_per_tco", Value::number_(r.achievedTopsPerTco));

    Value stats = Value::object_();
    stats.set("tu_ops_per_s", Value::number_(r.stats.tuOpsPerS))
        .set("vu_ops_per_s", Value::number_(r.stats.vuOpsPerS))
        .set("mem_read_bytes_per_s",
             Value::number_(r.stats.memReadBytesPerS))
        .set("mem_write_bytes_per_s",
             Value::number_(r.stats.memWriteBytesPerS))
        .set("noc_byte_hops_per_s",
             Value::number_(r.stats.nocByteHopsPerS))
        .set("offchip_bytes_per_s",
             Value::number_(r.stats.offchipBytesPerS));
    o.set("stats", std::move(stats));

    Value power = Value::object_();
    power.set("dynamic_w", Value::number_(r.runtimePower.dynamicW))
        .set("leakage_w", Value::number_(r.runtimePower.leakageW))
        .set("total_w", Value::number_(r.runtimePower.total()));
    o.set("power", std::move(power));

    if (include_layers) {
        Value layers = Value::array_();
        for (const LayerResult &l : r.layers) {
            Value lo = Value::object_();
            lo.set("name", Value::string_(l.name))
                .set("unit", Value::string_(l.tensorOp ? "tu" : "vu"))
                .set("seconds", Value::number_(l.cost.seconds))
                .set("tu_ops", Value::number_(l.cost.tuOps))
                .set("vu_ops", Value::number_(l.cost.vuOps))
                .set("mem_read_bytes",
                     Value::number_(l.cost.memReadBytes))
                .set("mem_write_bytes",
                     Value::number_(l.cost.memWriteBytes))
                .set("noc_byte_hops",
                     Value::number_(l.cost.nocByteHops));
            layers.push(std::move(lo));
        }
        o.set("layers", std::move(layers));
    }
    return o.dump();
}

EvalRecord
evalConfigRecord(const ChipConfig &cfg, EvalCache *cache)
{
    EvalRecord r;
    r.point = {cfg.core.tu.rows, cfg.core.numTU, cfg.tx, cfg.ty};
    r.nodeNm = cfg.nodeNm;
    r.freqHz = cfg.freqHz;
    r.memBytes = cfg.totalMemBytes;
    r.mulType = cfg.core.tu.mulType;
    r.metrics = cache ? cache->evaluate(cfg) : measurePoint(cfg);
    r.why = r.metrics.buildOk ? Feasibility::Feasible
                              : Feasibility::TimingInfeasible;
    return r;
}

SweepGrid
sweepGridForConfig(const ChipConfig &cfg,
                   const std::vector<NamedAxis> &axes)
{
    // Anchor the typed axes at the config's design point; everything
    // the caller varies goes through named axes (applied after, so an
    // axis may also override the geometry fields themselves).
    SweepGrid grid;
    grid.tuLengths = {cfg.core.tu.rows};
    grid.tuPerCore = {cfg.core.numTU};
    grid.coreGrids = {{cfg.tx, cfg.ty}};
    if (cfg.core.tu.cols != cfg.core.tu.rows) {
        // applyDesignPoint squares the TU; restore the config's cols.
        grid.axis("core.tu.cols",
                  std::vector<std::string>{
                      std::to_string(cfg.core.tu.cols)});
    }
    for (const NamedAxis &a : axes)
        grid.axis(a.path, a.values);
    return grid;
}

SearchResult
searchGridForConfig(const ChipConfig &cfg,
                    const std::vector<NamedAxis> &axes,
                    const SearchOptions &opts)
{
    SearchEngine engine(cfg, opts);
    return engine.run(sweepGridForConfig(cfg, axes));
}

std::string
fieldRangeText(const FieldDef<ChipConfig> &f)
{
    switch (f.kind) {
      case FieldKind::Bool:
        return "true/false";
      case FieldKind::Enum: {
        std::string s;
        for (const std::string &n : f.enumNames)
            s += (s.empty() ? "" : "|") + n;
        return s;
      }
      case FieldKind::Int:
      case FieldKind::Double:
        return f.bounds.bounded() ? f.bounds.str() : "-";
    }
    return "-";
}

std::string
fieldsJson()
{
    const ChipConfig defaults;
    json::Value out = json::Value::array_();
    for (const FieldDef<ChipConfig> &f : chipSchema().fields()) {
        json::Value o = json::Value::object_();
        o.set("name", json::Value::string_(f.name))
            .set("type", json::Value::string_(fieldKindName(f.kind)))
            .set("default", json::Value::string_(f.getText(defaults)))
            .set("range", json::Value::string_(fieldRangeText(f)))
            .set("doc", json::Value::string_(f.doc));
        out.push(std::move(o));
    }
    return out.dump();
}

} // namespace neurometer
