#include "neurometer/api.hh"

#include "common/json.hh"

namespace neurometer {

EvalRecord
evalConfigRecord(const ChipConfig &cfg, EvalCache *cache)
{
    EvalRecord r;
    r.point = {cfg.core.tu.rows, cfg.core.numTU, cfg.tx, cfg.ty};
    r.nodeNm = cfg.nodeNm;
    r.freqHz = cfg.freqHz;
    r.memBytes = cfg.totalMemBytes;
    r.mulType = cfg.core.tu.mulType;
    r.metrics = cache ? cache->evaluate(cfg) : measurePoint(cfg);
    r.why = r.metrics.buildOk ? Feasibility::Feasible
                              : Feasibility::TimingInfeasible;
    return r;
}

SweepGrid
sweepGridForConfig(const ChipConfig &cfg,
                   const std::vector<NamedAxis> &axes)
{
    // Anchor the typed axes at the config's design point; everything
    // the caller varies goes through named axes (applied after, so an
    // axis may also override the geometry fields themselves).
    SweepGrid grid;
    grid.tuLengths = {cfg.core.tu.rows};
    grid.tuPerCore = {cfg.core.numTU};
    grid.coreGrids = {{cfg.tx, cfg.ty}};
    if (cfg.core.tu.cols != cfg.core.tu.rows) {
        // applyDesignPoint squares the TU; restore the config's cols.
        grid.axis("core.tu.cols",
                  std::vector<std::string>{
                      std::to_string(cfg.core.tu.cols)});
    }
    for (const NamedAxis &a : axes)
        grid.axis(a.path, a.values);
    return grid;
}

std::string
fieldRangeText(const FieldDef<ChipConfig> &f)
{
    switch (f.kind) {
      case FieldKind::Bool:
        return "true/false";
      case FieldKind::Enum: {
        std::string s;
        for (const std::string &n : f.enumNames)
            s += (s.empty() ? "" : "|") + n;
        return s;
      }
      case FieldKind::Int:
      case FieldKind::Double:
        return f.bounds.bounded() ? f.bounds.str() : "-";
    }
    return "-";
}

std::string
fieldsJson()
{
    const ChipConfig defaults;
    json::Value out = json::Value::array_();
    for (const FieldDef<ChipConfig> &f : chipSchema().fields()) {
        json::Value o = json::Value::object_();
        o.set("name", json::Value::string_(f.name))
            .set("type", json::Value::string_(fieldKindName(f.kind)))
            .set("default", json::Value::string_(f.getText(defaults)))
            .set("range", json::Value::string_(fieldRangeText(f)))
            .set("doc", json::Value::string_(f.doc));
        out.push(std::move(o));
    }
    return out.dump();
}

} // namespace neurometer
