#include "explore/eval_cache.hh"

#include <cstdio>

namespace neurometer {

namespace {

// Hex-float ("%a") round-trips doubles exactly and is locale-free;
// '|' separators keep adjacent fields from aliasing.
void
put(std::string &s, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a|", v);
    s += buf;
}

void
put(std::string &s, int v)
{
    s += std::to_string(v);
    s += '|';
}

void
put(std::string &s, bool v)
{
    s += v ? "1|" : "0|";
}

template <typename E>
void
putEnum(std::string &s, E v)
{
    put(s, int(v));
}

} // namespace

std::string
configKey(const ChipConfig &c)
{
    std::string s;
    s.reserve(640);

    // Technology / circuit level.
    put(s, c.nodeNm);
    put(s, c.vddVolt);
    put(s, c.freqHz);

    // Chip architecture level.
    put(s, c.tx);
    put(s, c.ty);
    put(s, c.autoNocTopology);
    putEnum(s, c.nocTopology);
    put(s, c.nocBisectionBwBytesPerS);
    put(s, c.totalMemBytes);
    putEnum(s, c.memCell);
    put(s, c.memCacheMode);
    putEnum(s, c.dram);
    put(s, c.offchipBwBytesPerS);
    put(s, c.pcieLanes);
    put(s, c.iciLinks);
    put(s, c.iciGbpsPerDirection);
    put(s, c.whiteSpaceFraction);

    // Core architecture.
    const CoreConfig &cc = c.core;
    put(s, cc.numTU);
    put(s, cc.tu.rows);
    put(s, cc.tu.cols);
    putEnum(s, cc.tu.mulType);
    putEnum(s, cc.tu.accType);
    putEnum(s, cc.tu.interconnect);
    putEnum(s, cc.tu.dataflow);
    put(s, cc.tu.perCellSramBytes);
    put(s, cc.tu.perCellRegBytes);
    put(s, cc.tu.perCellCtrlGates);
    put(s, cc.tu.ioFifoDepth);
    put(s, cc.numRT);
    put(s, cc.rt.inputs);
    putEnum(s, cc.rt.mulType);
    putEnum(s, cc.rt.accType);
    put(s, cc.rt.pipelineEveryLayers);
    put(s, cc.vuLanes);
    put(s, cc.vregEntries);
    put(s, cc.shareVregPorts);
    put(s, cc.hasScalarUnit);
    put(s, cc.memSliceBytes);
    put(s, cc.memBlockBytes);

    // TDP activity factors (they shape tdpW and everything derived).
    const ActivityFactors &a = c.tdpActivity;
    put(s, a.tensorUnit);
    put(s, a.reductionTree);
    put(s, a.vectorUnit);
    put(s, a.vectorRegfile);
    put(s, a.mem);
    put(s, a.cdb);
    put(s, a.noc);
    put(s, a.scalarUnit);
    put(s, a.ifu);
    put(s, a.lsu);
    put(s, a.offchip);
    return s;
}

PointMetrics
EvalCache::getOrCompute(const ChipConfig &cfg,
                        const PointEvaluator &compute)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(_mu);
        std::shared_ptr<Entry> &slot = _map[configKey(cfg)];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    bool computed_here = false;
    std::call_once(entry->once, [&] {
        entry->value = compute(cfg);
        computed_here = true;
    });
    if (computed_here)
        _misses.fetch_add(1, std::memory_order_relaxed);
    else
        _hits.fetch_add(1, std::memory_order_relaxed);
    return entry->value;
}

PointMetrics
EvalCache::evaluate(const ChipConfig &cfg)
{
    return getOrCompute(
        cfg, [](const ChipConfig &c) { return measurePoint(c); });
}

CacheStats
EvalCache::stats() const
{
    CacheStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    return s;
}

std::size_t
EvalCache::size() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _map.size();
}

void
EvalCache::clear()
{
    std::lock_guard<std::mutex> lk(_mu);
    _map.clear();
    _hits.store(0);
    _misses.store(0);
}

} // namespace neurometer
