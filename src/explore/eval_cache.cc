#include "explore/eval_cache.hh"

#include <cstdio>

#include "chip/config_schema.hh"
#include "obs/metrics.hh"

namespace neurometer {

std::string
configKey(const ChipConfig &c)
{
    // A schema walk: every registered field, registry order. Doubles
    // use hex-float ("%a") — exact and locale-free; ints/enums print
    // decimally; '|' separators keep adjacent fields from aliasing.
    // Field coverage is guaranteed by the schema's completeness
    // tripwires, not by this function.
    std::string s;
    s.reserve(640);
    char buf[40];
    for (const FieldDef<ChipConfig> &f : chipSchema().fields()) {
        const double v = f.get(c);
        switch (f.kind) {
          case FieldKind::Double:
            std::snprintf(buf, sizeof(buf), "%a", v);
            s += buf;
            break;
          case FieldKind::Int:
          case FieldKind::Enum:
            s += std::to_string(static_cast<long long>(v));
            break;
          case FieldKind::Bool:
            s += v != 0.0 ? '1' : '0';
            break;
        }
        s += '|';
    }
    return s;
}

PointMetrics
EvalCache::getOrCompute(const ChipConfig &cfg,
                        const PointEvaluator &compute)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(_mu);
        std::shared_ptr<Entry> &slot = _map[configKey(cfg)];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    bool computed_here = false;
    std::unique_lock<std::mutex> lk(entry->mu);
    while (entry->state != State::Done) {
        if (entry->state == State::Computing) {
            entry->cv.wait(lk);
            continue;
        }
        // Claim the entry; compute outside the lock so other keys
        // (and stats/size) never stall behind a slow model build.
        entry->state = State::Computing;
        lk.unlock();
        PointMetrics value;
        try {
            value = compute(cfg);
        } catch (...) {
            // A failed compute is not a result: roll back to Empty so
            // a later request (possibly a blocked waiter) retries.
            // Counts neither hit nor miss.
            lk.lock();
            entry->state = State::Empty;
            entry->cv.notify_all();
            throw;
        }
        lk.lock();
        entry->value = value;
        entry->state = State::Done;
        computed_here = true;
        entry->cv.notify_all();
    }
    lk.unlock();
    // Per-instance counters feed stats(); the process-wide registry
    // gets the union of every EvalCache in the process.
    static const obs::Counter reg_hits = obs::counter(
        "eval_cache.hits", "memoized full-chip evaluations reused");
    static const obs::Counter reg_misses =
        obs::counter("eval_cache.misses");
    if (computed_here) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        reg_misses.inc();
    } else {
        _hits.fetch_add(1, std::memory_order_relaxed);
        reg_hits.inc();
    }
    return entry->value;
}

PointMetrics
EvalCache::evaluate(const ChipConfig &cfg)
{
    return getOrCompute(
        cfg, [](const ChipConfig &c) { return measurePoint(c); });
}

CacheStats
EvalCache::stats() const
{
    CacheStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    return s;
}

std::size_t
EvalCache::size() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _map.size();
}

void
EvalCache::clear()
{
    std::lock_guard<std::mutex> lk(_mu);
    _map.clear();
    _hits.store(0);
    _misses.store(0);
}

} // namespace neurometer
