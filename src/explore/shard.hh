/**
 * @file
 * Sharded sweeps: deterministic partitioning of a sweep grid across
 * processes/hosts, and the byte-stable merge of their checkpoints.
 *
 * Partitioning hashes each point's canonical configKey() with the
 * stable hash (common/hash.hh), so shard membership depends only on
 * the resolved configuration — not on axis ordering, grid index, host,
 * or process. Two invocations that spell the same cross product in a
 * different axis order still agree on which of N shards owns every
 * point, which is what makes overlapping/retried shards safe to merge.
 *
 * The merge consumes per-shard checkpoint JSONL files (hex-float
 * metrics, so values round-trip bit-identically), reconciles duplicate
 * keys — a successful evaluation always beats a failed one; equal
 * status resolves last-writer-wins in file order — and reassembles
 * EvalRecords in grid order, producing CSV/JSON output byte-identical
 * to an uninterrupted single-process sweep of the same grid.
 */

#ifndef NEUROMETER_EXPLORE_SHARD_HH
#define NEUROMETER_EXPLORE_SHARD_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "chip/config.hh"
#include "chip/optimizer.hh"
#include "explore/checkpoint.hh"
#include "explore/sweep.hh"

namespace neurometer {

/**
 * One shard of an N-way partition: this process owns every point whose
 * stable key hash lands on `index` mod `count`. The default (0/1) is
 * the whole grid — sharding off.
 */
struct ShardSpec
{
    std::size_t index = 0; ///< 0-based shard id
    std::size_t count = 1; ///< total shards; 1 = unsharded

    /** True when the spec actually partitions (count > 1). */
    bool active() const { return count > 1; }

    /** Does this shard own the point with canonical key `key`? */
    bool owns(std::string_view key) const;

    /**
     * Parse "i/N" (e.g. "2/8"). Throws ConfigError unless
     * 0 <= i < N and N >= 1.
     */
    static ShardSpec parse(const std::string &text);

    /** "i/N" rendering (round-trips through parse()). */
    std::string str() const;

    bool operator==(const ShardSpec &) const = default;
};

/** What a mergeCheckpoints() call saw and resolved. */
struct MergeStats
{
    std::size_t files = 0;      ///< shard files read
    std::size_t rows = 0;       ///< entry lines across all files
    std::size_t unique = 0;     ///< distinct configKey()s
    std::size_t duplicates = 0; ///< rows beyond the first per key
    /** Duplicates where a failed row was superseded by an ok row. */
    std::size_t conflictsResolvedToOk = 0;
};

/**
 * Fuse per-shard checkpoint files into one entry set, one entry per
 * distinct key. Every file must carry the same `baseKey` header
 * (ConfigError otherwise — shards of different chips cannot merge);
 * missing files load as empty (a shard that never started) and each
 * file's torn tail is tolerated independently. Reconciliation per key:
 * an ok row beats a failed row regardless of order (a retried shard
 * that succeeded supersedes the crash it replaced); rows of equal
 * status resolve last-writer-wins in (file, line) order. The result is
 * ordered by first appearance, suitable for SweepCheckpoint::seed().
 */
std::vector<CheckpointEntry>
mergeCheckpoints(const std::vector<std::string> &paths,
                 const std::string &baseKey, MergeStats *stats = nullptr);

/** One grid point still missing after a merge (not in any shard). */
struct MissingPoint
{
    std::size_t gridIndex = 0;
    std::string key;
};

/** assembleRecords() output: grid-ordered records plus the holes. */
struct AssembledRecords
{
    /** Records for covered points, in grid order — the same order and
     *  bytes a single-process SweepEngine::run() would produce. */
    std::vector<EvalRecord> records;
    /** Points of the grid no merged entry covered (first few kept). */
    std::vector<MissingPoint> missing;
    /** Total uncovered points (missing is capped, this is not). */
    std::size_t missingCount = 0;
};

/**
 * Reassemble grid-ordered EvalRecords from merged checkpoint entries:
 * expand `grid` over `base`, look each point's configKey() up in
 * `entries`, and restore metrics/status/error exactly the way a
 * resumed sweep does (classification against `constraints` included).
 * Covered points are byte-identical to a direct sweep's records;
 * uncovered points are reported, not fabricated.
 */
AssembledRecords
assembleRecords(const SweepGrid &grid, const ChipConfig &base,
                const std::vector<CheckpointEntry> &entries,
                const DesignConstraints &constraints = {});

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_SHARD_HH
