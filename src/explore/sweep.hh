/**
 * @file
 * Declarative design-space sweeps over ChipConfig (paper Sec. III).
 *
 * A SweepGrid names the axes to vary — TU geometry, core grid, tech
 * node, clock, on-chip memory, datatype — and the SweepEngine fans
 * the cross product out across a ThreadPool, memoizing every point in
 * an EvalCache and classifying it against DesignConstraints. Records
 * come back in grid order regardless of thread count, and a
 * `threads = 1` engine produces bit-identical results on the caller
 * thread (the validation reference for the parallel path).
 */

#ifndef NEUROMETER_EXPLORE_SWEEP_HH
#define NEUROMETER_EXPLORE_SWEEP_HH

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chip/config_schema.hh"
#include "chip/optimizer.hh"
#include "common/error.hh"
#include "explore/cancel.hh"
#include "explore/eval_cache.hh"
#include "explore/thread_pool.hh"
#include "memory/design_cache.hh"

namespace neurometer {

/**
 * One name-addressed sweep axis: a dotted ChipConfig schema path (see
 * chip/config_schema.hh, `neurometer fields`) plus the values to
 * sweep, held as text and parsed/validated per the field's kind.
 */
struct NamedAxis
{
    std::string path;
    std::vector<std::string> values;

    bool operator==(const NamedAxis &) const = default;
};

/**
 * Cartesian parameter grid. The four architectural axes always
 * participate; the optional axes (node, clock, memory, datatype) are
 * inherited from the engine's base config when left empty. Any other
 * ChipConfig field sweeps through a named axis — `axis("core.numTU",
 * {1, 2, 4})` — which is applied *after* the typed axes, so a named
 * axis wins when both address the same field.
 */
struct SweepGrid
{
    std::vector<int> tuLengths{64};                  ///< X
    std::vector<int> tuPerCore{1};                   ///< N
    std::vector<std::pair<int, int>> coreGrids{{1, 1}}; ///< (Tx, Ty)

    /** @name Optional axes (empty = keep the base config's value) */
    /** @{ */
    std::vector<double> nodesNm{};
    std::vector<double> clocksHz{};
    std::vector<double> memBytes{};
    /** Multiplier type; accumulate type follows defaultAccumType(). */
    std::vector<DataType> mulTypes{};
    /** @} */

    /** @name Named axes (any schema field, first axis outermost) */
    /** @{ */
    std::vector<NamedAxis> namedAxes{};

    /** Add a numeric/bool axis; values are schema-checked at run. */
    SweepGrid &axis(const std::string &path,
                    const std::vector<double> &values);
    /** Braced-list spelling of the numeric overload. */
    SweepGrid &axis(const std::string &path,
                    std::initializer_list<double> values);
    /** Add an axis from spelled-out values ("bf16", "true", "0.21"). */
    SweepGrid &axis(const std::string &path,
                    std::vector<std::string> values);

    /**
     * Cross product of only the named axes applied to `base` (first
     * axis outermost) — for callers that drive evaluation themselves,
     * e.g. a maximizeCores search per combination. Throws ConfigError
     * on an unknown path or a value the schema rejects.
     */
    std::vector<ChipConfig> expandNamed(const ChipConfig &base) const;
    /** @} */

    /** Number of points in the cross product (named axes included). */
    std::size_t size() const;
};

/**
 * Lifecycle of one sweep point. `Ok` means the evaluation ran to
 * completion (the point may still be architecturally infeasible — see
 * `why`); `Failed` means the evaluation threw and the failure was
 * isolated into the record; `NotEvaluated` marks points a cancelled
 * run never reached (they are dropped from run()'s result).
 */
enum class PointStatus { Ok, Failed, NotEvaluated };

/** Stable lower_snake name for a PointStatus (export columns). */
const char *pointStatusStr(PointStatus s);

/** One evaluated sweep point: coordinates, metrics, and feasibility. */
struct EvalRecord
{
    DesignPoint point;        ///< (X, N, Tx, Ty)
    double nodeNm = 0.0;
    double freqHz = 0.0;
    double memBytes = 0.0;
    DataType mulType = DataType::Int8;

    /** Named-axis coordinates as (path, value-text), grid order. */
    std::vector<std::pair<std::string, std::string>> named{};

    PointMetrics metrics;
    Feasibility why = Feasibility::TimingInfeasible;

    /** Evaluation outcome; `error` is populated when status==Failed. */
    PointStatus status = PointStatus::Ok;
    PointError error{};

    bool
    feasible() const
    {
        return status == PointStatus::Ok &&
               why == Feasibility::Feasible;
    }

    bool operator==(const EvalRecord &) const = default;
};

/** Human label for a record: the (X,N,Tx,Ty) tuple plus any
 *  named-axis coordinates — slow-point attribution and event text. */
std::string pointLabel(const EvalRecord &r);

/** One materialized grid point: the record skeleton (coordinates
 *  filled in, status NotEvaluated) and the config to evaluate. */
struct GridPoint
{
    EvalRecord record;
    ChipConfig config;
};

/**
 * Random access into a SweepGrid's cross product without expanding
 * it. The grid is a mixed-radix number: dimension 0 (tuLengths) is
 * outermost and the last named axis varies fastest, exactly the order
 * SweepEngine::run() emits records in — `at(k)` reproduces the k-th
 * record of an exhaustive sweep bit-for-bit. SweepEngine expands
 * through this class; SearchEngine (explore/search.hh) uses it to
 * address points by index without paying for the full expansion.
 *
 * Construction resolves the named axes against the schema and throws
 * ConfigError on an unknown path, empty values, or unparsable text —
 * the same early validation the sweep engine performs.
 */
class GridExpander
{
  public:
    GridExpander(SweepGrid grid, ChipConfig base);

    /** Points in the cross product (== SweepGrid::size()). */
    std::size_t size() const { return _size; }
    /** Number of dimensions: 7 typed axes + one per named axis. */
    std::size_t dims() const { return _card.size(); }
    /** Values along dimension `d` (1 for unswept optional axes). */
    std::size_t cardinality(std::size_t d) const { return _card[d]; }

    /** Materialize flat index `k` (grid order). */
    GridPoint at(std::size_t k) const;

    /** Decode flat index `k` into one digit per dimension. */
    std::vector<std::size_t> digitsOf(std::size_t k) const;
    /** Inverse of digitsOf(). */
    std::size_t indexOf(const std::vector<std::size_t> &digits) const;

  private:
    struct NamedDim
    {
        const FieldDef<ChipConfig> *field;
        std::size_t axisIdx; ///< into _grid.namedAxes
        std::vector<double> parsed;
    };

    SweepGrid _grid;
    ChipConfig _base;
    /** Optional axes resolved against the base config's values. */
    std::vector<double> _nodes, _clocks, _mems;
    std::vector<DataType> _muls;
    std::vector<NamedDim> _named;
    std::vector<std::size_t> _card; ///< radix per dim, dim 0 outermost
    std::size_t _size = 1;
};

/**
 * Moment-in-time progress of one SweepEngine::run(), as handed to the
 * progress observer: points done/total, throughput, ETA, and the
 * cache hit counters a live progress line wants to show.
 */
struct SweepProgress
{
    std::size_t done = 0;
    std::size_t total = 0;
    double elapsedS = 0.0;
    double pointsPerS = 0.0;
    /** Remaining-points estimate at the current rate (0 when done). */
    double etaS = 0.0;
    CacheStats evalCache;          ///< this engine's cache, cumulative
    MemoryCacheStats memoryCache;  ///< process-wide memory-design cache
};

/**
 * Progress callback. Invocations are serialized (never concurrent)
 * and rate-limited to progressIntervalS, except that the final call —
 * done == total — is always delivered. Called from worker threads:
 * keep it fast and do not touch the engine from inside it.
 */
using SweepObserver = std::function<void(const SweepProgress &)>;

/** Engine knobs: parallelism and the constraint set to classify by. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = serial/inline. */
    int threads = 0;
    DesignConstraints constraints;
    /** Keep infeasible points in the result (exports show the *why*). */
    bool keepInfeasible = true;
    /** Progress observer (empty = no progress reporting). */
    SweepObserver onProgress{};
    /** Minimum seconds between onProgress calls (0 = every point). */
    double progressIntervalS = 0.25;

    /** @name Fault tolerance (see README "Robustness") */
    /** @{ */
    /**
     * false (default): a throwing point is isolated into its record
     * (status = failed, structured PointError) and the sweep carries
     * on. true: the legacy policy — the first per-point exception
     * aborts run() (rethrown from the lowest-indexed thrower).
     */
    bool failFast = false;
    /** Cooperative cancellation source (copies share state). */
    CancelToken cancel{};
    /** Cancel automatically once this many points evaluated (0=off). */
    std::size_t cancelAfterPoints = 0;
    /** JSONL checkpoint file, rewritten atomically (empty = off). */
    std::string checkpointPath{};
    /** Load checkpointPath first and skip already-evaluated points. */
    bool resume = false;
    /** Checkpoint rewrite cadence, in completed points. */
    std::size_t checkpointEveryN = 32;
    /** @} */

    /** @name Sharding (see explore/shard.hh)
     * Deterministic i-of-N partition for multi-process sweeps: the
     * engine evaluates only points whose stable configKey() hash
     * (common/hash.hh) lands on `shardIndex mod shardCount`. Foreign
     * points are never evaluated, restored, checkpointed, or emitted —
     * they are tallied in SweepRunStats::offShard — so N shard runs
     * over the same grid partition it exactly, independent of axis
     * ordering or host. shardCount <= 1 disables sharding. Parse
     * "i/N" specs with ShardSpec::parse(). */
    /** @{ */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    /** @} */

    /**
     * Attribution tag for the observability plane: the serve daemon
     * sets this to the request id ("r42") that asked for the run, and
     * the engine stamps it onto slow-point records and flight-recorder
     * events (obs/events.hh). Empty for CLI/library runs.
     */
    std::string requestId{};

    /** @name Shared-service hookup (see serve/server.hh)
     * A long-lived host (the serve daemon) passes its process-wide
     * cache and pool here so every request — and every engine — shares
     * one set of memoized points and one worker fleet. Null (default):
     * the engine owns a private cache and a pool sized by `threads`.
     * Borrowed objects must outlive the engine. */
    /** @{ */
    EvalCache *sharedCache = nullptr;
    ThreadPool *sharedPool = nullptr;
    /** @} */
};

/** How the last run() ended: per-status counts and the cancel flag. */
struct SweepRunStats
{
    std::size_t total = 0;       ///< grid points requested
    std::size_t evaluated = 0;   ///< computed this run (not restored)
    std::size_t ok = 0;          ///< status ok (restored included)
    std::size_t failed = 0;      ///< status failed (restored included)
    std::size_t restored = 0;    ///< skipped via checkpoint resume
    std::size_t notEvaluated = 0; ///< unreached (cancelled runs)
    /** Points owned by other shards (SweepOptions::shardCount > 1);
     *  excluded from every other tally and from the result. */
    std::size_t offShard = 0;
    /** True when the run ended early: the token fired with work left. */
    bool cancelled = false;
};

/**
 * The sweep engine: a thread pool plus an evaluation cache bound to
 * one base ChipConfig. Engines are reusable — successive run() calls
 * share the cache, so overlapping grids only pay for new points.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(ChipConfig base, SweepOptions opts = {});

    /**
     * Evaluate every point of `grid`; records in grid order. With the
     * default failFast=false policy a throwing point becomes a
     * status=failed record instead of aborting the sweep; points a
     * cancelled run never reached are dropped from the result (consult
     * lastRun() for the counts). With checkpointing enabled, completed
     * points are persisted as they finish and — with resume — restored
     * bit-identically instead of re-evaluated.
     */
    std::vector<EvalRecord> run(const SweepGrid &grid);

    /** Outcome of the most recent run() (zeroed before each run). */
    const SweepRunStats &lastRun() const { return _lastRun; }

    /**
     * Core-count maximization for one (X, N) on the shared cache —
     * the chip/optimizer grid search with memoized evaluation.
     */
    GridSearchResult maximizeCores(int tu_length, int tu_per_core,
                                   const DesignConstraints &constraints);

    const ChipConfig &base() const { return _base; }
    const SweepOptions &options() const { return _opts; }
    /** The evaluation cache in use — engine-owned, or the shared one
     *  injected through SweepOptions::sharedCache. */
    EvalCache &cache() { return *_cache; }
    /** The worker pool in use — engine-owned, or the shared one
     *  injected through SweepOptions::sharedPool. */
    ThreadPool &pool() { return *_pool; }

    /**
     * Hit/miss counters of the process-wide memory-design cache the
     * chip models underneath this engine share. Unlike cache(), the
     * counters are global — concurrent engines all feed them.
     */
    MemoryCacheStats memoryCacheStats() const;

  private:
    ChipConfig _base;
    SweepOptions _opts;
    /** Owned instances, allocated only when no shared one is given. */
    std::unique_ptr<ThreadPool> _ownedPool;
    std::unique_ptr<EvalCache> _ownedCache;
    ThreadPool *_pool = nullptr;
    EvalCache *_cache = nullptr;
    SweepRunStats _lastRun;
};

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_SWEEP_HH
