/**
 * @file
 * Guided design-space search: surrogate-assisted Pareto-frontier
 * recovery in a fraction of the exhaustive sweep's evaluations.
 *
 * The fig08 use case (paper Sec. V) sweeps a TPU-like grid for the
 * TOPS/W x TOPS/mm^2 frontier, but most grid points are dominated and
 * evaluating them is wasted wall clock. SearchEngine recovers the
 * frontier adaptively: it seeds with deterministic Latin-hypercube
 * samples over the grid's axes, fits a cheap quadratic ridge
 * surrogate per objective over the PointMetrics accumulated so far,
 * and then runs batched propose-evaluate-refit rounds — evolutionary
 * mutation/crossover of current frontier members plus a simulated-
 * annealing-style exploration walk whose temperature decays per
 * round, with the surrogate ranking each round's candidate pool.
 * Batches evaluate in parallel through the same EvalCache/ThreadPool
 * machinery as SweepEngine, so warm starts from prior checkpoints or
 * a serve daemon's shared cache are free.
 *
 * Termination: the evaluation budget runs out, the frontier's
 * hypervolume stagnates for `stagnantRounds` consecutive rounds, the
 * whole grid has been selected, or the cancel token fires.
 *
 * Determinism: all randomness flows from one SplitMix64 stream
 * parameterized by SearchOptions::seed, selection is performed on the
 * driver thread, and results are recorded in selection order — the
 * same seed reproduces byte-identical output regardless of thread
 * count, and a resumed run replays the identical trajectory (restored
 * points consume budget exactly like computed ones). The exhaustive
 * SweepEngine remains the verification oracle (compareFrontiers).
 */

#ifndef NEUROMETER_EXPLORE_SEARCH_HH
#define NEUROMETER_EXPLORE_SEARCH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "explore/pareto.hh"
#include "explore/sweep.hh"

namespace neurometer {

/**
 * Deterministic SplitMix64 generator. The standard library's
 * distributions are implementation-defined, so the search uses this
 * directly — a fixed seed yields the same draws on every platform.
 */
class SearchRng
{
  public:
    explicit SearchRng(std::uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit draw. */
    std::uint64_t next();
    /** Uniform double in [0, 1). */
    double uniform();
    /** Uniform integer in [0, n); n must be > 0. */
    std::size_t below(std::size_t n);

  private:
    std::uint64_t _state;
};

/** The search's default space: maximize TOPS/W and TOPS/mm^2. */
std::vector<Objective> searchObjectives();

/**
 * Look up an objective by name, optionally overriding its direction
 * with a ":max"/":min" suffix ("tdp_w:max"). Known names: peak_tops,
 * area_mm2, tdp_w, tops_per_w, tops_per_tco, tops_per_mm2. Throws
 * ConfigError on an unknown name or suffix.
 */
Objective objectiveByName(const std::string &spec);

/** Parse a comma-separated objective list ("tops_per_w,area_mm2"). */
std::vector<Objective> parseObjectives(const std::string &csv);

/** Search knobs. Defaults are tuned for the fig08-class grids. */
struct SearchOptions
{
    /** RNG seed; the whole trajectory is a pure function of it. */
    std::uint64_t seed = 1;
    /** Max points to evaluate; 0 = max(16, gridPoints / 10). */
    std::size_t evalBudget = 0;
    /** Latin-hypercube seed size; 0 = max(dims + 2, budget / 8). */
    std::size_t initialSamples = 0;
    /**
     * Points evaluated per round. 0 = 2. Deliberately NOT derived
     * from the thread count: the trajectory must not depend on it.
     */
    std::size_t batchSize = 0;
    /** Stop after this many rounds without hypervolume improvement
     *  (0 = never; run to the budget). */
    std::size_t stagnantRounds = 6;
    /** Relative hypervolume gain below which a round is stagnant. */
    double stagnationEps = 1e-3;
    /** Objectives to optimize; empty = searchObjectives(). */
    std::vector<Objective> objectives{};
    /**
     * Evaluation plumbing reused from the sweep layer: threads,
     * constraints, cancellation, checkpoint/resume, progress observer,
     * and the serve daemon's shared cache/pool all apply unchanged.
     * (keepInfeasible and failFast are ignored: the search always
     * keeps every selected record and always isolates failures.)
     */
    SweepOptions sweep{};
};

/** How one run() ended, plus its headline counters. */
struct SearchStats
{
    std::size_t gridPoints = 0; ///< full cross-product size
    std::size_t rounds = 0;     ///< seed round included
    std::size_t selected = 0;   ///< budget consumed (records kept)
    std::size_t computed = 0;   ///< selected minus checkpoint-restored
    std::size_t restored = 0;   ///< resumed from the checkpoint ledger
    std::size_t failed = 0;     ///< selected points whose eval threw
    std::size_t cacheHits = 0;  ///< EvalCache hits during this run
    double hypervolume = 0.0;   ///< final frontier hypervolume
    /** @name Termination cause (exactly one is set, except cancel) */
    /** @{ */
    bool budgetExhausted = false;
    bool stagnated = false;
    bool spaceExhausted = false; ///< every grid point selected
    bool cancelled = false;
    /** @} */
};

/** Search outcome: records in selection order plus their frontier. */
struct SearchResult
{
    /** Every selected point, in deterministic selection order. The
     *  vector is export-ready: toCsv()/toJson() apply unchanged. */
    std::vector<EvalRecord> records;
    /** Indices into `records` of the Pareto-optimal feasible points. */
    std::vector<std::size_t> frontier;
    SearchStats stats;
};

/**
 * The guided search engine. Like SweepEngine it binds a base config
 * to a cache and pool (owned, or shared via SweepOptions); run() may
 * be called repeatedly and overlapping searches reuse cached points.
 */
class SearchEngine
{
  public:
    explicit SearchEngine(ChipConfig base, SearchOptions opts = {});

    /** Search `grid` for the Pareto frontier of the objectives. */
    SearchResult run(const SweepGrid &grid);

    const ChipConfig &base() const { return _base; }
    const SearchOptions &options() const { return _opts; }
    EvalCache &cache() { return *_cache; }
    ThreadPool &pool() { return *_pool; }

  private:
    ChipConfig _base;
    SearchOptions _opts;
    std::unique_ptr<ThreadPool> _ownedPool;
    std::unique_ptr<EvalCache> _ownedCache;
    ThreadPool *_pool = nullptr;
    EvalCache *_cache = nullptr;
};

/**
 * Hypervolume (dominated volume) of the maximization-oriented points
 * relative to `ref`, by recursive slicing. `points[i][d]` and
 * `ref[d]` are oriented so bigger is better; coordinates at or below
 * the reference contribute nothing.
 */
double hypervolume(const std::vector<std::vector<double>> &points,
                   const std::vector<double> &ref);

/** Verdict of compareFrontiers(). */
struct FrontierComparison
{
    /**
     * Worst relative shortfall of any found-frontier point from its
     * nearest oracle point, over oriented objectives (0 = every found
     * point sits exactly on an oracle point).
     */
    double worstShortfall = 0.0;
    /** Fraction of oracle-frontier points matched within eps. */
    double coverage = 0.0;
    /** worstShortfall <= eps (and the oracle frontier non-empty). */
    bool withinEps = false;
};

/**
 * Compare a search frontier against the exhaustive oracle: for each
 * found point, the shortfall from its nearest oracle point (relative,
 * per oriented objective); for each oracle point, whether some found
 * point matches it within `eps`.
 */
FrontierComparison
compareFrontiers(const std::vector<EvalRecord> &oracleRecords,
                 const std::vector<std::size_t> &oracleFrontier,
                 const std::vector<EvalRecord> &foundRecords,
                 const std::vector<std::size_t> &foundFrontier,
                 const std::vector<Objective> &objectives,
                 double eps);

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_SEARCH_HH
