/**
 * @file
 * Result analysis over sweep records: n-dimensional Pareto-frontier
 * extraction and top-k selection. The default objective set is the
 * paper's Sec. III efficiency space — maximize peak TOPS while
 * minimizing TDP and die area.
 */

#ifndef NEUROMETER_EXPLORE_PARETO_HH
#define NEUROMETER_EXPLORE_PARETO_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "explore/sweep.hh"

namespace neurometer {

/** One optimization dimension over an EvalRecord. */
struct Objective
{
    std::string name;
    std::function<double(const EvalRecord &)> value;
    bool maximize = true;
};

/** The paper's space: {TOPS up, TDP W down, area mm^2 down}. */
std::vector<Objective> defaultObjectives();

/**
 * True when `a` is at least as good as `b` in every objective and
 * strictly better in at least one (identical points dominate nothing).
 */
bool dominates(const EvalRecord &a, const EvalRecord &b,
               const std::vector<Objective> &objectives);

/**
 * Indices (ascending) of the Pareto-optimal *feasible* records: no
 * other feasible record dominates them. Infeasible records are never
 * on the frontier and never dominate. Records whose objective tuples
 * are exactly equal are deduplicated — only the lowest index of each
 * tuple stays on the frontier (a stable tie-break, so re-running over
 * a grown record list can only append frontier members, never reorder
 * them). Search loops that re-feed frontier members every round rely
 * on this to keep the frontier from accreting duplicates.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<EvalRecord> &records,
               const std::vector<Objective> &objectives =
                   defaultObjectives());

/**
 * Indices of the best `k` feasible records by `metric`, descending
 * (ties broken by lower index). Negate the metric to minimize.
 */
std::vector<std::size_t>
topK(const std::vector<EvalRecord> &records,
     const std::function<double(const EvalRecord &)> &metric,
     std::size_t k);

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_PARETO_HH
