#include "explore/cancel.hh"

#include <csignal>

namespace neurometer {

namespace {

// The only thing a signal handler may portably do.
volatile std::sig_atomic_t g_sigint = 0;

extern "C" void
sigintHandler(int)
{
    g_sigint = 1;
}

} // namespace

void
CancelToken::armSigint() const
{
    _state->sigint = true;
    std::signal(SIGINT, sigintHandler);
}

bool
CancelToken::sigintRaised()
{
    return g_sigint != 0;
}

} // namespace neurometer
