#include "explore/cancel.hh"

#include <csignal>

namespace neurometer {

namespace {

// The only thing a signal handler may portably do.
volatile std::sig_atomic_t g_sigint = 0;

extern "C" void
sigintHandler(int)
{
    g_sigint = 1;
}

} // namespace

void
CancelToken::armSigint() const
{
    _state->sigint = true;
    std::signal(SIGINT, sigintHandler);
    // SIGTERM latches into the same flag: orchestrators (CI runners,
    // the coordinator reaping a stuck worker, `timeout(1)`) terminate
    // with SIGTERM and deserve the identical drain-and-flush shutdown
    // and exit-code contract as an interactive Ctrl-C.
    std::signal(SIGTERM, sigintHandler);
}

bool
CancelToken::sigintRaised()
{
    return g_sigint != 0;
}

} // namespace neurometer
