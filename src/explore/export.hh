/**
 * @file
 * Sweep-result writers: CSV and JSON renderings of EvalRecord sets so
 * downstream tools (plotting, spreadsheets, other optimizers) can
 * consume NeuroMeter sweeps without linking against the library.
 */

#ifndef NEUROMETER_EXPLORE_EXPORT_HH
#define NEUROMETER_EXPLORE_EXPORT_HH

#include <string>
#include <vector>

#include "explore/sweep.hh"

namespace neurometer {

/**
 * One header row plus one row per record. Columns: design-point
 * coordinates, swept axes, feasibility (+ reason), headline metrics,
 * and the per-component area shares.
 */
std::string toCsv(const std::vector<EvalRecord> &records);

/** A JSON array of flat objects with the same fields as the CSV. */
std::string toJson(const std::vector<EvalRecord> &records);

/**
 * Write `content` to `path` atomically (write-temp-then-rename via
 * common/io.hh); throws IoError on failure. A crash or cancellation
 * mid-export can never leave a torn file behind.
 */
void writeFile(const std::string &path, const std::string &content);

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_EXPORT_HH
