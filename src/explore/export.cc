#include "explore/export.hh"

#include <cstdio>

#include "circuit/arith.hh"
#include "common/error.hh"
#include "common/io.hh"

namespace neurometer {

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** CSV field quoting (build errors carry commas and spaces). */
std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Minimal JSON string escaping for error messages. */
std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string
toCsv(const std::vector<EvalRecord> &records)
{
    std::string s =
        "tu_length,tu_per_core,tx,ty,cores,node_nm,freq_mhz,mem_mib,"
        "mul_type,";
    // Named-axis columns (uniform across one run's records): the
    // schema path is the header, the swept value the cell.
    if (!records.empty())
        for (const auto &[path, value] : records.front().named)
            s += path + ',';
    s += "feasible,why,status,error_category,error_site,error_message,"
         "peak_tops,area_mm2,tdp_w,tops_per_w,"
         "tops_per_tco,mem_area_pct,tu_area_pct,noc_area_pct,"
         "ctrl_area_pct,build_error\n";
    for (const EvalRecord &r : records) {
        const PointMetrics &m = r.metrics;
        s += std::to_string(r.point.tuLength) + ',';
        s += std::to_string(r.point.tuPerCore) + ',';
        s += std::to_string(r.point.tx) + ',';
        s += std::to_string(r.point.ty) + ',';
        s += std::to_string(r.point.tx * r.point.ty) + ',';
        s += num(r.nodeNm) + ',';
        s += num(r.freqHz / 1e6) + ',';
        s += num(r.memBytes / (1024.0 * 1024.0)) + ',';
        s += dataTypeName(r.mulType) + ',';
        for (const auto &[path, value] : r.named)
            s += value + ',';
        s += r.feasible() ? "1," : "0,";
        s += std::string(feasibilityStr(r.why)) + ',';
        s += std::string(pointStatusStr(r.status)) + ',';
        s += std::string(errorCategoryStr(r.error.category)) + ',';
        s += csvQuote(r.error.site) + ',';
        s += csvQuote(r.error.message) + ',';
        s += num(m.peakTops) + ',';
        s += num(m.areaMm2) + ',';
        s += num(m.tdpW) + ',';
        s += num(m.topsPerWatt) + ',';
        s += num(m.topsPerTco) + ',';
        s += num(m.memAreaPct) + ',';
        s += num(m.tuAreaPct) + ',';
        s += num(m.nocAreaPct) + ',';
        s += num(m.ctrlAreaPct) + ',';
        s += csvQuote(m.buildError) + '\n';
    }
    return s;
}

std::string
toJson(const std::vector<EvalRecord> &records)
{
    std::string s = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const EvalRecord &r = records[i];
        const PointMetrics &m = r.metrics;
        s += "  {";
        s += "\"tu_length\": " + std::to_string(r.point.tuLength);
        s += ", \"tu_per_core\": " + std::to_string(r.point.tuPerCore);
        s += ", \"tx\": " + std::to_string(r.point.tx);
        s += ", \"ty\": " + std::to_string(r.point.ty);
        s += ", \"node_nm\": " + num(r.nodeNm);
        s += ", \"freq_hz\": " + num(r.freqHz);
        s += ", \"mem_bytes\": " + num(r.memBytes);
        s += ", \"mul_type\": \"" + dataTypeName(r.mulType) + '"';
        for (const auto &[path, value] : r.named)
            s += ", " + jsonQuote(path) + ": " + jsonQuote(value);
        s += std::string(", \"feasible\": ") +
             (r.feasible() ? "true" : "false");
        s += std::string(", \"why\": \"") + feasibilityStr(r.why) + '"';
        s += std::string(", \"status\": \"") +
             pointStatusStr(r.status) + '"';
        s += std::string(", \"error_category\": \"") +
             errorCategoryStr(r.error.category) + '"';
        s += ", \"error_site\": " + jsonQuote(r.error.site);
        s += ", \"error_message\": " + jsonQuote(r.error.message);
        s += ", \"peak_tops\": " + num(m.peakTops);
        s += ", \"area_mm2\": " + num(m.areaMm2);
        s += ", \"tdp_w\": " + num(m.tdpW);
        s += ", \"tops_per_w\": " + num(m.topsPerWatt);
        s += ", \"tops_per_tco\": " + num(m.topsPerTco);
        s += ", \"mem_area_pct\": " + num(m.memAreaPct);
        s += ", \"tu_area_pct\": " + num(m.tuAreaPct);
        s += ", \"noc_area_pct\": " + num(m.nocAreaPct);
        s += ", \"ctrl_area_pct\": " + num(m.ctrlAreaPct);
        s += ", \"build_error\": " + jsonQuote(m.buildError);
        s += i + 1 < records.size() ? "},\n" : "}\n";
    }
    s += "]\n";
    return s;
}

void
writeFile(const std::string &path, const std::string &content)
{
    writeFileAtomic(path, content);
}

} // namespace neurometer
