#include "explore/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer {

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? int(n) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : _numThreads(num_threads > 0 ? num_threads : hardwareThreads())
{
    if (_numThreads == 1)
        return; // inline mode: no workers, no queue traffic
    _workers.reserve(_numThreads);
    for (int i = 0; i < _numThreads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(_mu);
        _stop = true;
    }
    _cv.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lk(_mu);
            _cv.wait(lk, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop();
        }
        obs::TraceScope span("pool.task");
        task(); // exceptions land in the task's future
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    static const obs::Counter tasks = obs::counter("thread_pool.tasks");
    tasks.inc();
    std::packaged_task<void()> pt(std::move(task));
    std::future<void> fut = pt.get_future();
    if (_workers.empty()) {
        pt(); // serial mode: run on the caller, now
        return fut;
    }
    {
        std::lock_guard<std::mutex> lk(_mu);
        _queue.push(std::move(pt));
    }
    _cv.notify_one();
    return fut;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    static const obs::Counter fors =
        obs::counter("thread_pool.parallel_fors");
    static const obs::Counter iters =
        obs::counter("thread_pool.iterations");
    if (count == 0)
        return;
    fors.inc();
    if (_workers.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            body(i); // strict 0..n-1 order: the serial reference path
        iters.inc(count);
        return;
    }

    // ~8 chunks per thread balances scheduling overhead against skew
    // from uneven per-point cost (big grids model slower than small).
    const std::size_t chunk =
        std::max<std::size_t>(1, count / (8 * std::size_t(_numThreads)));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abandon{false};

    const std::size_t n_tasks =
        std::min<std::size_t>(std::size_t(_numThreads), count);
    std::vector<std::future<void>> futs;
    futs.reserve(n_tasks);
    for (std::size_t t = 0; t < n_tasks; ++t) {
        futs.push_back(submit([&] {
            for (;;) {
                const std::size_t begin = next.fetch_add(chunk);
                if (begin >= count || abandon.load())
                    return;
                const std::size_t end = std::min(begin + chunk, count);
                iters.inc(end - begin);
                for (std::size_t i = begin; i < end; ++i) {
                    try {
                        body(i);
                    } catch (...) {
                        abandon.store(true);
                        throw; // captured by the packaged_task future
                    }
                }
            }
        }));
    }

    // Wait for *all* workers before rethrowing, so `next`/`abandon`
    // stay alive; keep the first exception in submission order.
    std::exception_ptr first;
    for (std::future<void> &f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace neurometer
