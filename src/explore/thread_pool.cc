#include "explore/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer {

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? int(n) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : _numThreads(num_threads > 0 ? num_threads : hardwareThreads())
{
    if (_numThreads == 1)
        return; // inline mode: no workers, no queue traffic
    _workers.reserve(_numThreads);
    for (int i = 0; i < _numThreads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(_mu);
        _stop = true;
    }
    _cv.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lk(_mu);
            _cv.wait(lk, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop();
        }
        obs::TraceScope span("pool.task");
        task(); // exceptions land in the task's future
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    static const obs::Counter tasks = obs::counter("thread_pool.tasks");
    tasks.inc();
    std::packaged_task<void()> pt(std::move(task));
    std::future<void> fut = pt.get_future();
    if (_workers.empty()) {
        pt(); // serial mode: run on the caller, now
        return fut;
    }
    {
        std::lock_guard<std::mutex> lk(_mu);
        _queue.push(std::move(pt));
    }
    _cv.notify_one();
    return fut;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body,
                        const CancelToken *cancel)
{
    static const obs::Counter fors =
        obs::counter("thread_pool.parallel_fors");
    static const obs::Counter iters =
        obs::counter("thread_pool.iterations");
    if (count == 0)
        return;
    fors.inc();
    if (_workers.empty()) {
        for (std::size_t i = 0; i < count; ++i) {
            if (cancel && cancel->cancelled())
                return; // drained: everything before i completed
            body(i); // strict 0..n-1 order: the serial reference path
            iters.inc(1);
        }
        return;
    }

    // ~8 chunks per thread balances scheduling overhead against skew
    // from uneven per-point cost (big grids model slower than small).
    const std::size_t chunk =
        std::max<std::size_t>(1, count / (8 * std::size_t(_numThreads)));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abandon{false};

    // Deterministic error pick: among the iterations that threw, keep
    // the one with the lowest index; workers never let an exception
    // escape into their future, so the wait loop below cannot lose one.
    std::mutex err_mu;
    std::size_t err_idx = std::size_t(-1);
    std::exception_ptr err;

    const std::size_t n_tasks =
        std::min<std::size_t>(std::size_t(_numThreads), count);
    std::vector<std::future<void>> futs;
    futs.reserve(n_tasks);
    for (std::size_t t = 0; t < n_tasks; ++t) {
        futs.push_back(submit([&] {
            for (;;) {
                if (abandon.load() || (cancel && cancel->cancelled()))
                    return;
                const std::size_t begin = next.fetch_add(chunk);
                if (begin >= count)
                    return;
                const std::size_t end = std::min(begin + chunk, count);
                for (std::size_t i = begin; i < end; ++i) {
                    if (abandon.load() ||
                        (cancel && cancel->cancelled()))
                        return;
                    try {
                        body(i);
                        iters.inc(1);
                    } catch (...) {
                        std::lock_guard<std::mutex> lk(err_mu);
                        if (i < err_idx) {
                            err_idx = i;
                            err = std::current_exception();
                        }
                        abandon.store(true);
                        return;
                    }
                }
            }
        }));
    }

    // Wait for *all* workers before rethrowing, so the shared state
    // above stays alive and no queued work leaks past this call.
    for (std::future<void> &f : futs)
        f.get(); // never throws: workers swallow into err above
    if (err)
        std::rethrow_exception(err);
}

} // namespace neurometer
