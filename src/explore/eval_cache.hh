/**
 * @file
 * Thread-safe memoization of design-point evaluation.
 *
 * Sweeps revisit configurations constantly: overlapping grids share
 * points, maximizeCores probes the same (X, N, Tx, Ty) chips across
 * constraint sets, and repeated runs re-ask identical questions. The
 * cache keys on a canonical serialization of every resolved ChipConfig
 * field and stores the constraint-independent PointMetrics, so one
 * ChipModel build serves every consumer and every constraint set.
 *
 * Concurrency: the map is guarded by a mutex held only for lookup and
 * insertion — never while a point is being modeled. Concurrent
 * requests for the *same* uncached key rendezvous on a per-entry
 * state machine (Empty -> Computing -> Done) guarded by the entry's
 * own mutex, so each point is computed exactly once on success. A
 * compute that throws resets the entry to Empty and wakes any
 * waiters, one of which retries — so transient failures (e.g. an
 * injected fault) are never memoized. An explicit condvar rather
 * than std::call_once: the call_once exceptional path deadlocks
 * under ThreadSanitizer's interceptors, and the retry-on-failure
 * semantics are load-bearing here.
 */

#ifndef NEUROMETER_EXPLORE_EVAL_CACHE_HH
#define NEUROMETER_EXPLORE_EVAL_CACHE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chip/optimizer.hh"

namespace neurometer {

/**
 * Canonical cache key: every ChipConfig field (architecture, tech,
 * activity factors) serialized with exact (hex-float) formatting.
 * Two configs share a key iff every modeled input is bit-identical.
 */
std::string configKey(const ChipConfig &cfg);

/** Hit/miss counters of an EvalCache, sampled atomically per counter. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    hitRate() const
    {
        const std::uint64_t n = hits + misses;
        return n == 0 ? 0.0 : double(hits) / double(n);
    }
};

/** Memoized, thread-safe ChipConfig -> PointMetrics map. */
class EvalCache
{
  public:
    /**
     * Return the cached metrics for `cfg`, computing them with
     * `compute(cfg)` on first request. A request that triggers the
     * computation counts as a miss; every other request for the key —
     * including ones that block while another thread computes it —
     * counts as a hit.
     */
    PointMetrics getOrCompute(const ChipConfig &cfg,
                              const PointEvaluator &compute);

    /** getOrCompute with the standard measurePoint() evaluator. */
    PointMetrics evaluate(const ChipConfig &cfg);

    CacheStats stats() const;

    /** Number of distinct cached points. */
    std::size_t size() const;

    /** Drop all entries and zero the counters (not concurrency-safe
     *  against in-flight getOrCompute calls). */
    void clear();

  private:
    enum class State { Empty, Computing, Done };

    struct Entry
    {
        std::mutex mu;
        std::condition_variable cv;
        State state = State::Empty;
        PointMetrics value;
    };

    mutable std::mutex _mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> _map;
    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
};

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_EVAL_CACHE_HH
