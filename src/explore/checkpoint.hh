/**
 * @file
 * Sweep checkpoints: resumable partial progress for long explorations.
 *
 * A checkpoint is a JSONL file — one header line identifying the base
 * config, then one line per completed point keyed by its canonical
 * configKey() — rewritten atomically (common/io.hh) every few
 * completions and on cancellation. Metrics doubles are serialized as
 * hex-float strings, so a resumed sweep restores *bit-identical*
 * PointMetrics and its CSV/JSON output matches an uninterrupted run
 * byte for byte (proven in tests/test_robustness.cc and the CI
 * kill-and-resume step).
 */

#ifndef NEUROMETER_EXPLORE_CHECKPOINT_HH
#define NEUROMETER_EXPLORE_CHECKPOINT_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chip/optimizer.hh"
#include "common/error.hh"

namespace neurometer {

/** One completed point as persisted in a checkpoint line. */
struct CheckpointEntry
{
    std::string key;       ///< configKey() of the resolved point config
    bool failed = false;   ///< evaluation threw (isolated, not aborted)
    PointError error{};    ///< the structured failure when `failed`
    PointMetrics metrics{};

    bool operator==(const CheckpointEntry &) const = default;
};

/**
 * Writer/loader for one sweep's checkpoint file. add() is thread-safe
 * and rewrites the whole file atomically every `flushEveryN`
 * completions (and on explicit flush()), so the on-disk file is always
 * a complete, loadable snapshot.
 */
class SweepCheckpoint
{
  public:
    /**
     * @param path      checkpoint file (created/overwritten atomically)
     * @param baseKey   configKey() of the engine's base config; stored
     *                  in the header and verified on load, so a
     *                  checkpoint cannot silently resume a different
     *                  chip
     * @param flushEveryN rewrite cadence in completed points (>= 1)
     */
    SweepCheckpoint(std::string path, std::string baseKey,
                    std::size_t flushEveryN = 32);

    /** Record one completed point; may flush per the cadence. */
    void add(const CheckpointEntry &entry);

    /** Atomically rewrite the file with everything recorded so far. */
    void flush();

    /** Completed points recorded (restored seeds included). */
    std::size_t size() const;

    /**
     * Load a checkpoint into a key -> entry map. A missing file
     * returns an empty map (first run of an always-`--resume` command
     * line); a malformed file, or one whose header names a different
     * base config, throws ConfigError with the offending line number.
     * A torn final line — impossible under writeFileAtomic but cheap
     * to tolerate — is ignored.
     */
    static std::unordered_map<std::string, CheckpointEntry>
    load(const std::string &path, const std::string &baseKey);

    /**
     * Load a checkpoint preserving file order and duplicates — the
     * raw ledger, where load() gives the resolved map. Sharded merges
     * (explore/shard.hh) need the order to apply last-writer-wins
     * across files deterministically. Same error/torn-tail behavior
     * as load().
     */
    static std::vector<CheckpointEntry>
    loadEntries(const std::string &path, const std::string &baseKey);

    /**
     * Seed the writer with entries restored from load(), so the next
     * flush() persists restored + new points alike.
     */
    void seed(const std::vector<CheckpointEntry> &entries);

  private:
    void flushLocked();

    std::string _path;
    std::string _baseKey;
    std::size_t _flushEveryN;
    mutable std::mutex _mu;
    std::vector<CheckpointEntry> _entries;
    std::size_t _sinceFlush = 0;
};

/**
 * Render one entry as its canonical single-line JSONL form — the exact
 * bytes SweepCheckpoint writes. Public because this line format *is*
 * the cross-process interchange format: the coordinator's workers ship
 * completed points as these lines (serve/worker.hh), and the merge
 * tool re-emits them, so hex-float metrics survive every hop
 * bit-identically.
 */
std::string checkpointEntryLine(const CheckpointEntry &entry);

/**
 * Parse one checkpointEntryLine() back. `where` tags ConfigError
 * messages ("file:line" or a wire description). Strict: the fixed key
 * order and spacing the writer produces, nothing else.
 */
CheckpointEntry parseCheckpointEntry(const std::string &line,
                                     const std::string &where);

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_CHECKPOINT_HH
