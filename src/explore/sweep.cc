#include "explore/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "chip/config_schema.hh"
#include "circuit/arith.hh"
#include "explore/checkpoint.hh"
#include "explore/shard.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer {

std::string
pointLabel(const EvalRecord &r)
{
    std::string label = r.point.str();
    for (const auto &[path, value] : r.named)
        label += " " + path + "=" + value;
    return label;
}

const char *
pointStatusStr(PointStatus s)
{
    switch (s) {
      case PointStatus::Ok:
        return "ok";
      case PointStatus::Failed:
        return "failed";
      case PointStatus::NotEvaluated:
        return "not_evaluated";
    }
    return "not_evaluated";
}

namespace {

// Optional axes sweep the base value when unspecified.
template <typename T>
std::vector<T>
axisOr(const std::vector<T> &axis, T base_value)
{
    if (!axis.empty())
        return axis;
    return {base_value};
}

// A named axis resolved against the schema: field plus pre-parsed
// values (resolution throws on unknown paths or unparsable values
// before any evaluation starts).
struct ResolvedAxis
{
    const FieldDef<ChipConfig> *field;
    const NamedAxis *axis;
    std::vector<double> parsed;
};

std::vector<ResolvedAxis>
resolveNamedAxes(const std::vector<NamedAxis> &axes)
{
    std::vector<ResolvedAxis> out;
    out.reserve(axes.size());
    for (const NamedAxis &a : axes) {
        requireConfig(!a.values.empty(),
                      "named axis '" + a.path + "' has no values");
        ResolvedAxis r;
        r.field = &chipSchema().at(a.path);
        r.axis = &a;
        for (const std::string &v : a.values)
            r.parsed.push_back(r.field->parseText(v));
        out.push_back(std::move(r));
    }
    return out;
}

// Decode flat index `k` into one value per axis (first axis
// outermost) and apply them; appends (path, value) to `record`.
void
applyNamedCombo(const std::vector<ResolvedAxis> &axes, std::size_t k,
                ChipConfig &cfg,
                std::vector<std::pair<std::string, std::string>> *record)
{
    std::size_t stride = 1;
    for (const ResolvedAxis &a : axes)
        stride *= a.parsed.size();
    for (const ResolvedAxis &a : axes) {
        stride /= a.parsed.size();
        const std::size_t idx = (k / stride) % a.parsed.size();
        a.field->set(cfg, a.parsed[idx]);
        if (record)
            record->emplace_back(a.axis->path, a.axis->values[idx]);
    }
}

std::size_t
namedComboCount(const std::vector<ResolvedAxis> &axes)
{
    std::size_t n = 1;
    for (const ResolvedAxis &a : axes)
        n *= a.parsed.size();
    return n;
}

} // namespace

SweepGrid &
SweepGrid::axis(const std::string &path,
                const std::vector<double> &values)
{
    std::vector<std::string> text;
    text.reserve(values.size());
    for (double v : values)
        text.push_back(exactDoubleText(v));
    return axis(path, std::move(text));
}

SweepGrid &
SweepGrid::axis(const std::string &path,
                std::initializer_list<double> values)
{
    return axis(path, std::vector<double>(values));
}

SweepGrid &
SweepGrid::axis(const std::string &path, std::vector<std::string> values)
{
    namedAxes.push_back({path, std::move(values)});
    return *this;
}

std::vector<ChipConfig>
SweepGrid::expandNamed(const ChipConfig &base) const
{
    const std::vector<ResolvedAxis> axes = resolveNamedAxes(namedAxes);
    const std::size_t n = namedComboCount(axes);
    std::vector<ChipConfig> out;
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        ChipConfig cfg = base;
        applyNamedCombo(axes, k, cfg, nullptr);
        out.push_back(cfg);
    }
    return out;
}

std::size_t
SweepGrid::size() const
{
    auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
    std::size_t n = dim(tuLengths.size()) * dim(tuPerCore.size()) *
                    dim(coreGrids.size()) * dim(nodesNm.size()) *
                    dim(clocksHz.size()) * dim(memBytes.size()) *
                    dim(mulTypes.size());
    for (const NamedAxis &a : namedAxes)
        n *= dim(a.values.size());
    return n;
}

GridExpander::GridExpander(SweepGrid grid, ChipConfig base)
    : _grid(std::move(grid)), _base(std::move(base))
{
    _nodes = axisOr(_grid.nodesNm, _base.nodeNm);
    _clocks = axisOr(_grid.clocksHz, _base.freqHz);
    _mems = axisOr(_grid.memBytes, _base.totalMemBytes);
    _muls = axisOr(_grid.mulTypes, _base.core.tu.mulType);

    // Resolve named axes up front: unknown paths and bad values fail
    // here, before any point is addressed.
    _named.reserve(_grid.namedAxes.size());
    for (std::size_t i = 0; i < _grid.namedAxes.size(); ++i) {
        const NamedAxis &a = _grid.namedAxes[i];
        requireConfig(!a.values.empty(),
                      "named axis '" + a.path + "' has no values");
        NamedDim d;
        d.field = &chipSchema().at(a.path);
        d.axisIdx = i;
        for (const std::string &v : a.values)
            d.parsed.push_back(d.field->parseText(v));
        _named.push_back(std::move(d));
    }

    _card = {_grid.tuLengths.size(), _grid.tuPerCore.size(),
             _grid.coreGrids.size(), _nodes.size(),   _clocks.size(),
             _mems.size(),           _muls.size()};
    for (const NamedDim &d : _named)
        _card.push_back(d.parsed.size());
    _size = 1;
    for (std::size_t c : _card)
        _size *= c;
}

std::vector<std::size_t>
GridExpander::digitsOf(std::size_t k) const
{
    std::vector<std::size_t> digits(_card.size(), 0);
    for (std::size_t d = _card.size(); d-- > 0;) {
        digits[d] = _card[d] ? k % _card[d] : 0;
        k /= _card[d] ? _card[d] : 1;
    }
    return digits;
}

std::size_t
GridExpander::indexOf(const std::vector<std::size_t> &digits) const
{
    std::size_t k = 0;
    for (std::size_t d = 0; d < _card.size(); ++d)
        k = k * _card[d] + digits[d];
    return k;
}

GridPoint
GridExpander::at(std::size_t k) const
{
    const std::vector<std::size_t> dig = digitsOf(k);

    GridPoint p;
    EvalRecord &r = p.record;
    const int x = _grid.tuLengths[dig[0]];
    const int n = _grid.tuPerCore[dig[1]];
    const auto [tx, ty] = _grid.coreGrids[dig[2]];
    r.point = {x, n, tx, ty};
    r.nodeNm = _nodes[dig[3]];
    r.freqHz = _clocks[dig[4]];
    r.memBytes = _mems[dig[5]];
    r.mulType = _muls[dig[6]];
    r.status = PointStatus::NotEvaluated;

    ChipConfig cfg = _base;
    cfg.nodeNm = r.nodeNm;
    cfg.freqHz = r.freqHz;
    cfg.totalMemBytes = r.memBytes;
    cfg.core.tu.mulType = r.mulType;
    if (!_grid.mulTypes.empty())
        cfg.core.tu.accType = defaultAccumType(r.mulType);
    cfg = applyDesignPoint(cfg, r.point);
    // Named axes land last: they win over any typed axis addressing
    // the same field.
    for (std::size_t i = 0; i < _named.size(); ++i) {
        const NamedDim &d = _named[i];
        const std::size_t idx = dig[7 + i];
        d.field->set(cfg, d.parsed[idx]);
        const NamedAxis &a = _grid.namedAxes[d.axisIdx];
        r.named.emplace_back(a.path, a.values[idx]);
    }
    p.config = cfg;
    return p;
}

SweepEngine::SweepEngine(ChipConfig base, SweepOptions opts)
    : _base(std::move(base)), _opts(std::move(opts))
{
    if (_opts.sharedPool) {
        _pool = _opts.sharedPool;
    } else {
        _ownedPool = std::make_unique<ThreadPool>(_opts.threads);
        _pool = _ownedPool.get();
    }
    if (_opts.sharedCache) {
        _cache = _opts.sharedCache;
    } else {
        _ownedCache = std::make_unique<EvalCache>();
        _cache = _ownedCache.get();
    }
}

std::vector<EvalRecord>
SweepEngine::run(const SweepGrid &grid)
{
    // Expand the cross product up front (grid order) so records land
    // in grid order no matter which thread evaluates them. The
    // expander performs the early named-axis validation.
    const GridExpander expander(grid, _base);
    std::vector<EvalRecord> records;
    std::vector<ChipConfig> cfgs;
    records.reserve(expander.size());
    cfgs.reserve(expander.size());
    for (std::size_t k = 0; k < expander.size(); ++k) {
        GridPoint p = expander.at(k);
        records.push_back(std::move(p.record));
        cfgs.push_back(std::move(p.config));
    }

    static const obs::Counter runs =
        obs::counter("sweep.runs", "sweep engine runs started");
    static const obs::Counter points = obs::counter(
        "sweep.points", "design points evaluated by sweep runs");
    static const obs::Counter points_ok =
        obs::counter("sweep.points.ok");
    static const obs::Counter points_failed = obs::counter(
        "sweep.points.failed", "sweep points isolated as failed");
    static const obs::Counter points_restored = obs::counter(
        "sweep.points.restored", "points restored from a checkpoint");
    static const obs::Histogram point_hist = obs::histogram(
        "sweep.point_s", "per-point evaluation wall-clock in seconds");
    runs.inc();
    obs::TraceScope run_span("sweep.run", records.size());

    _lastRun = SweepRunStats{};
    _lastRun.total = records.size();

    // Sharding: point ownership hashes the canonical configKey(), so
    // keys are needed whenever a shard spec or a checkpoint file is in
    // play. Foreign points are skipped everywhere below — evaluation,
    // restore, checkpointing, progress — and dropped from the result.
    const ShardSpec shard{_opts.shardIndex,
                          _opts.shardCount == 0 ? 1 : _opts.shardCount};
    std::vector<std::string> keys;
    if (!_opts.checkpointPath.empty() || shard.active()) {
        keys.reserve(cfgs.size());
        for (const ChipConfig &c : cfgs)
            keys.push_back(configKey(c));
    }
    std::vector<char> owned(records.size(), 1);
    if (shard.active()) {
        for (std::size_t i = 0; i < records.size(); ++i) {
            if (!shard.owns(keys[i])) {
                owned[i] = 0;
                ++_lastRun.offShard;
            }
        }
    }
    const std::size_t owned_total = records.size() - _lastRun.offShard;

    // Checkpoint/resume: restored points skip evaluation entirely and
    // re-enter the result bit-identically.
    std::unique_ptr<SweepCheckpoint> ckpt;
    std::vector<char> restored(records.size(), 0);
    if (!_opts.checkpointPath.empty()) {
        const std::string base_key = configKey(_base);
        ckpt = std::make_unique<SweepCheckpoint>(
            _opts.checkpointPath, base_key, _opts.checkpointEveryN);
        if (_opts.resume) {
            const auto loaded =
                SweepCheckpoint::load(_opts.checkpointPath, base_key);
            std::vector<CheckpointEntry> seeds;
            std::unordered_set<std::string> seeded;
            for (std::size_t i = 0; i < records.size(); ++i) {
                if (!owned[i])
                    continue;
                const auto it = loaded.find(keys[i]);
                if (it == loaded.end())
                    continue;
                const CheckpointEntry &e = it->second;
                records[i].metrics = e.metrics;
                records[i].status = e.failed ? PointStatus::Failed
                                             : PointStatus::Ok;
                records[i].error = e.error;
                records[i].why =
                    classify(records[i].metrics, _opts.constraints);
                restored[i] = 1;
                ++_lastRun.restored;
                points_restored.inc();
                if (seeded.insert(keys[i]).second)
                    seeds.push_back(e);
            }
            ckpt->seed(seeds);
        }
    }

    // Progress plumbing: a shared done-counter, a time-based rate
    // limiter (CAS on the last-report tick so only one thread wins a
    // slot), and a mutex that serializes observer invocations.
    using clock = std::chrono::steady_clock;
    const clock::time_point t0 = clock::now();
    std::atomic<std::size_t> done{_lastRun.restored};
    std::atomic<std::size_t> evaluated{0};
    std::atomic<std::int64_t> last_report_ns{-1};
    std::mutex report_mu;
    const std::int64_t interval_ns =
        std::int64_t(_opts.progressIntervalS * 1e9);
    auto report = [&](std::size_t d) {
        SweepProgress p;
        p.done = d;
        p.total = owned_total;
        p.elapsedS =
            std::chrono::duration<double>(clock::now() - t0).count();
        p.pointsPerS = p.elapsedS > 0.0 ? double(d) / p.elapsedS : 0.0;
        p.etaS = p.pointsPerS > 0.0
                     ? double(p.total - d) / p.pointsPerS
                     : 0.0;
        p.evalCache = _cache->stats();
        p.memoryCache = memoryDesignCache().stats();
        std::lock_guard<std::mutex> lk(report_mu);
        _opts.onProgress(p);
    };

    _pool->parallelFor(
        records.size(),
        [&](std::size_t i) {
            if (!owned[i])
                return; // another shard's point: not ours to touch
            if (restored[i])
                return; // resumed from the checkpoint, bit-identical
            obs::TraceScope span("sweep.point", i);
            const clock::time_point p0 = clock::now();
            try {
                records[i].metrics = _cache->evaluate(cfgs[i]);
                records[i].why =
                    classify(records[i].metrics, _opts.constraints);
                records[i].status = PointStatus::Ok;
                points_ok.inc();
            } catch (...) {
                if (_opts.failFast)
                    throw; // legacy policy: first failure aborts run()
                records[i].metrics = PointMetrics{};
                records[i].why =
                    classify(records[i].metrics, _opts.constraints);
                records[i].status = PointStatus::Failed;
                records[i].error =
                    captureCurrentException("sweep.eval");
                points_failed.inc();
                obs::recordEvent(obs::EventSeverity::Error,
                                 "sweep.point_failed", _opts.requestId,
                                 pointLabel(records[i]) + ": " +
                                     records[i].error.message);
            }
            const double point_s =
                std::chrono::duration<double>(clock::now() - p0)
                    .count();
            point_hist.record(point_s);
            // Slow-point attribution: keep the worst evaluations (with
            // the requesting id) queryable from /statusz and manifests.
            if (obs::recordSlowOp("sweep.point", pointLabel(records[i]),
                                  point_s, _opts.requestId) == 0) {
                obs::recordEvent(obs::EventSeverity::Info,
                                 "sweep.slow_point", _opts.requestId,
                                 pointLabel(records[i]));
            }
            points.inc();
            if (ckpt) {
                ckpt->add({keys[i],
                           records[i].status == PointStatus::Failed,
                           records[i].error, records[i].metrics});
            }
            const std::size_t ev = evaluated.fetch_add(1) + 1;
            if (_opts.cancelAfterPoints != 0 &&
                ev >= _opts.cancelAfterPoints)
                _opts.cancel.requestCancel();
            if (!_opts.onProgress)
                return;
            const std::size_t d = done.fetch_add(1) + 1;
            if (d == owned_total)
                return; // the final report is issued after the loop
            const std::int64_t now_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - t0)
                    .count();
            std::int64_t last =
                last_report_ns.load(std::memory_order_relaxed);
            if (last >= 0 && now_ns - last < interval_ns)
                return;
            if (!last_report_ns.compare_exchange_strong(last, now_ns))
                return; // another thread took this reporting slot
            report(d);
        },
        &_opts.cancel);

    // Cancelled or not, the checkpoint on disk reflects every
    // completed point before run() returns.
    if (ckpt)
        ckpt->flush();

    for (std::size_t i = 0; i < records.size(); ++i) {
        if (!owned[i])
            continue; // foreign points are offShard, nothing else
        switch (records[i].status) {
          case PointStatus::Ok:
            ++_lastRun.ok;
            break;
          case PointStatus::Failed:
            ++_lastRun.failed;
            break;
          case PointStatus::NotEvaluated:
            ++_lastRun.notEvaluated;
            break;
        }
    }
    _lastRun.evaluated = evaluated.load();
    _lastRun.cancelled =
        _opts.cancel.cancelled() && _lastRun.notEvaluated > 0;
    if (_lastRun.cancelled) {
        obs::recordEvent(obs::EventSeverity::Warn, "sweep.cancelled",
                         _opts.requestId,
                         std::to_string(_lastRun.notEvaluated) + " of " +
                             std::to_string(_lastRun.total) +
                             " points not evaluated");
    }

    if (_opts.onProgress)
        report(done.load());

    // Points a cancelled run never reached are not results.
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const EvalRecord &r) {
                                     return r.status ==
                                            PointStatus::NotEvaluated;
                                 }),
                  records.end());

    if (!_opts.keepInfeasible) {
        records.erase(std::remove_if(records.begin(), records.end(),
                                     [](const EvalRecord &r) {
                                         return !r.feasible();
                                     }),
                      records.end());
    }
    return records;
}

GridSearchResult
SweepEngine::maximizeCores(int tu_length, int tu_per_core,
                           const DesignConstraints &constraints)
{
    return neurometer::maximizeCores(
        _base, tu_length, tu_per_core, constraints,
        [this](const ChipConfig &cfg) { return _cache->evaluate(cfg); });
}

MemoryCacheStats
SweepEngine::memoryCacheStats() const
{
    return memoryDesignCache().stats();
}

} // namespace neurometer
