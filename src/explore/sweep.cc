#include "explore/sweep.hh"

#include <algorithm>

#include "circuit/arith.hh"

namespace neurometer {

namespace {

// Optional axes sweep the base value when unspecified.
template <typename T>
std::vector<T>
axisOr(const std::vector<T> &axis, T base_value)
{
    if (!axis.empty())
        return axis;
    return {base_value};
}

} // namespace

std::size_t
SweepGrid::size() const
{
    auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
    return dim(tuLengths.size()) * dim(tuPerCore.size()) *
           dim(coreGrids.size()) * dim(nodesNm.size()) *
           dim(clocksHz.size()) * dim(memBytes.size()) *
           dim(mulTypes.size());
}

SweepEngine::SweepEngine(ChipConfig base, SweepOptions opts)
    : _base(std::move(base)), _opts(opts), _pool(opts.threads)
{}

std::vector<EvalRecord>
SweepEngine::run(const SweepGrid &grid)
{
    const auto nodes = axisOr(grid.nodesNm, _base.nodeNm);
    const auto clocks = axisOr(grid.clocksHz, _base.freqHz);
    const auto mems = axisOr(grid.memBytes, _base.totalMemBytes);
    const auto muls = axisOr(grid.mulTypes, _base.core.tu.mulType);

    // Expand the cross product up front so records land in grid order
    // no matter which thread evaluates them.
    std::vector<EvalRecord> records;
    std::vector<ChipConfig> cfgs;
    records.reserve(grid.size());
    cfgs.reserve(grid.size());
    for (int x : grid.tuLengths) {
        for (int n : grid.tuPerCore) {
            for (const auto &[tx, ty] : grid.coreGrids) {
                for (double node : nodes) {
                    for (double clk : clocks) {
                        for (double mem : mems) {
                            for (DataType mul : muls) {
                                EvalRecord r;
                                r.point = {x, n, tx, ty};
                                r.nodeNm = node;
                                r.freqHz = clk;
                                r.memBytes = mem;
                                r.mulType = mul;

                                ChipConfig cfg = _base;
                                cfg.nodeNm = node;
                                cfg.freqHz = clk;
                                cfg.totalMemBytes = mem;
                                cfg.core.tu.mulType = mul;
                                if (!grid.mulTypes.empty()) {
                                    cfg.core.tu.accType =
                                        defaultAccumType(mul);
                                }
                                cfgs.push_back(
                                    applyDesignPoint(cfg, r.point));
                                records.push_back(std::move(r));
                            }
                        }
                    }
                }
            }
        }
    }

    _pool.parallelFor(records.size(), [&](std::size_t i) {
        records[i].metrics = _cache.evaluate(cfgs[i]);
        records[i].why =
            classify(records[i].metrics, _opts.constraints);
    });

    if (!_opts.keepInfeasible) {
        records.erase(std::remove_if(records.begin(), records.end(),
                                     [](const EvalRecord &r) {
                                         return !r.feasible();
                                     }),
                      records.end());
    }
    return records;
}

GridSearchResult
SweepEngine::maximizeCores(int tu_length, int tu_per_core,
                           const DesignConstraints &constraints)
{
    return neurometer::maximizeCores(
        _base, tu_length, tu_per_core, constraints,
        [this](const ChipConfig &cfg) { return _cache.evaluate(cfg); });
}

} // namespace neurometer
