#include "explore/pareto.hh"

#include <algorithm>
#include <map>

namespace neurometer {

std::vector<Objective>
defaultObjectives()
{
    return {
        {"peak_tops",
         [](const EvalRecord &r) { return r.metrics.peakTops; }, true},
        {"tdp_w", [](const EvalRecord &r) { return r.metrics.tdpW; },
         false},
        {"area_mm2",
         [](const EvalRecord &r) { return r.metrics.areaMm2; }, false},
    };
}

bool
dominates(const EvalRecord &a, const EvalRecord &b,
          const std::vector<Objective> &objectives)
{
    bool strictly_better = false;
    for (const Objective &o : objectives) {
        // Orient every axis as "bigger is better".
        const double va = o.maximize ? o.value(a) : -o.value(a);
        const double vb = o.maximize ? o.value(b) : -o.value(b);
        if (va < vb)
            return false;
        if (va > vb)
            strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<EvalRecord> &records,
               const std::vector<Objective> &objectives)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (!records[i].feasible())
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < records.size(); ++j) {
            if (j == i || !records[j].feasible())
                continue;
            if (dominates(records[j], records[i], objectives)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }

    // Identical objective tuples dominate nothing, so duplicates all
    // survive the loop above. Keep only the lowest index per tuple:
    // iterating ascending makes the tie-break stable.
    std::map<std::vector<double>, std::size_t> seen;
    std::vector<std::size_t> unique;
    unique.reserve(frontier.size());
    for (std::size_t i : frontier) {
        std::vector<double> tuple;
        tuple.reserve(objectives.size());
        for (const Objective &o : objectives)
            tuple.push_back(o.value(records[i]));
        if (seen.emplace(std::move(tuple), i).second)
            unique.push_back(i);
    }
    return unique;
}

std::vector<std::size_t>
topK(const std::vector<EvalRecord> &records,
     const std::function<double(const EvalRecord &)> &metric,
     std::size_t k)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < records.size(); ++i)
        if (records[i].feasible())
            idx.push_back(i);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                         return metric(records[a]) >
                                metric(records[b]);
                     });
    if (idx.size() > k)
        idx.resize(k);
    return idx;
}

} // namespace neurometer
