/**
 * @file
 * Cooperative cancellation for long-running sweeps.
 *
 * A CancelToken is a cheap, copyable handle on shared cancellation
 * state: an explicit request flag, an optional wall-clock deadline,
 * and (when armed) the process-wide SIGINT latch. Workers poll
 * `cancelled()` between units of work; on cancellation, in-flight
 * points drain, partial results and checkpoints are flushed, and the
 * caller reports a resumable partial run instead of dying mid-write.
 */

#ifndef NEUROMETER_EXPLORE_CANCEL_HH
#define NEUROMETER_EXPLORE_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace neurometer {

/** Copyable handle on shared cancellation state (copies alias it). */
class CancelToken
{
  public:
    CancelToken() : _state(std::make_shared<State>()) {}

    /** Cancel explicitly (thread- and signal-safe). */
    void
    requestCancel() const
    {
        _state->flag.store(true, std::memory_order_relaxed);
    }

    /** Cancel automatically once `seconds` elapse from now. */
    void
    cancelAfterSeconds(double seconds) const
    {
        const auto ns = std::chrono::steady_clock::now().time_since_epoch() +
                        std::chrono::nanoseconds(
                            std::int64_t(seconds * 1e9));
        _state->deadlineNs.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(ns)
                .count(),
            std::memory_order_relaxed);
    }

    /**
     * Route SIGINT *and* SIGTERM into this token: installs the
     * process-wide handler (a one-line sig_atomic_t latch) and makes
     * cancelled() observe it. Both signals get the same drain-and-
     * flush semantics — orchestrators that SIGTERM a worker see the
     * identical resumable-partial contract as an interactive Ctrl-C.
     * Call once from the CLI before a long run.
     */
    void armSigint() const;

    /**
     * Chain this token to `parent`: cancelled() also reports true once
     * the parent fires, while requestCancel()/deadlines on this token
     * leave the parent untouched. This is how a per-request token in
     * the serve/ daemon observes both its own deadline and the
     * server-wide shutdown token. Single link, no cycles; call during
     * setup, before the token is shared across threads (the link
     * itself is plain data — only the linked states are atomic).
     */
    void
    follow(const CancelToken &parent) const
    {
        _state->parent = parent._state;
    }

    /** True once any source — request, deadline, SIGINT, a followed
     *  parent token — fired. */
    bool
    cancelled() const
    {
        for (const State *s = _state.get(); s != nullptr;
             s = s->parent.get()) {
            if (s->flag.load(std::memory_order_relaxed))
                return true;
            if (s->sigint && sigintRaised())
                return true;
            const std::int64_t dl =
                s->deadlineNs.load(std::memory_order_relaxed);
            if (dl >= 0) {
                const std::int64_t now =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count();
                if (now >= dl)
                    return true;
            }
        }
        return false;
    }

    /** Whether the process-wide SIGINT latch has fired (diagnostic). */
    static bool sigintRaised();

  private:
    struct State
    {
        std::atomic<bool> flag{false};
        std::atomic<std::int64_t> deadlineNs{-1};
        bool sigint = false; ///< set once by armSigint(), then read-only
        /** Chained parent (follow()); set once at setup, then read-only. */
        std::shared_ptr<State> parent{};
    };

    std::shared_ptr<State> _state;
};

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_CANCEL_HH
