/**
 * @file
 * Fixed-size worker pool with a dynamically chunked parallel-for,
 * built on standard C++ threads only (no external dependencies).
 *
 * `numThreads() == 1` degenerates to inline execution on the caller
 * thread — no workers are spawned and iteration order is exactly
 * 0..n-1, giving the bit-identical serial path that parallel sweeps
 * are validated against.
 */

#ifndef NEUROMETER_EXPLORE_THREAD_POOL_HH
#define NEUROMETER_EXPLORE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "explore/cancel.hh"

namespace neurometer {

/** A minimal task pool for fan-out evaluation of independent work. */
class ThreadPool
{
  public:
    /** @param num_threads 0 = hardwareThreads(); 1 = inline/serial. */
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return _numThreads; }

    /**
     * Enqueue one task (runs inline when numThreads() == 1). The
     * returned future rethrows the task's exception on get().
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i) for every i in [0, count) and block until all
     * iterations finish. Work is handed out in dynamically sized
     * chunks from a shared counter, so threads that draw cheap points
     * steal the remaining range from slow ones.
     *
     * Exceptions: when one or more iterations throw, the remaining
     * chunks are abandoned, every worker drains, and the exception
     * from the *lowest-indexed* throwing iteration (among those that
     * ran) is rethrown — a deterministic pick, independent of worker
     * scheduling. With numThreads() == 1 this is exactly the first
     * iteration that throws. A throwing parallelFor never deadlocks
     * and leaves no queued work behind: the pool is immediately
     * reusable.
     *
     * Cancellation: when `cancel` is non-null, workers stop drawing
     * new iterations once it fires; in-flight iterations drain and
     * parallelFor returns normally (the caller inspects the token and
     * its own done-bookkeeping to see how far it got).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body,
                     const CancelToken *cancel = nullptr);

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    int _numThreads = 1;
    std::vector<std::thread> _workers;
    std::queue<std::packaged_task<void()>> _queue;
    std::mutex _mu;
    std::condition_variable _cv;
    bool _stop = false;
};

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_THREAD_POOL_HH
