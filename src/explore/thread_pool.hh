/**
 * @file
 * Fixed-size worker pool with a dynamically chunked parallel-for,
 * built on standard C++ threads only (no external dependencies).
 *
 * `numThreads() == 1` degenerates to inline execution on the caller
 * thread — no workers are spawned and iteration order is exactly
 * 0..n-1, giving the bit-identical serial path that parallel sweeps
 * are validated against.
 */

#ifndef NEUROMETER_EXPLORE_THREAD_POOL_HH
#define NEUROMETER_EXPLORE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace neurometer {

/** A minimal task pool for fan-out evaluation of independent work. */
class ThreadPool
{
  public:
    /** @param num_threads 0 = hardwareThreads(); 1 = inline/serial. */
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return _numThreads; }

    /**
     * Enqueue one task (runs inline when numThreads() == 1). The
     * returned future rethrows the task's exception on get().
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i) for every i in [0, count) and block until all
     * iterations finish. Work is handed out in dynamically sized
     * chunks from a shared counter, so threads that draw cheap points
     * steal the remaining range from slow ones. The first exception
     * any iteration throws is rethrown here, after all workers have
     * drained (remaining chunks are abandoned).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    int _numThreads = 1;
    std::vector<std::thread> _workers;
    std::queue<std::packaged_task<void()>> _queue;
    std::mutex _mu;
    std::condition_variable _cv;
    bool _stop = false;
};

} // namespace neurometer

#endif // NEUROMETER_EXPLORE_THREAD_POOL_HH
