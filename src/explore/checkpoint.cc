#include "explore/checkpoint.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/io.hh"
#include "obs/events.hh"
#include "obs/manifest.hh"

namespace neurometer {

namespace {

constexpr int kVersion = 1;

/** Exact, locale-free double text ("%a" hex-float). */
std::string
hexFloat(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

} // namespace

/** Render one entry as a single JSONL line (fixed key order). */
std::string
checkpointEntryLine(const CheckpointEntry &e)
{
    const PointMetrics &m = e.metrics;
    std::string s = "{\"key\": " + obs::jsonQuote(e.key);
    s += std::string(", \"failed\": ") + (e.failed ? "true" : "false");
    s += ", \"category\": " +
         obs::jsonQuote(errorCategoryStr(e.error.category));
    s += ", \"site\": " + obs::jsonQuote(e.error.site);
    s += ", \"message\": " + obs::jsonQuote(e.error.message);
    s += std::string(", \"build_ok\": ") + (m.buildOk ? "true" : "false");
    s += ", \"build_error\": " + obs::jsonQuote(m.buildError);
    s += ", \"metrics\": [";
    const double vals[] = {m.peakTops,   m.areaMm2,   m.tdpW,
                           m.topsPerWatt, m.topsPerTco, m.memAreaPct,
                           m.tuAreaPct,  m.nocAreaPct, m.ctrlAreaPct};
    for (std::size_t i = 0; i < std::size(vals); ++i)
        s += (i ? ", " : "") + obs::jsonQuote(hexFloat(vals[i]));
    s += "]}";
    return s;
}

namespace {

/**
 * Strict scanner for the fixed line shapes this file writes. Parsing
 * failures throw ConfigError tagged with the caller's line number.
 */
class LineScanner
{
  public:
    LineScanner(const std::string &line, const std::string &where)
        : _s(line), _where(where)
    {}

    void
    expect(const std::string &lit)
    {
        if (_s.compare(_pos, lit.size(), lit) != 0)
            fail("expected '" + lit + "'");
        _pos += lit.size();
    }

    bool
    boolean()
    {
        if (_s.compare(_pos, 4, "true") == 0) {
            _pos += 4;
            return true;
        }
        if (_s.compare(_pos, 5, "false") == 0) {
            _pos += 5;
            return false;
        }
        fail("expected a boolean");
        return false;
    }

    long
    integer()
    {
        char *end = nullptr;
        const long v = std::strtol(_s.c_str() + _pos, &end, 10);
        if (end == _s.c_str() + _pos)
            fail("expected an integer");
        _pos = std::size_t(end - _s.c_str());
        return v;
    }

    /** JSON string with the escapes obs::jsonQuote produces. */
    std::string
    string()
    {
        if (_pos >= _s.size() || _s[_pos] != '"')
            fail("expected a string");
        ++_pos;
        std::string out;
        while (_pos < _s.size() && _s[_pos] != '"') {
            char c = _s[_pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                fail("truncated escape");
            const char esc = _s[_pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    fail("truncated \\u escape");
                out += char(std::strtol(
                    _s.substr(_pos, 4).c_str(), nullptr, 16));
                _pos += 4;
                break;
              }
              default:
                fail(std::string("unsupported escape '\\") + esc + "'");
            }
        }
        if (_pos >= _s.size())
            fail("unterminated string");
        ++_pos; // closing quote
        return out;
    }

    double
    hexDouble()
    {
        const std::string text = string();
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (!end || *end != '\0' || text.empty())
            fail("bad metric value '" + text + "'");
        return v;
    }

    bool done() const { return _pos == _s.size(); }

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw ConfigError(_where + ": malformed checkpoint: " + why +
                          " at column " + std::to_string(_pos + 1));
    }

  private:
    const std::string &_s;
    std::string _where;
    std::size_t _pos = 0;
};

} // namespace

CheckpointEntry
parseCheckpointEntry(const std::string &line, const std::string &where)
{
    CheckpointEntry e;
    LineScanner sc(line, where);
    sc.expect("{\"key\": ");
    e.key = sc.string();
    sc.expect(", \"failed\": ");
    e.failed = sc.boolean();
    sc.expect(", \"category\": ");
    e.error.category = errorCategoryFromStr(sc.string());
    sc.expect(", \"site\": ");
    e.error.site = sc.string();
    sc.expect(", \"message\": ");
    e.error.message = sc.string();
    sc.expect(", \"build_ok\": ");
    e.metrics.buildOk = sc.boolean();
    sc.expect(", \"build_error\": ");
    e.metrics.buildError = sc.string();
    sc.expect(", \"metrics\": [");
    double *const slots[] = {
        &e.metrics.peakTops,   &e.metrics.areaMm2,
        &e.metrics.tdpW,       &e.metrics.topsPerWatt,
        &e.metrics.topsPerTco, &e.metrics.memAreaPct,
        &e.metrics.tuAreaPct,  &e.metrics.nocAreaPct,
        &e.metrics.ctrlAreaPct};
    for (std::size_t i = 0; i < std::size(slots); ++i) {
        if (i)
            sc.expect(", ");
        *slots[i] = sc.hexDouble();
    }
    sc.expect("]}");
    if (!sc.done())
        sc.fail("trailing characters");
    return e;
}

SweepCheckpoint::SweepCheckpoint(std::string path, std::string baseKey,
                                 std::size_t flushEveryN)
    : _path(std::move(path)), _baseKey(std::move(baseKey)),
      _flushEveryN(flushEveryN == 0 ? 1 : flushEveryN)
{}

void
SweepCheckpoint::add(const CheckpointEntry &entry)
{
    std::lock_guard<std::mutex> lk(_mu);
    _entries.push_back(entry);
    if (++_sinceFlush >= _flushEveryN)
        flushLocked();
}

void
SweepCheckpoint::flush()
{
    std::lock_guard<std::mutex> lk(_mu);
    flushLocked();
}

void
SweepCheckpoint::flushLocked()
{
    std::string out = "{\"neurometer_checkpoint\": " +
                      std::to_string(kVersion) +
                      ", \"base\": " + obs::jsonQuote(_baseKey) + "}\n";
    for (const CheckpointEntry &e : _entries)
        out += checkpointEntryLine(e) + "\n";
    writeFileAtomic(_path, out);
    _sinceFlush = 0;
    obs::recordEvent(obs::EventSeverity::Info, "checkpoint.flush", "",
                     _path + ": " + std::to_string(_entries.size()) +
                         " entries");
}

std::size_t
SweepCheckpoint::size() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _entries.size();
}

void
SweepCheckpoint::seed(const std::vector<CheckpointEntry> &entries)
{
    std::lock_guard<std::mutex> lk(_mu);
    _entries.insert(_entries.end(), entries.begin(), entries.end());
}

std::vector<CheckpointEntry>
SweepCheckpoint::loadEntries(const std::string &path,
                             const std::string &baseKey)
{
    std::vector<CheckpointEntry> out;
    std::ifstream f(path, std::ios::binary);
    if (!f.good())
        return out; // no checkpoint yet: resume from nothing

    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    bool header_seen = false;
    const bool ends_complete = text.empty() || text.back() == '\n';
    while (std::getline(in, line)) {
        ++lineno;
        // A torn final line (no trailing newline) is silently dropped.
        if (in.eof() && !ends_complete)
            break;
        if (line.empty())
            continue;
        const std::string where =
            path + ":" + std::to_string(lineno);
        if (!header_seen) {
            header_seen = true;
            LineScanner sc(line, where);
            sc.expect("{\"neurometer_checkpoint\": ");
            const long version = sc.integer();
            if (version != kVersion)
                sc.fail("unsupported checkpoint version " +
                        std::to_string(version));
            sc.expect(", \"base\": ");
            const std::string base = sc.string();
            sc.expect("}");
            if (base != baseKey) {
                throw ConfigError(
                    where +
                    ": checkpoint was written for a different base "
                    "config; refusing to resume");
            }
            continue;
        }
        out.push_back(parseCheckpointEntry(line, where));
    }
    return out;
}

std::unordered_map<std::string, CheckpointEntry>
SweepCheckpoint::load(const std::string &path, const std::string &baseKey)
{
    std::unordered_map<std::string, CheckpointEntry> out;
    for (CheckpointEntry &e : loadEntries(path, baseKey)) {
        std::string key = e.key;
        out.insert_or_assign(std::move(key), std::move(e));
    }
    return out;
}

} // namespace neurometer
