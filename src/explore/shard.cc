#include "explore/shard.hh"

#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "common/error.hh"
#include "common/hash.hh"
#include "explore/eval_cache.hh"

namespace neurometer {

bool
ShardSpec::owns(std::string_view key) const
{
    if (!active())
        return true;
    return stableHash64(key) % count == index;
}

ShardSpec
ShardSpec::parse(const std::string &text)
{
    const std::size_t slash = text.find('/');
    requireConfig(slash != std::string::npos && slash > 0 &&
                      slash + 1 < text.size(),
                  "--shard expects I/N (e.g. 0/4), got '" + text + "'");
    char *end = nullptr;
    const unsigned long i =
        std::strtoul(text.c_str(), &end, 10);
    requireConfig(end == text.c_str() + slash,
                  "bad shard index in '" + text + "'");
    const unsigned long n =
        std::strtoul(text.c_str() + slash + 1, &end, 10);
    requireConfig(end != nullptr && *end == '\0' && n >= 1,
                  "bad shard count in '" + text + "'");
    requireConfig(i < n, "shard index " + std::to_string(i) +
                             " out of range for " + std::to_string(n) +
                             " shards");
    return ShardSpec{std::size_t(i), std::size_t(n)};
}

std::string
ShardSpec::str() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

std::vector<CheckpointEntry>
mergeCheckpoints(const std::vector<std::string> &paths,
                 const std::string &baseKey, MergeStats *stats)
{
    MergeStats s;
    std::vector<CheckpointEntry> merged;
    /** key -> index into `merged` (first-appearance order). */
    std::unordered_map<std::string, std::size_t> at;
    for (const std::string &path : paths) {
        ++s.files;
        for (CheckpointEntry &e :
             SweepCheckpoint::loadEntries(path, baseKey)) {
            ++s.rows;
            const auto [it, fresh] = at.try_emplace(e.key, merged.size());
            if (fresh) {
                merged.push_back(std::move(e));
                continue;
            }
            ++s.duplicates;
            CheckpointEntry &have = merged[it->second];
            // An ok row always beats a failed one: a retried shard
            // that succeeded supersedes the failure it replaced. Equal
            // status is last-writer-wins in (file, line) order.
            if (have.failed && !e.failed)
                ++s.conflictsResolvedToOk;
            if (e.failed && !have.failed)
                continue;
            have = std::move(e);
        }
    }
    s.unique = merged.size();
    if (stats)
        *stats = s;
    return merged;
}

AssembledRecords
assembleRecords(const SweepGrid &grid, const ChipConfig &base,
                const std::vector<CheckpointEntry> &entries,
                const DesignConstraints &constraints)
{
    constexpr std::size_t kMissingKept = 16;

    std::unordered_map<std::string, const CheckpointEntry *> by_key;
    by_key.reserve(entries.size());
    for (const CheckpointEntry &e : entries)
        by_key.emplace(e.key, &e);

    const GridExpander expander(grid, base);
    AssembledRecords out;
    out.records.reserve(expander.size());
    for (std::size_t k = 0; k < expander.size(); ++k) {
        GridPoint p = expander.at(k);
        const std::string key = configKey(p.config);
        const auto it = by_key.find(key);
        if (it == by_key.end()) {
            ++out.missingCount;
            if (out.missing.size() < kMissingKept)
                out.missing.push_back({k, key});
            continue;
        }
        // Restore exactly the way a resumed sweep does — the record is
        // bit-identical to the one a direct evaluation produced.
        const CheckpointEntry &e = *it->second;
        EvalRecord &r = p.record;
        r.metrics = e.metrics;
        r.status = e.failed ? PointStatus::Failed : PointStatus::Ok;
        r.error = e.error;
        r.why = classify(r.metrics, constraints);
        out.records.push_back(std::move(r));
    }
    return out;
}

} // namespace neurometer
