#include "explore/search.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "explore/checkpoint.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neurometer {

std::uint64_t
SearchRng::next()
{
    // SplitMix64 (Steele/Lea/Flood): tiny, well-mixed, and identical
    // on every platform — unlike std:: distributions.
    _state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = _state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

double
SearchRng::uniform()
{
    return double(next() >> 11) * 0x1.0p-53;
}

std::size_t
SearchRng::below(std::size_t n)
{
    return std::size_t(next() % n);
}

namespace {

double
topsPerMm2Of(const EvalRecord &r)
{
    return r.metrics.areaMm2 > 0.0
               ? r.metrics.peakTops / r.metrics.areaMm2
               : 0.0;
}

struct KnownObjective
{
    const char *name;
    double (*value)(const EvalRecord &);
    bool maximize;
};

const KnownObjective kKnownObjectives[] = {
    {"peak_tops",
     [](const EvalRecord &r) { return r.metrics.peakTops; }, true},
    {"area_mm2",
     [](const EvalRecord &r) { return r.metrics.areaMm2; }, false},
    {"tdp_w", [](const EvalRecord &r) { return r.metrics.tdpW; },
     false},
    {"tops_per_w",
     [](const EvalRecord &r) { return r.metrics.topsPerWatt; }, true},
    {"tops_per_tco",
     [](const EvalRecord &r) { return r.metrics.topsPerTco; }, true},
    {"tops_per_mm2", topsPerMm2Of, true},
};

std::string
knownObjectiveNames()
{
    std::string s;
    for (const KnownObjective &o : kKnownObjectives) {
        if (!s.empty())
            s += ", ";
        s += o.name;
    }
    return s;
}

} // namespace

std::vector<Objective>
searchObjectives()
{
    return {objectiveByName("tops_per_w"),
            objectiveByName("tops_per_mm2")};
}

Objective
objectiveByName(const std::string &spec)
{
    std::string name = spec;
    std::string dir;
    const std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
        name = spec.substr(0, colon);
        dir = spec.substr(colon + 1);
    }
    for (const KnownObjective &o : kKnownObjectives) {
        if (name != o.name)
            continue;
        bool maximize = o.maximize;
        if (!dir.empty()) {
            requireConfig(dir == "max" || dir == "min",
                          "objective '" + spec +
                              "': direction must be :max or :min");
            maximize = dir == "max";
        }
        return {o.name, o.value, maximize};
    }
    requireConfig(false, "unknown objective '" + name + "' (known: " +
                             knownObjectiveNames() + ")");
    return {};
}

std::vector<Objective>
parseObjectives(const std::string &csv)
{
    std::vector<Objective> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t end = csv.find(',', start);
        if (end == std::string::npos)
            end = csv.size();
        std::string tok = csv.substr(start, end - start);
        while (!tok.empty() && tok.front() == ' ')
            tok.erase(tok.begin());
        while (!tok.empty() && tok.back() == ' ')
            tok.pop_back();
        requireConfig(!tok.empty(),
                      "empty objective in list '" + csv + "'");
        out.push_back(objectiveByName(tok));
        start = end + 1;
    }
    requireConfig(!out.empty(), "no objectives given");
    return out;
}

namespace {

// ---- Hypervolume (HSO recursive slicing) --------------------------

double
hvSlice(std::vector<std::vector<double>> pts, std::size_t d)
{
    if (pts.empty())
        return 0.0;
    if (d == 1) {
        double m = 0.0;
        for (const auto &p : pts)
            m = std::max(m, p[0]);
        return m;
    }
    // Slice along the last coordinate: the slab between consecutive
    // heights is dominated (in the remaining dims) by every point at
    // or above its top. stable_sort keeps tie handling — and thus the
    // floating-point summation order — fully deterministic.
    std::stable_sort(pts.begin(), pts.end(),
                     [d](const auto &a, const auto &b) {
                         return a[d - 1] > b[d - 1];
                     });
    double vol = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const double hi = pts[i][d - 1];
        const double lo =
            i + 1 < pts.size() ? pts[i + 1][d - 1] : 0.0;
        if (hi <= lo)
            continue;
        std::vector<std::vector<double>> proj(pts.begin(),
                                              pts.begin() + i + 1);
        for (auto &p : proj)
            p.resize(d - 1);
        vol += (hi - lo) * hvSlice(std::move(proj), d - 1);
    }
    return vol;
}

} // namespace

double
hypervolume(const std::vector<std::vector<double>> &points,
            const std::vector<double> &ref)
{
    if (points.empty() || ref.empty())
        return 0.0;
    std::vector<std::vector<double>> shifted;
    shifted.reserve(points.size());
    for (const auto &p : points) {
        std::vector<double> q(ref.size(), 0.0);
        for (std::size_t d = 0; d < ref.size(); ++d)
            q[d] = std::max(0.0, p[d] - ref[d]);
        shifted.push_back(std::move(q));
    }
    return hvSlice(std::move(shifted), ref.size());
}

// ---- Oracle comparison --------------------------------------------

FrontierComparison
compareFrontiers(const std::vector<EvalRecord> &oracleRecords,
                 const std::vector<std::size_t> &oracleFrontier,
                 const std::vector<EvalRecord> &foundRecords,
                 const std::vector<std::size_t> &foundFrontier,
                 const std::vector<Objective> &objectives, double eps)
{
    auto oriented = [&](const EvalRecord &r) {
        std::vector<double> v;
        v.reserve(objectives.size());
        for (const Objective &o : objectives)
            v.push_back(o.maximize ? o.value(r) : -o.value(r));
        return v;
    };
    std::vector<std::vector<double>> oracle, found;
    for (std::size_t i : oracleFrontier)
        oracle.push_back(oriented(oracleRecords[i]));
    for (std::size_t i : foundFrontier)
        found.push_back(oriented(foundRecords[i]));

    // Relative shortfall of `f` from `o`: the worst per-objective gap
    // below the oracle point, relative to the oracle's magnitude.
    auto shortfall = [&](const std::vector<double> &f,
                         const std::vector<double> &o) {
        double worst = 0.0;
        for (std::size_t d = 0; d < o.size(); ++d) {
            const double denom = std::max(std::abs(o[d]), 1e-12);
            worst = std::max(worst, (o[d] - f[d]) / denom);
        }
        return std::max(0.0, worst);
    };

    FrontierComparison cmp;
    for (const auto &f : found) {
        double nearest = oracle.empty() ? 0.0 : 1e300;
        for (const auto &o : oracle)
            nearest = std::min(nearest, shortfall(f, o));
        cmp.worstShortfall = std::max(cmp.worstShortfall, nearest);
    }
    std::size_t matched = 0;
    for (const auto &o : oracle) {
        for (const auto &f : found) {
            if (shortfall(f, o) <= eps) {
                ++matched;
                break;
            }
        }
    }
    cmp.coverage =
        oracle.empty() ? 0.0 : double(matched) / double(oracle.size());
    cmp.withinEps = !oracle.empty() && !found.empty() &&
                    cmp.worstShortfall <= eps;
    return cmp;
}

// ---- Surrogate ----------------------------------------------------

namespace {

/** One fitted ridge model over the digit-feature vector. */
struct RidgeModel
{
    std::vector<double> w;
    bool ok = false;

    double
    predict(const std::vector<double> &phi) const
    {
        double y = 0.0;
        for (std::size_t i = 0; i < w.size(); ++i)
            y += w[i] * phi[i];
        return y;
    }
};

/**
 * Feature complexity ladder; the fitter picks the richest level the
 * sample count supports (a level needs featureCount + 3 samples).
 */
enum class FeatureLevel { Linear, Quadratic, QuadraticCross };

std::size_t
featureCount(FeatureLevel lvl, std::size_t v)
{
    switch (lvl) {
      case FeatureLevel::Linear:
        return 1 + v;
      case FeatureLevel::Quadratic:
        return 1 + 2 * v;
      case FeatureLevel::QuadraticCross:
        return 1 + 2 * v + v * (v - 1) / 2;
    }
    return 1 + v;
}

std::vector<double>
featurize(const std::vector<std::size_t> &digits,
          const std::vector<std::size_t> &vary,
          const std::vector<std::size_t> &card, FeatureLevel lvl)
{
    std::vector<double> x;
    x.reserve(vary.size());
    for (std::size_t d : vary)
        x.push_back(card[d] > 1
                        ? double(digits[d]) / double(card[d] - 1)
                        : 0.0);
    std::vector<double> phi;
    phi.reserve(featureCount(lvl, x.size()));
    phi.push_back(1.0);
    for (double v : x)
        phi.push_back(v);
    if (lvl != FeatureLevel::Linear)
        for (double v : x)
            phi.push_back(v * v);
    if (lvl == FeatureLevel::QuadraticCross)
        for (std::size_t i = 0; i < x.size(); ++i)
            for (std::size_t j = i + 1; j < x.size(); ++j)
                phi.push_back(x[i] * x[j]);
    return phi;
}

/** Ridge fit by normal equations + Gaussian elimination. */
RidgeModel
fitRidge(const std::vector<std::vector<double>> &phis,
         const std::vector<double> &ys)
{
    RidgeModel m;
    if (phis.empty())
        return m;
    const std::size_t f = phis[0].size();
    if (phis.size() < f + 3)
        return m;
    // A = X'X + lambda I, b = X'y
    std::vector<std::vector<double>> a(f, std::vector<double>(f, 0.0));
    std::vector<double> b(f, 0.0);
    for (std::size_t s = 0; s < phis.size(); ++s) {
        for (std::size_t i = 0; i < f; ++i) {
            b[i] += phis[s][i] * ys[s];
            for (std::size_t j = 0; j < f; ++j)
                a[i][j] += phis[s][i] * phis[s][j];
        }
    }
    double trace = 0.0;
    for (std::size_t i = 0; i < f; ++i)
        trace += a[i][i];
    const double lambda = 1e-6 * (trace / double(f)) + 1e-12;
    for (std::size_t i = 0; i < f; ++i)
        a[i][i] += lambda;
    // Gaussian elimination with partial pivoting.
    std::vector<double> w = b;
    for (std::size_t col = 0; col < f; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r < f; ++r)
            if (std::abs(a[r][col]) > std::abs(a[piv][col]))
                piv = r;
        if (std::abs(a[piv][col]) < 1e-30)
            return m; // singular despite the ridge: give up
        std::swap(a[col], a[piv]);
        std::swap(w[col], w[piv]);
        for (std::size_t r = col + 1; r < f; ++r) {
            const double k = a[r][col] / a[col][col];
            if (k == 0.0)
                continue;
            for (std::size_t c = col; c < f; ++c)
                a[r][c] -= k * a[col][c];
            w[r] -= k * w[col];
        }
    }
    for (std::size_t col = f; col-- > 0;) {
        for (std::size_t c = col + 1; c < f; ++c)
            w[col] -= a[col][c] * w[c];
        w[col] /= a[col][col];
    }
    m.w = std::move(w);
    m.ok = true;
    return m;
}

} // namespace

// ---- Engine -------------------------------------------------------

SearchEngine::SearchEngine(ChipConfig base, SearchOptions opts)
    : _base(std::move(base)), _opts(std::move(opts))
{
    if (_opts.sweep.sharedPool) {
        _pool = _opts.sweep.sharedPool;
    } else {
        _ownedPool = std::make_unique<ThreadPool>(_opts.sweep.threads);
        _pool = _ownedPool.get();
    }
    if (_opts.sweep.sharedCache) {
        _cache = _opts.sweep.sharedCache;
    } else {
        _ownedCache = std::make_unique<EvalCache>();
        _cache = _ownedCache.get();
    }
}

SearchResult
SearchEngine::run(const SweepGrid &grid)
{
    static const obs::Counter runs = obs::counter("search.runs");
    static const obs::Counter rounds_ctr =
        obs::counter("search.rounds");
    static const obs::Counter evals_ctr = obs::counter("search.evals");
    static const obs::Counter cache_hits_ctr =
        obs::counter("search.cache_hits");
    runs.inc();

    const GridExpander ex(grid, _base);
    obs::TraceScope run_span("search.run", ex.size());

    SearchResult res;
    res.stats.gridPoints = ex.size();
    if (ex.size() == 0)
        return res;

    const std::vector<Objective> objs = _opts.objectives.empty()
                                            ? searchObjectives()
                                            : _opts.objectives;

    std::vector<std::size_t> card(ex.dims());
    std::vector<std::size_t> vary;
    for (std::size_t d = 0; d < ex.dims(); ++d) {
        card[d] = ex.cardinality(d);
        if (card[d] > 1)
            vary.push_back(d);
    }

    std::size_t budget =
        _opts.evalBudget
            ? _opts.evalBudget
            : std::max<std::size_t>(16, ex.size() / 10);
    budget = std::min(budget, ex.size());
    // Small batches buy more refit rounds per budget, and a lean seed
    // set leaves the budget to the guided rounds — both measurably
    // improve frontier recovery on the fig08-class grids.
    const std::size_t batch = _opts.batchSize ? _opts.batchSize : 2;
    std::size_t initial =
        _opts.initialSamples
            ? _opts.initialSamples
            : std::max<std::size_t>(vary.size() + 2, budget / 8);
    initial = std::min(initial, budget);

    SearchRng rng(_opts.seed);
    SweepOptions &sw = _opts.sweep;

    // Checkpoint/resume shares the sweep ledger format: entries are
    // keyed by configKey, so a sweep checkpoint warm-starts a search
    // (and vice versa) with no conversion.
    std::unique_ptr<SweepCheckpoint> ckpt;
    std::unordered_map<std::string, CheckpointEntry> loadedCkpt;
    if (!sw.checkpointPath.empty()) {
        const std::string base_key = configKey(_base);
        ckpt = std::make_unique<SweepCheckpoint>(
            sw.checkpointPath, base_key, sw.checkpointEveryN);
        if (sw.resume)
            loadedCkpt =
                SweepCheckpoint::load(sw.checkpointPath, base_key);
    }
    std::unordered_set<std::string> seededKeys;

    std::unordered_set<std::size_t> chosen; // flat indices selected
    std::vector<std::size_t> flat;          // per record, flat index
    std::atomic<std::size_t> computed{0};

    using clock = std::chrono::steady_clock;
    const clock::time_point t0 = clock::now();
    auto reportProgress = [&] {
        if (!sw.onProgress)
            return;
        SweepProgress p;
        p.done = res.records.size();
        p.total = budget;
        p.elapsedS =
            std::chrono::duration<double>(clock::now() - t0).count();
        p.pointsPerS =
            p.elapsedS > 0.0 ? double(p.done) / p.elapsedS : 0.0;
        p.etaS = p.pointsPerS > 0.0
                     ? double(p.total - std::min(p.total, p.done)) /
                           p.pointsPerS
                     : 0.0;
        p.evalCache = _cache->stats();
        p.memoryCache = memoryDesignCache().stats();
        sw.onProgress(p);
    };

    // Evaluate one batch of flat indices in parallel; records land in
    // selection order. Checkpoint-restored points skip evaluation and
    // still consume budget — a resumed run replays the identical
    // trajectory, it just pays for fewer points.
    auto evaluateBatch = [&](const std::vector<std::size_t> &ks) {
        if (ks.empty())
            return;
        obs::TraceScope round_span("search.round", ks.size());
        const std::size_t base_i = res.records.size();
        res.records.resize(base_i + ks.size());
        std::vector<ChipConfig> cfgs(ks.size());
        std::vector<char> restored(ks.size(), 0);
        for (std::size_t j = 0; j < ks.size(); ++j) {
            flat.push_back(ks[j]);
            GridPoint p = ex.at(ks[j]);
            res.records[base_i + j] = std::move(p.record);
            cfgs[j] = std::move(p.config);
        }
        std::vector<std::string> keys;
        if (ckpt) {
            keys.resize(ks.size());
            std::vector<CheckpointEntry> seeds;
            for (std::size_t j = 0; j < ks.size(); ++j) {
                keys[j] = configKey(cfgs[j]);
                const auto it = loadedCkpt.find(keys[j]);
                if (it == loadedCkpt.end())
                    continue;
                EvalRecord &r = res.records[base_i + j];
                const CheckpointEntry &e = it->second;
                r.metrics = e.metrics;
                r.status = e.failed ? PointStatus::Failed
                                    : PointStatus::Ok;
                r.error = e.error;
                r.why = classify(r.metrics, sw.constraints);
                restored[j] = 1;
                ++res.stats.restored;
                if (seededKeys.insert(keys[j]).second)
                    seeds.push_back(e);
            }
            if (!seeds.empty())
                ckpt->seed(seeds);
        }
        const CacheStats before = _cache->stats();
        _pool->parallelFor(
            ks.size(),
            [&](std::size_t j) {
                if (restored[j])
                    return;
                EvalRecord &r = res.records[base_i + j];
                obs::TraceScope span("search.point", ks[j]);
                const auto p0 = std::chrono::steady_clock::now();
                try {
                    r.metrics = _cache->evaluate(cfgs[j]);
                    r.why = classify(r.metrics, sw.constraints);
                    r.status = PointStatus::Ok;
                } catch (...) {
                    r.metrics = PointMetrics{};
                    r.why = classify(r.metrics, sw.constraints);
                    r.status = PointStatus::Failed;
                    r.error = captureCurrentException("search.eval");
                    obs::recordEvent(obs::EventSeverity::Error,
                                     "search.point_failed",
                                     sw.requestId,
                                     pointLabel(r) + ": " +
                                         r.error.message);
                }
                const double point_s =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - p0)
                        .count();
                if (obs::recordSlowOp("search.point", pointLabel(r),
                                      point_s, sw.requestId) == 0) {
                    obs::recordEvent(obs::EventSeverity::Info,
                                     "search.slow_point", sw.requestId,
                                     pointLabel(r));
                }
                evals_ctr.inc();
                if (ckpt)
                    ckpt->add({keys[j],
                               r.status == PointStatus::Failed,
                               r.error, r.metrics});
                const std::size_t ev = computed.fetch_add(1) + 1;
                if (sw.cancelAfterPoints != 0 &&
                    ev >= sw.cancelAfterPoints)
                    sw.cancel.requestCancel();
            },
            &sw.cancel);
        const CacheStats after = _cache->stats();
        res.stats.cacheHits += after.hits - before.hits;
        cache_hits_ctr.inc(after.hits - before.hits);
        // Points a cancelled batch never reached are not results.
        for (std::size_t j = ks.size(); j-- > 0;) {
            if (res.records[base_i + j].status ==
                PointStatus::NotEvaluated) {
                res.records.erase(res.records.begin() + (base_i + j));
                flat.erase(flat.begin() + (base_i + j));
            }
        }
        ++res.stats.rounds;
        rounds_ctr.inc();
        reportProgress();
    };

    auto randomDigits = [&] {
        std::vector<std::size_t> d(ex.dims(), 0);
        for (std::size_t v : vary)
            d[v] = rng.below(card[v]);
        return d;
    };

    // ---- Round 0: deterministic Latin-hypercube seeding ----------
    {
        std::vector<std::size_t> seedPoints;
        if (initial > 0) {
            // One stratum per sample per varying dim, independently
            // shuffled, with jitter inside each stratum.
            std::vector<std::vector<std::size_t>> perms(vary.size());
            for (auto &perm : perms) {
                perm.resize(initial);
                for (std::size_t i = 0; i < initial; ++i)
                    perm[i] = i;
                for (std::size_t i = initial; i-- > 1;)
                    std::swap(perm[i], perm[rng.below(i + 1)]);
            }
            for (std::size_t i = 0; i < initial; ++i) {
                std::vector<std::size_t> d(ex.dims(), 0);
                for (std::size_t j = 0; j < vary.size(); ++j) {
                    const std::size_t c = card[vary[j]];
                    const double pos =
                        (double(perms[j][i]) + rng.uniform()) /
                        double(initial);
                    d[vary[j]] = std::min(
                        c - 1, std::size_t(pos * double(c)));
                }
                const std::size_t k = ex.indexOf(d);
                if (chosen.insert(k).second)
                    seedPoints.push_back(k);
            }
            // Coarse axes collapse strata onto the same digit; top
            // the sample back up with random fresh points.
            std::size_t attempts = 0;
            while (seedPoints.size() < initial &&
                   chosen.size() < ex.size() &&
                   attempts++ < 100 * initial) {
                const std::size_t k = ex.indexOf(randomDigits());
                if (chosen.insert(k).second)
                    seedPoints.push_back(k);
            }
        }
        evaluateBatch(seedPoints);
    }

    // ---- Propose/evaluate/refit rounds ----------------------------
    auto orientedOf = [&](const EvalRecord &r) {
        std::vector<double> v;
        v.reserve(objs.size());
        for (const Objective &o : objs)
            v.push_back(o.maximize ? o.value(r) : -o.value(r));
        return v;
    };

    std::vector<double> hvRef; // fixed once the first frontier lands
    double prevHv = 0.0;
    bool havePrev = false;
    std::size_t stagnant = 0;

    for (;;) {
        res.frontier = paretoFrontier(res.records, objs);
        double hv = 0.0;
        if (!res.frontier.empty()) {
            std::vector<std::vector<double>> pts;
            pts.reserve(res.frontier.size());
            for (std::size_t i : res.frontier)
                pts.push_back(orientedOf(res.records[i]));
            if (hvRef.empty()) {
                hvRef.assign(objs.size(), 0.0);
                for (std::size_t d = 0; d < objs.size(); ++d) {
                    double lo = pts[0][d];
                    for (const auto &p : pts)
                        lo = std::min(lo, p[d]);
                    hvRef[d] =
                        lo - (1e-9 + 1e-9 * std::abs(lo));
                }
            }
            hv = hypervolume(pts, hvRef);
        }
        res.stats.hypervolume = hv;
        if (res.frontier.empty()) {
            // Nothing feasible yet: keep exploring on the budget.
            havePrev = false;
            stagnant = 0;
        } else {
            if (havePrev) {
                const double rel =
                    (hv - prevHv) /
                    std::max(std::abs(prevHv), 1e-12);
                if (rel > _opts.stagnationEps)
                    stagnant = 0;
                else
                    ++stagnant;
            }
            prevHv = hv;
            havePrev = true;
        }

        if (sw.cancel.cancelled()) {
            res.stats.cancelled = true;
            obs::recordEvent(obs::EventSeverity::Warn,
                             "search.cancelled", sw.requestId,
                             std::to_string(res.records.size()) +
                                 " points evaluated before cancel");
            break;
        }
        // Space beats budget when both hold: "every grid point was
        // evaluated" is the more informative cause than "the budget
        // (clamped to the grid) ran out".
        if (chosen.size() >= ex.size()) {
            res.stats.spaceExhausted = true;
            break;
        }
        if (res.records.size() >= budget) {
            res.stats.budgetExhausted = true;
            break;
        }
        if (_opts.stagnantRounds != 0 &&
            stagnant >= _opts.stagnantRounds) {
            res.stats.stagnated = true;
            break;
        }

        // Refit the surrogate on everything evaluated so far.
        std::vector<std::size_t> train;
        for (std::size_t i = 0; i < res.records.size(); ++i)
            if (res.records[i].status == PointStatus::Ok &&
                res.records[i].metrics.buildOk)
                train.push_back(i);
        FeatureLevel lvl = FeatureLevel::Linear;
        for (FeatureLevel cand :
             {FeatureLevel::QuadraticCross, FeatureLevel::Quadratic,
              FeatureLevel::Linear}) {
            if (train.size() >=
                featureCount(cand, vary.size()) + 3) {
                lvl = cand;
                break;
            }
        }
        std::vector<std::vector<double>> trainPhi;
        trainPhi.reserve(train.size());
        for (std::size_t i : train)
            trainPhi.push_back(
                featurize(ex.digitsOf(flat[i]), vary, card, lvl));
        std::vector<RidgeModel> models(objs.size());
        std::vector<double> normLo(objs.size(), 0.0),
            normHi(objs.size(), 1.0);
        bool surrogateOk = !train.empty();
        for (std::size_t d = 0; d < objs.size(); ++d) {
            // Oriented values, plus the feasible range: raw metrics
            // often keep improving into infeasible territory (bigger
            // chips have better TOPS/mm^2 right past the area cap),
            // so infeasible training targets are floored slightly
            // below the worst feasible value. The fitted surface then
            // peaks near the constraint boundary — where the real
            // frontier lives — instead of outside it.
            std::vector<double> ys;
            ys.reserve(train.size());
            double lo = 0.0, hi = 0.0, feasLo = 0.0, feasHi = 0.0;
            bool first = true, feasFirst = true;
            for (std::size_t t : train) {
                const EvalRecord &r = res.records[t];
                const double y = objs[d].maximize
                                     ? objs[d].value(r)
                                     : -objs[d].value(r);
                ys.push_back(y);
                if (first) {
                    lo = hi = y;
                    first = false;
                } else {
                    lo = std::min(lo, y);
                    hi = std::max(hi, y);
                }
                if (r.feasible()) {
                    if (feasFirst) {
                        feasLo = feasHi = y;
                        feasFirst = false;
                    } else {
                        feasLo = std::min(feasLo, y);
                        feasHi = std::max(feasHi, y);
                    }
                }
            }
            if (!feasFirst) {
                const double penalty =
                    feasLo - 0.1 * (feasHi - feasLo + 1e-12);
                for (std::size_t t = 0; t < train.size(); ++t)
                    if (!res.records[train[t]].feasible())
                        ys[t] = std::min(ys[t], penalty);
                lo = feasLo;
                hi = feasHi;
            }
            models[d] = fitRidge(trainPhi, ys);
            if (!models[d].ok)
                surrogateOk = false;
            normLo[d] = lo;
            normHi[d] = hi > lo ? hi : lo + 1.0;
        }
        // Feasibility classifier: the surrogate's scores are damped
        // by the predicted probability that a candidate is feasible.
        RidgeModel feasModel;
        {
            std::vector<double> ys;
            ys.reserve(train.size());
            for (std::size_t i : train)
                ys.push_back(res.records[i].feasible() ? 1.0 : 0.0);
            feasModel = fitRidge(trainPhi, ys);
        }

        // Propose a candidate pool: evolutionary moves on frontier
        // members plus an annealing-style exploration walk whose
        // temperature decays with the round count.
        const double temp = std::max(
            0.05, std::exp(-double(res.stats.rounds) / 4.0));
        const std::size_t poolTarget = batch * 8;
        std::vector<std::size_t> pool;
        std::unordered_set<std::size_t> inPool;
        // Pattern-search move: every +/-1 axis neighbor of every
        // frontier member enters the pool deterministically. Ranked
        // by the surrogate they cost nothing when unpromising, and
        // they guarantee the frontier can always take the one grid
        // step an evolutionary draw might keep missing.
        auto tryStep = [&](std::vector<std::size_t> d,
                           std::size_t v, int step) -> bool {
            if (step < 0 ? d[v] == 0 : d[v] + 1 >= card[v])
                return false;
            d[v] += step;
            const std::size_t k = ex.indexOf(d);
            if (!chosen.count(k) && inPool.insert(k).second)
                pool.push_back(k);
            return true;
        };
        for (std::size_t p : res.frontier) {
            const std::vector<std::size_t> base_d =
                ex.digitsOf(flat[p]);
            for (std::size_t v : vary)
                for (int step : {-1, 1})
                    tryStep(base_d, v, step);
            // Diagonal two-axis steps too — but only opposite-sign
            // pairs: the frontier often rides a constraint boundary,
            // where the improving move trades one axis up against
            // another down (same-sign diagonals either blow the
            // constraint or are plain dominated, and they double the
            // poll set the budget has to chew through).
            for (std::size_t a = 0; a < vary.size(); ++a) {
                for (std::size_t b = a + 1; b < vary.size(); ++b) {
                    for (int sa : {-1, 1}) {
                        for (int sb : {-sa}) {
                            std::vector<std::size_t> d = base_d;
                            if (sa < 0 ? d[vary[a]] == 0
                                       : d[vary[a]] + 1 >=
                                             card[vary[a]])
                                continue;
                            d[vary[a]] += sa;
                            tryStep(d, vary[b], sb);
                        }
                    }
                }
            }
        }
        // Everything in the pool so far is a pattern move; entries
        // appended below are evolutionary/annealing proposals.
        const std::size_t patternCount = pool.size();
        std::size_t attempts = 0;
        while (pool.size() < poolTarget &&
               attempts++ < poolTarget * 25) {
            std::vector<std::size_t> d;
            const double r = rng.uniform();
            if (res.frontier.empty() || r < 0.15) {
                d = randomDigits();
            } else if (r < 0.6 || res.frontier.size() < 2) {
                // Mutation: nudge or redraw one or two axes of a
                // frontier member (two-axis moves reach the diagonal
                // neighbors single steps can't).
                const std::size_t p =
                    res.frontier[rng.below(res.frontier.size())];
                d = ex.digitsOf(flat[p]);
                const std::size_t nmut =
                    vary.size() > 1 && rng.uniform() < 0.35 ? 2 : 1;
                for (std::size_t m = 0; m < nmut; ++m) {
                    const std::size_t dim =
                        vary[rng.below(vary.size())];
                    if (rng.uniform() < 0.7) {
                        const bool up = rng.uniform() < 0.5;
                        if (up && d[dim] + 1 < card[dim])
                            ++d[dim];
                        else if (!up && d[dim] > 0)
                            --d[dim];
                        else
                            d[dim] = rng.below(card[dim]);
                    } else {
                        d[dim] = rng.below(card[dim]);
                    }
                }
            } else if (r < 0.8) {
                // Crossover of two frontier parents, axis by axis.
                const std::size_t pa =
                    res.frontier[rng.below(res.frontier.size())];
                const std::size_t pb =
                    res.frontier[rng.below(res.frontier.size())];
                const auto da = ex.digitsOf(flat[pa]);
                const auto db = ex.digitsOf(flat[pb]);
                d.assign(ex.dims(), 0);
                for (std::size_t v : vary)
                    d[v] = rng.uniform() < 0.5 ? da[v] : db[v];
            } else {
                // Annealing walk: redraw each axis with prob `temp`.
                const std::size_t p =
                    res.frontier[rng.below(res.frontier.size())];
                d = ex.digitsOf(flat[p]);
                for (std::size_t v : vary)
                    if (rng.uniform() < temp)
                        d[v] = rng.below(card[v]);
            }
            const std::size_t k = ex.indexOf(d);
            if (chosen.count(k) || !inPool.insert(k).second)
                continue;
            pool.push_back(k);
        }
        if (pool.empty()) {
            res.stats.spaceExhausted = true;
            break;
        }

        // Normalized surrogate predictions, one row per candidate,
        // plus the predicted feasibility probability. The axes are
        // typically power-of-two ladders, so a product constraint
        // like N*tx*ty <= cap is *linear* in digit space — the ridge
        // classifier separates the feasible region far better than
        // the quadratic objective surface can represent its cliff.
        std::vector<std::vector<double>> predNorm(pool.size());
        std::vector<double> feasProb(pool.size(), 1.0);
        if (surrogateOk) {
            for (std::size_t c = 0; c < pool.size(); ++c) {
                const std::vector<double> phi = featurize(
                    ex.digitsOf(pool[c]), vary, card, lvl);
                predNorm[c].reserve(objs.size());
                for (std::size_t d = 0; d < objs.size(); ++d)
                    predNorm[c].push_back(
                        (models[d].predict(phi) - normLo[d]) /
                        (normHi[d] - normLo[d]));
                if (feasModel.ok)
                    feasProb[c] = std::clamp(
                        feasModel.predict(phi), 0.05, 1.0);
            }
        }

        // One random scalarization per batch slot (not per
        // candidate): each slot draws a weighting over the
        // objectives and takes the pool's argmax under it. The batch
        // spreads across the frontier through the weight draws while
        // each individual pick stays a pure, noise-free exploit.
        const std::size_t m = std::min(
            {batch, budget - res.records.size(), pool.size()});
        // Half of each batch (rounded up) is reserved for pattern
        // moves: the surrogate ranks them against each other, but
        // they never have to out-predict an extrapolation spike from
        // the evolutionary pool. Local frontier steps therefore get
        // evaluated on merit, which is what lets the search walk the
        // last few grid steps onto a needle optimum.
        const std::size_t reservePattern =
            std::min(patternCount, (m + 1) / 2);
        std::vector<std::size_t> sel;
        sel.reserve(m);
        std::unordered_set<std::size_t> inSel;
        for (std::size_t slot = 0; slot < m; ++slot) {
            const std::size_t limit =
                slot < reservePattern ? patternCount : pool.size();
            std::size_t best = pool.size();
            if (!surrogateOk) {
                // Not enough data to fit yet: explore at random.
                std::size_t tries = 0;
                do {
                    best = rng.below(limit);
                } while (inSel.count(pool[best]) &&
                         ++tries < 10 * pool.size());
                if (inSel.count(pool[best]))
                    break;
            } else {
                std::vector<double> w(objs.size());
                double wsum = 0.0;
                for (double &wd : w) {
                    wd = -std::log(
                        1.0 - rng.uniform() * (1.0 - 1e-12));
                    wsum += wd;
                }
                double bestScore = 0.0;
                for (std::size_t c = 0; c < limit; ++c) {
                    if (inSel.count(pool[c]))
                        continue;
                    double s = 0.0;
                    for (std::size_t d = 0; d < objs.size(); ++d)
                        s += w[d] * predNorm[c][d];
                    s /= wsum;
                    // Constrained acquisition: damp the score by the
                    // feasibility probability (boost the penalty when
                    // the score is already negative).
                    s = s >= 0.0 ? s * feasProb[c] : s / feasProb[c];
                    if (best == pool.size() || s > bestScore ||
                        (s == bestScore && pool[c] < pool[best])) {
                        best = c;
                        bestScore = s;
                    }
                }
                if (best == pool.size())
                    break;
            }
            sel.push_back(pool[best]);
            inSel.insert(pool[best]);
            chosen.insert(pool[best]);
        }
        evaluateBatch(sel);
    }

    if (ckpt)
        ckpt->flush();

    res.stats.selected = res.records.size();
    res.stats.computed = computed.load();
    for (const EvalRecord &r : res.records)
        if (r.status == PointStatus::Failed)
            ++res.stats.failed;
    return res;
}

} // namespace neurometer
