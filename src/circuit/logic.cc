#include "circuit/logic.hh"

#include "circuit/fit.hh"
#include "common/error.hh"

namespace neurometer {

PAT
logicPAT(const TechNode &tech, const LogicBlock &blk, double ops_per_s,
         double duty)
{
    requireModel(blk.gates >= 0.0, "negative gate count");
    requireModel(ops_per_s >= 0.0 && duty >= 0.0, "negative op rate");

    PAT pat;
    pat.areaUm2 =
        blk.gates * tech.nand2AreaUm2() * fit::datapathLayoutOverhead;
    pat.power.dynamicW = blk.gates * blk.activity * tech.nand2EnergyJ() *
                         ops_per_s * duty;
    pat.power.leakageW = blk.gates * tech.nand2LeakW();
    pat.timing.delayS = blk.depthFo4 * tech.fo4S();
    pat.timing.cycleS = pat.timing.delayS + tech.dffDelayS();
    return pat;
}

PAT
registersPAT(const TechNode &tech, double bits, double freq_hz, double toggle,
             double clock_gate_duty)
{
    requireModel(bits >= 0.0, "negative register bits");

    PAT pat;
    pat.areaUm2 = bits * tech.dffAreaUm2() * fit::registerLayoutOverhead;
    // Clock pin switches every (ungated) cycle; data side by `toggle`.
    pat.power.dynamicW = bits * tech.dffEnergyJ() * freq_hz *
                         clock_gate_duty * (0.4 + 0.6 * toggle);
    pat.power.leakageW = bits * tech.dffLeakW();
    pat.timing.delayS = tech.dffDelayS();
    pat.timing.cycleS = tech.dffDelayS();
    return pat;
}

} // namespace neurometer
