/**
 * @file
 * Empirical fit constants for the datapath models.
 *
 * The paper builds its complex-logic (MAC, ALU) models by curve-fitting
 * Design Compiler synthesis of Berkeley HardFloat RTL against FreePDK
 * backends. The EDA flow is not reproducible offline, so the same
 * functional forms are used here with the constants below, fitted so the
 * chip-level validations (TPU-v1/v2, Eyeriss — benches fig03/04/05) land
 * inside the paper's stated error bands. Tuning happens ONLY in this file.
 */

#ifndef NEUROMETER_CIRCUIT_FIT_HH
#define NEUROMETER_CIRCUIT_FIT_HH

namespace neurometer {
namespace fit {

/** Placement/routing area overhead over raw gate area for datapaths. */
constexpr double datapathLayoutOverhead = 1.85;

/** Same for register/flop groups (denser, more regular). */
constexpr double registerLayoutOverhead = 1.30;

/** NAND2-equivalents per full adder (mirror adder + carry logic). */
constexpr double gatesPerFullAdder = 4.5;

/** Array multiplier: gates = multQuad*n^2 + multLin*n. */
constexpr double multQuad = 8.0;
constexpr double multLin = 20.0;

/** Fast adder gates per bit (Kogge-Stone-class prefix adder). */
constexpr double addGatesPerBit = 9.0;

/** FP adder: gates = fpAddMant*m*log2(m) + fpAddExp*e + fpAddBase. */
constexpr double fpAddMant = 22.0;
constexpr double fpAddExp = 15.0;
constexpr double fpAddBase = 200.0;

/** FP multiplier additions on top of the mantissa array multiplier. */
constexpr double fpMulExp = 25.0;
constexpr double fpMulBase = 60.0;

/** Average switching activity per gate per operation. */
constexpr double actIntMult = 0.85;
constexpr double actIntAdd = 0.50;
constexpr double actFp = 0.55;

/** Logic depth coefficients, in FO4. */
constexpr double multDepthLog = 4.0;  // * log2(n)
constexpr double multDepthBase = 10.0;
constexpr double addDepthLog = 2.0;
constexpr double addDepthBase = 6.0;
constexpr double fpDepthBase = 30.0;

/**
 * SRAM array periphery fit (memory/sram_array.cc): sense-amp gates per
 * column group, decoder gates per row, and the outside-mat layout
 * inefficiency (routing channels, power grid) applied at bank level.
 */
constexpr double senseAmpGates = 14.0;
constexpr double rowDriverGates = 3.0;
constexpr double bankLayoutOverhead = 1.35;

/** Multi-port SRAM/RF cell linear dimension growth per extra port. */
constexpr double portCellGrowth = 0.40;

} // namespace fit
} // namespace neurometer

#endif // NEUROMETER_CIRCUIT_FIT_HH
