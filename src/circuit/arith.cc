#include "circuit/arith.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "circuit/fit.hh"
#include "common/error.hh"

namespace neurometer {

int
dataTypeBits(DataType t)
{
    switch (t) {
      case DataType::Int8: return 8;
      case DataType::Int16: return 16;
      case DataType::Int32: return 32;
      case DataType::BF16: return 16;
      case DataType::FP16: return 16;
      case DataType::FP32: return 32;
    }
    throw ModelError("unknown data type");
}

int
dataTypeMantissa(DataType t)
{
    switch (t) {
      case DataType::Int8: return 8;
      case DataType::Int16: return 16;
      case DataType::Int32: return 32;
      case DataType::BF16: return 8;   // 7 stored + hidden bit
      case DataType::FP16: return 11;  // 10 stored + hidden bit
      case DataType::FP32: return 24;  // 23 stored + hidden bit
    }
    throw ModelError("unknown data type");
}

int
dataTypeExponent(DataType t)
{
    switch (t) {
      case DataType::Int8:
      case DataType::Int16:
      case DataType::Int32:
        return 0;
      case DataType::BF16: return 8;
      case DataType::FP16: return 5;
      case DataType::FP32: return 8;
    }
    throw ModelError("unknown data type");
}

bool
isFloat(DataType t)
{
    return dataTypeExponent(t) > 0;
}

std::string
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::Int8: return "int8";
      case DataType::Int16: return "int16";
      case DataType::Int32: return "int32";
      case DataType::BF16: return "bf16";
      case DataType::FP16: return "fp16";
      case DataType::FP32: return "fp32";
    }
    throw ModelError("unknown data type");
}

DataType
dataTypeFromName(const std::string &name)
{
    std::string s;
    for (char c : name)
        s.push_back(static_cast<char>(std::tolower(c)));
    if (s == "int8") return DataType::Int8;
    if (s == "int16") return DataType::Int16;
    if (s == "int32") return DataType::Int32;
    if (s == "bf16") return DataType::BF16;
    if (s == "fp16") return DataType::FP16;
    if (s == "fp32") return DataType::FP32;
    throw ConfigError("unknown data type name: " + name);
}

DataType
defaultAccumType(DataType mul)
{
    switch (mul) {
      case DataType::Int8: return DataType::Int32;
      case DataType::Int16: return DataType::Int32;
      case DataType::Int32: return DataType::Int32;
      case DataType::BF16: return DataType::FP32;
      case DataType::FP16: return DataType::FP32;
      case DataType::FP32: return DataType::FP32;
    }
    throw ModelError("unknown data type");
}

namespace {

double
log2d(double x)
{
    return std::log2(std::max(2.0, x));
}

} // namespace

LogicBlock
multiplierBlock(DataType t)
{
    const double m = dataTypeMantissa(t);
    LogicBlock blk;
    blk.gates = fit::multQuad * m * m + fit::multLin * m;
    blk.depthFo4 = fit::multDepthLog * log2d(m) + fit::multDepthBase;
    blk.activity = isFloat(t) ? fit::actFp : fit::actIntMult;
    if (isFloat(t)) {
        blk.gates += fit::fpMulExp * dataTypeExponent(t) + fit::fpMulBase;
        blk.depthFo4 += 4.0;
    }
    return blk;
}

LogicBlock
adderBlock(DataType t)
{
    LogicBlock blk;
    if (isFloat(t)) {
        const double m = dataTypeMantissa(t);
        const double e = dataTypeExponent(t);
        blk.gates = fit::fpAddMant * m * log2d(m) + fit::fpAddExp * e +
                    fit::fpAddBase;
        blk.depthFo4 = fit::fpDepthBase;
        blk.activity = fit::actFp;
    } else {
        const double n = dataTypeBits(t);
        blk.gates = fit::addGatesPerBit * n;
        blk.depthFo4 = fit::addDepthLog * log2d(n) + fit::addDepthBase;
        blk.activity = fit::actIntAdd;
    }
    return blk;
}

LogicBlock
macBlock(DataType mul, DataType acc)
{
    LogicBlock blk = multiplierBlock(mul);
    blk += adderBlock(acc);
    return blk;
}

LogicBlock
aluBlock(int bits)
{
    requireConfig(bits > 0, "ALU width must be positive");
    LogicBlock blk;
    // Prefix adder + logic unit + barrel shifter + result mux.
    const double n = bits;
    blk.gates = fit::addGatesPerBit * n + 4.0 * n +
                3.0 * n * log2d(n) + 2.0 * n;
    blk.depthFo4 = fit::addDepthLog * log2d(n) + fit::addDepthBase + 4.0;
    blk.activity = 0.30;
    return blk;
}

LogicBlock
vectorLaneBlock(DataType t)
{
    LogicBlock blk = multiplierBlock(t);
    blk += adderBlock(defaultAccumType(t));
    // Comparator (max-pool) + piecewise-linear activation lookup.
    const double n = dataTypeBits(t);
    LogicBlock aux;
    aux.gates = 6.0 * n + 10.0 * n; // compare + LUT/interp
    aux.depthFo4 = 8.0;
    aux.activity = 0.25;
    blk += aux;
    return blk;
}

} // namespace neurometer
