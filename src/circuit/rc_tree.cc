#include "circuit/rc_tree.hh"

#include <algorithm>

#include "common/error.hh"

namespace neurometer {

RCTree::RCTree(double root_r_ohm, double root_c_f)
{
    _parent.push_back(-1);
    _r.push_back(root_r_ohm);
    _c.push_back(root_c_f);
}

int
RCTree::addNode(int parent, double r_ohm, double c_f)
{
    requireModel(parent >= 0 && parent < numNodes(),
                 "RCTree parent out of range");
    requireModel(r_ohm >= 0.0 && c_f >= 0.0, "negative RC element");
    _parent.push_back(parent);
    _r.push_back(r_ohm);
    _c.push_back(c_f);
    return numNodes() - 1;
}

void
RCTree::addCap(int node, double c_f)
{
    requireModel(node >= 0 && node < numNodes(), "RCTree node out of range");
    _c[node] += c_f;
}

std::vector<double>
RCTree::subtreeCaps() const
{
    // Children always have larger indices than their parent, so a
    // reverse sweep accumulates subtree capacitance in one pass.
    std::vector<double> sub(_c);
    for (int n = numNodes() - 1; n > 0; --n)
        sub[_parent[n]] += sub[n];
    return sub;
}

double
RCTree::elmoreDelayS(int node) const
{
    requireModel(node >= 0 && node < numNodes(), "RCTree node out of range");
    const std::vector<double> sub = subtreeCaps();
    // delay(sink) = sum over edges on the root->sink path of
    // R_edge * C_subtree(edge). The root's own R (the driver) sees the
    // whole tree.
    double delay = 0.0;
    for (int n = node; n != -1; n = _parent[n])
        delay += _r[n] * sub[n];
    return delay;
}

double
RCTree::criticalDelayS() const
{
    const std::vector<double> sub = subtreeCaps();
    double worst = 0.0;
    for (int node = 0; node < numNodes(); ++node) {
        double delay = 0.0;
        for (int n = node; n != -1; n = _parent[n])
            delay += _r[n] * sub[n];
        worst = std::max(worst, delay);
    }
    return worst;
}

double
RCTree::totalCapF() const
{
    double c = 0.0;
    for (double ci : _c)
        c += ci;
    return c;
}

} // namespace neurometer
