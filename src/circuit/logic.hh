/**
 * @file
 * Gate-level currency: every regular logic structure reduces to a count
 * of NAND2-equivalents plus a logic depth, which this file converts into
 * power/area/timing at a technology node.
 */

#ifndef NEUROMETER_CIRCUIT_LOGIC_HH
#define NEUROMETER_CIRCUIT_LOGIC_HH

#include "common/pat.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** An abstract logic block: gate count, depth, and toggle activity. */
struct LogicBlock
{
    double gates = 0.0;     ///< NAND2-equivalents
    double depthFo4 = 1.0;  ///< critical path in FO4 units
    double activity = 0.4;  ///< avg toggles per gate per operation

    LogicBlock &
    operator+=(const LogicBlock &o)
    {
        // Series composition: depths add, activity averages by gates.
        const double g = gates + o.gates;
        if (g > 0.0)
            activity = (activity * gates + o.activity * o.gates) / g;
        gates = g;
        depthFo4 += o.depthFo4;
        return *this;
    }
};

/**
 * Evaluate a logic block at an operating point.
 *
 * @param ops_per_s operations issued per second (freq * issue rate)
 * @param duty      fraction of ops that actually toggle the block
 */
PAT logicPAT(const TechNode &tech, const LogicBlock &blk, double ops_per_s,
             double duty = 1.0);

/**
 * A bank of flip-flops (pipeline registers, small buffers).
 *
 * @param toggle fraction of bits changing per clock (data activity);
 *               clock pin energy is charged every cycle regardless.
 */
PAT registersPAT(const TechNode &tech, double bits, double freq_hz,
                 double toggle = 0.5, double clock_gate_duty = 1.0);

} // namespace neurometer

#endif // NEUROMETER_CIRCUIT_LOGIC_HH
