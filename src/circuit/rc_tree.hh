/**
 * @file
 * Generic RC tree with Elmore delay evaluation.
 *
 * Used where the wire topology is not a simple point-to-point route —
 * most prominently the multicast (X/Y-bus) inner-TU interconnect, where
 * one FIFO driver feeds a pi-RC segment chain with a systolic-cell load
 * hanging off every segment (paper Fig. 2(d)).
 */

#ifndef NEUROMETER_CIRCUIT_RC_TREE_HH
#define NEUROMETER_CIRCUIT_RC_TREE_HH

#include <vector>

namespace neurometer {

/**
 * An RC tree rooted at a driver. Node 0 is the root (the driver's output
 * node, carrying the driver resistance from the ideal source).
 */
class RCTree
{
  public:
    /** Create the tree with a root node. */
    RCTree(double root_r_ohm, double root_c_f);

    /**
     * Add a node connected to @p parent through resistance @p r_ohm,
     * with grounded capacitance @p c_f.
     *
     * @returns the new node's index.
     */
    int addNode(int parent, double r_ohm, double c_f);

    /** Add extra grounded capacitance to an existing node. */
    void addCap(int node, double c_f);

    int numNodes() const { return static_cast<int>(_parent.size()); }

    /**
     * Elmore delay from the ideal source to @p node:
     *   sum over nodes k of C_k * R(path(root->node) intersect
     *   path(root->k)).
     */
    double elmoreDelayS(int node) const;

    /** Max Elmore delay over all nodes (the critical sink). */
    double criticalDelayS() const;

    /** Total capacitance (for switching-energy estimates). */
    double totalCapF() const;

  private:
    std::vector<int> _parent;   // -1 for root
    std::vector<double> _r;     // resistance from parent (driver R at root)
    std::vector<double> _c;     // grounded cap at node

    /** Capacitance of each node's subtree (one reverse sweep). */
    std::vector<double> subtreeCaps() const;
};

} // namespace neurometer

#endif // NEUROMETER_CIRCUIT_RC_TREE_HH
