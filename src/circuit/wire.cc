#include "circuit/wire.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace neurometer {

namespace {

// Elmore coefficients for a step input through a distributed line.
constexpr double kLumped = 0.69;
constexpr double kDistributed = 0.38;

// Repeaters are sized a fixed multiple of the unit driver; sweeping the
// size adds little accuracy at this abstraction level.
constexpr double repeaterSizing = 24.0;

} // namespace

double
WireModel::unitDriverROhm() const
{
    // Effective drive resistance of a ~4x-min inverter.
    return _tech.rOnOhmUm() / (4.0 * 3.0 * _tech.nodeNm() * 1e-3);
}

double
WireModel::unitDriverCF() const
{
    // Gate cap of the same inverter (P+N widths ~ 3 Lmin each side).
    return _tech.cGateFPerUm() * (4.0 * 3.0 * _tech.nodeNm() * 1e-3) * 2.0;
}

double
WireModel::unitDriverAreaUm2() const
{
    return 1.5 * _tech.nand2AreaUm2();
}

WireResult
WireModel::unrepeated(WireLayer layer, double length_um, double drive_r_ohm,
                      double load_c_f) const
{
    requireConfig(length_um >= 0.0, "negative wire length");
    const WireParams &w = _tech.wire(layer);
    const double rw = w.rOhmPerUm * length_um;
    const double cw = w.cFPerUm * length_um;

    WireResult res;
    res.delayS = kLumped * drive_r_ohm * (cw + load_c_f) +
                 kDistributed * rw * cw + kLumped * rw * load_c_f;
    const double v = _tech.vdd();
    res.energyJ = (cw + load_c_f) * v * v;
    res.routingAreaUm2 = w.pitchUm * length_um;
    return res;
}

WireResult
WireModel::repeated(WireLayer layer, double length_um, double load_c_f) const
{
    const WireParams &w = _tech.wire(layer);
    const double r0 = unitDriverROhm() / repeaterSizing;
    const double c0 = unitDriverCF() * repeaterSizing;

    // Classic optimal segment length sqrt(2 R0 C0 / (r c)).
    const double l_opt =
        std::sqrt(2.0 * r0 * c0 / (w.rOhmPerUm * w.cFPerUm));

    if (length_um <= l_opt)
        return unrepeated(layer, length_um, r0, load_c_f);

    const int segments = static_cast<int>(std::ceil(length_um / l_opt));
    const double seg_len = length_um / segments;
    const double rw = w.rOhmPerUm * seg_len;
    const double cw = w.cFPerUm * seg_len;

    WireResult res;
    res.numRepeaters = segments; // one driver per segment
    const double seg_delay = kLumped * r0 * (cw + c0) +
                             kDistributed * rw * cw + kLumped * rw * c0;
    // Last segment drives the receiver instead of another repeater.
    const double last_extra = kLumped * (r0 + rw) * (load_c_f - c0);
    res.delayS = segments * seg_delay + std::max(0.0, last_extra);

    const double v = _tech.vdd();
    res.energyJ =
        (w.cFPerUm * length_um + segments * c0 + load_c_f) * v * v;
    res.leakageW =
        segments * repeaterSizing * 0.5 * _tech.nand2LeakW();
    res.repeaterAreaUm2 =
        segments * repeaterSizing / 4.0 * unitDriverAreaUm2();
    res.routingAreaUm2 = w.pitchUm * length_um;
    return res;
}

PAT
WireModel::bus(WireLayer layer, double length_um, int bits, double freq_hz,
               double activity, int *stages_out) const
{
    requireConfig(bits > 0, "bus must have at least one bit");
    requireConfig(freq_hz > 0.0, "bus frequency must be positive");

    const double cycle_s = 1.0 / freq_hz;
    const WireResult one = repeated(layer, length_um, unitDriverCF());

    // Sequencing overhead per stage is one flop traversal.
    const double stage_budget =
        std::max(cycle_s - _tech.dffDelayS(), 0.25 * cycle_s);
    const int stages =
        std::max(1, static_cast<int>(std::ceil(one.delayS / stage_budget)));
    if (stages_out)
        *stages_out = stages;

    PAT pat;
    const int pipe_flops = bits * std::max(0, stages - 1);
    // Buses route over active logic on upper metal; only a fraction of
    // the track area turns into real blockage/feed-through cost.
    constexpr double routing_blockage = 0.35;
    pat.areaUm2 = bits * (one.repeaterAreaUm2 +
                          routing_blockage * one.routingAreaUm2) +
                  pipe_flops * _tech.dffAreaUm2();
    pat.power.dynamicW =
        bits * freq_hz *
        (activity * one.energyJ +
         (stages - 1) * _tech.dffEnergyJ() * (0.5 * activity + 0.5));
    pat.power.leakageW =
        bits * one.leakageW + pipe_flops * _tech.dffLeakW();
    pat.timing.delayS = one.delayS + (stages - 1) * _tech.dffDelayS();
    pat.timing.cycleS = one.delayS / stages + _tech.dffDelayS();
    return pat;
}

} // namespace neurometer
