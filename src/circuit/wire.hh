/**
 * @file
 * Distributed-RC wire model with Elmore delay and optimal repeater
 * insertion. This is the workhorse behind CDB, NoC links, multicast
 * TU buses, and memory H-trees.
 */

#ifndef NEUROMETER_CIRCUIT_WIRE_HH
#define NEUROMETER_CIRCUIT_WIRE_HH

#include "common/pat.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** Result of evaluating one wire (single bit line). */
struct WireResult
{
    double delayS = 0.0;        ///< Elmore delay driver -> far end
    double energyJ = 0.0;       ///< per full-swing transition
    double leakageW = 0.0;      ///< repeater leakage
    double repeaterAreaUm2 = 0.0;
    double routingAreaUm2 = 0.0; ///< pitch * length occupied on its layer
    int numRepeaters = 0;
};

/**
 * Analytical wire evaluator bound to a technology node.
 *
 * Delay model: 0.69*Rd*(Cw+Cl) + 0.38*Rw*Cw + 0.69*Rw*Cl per segment
 * (the standard Elmore form for a distributed RC line with a lumped
 * driver and load).
 */
class WireModel
{
  public:
    explicit WireModel(const TechNode &tech) : _tech(tech) {}

    /**
     * Unrepeated point-to-point wire.
     *
     * @param layer        metal layer class
     * @param length_um    route length
     * @param drive_r_ohm  lumped driver resistance
     * @param load_c_f     lumped receiver capacitance
     */
    WireResult unrepeated(WireLayer layer, double length_um,
                          double drive_r_ohm, double load_c_f) const;

    /**
     * Wire with automatically inserted repeaters when that reduces
     * delay. Falls back to the unrepeated result for short wires.
     */
    WireResult repeated(WireLayer layer, double length_um,
                        double load_c_f) const;

    /**
     * A pipelined multi-bit bus meeting a cycle-time target: repeated
     * wire split into ceil(delay/cycle) stages with pipeline flops.
     *
     * @returns PAT with area = repeaters + flops + routing-layer use,
     *          power.dynamicW = energy/bit-cycle * bits * freq * activity.
     */
    PAT bus(WireLayer layer, double length_um, int bits, double freq_hz,
            double activity, int *stages_out = nullptr) const;

    /** Characteristic resistance of a unit repeater (ohm). */
    double unitDriverROhm() const;
    /** Input capacitance of a unit repeater (F). */
    double unitDriverCF() const;
    /** Area of a unit repeater (um^2). */
    double unitDriverAreaUm2() const;

  private:
    const TechNode &_tech;
};

} // namespace neurometer

#endif // NEUROMETER_CIRCUIT_WIRE_HH
