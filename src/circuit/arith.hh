/**
 * @file
 * Empirical arithmetic-unit models (the paper's "curve fitting ...
 * parameterizable numerical model" for complex custom-layout logic):
 * integer and floating-point multipliers, adders, and the fused MAC
 * units that populate tensor units, reduction trees, and vector lanes.
 */

#ifndef NEUROMETER_CIRCUIT_ARITH_HH
#define NEUROMETER_CIRCUIT_ARITH_HH

#include <string>

#include "circuit/logic.hh"

namespace neurometer {

/** Operand data types supported by the compute-unit models. */
enum class DataType { Int8, Int16, Int32, BF16, FP16, FP32 };

/** Storage width in bits. */
int dataTypeBits(DataType t);

/** Mantissa width used by the multiplier array (int width for ints). */
int dataTypeMantissa(DataType t);

/** Exponent width (0 for ints). */
int dataTypeExponent(DataType t);

bool isFloat(DataType t);

std::string dataTypeName(DataType t);

/** Parse "int8", "bf16", ... (case-insensitive); throws ConfigError. */
DataType dataTypeFromName(const std::string &name);

/** @name Arithmetic block generators (NAND2-equivalent LogicBlocks) */
/** @{ */
LogicBlock multiplierBlock(DataType t);
LogicBlock adderBlock(DataType t);

/**
 * Multiply-accumulate: multiplier in @p mul type, accumulation in
 * @p acc type (e.g. int8 x int8 -> int32, or bf16 x bf16 -> fp32 as in
 * the TPU-v2 MXU).
 */
LogicBlock macBlock(DataType mul, DataType acc);

/** Scalar ALU (add/sub/logic/shift) of the given bit width. */
LogicBlock aluBlock(int bits);

/**
 * One vector-unit lane: multiplier + adder + comparator + piecewise
 * activation lookup, supporting the paper's pooling/activation/
 * normalization vector ops.
 */
LogicBlock vectorLaneBlock(DataType t);
/** @} */

/** Natural accumulator type for a multiplier type (int8->int32 etc.). */
DataType defaultAccumType(DataType mul);

} // namespace neurometer

#endif // NEUROMETER_CIRCUIT_ARITH_HH
