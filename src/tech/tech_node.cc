#include "tech/tech_node.hh"

#include <array>
#include <cmath>

#include "common/error.hh"

namespace neurometer {

namespace {

/** Raw tabulated values at one published node (at the default supply). */
struct NodeRow
{
    double nodeNm;
    double vdd;

    double fo4Ps;
    double cGateFfPerUm;
    double rOnOhmUm;
    double iOffNaPerUm;

    double nand2AreaUm2;
    double nand2CapFf;
    double nand2LeakNw;

    double sramCellUm2;
    double sramLeakPw;
    double sramBlCapFf;

    // r (ohm/um), c (fF/um), pitch (um) for local/intermediate/global.
    double wl[3];
    double wc[3];
    double wp[3];
};

/**
 * Calibration table. Values are representative published/ITRS-class
 * numbers; the chip-level validation benches (Figs. 3-5) are the ground
 * truth these were fit against, in the same spirit as the paper's
 * Design-Compiler curve fitting.
 */
constexpr std::array<NodeRow, 6> nodeTable = {{
    //  nm   vdd  fo4   cg    ron   ioff  nA2   cA2   lkA2  sram   slk   sbl
    { 65.0, 1.00, 22.0, 1.00, 9000,  30.0, 1.90, 3.60, 18.0, 0.525, 18.0, 0.110,
      { 2.0, 0.80, 0.15 }, { 0.20, 0.22, 0.24 }, { 0.20, 0.40, 0.80 } },
    { 45.0, 0.95, 15.5, 1.00, 9500,  40.0, 1.06, 2.40, 14.0, 0.299, 14.0, 0.085,
      { 3.2, 1.10, 0.18 }, { 0.19, 0.21, 0.23 }, { 0.14, 0.28, 0.60 } },
    { 28.0, 0.86, 10.0, 1.05, 10500, 45.0, 0.49, 1.55,  9.0, 0.127,  9.0, 0.060,
      { 6.0, 2.00, 0.28 }, { 0.18, 0.20, 0.23 }, { 0.09, 0.18, 0.45 } },
    { 16.0, 0.75,  6.2, 1.10, 11500, 35.0, 0.23, 0.95,  5.0, 0.074,  5.0, 0.042,
      { 15.0, 4.50, 0.50 }, { 0.17, 0.19, 0.22 }, { 0.055, 0.11, 0.30 } },
    { 12.0, 0.75,  5.4, 1.10, 12000, 32.0, 0.17, 0.80,  4.2, 0.070,  4.5, 0.038,
      { 21.0, 6.00, 0.65 }, { 0.17, 0.19, 0.22 }, { 0.045, 0.09, 0.26 } },
    {  7.0, 0.70,  3.8, 1.15, 13000, 28.0, 0.062, 0.50, 2.8, 0.027,  3.0, 0.028,
      { 45.0, 12.0, 1.10 }, { 0.16, 0.18, 0.21 }, { 0.028, 0.06, 0.18 } },
}};

static_assert(nodeTable.size() == 6);

/** Log-space interpolation between two values at two nodes. */
double
interp(double node, double n0, double n1, double v0, double v1)
{
    if (v0 <= 0.0 || v1 <= 0.0) {
        // Linear fallback for zero/negative entries (not expected).
        const double t = (node - n0) / (n1 - n0);
        return v0 + t * (v1 - v0);
    }
    const double t = (std::log(node) - std::log(n0)) /
                     (std::log(n1) - std::log(n0));
    return std::exp(std::log(v0) + t * (std::log(v1) - std::log(v0)));
}

NodeRow
rowFor(double node_nm)
{
    // Table is ordered from the largest node to the smallest.
    const NodeRow &first = nodeTable.front();
    const NodeRow &last = nodeTable.back();
    requireConfig(node_nm <= first.nodeNm && node_nm >= last.nodeNm,
                  "technology node outside supported range [7, 65] nm");

    for (const NodeRow &row : nodeTable)
        if (row.nodeNm == node_nm)
            return row;

    // Find the bracketing rows and interpolate every field.
    for (size_t i = 0; i + 1 < nodeTable.size(); ++i) {
        const NodeRow &hi = nodeTable[i];
        const NodeRow &lo = nodeTable[i + 1];
        if (node_nm < hi.nodeNm && node_nm > lo.nodeNm) {
            NodeRow out{};
            out.nodeNm = node_nm;
            auto f = [&](double a, double b) {
                return interp(node_nm, hi.nodeNm, lo.nodeNm, a, b);
            };
            out.vdd = f(hi.vdd, lo.vdd);
            out.fo4Ps = f(hi.fo4Ps, lo.fo4Ps);
            out.cGateFfPerUm = f(hi.cGateFfPerUm, lo.cGateFfPerUm);
            out.rOnOhmUm = f(hi.rOnOhmUm, lo.rOnOhmUm);
            out.iOffNaPerUm = f(hi.iOffNaPerUm, lo.iOffNaPerUm);
            out.nand2AreaUm2 = f(hi.nand2AreaUm2, lo.nand2AreaUm2);
            out.nand2CapFf = f(hi.nand2CapFf, lo.nand2CapFf);
            out.nand2LeakNw = f(hi.nand2LeakNw, lo.nand2LeakNw);
            out.sramCellUm2 = f(hi.sramCellUm2, lo.sramCellUm2);
            out.sramLeakPw = f(hi.sramLeakPw, lo.sramLeakPw);
            out.sramBlCapFf = f(hi.sramBlCapFf, lo.sramBlCapFf);
            for (int k = 0; k < 3; ++k) {
                out.wl[k] = f(hi.wl[k], lo.wl[k]);
                out.wc[k] = f(hi.wc[k], lo.wc[k]);
                out.wp[k] = f(hi.wp[k], lo.wp[k]);
            }
            return out;
        }
    }
    throw ModelError("tech node interpolation failed");
}

} // namespace

TechNode
TechNode::make(double node_nm, double vdd_volt)
{
    NodeRow row = rowFor(node_nm);

    TechNode t;
    t._nodeNm = node_nm;
    t._vdd = vdd_volt > 0.0 ? vdd_volt : row.vdd;

    const double vr = t._vdd / row.vdd;
    // Energy ~ C V^2 (the V^2 is applied where energy is computed from the
    // stored caps; caps themselves are supply-independent). Delay worsens
    // roughly ~1/V near nominal; leakage follows ~V^3 empirically.
    t._vddEnergyScale = vr * vr;
    const double delay_scale = 1.0 / vr;
    const double leak_scale = vr * vr * vr;

    t._fo4S = row.fo4Ps * 1e-12 * delay_scale;
    t._cGateFPerUm = row.cGateFfPerUm * 1e-15;
    t._rOnOhmUm = row.rOnOhmUm * delay_scale;
    t._iOffAPerUm = row.iOffNaPerUm * 1e-9 * leak_scale;

    t._nand2AreaUm2 = row.nand2AreaUm2;
    t._nand2CapF = row.nand2CapFf * 1e-15;
    t._nand2LeakW = row.nand2LeakNw * 1e-9 * leak_scale;

    // A standard DFF is ~4.5 NAND2 of area and ~3x the switched cap; its
    // internal clock buffering leaks ~4x a NAND2.
    t._dffAreaUm2 = 4.5 * row.nand2AreaUm2;
    t._dffCapF = 3.0 * row.nand2CapFf * 1e-15;
    t._dffLeakW = 4.0 * t._nand2LeakW;

    t._sramCellUm2 = row.sramCellUm2;
    t._sramCellLeakW = row.sramLeakPw * 1e-12 * leak_scale;
    t._sramCellBlCapF = row.sramBlCapFf * 1e-15;
    // Refresh energy amortizes to a small constant per bit.
    t._edramRefreshWPerBit = 2.0e-12;

    auto mk = [&](int k) {
        WireParams w;
        w.rOhmPerUm = row.wl[k];
        w.cFPerUm = row.wc[k] * 1e-15;
        w.pitchUm = row.wp[k];
        return w;
    };
    t._wireLocal = mk(0);
    t._wireIntermediate = mk(1);
    t._wireGlobal = mk(2);
    return t;
}

const WireParams &
TechNode::wire(WireLayer layer) const
{
    switch (layer) {
      case WireLayer::Local:
        return _wireLocal;
      case WireLayer::Intermediate:
        return _wireIntermediate;
      case WireLayer::Global:
        return _wireGlobal;
    }
    throw ModelError("unknown wire layer");
}

} // namespace neurometer
