/**
 * @file
 * Technology-node parameter model.
 *
 * NeuroMeter maps every architectural component down to standard-cell
 * logic, memory cells, and wires. This file holds the per-node backend
 * parameters those mappings consume. Parameters are tabulated at discrete
 * published nodes (65/45/28/16/12/7 nm) and geometrically interpolated in
 * between; supply voltage can be overridden, rescaling energy (~V^2) and
 * leakage (~V^3, an empirical fit of the sub/near-threshold slope).
 *
 * Anchors are public foundry/ITRS-style values (see DESIGN.md Sec. 5).
 */

#ifndef NEUROMETER_TECH_TECH_NODE_HH
#define NEUROMETER_TECH_TECH_NODE_HH

namespace neurometer {

/** Metal stack layer classes used by the wire models. */
enum class WireLayer { Local, Intermediate, Global };

/** Per-layer distributed wire parasitics. */
struct WireParams
{
    double rOhmPerUm = 0.0;
    double cFPerUm = 0.0;
    double pitchUm = 0.0;
};

/**
 * All circuit/technology-level parameters at one node and supply voltage.
 * Construct via TechNode::make().
 */
class TechNode
{
  public:
    /**
     * Build the parameter set for a feature size.
     *
     * @param node_nm   drawn feature size in nm, within [7, 65]
     * @param vdd_volt  supply override; <= 0 selects the node default
     */
    static TechNode make(double node_nm, double vdd_volt = 0.0);

    double nodeNm() const { return _nodeNm; }
    double vdd() const { return _vdd; }

    /** @name Device primitives */
    /** @{ */
    /** FO4 inverter delay (s): the unit of logic-depth timing. */
    double fo4S() const { return _fo4S; }
    /** Transistor gate capacitance per um of width (F/um). */
    double cGateFPerUm() const { return _cGateFPerUm; }
    /** Drive resistance x width of a minimum device (ohm*um). */
    double rOnOhmUm() const { return _rOnOhmUm; }
    /** Off-state leakage current per um width (A/um). */
    double iOffAPerUm() const { return _iOffAPerUm; }
    /** @} */

    /** @name Standard-cell library (NAND2-equivalent currency) */
    /** @{ */
    double nand2AreaUm2() const { return _nand2AreaUm2; }
    /** Switched capacitance per NAND2 output transition (F). */
    double nand2CapF() const { return _nand2CapF; }
    /** NAND2 leakage power (W). */
    double nand2LeakW() const { return _nand2LeakW; }
    /** Dynamic energy of one NAND2 transition (J). */
    double nand2EnergyJ() const { return _nand2CapF * _vdd * _vdd; }

    double dffAreaUm2() const { return _dffAreaUm2; }
    /** Energy per DFF clock event including internal clocking (J). */
    double dffEnergyJ() const { return _dffCapF * _vdd * _vdd; }
    double dffLeakW() const { return _dffLeakW; }
    /** clk-to-q + setup: the sequencing overhead per pipe stage (s). */
    double dffDelayS() const { return 3.0 * _fo4S; }
    /** @} */

    /** @name Memory cells */
    /** @{ */
    /** 6T SRAM bit cell area (um^2), single-ported. */
    double sramCellUm2() const { return _sramCellUm2; }
    /** SRAM cell leakage (W/bit). */
    double sramCellLeakW() const { return _sramCellLeakW; }
    /** Bitline capacitance contribution per cell on the column (F). */
    double sramCellBitlineCapF() const { return _sramCellBlCapF; }
    /** 1T1C eDRAM bit cell area (um^2). */
    double edramCellUm2() const { return _sramCellUm2 / 3.0; }
    /** eDRAM refresh power (W/bit), amortized. */
    double edramRefreshWPerBit() const { return _edramRefreshWPerBit; }
    /** @} */

    /** Wire parasitics for a given metal layer class. */
    const WireParams &wire(WireLayer layer) const;

    /**
     * Scale a dynamic energy from the node's default supply to the
     * configured supply. Applied internally; exposed for tests.
     */
    double vddEnergyScale() const { return _vddEnergyScale; }

  private:
    TechNode() = default;

    double _nodeNm = 0.0;
    double _vdd = 0.0;
    double _vddEnergyScale = 1.0;

    double _fo4S = 0.0;
    double _cGateFPerUm = 0.0;
    double _rOnOhmUm = 0.0;
    double _iOffAPerUm = 0.0;

    double _nand2AreaUm2 = 0.0;
    double _nand2CapF = 0.0;
    double _nand2LeakW = 0.0;

    double _dffAreaUm2 = 0.0;
    double _dffCapF = 0.0;
    double _dffLeakW = 0.0;

    double _sramCellUm2 = 0.0;
    double _sramCellLeakW = 0.0;
    double _sramCellBlCapF = 0.0;
    double _edramRefreshWPerBit = 0.0;

    WireParams _wireLocal;
    WireParams _wireIntermediate;
    WireParams _wireGlobal;
};

} // namespace neurometer

#endif // NEUROMETER_TECH_TECH_NODE_HH
