/**
 * @file
 * TF-Sim analog: an analytical layer-mapping performance simulator.
 *
 * The paper pairs NeuroMeter with TF-Sim, an unpublished TensorFlow
 * graph simulator. This module reproduces the signals that case study
 * consumes: per-layer mapping of im2col GEMMs onto the chip's systolic
 * TUs (weight-stationary tiling, fill/drain, weight-load overlap),
 * multi-core/multi-TU parallelization with partial-sum merge costs,
 * HBM/Mem/NoC roofline terms, and the software graph optimizations the
 * paper names (space-to-batch/depth, double buffering). Its outputs —
 * latency, throughput, utilization, and component activity rates — feed
 * ChipModel::runtimePower exactly like TF-Sim feeds NeuroMeter.
 */

#ifndef NEUROMETER_PERF_TFSIM_HH
#define NEUROMETER_PERF_TFSIM_HH

#include "chip/chip.hh"
#include "perf/workload.hh"

namespace neurometer {

/** Simulation knobs. */
struct SimConfig
{
    int batch = 1;
    /**
     * Enable graph optimizations: space-to-batch / space-to-depth on
     * shallow-K convolutions, double buffering of weight tiles, and
     * batch folding (paper Fig. 7's "after software optimization").
     */
    bool swOptimizations = true;
};

/** End-to-end simulation result for one (workload, batch) run. */
struct SimResult
{
    double latencyS = 0.0;       ///< one batch, end to end
    double throughputFps = 0.0;  ///< frames per second
    double achievedTops = 0.0;   ///< sustained arithmetic TOPS
    double tuUtilization = 0.0;  ///< achieved / peak TOPS

    RuntimeStats stats;          ///< average rates over the run
    Power runtimePower;          ///< NeuroMeter runtime power

    double achievedTopsPerWatt = 0.0;
    /** achieved TOPS / (mm^4 * W), scaled like ChipModel's TCO. */
    double achievedTopsPerTco = 0.0;
};

/** The analytical performance simulator bound to a chip model. */
class TfSim
{
  public:
    explicit TfSim(const ChipModel &chip) : _chip(chip) {}

    /** Simulate one workload at the given batch size. */
    SimResult run(const Workload &wl, const SimConfig &cfg) const;

    /**
     * Largest batch size (power of two up to 256) whose batch latency
     * meets the SLO; 1 when even batch 1 misses it (paper's
     * "latency-limited batch size").
     */
    int maxBatchUnderSlo(const Workload &wl, double slo_s,
                         bool sw_opt = true) const;

  private:
    const ChipModel &_chip;
};

} // namespace neurometer

#endif // NEUROMETER_PERF_TFSIM_HH
