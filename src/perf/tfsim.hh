/**
 * @file
 * TF-Sim analog: an analytical layer-mapping performance simulator.
 *
 * The paper pairs NeuroMeter with TF-Sim, an unpublished TensorFlow
 * graph simulator. This module reproduces the signals that case study
 * consumes: per-layer mapping of im2col GEMMs onto the chip's systolic
 * TUs under a pluggable dataflow (weight-/output-/input-stationary
 * tiling via perf/dataflow.hh, with fill/drain and weight-load
 * overlap), multi-core/multi-TU parallelization with partial-sum merge
 * costs, HBM/Mem/NoC roofline terms, and the software graph
 * optimizations the paper names (space-to-batch/depth, double
 * buffering). Its outputs — latency, throughput, utilization,
 * component activity rates, and a per-layer cost table — feed
 * ChipModel::runtimePower exactly like TF-Sim feeds NeuroMeter. The
 * sparse/ roofline renders its runs into the same SimResult shape, so
 * dense and sparse scenarios share one report format.
 */

#ifndef NEUROMETER_PERF_TFSIM_HH
#define NEUROMETER_PERF_TFSIM_HH

#include "chip/chip.hh"
#include "perf/dataflow.hh"
#include "perf/workload.hh"

namespace neurometer {

/** One simulated layer: the op's name/kind plus its mapped cost. */
struct LayerResult
{
    std::string name;
    bool tensorOp = false; ///< mapped onto TUs (vs the VU path)
    LayerCost cost;
};

/** End-to-end simulation result for one (workload, batch) run. */
struct SimResult
{
    // Run identity (fills the unified report; see simResultJson).
    std::string workload;
    std::string dataflow;        ///< "ws"/"os"/"is", "dense"/"sparse"
    int batch = 1;
    bool swOptimizations = true;

    double latencyS = 0.0;       ///< one batch, end to end
    double throughputFps = 0.0;  ///< frames per second
    double achievedTops = 0.0;   ///< sustained arithmetic TOPS
    double tuUtilization = 0.0;  ///< achieved / peak TOPS

    RuntimeStats stats;          ///< average rates over the run
    Power runtimePower;          ///< NeuroMeter runtime power

    double achievedTopsPerWatt = 0.0;
    /** achieved TOPS / (mm^4 * W), scaled like ChipModel's TCO. */
    double achievedTopsPerTco = 0.0;

    /** Per-layer pipeline: one entry per operator, in graph order. */
    std::vector<LayerResult> layers;
};

/** The analytical performance simulator bound to a chip model. */
class TfSim
{
  public:
    explicit TfSim(const ChipModel &chip) : _chip(chip) {}

    /** Simulate one workload at the given batch size and dataflow. */
    SimResult run(const Workload &wl, const SimConfig &cfg) const;

    /**
     * Largest batch size (power of two up to 256) whose batch latency
     * meets the SLO; 1 when even batch 1 misses it (paper's
     * "latency-limited batch size"). Every sim knob in `cfg` except
     * the batch itself (which the search owns) applies to the search.
     */
    int maxBatchUnderSlo(const Workload &wl, double slo_s,
                         SimConfig cfg = {}) const;

  private:
    const ChipModel &_chip;
};

} // namespace neurometer

#endif // NEUROMETER_PERF_TFSIM_HH
