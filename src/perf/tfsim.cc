#include "perf/tfsim.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/units.hh"

namespace neurometer {

SimResult
TfSim::run(const Workload &wl, const SimConfig &cfg) const
{
    requireConfig(cfg.batch >= 1, "batch must be >= 1");

    const ChipConfig &cc = _chip.config();
    requireConfig(cc.core.numTU > 0,
                  "TfSim maps onto systolic TUs; RT-only chips use the "
                  "sparse roofline model");

    MapperContext ctx;
    ctx.freqHz = cc.freqHz;
    ctx.tuRows = cc.core.tu.rows;
    ctx.tuPerCore = cc.core.numTU;
    ctx.cores = cc.numCores();
    ctx.vuLanesTotal = double(_chip.core().vuLanes()) * ctx.cores;
    ctx.memReadBw =
        _chip.core().memDesign().readBwBytesPerS * ctx.cores;
    ctx.memWriteBw =
        _chip.core().memDesign().writeBwBytesPerS * ctx.cores;
    ctx.nocBw =
        ctx.cores > 1 ? _chip.config().nocBisectionBwBytesPerS : 1e18;
    ctx.avgHops = ctx.cores > 1 ? (cc.tx + cc.ty) / 3.0 : 0.0;

    const DataflowMapper &mapper = mapperFor(cfg.dataflow);
    const int X = ctx.tuRows;
    const double freq = ctx.freqHz;

    double total_seconds = 0.0;
    double tu_ops = 0.0, vu_ops = 0.0;
    double mem_rd = 0.0, mem_wr = 0.0, hops = 0.0;

    SimResult res;
    res.workload = wl.name;
    res.dataflow = dataflowName(cfg.dataflow);
    res.batch = cfg.batch;
    res.swOptimizations = cfg.swOptimizations;
    res.layers.reserve(wl.ops.size());

    for (const Op &op : wl.ops) {
        LayerCost lc;
        if (op.isTensorOp()) {
            GemmShape g = op.gemm(cfg.batch);

            // Space-to-depth/batch: thicken shallow reductions at the
            // cost of output rows (graph-level rewrite, paper Fig. 7;
            // it reshapes the GEMM before any dataflow maps it).
            if (cfg.swOptimizations && op.kind == OpKind::Conv2D) {
                int applied = 0;
                while (g.k < X / 2.0 && g.m >= 4.0 * X && applied < 2) {
                    g.k *= 4.0;
                    g.m = std::ceil(g.m / 4.0);
                    ++applied;
                }
            }

            lc = mapper.map(op, g, cfg, ctx);
            tu_ops += lc.tuOps;
        } else {
            // Vector-unit ops: pooling, activation, eltwise. Shared
            // by every dataflow — nothing is mapped onto the TUs.
            const double elems = op.opsPerSample() * cfg.batch;
            lc.vuOps += elems;
            lc.seconds = elems / (ctx.vuLanesTotal * freq);
            lc.memReadBytes = op.inActBytes() * cfg.batch;
            lc.memWriteBytes = op.outActBytes() * cfg.batch;
            lc.seconds = std::max(
                lc.seconds, lc.memReadBytes / ctx.memReadBw);
        }
        vu_ops += lc.vuOps;
        mem_rd += lc.memReadBytes;
        mem_wr += lc.memWriteBytes;
        hops += lc.nocByteHops;
        total_seconds += lc.seconds;
        res.layers.push_back({op.name, op.isTensorOp(), lc});
    }

    // Off-chip: weights stream when the model exceeds on-chip Mem;
    // inputs always stream. Double buffering overlaps the stream with
    // compute; without it the transfer serializes.
    const double params = wl.totalParamBytes();
    const bool resident = params <= 0.9 * cc.totalMemBytes;
    double offchip_bytes = wl.inputBytesPerSample * cfg.batch;
    if (!resident)
        offchip_bytes += params; // per batch
    const double t_off = offchip_bytes / cc.offchipBwBytesPerS;
    double latency;
    if (cfg.swOptimizations)
        latency = std::max(total_seconds, t_off);
    else
        latency = total_seconds + t_off;

    res.latencyS = latency;
    res.throughputFps = cfg.batch / latency;
    res.achievedTops = tu_ops / latency / units::tera;
    res.tuUtilization = res.achievedTops / _chip.peakTops();

    res.stats.tuOpsPerS = tu_ops / latency;
    res.stats.vuOpsPerS = vu_ops / latency;
    res.stats.memReadBytesPerS = mem_rd / latency;
    res.stats.memWriteBytesPerS = mem_wr / latency;
    res.stats.vregBytesPerS = res.stats.tuOpsPerS; // ~1 B per op pair
    res.stats.cdbBytesPerS =
        (mem_rd + mem_wr) / latency; // everything crosses the CDB
    res.stats.nocByteHopsPerS = hops / latency;
    res.stats.offchipBytesPerS = offchip_bytes / latency;

    res.runtimePower = _chip.runtimePower(res.stats);
    res.achievedTopsPerWatt =
        res.achievedTops / res.runtimePower.total();
    const double a = _chip.areaMm2();
    res.achievedTopsPerTco =
        res.achievedTops / (a * a * res.runtimePower.total()) * 1e6;
    return res;
}

int
TfSim::maxBatchUnderSlo(const Workload &wl, double slo_s,
                        SimConfig cfg) const
{
    int best = 1;
    for (int b = 1; b <= 256; b *= 2) {
        cfg.batch = b;
        const SimResult r = run(wl, cfg);
        if (r.latencyS <= slo_s)
            best = b;
        else
            break;
    }
    return best;
}

} // namespace neurometer
