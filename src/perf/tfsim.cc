#include "perf/tfsim.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/units.hh"

namespace neurometer {

namespace {

/** Per-layer accounting accumulated into the run totals. */
struct LayerCost
{
    double seconds = 0.0;
    double tuOps = 0.0;
    double vuOps = 0.0;
    double memReadBytes = 0.0;
    double memWriteBytes = 0.0;
    double nocByteHops = 0.0;
};

} // namespace

SimResult
TfSim::run(const Workload &wl, const SimConfig &cfg) const
{
    requireConfig(cfg.batch >= 1, "batch must be >= 1");

    const ChipConfig &cc = _chip.config();
    requireConfig(cc.core.numTU > 0,
                  "TfSim maps onto systolic TUs; RT-only chips use the "
                  "sparse roofline model");

    const double freq = cc.freqHz;
    const int X = cc.core.tu.rows;
    const int n_tu = cc.numCores() * cc.core.numTU;
    const int cores = cc.numCores();
    const double vu_lanes_total =
        double(_chip.core().vuLanes()) * cores;
    const double mem_read_bw =
        _chip.core().memDesign().readBwBytesPerS * cores;
    const double mem_write_bw =
        _chip.core().memDesign().writeBwBytesPerS * cores;
    const double noc_bw =
        cores > 1 ? _chip.config().nocBisectionBwBytesPerS : 1e18;
    const double avg_hops = cores > 1 ? (cc.tx + cc.ty) / 3.0 : 0.0;

    double total_seconds = 0.0;
    double tu_ops = 0.0, vu_ops = 0.0;
    double mem_rd = 0.0, mem_wr = 0.0, hops = 0.0;

    for (const Op &op : wl.ops) {
        LayerCost lc;
        if (op.isTensorOp()) {
            GemmShape g = op.gemm(cfg.batch);

            // Space-to-depth/batch: thicken shallow reductions at the
            // cost of output rows (graph-level rewrite, paper Fig. 7).
            if (cfg.swOptimizations && op.kind == OpKind::Conv2D) {
                int applied = 0;
                while (g.k < X / 2.0 && g.m >= 4.0 * X && applied < 2) {
                    g.k *= 4.0;
                    g.m = std::ceil(g.m / 4.0);
                    ++applied;
                }
            }

            const double kt = std::ceil(g.k / X);
            const double nt = std::ceil(g.n / X);

            // Cross-core partitioning (XLA-style): the scheduler
            // balances M-shards (spatial/batch rows, free) against
            // N-shards (leftover cores, costing an activation
            // broadcast over the NoC). Within a core, each N-tile
            // forms a chain accumulating its kt K-tiles in place
            // (weight-stationary local accumulators); idle TUs split
            // chains in K (requiring an explicit merge), then
            // replicate in M. The M/N core split is searched for the
            // fastest schedule, mirroring TF-Sim's graph scheduling.
            const int tu_core = cc.core.numTU;
            const double cores_m_max = std::clamp(
                std::ceil(g.m / X), 1.0, double(cores));

            double best_cycles = 0.0;
            double cores_m = 1.0, cores_n = 1.0, ksplit = 1.0;
            double m_chunk = 0.0, waves = 1.0;
            for (double cm = 1.0; cm <= cores_m_max; cm *= 2.0) {
                const double cn = std::clamp(
                    std::floor(cores / cm), 1.0, nt);
                const double m_core = std::ceil(g.m / cm);
                const double nt_core = std::ceil(nt / cn);
                const double ks = std::clamp(
                    std::floor(tu_core / nt_core), 1.0, kt);
                const double mr = std::max(
                    1.0,
                    std::min(std::floor(tu_core / (nt_core * ks)),
                             std::ceil(m_core / X)));
                const double wv = std::ceil(nt_core / tu_core);
                const double ktpt = std::ceil(kt / ks);
                const double mc = std::ceil(m_core / mr);
                // Weight-load overhead: X cycles per K-tile swap,
                // hidden by double buffering while streaming.
                const double ld = cfg.swOptimizations
                    ? std::max(0.0, double(X) - mc)
                    : double(X);
                const double cyc = wv * ktpt * (mc + 2.0 * X + ld);
                if (best_cycles == 0.0 || cyc < best_cycles) {
                    best_cycles = cyc;
                    cores_m = cm;
                    cores_n = cn;
                    ksplit = ks;
                    m_chunk = mc;
                    waves = wv;
                }
            }
            const double t_comp = best_cycles / freq;

            const double chains = std::ceil(nt / cores_n);
            (void)m_chunk;

            // Partial-sum merging on the VU for explicit K-splits.
            const double psum_adds = g.m * g.n * (ksplit - 1.0);
            lc.vuOps += psum_adds;
            const double t_vu =
                psum_adds / (vu_lanes_total * freq) *
                (cfg.swOptimizations ? 0.4 : 1.0); // overlap factor

            // Mem traffic: unique activations (im2col windows are
            // generated from line buffers, not re-read). M-shards
            // partition the input; N-shards replicate it. Without
            // graph opts every chain group re-reads its inputs.
            const double unique_act = std::min(
                g.m * g.k, op.inActBytes() * cfg.batch);
            const double act_rd =
                unique_act * cores_n *
                (cfg.swOptimizations
                     ? std::max(1.2, waves)
                     : std::min(chains, 4.0) * std::max(1.0, waves));
            const double w_rd = g.k * g.n;
            const double out_wr = g.m * g.n;
            const double psum_bytes =
                (ksplit > 1.0) ? g.m * g.n * 4.0 * (ksplit - 1.0)
                               : 0.0;
            lc.memReadBytes = act_rd + w_rd + psum_bytes;
            lc.memWriteBytes = out_wr + psum_bytes;
            const double t_mem =
                lc.memReadBytes / mem_read_bw +
                lc.memWriteBytes / mem_write_bw;

            // NoC: N-shard input broadcast and M-shard halo exchange.
            // Weights are pre-placed in the owning core's Mem slice
            // and refreshed off the critical path (double buffering),
            // so they cost hops (energy) but not bisection time.
            double t_noc = 0.0;
            if (cores > 1) {
                const double bcast =
                    unique_act * std::max(0.0, cores_n - 1.0);
                const double halo =
                    cores_m > 1.0 ? 0.1 * unique_act : 0.0;
                lc.nocByteHops =
                    (bcast + halo + 0.25 * w_rd) * avg_hops * 0.5;
                t_noc = (bcast + halo) / noc_bw;
            }

            // Per-operator dispatch/synchronization: descriptor setup,
            // weight staging kick-off, and the end-of-op barrier all
            // serialize per participating core. Amortized at large
            // batch, this is what erodes many-core chips at batch 1
            // (calibrated to the paper's brawny trade-off, Sec. III-B2).
            const double cores_used = cores_m * cores_n;
            const double sync_cycles =
                (400.0 + 700.0 * std::log2(std::max(1.0, cores_used))) *
                (cfg.swOptimizations ? 1.0 : 1.5);

            lc.tuOps = op.opsPerSample() * cfg.batch;
            lc.seconds = std::max({t_comp, t_vu, t_mem, t_noc}) +
                         sync_cycles / freq;
            tu_ops += lc.tuOps;
        } else {
            // Vector-unit ops: pooling, activation, eltwise.
            const double elems = op.opsPerSample() * cfg.batch;
            lc.vuOps += elems;
            lc.seconds = elems / (vu_lanes_total * freq);
            lc.memReadBytes = op.inActBytes() * cfg.batch;
            lc.memWriteBytes = op.outActBytes() * cfg.batch;
            lc.seconds = std::max(
                lc.seconds, lc.memReadBytes / mem_read_bw);
        }
        vu_ops += lc.vuOps;
        mem_rd += lc.memReadBytes;
        mem_wr += lc.memWriteBytes;
        hops += lc.nocByteHops;
        total_seconds += lc.seconds;
    }

    // Off-chip: weights stream when the model exceeds on-chip Mem;
    // inputs always stream. Double buffering overlaps the stream with
    // compute; without it the transfer serializes.
    const double params = wl.totalParamBytes();
    const bool resident = params <= 0.9 * cc.totalMemBytes;
    double offchip_bytes =
        224.0 * 224.0 * 3.0 * cfg.batch; // input frames
    if (!resident)
        offchip_bytes += params; // per batch
    const double t_off = offchip_bytes / cc.offchipBwBytesPerS;
    double latency;
    if (cfg.swOptimizations)
        latency = std::max(total_seconds, t_off);
    else
        latency = total_seconds + t_off;

    SimResult res;
    res.latencyS = latency;
    res.throughputFps = cfg.batch / latency;
    res.achievedTops = tu_ops / latency / units::tera;
    res.tuUtilization = res.achievedTops / _chip.peakTops();

    res.stats.tuOpsPerS = tu_ops / latency;
    res.stats.vuOpsPerS = vu_ops / latency;
    res.stats.memReadBytesPerS = mem_rd / latency;
    res.stats.memWriteBytesPerS = mem_wr / latency;
    res.stats.vregBytesPerS = res.stats.tuOpsPerS; // ~1 B per op pair
    res.stats.cdbBytesPerS =
        (mem_rd + mem_wr) / latency; // everything crosses the CDB
    res.stats.nocByteHopsPerS = hops / latency;
    res.stats.offchipBytesPerS = offchip_bytes / latency;

    res.runtimePower = _chip.runtimePower(res.stats);
    res.achievedTopsPerWatt =
        res.achievedTops / res.runtimePower.total();
    const double a = _chip.areaMm2();
    res.achievedTopsPerTco =
        res.achievedTops / (a * a * res.runtimePower.total()) * 1e6;
    return res;
}

int
TfSim::maxBatchUnderSlo(const Workload &wl, double slo_s,
                        bool sw_opt) const
{
    int best = 1;
    for (int b = 1; b <= 256; b *= 2) {
        SimConfig cfg;
        cfg.batch = b;
        cfg.swOptimizations = sw_opt;
        const SimResult r = run(wl, cfg);
        if (r.latencyS <= slo_s)
            best = b;
        else
            break;
    }
    return best;
}

} // namespace neurometer
