#include "perf/dataflow.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace neurometer {

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary:
        return "ws";
      case Dataflow::OutputStationary:
        return "os";
      case Dataflow::InputStationary:
        return "is";
    }
    throw ModelError("unknown dataflow");
}

Dataflow
parseDataflow(const std::string &name)
{
    if (name == "ws")
        return Dataflow::WeightStationary;
    if (name == "os")
        return Dataflow::OutputStationary;
    if (name == "is")
        return Dataflow::InputStationary;
    throw ConfigError("unknown dataflow '" + name +
                      "' (expected ws, os, or is)");
}

namespace {

/**
 * Per-operator dispatch/synchronization: descriptor setup, operand
 * staging kick-off, and the end-of-op barrier all serialize per
 * participating core. Amortized at large batch, this is what erodes
 * many-core chips at batch 1 (calibrated to the paper's brawny
 * trade-off, Sec. III-B2). Shared by every dataflow.
 */
double
syncCycles(double cores_used, bool sw_opt)
{
    return (400.0 + 700.0 * std::log2(std::max(1.0, cores_used))) *
           (sw_opt ? 1.0 : 1.5);
}

/**
 * The original TfSim tiling, extracted verbatim from TfSim::run.
 * Weights are pre-placed in the array; activations stream; an M/N
 * core split plus an intra-core K-split are searched for the fastest
 * schedule. Bit-identical to the pre-refactor simulator (regression-
 * gated against the fig07/fig09/fig10 goldens in tests/test_tfsim.cc).
 */
class WeightStationaryMapper final : public DataflowMapper
{
  public:
    Dataflow dataflow() const override
    {
        return Dataflow::WeightStationary;
    }

    LayerCost
    map(const Op &op, const GemmShape &g, const SimConfig &cfg,
        const MapperContext &ctx) const override
    {
        const double freq = ctx.freqHz;
        const int X = ctx.tuRows;
        const int cores = ctx.cores;
        const double vu_lanes_total = ctx.vuLanesTotal;
        const double mem_read_bw = ctx.memReadBw;
        const double mem_write_bw = ctx.memWriteBw;
        const double noc_bw = ctx.nocBw;
        const double avg_hops = ctx.avgHops;

        LayerCost lc;
        const double kt = std::ceil(g.k / X);
        const double nt = std::ceil(g.n / X);

        // Cross-core partitioning (XLA-style): the scheduler
        // balances M-shards (spatial/batch rows, free) against
        // N-shards (leftover cores, costing an activation
        // broadcast over the NoC). Within a core, each N-tile
        // forms a chain accumulating its kt K-tiles in place
        // (weight-stationary local accumulators); idle TUs split
        // chains in K (requiring an explicit merge), then
        // replicate in M. The M/N core split is searched for the
        // fastest schedule, mirroring TF-Sim's graph scheduling.
        const int tu_core = ctx.tuPerCore;
        const double cores_m_max =
            std::clamp(std::ceil(g.m / X), 1.0, double(cores));

        double best_cycles = 0.0;
        double cores_m = 1.0, cores_n = 1.0, ksplit = 1.0;
        double m_chunk = 0.0, waves = 1.0;
        for (double cm = 1.0; cm <= cores_m_max; cm *= 2.0) {
            const double cn =
                std::clamp(std::floor(cores / cm), 1.0, nt);
            const double m_core = std::ceil(g.m / cm);
            const double nt_core = std::ceil(nt / cn);
            const double ks =
                std::clamp(std::floor(tu_core / nt_core), 1.0, kt);
            const double mr = std::max(
                1.0, std::min(std::floor(tu_core / (nt_core * ks)),
                              std::ceil(m_core / X)));
            const double wv = std::ceil(nt_core / tu_core);
            const double ktpt = std::ceil(kt / ks);
            const double mc = std::ceil(m_core / mr);
            // Weight-load overhead: X cycles per K-tile swap,
            // hidden by double buffering while streaming.
            const double ld = cfg.swOptimizations
                ? std::max(0.0, double(X) - mc)
                : double(X);
            const double cyc = wv * ktpt * (mc + 2.0 * X + ld);
            if (best_cycles == 0.0 || cyc < best_cycles) {
                best_cycles = cyc;
                cores_m = cm;
                cores_n = cn;
                ksplit = ks;
                m_chunk = mc;
                waves = wv;
            }
        }
        const double t_comp = best_cycles / freq;

        const double chains = std::ceil(nt / cores_n);
        (void)m_chunk;

        // Partial-sum merging on the VU for explicit K-splits.
        const double psum_adds = g.m * g.n * (ksplit - 1.0);
        lc.vuOps += psum_adds;
        const double t_vu =
            psum_adds / (vu_lanes_total * freq) *
            (cfg.swOptimizations ? 0.4 : 1.0); // overlap factor

        // Mem traffic: unique activations (im2col windows are
        // generated from line buffers, not re-read). M-shards
        // partition the input; N-shards replicate it. Without
        // graph opts every chain group re-reads its inputs.
        const double unique_act = std::min(
            g.m * g.k * op.operandBytes, op.inActBytes() * cfg.batch);
        const double act_rd =
            unique_act * cores_n *
            (cfg.swOptimizations
                 ? std::max(1.2, waves)
                 : std::min(chains, 4.0) * std::max(1.0, waves));
        const double w_rd = g.k * g.n * op.operandBytes;
        const double out_wr = g.m * g.n * op.operandBytes;
        const double psum_bytes =
            (ksplit > 1.0) ? g.m * g.n * 4.0 * (ksplit - 1.0) : 0.0;
        lc.memReadBytes = act_rd + w_rd + psum_bytes +
                          op.extraReadBytes * cfg.batch;
        lc.memWriteBytes =
            out_wr + psum_bytes + op.extraWriteBytes * cfg.batch;
        const double t_mem = lc.memReadBytes / mem_read_bw +
                             lc.memWriteBytes / mem_write_bw;

        // NoC: N-shard input broadcast and M-shard halo exchange.
        // Weights are pre-placed in the owning core's Mem slice
        // and refreshed off the critical path (double buffering),
        // so they cost hops (energy) but not bisection time.
        double t_noc = 0.0;
        if (cores > 1) {
            const double bcast =
                unique_act * std::max(0.0, cores_n - 1.0);
            const double halo =
                cores_m > 1.0 ? 0.1 * unique_act : 0.0;
            lc.nocByteHops =
                (bcast + halo + 0.25 * w_rd) * avg_hops * 0.5;
            t_noc = (bcast + halo) / noc_bw;
        }

        const double cores_used = cores_m * cores_n;
        const double sync_cycles =
            syncCycles(cores_used, cfg.swOptimizations);

        lc.tuOps = op.opsPerSample() * cfg.batch;
        lc.seconds = std::max({t_comp, t_vu, t_mem, t_noc}) +
                     sync_cycles / freq;
        return lc;
    }
};

/**
 * Output-stationary tiling: each PE accumulates one output element
 * across the whole K reduction, so the GEMM decomposes into
 * ceil(M/X) * ceil(N/X) output tiles distributed over every TU on the
 * chip. Both operands stream (no weight pre-load), each tile pays a
 * 2X skew fill/drain around its K-deep reduction, partial sums never
 * leave the array (outputs are written exactly once, no VU merge),
 * and the traffic cost is operand re-reads: activations re-stream per
 * output-column tile and weights per output-row tile unless double
 * buffering blocks the reuse.
 */
class OutputStationaryMapper final : public DataflowMapper
{
  public:
    Dataflow dataflow() const override
    {
        return Dataflow::OutputStationary;
    }

    LayerCost
    map(const Op &op, const GemmShape &g, const SimConfig &cfg,
        const MapperContext &ctx) const override
    {
        const double freq = ctx.freqHz;
        const double X = ctx.tuRows;
        const int cores = ctx.cores;

        LayerCost lc;
        const double row_tiles = std::ceil(g.m / X);
        const double col_tiles = std::ceil(g.n / X);
        const double tiles = row_tiles * col_tiles;
        const double tiles_per_tu =
            std::ceil(tiles / ctx.totalTUs());

        // Fill/drain: 2X systolic skew per tile around the K-deep
        // in-place reduction; without double buffering the output
        // drain is not overlapped with the next tile's fill.
        const double drain =
            cfg.swOptimizations ? 0.0 : X;
        const double tile_cycles = g.k + 2.0 * X + drain;
        const double t_comp = tiles_per_tu * tile_cycles / freq;

        // The OS advantage: partial sums stay put, outputs are
        // written exactly once, and the VU never merges anything.
        const double t_vu = 0.0;

        // Buffer traffic: every output-column tile re-streams the
        // activations and every output-row tile re-streams the
        // weights; double buffering blocks the reuse down to a
        // ping-pong pair.
        const double unique_act = std::min(
            g.m * g.k * op.operandBytes, op.inActBytes() * cfg.batch);
        const double act_rd =
            unique_act * (cfg.swOptimizations
                              ? std::min(col_tiles, 2.0)
                              : col_tiles);
        const double w_rd =
            g.k * g.n * op.operandBytes *
            (cfg.swOptimizations ? std::min(row_tiles, 2.0)
                                 : row_tiles);
        const double out_wr = g.m * g.n * op.operandBytes;
        lc.memReadBytes =
            act_rd + w_rd + op.extraReadBytes * cfg.batch;
        lc.memWriteBytes = out_wr + op.extraWriteBytes * cfg.batch;
        const double t_mem = lc.memReadBytes / ctx.memReadBw +
                             lc.memWriteBytes / ctx.memWriteBw;

        // NoC: with tiles spread across every core, both streaming
        // operands cross the bisection on their way from the owning
        // Mem slice to the consuming core (about half the traffic).
        double t_noc = 0.0;
        if (cores > 1) {
            const double crossing = 0.5 * (act_rd + w_rd);
            lc.nocByteHops = crossing * ctx.avgHops;
            t_noc = 0.5 * crossing / ctx.nocBw;
        }

        const double sync_cycles =
            syncCycles(double(cores), cfg.swOptimizations);

        lc.tuOps = op.opsPerSample() * cfg.batch;
        lc.seconds = std::max({t_comp, t_vu, t_mem, t_noc}) +
                     sync_cycles / freq;
        return lc;
    }
};

/**
 * Input-stationary tiling: an X-by-X activation tile is pinned in the
 * array while all N weight columns stream past it, so the GEMM
 * decomposes into ceil(M/X) * ceil(K/X) stationary tiles distributed
 * over every TU. The price of holding inputs is intrinsic partial
 * sums: each of the ceil(K/X) tile groups emits a full M-by-N partial
 * result that the VU must merge (with 4 B accumulator-width spills to
 * Mem), exactly like a forced K-split in the WS schedule. The payoff
 * is activation traffic: inputs are read exactly once.
 */
class InputStationaryMapper final : public DataflowMapper
{
  public:
    Dataflow dataflow() const override
    {
        return Dataflow::InputStationary;
    }

    LayerCost
    map(const Op &op, const GemmShape &g, const SimConfig &cfg,
        const MapperContext &ctx) const override
    {
        const double freq = ctx.freqHz;
        const double X = ctx.tuRows;
        const int cores = ctx.cores;

        LayerCost lc;
        const double row_tiles = std::ceil(g.m / X);
        const double k_tiles = std::ceil(g.k / X);
        const double tiles = row_tiles * k_tiles;
        const double tiles_per_tu =
            std::ceil(tiles / ctx.totalTUs());

        // Per tile: X cycles to pin the next input tile (hidden by
        // double buffering while at least X weight columns stream),
        // then N streaming cycles inside a 2X skew.
        const double ld = cfg.swOptimizations
            ? std::max(0.0, X - g.n)
            : X;
        const double tile_cycles = g.n + 2.0 * X + ld;
        const double t_comp = tiles_per_tu * tile_cycles / freq;

        // Intrinsic partial-sum merge across the K-tile groups.
        const double psum_adds = g.m * g.n * (k_tiles - 1.0);
        lc.vuOps += psum_adds;
        const double t_vu =
            psum_adds / (ctx.vuLanesTotal * freq) *
            (cfg.swOptimizations ? 0.4 : 1.0); // overlap factor

        // The IS advantage: activations are read exactly once.
        // Weights re-stream per output-row tile; partial results
        // spill at accumulator width.
        const double unique_act = std::min(
            g.m * g.k * op.operandBytes, op.inActBytes() * cfg.batch);
        const double w_rd =
            g.k * g.n * op.operandBytes *
            (cfg.swOptimizations ? std::min(row_tiles, 2.0)
                                 : row_tiles);
        const double out_wr = g.m * g.n * op.operandBytes;
        const double psum_bytes =
            (k_tiles > 1.0) ? g.m * g.n * 4.0 * (k_tiles - 1.0)
                            : 0.0;
        lc.memReadBytes = unique_act + w_rd + psum_bytes +
                          op.extraReadBytes * cfg.batch;
        lc.memWriteBytes =
            out_wr + psum_bytes + op.extraWriteBytes * cfg.batch;
        const double t_mem = lc.memReadBytes / ctx.memReadBw +
                             lc.memWriteBytes / ctx.memWriteBw;

        // NoC: streamed weights and psum spills cross the bisection.
        double t_noc = 0.0;
        if (cores > 1) {
            const double crossing = 0.5 * (w_rd + psum_bytes);
            lc.nocByteHops = crossing * ctx.avgHops;
            t_noc = 0.5 * crossing / ctx.nocBw;
        }

        const double sync_cycles =
            syncCycles(double(cores), cfg.swOptimizations);

        lc.tuOps = op.opsPerSample() * cfg.batch;
        lc.seconds = std::max({t_comp, t_vu, t_mem, t_noc}) +
                     sync_cycles / freq;
        return lc;
    }
};

} // namespace

const DataflowMapper &
mapperFor(Dataflow df)
{
    static const WeightStationaryMapper ws;
    static const OutputStationaryMapper os;
    static const InputStationaryMapper is;
    switch (df) {
      case Dataflow::WeightStationary:
        return ws;
      case Dataflow::OutputStationary:
        return os;
      case Dataflow::InputStationary:
        return is;
    }
    throw ModelError("unknown dataflow");
}

} // namespace neurometer
