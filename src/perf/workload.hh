/**
 * @file
 * ML workload descriptors: operator-level tables of CNN models with the
 * compute/footprint accounting used across the case studies (paper
 * Table II). Operations count 2 per MAC (multiply + accumulate),
 * consistent with the peak-TOPS accounting (92 TOPS = 2 * 64 K MACs *
 * 700 MHz for TPU-v1 geometry).
 */

#ifndef NEUROMETER_PERF_WORKLOAD_HH
#define NEUROMETER_PERF_WORKLOAD_HH

#include <string>
#include <vector>

namespace neurometer {

/** Operator kinds the mapper understands. */
enum class OpKind {
    Conv2D,
    DepthwiseConv2D,
    MatMul,
    Pool,
    Activation,
    EltwiseAdd,
};

/** The GEMM view of an operator after im2col lowering. */
struct GemmShape
{
    double m = 0.0; ///< output rows (batch * out pixels)
    double k = 0.0; ///< reduction depth (cin * kh * kw)
    double n = 0.0; ///< output channels
};

/** One operator in a model graph (per-sample shapes). */
struct Op
{
    OpKind kind = OpKind::Conv2D;
    std::string name;

    // Spatial operator fields (Conv/Pool/Depthwise).
    int h = 0, w = 0;     ///< input spatial dims
    int cin = 0;
    int kh = 1, kw = 1;
    int cout = 0;
    int stride = 1;

    // MatMul fields (per sample): out = [1 x k] * [k x n].
    double mmK = 0.0, mmN = 0.0;

    int outH() const;
    int outW() const;

    /** Arithmetic ops per sample (2 per MAC; pooling/eltwise 1/elem). */
    double opsPerSample() const;

    /** Parameter bytes (int8 weights). */
    double paramBytes() const;

    double inActBytes() const;  ///< int8 activations in
    double outActBytes() const; ///< int8 activations out

    /** im2col GEMM shape with the batch folded into M. */
    GemmShape gemm(int batch) const;

    /** True for operators executed on the TU (GEMM-shaped). */
    bool isTensorOp() const;
};

/** A whole model: named list of operators. */
struct Workload
{
    std::string name;
    std::vector<Op> ops;

    /** Total arithmetic ops per sample (Table II "#MAC Op"). */
    double totalOps() const;

    /** Total parameter bytes (Table II "#Param", int8). */
    double totalParamBytes() const;

    /**
     * Peak transient activation footprint per frame (Table II
     * "#Data"): live-set estimate under ping-pong buffer reuse —
     * half the total activation volume.
     */
    double peakDataBytes() const;

    /** Total activation bytes written across the graph. */
    double totalActivationBytes() const;
};

/** @name Model zoo used in the paper's case study (all at 224x224) */
/** @{ */
Workload resnet50();
Workload inceptionV3();
Workload nasnetALarge();
/** AlexNet (for the Eyeriss runtime-power validation, Fig. 5). */
Workload alexnet();
/** @} */

} // namespace neurometer

#endif // NEUROMETER_PERF_WORKLOAD_HH
