/**
 * @file
 * ML workload descriptors: operator-level tables of CNN models with the
 * compute/footprint accounting used across the case studies (paper
 * Table II). Operations count 2 per MAC (multiply + accumulate),
 * consistent with the peak-TOPS accounting (92 TOPS = 2 * 64 K MACs *
 * 700 MHz for TPU-v1 geometry).
 */

#ifndef NEUROMETER_PERF_WORKLOAD_HH
#define NEUROMETER_PERF_WORKLOAD_HH

#include <string>
#include <vector>

namespace neurometer {

/** Operator kinds the mapper understands. */
enum class OpKind {
    Conv2D,
    DepthwiseConv2D,
    MatMul,
    Pool,
    Activation,
    EltwiseAdd,
};

/** The GEMM view of an operator after im2col lowering. */
struct GemmShape
{
    double m = 0.0; ///< output rows (batch * out pixels)
    double k = 0.0; ///< reduction depth (cin * kh * kw)
    double n = 0.0; ///< output channels
};

/** One operator in a model graph (per-sample shapes). */
struct Op
{
    OpKind kind = OpKind::Conv2D;
    std::string name;

    // Spatial operator fields (Conv/Pool/Depthwise).
    int h = 0, w = 0;     ///< input spatial dims
    int cin = 0;
    int kh = 1, kw = 1;
    int cout = 0;
    int stride = 1;

    // MatMul fields (per sample): out = [m x k] * [k x n]. mmM folds
    // per-sample row batching (transformer sequence positions); the
    // classic FC layer is mmM = 1.
    double mmM = 1.0, mmK = 0.0, mmN = 0.0;

    /** Activation-by-activation MatMul (attention logits, attn * V):
     *  the [k x n] operand is an activation, not a parameter. */
    bool weightless = false;

    /** Bytes per operand element (weights and activations). The
     *  Table II accounting is int8 (1 B); wider precisions scale
     *  every byte term through here. */
    double operandBytes = 1.0;

    /** Side-channel memory traffic per sample, outside the operand
     *  streams the mapper derives from the GEMM shape — KV-cache
     *  reads/writes on attention ops. Charged to Mem by every
     *  dataflow mapper, scaled by the batch. */
    double extraReadBytes = 0.0;
    double extraWriteBytes = 0.0;

    int outH() const;
    int outW() const;

    /** Arithmetic ops per sample (2 per MAC; pooling/eltwise 1/elem). */
    double opsPerSample() const;

    /** Parameter bytes (operandBytes wide; 0 for weightless ops). */
    double paramBytes() const;

    double inActBytes() const;  ///< activation bytes in
    double outActBytes() const; ///< activation bytes out

    /** im2col GEMM shape with the batch folded into M. */
    GemmShape gemm(int batch) const;

    /** True for operators executed on the TU (GEMM-shaped). */
    bool isTensorOp() const;
};

/** A whole model: named list of operators. */
struct Workload
{
    std::string name;
    std::vector<Op> ops;

    /** Off-chip input bytes per sample (what must stream in per
     *  inference). Defaults to a 224x224x3 int8 frame, the case
     *  study's CNN input; transformer workloads set their token
     *  stream instead. */
    double inputBytesPerSample = 224.0 * 224.0 * 3.0;

    /** Set the operand width of every operator (quantization axis:
     *  1 B int8, 2 B bf16, 4 B fp32). Returns *this for chaining. */
    Workload &setOperandBytes(double bytes);

    /** Total arithmetic ops per sample (Table II "#MAC Op"). */
    double totalOps() const;

    /** Total parameter bytes (Table II "#Param", int8). */
    double totalParamBytes() const;

    /**
     * Peak transient activation footprint per frame (Table II
     * "#Data"): live-set estimate under ping-pong buffer reuse —
     * half the total activation volume.
     */
    double peakDataBytes() const;

    /** Total activation bytes written across the graph. */
    double totalActivationBytes() const;
};

/** @name Model zoo used in the paper's case study (all at 224x224) */
/** @{ */
Workload resnet50();
Workload inceptionV3();
Workload nasnetALarge();
/** AlexNet (for the Eyeriss runtime-power validation, Fig. 5). */
Workload alexnet();
/** @} */

/** Shape of one pre-norm transformer decoder block. */
struct TransformerConfig
{
    int seqLen = 512;    ///< new tokens processed per sample
    int kvLen = 2048;    ///< total attended context (cache + new)
    int dModel = 4096;
    int nHeads = 32;
    int dFf = 16384;     ///< MLP hidden width (4x dModel)
    int nLayers = 1;     ///< stacked identical blocks
    double operandBytes = 1.0;
};

/**
 * A programmatic transformer block: fused QKV projection, per-head
 * attention logits (Q K^T) and attn * V as weightless batched GEMMs
 * with KV-cache read/write traffic, softmax, output projection, and
 * the two MLP GEMMs — Table-II-style #MAC/#Data/#Param accounting
 * throughout. Throws ConfigError on inconsistent shapes.
 */
Workload transformerBlock(const TransformerConfig &tc);

/** The default transformer block (GPT-style 4096-wide, 512 new tokens
 *  attending a 2048-token context). */
Workload transformer();

/**
 * Workload factory by CLI/wire name: resnet50, inception_v3, nasnet,
 * alexnet, transformer. Throws ConfigError on unknown names (the
 * message lists the valid ones).
 */
Workload workloadByName(const std::string &name);

/** The names workloadByName accepts, for help text and docs. */
std::vector<std::string> workloadNames();

} // namespace neurometer

#endif // NEUROMETER_PERF_WORKLOAD_HH
