/**
 * @file
 * Pluggable dataflow mappers for the perf simulator.
 *
 * The TF-Sim analog lowers every tensor operator to an im2col GEMM and
 * maps it onto the chip's systolic TUs. How that GEMM is tiled — which
 * operand stays resident in the PE array while the others stream —
 * is the *dataflow*, and it determines the fill/drain overheads, the
 * partial-sum merge work, and the buffer-traffic terms of each layer:
 *
 *   - weight-stationary (WS, TPU-style): weights are pre-loaded into
 *     the array; activations stream through; partial sums accumulate
 *     in place along K unless the schedule splits K across TUs.
 *   - output-stationary (OS): each PE owns one output element for the
 *     whole K reduction; both operands stream, outputs are written
 *     exactly once and no partial sums ever leave the array.
 *   - input-stationary (IS): an activation tile is pinned; weights
 *     stream past it; every K-tile emits partial sums that must be
 *     merged on the VU (psum read/write traffic is intrinsic).
 *
 * Each mapper turns one (Op, GemmShape) pair into a LayerCost; the
 * surrounding per-layer pipeline (TfSim::run) is dataflow-agnostic.
 * The decomposition follows the WS/OS/IS idiom of systolic simulators
 * (SCALE-Sim / CADOSys layer_sim); the WS mapper is the original
 * TfSim tiling extracted verbatim and is regression-gated to be
 * bit-identical to it.
 */

#ifndef NEUROMETER_PERF_DATAFLOW_HH
#define NEUROMETER_PERF_DATAFLOW_HH

#include <string>

#include "perf/workload.hh"

namespace neurometer {

/** Which operand the systolic array holds stationary. */
enum class Dataflow {
    WeightStationary,
    OutputStationary,
    InputStationary,
};

/** Short wire/CLI name: "ws", "os", "is". */
const char *dataflowName(Dataflow df);

/** Parse a wire/CLI name; throws ConfigError on anything else. */
Dataflow parseDataflow(const std::string &name);

/** Simulation knobs. */
struct SimConfig
{
    int batch = 1;
    /**
     * Enable graph optimizations: space-to-batch / space-to-depth on
     * shallow-K convolutions, double buffering of weight tiles, and
     * batch folding (paper Fig. 7's "after software optimization").
     */
    bool swOptimizations = true;
    /** How tensor ops are tiled onto the TUs. */
    Dataflow dataflow = Dataflow::WeightStationary;
};

/** Per-layer accounting accumulated into the run totals. */
struct LayerCost
{
    double seconds = 0.0;
    double tuOps = 0.0;
    double vuOps = 0.0;
    double memReadBytes = 0.0;
    double memWriteBytes = 0.0;
    double nocByteHops = 0.0;
};

/** Machine terms precomputed once per run, shared by every mapper. */
struct MapperContext
{
    double freqHz = 0.0;
    int tuRows = 0;            ///< X, the systolic edge length
    int tuPerCore = 0;         ///< N
    int cores = 0;             ///< Tx * Ty
    double vuLanesTotal = 0.0; ///< VU lanes summed over cores
    double memReadBw = 0.0;    ///< on-chip Mem read B/s, all cores
    double memWriteBw = 0.0;   ///< on-chip Mem write B/s, all cores
    double nocBw = 0.0;        ///< bisection B/s (huge when 1 core)
    double avgHops = 0.0;      ///< mean NoC hop count (0 when 1 core)

    /** TUs chip-wide. */
    int totalTUs() const { return cores * tuPerCore; }
};

/**
 * One dataflow's tiling model. Stateless; map() is called once per
 * tensor op with the (possibly graph-rewritten) GEMM shape and must
 * fill every LayerCost term, including the op's extra (KV-cache style)
 * traffic scaled by the batch.
 */
class DataflowMapper
{
  public:
    virtual ~DataflowMapper() = default;

    virtual Dataflow dataflow() const = 0;

    /** Map one GEMM-lowered tensor op onto the machine. */
    virtual LayerCost map(const Op &op, const GemmShape &g,
                          const SimConfig &cfg,
                          const MapperContext &ctx) const = 0;
};

/** The process-wide mapper instance for a dataflow (never null). */
const DataflowMapper &mapperFor(Dataflow df);

} // namespace neurometer

#endif // NEUROMETER_PERF_DATAFLOW_HH
