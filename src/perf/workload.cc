#include "perf/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace neurometer {

int
Op::outH() const
{
    // SAME padding throughout: out = ceil(in / stride).
    return std::max(1, (h + stride - 1) / stride);
}

int
Op::outW() const
{
    return std::max(1, (w + stride - 1) / stride);
}

double
Op::opsPerSample() const
{
    switch (kind) {
      case OpKind::Conv2D:
        return 2.0 * double(outH()) * outW() * cout * cin * kh * kw;
      case OpKind::DepthwiseConv2D:
        return 2.0 * double(outH()) * outW() * cin * kh * kw;
      case OpKind::MatMul:
        return 2.0 * mmM * mmK * mmN;
      case OpKind::Pool:
        return double(outH()) * outW() * cin * kh * kw;
      case OpKind::Activation:
        return double(h) * w * cin;
      case OpKind::EltwiseAdd:
        return double(h) * w * cin;
    }
    throw ModelError("unknown op kind");
}

double
Op::paramBytes() const
{
    switch (kind) {
      case OpKind::Conv2D:
        return double(cin) * kh * kw * cout * operandBytes;
      case OpKind::DepthwiseConv2D:
        return double(cin) * kh * kw * operandBytes;
      case OpKind::MatMul:
        return weightless ? 0.0 : mmK * mmN * operandBytes;
      default:
        return 0.0;
    }
}

double
Op::inActBytes() const
{
    if (kind == OpKind::MatMul)
        return mmM * mmK * operandBytes;
    return double(h) * w * cin * operandBytes;
}

double
Op::outActBytes() const
{
    switch (kind) {
      case OpKind::Conv2D:
        return double(outH()) * outW() * cout * operandBytes;
      case OpKind::DepthwiseConv2D:
      case OpKind::Pool:
        return double(outH()) * outW() * cin * operandBytes;
      case OpKind::MatMul:
        return mmM * mmN * operandBytes;
      case OpKind::Activation:
      case OpKind::EltwiseAdd:
        return double(h) * w * cin * operandBytes;
    }
    throw ModelError("unknown op kind");
}

GemmShape
Op::gemm(int batch) const
{
    GemmShape g;
    switch (kind) {
      case OpKind::Conv2D:
        g.m = double(batch) * outH() * outW();
        g.k = double(cin) * kh * kw;
        g.n = cout;
        break;
      case OpKind::DepthwiseConv2D:
        // Lowered channel-by-channel: tiny K, N=1 slices; represent as
        // a thin GEMM (poor TU fit by construction).
        g.m = double(batch) * outH() * outW() * cin;
        g.k = double(kh) * kw;
        g.n = 1.0;
        break;
      case OpKind::MatMul:
        g.m = double(batch) * mmM;
        g.k = mmK;
        g.n = mmN;
        break;
      default:
        break;
    }
    return g;
}

bool
Op::isTensorOp() const
{
    return kind == OpKind::Conv2D || kind == OpKind::DepthwiseConv2D ||
           kind == OpKind::MatMul;
}

double
Workload::totalOps() const
{
    double s = 0.0;
    for (const Op &op : ops)
        s += op.opsPerSample();
    return s;
}

double
Workload::totalParamBytes() const
{
    double s = 0.0;
    for (const Op &op : ops)
        s += op.paramBytes();
    return s;
}

double
Workload::totalActivationBytes() const
{
    // In-place operators (activations, residual adds) do not allocate
    // new transient tensors.
    double s = 0.0;
    for (const Op &op : ops) {
        if (op.kind == OpKind::Activation || op.kind == OpKind::EltwiseAdd)
            continue;
        s += op.outActBytes();
    }
    return s;
}

double
Workload::peakDataBytes() const
{
    return 0.5 * totalActivationBytes();
}

Workload &
Workload::setOperandBytes(double bytes)
{
    requireConfig(bytes > 0.0, "operand bytes must be > 0");
    for (Op &op : ops)
        op.operandBytes = bytes;
    return *this;
}

namespace {

Op
conv(std::string name, int h, int w, int cin, int k, int cout, int stride)
{
    Op op;
    op.kind = OpKind::Conv2D;
    op.name = std::move(name);
    op.h = h;
    op.w = w;
    op.cin = cin;
    op.kh = op.kw = k;
    op.cout = cout;
    op.stride = stride;
    return op;
}

Op
convRect(std::string name, int h, int w, int cin, int kh, int kw, int cout)
{
    Op op = conv(std::move(name), h, w, cin, 1, cout, 1);
    op.kh = kh;
    op.kw = kw;
    return op;
}

Op
sepConv(std::string name, int h, int w, int cin, int k, int cout,
        int stride, std::vector<Op> *out)
{
    // Depthwise + pointwise pair.
    Op dw;
    dw.kind = OpKind::DepthwiseConv2D;
    dw.name = name + "_dw";
    dw.h = h;
    dw.w = w;
    dw.cin = cin;
    dw.kh = dw.kw = k;
    dw.cout = cin;
    dw.stride = stride;
    out->push_back(dw);
    const int oh = dw.outH(), ow = dw.outW();
    Op pw = conv(name + "_pw", oh, ow, cin, 1, cout, 1);
    out->push_back(pw);
    return pw;
}

Op
fc(std::string name, double k, double n)
{
    Op op;
    op.kind = OpKind::MatMul;
    op.name = std::move(name);
    op.mmK = k;
    op.mmN = n;
    return op;
}

Op
pool(std::string name, int h, int w, int c, int k, int stride)
{
    Op op;
    op.kind = OpKind::Pool;
    op.name = std::move(name);
    op.h = h;
    op.w = w;
    op.cin = c;
    op.kh = op.kw = k;
    op.cout = c;
    op.stride = stride;
    return op;
}

Op
eltwise(std::string name, int h, int w, int c)
{
    Op op;
    op.kind = OpKind::EltwiseAdd;
    op.name = std::move(name);
    op.h = h;
    op.w = w;
    op.cin = c;
    return op;
}

} // namespace

Workload
resnet50()
{
    Workload wl;
    wl.name = "ResNet";
    auto &ops = wl.ops;

    ops.push_back(conv("conv1", 224, 224, 3, 7, 64, 2));
    ops.push_back(pool("pool1", 112, 112, 64, 3, 2));

    struct Stage
    {
        int blocks, width, inC, outC, spatial, stride;
    };
    const Stage stages[] = {
        {3, 64, 64, 256, 56, 1},
        {4, 128, 256, 512, 56, 2},
        {6, 256, 512, 1024, 28, 2},
        {3, 512, 1024, 2048, 14, 2},
    };
    for (const Stage &st : stages) {
        int in_c = st.inC;
        int hw = st.spatial;
        for (int b = 0; b < st.blocks; ++b) {
            const int stride = (b == 0) ? st.stride : 1;
            const int out_hw = hw / stride;
            const std::string base =
                "res" + std::to_string(st.width) + "_" +
                std::to_string(b);
            ops.push_back(conv(base + "_a", hw, hw, in_c, 1, st.width,
                               stride));
            ops.push_back(conv(base + "_b", out_hw, out_hw, st.width, 3,
                               st.width, 1));
            ops.push_back(conv(base + "_c", out_hw, out_hw, st.width, 1,
                               st.outC, 1));
            if (b == 0) {
                ops.push_back(conv(base + "_proj", hw, hw, in_c, 1,
                                   st.outC, stride));
            }
            ops.push_back(eltwise(base + "_add", out_hw, out_hw,
                                  st.outC));
            in_c = st.outC;
            hw = out_hw;
        }
    }
    ops.push_back(pool("avgpool", 7, 7, 2048, 7, 7));
    ops.push_back(fc("fc1000", 2048, 1000));
    return wl;
}

Workload
inceptionV3()
{
    // Inception-v3 topology at 224x224 input (the case study's op
    // accounting; see DESIGN.md on Table II calibration).
    Workload wl;
    wl.name = "Inception";
    auto &ops = wl.ops;

    ops.push_back(conv("stem1", 192, 192, 3, 3, 32, 2));
    ops.push_back(conv("stem2", 96, 96, 32, 3, 32, 1));
    ops.push_back(conv("stem3", 96, 96, 32, 3, 64, 1));
    ops.push_back(pool("stem_pool", 96, 96, 64, 3, 2));
    ops.push_back(conv("stem4", 48, 48, 64, 1, 80, 1));
    ops.push_back(conv("stem5", 48, 48, 80, 3, 192, 1));
    ops.push_back(pool("stem_pool2", 48, 48, 192, 3, 2));

    // 3x Inception-A at 24x24 (channels 192/256/288 -> 288).
    int hw = 24;
    int c = 192;
    for (int i = 0; i < 3; ++i) {
        const std::string b = "mixedA" + std::to_string(i);
        ops.push_back(conv(b + "_1x1", hw, hw, c, 1, 64, 1));
        ops.push_back(conv(b + "_5x5a", hw, hw, c, 1, 48, 1));
        ops.push_back(conv(b + "_5x5b", hw, hw, 48, 5, 64, 1));
        ops.push_back(conv(b + "_3x3a", hw, hw, c, 1, 64, 1));
        ops.push_back(conv(b + "_3x3b", hw, hw, 64, 3, 96, 1));
        ops.push_back(conv(b + "_3x3c", hw, hw, 96, 3, 96, 1));
        ops.push_back(conv(b + "_poolproj", hw, hw, c, 1,
                           i == 0 ? 32 : 64, 1));
        c = (i == 0) ? 256 : 288;
    }

    // Reduction-A to 13x13 / 768.
    ops.push_back(conv("redA_3x3", hw, hw, 288, 3, 384, 2));
    ops.push_back(conv("redA_dbl_a", hw, hw, 288, 1, 64, 1));
    ops.push_back(conv("redA_dbl_b", hw, hw, 64, 3, 96, 1));
    ops.push_back(conv("redA_dbl_c", hw, hw, 96, 3, 96, 2));
    hw = 12;
    c = 768;

    // 4x Inception-B (factorized 7x7) at 13x13 / 768.
    const int seven[4] = {128, 160, 160, 192};
    for (int i = 0; i < 4; ++i) {
        const std::string b = "mixedB" + std::to_string(i);
        const int s = seven[i];
        ops.push_back(conv(b + "_1x1", hw, hw, c, 1, 192, 1));
        ops.push_back(conv(b + "_7a", hw, hw, c, 1, s, 1));
        ops.push_back(convRect(b + "_7b", hw, hw, s, 1, 7, s));
        ops.push_back(convRect(b + "_7c", hw, hw, s, 7, 1, 192));
        ops.push_back(conv(b + "_d7a", hw, hw, c, 1, s, 1));
        ops.push_back(convRect(b + "_d7b", hw, hw, s, 7, 1, s));
        ops.push_back(convRect(b + "_d7c", hw, hw, s, 1, 7, s));
        ops.push_back(convRect(b + "_d7d", hw, hw, s, 7, 1, s));
        ops.push_back(convRect(b + "_d7e", hw, hw, s, 1, 7, 192));
        ops.push_back(conv(b + "_poolproj", hw, hw, c, 1, 192, 1));
    }

    // Reduction-B to 6x6 / 1280.
    ops.push_back(conv("redB_a", hw, hw, c, 1, 192, 1));
    ops.push_back(conv("redB_b", hw, hw, 192, 3, 320, 2));
    ops.push_back(conv("redB_c", hw, hw, c, 1, 192, 1));
    ops.push_back(convRect("redB_d", hw, hw, 192, 1, 7, 192));
    ops.push_back(convRect("redB_e", hw, hw, 192, 7, 1, 192));
    ops.push_back(conv("redB_f", hw, hw, 192, 3, 192, 2));
    hw = 6;
    c = 1280;

    // 2x Inception-C at 6x6 (1280 -> 2048).
    for (int i = 0; i < 2; ++i) {
        const std::string b = "mixedC" + std::to_string(i);
        ops.push_back(conv(b + "_1x1", hw, hw, c, 1, 320, 1));
        ops.push_back(conv(b + "_3a", hw, hw, c, 1, 384, 1));
        ops.push_back(convRect(b + "_3b1", hw, hw, 384, 1, 3, 384));
        ops.push_back(convRect(b + "_3b2", hw, hw, 384, 3, 1, 384));
        ops.push_back(conv(b + "_d3a", hw, hw, c, 1, 448, 1));
        ops.push_back(conv(b + "_d3b", hw, hw, 448, 3, 384, 1));
        ops.push_back(convRect(b + "_d3c1", hw, hw, 384, 1, 3, 384));
        ops.push_back(convRect(b + "_d3c2", hw, hw, 384, 3, 1, 384));
        ops.push_back(conv(b + "_poolproj", hw, hw, c, 1, 192, 1));
        c = 2048;
    }
    ops.push_back(pool("avgpool", 6, 6, 2048, 6, 6));
    ops.push_back(fc("fc1000", 2048, 1000));
    return wl;
}

Workload
nasnetALarge()
{
    // NASNet-A-Large (6@4032-class cell structure) at 224x224. Each
    // normal cell: five blocks mixing separable 3x3/5x5/7x7 convs and
    // pools on a `f`-channel stream; reduction cells halve the grid
    // and double the filters.
    Workload wl;
    wl.name = "NasNet";
    auto &ops = wl.ops;

    ops.push_back(conv("stem", 224, 224, 3, 3, 96, 2));

    int hw = 112;
    int c = 96;
    int f = 192;

    auto normal_cell = [&](const std::string &base, int cell_hw, int cin,
                           int filters) {
        // 1x1 squeezes on the two cell inputs.
        ops.push_back(conv(base + "_sq0", cell_hw, cell_hw, cin, 1,
                           filters, 1));
        ops.push_back(conv(base + "_sq1", cell_hw, cell_hw, cin, 1,
                           filters, 1));
        // Five blocks: sep5x5+sep3x3, sep5x5+sep3x3, avg+id,
        // avg+avg, sep3x3+id (NASNet-A normal cell).
        sepConv(base + "_b0a", cell_hw, cell_hw, filters, 5, filters, 1,
                &ops);
        sepConv(base + "_b0b", cell_hw, cell_hw, filters, 3, filters, 1,
                &ops);
        sepConv(base + "_b1a", cell_hw, cell_hw, filters, 5, filters, 1,
                &ops);
        sepConv(base + "_b1b", cell_hw, cell_hw, filters, 3, filters, 1,
                &ops);
        ops.push_back(pool(base + "_b2", cell_hw, cell_hw, filters, 3,
                           1));
        ops.push_back(pool(base + "_b3a", cell_hw, cell_hw, filters, 3,
                           1));
        ops.push_back(pool(base + "_b3b", cell_hw, cell_hw, filters, 3,
                           1));
        sepConv(base + "_b4", cell_hw, cell_hw, filters, 3, filters, 1,
                &ops);
        // Concatenated output: ~6 streams of `filters`.
    };

    auto reduction_cell = [&](const std::string &base, int cell_hw,
                              int cin, int filters) {
        ops.push_back(conv(base + "_sq", cell_hw, cell_hw, cin, 1,
                           filters, 1));
        sepConv(base + "_r0", cell_hw, cell_hw, filters, 5, filters, 2,
                &ops);
        sepConv(base + "_r1", cell_hw, cell_hw, filters, 7, filters, 2,
                &ops);
        sepConv(base + "_r2", cell_hw, cell_hw, filters, 5, filters, 2,
                &ops);
        sepConv(base + "_r3", cell_hw / 2, cell_hw / 2, filters, 3,
                filters, 1, &ops);
        ops.push_back(pool(base + "_rp", cell_hw, cell_hw, filters, 3,
                           2));
    };

    // Two stem reduction cells down to 28x28.
    reduction_cell("stem_r1", hw, c, f / 2);
    hw /= 2;
    c = 6 * f / 2;
    reduction_cell("stem_r2", hw, c, f);
    hw /= 2;
    c = 6 * f;

    for (int stage = 0; stage < 3; ++stage) {
        for (int n = 0; n < 6; ++n) {
            normal_cell("s" + std::to_string(stage) + "_n" +
                            std::to_string(n),
                        hw, c, f);
            c = 6 * f;
        }
        if (stage < 2) {
            f *= 2;
            reduction_cell("s" + std::to_string(stage) + "_red", hw, c,
                           f);
            hw /= 2;
            c = 6 * f;
        }
    }
    ops.push_back(pool("avgpool", hw, hw, c, hw, hw));
    ops.push_back(fc("fc1000", c, 1000));
    return wl;
}

Workload
transformerBlock(const TransformerConfig &tc)
{
    requireConfig(tc.seqLen >= 1, "transformer seqLen must be >= 1");
    requireConfig(tc.kvLen >= tc.seqLen,
                  "transformer kvLen must cover the new tokens "
                  "(kvLen >= seqLen)");
    requireConfig(tc.dModel >= 1 && tc.dFf >= 1,
                  "transformer widths must be >= 1");
    requireConfig(tc.nHeads >= 1 && tc.dModel % tc.nHeads == 0,
                  "dModel must divide evenly into nHeads");
    requireConfig(tc.nLayers >= 1, "transformer nLayers must be >= 1");
    requireConfig(tc.operandBytes > 0.0, "operand bytes must be > 0");

    const double S = tc.seqLen;
    const double KV = tc.kvLen;
    const double d = tc.dModel;
    const int dh = tc.dModel / tc.nHeads;
    const double kv_cache = 2.0 * KV * d * tc.operandBytes;

    Workload wl;
    wl.name = "Transformer";
    // The per-sample input is the new-token stream, not a CNN frame.
    wl.inputBytesPerSample = S * d * tc.operandBytes;

    auto mm = [&](std::string name, double m, double k, double n,
                  bool weightless, double extra_rd = 0.0,
                  double extra_wr = 0.0) {
        Op op;
        op.kind = OpKind::MatMul;
        op.name = std::move(name);
        op.mmM = m;
        op.mmK = k;
        op.mmN = n;
        op.weightless = weightless;
        op.extraReadBytes = extra_rd;
        op.extraWriteBytes = extra_wr;
        wl.ops.push_back(op);
    };
    auto vec = [&](OpKind kind, std::string name, double rows,
                   double width) {
        Op op;
        op.kind = kind;
        op.name = std::move(name);
        op.h = int(rows);
        op.w = 1;
        op.cin = int(width);
        wl.ops.push_back(op);
    };

    for (int l = 0; l < tc.nLayers; ++l) {
        const std::string b = "blk" + std::to_string(l);

        // Fused QKV projection; the layer's K/V rows land in the
        // KV cache (write traffic outside the GEMM operand streams).
        mm(b + "_qkv", S, d, 3.0 * d, false, 0.0,
           2.0 * S * d * tc.operandBytes);

        // Attention logits Q K^T: per-head [S x dh] * [dh x KV],
        // folded across heads into M. Activation x activation (the
        // K operand comes from the cache, costing a cache read).
        mm(b + "_logits", S * tc.nHeads, dh, KV, true,
           0.5 * kv_cache); // K half

        vec(OpKind::Activation, b + "_softmax", S * tc.nHeads, KV);

        // attn * V: per-head [S x KV] * [KV x dh], V from the cache.
        mm(b + "_av", S * tc.nHeads, KV, dh, true,
           0.5 * kv_cache); // V half

        mm(b + "_out", S, d, d, false);
        vec(OpKind::EltwiseAdd, b + "_attn_add", S, d);

        mm(b + "_mlp_up", S, d, tc.dFf, false);
        vec(OpKind::Activation, b + "_gelu", S, tc.dFf);
        mm(b + "_mlp_down", S, tc.dFf, d, false);
        vec(OpKind::EltwiseAdd, b + "_mlp_add", S, d);
    }
    wl.setOperandBytes(tc.operandBytes);
    return wl;
}

Workload
transformer()
{
    return transformerBlock(TransformerConfig{});
}

Workload
workloadByName(const std::string &name)
{
    if (name == "resnet50")
        return resnet50();
    if (name == "inception_v3")
        return inceptionV3();
    if (name == "nasnet")
        return nasnetALarge();
    if (name == "alexnet")
        return alexnet();
    if (name == "transformer")
        return transformer();
    std::string known;
    for (const std::string &n : workloadNames())
        known += (known.empty() ? "" : ", ") + n;
    throw ConfigError("unknown workload '" + name + "' (expected " +
                      known + ")");
}

std::vector<std::string>
workloadNames()
{
    return {"resnet50", "inception_v3", "nasnet", "alexnet",
            "transformer"};
}

Workload
alexnet()
{
    Workload wl;
    wl.name = "AlexNet";
    auto &ops = wl.ops;
    ops.push_back(conv("conv1", 227, 227, 3, 11, 96, 4));
    ops.push_back(pool("pool1", 55, 55, 96, 3, 2));
    ops.push_back(conv("conv2", 27, 27, 96, 5, 256, 1));
    ops.push_back(pool("pool2", 27, 27, 256, 3, 2));
    ops.push_back(conv("conv3", 13, 13, 256, 3, 384, 1));
    ops.push_back(conv("conv4", 13, 13, 384, 3, 384, 1));
    ops.push_back(conv("conv5", 13, 13, 384, 3, 256, 1));
    ops.push_back(pool("pool5", 13, 13, 256, 3, 2));
    ops.push_back(fc("fc6", 9216, 4096));
    ops.push_back(fc("fc7", 4096, 4096));
    ops.push_back(fc("fc8", 4096, 1000));
    return wl;
}

} // namespace neurometer
