#include "sparse/roofline.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/units.hh"

namespace neurometer {

SparseRoofline::SparseRoofline(const ChipModel &chip, SkipScheme scheme,
                               int skip_size, double alpha)
    : _chip(chip), _scheme(scheme), _skipSize(skip_size), _alpha(alpha)
{
    requireConfig(skip_size >= 1, "skip size must be >= 1");
    requireConfig(alpha > 0.0, "alpha must be > 0");
}

SparseRunResult
SparseRoofline::eval(const SpmvProblem &prob,
                     const SparseMatrix &weights) const
{
    requireConfig(prob.m == weights.rows() && prob.n == weights.cols(),
                  "problem/matrix shape mismatch");
    requireConfig(prob.m >= 1024 && prob.n >= 1024 && prob.k >= 32,
                  "Sec. IV requires M,N >= 1024 and K >= 32 for "
                  "sufficient parallelism");

    SparseRunResult r;
    r.x = weights.nonZeroRatio();
    r.beta = csrBeta(weights);
    const double skipped =
        _scheme == SkipScheme::TensorBlock
            ? weights.zeroBlockFraction(_skipSize, _skipSize)
            : weights.zeroVectorFraction(_skipSize);
    r.y = 1.0 - skipped;

    // Dense problem terms (int8).
    const double C = 2.0 * double(prob.m) * prob.n * prob.k; // ops
    const double s_w = double(prob.m) * prob.n;              // bytes
    const double s_v = double(prob.n + prob.m) * prob.k;     // in+out
    const double F = _chip.peakTops() * units::tera;
    const double B = _chip.config().offchipBwBytesPerS;

    r.tDenseS = std::max(C / F, (s_v + s_w) / B);
    r.tSparseS = std::max(_alpha * r.y * C / F,
                          (s_v + r.beta * r.x * s_w) / B);

    // Runtime powers from NeuroMeter at each run's activity.
    RuntimeStats dense;
    dense.tuOpsPerS = C / r.tDenseS;
    dense.offchipBytesPerS = (s_v + s_w) / r.tDenseS;
    dense.memReadBytesPerS = (s_v + s_w) / r.tDenseS;
    dense.memWriteBytesPerS = double(prob.m) * prob.k / r.tDenseS;
    dense.vregBytesPerS = dense.tuOpsPerS;
    r.denseP = _chip.runtimePower(dense);

    RuntimeStats sparse;
    sparse.tuOpsPerS = _alpha * r.y * C / r.tSparseS;
    sparse.offchipBytesPerS =
        (s_v + r.beta * r.x * s_w) / r.tSparseS;
    sparse.memReadBytesPerS = sparse.offchipBytesPerS;
    sparse.memWriteBytesPerS = double(prob.m) * prob.k / r.tSparseS;
    sparse.vregBytesPerS = sparse.tuOpsPerS;
    r.sparseP = _chip.runtimePower(sparse);

    r.energyEfficiencyGain = (r.denseP.total() * r.tDenseS) /
                             (r.sparseP.total() * r.tSparseS);
    return r;
}

SimResult
SparseRoofline::simulate(const SpmvProblem &prob,
                         const SparseMatrix &weights,
                         bool sparse_run) const
{
    const SparseRunResult e = eval(prob, weights);

    // The same problem terms eval() used (dense compute, operand
    // footprints), re-derived to fill the per-layer accounting.
    const double C = 2.0 * double(prob.m) * prob.n * prob.k;
    const double s_w = double(prob.m) * prob.n;
    const double s_v = double(prob.n + prob.m) * prob.k;
    const double out_wr = double(prob.m) * prob.k;

    SimResult res;
    res.workload = "spmv_" + std::to_string(prob.m) + "x" +
                   std::to_string(prob.n) + "x" +
                   std::to_string(prob.k);
    res.dataflow = sparse_run ? "sparse" : "dense";
    res.batch = prob.k;
    res.swOptimizations = sparse_run;

    const double t = sparse_run ? e.tSparseS : e.tDenseS;
    const double ops = sparse_run ? _alpha * e.y * C : C;
    const double rd =
        sparse_run ? s_v + e.beta * e.x * s_w : s_v + s_w;

    res.latencyS = t;
    res.throughputFps = prob.k / t;
    res.achievedTops = ops / t / units::tera;
    res.tuUtilization = res.achievedTops / _chip.peakTops();

    res.stats.tuOpsPerS = ops / t;
    res.stats.offchipBytesPerS = rd / t;
    res.stats.memReadBytesPerS = rd / t;
    res.stats.memWriteBytesPerS = out_wr / t;
    res.stats.vregBytesPerS = res.stats.tuOpsPerS;
    res.runtimePower = sparse_run ? e.sparseP : e.denseP;
    res.achievedTopsPerWatt =
        res.achievedTops / res.runtimePower.total();
    const double a = _chip.areaMm2();
    res.achievedTopsPerTco =
        res.achievedTops / (a * a * res.runtimePower.total()) * 1e6;

    LayerCost lc;
    lc.seconds = t;
    lc.tuOps = ops;
    lc.memReadBytes = rd;
    lc.memWriteBytes = out_wr;
    res.layers.push_back({"spmv", true, lc});
    return res;
}

} // namespace neurometer
