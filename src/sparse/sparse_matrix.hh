/**
 * @file
 * Synthetic sparse weight-matrix generator for the Sec. IV mini-study.
 *
 * Zeros in pruned ML weights cluster spatially; the generator models
 * that with two levels: square zero *patches* (default 4x4) plus
 * independent element-level zeros inside live patches. Block-aligned
 * zero-skip opportunities then emerge naturally: an XxX tile is
 * skippable only when every patch it covers is zero, which stays
 * negligible for brawny tiles (32x32) until extreme sparsity but rises
 * sharply past ~0.9 for wimpy tiles (8x8) — the knee in Fig. 11.
 */

#ifndef NEUROMETER_SPARSE_SPARSE_MATRIX_HH
#define NEUROMETER_SPARSE_SPARSE_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neurometer {

/** Generation parameters. */
struct SparseGenConfig
{
    int rows = 1024;
    int cols = 1024;
    /** Target fraction of zero elements, in [0, 1). */
    double sparsity = 0.5;
    /** Zero-patch edge (clustering granularity). */
    int patch = 4;
    /**
     * Fraction of the zero budget spent on whole patches (the rest is
     * element-wise salt). 1.0 = fully clustered.
     */
    double clustering = 0.85;
    std::uint64_t seed = 0x5eed;
};

/** A generated sparse 0/1 occupancy matrix with analysis helpers. */
class SparseMatrix
{
  public:
    explicit SparseMatrix(const SparseGenConfig &cfg);

    int rows() const { return _rows; }
    int cols() const { return _cols; }

    bool isNonZero(int r, int c) const
    {
        return _mask[static_cast<std::size_t>(r) * _cols + c] != 0;
    }

    /** Number of non-zero elements. */
    double nnz() const { return _nnz; }

    /** Achieved non-zero ratio x = nnz / (rows*cols). */
    double nonZeroRatio() const
    {
        return _nnz / (double(_rows) * _cols);
    }

    /**
     * Fraction of bh x bw aligned blocks that are entirely zero —
     * the TU block-wise zero-skip opportunity.
     */
    double zeroBlockFraction(int bh, int bw) const;

    /** Fraction of 1 x len aligned row chunks entirely zero (RT). */
    double zeroVectorFraction(int len) const
    {
        return zeroBlockFraction(1, len);
    }

  private:
    int _rows;
    int _cols;
    double _nnz = 0.0;
    std::vector<std::uint8_t> _mask;
};

} // namespace neurometer

#endif // NEUROMETER_SPARSE_SPARSE_MATRIX_HH
