#include "sparse/csr.hh"

#include <cmath>

#include "common/error.hh"

namespace neurometer {

TiledCsrSize
tiledCsrSize(const SparseMatrix &m, int tile)
{
    requireConfig(tile >= 1, "tile must be >= 1");
    TiledCsrSize sz;
    sz.valueBytes = m.nnz();
    sz.colIndexBytes = m.nnz(); // one byte per nnz (intra-tile column)
    // One byte per row of every tile (intra-submatrix row index).
    sz.rowIndexBytes = std::ceil(double(m.cols()) / tile) * m.rows();
    sz.tileIndexBytes = 2.0 * std::ceil(double(m.rows()) / tile) *
                        std::ceil(double(m.cols()) / tile);
    return sz;
}

double
csrBeta(const SparseMatrix &m, int tile)
{
    const double dense_bytes = double(m.rows()) * m.cols();
    const double x = m.nonZeroRatio();
    requireConfig(x > 0.0, "beta undefined for an all-zero matrix");
    return tiledCsrSize(m, tile).total() / (x * dense_bytes);
}

CsrMatrix::CsrMatrix(const SparseMatrix &m, float value_scale)
    : _rows(m.rows()), _cols(m.cols())
{
    _indptr.reserve(_rows + 1);
    _indptr.push_back(0);
    for (int r = 0; r < _rows; ++r) {
        for (int c = 0; c < _cols; ++c) {
            if (m.isNonZero(r, c)) {
                _indices.push_back(c);
                // Deterministic, position-derived value.
                _values.push_back(value_scale *
                                  (1.0f + float((r * 31 + c) % 7)));
            }
        }
        _indptr.push_back(static_cast<int>(_indices.size()));
    }
}

std::vector<float>
CsrMatrix::spmv(const std::vector<float> &x) const
{
    requireConfig(static_cast<int>(x.size()) == _cols,
                  "SpMV vector length mismatch");
    std::vector<float> y(_rows, 0.0f);
    for (int r = 0; r < _rows; ++r) {
        float acc = 0.0f;
        for (int i = _indptr[r]; i < _indptr[r + 1]; ++i)
            acc += _values[i] * x[_indices[i]];
        y[r] = acc;
    }
    return y;
}

std::vector<float>
CsrMatrix::toDense() const
{
    std::vector<float> d(static_cast<size_t>(_rows) * _cols, 0.0f);
    for (int r = 0; r < _rows; ++r)
        for (int i = _indptr[r]; i < _indptr[r + 1]; ++i)
            d[static_cast<size_t>(r) * _cols + _indices[i]] =
                _values[i];
    return d;
}

} // namespace neurometer
