#include "sparse/sparse_matrix.hh"

#include <random>

#include "common/error.hh"

namespace neurometer {

SparseMatrix::SparseMatrix(const SparseGenConfig &cfg)
    : _rows(cfg.rows), _cols(cfg.cols)
{
    requireConfig(cfg.rows > 0 && cfg.cols > 0, "matrix dims must be > 0");
    requireConfig(cfg.sparsity >= 0.0 && cfg.sparsity < 1.0,
                  "sparsity must be in [0, 1)");
    requireConfig(cfg.patch >= 1, "patch must be >= 1");
    requireConfig(cfg.clustering >= 0.0 && cfg.clustering <= 1.0,
                  "clustering must be in [0, 1]");

    _mask.assign(static_cast<size_t>(_rows) * _cols, 1);
    std::mt19937_64 rng(cfg.seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);

    // Split the zero budget: p of all elements die as whole patches,
    // the rest as element salt inside surviving patches.
    const double p_patch = cfg.clustering * cfg.sparsity;
    const double q_elem =
        p_patch < 1.0
            ? (cfg.sparsity - p_patch) / (1.0 - p_patch)
            : 0.0;

    const int pr = (_rows + cfg.patch - 1) / cfg.patch;
    const int pc = (_cols + cfg.patch - 1) / cfg.patch;
    std::vector<std::uint8_t> patch_dead(
        static_cast<size_t>(pr) * pc, 0);
    for (auto &d : patch_dead)
        d = uni(rng) < p_patch ? 1 : 0;

    double nnz = 0.0;
    for (int r = 0; r < _rows; ++r) {
        const int prow = r / cfg.patch;
        for (int c = 0; c < _cols; ++c) {
            const int pcol = c / cfg.patch;
            std::uint8_t alive = 1;
            if (patch_dead[static_cast<size_t>(prow) * pc + pcol])
                alive = 0;
            else if (q_elem > 0.0 && uni(rng) < q_elem)
                alive = 0;
            _mask[static_cast<size_t>(r) * _cols + c] = alive;
            nnz += alive;
        }
    }
    _nnz = nnz;
}

double
SparseMatrix::zeroBlockFraction(int bh, int bw) const
{
    requireConfig(bh >= 1 && bw >= 1, "block dims must be >= 1");
    const int br = _rows / bh;
    const int bc = _cols / bw;
    requireModel(br >= 1 && bc >= 1, "block larger than matrix");

    long zero_blocks = 0;
    for (int b = 0; b < br; ++b) {
        for (int d = 0; d < bc; ++d) {
            bool all_zero = true;
            for (int r = b * bh; all_zero && r < (b + 1) * bh; ++r) {
                for (int c = d * bw; c < (d + 1) * bw; ++c) {
                    if (isNonZero(r, c)) {
                        all_zero = false;
                        break;
                    }
                }
            }
            zero_blocks += all_zero ? 1 : 0;
        }
    }
    return double(zero_blocks) / (double(br) * bc);
}

} // namespace neurometer
