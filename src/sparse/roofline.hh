/**
 * @file
 * The Sec. IV sparse roofline model:
 *
 *   t_d = max(C/F, (S_V + S_W)/B)
 *   t_s = max(alpha*y*C/F, (S_V + beta*x*S_W)/B)
 *   gain = (P_d * t_d) / (P_s * t_s)
 *
 * where C is dense compute, F/B the machine's compute/bandwidth, x the
 * non-zero ratio, beta the CSR storage blow-up, y the compute left
 * after block/vector zero-skipping, and P the NeuroMeter runtime
 * powers of the dense and sparse runs.
 */

#ifndef NEUROMETER_SPARSE_ROOFLINE_HH
#define NEUROMETER_SPARSE_ROOFLINE_HH

#include "chip/chip.hh"
#include "perf/tfsim.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_matrix.hh"

namespace neurometer {

/** Which zero-skip scheme the compute units implement. */
enum class SkipScheme {
    TensorBlock, ///< skip TU-sized all-zero weight blocks
    RtVector,    ///< skip RT-width all-zero weight vectors
};

/** SpMV problem: weight [M x N] (sparse), batched vectors [N x K]. */
struct SpmvProblem
{
    int m = 1024;
    int n = 1024;
    int k = 32;
};

/** Evaluation of one sparsity point on one machine. */
struct SparseRunResult
{
    double x = 0.0;      ///< achieved non-zero ratio
    double beta = 0.0;   ///< CSR storage factor
    double y = 0.0;      ///< compute fraction surviving zero-skip
    double tDenseS = 0.0;
    double tSparseS = 0.0;
    Power denseP;
    Power sparseP;
    double energyEfficiencyGain = 0.0; ///< (Pd*td)/(Ps*ts)
};

/** Roofline evaluator bound to a chip and its skip granularity. */
class SparseRoofline
{
  public:
    /**
     * @param skip_size TU edge length (TensorBlock) or RT input width
     *                  (RtVector) — the zero-skip granularity.
     * @param alpha     CSR decode compute overhead (paper sets 1.0).
     */
    SparseRoofline(const ChipModel &chip, SkipScheme scheme,
                   int skip_size, double alpha = 1.0);

    /** Evaluate one generated weight matrix on this machine. */
    SparseRunResult eval(const SpmvProblem &prob,
                         const SparseMatrix &weights) const;

    /**
     * The same evaluation rendered into the unified per-layer
     * SimResult pipeline the dense simulator produces (one "spmv"
     * layer; dataflow "sparse" when `sparse_run`, "dense" otherwise),
     * so dense CNN/transformer runs and sparse SpMV runs share one
     * report format (simResultJson, the simulate CLI/serve surface).
     */
    SimResult simulate(const SpmvProblem &prob,
                       const SparseMatrix &weights,
                       bool sparse_run = true) const;

  private:
    const ChipModel &_chip;
    SkipScheme _scheme;
    int _skipSize;
    double _alpha;
};

} // namespace neurometer

#endif // NEUROMETER_SPARSE_ROOFLINE_HH
