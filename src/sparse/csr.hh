/**
 * @file
 * Tiled CSR encoding per the paper's Sec. IV scheme: the weight matrix
 * is tiled into 256x256 submatrices; each int8 non-zero carries one
 * byte of column index, each tiled row one byte of intra-tile row
 * index, and each tile two bytes of tile index. The resulting storage
 * overhead factor beta lands in the paper's [2.0, 2.5] range.
 *
 * A functional CSR (indptr/indices) with SpMV is included so the
 * encoding invariants are testable against a dense reference.
 */

#ifndef NEUROMETER_SPARSE_CSR_HH
#define NEUROMETER_SPARSE_CSR_HH

#include <cstddef>
#include <vector>

#include "sparse/sparse_matrix.hh"

namespace neurometer {

/** Size accounting of the paper's tiled CSR encoding. */
struct TiledCsrSize
{
    double valueBytes = 0.0;
    double colIndexBytes = 0.0;
    double rowIndexBytes = 0.0;
    double tileIndexBytes = 0.0;

    double total() const
    {
        return valueBytes + colIndexBytes + rowIndexBytes +
               tileIndexBytes;
    }
};

/** Compute the tiled-CSR footprint of an occupancy matrix. */
TiledCsrSize tiledCsrSize(const SparseMatrix &m, int tile = 256);

/**
 * The paper's beta: sparse bytes / (x * dense bytes), i.e. the storage
 * blow-up per retained non-zero relative to dense int8.
 */
double csrBeta(const SparseMatrix &m, int tile = 256);

/** A real CSR matrix supporting SpMV, for functional testing. */
class CsrMatrix
{
  public:
    /** Build from an occupancy mask, assigning each nnz a value. */
    CsrMatrix(const SparseMatrix &m, float value_scale = 1.0f);

    int rows() const { return _rows; }
    int cols() const { return _cols; }
    std::size_t nnz() const { return _indices.size(); }

    /** y = A * x (dense vector in, dense vector out). */
    std::vector<float> spmv(const std::vector<float> &x) const;

    /** Reconstruct the dense matrix (row-major) for verification. */
    std::vector<float> toDense() const;

  private:
    int _rows;
    int _cols;
    std::vector<int> _indptr;
    std::vector<int> _indices;
    std::vector<float> _values;
};

} // namespace neurometer

#endif // NEUROMETER_SPARSE_CSR_HH
