#include "components/vector_unit.hh"

#include "circuit/logic.hh"
#include "common/error.hh"

namespace neurometer {

VectorUnitModel::VectorUnitModel(const TechNode &tech,
                                 const VectorUnitConfig &cfg)
    : _cfg(cfg), _bd("vector_unit")
{
    requireConfig(cfg.lanes > 0, "VU lanes must be > 0");
    requireConfig(cfg.pipelineStages >= 1, "VU needs >= 1 pipe stage");

    LogicBlock lane = vectorLaneBlock(cfg.laneType);
    if (cfg.hasSfu) {
        // Piecewise-polynomial SFU: two extra multipliers + range
        // reduction + coefficient storage, duty-cycled (~20% of ops).
        LogicBlock sfu = multiplierBlock(cfg.laneType);
        sfu.gates *= 2.2;
        sfu.activity *= 0.2;
        sfu.depthFo4 = 0.0; // own pipe stages; not on the lane path
        lane += sfu;
    }
    PAT lane_one = logicPAT(tech, lane, cfg.freqHz);
    PAT lanes = lane_one;
    lanes.areaUm2 *= cfg.lanes;
    lanes.power = double(cfg.lanes) * lanes.power;

    const double bits = dataTypeBits(cfg.laneType);
    PAT pipe = registersPAT(
        tech, double(cfg.lanes) * bits * cfg.pipelineStages, cfg.freqHz,
        0.5);

    // Lane-shared sequencing/control (opcode decode, predication).
    LogicBlock ctrl;
    ctrl.gates = 800.0 + 12.0 * cfg.lanes;
    ctrl.depthFo4 = 10.0;
    ctrl.activity = 0.2;
    PAT ctrl_pat = logicPAT(tech, ctrl, cfg.freqHz);

    _bd.addLeaf("lanes", lanes);
    _bd.addLeaf("pipeline", pipe);
    _bd.addLeaf("control", ctrl_pat);

    // Lane logic spreads over pipelineStages stages.
    const double stage_delay =
        lane_one.timing.delayS / cfg.pipelineStages + tech.dffDelayS();
    _minCycleS = stage_delay;
    _bd.self().timing.delayS = lane_one.timing.delayS;
    _bd.self().timing.cycleS = _minCycleS;
}

} // namespace neurometer
