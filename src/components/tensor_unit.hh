/**
 * @file
 * Tensor Unit (TU): the generic systolic array model (paper Sec. II-A).
 *
 * A TU is (1) an array of systolic cells — each a MAC plus a DFF/SRAM
 * local buffer; (2) the inner-array interconnect (unicast nearest-
 * neighbor as in TPU-v1, or multicast X/Y buses as in Eyeriss); and
 * (3) DFF/SRAM I/O FIFOs on the array edges.
 */

#ifndef NEUROMETER_COMPONENTS_TENSOR_UNIT_HH
#define NEUROMETER_COMPONENTS_TENSOR_UNIT_HH

#include "circuit/arith.hh"
#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** Inner-TU interconnect styles (paper Fig. 2(c)). */
enum class TuInterconnect { Unicast, Multicast };

/** Supported systolic dataflows for unicast TUs. */
enum class TuDataflow { WeightStationary, OutputStationary };

/** High-level TU configuration — all the user must supply. */
struct TensorUnitConfig
{
    int rows = 128;
    int cols = 128;
    DataType mulType = DataType::Int8;
    /** Accumulation type; defaults from mulType when left as given. */
    DataType accType = DataType::Int32;
    TuInterconnect interconnect = TuInterconnect::Unicast;
    TuDataflow dataflow = TuDataflow::WeightStationary;

    /**
     * Per-cell local storage beyond the minimum pipeline registers
     * (Eyeriss-style row-stationary PEs carry a real scratchpad).
     */
    double perCellSramBytes = 0.0;
    double perCellRegBytes = 0.0; ///< 0 = auto from dataflow/datatypes

    /**
     * Per-cell control logic gates (NAND2-equivalent). Plain systolic
     * cells need almost none; Eyeriss-style PEs carry a real control
     * FSM managing their scratchpads and dataflow.
     */
    double perCellCtrlGates = 20.0;

    int ioFifoDepth = 4;
    double freqHz = 700e6;
};

/** Evaluated TU with PAT breakdown and performance metadata. */
class TensorUnitModel
{
  public:
    TensorUnitModel(const TechNode &tech, const TensorUnitConfig &cfg);

    /**
     * PAT breakdown at full utilization (all cells active every cycle).
     * Children: "mac", "local_buffer", "interconnect", "io_fifo".
     */
    const Breakdown &breakdown() const { return _bd; }

    /** MAC throughput: 2 ops (mul+add) per cell per cycle. */
    double peakOpsPerCycle() const;
    double peakOpsPerS() const { return peakOpsPerCycle() * _cfg.freqHz; }

    /** Minimum clock period this TU supports. */
    double minCycleS() const { return _minCycleS; }

    /** Dynamic energy per MAC operation pair (for runtime analysis). */
    double energyPerMacJ() const { return _energyPerMacJ; }

    const TensorUnitConfig &config() const { return _cfg; }

    /** Edge length of one systolic cell (um), for floorplan estimates. */
    double cellPitchUm() const { return _cellPitchUm; }

  private:
    TensorUnitConfig _cfg;
    Breakdown _bd;
    double _minCycleS = 0.0;
    double _energyPerMacJ = 0.0;
    double _cellPitchUm = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_TENSOR_UNIT_HH
