#include "components/tensor_unit.hh"

#include <algorithm>
#include <cmath>

#include "circuit/logic.hh"
#include "circuit/rc_tree.hh"
#include "circuit/wire.hh"
#include "common/error.hh"
#include "memory/fifo.hh"

namespace neurometer {

TensorUnitModel::TensorUnitModel(const TechNode &tech,
                                 const TensorUnitConfig &cfg)
    : _cfg(cfg), _bd("tensor_unit")
{
    requireConfig(cfg.rows > 0 && cfg.cols > 0, "TU dimensions must be > 0");
    requireConfig(cfg.freqHz > 0.0, "TU frequency must be > 0");

    const double cells = double(cfg.rows) * cfg.cols;
    const int mul_bits = dataTypeBits(cfg.mulType);
    const int acc_bits = dataTypeBits(cfg.accType);

    // ---- Per-cell MAC logic (+ any per-cell control FSM) --------------
    LogicBlock mac = macBlock(cfg.mulType, cfg.accType);
    if (cfg.perCellCtrlGates > 0.0) {
        LogicBlock ctrl;
        ctrl.gates = cfg.perCellCtrlGates;
        ctrl.depthFo4 = 0.0; // control path, off the MAC critical path
        ctrl.activity = 0.25;
        mac += ctrl;
    }
    PAT mac_pat = logicPAT(tech, mac, cfg.freqHz);

    // ---- Per-cell local buffer ---------------------------------------
    // Minimum pipeline state: stationary operand + pass-through operand
    // + partial sum (weight-stationary) or stationary accumulator
    // (output-stationary).
    double reg_bytes = cfg.perCellRegBytes;
    if (reg_bytes <= 0.0)
        reg_bytes = (2.0 * mul_bits + acc_bits) / 8.0;
    PAT buf_pat = registersPAT(tech, reg_bytes * 8.0, cfg.freqHz, 0.4);
    if (cfg.perCellSramBytes > 0.0) {
        buf_pat += scratchpadPAT(tech, cfg.perCellSramBytes,
                                 /*width_bits=*/16, cfg.freqHz,
                                 /*accesses_per_cycle=*/2.0,
                                 /*sram_cells=*/true);
    }

    // ---- Cell floorplan ------------------------------------------------
    const double cell_area = mac_pat.areaUm2 + buf_pat.areaUm2;
    _cellPitchUm = std::sqrt(cell_area);

    // ---- Inner-array interconnect ---------------------------------------
    const WireModel wires(tech);
    PAT icn_pat;
    double icn_cycle = 0.0;
    const double vdd = tech.vdd();
    const WireParams &local = tech.wire(WireLayer::Local);

    if (cfg.interconnect == TuInterconnect::Unicast) {
        // Nearest-neighbor links: operands flow right, partial sums flow
        // down (WS). Each cell drives pitch-length wires every cycle.
        const double hop_cap =
            local.cFPerUm * _cellPitchUm + wires.unitDriverCF();
        const double bits_per_cell = mul_bits + acc_bits;
        const double e_cell_wires =
            bits_per_cell * hop_cap * vdd * vdd * 0.4; // toggle rate
        icn_pat.power.dynamicW = cells * e_cell_wires * cfg.freqHz;
        // Drivers fold into cell area; count their gates explicitly.
        icn_pat.areaUm2 =
            cells * bits_per_cell * 0.5 * tech.nand2AreaUm2();
        const WireResult hop = wires.unrepeated(
            WireLayer::Local, _cellPitchUm,
            wires.unitDriverROhm() / 2.0, wires.unitDriverCF());
        icn_cycle = hop.delayS + tech.dffDelayS();
        icn_pat.timing.delayS = hop.delayS;
        icn_pat.timing.cycleS = icn_cycle;
    } else {
        // Multicast X/Y buses (paper Fig. 2(d)): the FIFO driver feeds a
        // segmented wire with one cell load per column of a row bus.
        const double drv_r = wires.unitDriverROhm() / 16.0;
        RCTree row_bus(drv_r, wires.unitDriverCF() * 16.0);
        int prev = 0;
        const double seg_r = local.rOhmPerUm * _cellPitchUm;
        const double seg_c = local.cFPerUm * _cellPitchUm;
        const double cell_in_cap = wires.unitDriverCF();
        for (int i = 0; i < cfg.cols; ++i) {
            prev = row_bus.addNode(prev, seg_r, seg_c);
            row_bus.addCap(prev, cell_in_cap);
        }
        const double bus_delay = row_bus.criticalDelayS();
        const double bus_cap = row_bus.totalCapF();

        // Row buses carry inputs (mul bits both X and Y directions);
        // output collection reuses the Y bus at acc width.
        const double row_buses = cfg.rows * (mul_bits);
        const double col_buses = cfg.cols * (mul_bits + acc_bits);
        const double total_bus_bits =
            row_buses + col_buses * double(cfg.rows) / cfg.cols;
        // A multicast write toggles one bus per row per cycle.
        icn_pat.power.dynamicW = (cfg.rows * mul_bits + cfg.cols * acc_bits)
            * bus_cap * vdd * vdd * 0.4 * cfg.freqHz;
        icn_pat.areaUm2 = total_bus_bits *
            (0.3 * local.pitchUm * _cellPitchUm * cfg.cols * 0.1 +
             2.0 * tech.nand2AreaUm2());
        icn_cycle = bus_delay + tech.dffDelayS();
        icn_pat.timing.delayS = bus_delay;
        icn_pat.timing.cycleS = icn_cycle;
    }

    // ---- Edge I/O FIFOs ---------------------------------------------------
    FifoConfig in_fifo;
    in_fifo.entries = cfg.ioFifoDepth;
    in_fifo.widthBits = mul_bits;
    in_fifo.freqHz = cfg.freqHz;
    FifoConfig out_fifo = in_fifo;
    out_fifo.widthBits = acc_bits;
    PAT fifo_pat;
    // One input FIFO per row (activations), one per column (weights in /
    // results out).
    for (int i = 0; i < cfg.rows; ++i)
        fifo_pat += fifoPAT(tech, in_fifo);
    for (int i = 0; i < cfg.cols; ++i)
        fifo_pat += fifoPAT(tech, out_fifo);

    // ---- Assemble ------------------------------------------------------------
    PAT macs = mac_pat;
    macs.areaUm2 *= cells;
    macs.power = cells * macs.power;
    PAT bufs = buf_pat;
    bufs.areaUm2 *= cells;
    bufs.power = cells * bufs.power;

    _bd.addLeaf("mac", macs);
    _bd.addLeaf("local_buffer", bufs);
    _bd.addLeaf("interconnect", icn_pat);
    _bd.addLeaf("io_fifo", fifo_pat);

    _minCycleS = std::max({mac_pat.timing.cycleS, icn_cycle,
                           fifo_pat.timing.cycleS});
    requireConfig(_minCycleS <= 1.0 / cfg.freqHz * 1.0001 ||
                      cfg.interconnect == TuInterconnect::Multicast,
                  "TU cannot meet the requested clock rate");

    const double dyn_w = _bd.total().power.dynamicW;
    _energyPerMacJ = dyn_w / (cells * cfg.freqHz);
}

double
TensorUnitModel::peakOpsPerCycle() const
{
    return 2.0 * double(_cfg.rows) * _cfg.cols;
}

} // namespace neurometer
