/**
 * @file
 * Peripheral blocks: off-chip memory ports (DDR/HBM controllers + PHY),
 * PCIe host interface, inter-chip interconnect (ICI) links with their
 * network interface units (NIU), and DMA engines.
 *
 * These are I/O- and analog-dominated blocks, so they follow empirical
 * per-bandwidth / per-lane constants (calibrated against TPU-v1/v2
 * floorplans) with weak (sqrt) area scaling across nodes — SerDes and
 * PHY analog does not shrink like logic.
 */

#ifndef NEUROMETER_COMPONENTS_PERIPH_HH
#define NEUROMETER_COMPONENTS_PERIPH_HH

#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** Off-chip DRAM families. */
enum class DramKind { DDR3, DDR4, HBM2 };

/**
 * A DRAM port: controller + PHY sized for the requested bandwidth.
 * Energy accounts for the on-die interface only (device energy is off
 * chip). Dynamic power assumes full-bandwidth streaming; scale by
 * utilization for runtime analysis.
 */
Breakdown dramPort(const TechNode &tech, DramKind kind,
                   double bandwidth_bytes_per_s);

/** PCIe endpoint of `lanes` lanes at `gbps_per_lane` (Gen3 ~ 8 Gb/s). */
Breakdown pcieInterface(const TechNode &tech, int lanes,
                        double gbps_per_lane = 8.0);

/**
 * Inter-chip interconnect: NIU + router/switch + SerDes lanes for
 * `links` links of `gbps_per_direction` each (TPU-v2 style ICI).
 */
Breakdown iciInterface(const TechNode &tech, int links,
                       double gbps_per_direction);

/** DMA engine moving `bandwidth_bytes_per_s` at `freq_hz`. */
Breakdown dmaEngine(const TechNode &tech, double bandwidth_bytes_per_s,
                    double freq_hz);

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_PERIPH_HH
