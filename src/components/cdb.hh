/**
 * @file
 * Central Data Bus (CDB): the intra-core interconnect between VReg and
 * the functional components (TU, VU, Mem). Wires route around the
 * blocks, so their length is estimated as the square root of the summed
 * component area; long runs are pipelined to hold the clock (paper
 * Sec. II-A).
 */

#ifndef NEUROMETER_COMPONENTS_CDB_HH
#define NEUROMETER_COMPONENTS_CDB_HH

#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** High-level CDB configuration. */
struct CdbConfig
{
    int busBits = 1024;        ///< data width per attached unit
    int attachedUnits = 3;     ///< TU(s), VU, Mem
    double routedAreaUm2 = 0.0;///< area the bus routes around
    double freqHz = 700e6;
};

/** Evaluated CDB model. */
class CdbModel
{
  public:
    CdbModel(const TechNode &tech, const CdbConfig &cfg);

    const Breakdown &breakdown() const { return _bd; }

    int pipelineStages() const { return _stages; }
    double minCycleS() const { return _minCycleS; }

    /** Dynamic energy per byte moved across the bus. */
    double energyPerByteJ() const { return _energyPerByte; }

    const CdbConfig &config() const { return _cfg; }

  private:
    CdbConfig _cfg;
    Breakdown _bd;
    int _stages = 1;
    double _minCycleS = 0.0;
    double _energyPerByte = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_CDB_HH
