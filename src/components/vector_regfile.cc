#include "components/vector_regfile.hh"

#include <algorithm>
#include <cstdio>

#include "common/error.hh"
#include "memory/design_cache.hh"

namespace neurometer {

VectorRegfileModel::VectorRegfileModel(const TechNode &tech,
                                       const VectorRegfileConfig &cfg)
    : _cfg(cfg), _bd("vector_regfile")
{
    requireConfig(cfg.lanes > 0 && cfg.laneBits > 0 && cfg.entries > 0,
                  "VReg geometry must be positive");
    requireConfig(cfg.readPorts >= 1 && cfg.writePorts >= 1,
                  "VReg needs at least 1R1W");

    const double total_bits =
        double(cfg.entries) * cfg.lanes * cfg.laneBits;

    MemoryRequest req;
    req.capacityBytes = total_bits / 8.0;
    req.blockBytes = double(cfg.lanes) * cfg.laneBits / 8.0;
    req.cell = MemCellType::SRAM; // multi-ported RF cells
    req.readPorts = cfg.readPorts;
    req.writePorts = cfg.writePorts;

    // Register files are shallow and wide: rows = entries, the lanes
    // fold into parallel subarray slices. Heavily ported cells blow up
    // the wordline run, so narrow the slices until the clock closes.
    const int rows = std::max(16, cfg.entries);
    const double target_cycle = 1.0 / cfg.freqHz;
    // The whole cols search is one cache entry: its result depends
    // only on the request, rows, and the clock target.
    char vrf[48];
    std::snprintf(vrf, sizeof(vrf), "vrf|%d|%a|", rows, target_cycle);
    MemoryDesign d = memoryDesignCache().getOrCompute(
        vrf + memoryRequestKey(req, tech), [&] {
            MemoryModel mm(tech);
            MemoryDesign best;
            bool have = false;
            // Wide slices first (least periphery); stop at the first
            // geometry meeting the clock. If none does, keep the
            // fastest.
            for (int cols : {256, 128, 64, 32, 16}) {
                if (double(cols) >
                    2.0 * std::max(16.0, total_bits / rows))
                    continue;
                MemoryDesign cand =
                    mm.evaluate(req, /*banks=*/1, rows, cols,
                                cfg.readPorts, cfg.writePorts);
                if (!cand.feasible)
                    continue;
                if (!have || cand.randomCycleS < best.randomCycleS) {
                    best = cand;
                    have = true;
                }
                if (cand.randomCycleS <= target_cycle) {
                    best = cand;
                    break;
                }
            }
            requireModel(have, "VReg geometry infeasible");
            return best;
        });

    _readEnergyJ = d.readEnergyJ;
    _writeEnergyJ = d.writeEnergyJ;
    _minCycleS = d.randomCycleS;

    PAT pat;
    pat.areaUm2 = d.areaUm2;
    // Full-activity dynamic power: every port streams every cycle.
    pat.power.dynamicW = cfg.freqHz * (cfg.readPorts * d.readEnergyJ +
                                       cfg.writePorts * d.writeEnergyJ);
    pat.power.leakageW = d.leakageW;
    pat.timing.delayS = d.accessDelayS;
    pat.timing.cycleS = d.randomCycleS;
    _bd = Breakdown("vector_regfile", pat);
}

} // namespace neurometer
