/**
 * @file
 * Reduction Tree (RT): an N-input 1-D MAC array cascaded into a log(N)-
 * layered adder tree with optional inter-layer pipeline flops (paper
 * Sec. II-A). RTs map sparse/irregular reductions more flexibly than 2-D
 * systolic arrays and anchor the Sec. IV sparsity mini-study.
 */

#ifndef NEUROMETER_COMPONENTS_REDUCTION_TREE_HH
#define NEUROMETER_COMPONENTS_REDUCTION_TREE_HH

#include "circuit/arith.hh"
#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** High-level RT configuration. */
struct ReductionTreeConfig
{
    int inputs = 64;                 ///< N; must be a power of two
    DataType mulType = DataType::Int8;
    DataType accType = DataType::Int32;
    /** Insert pipeline flops every this many tree layers (0 = none). */
    int pipelineEveryLayers = 1;
    double freqHz = 700e6;
};

/** Evaluated RT model. */
class ReductionTreeModel
{
  public:
    ReductionTreeModel(const TechNode &tech,
                       const ReductionTreeConfig &cfg);

    /** Children: "mac_array", "adder_tree", "pipeline". */
    const Breakdown &breakdown() const { return _bd; }

    /** N multiplies + (N-1) adds per invocation ~= 2N ops/cycle. */
    double peakOpsPerCycle() const;
    double peakOpsPerS() const { return peakOpsPerCycle() * _cfg.freqHz; }

    double minCycleS() const { return _minCycleS; }

    /** Full input->result latency including pipeline stages. */
    double latencyCycles() const { return _latencyCycles; }

    const ReductionTreeConfig &config() const { return _cfg; }

  private:
    ReductionTreeConfig _cfg;
    Breakdown _bd;
    double _minCycleS = 0.0;
    double _latencyCycles = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_REDUCTION_TREE_HH
