/**
 * @file
 * Network-on-Chip model: 2-D mesh, ring, bus, and H-tree topologies of
 * wormhole routers and repeated/pipelined links (paper Sec. II-A).
 */

#ifndef NEUROMETER_COMPONENTS_NOC_HH
#define NEUROMETER_COMPONENTS_NOC_HH

#include <string>

#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** Supported NoC topologies. */
enum class NocTopology { Bus, Ring, Mesh2D, HTree };

std::string nocTopologyName(NocTopology t);

/** High-level NoC configuration. */
struct NocConfig
{
    NocTopology topology = NocTopology::Mesh2D;
    int tx = 2;               ///< tiles in x
    int ty = 2;               ///< tiles in y
    /** Explicit link width; 0 = derive from the bisection target. */
    int flitBits = 0;
    /** Bisection bandwidth target per direction (bytes/s). */
    double bisectionBwBytesPerS = 0.0;
    double freqHz = 700e6;
    /** Tile area (um^2) from which link lengths are derived. */
    double tileAreaUm2 = 0.0;
    int bufferDepth = 4;      ///< router input buffer, flits per port
};

/** Evaluated NoC with routers + links breakdown. */
class NocModel
{
  public:
    NocModel(const TechNode &tech, const NocConfig &cfg);

    /** Children: "routers", "links". */
    const Breakdown &breakdown() const { return _bd; }

    int flitBits() const { return _flitBits; }
    int numRouters() const { return _numRouters; }
    int numLinks() const { return _numLinks; }

    /** Achieved bisection bandwidth per direction (bytes/s). */
    double bisectionBwBytesPerS() const { return _bisectionBw; }

    /** Average hop count between random tile pairs. */
    double avgHops() const { return _avgHops; }

    /** Dynamic energy moving one byte one hop (router + link). */
    double energyPerByteHopJ() const { return _energyPerByteHop; }

    double minCycleS() const { return _minCycleS; }

    const NocConfig &config() const { return _cfg; }

  private:
    NocConfig _cfg;
    Breakdown _bd;
    int _flitBits = 0;
    int _numRouters = 0;
    int _numLinks = 0;
    double _bisectionBw = 0.0;
    double _avgHops = 0.0;
    double _energyPerByteHop = 0.0;
    double _minCycleS = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_NOC_HH
