#include "components/periph.hh"

#include <algorithm>
#include <cmath>

#include "circuit/logic.hh"
#include "common/error.hh"
#include "common/units.hh"
#include "memory/fifo.hh"

namespace neurometer {

namespace {

/**
 * Analog/mixed-signal area scales weakly with the node: ~sqrt of the
 * logic shrink relative to the constant's reference node.
 */
double
analogScale(const TechNode &tech, double ref_node_nm)
{
    return std::sqrt(tech.nodeNm() / ref_node_nm);
}

/** Controller/digital logic at `gates`, evaluated at a nominal clock. */
PAT
ctrlLogic(const TechNode &tech, double gates, double freq_hz)
{
    LogicBlock blk;
    blk.gates = gates;
    blk.depthFo4 = 16.0;
    blk.activity = 0.2;
    return logicPAT(tech, blk, freq_hz);
}

} // namespace

Breakdown
dramPort(const TechNode &tech, DramKind kind, double bandwidth_bytes_per_s)
{
    requireConfig(bandwidth_bytes_per_s > 0.0,
                  "DRAM port bandwidth must be > 0");

    Breakdown bd("dram_port");
    const double gbs = bandwidth_bytes_per_s / units::giga;

    // Reference-calibrated constants (area in mm^2 at the ref node).
    double phy_mm2_per_gbs, ctrl_gates_per_gbs, pj_per_bit, ref_node;
    double chan_gbs; // bandwidth granularity of one channel/stack
    switch (kind) {
      case DramKind::DDR3:
        // TPU-v1: two DDR3-2133 channels ~ 34 GB/s, modeled ~6% of die.
        phy_mm2_per_gbs = 0.42;
        ctrl_gates_per_gbs = 9.0e3;
        pj_per_bit = 18.0;
        ref_node = 28.0;
        chan_gbs = 17.0;
        break;
      case DramKind::DDR4:
        phy_mm2_per_gbs = 0.30;
        ctrl_gates_per_gbs = 8.0e3;
        pj_per_bit = 14.0;
        ref_node = 28.0;
        chan_gbs = 25.0;
        break;
      case DramKind::HBM2:
        // TPU-v2: 700 GB/s of HBM, ports ~9% of a ~513 mm^2 model.
        phy_mm2_per_gbs = 0.058;
        ctrl_gates_per_gbs = 2.2e3;
        pj_per_bit = 3.5;
        ref_node = 16.0;
        chan_gbs = 180.0;
        break;
      default:
        throw ModelError("unknown DRAM kind");
    }

    const int channels =
        std::max(1, int(std::ceil(gbs / chan_gbs)));

    PAT phy;
    phy.areaUm2 = mm2ToUm2(phy_mm2_per_gbs * gbs) *
                  analogScale(tech, ref_node);
    phy.power.dynamicW = pj_per_bit * 1e-12 * bandwidth_bytes_per_s * 8.0;
    phy.power.leakageW = 0.05 * channels; // bias/always-on analog
    bd.addLeaf("phy", phy);

    PAT ctrl = ctrlLogic(tech, ctrl_gates_per_gbs * gbs, 1e9);
    // Scheduling queues.
    FifoConfig q;
    q.entries = 32;
    q.widthBits = 256;
    q.freqHz = 1e9;
    q.activity = 0.5;
    for (int c = 0; c < channels; ++c)
        ctrl += fifoPAT(tech, q);
    bd.addLeaf("controller", ctrl);
    return bd;
}

Breakdown
pcieInterface(const TechNode &tech, int lanes, double gbps_per_lane)
{
    requireConfig(lanes > 0, "PCIe lanes must be > 0");

    Breakdown bd("pcie");
    // ~0.55 mm^2 per Gen3 lane at 28 nm (SerDes + glue), weakly scaled.
    PAT serdes;
    serdes.areaUm2 =
        mm2ToUm2(0.55 * lanes) * analogScale(tech, 28.0) *
        (gbps_per_lane / 8.0);
    const double bw_bits = lanes * gbps_per_lane * 1e9;
    serdes.power.dynamicW = 6.0e-12 * bw_bits; // ~6 pJ/bit
    serdes.power.leakageW = 0.02 * lanes;
    bd.addLeaf("serdes", serdes);

    PAT ctrl = ctrlLogic(tech, 120e3, 1e9); // LTSSM + DMA glue + TLP
    bd.addLeaf("controller", ctrl);
    return bd;
}

Breakdown
iciInterface(const TechNode &tech, int links, double gbps_per_direction)
{
    requireConfig(links > 0, "ICI links must be > 0");

    Breakdown bd("ici");
    const double lane_gbps = 28.0;
    const int lanes_per_link = std::max(
        1, int(std::ceil(gbps_per_direction / lane_gbps)));

    // SerDes macro ~0.68 mm^2/lane at 16 nm, weak node scaling.
    PAT serdes;
    serdes.areaUm2 = mm2ToUm2(0.68) * lanes_per_link * links *
                     analogScale(tech, 16.0);
    const double bw_bits = links * gbps_per_direction * 1e9 * 2.0;
    serdes.power.dynamicW = 8.0e-12 * bw_bits;
    serdes.power.leakageW = 0.03 * lanes_per_link * links;
    bd.addLeaf("serdes", serdes);

    // NIU + switch: packetization, routing, retransmit buffers.
    PAT niu = ctrlLogic(tech, 900e3, 1e9);
    FifoConfig buf;
    buf.entries = 256;
    buf.widthBits = 512;
    buf.freqHz = 1e9;
    buf.activity = 0.6;
    for (int l = 0; l < links; ++l)
        niu += fifoPAT(tech, buf);
    bd.addLeaf("niu_switch", niu);
    return bd;
}

Breakdown
dmaEngine(const TechNode &tech, double bandwidth_bytes_per_s,
          double freq_hz)
{
    Breakdown bd("dma");
    const double bytes_per_cycle =
        bandwidth_bytes_per_s / std::max(freq_hz, 1.0);
    PAT ctrl = ctrlLogic(tech, 25e3 + 50.0 * bytes_per_cycle, freq_hz);
    FifoConfig q;
    q.entries = 64;
    q.widthBits = std::max(64, int(bytes_per_cycle * 8.0));
    q.freqHz = freq_hz;
    q.activity = 0.6;
    ctrl += fifoPAT(tech, q);
    bd.addLeaf("engine", ctrl);
    return bd;
}

} // namespace neurometer
