#include "components/reduction_tree.hh"

#include <algorithm>
#include <cmath>

#include "circuit/logic.hh"
#include "common/error.hh"

namespace neurometer {

namespace {

bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

ReductionTreeModel::ReductionTreeModel(const TechNode &tech,
                                       const ReductionTreeConfig &cfg)
    : _cfg(cfg), _bd("reduction_tree")
{
    requireConfig(isPow2(cfg.inputs),
                  "reduction tree inputs must be a power of two");
    requireConfig(cfg.freqHz > 0.0, "RT frequency must be > 0");

    const int layers = static_cast<int>(std::log2(cfg.inputs));
    const int acc_bits = dataTypeBits(cfg.accType);

    // ---- Leaf 1-D MAC (multiplier) array -----------------------------
    const LogicBlock mul = multiplierBlock(cfg.mulType);
    PAT mul_one = logicPAT(tech, mul, cfg.freqHz);
    PAT mul_all = mul_one;
    mul_all.areaUm2 *= cfg.inputs;
    mul_all.power = double(cfg.inputs) * mul_all.power;
    // Input operand registers.
    mul_all += registersPAT(
        tech, 2.0 * dataTypeBits(cfg.mulType) * cfg.inputs, cfg.freqHz,
        0.5);

    // ---- Adder tree ----------------------------------------------------
    // Default: 2-to-1 adders of the accumulation type at every layer
    // (users can widen per layer by choosing a wider accType).
    const LogicBlock add = adderBlock(cfg.accType);
    PAT add_one = logicPAT(tech, add, cfg.freqHz);
    const int adders = cfg.inputs - 1;
    PAT add_all = add_one;
    add_all.areaUm2 *= adders;
    add_all.power = double(adders) * add_all.power;

    // ---- Pipeline flops between layers ------------------------------
    PAT pipe;
    int pipe_stages = 0;
    if (cfg.pipelineEveryLayers > 0) {
        double pipe_bits = 0.0;
        for (int l = 1; l <= layers; ++l) {
            if (l % cfg.pipelineEveryLayers != 0)
                continue;
            const int values = cfg.inputs >> l; // outputs of layer l
            pipe_bits += double(values) * acc_bits;
            ++pipe_stages;
        }
        pipe = registersPAT(tech, pipe_bits, cfg.freqHz, 0.5);
    }

    _bd.addLeaf("mac_array", mul_all);
    _bd.addLeaf("adder_tree", add_all);
    _bd.addLeaf("pipeline", pipe);

    // ---- Timing -----------------------------------------------------------
    const int layers_per_stage = cfg.pipelineEveryLayers > 0
        ? cfg.pipelineEveryLayers
        : layers;
    const double stage_logic =
        std::max(mul_one.timing.delayS,
                 layers_per_stage * add_one.timing.delayS);
    _minCycleS = stage_logic + tech.dffDelayS();
    _latencyCycles = 1.0 + pipe_stages;
    _bd.self().timing.delayS =
        mul_one.timing.delayS + layers * add_one.timing.delayS;
    _bd.self().timing.cycleS = _minCycleS;
}

double
ReductionTreeModel::peakOpsPerCycle() const
{
    return 2.0 * _cfg.inputs;
}

} // namespace neurometer
