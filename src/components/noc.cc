#include "components/noc.hh"

#include <algorithm>
#include <cmath>

#include "circuit/logic.hh"
#include "circuit/wire.hh"
#include "common/error.hh"
#include "memory/fifo.hh"

namespace neurometer {

std::string
nocTopologyName(NocTopology t)
{
    switch (t) {
      case NocTopology::Bus: return "bus";
      case NocTopology::Ring: return "ring";
      case NocTopology::Mesh2D: return "mesh2d";
      case NocTopology::HTree: return "htree";
    }
    throw ModelError("unknown NoC topology");
}

namespace {

/** Per-topology structural parameters. */
struct Shape
{
    int routers;
    int links;        // unidirectional channels
    int routerPorts;  // per router, incl. local port
    int bisectionChannels; // per direction
    double avgHops;
    double linkLenFactor; // link length in units of tile pitch
};

Shape
shapeFor(const NocConfig &cfg)
{
    const int n = cfg.tx * cfg.ty;
    Shape s{};
    switch (cfg.topology) {
      case NocTopology::Bus:
        s.routers = 0;
        s.links = 1; // one shared multi-drop channel pair
        s.routerPorts = 0;
        s.bisectionChannels = 1;
        s.avgHops = 1.0;
        s.linkLenFactor = std::max(1.0, n / 2.0);
        break;
      case NocTopology::Ring:
        s.routers = n;
        s.links = 2 * n; // bidirectional ring
        s.routerPorts = 3;
        s.bisectionChannels = 2;
        s.avgHops = n / 4.0 + 0.5;
        s.linkLenFactor = 1.0;
        break;
      case NocTopology::Mesh2D: {
        s.routers = n;
        s.links = 2 * ((cfg.tx - 1) * cfg.ty + cfg.tx * (cfg.ty - 1));
        s.routerPorts = 5;
        s.bisectionChannels = std::min(cfg.tx, cfg.ty);
        s.avgHops = (cfg.tx + cfg.ty) / 3.0;
        s.linkLenFactor = 1.0;
        break;
      }
      case NocTopology::HTree: {
        const int levels =
            std::max(1, int(std::ceil(std::log2(std::max(2, n)))));
        s.routers = n - 1;
        s.links = 2 * 2 * (n - 1);
        s.routerPorts = 3;
        s.bisectionChannels = 1;
        s.avgHops = levels;
        s.linkLenFactor = 1.5;
        break;
      }
      default:
        throw ModelError("unknown NoC topology");
    }
    return s;
}

} // namespace

NocModel::NocModel(const TechNode &tech, const NocConfig &cfg)
    : _cfg(cfg), _bd("noc")
{
    requireConfig(cfg.tx >= 1 && cfg.ty >= 1, "NoC dims must be >= 1");
    requireConfig(cfg.freqHz > 0.0, "NoC frequency must be > 0");
    requireConfig(cfg.tileAreaUm2 > 0.0, "NoC needs the tile area");

    const Shape s = shapeFor(cfg);
    _numRouters = s.routers;
    _numLinks = s.links;
    _avgHops = s.avgHops;

    // ---- Link width: honor the explicit width or solve the bisection
    // bandwidth target.
    if (cfg.flitBits > 0) {
        _flitBits = cfg.flitBits;
    } else if (cfg.bisectionBwBytesPerS > 0.0) {
        const double bits = cfg.bisectionBwBytesPerS * 8.0 /
                            (s.bisectionChannels * cfg.freqHz);
        _flitBits = std::max(32, int(std::ceil(bits / 32.0)) * 32);
    } else {
        _flitBits = 256;
    }
    _bisectionBw =
        s.bisectionChannels * _flitBits / 8.0 * cfg.freqHz;

    const double tile_pitch = std::sqrt(cfg.tileAreaUm2);
    const WireModel wires(tech);

    // ---- Links -----------------------------------------------------------
    PAT link_pat;
    double link_energy_per_bit = 0.0;
    {
        const double len = tile_pitch * s.linkLenFactor;
        PAT one = wires.bus(WireLayer::Global, len, _flitBits, cfg.freqHz,
                            /*activity=*/0.35);
        link_energy_per_bit =
            wires.repeated(WireLayer::Global, len,
                           wires.unitDriverCF()).energyJ;
        link_pat = one;
        link_pat.areaUm2 *= s.links;
        link_pat.power = double(s.links) * link_pat.power;
        link_pat.timing = one.timing;
    }

    // ---- Routers ------------------------------------------------------------
    PAT router_pat;
    double router_energy_per_flit = 0.0;
    if (s.routers > 0) {
        PAT one;
        // Input buffers.
        FifoConfig buf;
        buf.entries = cfg.bufferDepth;
        buf.widthBits = _flitBits;
        buf.freqHz = cfg.freqHz;
        buf.activity = 0.5;
        PAT buf_pat = fifoPAT(tech, buf);
        for (int p = 0; p < s.routerPorts; ++p)
            one += buf_pat;
        // Crossbar: crosspoint gates per bit per port pair.
        LogicBlock xbar;
        xbar.gates = 0.4 * _flitBits * s.routerPorts * s.routerPorts;
        xbar.depthFo4 = 6.0;
        xbar.activity = 0.15;
        one += logicPAT(tech, xbar, cfg.freqHz);
        // VC/switch allocator + routing logic.
        LogicBlock alloc;
        alloc.gates = 500.0 + 60.0 * s.routerPorts * s.routerPorts;
        alloc.depthFo4 = 12.0;
        alloc.activity = 0.2;
        one += logicPAT(tech, alloc, cfg.freqHz);

        router_energy_per_flit =
            one.power.dynamicW / cfg.freqHz; // full-activity estimate
        router_pat = one;
        router_pat.areaUm2 *= s.routers;
        router_pat.power = double(s.routers) * router_pat.power;
        router_pat.timing = one.timing;
    } else {
        // Bus: central arbiter only.
        LogicBlock arb;
        arb.gates = 300.0 + 40.0 * cfg.tx * cfg.ty;
        arb.depthFo4 = 10.0;
        arb.activity = 0.2;
        router_pat = logicPAT(tech, arb, cfg.freqHz);
        router_energy_per_flit = router_pat.power.dynamicW / cfg.freqHz;
    }

    _bd.addLeaf("routers", router_pat);
    _bd.addLeaf("links", link_pat);

    _energyPerByteHop =
        (link_energy_per_bit * 8.0 * 0.5 /*avg toggle*/) +
        router_energy_per_flit * 8.0 / _flitBits;
    _minCycleS = std::max(link_pat.timing.cycleS,
                          router_pat.timing.cycleS);
    _bd.self().timing.cycleS = _minCycleS;
}

} // namespace neurometer
