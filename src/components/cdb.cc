#include "components/cdb.hh"

#include <cmath>

#include "circuit/wire.hh"
#include "common/error.hh"

namespace neurometer {

CdbModel::CdbModel(const TechNode &tech, const CdbConfig &cfg)
    : _cfg(cfg), _bd("cdb")
{
    requireConfig(cfg.busBits > 0, "CDB width must be > 0");
    requireConfig(cfg.routedAreaUm2 > 0.0, "CDB needs the routed area");
    requireConfig(cfg.attachedUnits >= 1, "CDB needs attached units");

    // Wires route around the functional blocks: one run per attached
    // unit, each ~ sqrt of the covered area.
    const double run_len = std::sqrt(cfg.routedAreaUm2);
    const WireModel wires(tech);

    PAT total;
    int worst_stages = 1;
    for (int u = 0; u < cfg.attachedUnits; ++u) {
        int stages = 1;
        PAT run = wires.bus(WireLayer::Intermediate, run_len, cfg.busBits,
                            cfg.freqHz, /*activity=*/0.35, &stages);
        worst_stages = std::max(worst_stages, stages);
        total += run;
    }

    _stages = worst_stages;
    _minCycleS = total.timing.cycleS;
    _energyPerByte =
        wires.repeated(WireLayer::Intermediate, run_len,
                       wires.unitDriverCF()).energyJ * 8.0 * 0.5;
    _bd = Breakdown("cdb", total);
}

} // namespace neurometer
