/**
 * @file
 * Vector Register file (VReg): the data-exchange hub between TU, VU,
 * and Mem. NeuroMeter auto-configures its ports — two read ports and
 * one write port per attached functional unit (so 4R/2W for a single
 * TU + single VU core) — and its vector width to the TU array length.
 * Port count is the dominant cost driver: the paper caps TUs per core
 * at 4 because VReg area/power explodes beyond that.
 */

#ifndef NEUROMETER_COMPONENTS_VECTOR_REGFILE_HH
#define NEUROMETER_COMPONENTS_VECTOR_REGFILE_HH

#include "common/breakdown.hh"
#include "memory/sram_array.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** High-level VReg configuration. */
struct VectorRegfileConfig
{
    int lanes = 128;        ///< vector width, matches TU array length
    int laneBits = 32;
    int entries = 32;       ///< architectural vector registers
    int readPorts = 4;
    int writePorts = 2;
    double freqHz = 700e6;
};

/** Evaluated VReg model (a heavily multi-ported register array). */
class VectorRegfileModel
{
  public:
    VectorRegfileModel(const TechNode &tech,
                       const VectorRegfileConfig &cfg);

    const Breakdown &breakdown() const { return _bd; }

    double minCycleS() const { return _minCycleS; }

    /** Energy of one full-vector read / write (runtime analysis). */
    double readEnergyJ() const { return _readEnergyJ; }
    double writeEnergyJ() const { return _writeEnergyJ; }

    const VectorRegfileConfig &config() const { return _cfg; }

  private:
    VectorRegfileConfig _cfg;
    Breakdown _bd;
    double _minCycleS = 0.0;
    double _readEnergyJ = 0.0;
    double _writeEnergyJ = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_VECTOR_REGFILE_HH
