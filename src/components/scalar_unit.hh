/**
 * @file
 * Scalar Unit (SU): control-flow helper core. Following the paper (and
 * McPAT's configuration), it defaults to a stripped "ARM Cortex-A9":
 * instruction fetch without branch prediction, integer register file,
 * ALU, and an LSU — everything else removed. Parameters are exposed so
 * it can be re-sized for other control architectures.
 */

#ifndef NEUROMETER_COMPONENTS_SCALAR_UNIT_HH
#define NEUROMETER_COMPONENTS_SCALAR_UNIT_HH

#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** High-level SU configuration. */
struct ScalarUnitConfig
{
    int dataBits = 32;
    int archRegs = 32;
    double icacheBytes = 8.0 * 1024.0;
    double dspadBytes = 8.0 * 1024.0;
    int lsqEntries = 16;
    double freqHz = 700e6;
};

/** Evaluated SU model. */
class ScalarUnitModel
{
  public:
    ScalarUnitModel(const TechNode &tech, const ScalarUnitConfig &cfg);

    /** Children: "ifu", "regfile", "alu", "lsu", "imem", "dspad". */
    const Breakdown &breakdown() const { return _bd; }

    double minCycleS() const { return _minCycleS; }

    const ScalarUnitConfig &config() const { return _cfg; }

  private:
    ScalarUnitConfig _cfg;
    Breakdown _bd;
    double _minCycleS = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_SCALAR_UNIT_HH
