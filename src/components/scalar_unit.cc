#include "components/scalar_unit.hh"

#include <algorithm>

#include "circuit/arith.hh"
#include "circuit/logic.hh"
#include "common/error.hh"
#include "memory/design_cache.hh"
#include "memory/fifo.hh"
#include "memory/sram_array.hh"

namespace neurometer {

ScalarUnitModel::ScalarUnitModel(const TechNode &tech,
                                 const ScalarUnitConfig &cfg)
    : _cfg(cfg), _bd("scalar_unit")
{
    requireConfig(cfg.dataBits > 0 && cfg.archRegs > 0,
                  "SU config must be positive");

    // ---- Instruction fetch (no branch prediction) ----------------------
    LogicBlock ifu;
    // PC/fetch/align plus a full decode/issue stage — McPAT's stripped
    // A9 keeps the in-order front end.
    ifu.gates = 55000.0;
    ifu.depthFo4 = 14.0;
    ifu.activity = 0.25;
    PAT ifu_pat = logicPAT(tech, ifu, cfg.freqHz);
    ifu_pat += registersPAT(tech, 4.0 * 32.0 + 64.0, cfg.freqHz, 0.4);

    // ---- Integer register file -----------------------------------------
    MemoryRequest rf_req;
    rf_req.capacityBytes = double(cfg.archRegs) * cfg.dataBits / 8.0;
    rf_req.blockBytes = cfg.dataBits / 8.0;
    rf_req.cell = MemCellType::DFF;
    rf_req.readPorts = 2;
    rf_req.writePorts = 1;
    MemoryDesign rf = memoryDesignCache().evaluate(
        tech, rf_req, 1, std::max(16, cfg.archRegs),
        std::max(16, cfg.dataBits), 2, 1);
    PAT rf_pat;
    rf_pat.areaUm2 = rf.areaUm2;
    rf_pat.power.dynamicW =
        cfg.freqHz * (2.0 * rf.readEnergyJ + rf.writeEnergyJ) * 0.6;
    rf_pat.power.leakageW = rf.leakageW;
    rf_pat.timing.cycleS = rf.randomCycleS;

    // ---- ALU (address calculation is the main workload) ----------------
    PAT alu_pat = logicPAT(tech, aluBlock(cfg.dataBits), cfg.freqHz, 0.7);

    // ---- LSU: load/store queue + address generation ----------------------
    FifoConfig lsq;
    lsq.entries = cfg.lsqEntries;
    lsq.widthBits = cfg.dataBits + 32; // data + address/ctl
    lsq.freqHz = cfg.freqHz;
    lsq.activity = 0.5;
    PAT lsu_pat = fifoPAT(tech, lsq);
    lsu_pat += logicPAT(tech, aluBlock(32), cfg.freqHz, 0.5);
    // Alignment, forwarding, and TLB-less address check logic.
    LogicBlock lsu_ctl;
    lsu_ctl.gates = 25000.0;
    lsu_ctl.depthFo4 = 12.0;
    lsu_ctl.activity = 0.25;
    lsu_pat += logicPAT(tech, lsu_ctl, cfg.freqHz);

    // ---- Local memories ---------------------------------------------------
    PAT imem = scratchpadPAT(tech, cfg.icacheBytes, 64, cfg.freqHz, 0.8,
                             true);
    PAT dspad = scratchpadPAT(tech, cfg.dspadBytes, cfg.dataBits,
                              cfg.freqHz, 0.4, true);

    _bd.addLeaf("ifu", ifu_pat);
    _bd.addLeaf("regfile", rf_pat);
    _bd.addLeaf("alu", alu_pat);
    _bd.addLeaf("lsu", lsu_pat);
    _bd.addLeaf("imem", imem);
    _bd.addLeaf("dspad", dspad);

    _minCycleS = std::max({alu_pat.timing.cycleS, rf.randomCycleS,
                           imem.timing.cycleS});
    _bd.self().timing.cycleS = _minCycleS;
}

} // namespace neurometer
