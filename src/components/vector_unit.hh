/**
 * @file
 * Vector Unit (VU): the 1-D SIMD engine handling pooling, activation,
 * normalization variants, and partial-sum merging when an operator must
 * be tiled across TUs (paper Sec. II-A).
 */

#ifndef NEUROMETER_COMPONENTS_VECTOR_UNIT_HH
#define NEUROMETER_COMPONENTS_VECTOR_UNIT_HH

#include "circuit/arith.hh"
#include "common/breakdown.hh"
#include "tech/tech_node.hh"

namespace neurometer {

/** High-level VU configuration. */
struct VectorUnitConfig
{
    int lanes = 128;         ///< defaults to the TU array length
    DataType laneType = DataType::Int32;
    int pipelineStages = 4;
    /**
     * Include a special-function unit per lane (piecewise exp/div/sqrt
     * for softmax/normalization — the bulk of an "activation pipeline"
     * like TPU-v1's).
     */
    bool hasSfu = true;
    double freqHz = 700e6;
};

/** Evaluated VU model. */
class VectorUnitModel
{
  public:
    VectorUnitModel(const TechNode &tech, const VectorUnitConfig &cfg);

    /** Children: "lanes", "pipeline", "control". */
    const Breakdown &breakdown() const { return _bd; }

    /** 2 ops (mul+add path) per lane per cycle. */
    double peakOpsPerCycle() const { return 2.0 * _cfg.lanes; }
    double peakOpsPerS() const { return peakOpsPerCycle() * _cfg.freqHz; }

    double minCycleS() const { return _minCycleS; }

    const VectorUnitConfig &config() const { return _cfg; }

  private:
    VectorUnitConfig _cfg;
    Breakdown _bd;
    double _minCycleS = 0.0;
};

} // namespace neurometer

#endif // NEUROMETER_COMPONENTS_VECTOR_UNIT_HH
