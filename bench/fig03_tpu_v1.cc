/**
 * @file
 * Fig. 3 reproduction: TPU-v1 area & power breakdown, modeled vs
 * published. 28 nm, 0.86 V, 700 MHz; 256x256 int8 systolic array,
 * 24 MB unified buffer (dual banks, 1R1W), 4 MB accumulator buffer,
 * activation pipeline, 2x DDR3 ports (34 GB/s), PCIe Gen3 x16.
 *
 * Published references (ISCA'17): die < 331 mm^2, TDP 75 W; floorplan
 * shares: MXU 24%, unified buffer 29%, accumulators 6%, activation 6%,
 * DRAM ports 2.8%, PCIe 1.8%; ~5% host/ctrl unmodeled, ~21% white
 * space.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    const TechNode tech = TechNode::make(28.0, 0.86);
    const double freq = 700e6;

    // ---- Components, configured exactly as the paper's Fig. 3 note ----
    TensorUnitConfig mxu_cfg;
    mxu_cfg.rows = mxu_cfg.cols = 256;
    mxu_cfg.mulType = DataType::Int8;
    mxu_cfg.accType = DataType::Int32;
    mxu_cfg.freqHz = freq;
    TensorUnitModel mxu(tech, mxu_cfg);

    MemoryModel mm(tech);
    MemoryRequest ub_req;
    ub_req.capacityBytes = 24.0 * units::mib;
    ub_req.blockBytes = 256.0;
    ub_req.readPorts = 1;
    ub_req.writePorts = 1;
    ub_req.targetCycleS = 1.0 / freq;
    ub_req.targetReadBwBytesPerS = 256.0 * freq;
    ub_req.targetWriteBwBytesPerS = 256.0 * freq;
    const MemoryDesign ub = mm.optimize(ub_req);

    MemoryRequest acc_req;
    acc_req.capacityBytes = 4.0 * units::mib;
    acc_req.blockBytes = 1024.0; // 256 int32 partial sums per cycle
    acc_req.readPorts = 1;
    acc_req.writePorts = 1;
    acc_req.targetCycleS = 1.0 / freq;
    acc_req.targetReadBwBytesPerS = 1024.0 * freq;
    acc_req.targetWriteBwBytesPerS = 1024.0 * freq;
    const MemoryDesign acc = mm.optimize(acc_req);

    // 256 int32 accumulator adders between MXU and buffer.
    PAT acc_adders =
        logicPAT(tech, adderBlock(DataType::Int32), freq);
    acc_adders.areaUm2 *= 256.0;
    acc_adders.power = 256.0 * acc_adders.power;

    // Weight FIFO: 1 MB SRAM staging the DDR3 weight stream.
    const PAT wfifo = scratchpadPAT(tech, 1.0 * units::mib, 256, freq,
                                    1.0, true);

    VectorUnitConfig act_cfg;
    act_cfg.lanes = 256;
    act_cfg.laneType = DataType::Int32;
    act_cfg.pipelineStages = 8; // deep activation pipeline
    act_cfg.freqHz = freq;
    VectorUnitModel act(tech, act_cfg);

    const Breakdown ddr = dramPort(tech, DramKind::DDR3, 34e9);
    const Breakdown pcie = pcieInterface(tech, 16);

    // ---- Assemble the chip view ------------------------------------
    auto memPat = [&](const MemoryDesign &d, double rd_af,
                      double wr_af) {
        PAT p;
        p.areaUm2 = d.areaUm2;
        p.power.dynamicW = freq * (rd_af * d.readEnergyJ +
                                   wr_af * d.writeEnergyJ);
        p.power.leakageW = d.leakageW;
        return p;
    };

    Breakdown chip("tpu_v1");
    Breakdown mxu_bd = mxu.breakdown();
    mxu_bd.setName("systolic_array");
    mxu_bd.scaleDynamic(0.95); // TDP activity
    chip.addChild(std::move(mxu_bd));
    Breakdown ubuf("unified_buffer_wfifo", memPat(ub, 1.0, 1.0));
    ubuf.addLeaf("weight_fifo", wfifo);
    chip.addChild(std::move(ubuf));
    Breakdown acc_bd("accumulators", memPat(acc, 1.0, 1.0));
    acc_bd.addLeaf("acc_adders", acc_adders);
    chip.addChild(std::move(acc_bd));
    Breakdown act_bd = act.breakdown();
    act_bd.setName("activation_pipeline");
    act_bd.scaleDynamic(0.5);
    chip.addChild(std::move(act_bd));
    Breakdown ddr_bd = ddr;
    ddr_bd.scaleDynamic(0.85);
    chip.addChild(std::move(ddr_bd));
    Breakdown pcie_bd = pcie;
    pcie_bd.scaleDynamic(0.5);
    chip.addChild(std::move(pcie_bd));

    // Clock distribution (amortized into the total, as the paper does).
    PAT clk;
    clk.power.dynamicW = 0.10 * chip.total().power.dynamicW;
    chip.addLeaf("clock_tree", clk);

    const double modeled_sum = um2ToMm2(chip.total().areaUm2);
    // Unmodeled host interface/control (~5%) and unknown/white space
    // (~21%) carried at the published shares.
    const double chip_area = modeled_sum / (1.0 - 0.05 - 0.21);
    const double tdp = chip.total().power.total();

    std::printf("== Fig. 3: TPU-v1 validation (28 nm, 0.86 V, 700 MHz) "
                "==\n\n%s\n",
                chip.report(1).c_str());

    AsciiTable area({"component", "model mm^2", "model %", "paper %"});
    auto area_row = [&](const char *name, const char *node,
                        double paper_pct) {
        const double a = um2ToMm2(chip.areaOfUm2(node));
        area.addRow({name, AsciiTable::num(a, 1),
                     AsciiTable::num(100.0 * a / chip_area, 1),
                     AsciiTable::num(paper_pct, 1)});
    };
    area_row("systolic array (MXU)", "systolic_array", 24.0);
    area_row("unified buffer + wFIFO", "unified_buffer_wfifo", 29.0);
    area_row("accumulators", "accumulators", 6.0);
    area_row("activation pipeline", "activation_pipeline", 6.0);
    area_row("DRAM ports", "dram_port", 2.8);
    area_row("PCIe", "pcie", 1.8);
    std::printf("%s\n", area.str().c_str());

    AsciiTable tot({"metric", "model", "published", "error %"});
    tot.addRow({"die area (mm^2)", AsciiTable::num(chip_area, 1),
                "331 (upper bound)",
                AsciiTable::num(100.0 * relError(chip_area, 331.0), 1)});
    tot.addRow({"TDP (W)", AsciiTable::num(tdp, 1), "75",
                AsciiTable::num(100.0 * relError(tdp, 75.0), 1)});
    const double mxu_w = chip.powerOfW("systolic_array");
    tot.addRow({"MXU power share (%)",
                AsciiTable::num(100.0 * mxu_w / tdp, 1),
                "~56 (NeuroMeter Fig. 3b)",
                AsciiTable::num(100.0 * relError(mxu_w / tdp, 0.56),
                                1)});
    std::printf("%s\n", tot.str().c_str());
    std::printf("peak perf: %.1f TOPS (int8) at %.0f MHz\n",
                mxu.peakOpsPerS() / units::tera, freq / 1e6);
    obs::writeMetricsManifest("bench/fig03_tpu_v1",
                              "fig03_tpu_v1.manifest.json");
    return 0;
}
