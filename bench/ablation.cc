/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  (1) VReg port explosion vs TUs-per-core N — the quantitative basis
 *      for the paper's N <= 4 cap ("with eight 4x4 TUs per core, the
 *      VReg area and power overhead is 12.7% and 24.9% of the core"),
 *      including the shared-port-group escape hatch;
 *  (2) sparse-generator clustering knob — how the Fig. 11 knee depends
 *      on how spatially clustered the pruned zeros are;
 *  (3) white-space fraction — sensitivity of die area and TOPS/TCO to
 *      the carried unknown-component percentage;
 *  (4) memory cell choice (SRAM vs eDRAM) for the 32 MB Mem.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    // ---- (1) VReg overhead vs N --------------------------------------
    std::printf("== ablation 1: VReg overhead vs TUs per core (4x4 "
                "TUs) ==\n\n");
    AsciiTable t1({"N (TUs/core)", "VReg ports", "VReg % core area",
                   "VReg % core power", "shared-ports % area"});
    for (int n : {1, 2, 4, 8}) {
        ChipConfig cfg = datacenterBase();
        cfg.tx = cfg.ty = 8; // wimpy many-core arrangement
        cfg.core.numTU = n;
        cfg.core.tu.rows = cfg.core.tu.cols = 4;
        ChipModel chip(cfg);
        const Breakdown &core = *chip.breakdown().find("core0");
        const double vr_a = core.areaOfUm2("vector_regfile");
        const double vr_p = core.powerOfW("vector_regfile");
        const PAT tot = core.total();

        ChipConfig shared = cfg;
        shared.core.shareVregPorts = true;
        ChipModel chip_s(shared);
        const Breakdown &core_s = *chip_s.breakdown().find("core0");
        const double vr_a_s =
            core_s.areaOfUm2("vector_regfile") /
            core_s.total().areaUm2;

        t1.addRow({std::to_string(n),
                   std::to_string(chip.core().vregReadPorts()) + "R" +
                       std::to_string(chip.core().vregWritePorts()) +
                       "W",
                   AsciiTable::num(100.0 * vr_a / tot.areaUm2, 1),
                   AsciiTable::num(100.0 * vr_p / tot.power.total(),
                                   1),
                   AsciiTable::num(100.0 * vr_a_s, 1)});
    }
    std::printf("%s", t1.str().c_str());
    std::printf(
        "paper: at N=8 the VReg reaches 12.7%% of core area and 24.9%%\n"
        "of power, motivating the N <= 4 cap. Our trend matches in\n"
        "power; our 4-lane VReg is smaller in area than theirs.\n\n");

    // ---- (2) sparsity clustering knob ----------------------------------
    std::printf("== ablation 2: Fig. 11 knee vs zero clustering "
                "(8x8 skip fraction) ==\n\n");
    AsciiTable t2({"sparsity", "clustering 0.0", "0.5", "0.85", "1.0"});
    for (double s : {0.7, 0.8, 0.9, 0.95}) {
        std::vector<std::string> row{AsciiTable::num(s, 2)};
        for (double c : {0.0, 0.5, 0.85, 1.0}) {
            SparseGenConfig g;
            g.rows = g.cols = 1024;
            g.sparsity = s;
            g.clustering = c;
            const SparseMatrix m(g);
            row.push_back(
                AsciiTable::num(m.zeroBlockFraction(8, 8), 3));
        }
        t2.addRow(row);
    }
    std::printf("%s", t2.str().c_str());
    std::printf("unclustered pruning (0.0) never produces skippable\n"
                "blocks; the Fig. 11 knee requires clustered zeros.\n\n");

    // ---- (3) white-space sensitivity -----------------------------------
    std::printf("== ablation 3: white-space fraction ==\n\n");
    AsciiTable t3({"white space", "die mm^2", "peak TOPS/TCO"});
    for (double ws : {0.0, 0.10, 0.21, 0.30}) {
        ChipConfig cfg = applyDesignPoint(datacenterBase(),
                                          {64, 2, 2, 4});
        cfg.whiteSpaceFraction = ws;
        ChipModel chip(cfg);
        t3.addRow({AsciiTable::num(ws, 2),
                   AsciiTable::num(chip.areaMm2(), 1),
                   AsciiTable::num(chip.peakTopsPerTco(), 3)});
    }
    std::printf("%s", t3.str().c_str());
    std::printf("TCO ~ 1/area^2: the carried unknown fraction matters\n"
                "quadratically for cost efficiency.\n\n");

    // ---- (4) Mem cell choice --------------------------------------------
    std::printf("== ablation 4: 32 MB Mem cell type ==\n\n");
    AsciiTable t4({"cell", "die mm^2", "TDP W", "Mem leak W"});
    for (MemCellType cell : {MemCellType::SRAM, MemCellType::EDRAM}) {
        ChipConfig cfg = applyDesignPoint(datacenterBase(),
                                          {64, 2, 2, 4});
        cfg.memCell = cell;
        ChipModel chip(cfg);
        const double leak =
            8.0 *
            chip.breakdown().find("mem")->total().power.leakageW;
        t4.addRow({memCellTypeName(cell),
                   AsciiTable::num(chip.areaMm2(), 1),
                   AsciiTable::num(chip.tdpW(), 1),
                   AsciiTable::num(leak, 2)});
    }
    std::printf("%s", t4.str().c_str());
    obs::writeMetricsManifest("bench/ablation",
                              "ablation.manifest.json");
    return 0;
}
