/**
 * @file
 * Fig. 10 reproduction: average runtime performance of ResNet,
 * Inception, and NasNet across the design space at three batch
 * regimes — (a) bs=1, (b) latency-limited batch under a 10 ms SLO,
 * (c) bs=256. Four metrics per point: achieved TOPS (arithmetic mean),
 * TU utilization, normalized TOPS/TCO, normalized TOPS/Watt (geometric
 * means, as in the paper).
 */

#include <cstdio>
#include <vector>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

struct RuntimeRow
{
    std::string name;
    double tops = 0.0, util = 0.0, tco = 0.0, tpw = 0.0;
};

} // namespace

int
main()
{
    const ChipConfig base = datacenterBase();
    const std::vector<DesignPoint> points = {
        {4, 4, 8, 8},  {8, 4, 4, 8},  {16, 4, 4, 4}, {32, 4, 2, 2},
        {32, 2, 2, 4}, {64, 2, 2, 4}, {64, 4, 1, 2}, {128, 4, 1, 1},
        {128, 2, 1, 2}, {256, 1, 1, 1},
    };
    const std::vector<Workload> wls = {resnet50(), inceptionV3(),
                                       nasnetALarge()};

    struct Regime
    {
        const char *title;
        int fixed_batch; // 0 = latency-limited per workload
    };
    const Regime regimes[] = {
        {"(a) batch = 1", 1},
        {"(b) latency-limited batch (10 ms SLO)", 0},
        {"(c) batch = 256", 256},
    };

    std::printf("== Fig. 10: average runtime performance across the "
                "design space ==\n");

    for (const Regime &reg : regimes) {
        std::vector<RuntimeRow> rows;
        for (const DesignPoint &dp : points) {
            ChipModel chip = buildChip(base, dp);
            TfSim sim(chip);
            std::vector<double> tops, util, tco, tpw;
            for (const Workload &wl : wls) {
                const int b = reg.fixed_batch > 0
                    ? reg.fixed_batch
                    : sim.maxBatchUnderSlo(wl, 0.010);
                const SimResult r = sim.run(wl, {b, true});
                tops.push_back(r.achievedTops);
                util.push_back(r.tuUtilization);
                tco.push_back(r.achievedTopsPerTco);
                tpw.push_back(r.achievedTopsPerWatt);
            }
            RuntimeRow pm;
            pm.name = dp.str();
            pm.tops = arithMean(tops); // throughput: arithmetic mean
            pm.util = geoMean(util);   // ratios: geometric means
            pm.tco = geoMean(tco);
            pm.tpw = geoMean(tpw);
            rows.push_back(pm);
        }

        // Normalize efficiency metrics against the series maxima
        // (the paper normalizes against subfigure (c)'s maxima).
        double max_tco = 0.0, max_tpw = 0.0;
        for (const auto &r : rows) {
            max_tco = std::max(max_tco, r.tco);
            max_tpw = std::max(max_tpw, r.tpw);
        }

        RuntimeRow best_tops, best_util, best_tco, best_tpw;
        for (const auto &r : rows) {
            if (r.tops > best_tops.tops) best_tops = r;
            if (r.util > best_util.util) best_util = r;
            if (r.tco > best_tco.tco) best_tco = r;
            if (r.tpw > best_tpw.tpw) best_tpw = r;
        }

        AsciiTable t({"(X,N,Tx,Ty)", "achieved TOPS", "TU util",
                      "norm TOPS/TCO", "norm TOPS/W"});
        for (const auto &r : rows) {
            t.addRow({r.name, AsciiTable::num(r.tops, 2),
                      AsciiTable::num(r.util, 3),
                      AsciiTable::num(r.tco / max_tco, 3),
                      AsciiTable::num(r.tpw / max_tpw, 3)});
        }
        std::printf("\n-- %s --\n%s", reg.title, t.str().c_str());
        std::printf("optima: throughput %s | utilization %s | "
                    "cost-eff %s | energy-eff %s\n",
                    best_tops.name.c_str(), best_util.name.c_str(),
                    best_tco.name.c_str(), best_tpw.name.c_str());
    }

    // The paper's headline trade-off at bs=1.
    {
        ChipModel through = buildChip(base, {64, 2, 2, 4});
        ChipModel eff = buildChip(base, {64, 4, 1, 2});
        TfSim st(through), se(eff);
        std::vector<double> t_tops, e_tops, t_tco, e_tco, t_tpw, e_tpw;
        for (const Workload &wl : wls) {
            const SimResult rt = st.run(wl, {1, true});
            const SimResult re = se.run(wl, {1, true});
            t_tops.push_back(rt.achievedTops);
            e_tops.push_back(re.achievedTops);
            t_tco.push_back(rt.achievedTopsPerTco);
            e_tco.push_back(re.achievedTopsPerTco);
            t_tpw.push_back(rt.achievedTopsPerWatt);
            e_tpw.push_back(re.achievedTopsPerWatt);
        }
        std::printf(
            "\n-- trade-off: (64,4,1,2) vs (64,2,2,4) at bs=1 --\n"
            "achieved-TOPS sacrifice : %5.1f%%   (paper: ~16%%)\n"
            "TOPS/TCO gain           : %5.2fx   (paper: ~2.1x)\n"
            "TOPS/Watt gain          : %5.2fx   (paper: ~1.3x)\n",
            100.0 * (1.0 - arithMean(e_tops) / arithMean(t_tops)),
            geoMean(e_tco) / geoMean(t_tco),
            geoMean(e_tpw) / geoMean(t_tpw));
    }
    obs::writeMetricsManifest("bench/fig10_runtime_perf",
                              "fig10_runtime_perf.manifest.json");
    return 0;
}
