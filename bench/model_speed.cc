/**
 * @file
 * google-benchmark backing for the paper's "fast yet accurate" claim:
 * full-chip model construction and runtime-analysis queries must be
 * interactive-speed (ms-class), enabling sweeps of hundreds of design
 * points.
 */

#include <benchmark/benchmark.h>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

void
BM_FullChipModel(benchmark::State &state)
{
    const int x = static_cast<int>(state.range(0));
    for (auto _ : state) {
        ChipModel chip(applyDesignPoint(datacenterBase(),
                                        {x, 2, 2, 2}));
        benchmark::DoNotOptimize(chip.tdpW());
    }
}
BENCHMARK(BM_FullChipModel)->Arg(8)->Arg(64)->Arg(256);

void
BM_FullChipModelColdCache(benchmark::State &state)
{
    // Every iteration pays the full memory searches: the sweep-style
    // steady state is BM_FullChipModel, whose iterations 2+ hit the
    // process-wide memory-design cache.
    const int x = static_cast<int>(state.range(0));
    for (auto _ : state) {
        memoryDesignCache().clear();
        ChipModel chip(applyDesignPoint(datacenterBase(),
                                        {x, 2, 2, 2}));
        benchmark::DoNotOptimize(chip.tdpW());
    }
}
BENCHMARK(BM_FullChipModelColdCache)->Arg(8)->Arg(64)->Arg(256);

MemoryRequest
optimizerRequest(std::int64_t mib)
{
    MemoryRequest req;
    req.capacityBytes = double(mib) * units::mib;
    req.blockBytes = 64.0;
    req.targetCycleS = 1.0 / 700e6;
    req.searchPorts = true;
    return req;
}

void
BM_MemoryOptimizer(benchmark::State &state)
{
    const TechNode tech = TechNode::make(28.0);
    const MemoryModel mm(tech);
    const MemoryRequest req = optimizerRequest(state.range(0));
    for (auto _ : state) {
        MemoryDesign d = mm.optimize(req);
        benchmark::DoNotOptimize(d.areaUm2);
    }
}
BENCHMARK(BM_MemoryOptimizer)->Arg(1)->Arg(8)->Arg(32);

void
BM_MemoryOptimizerExhaustive(benchmark::State &state)
{
    // The unpruned reference search: same candidate space and result,
    // every candidate fully evaluated. The BM_MemoryOptimizer ratio is
    // the pruning speedup.
    const TechNode tech = TechNode::make(28.0);
    const MemoryModel mm(tech);
    const MemoryRequest req = optimizerRequest(state.range(0));
    for (auto _ : state) {
        MemoryDesign d = mm.optimizeExhaustive(req);
        benchmark::DoNotOptimize(d.areaUm2);
    }
}
BENCHMARK(BM_MemoryOptimizerExhaustive)->Arg(1)->Arg(8)->Arg(32);

void
BM_TfSimResnetInference(benchmark::State &state)
{
    ChipModel chip(applyDesignPoint(datacenterBase(), {64, 2, 2, 4}));
    TfSim sim(chip);
    const Workload wl = resnet50();
    for (auto _ : state) {
        SimResult r = sim.run(wl, {int(state.range(0)), true});
        benchmark::DoNotOptimize(r.achievedTops);
    }
}
BENCHMARK(BM_TfSimResnetInference)->Arg(1)->Arg(64);

void
BM_TensorUnitModel(benchmark::State &state)
{
    const TechNode tech = TechNode::make(28.0);
    TensorUnitConfig cfg;
    cfg.rows = cfg.cols = static_cast<int>(state.range(0));
    cfg.freqHz = 700e6;
    for (auto _ : state) {
        TensorUnitModel tu(tech, cfg);
        benchmark::DoNotOptimize(tu.energyPerMacJ());
    }
}
BENCHMARK(BM_TensorUnitModel)->Arg(16)->Arg(256);

} // namespace
