/**
 * @file
 * Fig. 8 (+ Table I) reproduction: the datacenter design-space sweep.
 * For every (X, N) in Table I the core count is maximized under the
 * 500 mm^2 / 300 W budgets with the 92-TOPS upper bound; the bench
 * prints per-point area and TDP breakdowns, peak TOPS, and peak
 * TOPS/Watt and TOPS/TCO (Fig. 8(a)-(b) series).
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    const ChipConfig base = datacenterBase();
    const DesignConstraints budget; // Table I: 500 mm^2, 300 W, 92 TOPS

    std::printf(
        "== Table I constraints: 28 nm, 700 MHz, area 500 mm^2, TDP\n"
        "   300 W, peak TOPS <= 92, Mem 32 MB, NoC bisection 256 GB/s,\n"
        "   HBM 700 GB/s; X in {4..256}, N in {1,2,4}, ring <= 4 tiles,\n"
        "   mesh >= 8 tiles, Tx = Ty or Ty/2 ==\n\n");

    AsciiTable t({"(X,N,Tx,Ty)", "cores", "area mm^2", "TDP W",
                  "peak TOPS", "mem %A", "TU %A", "NoC+CDB %A",
                  "ctrl %A", "TOPS/W", "TOPS/TCO"});

    double best_eff = 0.0;
    std::string best_eff_point;

    for (int x : {4, 8, 16, 32, 64, 128, 256}) {
        for (int n : {1, 2, 4}) {
            const GridSearchResult r = maximizeCores(base, x, n, budget);
            if (!r.feasible)
                continue;
            const ChipModel chip = buildChip(base, r.point);
            const Breakdown &bd = chip.breakdown();
            const double total_a = bd.total().areaUm2;
            // Per-core subtrees are identical; find() returns the
            // first instance, so scale by the core count.
            const double n_cores = r.point.tx * r.point.ty;
            const double mem_a = n_cores * bd.areaOfUm2("mem");
            const double tu_a =
                n_cores * bd.areaOfUm2("tensor_units");
            const double noc_a =
                bd.areaOfUm2("noc") + n_cores * bd.areaOfUm2("cdb");
            const double ctrl_a =
                n_cores * (bd.areaOfUm2("scalar_unit") +
                           bd.areaOfUm2("ifu") + bd.areaOfUm2("lsu"));
            t.addRow({r.point.str(),
                      std::to_string(r.point.tx * r.point.ty),
                      AsciiTable::num(chip.areaMm2(), 1),
                      AsciiTable::num(chip.tdpW(), 1),
                      AsciiTable::num(chip.peakTops(), 2),
                      AsciiTable::num(100.0 * mem_a / total_a, 1),
                      AsciiTable::num(100.0 * tu_a / total_a, 1),
                      AsciiTable::num(100.0 * noc_a / total_a, 1),
                      AsciiTable::num(100.0 * ctrl_a / total_a, 1),
                      AsciiTable::num(chip.peakTopsPerWatt(), 3),
                      AsciiTable::num(chip.peakTopsPerTco(), 3)});
            if (chip.peakTopsPerWatt() > best_eff) {
                best_eff = chip.peakTopsPerWatt();
                best_eff_point = r.point.str();
            }
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "peak-efficiency optimum: %s (paper: (128,4,1,1) has the best\n"
        "peak TOPS/Watt and TOPS/TCO).\n"
        "expected shape: on-chip memory dominates area; wimpy points\n"
        "spend more area/power on NoC/CDB and control, yet reach only\n"
        "a small fraction of the brawny peak TOPS.\n",
        best_eff_point.c_str());
    return 0;
}
