/**
 * @file
 * Fig. 8 (+ Table I) reproduction: the datacenter design-space sweep.
 * For every (X, N) in Table I the core count is maximized under the
 * 500 mm^2 / 300 W budgets with the 92-TOPS upper bound; the bench
 * prints per-point area and TDP breakdowns, peak TOPS, and peak
 * TOPS/Watt and TOPS/TCO (Fig. 8(a)-(b) series).
 *
 * Runs on the explore/ sweep engine: the (X, N) grid searches fan out
 * across the thread pool and share one evaluation cache, so the table
 * rows are cache hits from the searches that already measured them.
 * Results are identical to the serial path by construction.
 */

#include <cstdio>
#include <vector>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    const ChipConfig base = datacenterBase();
    const DesignConstraints budget; // Table I: 500 mm^2, 300 W, 92 TOPS

    std::printf(
        "== Table I constraints: 28 nm, 700 MHz, area 500 mm^2, TDP\n"
        "   300 W, peak TOPS <= 92, Mem 32 MB, NoC bisection 256 GB/s,\n"
        "   HBM 700 GB/s; X in {4..256}, N in {1,2,4}, ring <= 4 tiles,\n"
        "   mesh >= 8 tiles, Tx = Ty or Ty/2 ==\n\n");

    AsciiTable t({"(X,N,Tx,Ty)", "cores", "area mm^2", "TDP W",
                  "peak TOPS", "mem %A", "TU %A", "NoC+CDB %A",
                  "ctrl %A", "TOPS/W", "TOPS/TCO"});

    double best_eff = 0.0;
    std::string best_eff_point;

    SweepOptions opts;
    opts.constraints = budget;
    SweepEngine engine(base, opts);

    // The Table I (X, N) space, declared as named schema axes (first
    // axis outermost, so X varies slowest just like the paper's
    // table); maximizeCores then drives the (Tx, Ty) search for each
    // expanded point.
    SweepGrid xn;
    xn.axis("core.tu.rows", {4, 8, 16, 32, 64, 128, 256}) // X
        .axis("core.numTU", {1, 2, 4});                   // N
    const std::vector<ChipConfig> points = xn.expandNamed(base);

    std::vector<GridSearchResult> results(points.size());
    engine.pool().parallelFor(points.size(), [&](std::size_t i) {
        results[i] = engine.maximizeCores(points[i].core.tu.rows,
                                          points[i].core.numTU, budget);
    });

    for (const GridSearchResult &r : results) {
        if (!r.feasible)
            continue;
        // A cache hit: the grid search above already measured it.
        const PointMetrics m =
            engine.cache().evaluate(applyDesignPoint(base, r.point));
        t.addRow({r.point.str(),
                  std::to_string(r.point.tx * r.point.ty),
                  AsciiTable::num(m.areaMm2, 1),
                  AsciiTable::num(m.tdpW, 1),
                  AsciiTable::num(m.peakTops, 2),
                  AsciiTable::num(m.memAreaPct, 1),
                  AsciiTable::num(m.tuAreaPct, 1),
                  AsciiTable::num(m.nocAreaPct, 1),
                  AsciiTable::num(m.ctrlAreaPct, 1),
                  AsciiTable::num(m.topsPerWatt, 3),
                  AsciiTable::num(m.topsPerTco, 3)});
        if (m.topsPerWatt > best_eff) {
            best_eff = m.topsPerWatt;
            best_eff_point = r.point.str();
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "peak-efficiency optimum: %s (paper: (128,4,1,1) has the best\n"
        "peak TOPS/Watt and TOPS/TCO).\n"
        "expected shape: on-chip memory dominates area; wimpy points\n"
        "spend more area/power on NoC/CDB and control, yet reach only\n"
        "a small fraction of the brawny peak TOPS.\n",
        best_eff_point.c_str());
    obs::writeMetricsManifest("bench/fig08_design_space",
                              "fig08_design_space.manifest.json");
    return 0;
}
