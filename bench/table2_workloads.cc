/**
 * @file
 * Table II reproduction: workload characteristics of the three case-
 * study CNNs — #MAC Op (arithmetic ops, 2 per MAC), #Data (peak
 * transient activation footprint), #Param (int8 model size).
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    struct Ref
    {
        Workload wl;
        double ops_g, data_m, param_m;
    };
    const Ref rows[] = {
        {resnet50(), 7.8, 5.72, 23.7},
        {inceptionV3(), 5.7, 2.93, 22.0},
        {nasnetALarge(), 23.8, 5.35, 84.9},
    };

    std::printf("== Table II: ML workload characteristics ==\n\n");
    AsciiTable t({"workload", "#MAC Op (G)", "paper", "err %",
                  "#Data (M)", "paper", "err %", "#Param (M)", "paper",
                  "err %"});
    for (const Ref &r : rows) {
        const double ops = r.wl.totalOps() / 1e9;
        const double data = r.wl.peakDataBytes() / 1e6;
        const double par = r.wl.totalParamBytes() / 1e6;
        t.addRow({r.wl.name, AsciiTable::num(ops, 2),
                  AsciiTable::num(r.ops_g, 2),
                  AsciiTable::num(100.0 * relError(ops, r.ops_g), 1),
                  AsciiTable::num(data, 2), AsciiTable::num(r.data_m, 2),
                  AsciiTable::num(100.0 * relError(data, r.data_m), 1),
                  AsciiTable::num(par, 2), AsciiTable::num(r.param_m, 2),
                  AsciiTable::num(100.0 * relError(par, r.param_m),
                                  1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "#Data uses a ping-pong live-set proxy (half the transient\n"
        "activation volume); NasNet overshoots it — the paper's exact\n"
        "accounting is not public (see EXPERIMENTS.md).\n");
    obs::writeMetricsManifest("bench/table2_workloads",
                              "table2_workloads.manifest.json");
    return 0;
}
