/**
 * @file
 * Workload x dataflow characterization: every named workload (the
 * three paper CNNs plus the programmatic transformer block) mapped
 * under each systolic dataflow (weight-, output-, input-stationary)
 * on the Sec. V datacenter inference chip. One table per batch
 * regime; the full result grid is also written into the run manifest
 * (`dataflow_workloads.manifest.json`) as machine-readable rows, which
 * is what the EXPERIMENTS.md comparison table is generated from.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    const ChipConfig base = datacenterBase();
    const DesignPoint dp = {64, 2, 2, 4}; // Fig. 10 throughput optimum
    ChipModel chip = buildChip(base, dp);
    TfSim sim(chip);

    const std::vector<std::string> wl_names = workloadNames();
    const Dataflow flows[] = {Dataflow::WeightStationary,
                              Dataflow::OutputStationary,
                              Dataflow::InputStationary};
    const int batches[] = {1, 16};

    std::printf("== Workloads x dataflows on %s ==\n", dp.str().c_str());

    std::string rows_json = "[";
    bool first = true;
    for (const int b : batches) {
        AsciiTable t({"workload", "dataflow", "latency ms", "TOPS",
                      "TU util", "TOPS/W"});
        for (const std::string &name : wl_names) {
            const Workload wl = workloadByName(name);
            for (const Dataflow df : flows) {
                SimConfig cfg;
                cfg.batch = b;
                cfg.dataflow = df;
                const SimResult r = sim.run(wl, cfg);
                t.addRow({name, dataflowName(df),
                          AsciiTable::num(r.latencyS * 1e3, 3),
                          AsciiTable::num(r.achievedTops, 2),
                          AsciiTable::num(r.tuUtilization, 3),
                          AsciiTable::num(r.achievedTopsPerWatt, 3)});
                rows_json += first ? "{" : ", {";
                first = false;
                rows_json +=
                    "\"workload\": " + obs::jsonQuote(name) +
                    ", \"dataflow\": " +
                    obs::jsonQuote(dataflowName(df)) +
                    ", \"batch\": " + std::to_string(b) +
                    ", \"latency_s\": " + obs::jsonNum(r.latencyS) +
                    ", \"achieved_tops\": " +
                    obs::jsonNum(r.achievedTops) +
                    ", \"tu_utilization\": " +
                    obs::jsonNum(r.tuUtilization) +
                    ", \"tops_per_watt\": " +
                    obs::jsonNum(r.achievedTopsPerWatt) + "}";
            }
        }
        std::printf("\n-- batch = %d --\n%s", b, t.str().c_str());
    }
    rows_json += "]";

    obs::ManifestBuilder m = obs::runManifest(
        "bench/dataflow_workloads", "bench/dataflow_workloads");
    m.set("design_point", dp.str())
        .set("config", chip.config().toString())
        .raw("results", rows_json)
        .raw("metrics", obs::snapshot().toJson());
    obs::writeTextFile("dataflow_workloads.manifest.json", m.str());
    std::printf("\nmanifest: dataflow_workloads.manifest.json\n");
    return 0;
}
