/**
 * @file
 * Fig. 9 reproduction: throughput and latency vs batch size for the
 * three CNNs on the (64, 2, 2, 4) design point, plus the 10 ms-SLO
 * latency-limited batch sizes.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    const ChipModel chip =
        buildChip(datacenterBase(), {64, 2, 2, 4});
    const TfSim sim(chip);

    std::printf("== Fig. 9: performance vs batch size, (64,2,2,4) "
                "==\n\n");

    for (Workload wl : {resnet50(), inceptionV3(), nasnetALarge()}) {
        AsciiTable t({"batch", "latency ms", "fps", "achieved TOPS",
                      "TU util"});
        for (int b = 1; b <= 256; b *= 2) {
            const SimResult r = sim.run(wl, {b, true});
            t.addRow({std::to_string(b),
                      AsciiTable::num(r.latencyS * 1e3, 3),
                      AsciiTable::num(r.throughputFps, 0),
                      AsciiTable::num(r.achievedTops, 2),
                      AsciiTable::num(r.tuUtilization, 3)});
        }
        std::printf("-- %s --\n%s\n", wl.name.c_str(), t.str().c_str());
    }

    AsciiTable slo({"workload", "max batch @ 10 ms SLO",
                    "paper @ (64,2,2,4)"});
    slo.addRow({"ResNet",
                std::to_string(sim.maxBatchUnderSlo(resnet50(), 0.010)),
                "16"});
    slo.addRow({"Inception",
                std::to_string(
                    sim.maxBatchUnderSlo(inceptionV3(), 0.010)),
                "32"});
    slo.addRow({"NasNet",
                std::to_string(
                    sim.maxBatchUnderSlo(nasnetALarge(), 0.010)),
                "4"});
    std::printf("%s\n", slo.str().c_str());
    obs::writeMetricsManifest("bench/fig09_batch_size",
                              "fig09_batch_size.manifest.json");
    return 0;
}
