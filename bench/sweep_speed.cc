/**
 * @file
 * Sweep-engine throughput: serial vs parallel configs/sec over a
 * 756-point datacenter grid, plus the memoized re-run. Reports the
 * speedup, verifies parallel records match the serial reference
 * bit-for-bit, and prints the cache hit rate of a repeated sweep.
 *
 * Thread count defaults to the hardware concurrency; override with
 * NEUROMETER_THREADS (the speedup target assumes >= 4 real cores).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

SweepGrid
bigGrid()
{
    SweepGrid g;
    g.tuLengths = {4, 8, 16, 32, 64, 128};
    g.tuPerCore = {1, 2, 4};
    g.coreGrids = candidateGrids(64);
    g.clocksHz = {600e6, 700e6, 800e6};
    g.memBytes = {16.0 * units::mib, 32.0 * units::mib};
    return g;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** One timed cold-cache sweep; returns records and elapsed seconds. */
std::vector<EvalRecord>
timedRun(int threads, const SweepGrid &grid, double &elapsed_s)
{
    SweepOptions opts;
    opts.threads = threads;
    SweepEngine engine(datacenterBase(), opts);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<EvalRecord> recs = engine.run(grid);
    elapsed_s = seconds(t0, std::chrono::steady_clock::now());
    return recs;
}

} // namespace

int
main()
{
    const SweepGrid grid = bigGrid();
    int threads = ThreadPool::hardwareThreads();
    if (const char *env = std::getenv("NEUROMETER_THREADS"))
        threads = std::atoi(env) > 0 ? std::atoi(env) : threads;

    std::printf("== sweep_speed: %zu-point design-space sweep ==\n\n",
                grid.size());

    double serial_s = 0.0;
    const std::vector<EvalRecord> serial =
        timedRun(1, grid, serial_s);

    double par_s = 0.0;
    const std::vector<EvalRecord> parallel =
        timedRun(threads, grid, par_s);

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < serial.size(); ++i)
        if (!(serial[i] == parallel[i]))
            ++mismatches;

    // Repeat the sweep on a warm engine: every point is a cache hit.
    double warm_s = 0.0;
    CacheStats rerun;
    {
        SweepOptions opts;
        opts.threads = threads;
        SweepEngine engine(datacenterBase(), opts);
        engine.run(grid); // populate
        const CacheStats cold = engine.cache().stats();
        const auto t0 = std::chrono::steady_clock::now();
        engine.run(grid);
        warm_s = seconds(t0, std::chrono::steady_clock::now());
        const CacheStats total = engine.cache().stats();
        rerun.hits = total.hits - cold.hits;
        rerun.misses = total.misses - cold.misses;
    }

    const double n = double(grid.size());
    std::printf("serial   (1 thread):   %7.2f s  %8.1f configs/s\n",
                serial_s, n / serial_s);
    std::printf("parallel (%d threads): %7.2f s  %8.1f configs/s\n",
                threads, par_s, n / par_s);
    std::printf("speedup: %.2fx  (hardware concurrency: %d)\n",
                serial_s / par_s, ThreadPool::hardwareThreads());
    std::printf("warm-cache re-run:     %7.4f s  %8.0f configs/s\n",
                warm_s, n / warm_s);
    std::printf("repeat-sweep cache hit rate: %.1f%% "
                "(%llu hits / %llu misses)\n",
                100.0 * rerun.hitRate(),
                (unsigned long long)rerun.hits,
                (unsigned long long)rerun.misses);
    // Process-wide telemetry (memory-design cache, eval cache, search
    // funnel, latency histograms) in one place: the obs registry.
    std::printf("\n%s", obs::snapshot().format().c_str());
    std::printf("parallel vs serial records: %s (%zu mismatches)\n",
                mismatches == 0 ? "IDENTICAL" : "MISMATCH",
                mismatches);
    obs::writeMetricsManifest("bench/sweep_speed",
                              "sweep_speed.manifest.json");
    std::printf("manifest: sweep_speed.manifest.json\n");
    return mismatches == 0 ? 0 : 1;
}
