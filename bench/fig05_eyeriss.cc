/**
 * @file
 * Fig. 5 reproduction: Eyeriss-v1 validation — single-PE and chip area
 * breakdown plus runtime power on AlexNet Conv1/Conv5. 65 nm, 1.0 V,
 * 200 MHz; 14x12 PE array with multicast X/Y-bus interconnect; per-PE
 * 448 B SRAM spad + 72 B registers; 108 kB global buffer (27 banks).
 *
 * Published (ISCA'16): die 12.25 mm^2 (core), 278 mW at 200 MHz on
 * AlexNet conv layers; PE array dominates area and runtime power.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    const TechNode tech = TechNode::make(65.0, 1.0);
    const double freq = 200e6;

    // ---- PE array: multicast TU, Eyeriss-style heavy local buffers --
    TensorUnitConfig pe_cfg;
    pe_cfg.rows = 12;
    pe_cfg.cols = 14;
    pe_cfg.mulType = DataType::Int16; // 16-bit fixed point
    pe_cfg.accType = DataType::Int32;
    pe_cfg.interconnect = TuInterconnect::Multicast;
    pe_cfg.perCellSramBytes = 448.0;
    pe_cfg.perCellRegBytes = 72.0;
    pe_cfg.perCellCtrlGates = 1200.0; // row-stationary PE control FSM
    pe_cfg.freqHz = freq;
    TensorUnitModel pes(tech, pe_cfg);
    const double n_pe = 14.0 * 12.0;

    // ---- Global buffer: 108 kB, 27 banks, dual ports ------------------
    MemoryModel mm(tech);
    MemoryRequest gb_req;
    gb_req.capacityBytes = 108.0 * 1024.0;
    gb_req.blockBytes = 8.0; // 4 x 16-bit words per access
    gb_req.readPorts = 1;
    gb_req.writePorts = 1;
    gb_req.targetCycleS = 1.0 / freq;
    gb_req.fixedBanks = 32; // published: 27 banks (nearest pow-2)
    const MemoryDesign gb = mm.optimize(gb_req);

    // ---- Chip-level glue: RLC+ReLU, config scan, top control ---------
    LogicBlock rlc;
    rlc.gates = 22e3;
    rlc.activity = 0.25;
    PAT rlc_pat = logicPAT(tech, rlc, freq);
    LogicBlock topctl;
    topctl.gates = 15e3;
    topctl.activity = 0.2;
    PAT top_pat = logicPAT(tech, topctl, freq);

    Breakdown chip("eyeriss");
    Breakdown pe_bd = pes.breakdown();
    pe_bd.setName("pe_array");
    chip.addChild(std::move(pe_bd));
    PAT gb_pat;
    gb_pat.areaUm2 = gb.areaUm2;
    gb_pat.power.dynamicW =
        freq * 0.5 * (gb.readEnergyJ + gb.writeEnergyJ);
    gb_pat.power.leakageW = gb.leakageW;
    chip.addLeaf("global_buffer", gb_pat);
    chip.addLeaf("rlc_relu", rlc_pat);
    chip.addLeaf("top_ctrl", top_pat);

    const double pe_area_um2 =
        pes.breakdown().total().areaUm2 / n_pe;
    // 65 nm chips spend ~25% on pads, clock spines, and routing slack.
    const double chip_mm2 =
        um2ToMm2(chip.total().areaUm2) / (1.0 - 0.25);

    std::printf("== Fig. 5: Eyeriss validation (65 nm, 1.0 V, 200 MHz) "
                "==\n\n%s\n",
                chip.report(2).c_str());

    AsciiTable area({"metric", "model", "published", "error %"});
    area.addRow({"single PE (um^2)", AsciiTable::num(pe_area_um2, 0),
                 "~34700 (inferred)",
                 AsciiTable::num(
                     100.0 * relError(pe_area_um2, 34700.0), 1)});
    area.addRow({"chip core area (mm^2)", AsciiTable::num(chip_mm2, 2),
                 "12.25",
                 AsciiTable::num(100.0 * relError(chip_mm2, 12.25),
                                 1)});
    const double pe_share = chip.areaOfUm2("pe_array") /
                            chip.total().areaUm2;
    area.addRow({"PE array share (%)",
                 AsciiTable::num(100.0 * pe_share, 1), "~75",
                 AsciiTable::num(100.0 * relError(pe_share, 0.75), 1)});
    std::printf("%s\n", area.str().c_str());

    // ---- Runtime power on AlexNet Conv1 / Conv5 ----------------------
    // Activity factors from the published run statistics: processing
    // time, active PEs, zero-input fraction, buffer accesses.
    struct LayerRun
    {
        const char *name;
        double active_pes;   // of 168
        double mac_activity; // non-zero input fraction
        double gb_access_per_cycle;
        double published_mw;
    };
    const LayerRun runs[] = {
        {"AlexNet-Conv1", 154.0, 0.85, 0.45, 332.0},
        {"AlexNet-Conv5", 156.0, 0.55, 0.30, 236.0},
    };

    AsciiTable power({"layer", "model mW", "published mW", "error %"});
    for (const LayerRun &r : runs) {
        const Breakdown &bd = pes.breakdown();
        const double util = r.active_pes / n_pe;
        // Eyeriss gates clocks on zero inputs and idles lanes between
        // passes — the same effects the paper cites as its residual
        // error sources; 0.55 is the calibrated effectiveness.
        const double gating = 0.55;
        const double mac_w =
            bd.powerOfW("mac") * util * r.mac_activity * gating;
        const double spad_w = bd.find("local_buffer")
                                  ->total().power.dynamicW *
                              util * r.mac_activity * gating;
        const double noc_w =
            bd.find("interconnect")->total().power.dynamicW * util *
            0.8 * gating;
        const double fifo_w =
            bd.find("io_fifo")->total().power.dynamicW * util * 0.6 *
            gating;
        const double gb_w =
            freq * r.gb_access_per_cycle *
            (gb.readEnergyJ + gb.writeEnergyJ) * 0.5;
        const double leak = chip.total().power.leakageW;
        const double clock =
            0.07 * chip.total().power.dynamicW; // amortized clock
        const double total_mw =
            (mac_w + spad_w + noc_w + fifo_w + gb_w + leak + clock) *
            1e3;
        power.addRow({r.name, AsciiTable::num(total_mw, 0),
                      AsciiTable::num(r.published_mw, 0),
                      AsciiTable::num(
                          100.0 * relError(total_mw * 1e-3,
                                           r.published_mw * 1e-3),
                          1)});
    }
    std::printf("%s\n", power.str().c_str());
    std::printf("paper reports +11%% on Conv1 and -13%% on Conv5; the\n"
                "PE array dominates runtime power in both.\n");
    obs::writeMetricsManifest("bench/fig05_eyeriss",
                              "fig05_eyeriss.manifest.json");
    return 0;
}
