/**
 * @file
 * Guided-search efficiency: the surrogate-assisted SearchEngine vs
 * the exhaustive SweepEngine oracle on the fig08-class design space.
 * Reports evals-to-frontier (the headline <10%-of-grid claim), the
 * frontier-quality verdict against the oracle (compareFrontiers, 1%
 * eps per objective), and the wall-clock speedup, then records the
 * deterministic subset into a run manifest so CI can regression-check
 * search quality without wall-clock flakes
 * (tools/compare_bench.py --tolerance).
 */

#include <chrono>
#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

// The fig08-class space through named axes, exactly as the oracle
// acceptance test (tests/test_search.cc) spells it: 336 points.
SweepGrid
fig08Grid()
{
    SweepGrid g;
    g.axis("core.tu.rows", {4, 8, 16, 32, 64, 128, 256});
    g.axis("core.numTU", {1, 2, 4});
    g.axis("tx", {1, 2, 4, 8});
    g.axis("ty", {1, 2, 4, 8});
    return g;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    const SweepGrid grid = fig08Grid();
    const std::vector<Objective> objectives = searchObjectives();

    std::printf("== search_speed: guided search vs exhaustive sweep "
                "(%zu-point grid) ==\n\n",
                grid.size());

    // The oracle: evaluate everything, take the true frontier.
    auto t0 = std::chrono::steady_clock::now();
    SweepEngine oracle(datacenterBase(), SweepOptions{});
    const std::vector<EvalRecord> all = oracle.run(grid);
    const double sweep_s = seconds(t0, std::chrono::steady_clock::now());
    const std::vector<std::size_t> oracle_frontier =
        paretoFrontier(all, objectives);

    // The guided search at stock settings (budget = grid / 10).
    SearchOptions opts;
    opts.seed = 1;
    t0 = std::chrono::steady_clock::now();
    SearchEngine engine(datacenterBase(), opts);
    const SearchResult found = engine.run(grid);
    const double search_s = seconds(t0, std::chrono::steady_clock::now());

    const double eps = 0.01;
    const FrontierComparison cmp =
        compareFrontiers(all, oracle_frontier, found.records,
                         found.frontier, objectives, eps);

    const double frac = double(found.stats.selected) / double(grid.size());
    std::printf("exhaustive sweep:  %zu evals  %7.2f s  "
                "frontier size %zu\n",
                all.size(), sweep_s, oracle_frontier.size());
    std::printf("guided search:     %zu evals  %7.2f s  "
                "frontier size %zu  (%zu rounds)\n",
                found.stats.selected, search_s, found.frontier.size(),
                found.stats.rounds);
    std::printf("evals-to-frontier: %.1f%% of the grid  "
                "(%.1fx fewer evaluations)\n",
                100.0 * frac, 1.0 / frac);
    std::printf("wall-clock speedup: %.2fx\n", sweep_s / search_s);
    std::printf("frontier quality:  within_eps=%s  coverage %.2f  "
                "worst shortfall %.4f  (eps %.2f)\n",
                cmp.withinEps ? "yes" : "no", cmp.coverage,
                cmp.worstShortfall, eps);

    const bool pass =
        cmp.withinEps && found.stats.selected <= grid.size() / 10;
    std::printf("\nverdict: %s\n", pass ? "PASS" : "FAIL");

    // Deterministic fields first (compare_bench.py checks these),
    // wall-clock and the metrics snapshot after.
    obs::ManifestBuilder m =
        obs::runManifest("bench/search_speed", "bench/search_speed");
    m.set("grid_points", std::int64_t(grid.size()))
        .set("seed", std::int64_t(opts.seed))
        .set("search_evals", std::int64_t(found.stats.selected))
        .set("search_rounds", std::int64_t(found.stats.rounds))
        .set("eval_fraction", frac)
        .set("oracle_frontier_size", std::int64_t(oracle_frontier.size()))
        .set("found_frontier_size", std::int64_t(found.frontier.size()))
        .set("within_eps", cmp.withinEps)
        .set("coverage", cmp.coverage)
        .set("worst_shortfall", cmp.worstShortfall)
        .set("eps", eps)
        .set("hypervolume", found.stats.hypervolume)
        .set("sweep_s", sweep_s)
        .set("search_s", search_s)
        .set("speedup", sweep_s / search_s)
        .raw("metrics", obs::snapshot().toJson());
    obs::writeTextFile("search_speed.manifest.json", m.str());
    std::printf("manifest: search_speed.manifest.json\n");
    return pass ? 0 : 1;
}
