/**
 * @file
 * Fig. 11 reproduction: energy-efficiency gain of sparse over dense
 * SpMV at different sparsity levels, on the Sec. IV architectures —
 * TU32 (power-efficiency optimum, 32x32 TUs), TU8 (utilization
 * optimum, 8x8 TUs), and reduction-tree machines with matched OPS per
 * compute unit: RT1024 (1024-to-1) and RT64 (64-to-1).
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    const ChipConfig base = datacenterBase();

    // Sec. IV machines, taken from the Fig. 10(b) optima.
    ChipModel tu32 = buildChip(base, {32, 4, 2, 2});
    ChipModel tu8 = buildChip(base, {8, 4, 4, 8});
    ChipConfig rt1024_cfg = base;
    rt1024_cfg.core.numTU = 0;
    rt1024_cfg.core.numRT = 4;
    rt1024_cfg.core.rt.inputs = 1024;
    rt1024_cfg.tx = 2;
    rt1024_cfg.ty = 2;
    ChipModel rt1024(rt1024_cfg);
    ChipConfig rt64_cfg = base;
    rt64_cfg.core.numTU = 0;
    rt64_cfg.core.numRT = 4;
    rt64_cfg.core.rt.inputs = 64;
    rt64_cfg.tx = 4;
    rt64_cfg.ty = 8;
    ChipModel rt64(rt64_cfg);

    const SparseRoofline r_tu32(tu32, SkipScheme::TensorBlock, 32);
    const SparseRoofline r_tu8(tu8, SkipScheme::TensorBlock, 8);
    const SparseRoofline r_rt1024(rt1024, SkipScheme::RtVector, 1024);
    const SparseRoofline r_rt64(rt64, SkipScheme::RtVector, 64);

    std::printf(
        "== Fig. 11: sparse-over-dense energy-efficiency gain ==\n"
        "SpMV microbenchmark: 2048x2048 int8 weights (clustered zero\n"
        "patches + element salt), batched vectors K=32, tiled CSR\n"
        "(beta in [2.0, 2.5]), alpha = 1.\n\n");

    AsciiTable t({"sparsity", "x", "beta", "TU32", "TU8", "RT1024",
                  "RT64", "y(32x32)", "y(8x8)"});
    const SpmvProblem prob{2048, 2048, 32};
    for (double s : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85,
                     0.9, 0.95, 0.98}) {
        SparseGenConfig g;
        g.rows = prob.m;
        g.cols = prob.n;
        g.sparsity = s;
        const SparseMatrix m(g);
        const SparseRunResult a = r_tu32.eval(prob, m);
        const SparseRunResult b = r_tu8.eval(prob, m);
        const SparseRunResult c = r_rt1024.eval(prob, m);
        const SparseRunResult d = r_rt64.eval(prob, m);
        t.addRow({AsciiTable::num(s, 2), AsciiTable::num(a.x, 3),
                  AsciiTable::num(a.beta, 2),
                  AsciiTable::num(a.energyEfficiencyGain, 3),
                  AsciiTable::num(b.energyEfficiencyGain, 3),
                  AsciiTable::num(c.energyEfficiencyGain, 3),
                  AsciiTable::num(d.energyEfficiencyGain, 3),
                  AsciiTable::num(a.y, 3), AsciiTable::num(b.y, 3)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "expected shape: gains cross 1.0 only past ~0.5 sparsity (CSR\n"
        "overhead beta~2 must amortize); TU8/RT64 show a knee near 0.9\n"
        "as fine-grained zero-skip kicks in, while TU32/RT1024 grow\n"
        "slowly from reduced CSR traffic alone.\n");
    obs::writeMetricsManifest("bench/fig11_sparsity",
                              "fig11_sparsity.manifest.json");
    return 0;
}
