/**
 * @file
 * Fig. 7 reproduction: simulated throughput before and after software
 * graph optimization (space-to-batch/depth, double buffering,
 * broadcast-aware scheduling) across batch sizes, on the
 * (64, 2, 2, 4) datacenter inference design point.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

} // namespace

int
main()
{
    const ChipModel chip =
        buildChip(datacenterBase(), {64, 2, 2, 4});
    const TfSim sim(chip);

    std::printf("== Fig. 7: throughput before/after software "
                "optimization, (64,2,2,4) ==\n\n");

    for (Workload wl : {resnet50(), inceptionV3(), nasnetALarge()}) {
        AsciiTable t({"batch", "fps (no opt)", "fps (opt)", "speedup"});
        for (int b : {1, 2, 4, 8, 16, 32, 64}) {
            SimConfig off{b, false};
            SimConfig on{b, true};
            const double f0 = sim.run(wl, off).throughputFps;
            const double f1 = sim.run(wl, on).throughputFps;
            t.addRow({std::to_string(b), AsciiTable::num(f0, 0),
                      AsciiTable::num(f1, 0),
                      AsciiTable::num(f1 / f0, 2)});
        }
        std::printf("-- %s --\n%s\n", wl.name.c_str(), t.str().c_str());
    }
    std::printf("expected shape: optimizations help most at small "
                "batch sizes.\n");
    obs::writeMetricsManifest("bench/fig07_sw_opt",
                              "fig07_sw_opt.manifest.json");
    return 0;
}
