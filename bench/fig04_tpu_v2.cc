/**
 * @file
 * Fig. 4 reproduction: TPU-v2 whole-chip area breakdown, modeled vs
 * published. Assumed 16 nm, 0.75 V, 700 MHz; two cores, each with one
 * 128x128 MXU (bf16 multiply, fp32 accumulate), 8 MB VMem (quad banks;
 * the port config 2R1W is *searched* from the throughput target), HBM
 * at 700 GB/s, ICI at 496 Gb/s per direction, PCIe Gen3 x16.
 *
 * Published (CACM'20): die < 611 mm^2, TDP 280 W; shares: ICI 5%,
 * HBM ports 5%, PCIe 2%; ~11% transpose/RPU/misc unmodeled, ~21%
 * unknown. NeuroMeter's own results: 512.94 mm^2, 255 W, ICI 12%,
 * HBM 9%, PCIe 2%.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    const TechNode tech = TechNode::make(16.0, 0.75);
    const double freq = 700e6;

    TensorUnitConfig mxu_cfg;
    mxu_cfg.rows = mxu_cfg.cols = 128;
    mxu_cfg.mulType = DataType::BF16;
    mxu_cfg.accType = DataType::FP32;
    mxu_cfg.freqHz = freq;
    TensorUnitModel mxu(tech, mxu_cfg);

    // VMem: 8 MB, quad banks; ports searched from the MXU's streaming
    // throughput demand (two 128-lane bf16 operand streams + writeback).
    MemoryModel mm(tech);
    MemoryRequest vmem_req;
    vmem_req.capacityBytes = 8.0 * units::mib;
    vmem_req.blockBytes = 256.0; // 128 lanes x bf16
    vmem_req.fixedBanks = 4;
    vmem_req.searchPorts = true;
    vmem_req.targetCycleS = 1.0 / freq;
    vmem_req.targetReadBwBytesPerS = 4.0 * 2.0 * 256.0 * freq * 0.999;
    vmem_req.targetWriteBwBytesPerS = 4.0 * 1.0 * 256.0 * freq * 0.999;
    const MemoryDesign vmem = mm.optimize(vmem_req);

    // TPU-v2's VPU: 128 lanes x 8 sublanes of fp32 with a heavily
    // ported vector register file.
    VectorUnitConfig vu_cfg;
    vu_cfg.lanes = 1024;
    vu_cfg.laneType = DataType::FP32;
    vu_cfg.freqHz = freq;
    VectorUnitModel vu(tech, vu_cfg);
    VectorRegfileConfig vr_cfg;
    vr_cfg.lanes = 1024;
    vr_cfg.laneBits = 32;
    vr_cfg.entries = 32;
    vr_cfg.readPorts = 6;
    vr_cfg.writePorts = 3;
    vr_cfg.freqHz = freq;
    VectorRegfileModel vreg(tech, vr_cfg);
    ScalarUnitConfig su_cfg;
    su_cfg.freqHz = freq;
    ScalarUnitModel su(tech, su_cfg);

    const Breakdown hbm = dramPort(tech, DramKind::HBM2, 700e9);
    const Breakdown ici = iciInterface(tech, 4, 496.0);
    const Breakdown pcie = pcieInterface(tech, 16);

    Breakdown chip("tpu_v2");
    Breakdown cores("cores");
    for (int c = 0; c < 2; ++c) {
        Breakdown core("core" + std::to_string(c));
        Breakdown m = mxu.breakdown();
        m.setName("mxu");
        core.addChild(std::move(m));
        PAT vmem_pat;
        vmem_pat.areaUm2 = vmem.areaUm2;
        vmem_pat.power.dynamicW =
            freq * (vmem.readPorts * vmem.readEnergyJ +
                    vmem.writePorts * vmem.writeEnergyJ);
        vmem_pat.power.leakageW = vmem.leakageW;
        core.addLeaf("vmem", vmem_pat);
        Breakdown v = vu.breakdown();
        core.addChild(std::move(v));
        core.addChild(vreg.breakdown());
        core.addChild(su.breakdown());
        cores.addChild(std::move(core));
    }
    chip.addChild(std::move(cores));
    chip.addChild(hbm);
    chip.addChild(ici);
    chip.addChild(pcie);
    PAT clk;
    clk.power.dynamicW = 0.10 * chip.total().power.dynamicW;
    chip.addLeaf("clock_tree", clk);
    // The 280 W package TDP includes the in-package HBM stacks
    // (~7 pJ/bit device energy at full streaming); zero area on die.
    PAT hbm_dev;
    hbm_dev.power.dynamicW = 7.0e-12 * 700e9 * 8.0;
    chip.addLeaf("hbm_devices", hbm_dev);

    const double modeled_sum = um2ToMm2(chip.total().areaUm2);
    const double chip_area = modeled_sum / (1.0 - 0.11 - 0.21);
    const double tdp = 0.9 * chip.total().power.total();

    std::printf("== Fig. 4: TPU-v2 validation (16 nm, 0.75 V, 700 MHz) "
                "==\n\n%s\n",
                chip.report(2).c_str());

    std::printf("VMem port search: %dR %dW per bank, %d banks "
                "(paper: 2R 1W found automatically)\n\n",
                vmem.readPorts, vmem.writePorts, vmem.banks);

    AsciiTable area(
        {"component", "model mm^2", "model %", "paper model %",
         "published %"});
    auto row = [&](const char *name, const char *node, double nm_pct,
                   double pub_pct) {
        const double a = um2ToMm2(chip.areaOfUm2(node));
        area.addRow({name, AsciiTable::num(a, 1),
                     AsciiTable::num(100.0 * a / chip_area, 1),
                     AsciiTable::num(nm_pct, 1),
                     AsciiTable::num(pub_pct, 1)});
    };
    row("2x core (MXU+VMem+VU)", "cores", -0.0, -0.0);
    row("ICI (NIU + switch)", "ici", 12.0, 5.0);
    row("HBM ports", "dram_port", 9.0, 5.0);
    row("PCIe", "pcie", 2.0, 2.0);
    std::printf("%s\n", area.str().c_str());

    AsciiTable tot({"metric", "model", "paper model", "published"});
    tot.addRow({"die area (mm^2)", AsciiTable::num(chip_area, 1),
                "512.9", "<611"});
    tot.addRow({"TDP (W)", AsciiTable::num(tdp, 1), "255", "280"});
    std::printf("%s\n", tot.str().c_str());
    std::printf("area error vs published bound: %.1f%% "
                "(paper reports at most 17%%)\n",
                100.0 * relError(chip_area, 611.0));
    std::printf("TDP error vs published: %.1f%% (paper: ~9%%)\n",
                100.0 * relError(tdp, 280.0));
    obs::writeMetricsManifest("bench/fig04_tpu_v2",
                              "fig04_tpu_v2.manifest.json");
    return 0;
}
