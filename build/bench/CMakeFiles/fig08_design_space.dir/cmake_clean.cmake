file(REMOVE_RECURSE
  "CMakeFiles/fig08_design_space.dir/fig08_design_space.cc.o"
  "CMakeFiles/fig08_design_space.dir/fig08_design_space.cc.o.d"
  "fig08_design_space"
  "fig08_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
