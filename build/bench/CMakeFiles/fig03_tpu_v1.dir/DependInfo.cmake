
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_tpu_v1.cc" "bench/CMakeFiles/fig03_tpu_v1.dir/fig03_tpu_v1.cc.o" "gcc" "bench/CMakeFiles/fig03_tpu_v1.dir/fig03_tpu_v1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nm_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_components.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
