# Empty compiler generated dependencies file for fig03_tpu_v1.
# This may be replaced when dependencies are built.
