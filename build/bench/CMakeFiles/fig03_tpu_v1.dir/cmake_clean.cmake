file(REMOVE_RECURSE
  "CMakeFiles/fig03_tpu_v1.dir/fig03_tpu_v1.cc.o"
  "CMakeFiles/fig03_tpu_v1.dir/fig03_tpu_v1.cc.o.d"
  "fig03_tpu_v1"
  "fig03_tpu_v1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_tpu_v1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
