# Empty compiler generated dependencies file for fig11_sparsity.
# This may be replaced when dependencies are built.
