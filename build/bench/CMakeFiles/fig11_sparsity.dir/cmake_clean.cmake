file(REMOVE_RECURSE
  "CMakeFiles/fig11_sparsity.dir/fig11_sparsity.cc.o"
  "CMakeFiles/fig11_sparsity.dir/fig11_sparsity.cc.o.d"
  "fig11_sparsity"
  "fig11_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
