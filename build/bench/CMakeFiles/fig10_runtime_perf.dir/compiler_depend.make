# Empty compiler generated dependencies file for fig10_runtime_perf.
# This may be replaced when dependencies are built.
