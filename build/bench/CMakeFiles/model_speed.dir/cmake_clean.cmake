file(REMOVE_RECURSE
  "CMakeFiles/model_speed.dir/model_speed.cc.o"
  "CMakeFiles/model_speed.dir/model_speed.cc.o.d"
  "model_speed"
  "model_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
