file(REMOVE_RECURSE
  "CMakeFiles/fig04_tpu_v2.dir/fig04_tpu_v2.cc.o"
  "CMakeFiles/fig04_tpu_v2.dir/fig04_tpu_v2.cc.o.d"
  "fig04_tpu_v2"
  "fig04_tpu_v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_tpu_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
