# Empty compiler generated dependencies file for fig04_tpu_v2.
# This may be replaced when dependencies are built.
