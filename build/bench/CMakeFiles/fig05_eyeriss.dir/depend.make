# Empty dependencies file for fig05_eyeriss.
# This may be replaced when dependencies are built.
