file(REMOVE_RECURSE
  "CMakeFiles/fig05_eyeriss.dir/fig05_eyeriss.cc.o"
  "CMakeFiles/fig05_eyeriss.dir/fig05_eyeriss.cc.o.d"
  "fig05_eyeriss"
  "fig05_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
