file(REMOVE_RECURSE
  "CMakeFiles/fig07_sw_opt.dir/fig07_sw_opt.cc.o"
  "CMakeFiles/fig07_sw_opt.dir/fig07_sw_opt.cc.o.d"
  "fig07_sw_opt"
  "fig07_sw_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sw_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
