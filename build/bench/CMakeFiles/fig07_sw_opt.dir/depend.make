# Empty dependencies file for fig07_sw_opt.
# This may be replaced when dependencies are built.
