file(REMOVE_RECURSE
  "CMakeFiles/nm_circuit.dir/circuit/arith.cc.o"
  "CMakeFiles/nm_circuit.dir/circuit/arith.cc.o.d"
  "CMakeFiles/nm_circuit.dir/circuit/logic.cc.o"
  "CMakeFiles/nm_circuit.dir/circuit/logic.cc.o.d"
  "CMakeFiles/nm_circuit.dir/circuit/rc_tree.cc.o"
  "CMakeFiles/nm_circuit.dir/circuit/rc_tree.cc.o.d"
  "CMakeFiles/nm_circuit.dir/circuit/wire.cc.o"
  "CMakeFiles/nm_circuit.dir/circuit/wire.cc.o.d"
  "libnm_circuit.a"
  "libnm_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
