# Empty dependencies file for nm_circuit.
# This may be replaced when dependencies are built.
