file(REMOVE_RECURSE
  "libnm_circuit.a"
)
