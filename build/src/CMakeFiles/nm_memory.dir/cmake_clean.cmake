file(REMOVE_RECURSE
  "CMakeFiles/nm_memory.dir/memory/fifo.cc.o"
  "CMakeFiles/nm_memory.dir/memory/fifo.cc.o.d"
  "CMakeFiles/nm_memory.dir/memory/sram_array.cc.o"
  "CMakeFiles/nm_memory.dir/memory/sram_array.cc.o.d"
  "libnm_memory.a"
  "libnm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
