file(REMOVE_RECURSE
  "libnm_memory.a"
)
