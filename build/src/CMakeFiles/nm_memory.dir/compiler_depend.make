# Empty compiler generated dependencies file for nm_memory.
# This may be replaced when dependencies are built.
