# Empty compiler generated dependencies file for nm_perf.
# This may be replaced when dependencies are built.
