file(REMOVE_RECURSE
  "libnm_perf.a"
)
