file(REMOVE_RECURSE
  "CMakeFiles/nm_perf.dir/perf/tfsim.cc.o"
  "CMakeFiles/nm_perf.dir/perf/tfsim.cc.o.d"
  "CMakeFiles/nm_perf.dir/perf/workload.cc.o"
  "CMakeFiles/nm_perf.dir/perf/workload.cc.o.d"
  "libnm_perf.a"
  "libnm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
