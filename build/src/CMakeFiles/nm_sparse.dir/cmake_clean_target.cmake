file(REMOVE_RECURSE
  "libnm_sparse.a"
)
