# Empty compiler generated dependencies file for nm_sparse.
# This may be replaced when dependencies are built.
