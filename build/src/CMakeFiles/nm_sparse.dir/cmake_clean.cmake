file(REMOVE_RECURSE
  "CMakeFiles/nm_sparse.dir/sparse/csr.cc.o"
  "CMakeFiles/nm_sparse.dir/sparse/csr.cc.o.d"
  "CMakeFiles/nm_sparse.dir/sparse/roofline.cc.o"
  "CMakeFiles/nm_sparse.dir/sparse/roofline.cc.o.d"
  "CMakeFiles/nm_sparse.dir/sparse/sparse_matrix.cc.o"
  "CMakeFiles/nm_sparse.dir/sparse/sparse_matrix.cc.o.d"
  "libnm_sparse.a"
  "libnm_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
