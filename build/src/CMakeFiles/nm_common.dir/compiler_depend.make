# Empty compiler generated dependencies file for nm_common.
# This may be replaced when dependencies are built.
