file(REMOVE_RECURSE
  "CMakeFiles/nm_common.dir/common/breakdown.cc.o"
  "CMakeFiles/nm_common.dir/common/breakdown.cc.o.d"
  "CMakeFiles/nm_common.dir/common/table.cc.o"
  "CMakeFiles/nm_common.dir/common/table.cc.o.d"
  "libnm_common.a"
  "libnm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
