
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/cdb.cc" "src/CMakeFiles/nm_components.dir/components/cdb.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/cdb.cc.o.d"
  "/root/repo/src/components/noc.cc" "src/CMakeFiles/nm_components.dir/components/noc.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/noc.cc.o.d"
  "/root/repo/src/components/periph.cc" "src/CMakeFiles/nm_components.dir/components/periph.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/periph.cc.o.d"
  "/root/repo/src/components/reduction_tree.cc" "src/CMakeFiles/nm_components.dir/components/reduction_tree.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/reduction_tree.cc.o.d"
  "/root/repo/src/components/scalar_unit.cc" "src/CMakeFiles/nm_components.dir/components/scalar_unit.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/scalar_unit.cc.o.d"
  "/root/repo/src/components/tensor_unit.cc" "src/CMakeFiles/nm_components.dir/components/tensor_unit.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/tensor_unit.cc.o.d"
  "/root/repo/src/components/vector_regfile.cc" "src/CMakeFiles/nm_components.dir/components/vector_regfile.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/vector_regfile.cc.o.d"
  "/root/repo/src/components/vector_unit.cc" "src/CMakeFiles/nm_components.dir/components/vector_unit.cc.o" "gcc" "src/CMakeFiles/nm_components.dir/components/vector_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
