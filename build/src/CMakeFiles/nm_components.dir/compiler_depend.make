# Empty compiler generated dependencies file for nm_components.
# This may be replaced when dependencies are built.
