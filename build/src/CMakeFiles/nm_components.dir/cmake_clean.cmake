file(REMOVE_RECURSE
  "CMakeFiles/nm_components.dir/components/cdb.cc.o"
  "CMakeFiles/nm_components.dir/components/cdb.cc.o.d"
  "CMakeFiles/nm_components.dir/components/noc.cc.o"
  "CMakeFiles/nm_components.dir/components/noc.cc.o.d"
  "CMakeFiles/nm_components.dir/components/periph.cc.o"
  "CMakeFiles/nm_components.dir/components/periph.cc.o.d"
  "CMakeFiles/nm_components.dir/components/reduction_tree.cc.o"
  "CMakeFiles/nm_components.dir/components/reduction_tree.cc.o.d"
  "CMakeFiles/nm_components.dir/components/scalar_unit.cc.o"
  "CMakeFiles/nm_components.dir/components/scalar_unit.cc.o.d"
  "CMakeFiles/nm_components.dir/components/tensor_unit.cc.o"
  "CMakeFiles/nm_components.dir/components/tensor_unit.cc.o.d"
  "CMakeFiles/nm_components.dir/components/vector_regfile.cc.o"
  "CMakeFiles/nm_components.dir/components/vector_regfile.cc.o.d"
  "CMakeFiles/nm_components.dir/components/vector_unit.cc.o"
  "CMakeFiles/nm_components.dir/components/vector_unit.cc.o.d"
  "libnm_components.a"
  "libnm_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
