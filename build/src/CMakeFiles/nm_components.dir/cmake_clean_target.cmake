file(REMOVE_RECURSE
  "libnm_components.a"
)
