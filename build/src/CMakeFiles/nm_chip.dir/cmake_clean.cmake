file(REMOVE_RECURSE
  "CMakeFiles/nm_chip.dir/chip/chip.cc.o"
  "CMakeFiles/nm_chip.dir/chip/chip.cc.o.d"
  "CMakeFiles/nm_chip.dir/chip/config.cc.o"
  "CMakeFiles/nm_chip.dir/chip/config.cc.o.d"
  "CMakeFiles/nm_chip.dir/chip/core.cc.o"
  "CMakeFiles/nm_chip.dir/chip/core.cc.o.d"
  "CMakeFiles/nm_chip.dir/chip/optimizer.cc.o"
  "CMakeFiles/nm_chip.dir/chip/optimizer.cc.o.d"
  "libnm_chip.a"
  "libnm_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
