
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/chip.cc" "src/CMakeFiles/nm_chip.dir/chip/chip.cc.o" "gcc" "src/CMakeFiles/nm_chip.dir/chip/chip.cc.o.d"
  "/root/repo/src/chip/config.cc" "src/CMakeFiles/nm_chip.dir/chip/config.cc.o" "gcc" "src/CMakeFiles/nm_chip.dir/chip/config.cc.o.d"
  "/root/repo/src/chip/core.cc" "src/CMakeFiles/nm_chip.dir/chip/core.cc.o" "gcc" "src/CMakeFiles/nm_chip.dir/chip/core.cc.o.d"
  "/root/repo/src/chip/optimizer.cc" "src/CMakeFiles/nm_chip.dir/chip/optimizer.cc.o" "gcc" "src/CMakeFiles/nm_chip.dir/chip/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nm_components.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
