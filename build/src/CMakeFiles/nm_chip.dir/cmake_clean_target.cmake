file(REMOVE_RECURSE
  "libnm_chip.a"
)
