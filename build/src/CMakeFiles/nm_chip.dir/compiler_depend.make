# Empty compiler generated dependencies file for nm_chip.
# This may be replaced when dependencies are built.
