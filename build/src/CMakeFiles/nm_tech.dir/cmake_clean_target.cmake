file(REMOVE_RECURSE
  "libnm_tech.a"
)
