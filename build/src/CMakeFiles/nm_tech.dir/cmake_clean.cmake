file(REMOVE_RECURSE
  "CMakeFiles/nm_tech.dir/tech/tech_node.cc.o"
  "CMakeFiles/nm_tech.dir/tech/tech_node.cc.o.d"
  "libnm_tech.a"
  "libnm_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
