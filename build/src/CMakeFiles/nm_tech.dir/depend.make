# Empty dependencies file for nm_tech.
# This may be replaced when dependencies are built.
