# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for brawny_vs_wimpy.
