file(REMOVE_RECURSE
  "CMakeFiles/brawny_vs_wimpy.dir/brawny_vs_wimpy.cc.o"
  "CMakeFiles/brawny_vs_wimpy.dir/brawny_vs_wimpy.cc.o.d"
  "brawny_vs_wimpy"
  "brawny_vs_wimpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brawny_vs_wimpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
