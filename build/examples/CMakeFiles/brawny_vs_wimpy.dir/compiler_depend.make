# Empty compiler generated dependencies file for brawny_vs_wimpy.
# This may be replaced when dependencies are built.
