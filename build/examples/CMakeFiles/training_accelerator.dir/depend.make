# Empty dependencies file for training_accelerator.
# This may be replaced when dependencies are built.
