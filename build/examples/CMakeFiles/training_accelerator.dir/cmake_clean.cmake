file(REMOVE_RECURSE
  "CMakeFiles/training_accelerator.dir/training_accelerator.cc.o"
  "CMakeFiles/training_accelerator.dir/training_accelerator.cc.o.d"
  "training_accelerator"
  "training_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
