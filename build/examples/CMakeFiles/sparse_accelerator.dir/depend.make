# Empty dependencies file for sparse_accelerator.
# This may be replaced when dependencies are built.
