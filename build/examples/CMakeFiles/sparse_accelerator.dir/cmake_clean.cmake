file(REMOVE_RECURSE
  "CMakeFiles/sparse_accelerator.dir/sparse_accelerator.cc.o"
  "CMakeFiles/sparse_accelerator.dir/sparse_accelerator.cc.o.d"
  "sparse_accelerator"
  "sparse_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
