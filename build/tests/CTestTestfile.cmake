# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_rc_tree[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_arith[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_tensor_unit[1]_include.cmake")
include("/root/repo/build/tests/test_reduction_tree[1]_include.cmake")
include("/root/repo/build/tests/test_vector_unit[1]_include.cmake")
include("/root/repo/build/tests/test_vector_regfile[1]_include.cmake")
include("/root/repo/build/tests/test_scalar_unit[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_cdb[1]_include.cmake")
include("/root/repo/build/tests/test_periph[1]_include.cmake")
include("/root/repo/build/tests/test_chip[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_tfsim[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
