file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_unit.dir/test_tensor_unit.cc.o"
  "CMakeFiles/test_tensor_unit.dir/test_tensor_unit.cc.o.d"
  "test_tensor_unit"
  "test_tensor_unit.pdb"
  "test_tensor_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
