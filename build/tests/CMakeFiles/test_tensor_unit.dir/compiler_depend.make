# Empty compiler generated dependencies file for test_tensor_unit.
# This may be replaced when dependencies are built.
