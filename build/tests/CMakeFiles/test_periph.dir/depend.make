# Empty dependencies file for test_periph.
# This may be replaced when dependencies are built.
