file(REMOVE_RECURSE
  "CMakeFiles/test_periph.dir/test_periph.cc.o"
  "CMakeFiles/test_periph.dir/test_periph.cc.o.d"
  "test_periph"
  "test_periph.pdb"
  "test_periph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_periph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
