file(REMOVE_RECURSE
  "CMakeFiles/test_reduction_tree.dir/test_reduction_tree.cc.o"
  "CMakeFiles/test_reduction_tree.dir/test_reduction_tree.cc.o.d"
  "test_reduction_tree"
  "test_reduction_tree.pdb"
  "test_reduction_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduction_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
