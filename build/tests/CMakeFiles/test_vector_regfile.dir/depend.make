# Empty dependencies file for test_vector_regfile.
# This may be replaced when dependencies are built.
