file(REMOVE_RECURSE
  "CMakeFiles/test_vector_regfile.dir/test_vector_regfile.cc.o"
  "CMakeFiles/test_vector_regfile.dir/test_vector_regfile.cc.o.d"
  "test_vector_regfile"
  "test_vector_regfile.pdb"
  "test_vector_regfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
