file(REMOVE_RECURSE
  "CMakeFiles/test_scalar_unit.dir/test_scalar_unit.cc.o"
  "CMakeFiles/test_scalar_unit.dir/test_scalar_unit.cc.o.d"
  "test_scalar_unit"
  "test_scalar_unit.pdb"
  "test_scalar_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalar_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
