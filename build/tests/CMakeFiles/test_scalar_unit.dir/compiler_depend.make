# Empty compiler generated dependencies file for test_scalar_unit.
# This may be replaced when dependencies are built.
