# Empty compiler generated dependencies file for test_tfsim.
# This may be replaced when dependencies are built.
