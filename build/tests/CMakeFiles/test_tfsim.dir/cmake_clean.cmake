file(REMOVE_RECURSE
  "CMakeFiles/test_tfsim.dir/test_tfsim.cc.o"
  "CMakeFiles/test_tfsim.dir/test_tfsim.cc.o.d"
  "test_tfsim"
  "test_tfsim.pdb"
  "test_tfsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
