/**
 * @file
 * Example: a compact brawny-vs-wimpy study through the public API.
 *
 * Builds two datacenter inference chips — a brawny dual-TU 64x64
 * design and a wimpy many-core 8x8 design — runs ResNet-50 through the
 * bundled performance simulator at several batch sizes, and prints the
 * performance/efficiency comparison (the Sec. III methodology in ~80
 * lines of user code).
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    ChipConfig base;
    base.nodeNm = 28.0;
    base.freqHz = 700e6;
    base.totalMemBytes = 32.0 * units::mib;
    base.offchipBwBytesPerS = 700e9;
    base.nocBisectionBwBytesPerS = 256e9;
    base.core.tu.mulType = DataType::Int8;
    base.core.tu.accType = DataType::Int32;

    const DesignPoint brawny{64, 2, 2, 4};
    const DesignPoint wimpy{8, 4, 4, 8};

    const Workload wl = resnet50();

    for (const DesignPoint &dp : {brawny, wimpy}) {
        ChipModel chip = buildChip(base, dp);
        TfSim sim(chip);

        std::printf("=== design point %s ===\n", dp.str().c_str());
        std::printf("die area %.1f mm^2 | TDP %.1f W | peak %.2f TOPS "
                    "| peak TOPS/W %.3f\n",
                    chip.areaMm2(), chip.tdpW(), chip.peakTops(),
                    chip.peakTopsPerWatt());

        AsciiTable t({"batch", "latency ms", "fps", "TU util",
                      "TOPS/W", "runtime W"});
        for (int b : {1, 16, 256}) {
            const SimResult r = sim.run(wl, {b, true});
            t.addRow({std::to_string(b),
                      AsciiTable::num(r.latencyS * 1e3, 3),
                      AsciiTable::num(r.throughputFps, 0),
                      AsciiTable::num(r.tuUtilization, 3),
                      AsciiTable::num(r.achievedTopsPerWatt, 3),
                      AsciiTable::num(r.runtimePower.total(), 1)});
        }
        std::printf("%s\n", t.str().c_str());
    }

    std::printf("expected: the wimpy chip runs at much higher TU\n"
                "utilization, but the brawny chip delivers more\n"
                "absolute throughput and better efficiency.\n");
    return 0;
}
