/**
 * @file
 * Example: evaluating sparsity support on a reduction-tree accelerator.
 *
 * Builds an RT-based chip (EIE/SIGMA-style, no 2-D tensor units),
 * generates clustered-sparse weight matrices, and uses the Sec. IV
 * roofline to decide at which sparsity level CSR-compressed execution
 * starts paying off — the question a deployment team would actually
 * ask before enabling sparse kernels.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    // A 32-core accelerator built from four 64-to-1 reduction trees
    // per core (more flexible mapping than systolic arrays).
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.tx = 4;
    cfg.ty = 8;
    cfg.core.numTU = 0;
    cfg.core.numRT = 4;
    cfg.core.rt.inputs = 64;
    cfg.core.rt.mulType = DataType::Int8;
    cfg.core.rt.accType = DataType::Int32;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;

    ChipModel chip(cfg);
    std::printf("RT64 accelerator: %.1f mm^2, %.1f W TDP, %.2f peak "
                "TOPS\n\n",
                chip.areaMm2(), chip.tdpW(), chip.peakTops());

    const SparseRoofline roofline(chip, SkipScheme::RtVector, 64);
    const SpmvProblem prob{4096, 4096, 64};

    AsciiTable t({"sparsity", "x", "beta", "y (skip)", "t_dense us",
                  "t_sparse us", "energy-eff gain"});
    double breakeven = -1.0;
    for (double s : {0.0, 0.25, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
        SparseGenConfig g;
        g.rows = prob.m;
        g.cols = prob.n;
        g.sparsity = s;
        const SparseMatrix m(g);
        const SparseRunResult r = roofline.eval(prob, m);
        t.addRow({AsciiTable::num(s, 2), AsciiTable::num(r.x, 3),
                  AsciiTable::num(r.beta, 2), AsciiTable::num(r.y, 3),
                  AsciiTable::num(r.tDenseS * 1e6, 2),
                  AsciiTable::num(r.tSparseS * 1e6, 2),
                  AsciiTable::num(r.energyEfficiencyGain, 3)});
        if (breakeven < 0.0 && r.energyEfficiencyGain > 1.0)
            breakeven = s;
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("sparse execution pays off from ~%.2f sparsity on "
                "this machine.\n",
                breakeven);

    // Sanity: the functional CSR agrees with a dense reference.
    SparseGenConfig g;
    g.rows = g.cols = 1024;
    g.sparsity = 0.8;
    const SparseMatrix occ(g);
    const CsrMatrix a(occ);
    std::vector<float> x(1024, 1.0f);
    const std::vector<float> y = a.spmv(x);
    double checksum = 0.0;
    for (float v : y)
        checksum += v;
    std::printf("functional SpMV checksum: %.0f (nnz %.0f)\n", checksum,
                occ.nnz());
    return 0;
}
