/**
 * @file
 * Quickstart: configure a small single-core inference accelerator and
 * print its power/area/timing report.
 *
 * The same kind of configuration can live in a plain-text file — see
 * examples/configs/tpu_v1_like.cfg and run it with
 * `build/tools/neurometer eval examples/configs/tpu_v1_like.cfg`.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

int
main()
{
    using namespace neurometer;

    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.tx = 1;
    cfg.ty = 1;
    cfg.core.numTU = 1;
    cfg.core.tu.rows = 64;
    cfg.core.tu.cols = 64;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    cfg.totalMemBytes = 4.0 * 1024 * 1024;
    cfg.offchipBwBytesPerS = 100e9;
    cfg.dram = DramKind::DDR4;

    ChipModel chip(cfg);
    std::printf("%s\n", chip.breakdown().report(3).c_str());
    std::printf("die area      : %8.2f mm^2\n", chip.areaMm2());
    std::printf("TDP           : %8.2f W\n", chip.tdpW());
    std::printf("peak perf     : %8.2f TOPS (int8)\n", chip.peakTops());
    std::printf("peak TOPS/W   : %8.3f\n", chip.peakTopsPerWatt());
    return 0;
}
