/**
 * @file
 * Example: sketching a bf16 training accelerator (the paper models
 * training parts too, deferring only the design-space study).
 *
 * A TPU-v2-flavored dual-core trainer: bf16 multiply / fp32 accumulate
 * MXUs, cache-mode on-chip memory (training reuse patterns are less
 * schedulable than inference scratchpads), HBM, and inter-chip links
 * for data-parallel scale-out. The clock is solved from a target of
 * 45 TFLOPS, then power/area and the all-reduce bandwidth balance are
 * reported.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    ChipConfig cfg;
    cfg.nodeNm = 16.0;
    cfg.tx = 1;
    cfg.ty = 2;
    cfg.core.numTU = 1;
    cfg.core.tu.rows = cfg.core.tu.cols = 128;
    cfg.core.tu.mulType = DataType::BF16;
    cfg.core.tu.accType = DataType::FP32;
    cfg.core.vregEntries = 64;      // training keeps more live state
    cfg.totalMemBytes = 16.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.dram = DramKind::HBM2;
    cfg.iciLinks = 4;               // scale-out all-reduce links
    cfg.iciGbpsPerDirection = 496.0;

    // Solve the clock for the training throughput target.
    const double target_tflops = 45.9;
    cfg.freqHz = solveClockForTops(cfg, target_tflops);

    ChipModel chip(cfg);
    std::printf("%s\n", chip.breakdown().report(2).c_str());
    std::printf("solved clock   : %.0f MHz for %.1f TFLOPS bf16\n",
                cfg.freqHz / 1e6, chip.peakTops());
    std::printf("die area       : %.1f mm^2\n", chip.areaMm2());
    std::printf("TDP            : %.1f W\n", chip.tdpW());
    std::printf("peak TFLOPS/W  : %.3f\n", chip.peakTopsPerWatt());

    // Scale-out balance: gradients of a 90M-parameter model (bf16)
    // must all-reduce within a step to keep the MXUs busy.
    const double grad_bytes = 90e6 * 2.0;
    const double ici_bw =
        cfg.iciLinks * cfg.iciGbpsPerDirection * 1e9 / 8.0;
    const double allreduce_s = 2.0 * grad_bytes / ici_bw;
    const double step_flops = 6.0 * 90e6 * 256.0; // fwd+bwd, bs=256
    const double step_s = step_flops / (chip.peakTops() * 1e12 * 0.5);
    std::printf("all-reduce     : %.2f ms vs %.2f ms compute/step "
                "(%s-bound)\n",
                allreduce_s * 1e3, step_s * 1e3,
                allreduce_s > step_s ? "network" : "compute");
    return 0;
}
