/**
 * @file
 * Example: modeling a custom edge accelerator from components.
 *
 * Shows the lower-level component API (the same one the validation
 * benches use): compose a TU, memories, a vector unit, and peripherals
 * by hand, inspect per-component power/area/timing, and find the
 * maximum clock the design supports at a 16 nm node — the workflow for
 * an architecture that doesn't fit the stock multicore template.
 */

#include <algorithm>
#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    const TechNode tech = TechNode::make(16.0); // node-default supply
    const double freq = 940e6;

    // An Eyeriss-inspired edge NPU: one 16x16 multicast array with
    // per-cell scratchpads, a 2 MB scratchpad, a 16-lane vector unit.
    TensorUnitConfig tu_cfg;
    tu_cfg.rows = tu_cfg.cols = 16;
    tu_cfg.mulType = DataType::Int8;
    tu_cfg.accType = DataType::Int32;
    tu_cfg.interconnect = TuInterconnect::Multicast;
    tu_cfg.perCellSramBytes = 256.0;
    tu_cfg.freqHz = freq;
    const TensorUnitModel tu(tech, tu_cfg);

    MemoryModel mm(tech);
    MemoryRequest mem_req;
    mem_req.capacityBytes = 2.0 * units::mib;
    mem_req.blockBytes = 16.0;
    mem_req.targetCycleS = 1.0 / freq;
    mem_req.searchPorts = true;
    mem_req.targetReadBwBytesPerS = 16.0 * freq;
    const MemoryDesign mem = mm.optimize(mem_req);

    VectorUnitConfig vu_cfg;
    vu_cfg.lanes = 16;
    vu_cfg.laneType = DataType::Int32;
    vu_cfg.freqHz = freq;
    const VectorUnitModel vu(tech, vu_cfg);

    const Breakdown lpddr = dramPort(tech, DramKind::DDR4, 12e9);

    Breakdown npu("edge_npu");
    npu.addChild(tu.breakdown());
    PAT mem_pat;
    mem_pat.areaUm2 = mem.areaUm2;
    mem_pat.power.dynamicW =
        freq * 0.5 * (mem.readEnergyJ + mem.writeEnergyJ);
    mem_pat.power.leakageW = mem.leakageW;
    npu.addLeaf("scratchpad", mem_pat);
    npu.addChild(vu.breakdown());
    npu.addChild(lpddr);

    std::printf("%s\n", npu.report(2).c_str());

    const double max_clock =
        1.0 / std::max({tu.minCycleS(), vu.minCycleS(),
                        mem.randomCycleS});
    std::printf("TU energy/MAC    : %.3f pJ\n",
                tu.energyPerMacJ() * 1e12);
    std::printf("scratchpad       : %d banks, %dR%dW, %.1f pJ/read\n",
                mem.banks, mem.readPorts, mem.writePorts,
                mem.readEnergyJ * 1e12);
    std::printf("max clock        : %.0f MHz (requested %.0f MHz)\n",
                max_clock / 1e6, freq / 1e6);
    std::printf("peak perf        : %.2f TOPS int8, %.3f TOPS/W\n",
                tu.peakOpsPerS() / units::tera,
                tu.peakOpsPerS() / units::tera /
                    npu.total().power.total());
    return 0;
}
