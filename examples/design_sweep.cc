/**
 * @file
 * Design-space exploration walkthrough on the explore/ engine:
 * declare a parameter grid, sweep it in parallel under Table I
 * constraints, extract the {TOPS, -W, -mm^2} Pareto frontier, rank
 * by peak TOPS/Watt, and export the full record set to CSV + JSON.
 */

#include <cstdio>

#include "neurometer/neurometer.hh"

using namespace neurometer;

int
main()
{
    // The paper's 28 nm datacenter inference baseline.
    ChipConfig base;
    base.nodeNm = 28.0;
    base.freqHz = 700e6;
    base.totalMemBytes = 32.0 * units::mib;
    base.offchipBwBytesPerS = 700e9;
    base.nocBisectionBwBytesPerS = 256e9;
    base.core.tu.mulType = DataType::Int8;
    base.core.tu.accType = DataType::Int32;

    // Declarative grid: 4 TU lengths x 2 TU counts x the paper's
    // candidate core grids x 2 clocks = 208 points. Axes left empty
    // (node, memory, datatype) inherit the base config.
    SweepGrid grid;
    grid.tuLengths = {16, 32, 64, 128};
    grid.tuPerCore = {1, 2};
    grid.coreGrids = candidateGrids(64);
    grid.clocksHz = {600e6, 700e6};

    SweepOptions opts; // threads = 0: one worker per hardware thread
    opts.constraints = DesignConstraints{}; // Table I budgets
    SweepEngine engine(base, opts);

    std::vector<EvalRecord> records = engine.run(grid);

    std::size_t feasible = 0;
    for (const EvalRecord &r : records)
        feasible += r.feasible();
    const CacheStats cs = engine.cache().stats();
    std::printf("swept %zu points on %d threads: %zu feasible, "
                "%zu distinct evaluations cached\n\n",
                records.size(), engine.pool().numThreads(), feasible,
                engine.cache().size());

    // The efficient frontier of {peak TOPS up, TDP down, area down}.
    AsciiTable t({"(X,N,Tx,Ty)", "MHz", "TOPS", "W", "mm^2", "TOPS/W"});
    for (std::size_t i : paretoFrontier(records)) {
        const EvalRecord &r = records[i];
        t.addRow({r.point.str(), AsciiTable::num(r.freqHz / 1e6, 0),
                  AsciiTable::num(r.metrics.peakTops, 2),
                  AsciiTable::num(r.metrics.tdpW, 1),
                  AsciiTable::num(r.metrics.areaMm2, 1),
                  AsciiTable::num(r.metrics.topsPerWatt, 3)});
    }
    std::printf("Pareto frontier (maximize TOPS, minimize W, mm^2):\n%s\n",
                t.str().c_str());

    std::printf("top-3 by peak TOPS/Watt:\n");
    const auto best = topK(
        records,
        [](const EvalRecord &r) { return r.metrics.topsPerWatt; }, 3);
    for (std::size_t i : best)
        std::printf("  %-14s %.3f TOPS/W\n", records[i].point.str().c_str(),
                    records[i].metrics.topsPerWatt);

    // Full record set (including infeasible points and their *why*)
    // for downstream tooling.
    writeFile("design_sweep.csv", toCsv(records));
    writeFile("design_sweep.json", toJson(records));
    std::printf("\nwrote design_sweep.csv / design_sweep.json "
                "(cache: %llu hits, %llu misses)\n",
                (unsigned long long)cs.hits,
                (unsigned long long)cs.misses);
    return 0;
}
