/**
 * @file
 * Tests of the NAND2-equivalent logic currency and register banks.
 */

#include <gtest/gtest.h>

#include "circuit/fit.hh"
#include "circuit/logic.hh"
#include "common/error.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class LogicFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);
};

TEST_F(LogicFixture, AreaIsGatesTimesCellTimesOverhead)
{
    LogicBlock blk;
    blk.gates = 1000.0;
    const PAT p = logicPAT(tech, blk, 1e9);
    EXPECT_NEAR(p.areaUm2,
                1000.0 * tech.nand2AreaUm2() * fit::datapathLayoutOverhead,
                1e-9);
}

TEST_F(LogicFixture, DynamicPowerScalesWithRateActivityAndDuty)
{
    LogicBlock blk;
    blk.gates = 500.0;
    blk.activity = 0.4;
    const PAT full = logicPAT(tech, blk, 1e9, 1.0);
    const PAT half_rate = logicPAT(tech, blk, 0.5e9, 1.0);
    const PAT half_duty = logicPAT(tech, blk, 1e9, 0.5);
    EXPECT_NEAR(half_rate.power.dynamicW, full.power.dynamicW / 2, 1e-12);
    EXPECT_NEAR(half_duty.power.dynamicW, full.power.dynamicW / 2, 1e-12);
    // Leakage is independent of the op rate.
    EXPECT_DOUBLE_EQ(half_rate.power.leakageW, full.power.leakageW);
}

TEST_F(LogicFixture, DelayIsDepthTimesFo4)
{
    LogicBlock blk;
    blk.gates = 10.0;
    blk.depthFo4 = 12.0;
    const PAT p = logicPAT(tech, blk, 1e9);
    EXPECT_NEAR(p.timing.delayS, 12.0 * tech.fo4S(), 1e-18);
    EXPECT_NEAR(p.timing.cycleS, 12.0 * tech.fo4S() + tech.dffDelayS(),
                1e-18);
}

TEST_F(LogicFixture, SeriesCompositionAddsDepthAndAveragesActivity)
{
    LogicBlock a;
    a.gates = 100.0;
    a.depthFo4 = 5.0;
    a.activity = 0.2;
    LogicBlock b;
    b.gates = 300.0;
    b.depthFo4 = 7.0;
    b.activity = 0.6;
    a += b;
    EXPECT_DOUBLE_EQ(a.gates, 400.0);
    EXPECT_DOUBLE_EQ(a.depthFo4, 12.0);
    EXPECT_NEAR(a.activity, (100 * 0.2 + 300 * 0.6) / 400.0, 1e-12);
}

TEST_F(LogicFixture, RegistersClockPinBurnsEvenWithoutDataToggles)
{
    const PAT quiet = registersPAT(tech, 1024.0, 1e9, 0.0);
    EXPECT_GT(quiet.power.dynamicW, 0.0);
    const PAT busy = registersPAT(tech, 1024.0, 1e9, 1.0);
    EXPECT_GT(busy.power.dynamicW, quiet.power.dynamicW);
}

TEST_F(LogicFixture, RegistersClockGatingScalesDynamic)
{
    const PAT on = registersPAT(tech, 1024.0, 1e9, 0.5, 1.0);
    const PAT gated = registersPAT(tech, 1024.0, 1e9, 0.5, 0.25);
    EXPECT_NEAR(gated.power.dynamicW, 0.25 * on.power.dynamicW, 1e-12);
    EXPECT_DOUBLE_EQ(gated.power.leakageW, on.power.leakageW);
}

TEST_F(LogicFixture, RegisterAreaLinearInBits)
{
    const PAT a = registersPAT(tech, 100.0, 1e9);
    const PAT b = registersPAT(tech, 200.0, 1e9);
    EXPECT_NEAR(b.areaUm2, 2.0 * a.areaUm2, 1e-9);
}

TEST_F(LogicFixture, RejectsNegativeInputs)
{
    LogicBlock blk;
    blk.gates = -1.0;
    EXPECT_THROW(logicPAT(tech, blk, 1e9), ModelError);
    EXPECT_THROW(registersPAT(tech, -5.0, 1e9), ModelError);
}

/** Node sweep: logic cost falls monotonically with scaling. */
class LogicNodeSweep : public ::testing::TestWithParam<double>
{};

TEST_P(LogicNodeSweep, SmallerNodesAreCheaper)
{
    const TechNode big = TechNode::make(65.0);
    const TechNode cur = TechNode::make(GetParam());
    LogicBlock blk;
    blk.gates = 1000.0;
    const PAT pb = logicPAT(big, blk, 1e9);
    const PAT pc = logicPAT(cur, blk, 1e9);
    EXPECT_LT(pc.areaUm2, pb.areaUm2);
    EXPECT_LT(pc.power.dynamicW, pb.power.dynamicW);
    EXPECT_LT(pc.timing.delayS, pb.timing.delayS);
}

INSTANTIATE_TEST_SUITE_P(Nodes, LogicNodeSweep,
                         ::testing::Values(45.0, 28.0, 16.0, 12.0, 7.0));

} // namespace
} // namespace neurometer
