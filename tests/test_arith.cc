/**
 * @file
 * Tests of the empirical arithmetic-unit (curve-fit) models.
 */

#include <gtest/gtest.h>

#include "circuit/arith.hh"
#include "circuit/logic.hh"
#include "common/error.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

TEST(DataTypeTest, BitsAndFields)
{
    EXPECT_EQ(dataTypeBits(DataType::Int8), 8);
    EXPECT_EQ(dataTypeBits(DataType::BF16), 16);
    EXPECT_EQ(dataTypeBits(DataType::FP32), 32);
    EXPECT_EQ(dataTypeMantissa(DataType::BF16), 8);
    EXPECT_EQ(dataTypeMantissa(DataType::FP32), 24);
    EXPECT_EQ(dataTypeExponent(DataType::Int32), 0);
    EXPECT_EQ(dataTypeExponent(DataType::FP16), 5);
    EXPECT_FALSE(isFloat(DataType::Int16));
    EXPECT_TRUE(isFloat(DataType::BF16));
}

/** Name round-trip over every type. */
class DataTypeRoundTrip : public ::testing::TestWithParam<DataType>
{};

TEST_P(DataTypeRoundTrip, NameParsesBack)
{
    const DataType t = GetParam();
    EXPECT_EQ(dataTypeFromName(dataTypeName(t)), t);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, DataTypeRoundTrip,
    ::testing::Values(DataType::Int8, DataType::Int16, DataType::Int32,
                      DataType::BF16, DataType::FP16, DataType::FP32));

TEST(DataTypeTest, ParseIsCaseInsensitiveAndRejectsJunk)
{
    EXPECT_EQ(dataTypeFromName("Bf16"), DataType::BF16);
    EXPECT_EQ(dataTypeFromName("INT8"), DataType::Int8);
    EXPECT_THROW(dataTypeFromName("int7"), ConfigError);
}

TEST(DataTypeTest, DefaultAccumTypes)
{
    EXPECT_EQ(defaultAccumType(DataType::Int8), DataType::Int32);
    EXPECT_EQ(defaultAccumType(DataType::BF16), DataType::FP32);
    EXPECT_EQ(defaultAccumType(DataType::FP32), DataType::FP32);
}

TEST(Multiplier, GatesGrowQuadraticallyWithWidth)
{
    const double g8 = multiplierBlock(DataType::Int8).gates;
    const double g16 = multiplierBlock(DataType::Int16).gates;
    const double g32 = multiplierBlock(DataType::Int32).gates;
    EXPECT_GT(g16 / g8, 3.0);
    EXPECT_LT(g16 / g8, 4.5);
    EXPECT_GT(g32 / g16, 3.0);
}

TEST(Multiplier, Bf16CheaperThanFp32)
{
    EXPECT_LT(multiplierBlock(DataType::BF16).gates,
              multiplierBlock(DataType::FP32).gates);
    // bf16's mantissa multiplier matches int8's array; the FP overhead
    // is the exponent/rounding adder.
    EXPECT_GT(multiplierBlock(DataType::BF16).gates,
              multiplierBlock(DataType::Int8).gates);
}

TEST(Adder, LinearInWidthForInts)
{
    const double g8 = adderBlock(DataType::Int8).gates;
    const double g32 = adderBlock(DataType::Int32).gates;
    EXPECT_NEAR(g32 / g8, 4.0, 1e-9);
}

TEST(Adder, FpAdderMuchBiggerThanIntAdder)
{
    EXPECT_GT(adderBlock(DataType::FP32).gates,
              3.0 * adderBlock(DataType::Int32).gates);
}

TEST(MacTest, MacIsMultPlusAdd)
{
    const LogicBlock mac = macBlock(DataType::Int8, DataType::Int32);
    const double expect = multiplierBlock(DataType::Int8).gates +
                          adderBlock(DataType::Int32).gates;
    EXPECT_NEAR(mac.gates, expect, 1e-9);
    EXPECT_NEAR(mac.depthFo4,
                multiplierBlock(DataType::Int8).depthFo4 +
                    adderBlock(DataType::Int32).depthFo4,
                1e-9);
}

TEST(MacTest, Int8MacAreaAnchorAt28nm)
{
    // Calibration anchor: an int8 MAC datapath at 28 nm lands in the
    // several-hundred-um^2 range consistent with the TPU-v1 MXU
    // floorplan share (DESIGN.md Sec. 5).
    const TechNode tech = TechNode::make(28.0);
    const PAT p =
        logicPAT(tech, macBlock(DataType::Int8, DataType::Int32), 700e6);
    EXPECT_GT(p.areaUm2, 500.0);
    EXPECT_LT(p.areaUm2, 1500.0);
}

TEST(MacTest, Int8MacEnergyAnchorAt28nm)
{
    // ~0.5-1.5 pJ per MAC at 28 nm/0.86 V (datapath only).
    const TechNode tech = TechNode::make(28.0);
    const LogicBlock mac = macBlock(DataType::Int8, DataType::Int32);
    const double e_pj =
        mac.gates * mac.activity * tech.nand2EnergyJ() * 1e12;
    EXPECT_GT(e_pj, 0.4);
    EXPECT_LT(e_pj, 1.6);
}

TEST(MacTest, MacMeets700MhzAt28nm)
{
    const TechNode tech = TechNode::make(28.0);
    const PAT p =
        logicPAT(tech, macBlock(DataType::Int8, DataType::Int32), 700e6);
    EXPECT_LT(p.timing.cycleS, 1.0 / 700e6);
}

TEST(AluTest, GatesGrowSuperlinearlyFromShifter)
{
    const double g16 = aluBlock(16).gates;
    const double g32 = aluBlock(32).gates;
    EXPECT_GT(g32, 2.0 * g16);
    EXPECT_THROW(aluBlock(0), ConfigError);
}

TEST(VectorLane, IncludesCompareAndLut)
{
    const double lane = vectorLaneBlock(DataType::Int32).gates;
    const double mac = macBlock(DataType::Int32, DataType::Int32).gates;
    EXPECT_GT(lane, mac);
}

/** Datatype sweep: every type yields a positive, well-formed block. */
class ArithSweep : public ::testing::TestWithParam<DataType>
{};

TEST_P(ArithSweep, BlocksAreWellFormed)
{
    const DataType t = GetParam();
    for (const LogicBlock &blk :
         {multiplierBlock(t), adderBlock(t),
          macBlock(t, defaultAccumType(t)), vectorLaneBlock(t)}) {
        EXPECT_GT(blk.gates, 0.0);
        EXPECT_GT(blk.depthFo4, 0.0);
        EXPECT_GT(blk.activity, 0.0);
        EXPECT_LE(blk.activity, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ArithSweep,
    ::testing::Values(DataType::Int8, DataType::Int16, DataType::Int32,
                      DataType::BF16, DataType::FP16, DataType::FP32));

} // namespace
} // namespace neurometer
