/**
 * @file
 * Reduction-tree model tests.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "components/reduction_tree.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class RtFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);

    ReductionTreeConfig
    cfg(int n) const
    {
        ReductionTreeConfig c;
        c.inputs = n;
        c.freqHz = 700e6;
        return c;
    }
};

TEST_F(RtFixture, BreakdownHasAllParts)
{
    ReductionTreeModel rt(tech, cfg(64));
    EXPECT_NE(rt.breakdown().find("mac_array"), nullptr);
    EXPECT_NE(rt.breakdown().find("adder_tree"), nullptr);
    EXPECT_NE(rt.breakdown().find("pipeline"), nullptr);
}

TEST_F(RtFixture, RequiresPowerOfTwoInputs)
{
    EXPECT_THROW(ReductionTreeModel(tech, cfg(48)), ConfigError);
    EXPECT_NO_THROW(ReductionTreeModel(tech, cfg(64)));
}

TEST_F(RtFixture, PeakOpsCountsMulAndAdd)
{
    ReductionTreeModel rt(tech, cfg(64));
    EXPECT_DOUBLE_EQ(rt.peakOpsPerCycle(), 128.0);
}

TEST_F(RtFixture, AreaScalesLinearlyInInputs)
{
    ReductionTreeModel a(tech, cfg(64)), b(tech, cfg(128));
    const double ratio =
        b.breakdown().total().areaUm2 / a.breakdown().total().areaUm2;
    EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST_F(RtFixture, PipeliningShortensTheCycle)
{
    ReductionTreeConfig pipelined = cfg(256);
    pipelined.pipelineEveryLayers = 1;
    ReductionTreeConfig combinational = cfg(256);
    combinational.pipelineEveryLayers = 0;
    ReductionTreeModel p(tech, pipelined), c(tech, combinational);
    EXPECT_LT(p.minCycleS(), c.minCycleS());
    EXPECT_GT(p.latencyCycles(), c.latencyCycles());
}

TEST_F(RtFixture, SparserPipelineUsesFewerFlops)
{
    ReductionTreeConfig dense = cfg(256);
    dense.pipelineEveryLayers = 1;
    ReductionTreeConfig sparse = cfg(256);
    sparse.pipelineEveryLayers = 2;
    ReductionTreeModel d(tech, dense), s(tech, sparse);
    EXPECT_GT(d.breakdown().areaOfUm2("pipeline"),
              s.breakdown().areaOfUm2("pipeline"));
}

TEST_F(RtFixture, LatencyGrowsWithDepth)
{
    ReductionTreeModel small(tech, cfg(16)), big(tech, cfg(1024));
    EXPECT_GT(big.latencyCycles(), small.latencyCycles());
}

TEST_F(RtFixture, SameOpsRtVsTuComparableOrder)
{
    // RT1024 has the same OPS as a 32x32 TU (Sec. IV pairing); its
    // area should be the same order of magnitude.
    ReductionTreeModel rt(tech, cfg(1024));
    EXPECT_GT(rt.breakdown().total().areaUm2, 1e5);
    EXPECT_LT(rt.breakdown().total().areaUm2, 4e6);
}

/** Sweep the Sec. IV configurations. */
class RtSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RtSweep, WellFormed)
{
    const TechNode tech = TechNode::make(28.0);
    ReductionTreeConfig c;
    c.inputs = GetParam();
    c.freqHz = 700e6;
    ReductionTreeModel rt(tech, c);
    EXPECT_GT(rt.breakdown().total().areaUm2, 0.0);
    EXPECT_LE(rt.minCycleS(), 1.0 / 700e6 * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RtSweep,
                         ::testing::Values(16, 64, 256, 1024));

} // namespace
} // namespace neurometer
