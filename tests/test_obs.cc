/**
 * @file
 * The observability subsystem: metrics-registry correctness under
 * concurrent increments (this binary also runs in the TSan CI job),
 * Chrome-trace JSON validity (parsed back through common/json — the
 * shared parser this suite's private reader was promoted into),
 * manifest round-trips, sweep progress observation, and the guarantee
 * that a TRACE=OFF build compiles TraceScope to an empty struct.
 */

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

using JsonValue = json::Value;

JsonValue
parseJson(const std::string &s)
{
    return json::parse(s);
}

std::uint64_t
snapshotCounter(const char *name)
{
    return obs::snapshot().counter(name);
}

// ---------------------------------------------------------------------
// Compile-time guarantees: the compiled-out TraceScope must cost
// nothing — an empty struct the optimizer erases entirely.

static_assert(std::is_empty_v<obs::NullTraceScope>,
              "NullTraceScope must be an empty type");
#if !NEUROMETER_TRACE_ENABLED
static_assert(std::is_same_v<obs::TraceScope, obs::NullTraceScope>,
              "TRACE=OFF must alias TraceScope to the null scope");
static_assert(!obs::traceCompiledIn);
#else
static_assert(obs::traceCompiledIn);
#endif

// ---------------------------------------------------------------------

TEST(Metrics, CounterSumsAcrossThreads)
{
    static const obs::Counter c = obs::counter("test.mt_counter");
    const std::uint64_t before = snapshotCounter("test.mt_counter");

    constexpr int kThreads = 8;
    constexpr int kIncrements = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([] {
            for (int i = 0; i < kIncrements; ++i)
                c.inc();
        });
    }
    for (std::thread &t : ts)
        t.join();

    EXPECT_EQ(snapshotCounter("test.mt_counter") - before,
              std::uint64_t(kThreads) * kIncrements);
}

TEST(Metrics, SameNameSameMetric)
{
    const obs::Counter a = obs::counter("test.same_name");
    const obs::Counter b = obs::counter("test.same_name");
    const std::uint64_t before = snapshotCounter("test.same_name");
    a.inc(3);
    b.inc(4);
    EXPECT_EQ(snapshotCounter("test.same_name") - before, 7u);
}

TEST(Metrics, CounterBulkIncrement)
{
    const obs::Counter c = obs::counter("test.bulk");
    const std::uint64_t before = snapshotCounter("test.bulk");
    c.inc(1000);
    EXPECT_EQ(snapshotCounter("test.bulk") - before, 1000u);
}

TEST(Metrics, GaugeSetAndAdd)
{
    const obs::Gauge g = obs::gauge("test.gauge");
    g.set(2.5);
    g.add(1.25);
    const obs::Snapshot snap = obs::snapshot();
    double v = -1.0;
    for (const auto &[name, value] : snap.gauges)
        if (name == "test.gauge")
            v = value;
    EXPECT_DOUBLE_EQ(v, 3.75);
}

TEST(Metrics, HistogramConcurrentStats)
{
    static const obs::Histogram h = obs::histogram("test.mt_hist");

    // Record from several threads, exact values: 1us..8us. Count and
    // sum must be exact; min/max exact; quantiles are bucket upper
    // bounds, so only monotonicity and bounds are asserted.
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(double(1 + (t + i) % 8) * 1e-6);
        });
    }
    for (std::thread &t : ts)
        t.join();

    const obs::Snapshot snap = obs::snapshot();
    const obs::HistogramSnapshot *hs = nullptr;
    for (const auto &[name, s] : snap.histograms)
        if (name == "test.mt_hist")
            hs = &s;
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, std::uint64_t(kThreads) * kPerThread);
    // Sum in integral nanoseconds -> exact: each thread cycles 250
    // full passes over {1..8}us, so 250 * 36us per thread.
    EXPECT_NEAR(hs->sumS, double(kThreads) * 250.0 * 36.0e-6, 1e-9);
    EXPECT_DOUBLE_EQ(hs->minS, 1e-6);
    EXPECT_DOUBLE_EQ(hs->maxS, 8e-6);
    EXPECT_LE(hs->p50S, hs->p90S);
    EXPECT_LE(hs->p90S, hs->p99S);
    EXPECT_GE(hs->p50S, hs->minS);
    // Upper-bound quantile: at most 2x the true value.
    EXPECT_LE(hs->p99S, 2.0 * hs->maxS);
    EXPECT_GT(hs->meanS(), 0.0);
}

TEST(Metrics, DerivedHitRates)
{
    obs::counter("test_cache.hits").inc(3);
    obs::counter("test_cache.misses").inc(1);
    const obs::Snapshot snap = obs::snapshot();
    double rate = -1.0;
    for (const auto &[name, v] : snap.hitRates())
        if (name == "test_cache.hit_rate")
            rate = v;
    EXPECT_DOUBLE_EQ(rate, 0.75);
}

TEST(Metrics, SnapshotJsonParses)
{
    obs::counter("test.json_counter").inc(42);
    obs::gauge("test.json_gauge").set(1.5);
    obs::histogram("test.json_hist").record(1e-3);

    const JsonValue root = parseJson(obs::snapshot().toJson());
    ASSERT_EQ(root.kind, JsonValue::Kind::Object);

    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *c = counters->find("test.json_counter");
    ASSERT_NE(c, nullptr);
    EXPECT_GE(c->number, 42.0);

    const JsonValue *gauges = root.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_NE(gauges->find("test.json_gauge"), nullptr);

    const JsonValue *hists = root.find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *h = hists->find("test.json_hist");
    ASSERT_NE(h, nullptr);
    EXPECT_NE(h->find("count"), nullptr);
    EXPECT_NE(h->find("p99_s"), nullptr);
}

TEST(Metrics, FormatMentionsEveryMetric)
{
    obs::counter("test.fmt_counter").inc();
    obs::gauge("test.fmt_gauge").set(7.0);
    obs::histogram("test.fmt_hist").record(2e-6);
    const std::string text = obs::snapshot().format();
    EXPECT_NE(text.find("test.fmt_counter"), std::string::npos);
    EXPECT_NE(text.find("test.fmt_gauge"), std::string::npos);
    EXPECT_NE(text.find("test.fmt_hist"), std::string::npos);
}

TEST(Metrics, ResetZeroesButKeepsHandles)
{
    const obs::Counter c = obs::counter("test.reset_me");
    c.inc(5);
    EXPECT_GE(snapshotCounter("test.reset_me"), 5u);
    obs::registry().reset();
    EXPECT_EQ(snapshotCounter("test.reset_me"), 0u);
    c.inc(); // handle still valid after reset
    EXPECT_EQ(snapshotCounter("test.reset_me"), 1u);
}

// ---------------------------------------------------------------------

TEST(Manifest, JsonQuoteEscapes)
{
    const std::string quoted =
        obs::jsonQuote("a\"b\\c\nd\te\x01f");
    const JsonValue v = parseJson(quoted);
    ASSERT_EQ(v.kind, JsonValue::Kind::String);
    EXPECT_EQ(v.text, "a\"b\\c\nd\te\x01f");
}

TEST(Manifest, JsonNumNonFiniteIsNull)
{
    EXPECT_EQ(obs::jsonNum(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(obs::jsonNum(std::nan("")), "null");
    const JsonValue v = parseJson(obs::jsonNum(0.1));
    EXPECT_DOUBLE_EQ(v.number, 0.1);
}

TEST(Manifest, BuilderRendersTypedValues)
{
    obs::ManifestBuilder m;
    m.set("s", "hello \"world\"\n")
        .set("d", 2.5)
        .set("i", std::int64_t(-7))
        .set("b", true)
        .raw("arr", "[1, 2, 3]");
    const JsonValue root = parseJson(m.str());
    ASSERT_EQ(root.kind, JsonValue::Kind::Object);
    EXPECT_EQ(root.find("s")->text, "hello \"world\"\n");
    EXPECT_DOUBLE_EQ(root.find("d")->number, 2.5);
    EXPECT_DOUBLE_EQ(root.find("i")->number, -7.0);
    EXPECT_TRUE(root.find("b")->boolean);
    ASSERT_EQ(root.find("arr")->kind, JsonValue::Kind::Array);
    EXPECT_EQ(root.find("arr")->items.size(), 3u);
}

TEST(Manifest, RunManifestHeaderAndRoundTrip)
{
    obs::ManifestBuilder m =
        obs::runManifest("test_obs", "test_obs --round-trip");
    m.set("extra", std::int64_t(1));
    const std::string path = ::testing::TempDir() + "/obs_manifest.json";
    obs::writeTextFile(path, m.str());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    const JsonValue root = parseJson(content);
    EXPECT_EQ(root.find("tool")->text, "test_obs");
    EXPECT_EQ(root.find("command")->text, "test_obs --round-trip");
    ASSERT_NE(root.find("created_at"), nullptr);
    ASSERT_NE(root.find("git_describe"), nullptr);
    ASSERT_NE(root.find("compiler"), nullptr);
    EXPECT_EQ(root.find("trace_enabled")->boolean,
              obs::traceCompiledIn);
    EXPECT_DOUBLE_EQ(root.find("extra")->number, 1.0);
    std::remove(path.c_str());
}

TEST(Manifest, WriteMetricsManifestEmbedsSnapshot)
{
    obs::counter("test.manifest_counter").inc(9);
    const std::string path = ::testing::TempDir() + "/obs_metrics.json";
    obs::writeMetricsManifest("test_obs", path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    const JsonValue root = parseJson(content);
    const JsonValue *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->kind, JsonValue::Kind::Object);
    const JsonValue *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("test.manifest_counter"), nullptr);
    std::remove(path.c_str());
}

TEST(Manifest, WriteTextFileFailureThrows)
{
    // Writes are atomic (common/io.hh) and fail with IoError.
    EXPECT_THROW(
        obs::writeTextFile("/nonexistent-dir/x/y/manifest.json", "{}"),
        IoError);
}

// ---------------------------------------------------------------------

#if NEUROMETER_TRACE_ENABLED
TEST(Trace, RoundTripThroughChromeJson)
{
    obs::clearTrace();
    obs::setTraceEnabled(true);

    {
        obs::TraceScope outer("test.outer", 7);
        obs::TraceScope inner("test.inner");
    }
    std::thread([] {
        obs::TraceScope span("test.worker", 3);
    }).join();

    EXPECT_GE(obs::traceEventCount(), 3u);
    const JsonValue root = parseJson(obs::traceToJson());
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    std::set<std::string> names;
    std::set<double> tids;
    bool saw_thread_name = false;
    for (const JsonValue &e : events->items) {
        const std::string ph = e.find("ph")->text;
        if (ph == "M") {
            saw_thread_name = true;
            continue;
        }
        ASSERT_EQ(ph, "X");
        names.insert(e.find("name")->text);
        tids.insert(e.find("tid")->number);
        EXPECT_GE(e.find("dur")->number, 0.0);
        EXPECT_GE(e.find("ts")->number, 0.0);
    }
    EXPECT_TRUE(saw_thread_name);
    EXPECT_TRUE(names.count("test.outer"));
    EXPECT_TRUE(names.count("test.inner"));
    EXPECT_TRUE(names.count("test.worker"));
    EXPECT_GE(tids.size(), 2u) << "worker thread must get its own tid";

    // The span arg must survive: find test.outer and check args.arg.
    for (const JsonValue &e : events->items) {
        if (e.find("ph")->text == "X" &&
            e.find("name")->text == "test.outer") {
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_DOUBLE_EQ(args->find("arg")->number, 7.0);
        }
    }
    obs::clearTrace();
}

TEST(Trace, RuntimeDisableDropsSpans)
{
    obs::clearTrace();
    obs::setTraceEnabled(false);
    {
        obs::TraceScope span("test.dropped");
    }
    EXPECT_EQ(obs::traceEventCount(), 0u);
    obs::setTraceEnabled(true);
}
#else
TEST(Trace, CompiledOutStubIsValidEmptyJson)
{
    const JsonValue root = parseJson(obs::traceToJson());
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->items.size(), 0u);
    EXPECT_EQ(obs::traceEventCount(), 0u);
}
#endif

// ---------------------------------------------------------------------
// Flight recorder (obs/events.hh)

TEST(Events, RingKeepsOrderAndSequence)
{
    obs::clearEvents();
    obs::recordEvent(obs::EventSeverity::Info, "test.first", "r1", "a");
    obs::recordEvent(obs::EventSeverity::Warn, "test.second", "", "b");
    obs::recordEvent(obs::EventSeverity::Error, "test.third", "r2", "c");

    const std::vector<obs::Event> events = obs::recentEvents();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].type, "test.first");
    EXPECT_EQ(events[1].type, "test.second");
    EXPECT_EQ(events[2].type, "test.third");
    EXPECT_EQ(events[0].seq, 1u);
    EXPECT_EQ(events[2].seq, 3u);
    EXPECT_EQ(events[0].requestId, "r1");
    EXPECT_TRUE(events[1].requestId.empty());
    EXPECT_GT(events[0].wallMs, 0);
    EXPECT_EQ(obs::eventsRecorded(), 3u);

    // The tail helper really returns the newest entries.
    const std::vector<obs::Event> tail = obs::recentEvents(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].type, "test.second");
    EXPECT_EQ(tail[1].type, "test.third");

    EXPECT_STREQ(obs::eventSeverityStr(obs::EventSeverity::Info),
                 "info");
    EXPECT_STREQ(obs::eventSeverityStr(obs::EventSeverity::Warn),
                 "warn");
    EXPECT_STREQ(obs::eventSeverityStr(obs::EventSeverity::Error),
                 "error");
}

TEST(Events, OverflowKeepsTheMostRecentCapacityEvents)
{
    obs::clearEvents();
    const std::size_t total = obs::kEventCapacity + 25;
    for (std::size_t i = 0; i < total; ++i) {
        obs::recordEvent(obs::EventSeverity::Info, "test.flood", "",
                         std::to_string(i));
    }
    EXPECT_EQ(obs::eventsRecorded(), total);

    const std::vector<obs::Event> events = obs::recentEvents();
    ASSERT_EQ(events.size(), obs::kEventCapacity);
    // Oldest surviving event is number total - capacity; sequence
    // numbers are still strictly increasing across the whole ring.
    EXPECT_EQ(events.front().detail,
              std::to_string(total - obs::kEventCapacity));
    EXPECT_EQ(events.back().detail, std::to_string(total - 1));
    for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
    obs::clearEvents();
}

TEST(Events, JsonlRoundTripsThroughTheParser)
{
    obs::clearEvents();
    obs::recordEvent(obs::EventSeverity::Warn, "test.json",
                     "r7", "detail with \"quotes\"\nand newline");
    obs::recordEvent(obs::EventSeverity::Info, "test.json2", "", "");

    const std::string jsonl = obs::eventsToJsonl();
    std::istringstream in(jsonl);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
        const JsonValue e = parseJson(line);
        ASSERT_EQ(e.kind, JsonValue::Kind::Object) << line;
        ASSERT_NE(e.find("seq"), nullptr);
        ASSERT_NE(e.find("wall_ms"), nullptr);
        ASSERT_NE(e.find("severity"), nullptr);
        ASSERT_NE(e.find("type"), nullptr);
        ASSERT_NE(e.find("request_id"), nullptr);
        ASSERT_NE(e.find("detail"), nullptr);
        ++n;
    }
    EXPECT_EQ(n, 2u);

    const JsonValue arr = parseJson(obs::eventsJson());
    ASSERT_EQ(arr.kind, JsonValue::Kind::Array);
    ASSERT_EQ(arr.items.size(), 2u);
    EXPECT_EQ(arr.items[0].find("request_id")->text, "r7");
    EXPECT_EQ(arr.items[0].find("detail")->text,
              "detail with \"quotes\"\nand newline");

    // The dump file is the same JSONL, written atomically.
    const std::string path = ::testing::TempDir() + "/obs_flight.jsonl";
    obs::dumpFlightRecorder(path);
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string content((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, jsonl);
    std::remove(path.c_str());
    obs::clearEvents();
}

TEST(Events, SlowOpTrackerRanksAndBounds)
{
    obs::clearSlowOps();
    // First op is by definition the new slowest.
    EXPECT_EQ(obs::recordSlowOp("test.site", "p1", 1.0, "r1"), 0);
    // Slower -> rank 0; faster -> inserted below the top.
    EXPECT_EQ(obs::recordSlowOp("test.site", "p2", 2.0, "r2"), 0);
    EXPECT_EQ(obs::recordSlowOp("test.site", "p3", 1.5, ""), 1);

    std::vector<obs::SlowOp> ops = obs::slowOps();
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].label, "p2");
    EXPECT_EQ(ops[1].label, "p3");
    EXPECT_EQ(ops[2].label, "p1");
    EXPECT_EQ(ops[0].requestId, "r2");

    // Fill to capacity; then too-fast ops are rejected with -1 and the
    // list never exceeds kSlowOpCapacity.
    for (std::size_t i = ops.size(); i < obs::kSlowOpCapacity; ++i)
        obs::recordSlowOp("test.site", "fill", 0.5, "");
    EXPECT_EQ(obs::slowOps().size(), obs::kSlowOpCapacity);
    EXPECT_EQ(obs::recordSlowOp("test.site", "too_fast", 0.1, ""), -1);
    EXPECT_EQ(obs::slowOps().size(), obs::kSlowOpCapacity);
    // A new slowest still enters at rank 0 and evicts the fastest.
    EXPECT_EQ(obs::recordSlowOp("test.site", "p4", 3.0, "r9"), 0);
    ops = obs::slowOps();
    ASSERT_EQ(ops.size(), obs::kSlowOpCapacity);
    EXPECT_EQ(ops[0].label, "p4");
    for (std::size_t i = 1; i < ops.size(); ++i)
        EXPECT_LE(ops[i].seconds, ops[i - 1].seconds);

    const JsonValue arr = parseJson(obs::slowOpsJson());
    ASSERT_EQ(arr.kind, JsonValue::Kind::Array);
    ASSERT_EQ(arr.items.size(), obs::kSlowOpCapacity);
    EXPECT_EQ(arr.items[0].find("label")->text, "p4");
    EXPECT_DOUBLE_EQ(arr.items[0].find("seconds")->number, 3.0);
    EXPECT_EQ(arr.items[0].find("request_id")->text, "r9");
    obs::clearSlowOps();
}

TEST(Events, SweepRecordsSlowPointsAndCancellationEvents)
{
    obs::clearEvents();
    obs::clearSlowOps();

    ChipConfig base;
    SweepGrid grid;
    grid.tuLengths = {8, 16};
    SweepOptions opts;
    opts.threads = 1;
    opts.requestId = "r42";
    SweepEngine engine(base, opts);
    engine.run(grid);

    // Every evaluated point was offered to the tracker; the slowest
    // carries the request id the engine was attributed to.
    const std::vector<obs::SlowOp> ops = obs::slowOps();
    ASSERT_FALSE(ops.empty());
    EXPECT_EQ(ops[0].site, "sweep.point");
    EXPECT_EQ(ops[0].requestId, "r42");
    EXPECT_GT(ops[0].seconds, 0.0);
    // pointLabel: "(X,N,Tx,Ty)" plus any named-axis assignments.
    EXPECT_EQ(ops[0].label.rfind('(', 0), 0u) << ops[0].label;

    // The first point is a "new slowest" event.
    bool saw_slow_event = false;
    for (const obs::Event &e : obs::recentEvents()) {
        if (e.type == "sweep.slow_point") {
            saw_slow_event = true;
            EXPECT_EQ(e.requestId, "r42");
        }
    }
    EXPECT_TRUE(saw_slow_event);

    // A pre-cancelled sweep leaves a cancellation event behind.
    CancelToken cancel;
    cancel.requestCancel();
    SweepOptions copts;
    copts.threads = 1;
    copts.cancel = cancel;
    SweepEngine cancelled(base, copts);
    cancelled.run(grid);
    bool saw_cancel = false;
    for (const obs::Event &e : obs::recentEvents())
        if (e.type == "sweep.cancelled")
            saw_cancel = true;
    EXPECT_TRUE(saw_cancel);
    obs::clearEvents();
    obs::clearSlowOps();
}

#if NEUROMETER_TRACE_ENABLED
TEST(Events, TraceRingOverflowCountsDroppedSpans)
{
    obs::setTraceEnabled(true);
    const std::uint64_t before =
        snapshotCounter("obs.trace.dropped_spans");
    // A fresh thread gets a fresh per-thread ring; overflow it by a
    // known margin and the overwrites must be counted.
    constexpr std::uint64_t kOverflow = 100;
    std::thread([] {
        const std::uint64_t cap = 1u << 16; // per-thread ring capacity
        for (std::uint64_t i = 0; i < cap + kOverflow; ++i)
            obs::TraceScope span("test.flood");
    }).join();
    EXPECT_EQ(snapshotCounter("obs.trace.dropped_spans") - before,
              kOverflow);
    obs::clearTrace();
}
#endif

// ---------------------------------------------------------------------

TEST(SweepProgress, ObserverSeesMonotoneDoneAndFinalTotal)
{
    ChipConfig base;
    SweepGrid grid;
    grid.tuLengths = {8, 16};
    grid.tuPerCore = {1, 2};

    SweepOptions opts;
    opts.threads = 2;
    opts.progressIntervalS = 0.0; // report every point
    std::mutex mu;
    std::vector<SweepProgress> seen;
    opts.onProgress = [&](const SweepProgress &p) {
        std::lock_guard<std::mutex> lk(mu);
        seen.push_back(p);
    };

    SweepEngine engine(base, opts);
    const std::vector<EvalRecord> records = engine.run(grid);
    EXPECT_EQ(records.size(), 4u);

    ASSERT_FALSE(seen.empty());
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_GE(seen[i].done, seen[i - 1].done) << "reports reorder";
    const SweepProgress &last = seen.back();
    EXPECT_EQ(last.done, 4u);
    EXPECT_EQ(last.total, 4u);
    EXPECT_EQ(last.etaS, 0.0);
    EXPECT_GT(last.pointsPerS, 0.0);
    EXPECT_GE(last.evalCache.misses, 1u);
}

TEST(SweepProgress, NoObserverStillCounts)
{
    const std::uint64_t before = snapshotCounter("sweep.points");
    ChipConfig base;
    SweepGrid grid;
    grid.tuLengths = {8};
    SweepEngine engine(base, {});
    engine.run(grid);
    EXPECT_GE(snapshotCounter("sweep.points") - before, 1u);
}

TEST(Instrumentation, ChipBuildFeedsRegistry)
{
    const std::uint64_t builds = snapshotCounter("chip.builds");
    const std::uint64_t searches =
        snapshotCounter("memory_search.searches");
    ChipModel chip{ChipConfig{}};
    (void)chip;
    EXPECT_EQ(snapshotCounter("chip.builds"), builds + 1);
    EXPECT_GT(snapshotCounter("memory_search.searches"), searches);
}

} // namespace
