/**
 * @file
 * Whole-chip assembly tests: derivation rules, TDP semantics, runtime
 * power interface, and integration invariants.
 */

#include <gtest/gtest.h>

#include "chip/chip.hh"
#include "common/error.hh"

namespace neurometer {
namespace {

ChipConfig
smallChip()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.tx = 1;
    cfg.ty = 2;
    cfg.core.numTU = 2;
    cfg.core.tu.rows = 32;
    cfg.core.tu.cols = 32;
    cfg.totalMemBytes = 8.0 * 1024 * 1024;
    cfg.offchipBwBytesPerS = 200e9;
    return cfg;
}

TEST(ChipTest, AssemblesWithExpectedTree)
{
    ChipModel chip(smallChip());
    const Breakdown &bd = chip.breakdown();
    EXPECT_NE(bd.find("core0"), nullptr);
    EXPECT_NE(bd.find("core1"), nullptr);
    EXPECT_NE(bd.find("noc"), nullptr);
    EXPECT_NE(bd.find("offchip"), nullptr);
    EXPECT_NE(bd.find("white_space"), nullptr);
    EXPECT_NE(bd.find("clock_tree"), nullptr);
}

TEST(ChipTest, SingleCoreHasNoNoc)
{
    ChipConfig cfg = smallChip();
    cfg.tx = cfg.ty = 1;
    ChipModel chip(cfg);
    EXPECT_EQ(chip.breakdown().find("noc"), nullptr);
}

TEST(ChipTest, PeakTopsFormula)
{
    ChipModel chip(smallChip());
    // 2 cores * 2 TUs * 2*32*32 ops * 700 MHz.
    const double expect = 2.0 * 2.0 * 2.0 * 32 * 32 * 700e6 / 1e12;
    EXPECT_NEAR(chip.peakTops(), expect, 1e-9);
}

TEST(ChipTest, WhiteSpaceFractionHolds)
{
    ChipConfig cfg = smallChip();
    cfg.whiteSpaceFraction = 0.21;
    ChipModel chip(cfg);
    const double ws = chip.breakdown().areaOfUm2("white_space");
    const double total = chip.breakdown().total().areaUm2;
    EXPECT_NEAR(ws / total, 0.21, 1e-6);
}

TEST(ChipTest, ZeroWhiteSpaceAllowed)
{
    ChipConfig cfg = smallChip();
    cfg.whiteSpaceFraction = 0.0;
    ChipModel chip(cfg);
    EXPECT_NEAR(chip.breakdown().areaOfUm2("white_space"), 0.0, 1e-9);
}

TEST(ChipTest, TdpBelowFullActivityPower)
{
    ChipModel chip(smallChip());
    const double full = chip.breakdown().total().power.total();
    EXPECT_LT(chip.tdpW(), full);
    EXPECT_GT(chip.tdpW(), 0.3 * full);
}

TEST(ChipTest, TdpRespondsToActivityFactors)
{
    ChipConfig hot = smallChip();
    ChipConfig cool = smallChip();
    cool.tdpActivity.tensorUnit = 0.2;
    cool.tdpActivity.mem = 0.2;
    EXPECT_LT(ChipModel(cool).tdpW(), ChipModel(hot).tdpW());
}

TEST(ChipTest, RuntimePowerScalesWithActivity)
{
    ChipModel chip(smallChip());
    RuntimeStats idle;
    RuntimeStats busy;
    busy.tuOpsPerS = chip.peakTops() * 1e12 * 0.5;
    busy.memReadBytesPerS = 100e9;
    busy.offchipBytesPerS = 50e9;
    const Power pi = chip.runtimePower(idle);
    const Power pb = chip.runtimePower(busy);
    EXPECT_GT(pb.dynamicW, pi.dynamicW);
    EXPECT_DOUBLE_EQ(pi.leakageW, pb.leakageW);
    // Idle still burns the clock floor.
    EXPECT_GT(pi.dynamicW, 0.0);
}

TEST(ChipTest, RuntimePowerAtFullUtilizationNearFullDynamic)
{
    ChipModel chip(smallChip());
    RuntimeStats full;
    full.tuOpsPerS = chip.peakTops() * 1e12;
    const Power p = chip.runtimePower(full);
    EXPECT_LT(p.total(), 1.3 * chip.breakdown().total().power.total());
}

TEST(ChipTest, AutoNocTopologySelection)
{
    ChipConfig small = smallChip(); // 2 cores -> ring
    ChipModel c2(small);
    // 8 cores -> mesh. Verified indirectly: both must assemble.
    ChipConfig big = smallChip();
    big.tx = 2;
    big.ty = 4;
    big.core.tu.rows = big.core.tu.cols = 16;
    ChipModel c8(big);
    EXPECT_GT(c8.breakdown().areaOfUm2("noc"), 0.0);
    EXPECT_GT(c2.breakdown().areaOfUm2("noc"), 0.0);
}

TEST(ChipTest, ThrowsWhenClockUnreachable)
{
    ChipConfig cfg = smallChip();
    cfg.freqHz = 50e9;
    EXPECT_THROW({ ChipModel chip(cfg); }, ConfigError);
}

TEST(ChipTest, ValidateRejectsBadConfigs)
{
    ChipConfig cfg = smallChip();
    cfg.tx = 0;
    EXPECT_THROW({ ChipModel chip(cfg); }, ConfigError);
    cfg = smallChip();
    cfg.core.numTU = 0;
    cfg.core.numRT = 0;
    EXPECT_THROW({ ChipModel chip(cfg); }, ConfigError);
    cfg = smallChip();
    cfg.whiteSpaceFraction = 0.95;
    EXPECT_THROW({ ChipModel chip(cfg); }, ConfigError);
}

TEST(ChipTest, VregPortsFollowFunctionalUnits)
{
    ChipConfig cfg = smallChip(); // 2 TUs + VU
    ChipModel chip(cfg);
    EXPECT_EQ(chip.core().vregReadPorts(), 6);
    EXPECT_EQ(chip.core().vregWritePorts(), 3);

    ChipConfig shared = cfg;
    shared.core.shareVregPorts = true; // one group for TUs + one for VU
    ChipModel chip2(shared);
    EXPECT_EQ(chip2.core().vregReadPorts(), 4);
    EXPECT_EQ(chip2.core().vregWritePorts(), 2);
}

TEST(ChipTest, VuLanesFollowTuLength)
{
    ChipModel chip(smallChip());
    EXPECT_EQ(chip.core().vuLanes(), 32);
}

TEST(ChipTest, RtOnlyCoreSupported)
{
    // EIE-style accelerator without 2D TUs (paper Sec. II-A note).
    ChipConfig cfg = smallChip();
    cfg.core.numTU = 0;
    cfg.core.numRT = 4;
    cfg.core.rt.inputs = 64;
    ChipModel chip(cfg);
    EXPECT_GT(chip.peakTops(), 0.0);
    EXPECT_NE(chip.breakdown().find("reduction_trees"), nullptr);
}

TEST(ChipTest, CoreEnergiesExposed)
{
    ChipModel chip(smallChip());
    const CoreEnergies &e = chip.coreEnergies();
    EXPECT_GT(e.tuPerOpJ, 0.0);
    EXPECT_GT(e.memReadPerByteJ, 0.0);
    EXPECT_GT(e.vregPerByteJ, 0.0);
    EXPECT_GT(chip.nocEnergyPerByteHopJ(), 0.0);
    EXPECT_GT(chip.offchipEnergyPerByteJ(), 0.0);
}

TEST(ChipTest, MemDesignMeetsCoreClock)
{
    ChipModel chip(smallChip());
    const MemoryDesign &d = chip.core().memDesign();
    EXPECT_TRUE(d.feasible);
    EXPECT_GE(d.readBwBytesPerS,
              2.0 * 32.0 * 700e6); // 2 TUs * 32 B/cycle
}

/** Design-point sweep: chips across the Table I space all assemble. */
class ChipSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{};

TEST_P(ChipSweep, AssemblesAndIsConsistent)
{
    const auto [x, n, tx, ty] = GetParam();
    ChipConfig cfg = smallChip();
    cfg.core.numTU = n;
    cfg.core.tu.rows = cfg.core.tu.cols = x;
    cfg.tx = tx;
    cfg.ty = ty;
    cfg.totalMemBytes = 32.0 * 1024 * 1024;
    ChipModel chip(cfg);
    EXPECT_GT(chip.areaMm2(), 0.0);
    EXPECT_GT(chip.tdpW(), 0.0);
    EXPECT_GT(chip.peakTops(), 0.0);
    EXPECT_LE(chip.minCycleS(), 1.0 / cfg.freqHz * 1.0001);
    // TOPS/TCO and TOPS/W well defined.
    EXPECT_GT(chip.peakTopsPerWatt(), 0.0);
    EXPECT_GT(chip.peakTopsPerTco(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DesignPoints, ChipSweep,
    ::testing::Values(std::make_tuple(8, 4, 4, 8),
                      std::make_tuple(16, 2, 4, 4),
                      std::make_tuple(32, 4, 2, 2),
                      std::make_tuple(64, 2, 2, 4),
                      std::make_tuple(64, 4, 1, 2),
                      std::make_tuple(128, 4, 1, 1),
                      std::make_tuple(256, 1, 1, 1)));

} // namespace
} // namespace neurometer
