/**
 * @file
 * FIFO / scratchpad model tests.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "memory/fifo.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class FifoFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);
};

TEST_F(FifoFixture, BasicPositiveResults)
{
    FifoConfig cfg;
    cfg.entries = 8;
    cfg.widthBits = 32;
    cfg.freqHz = 700e6;
    const PAT p = fifoPAT(tech, cfg);
    EXPECT_GT(p.areaUm2, 0.0);
    EXPECT_GT(p.power.dynamicW, 0.0);
    EXPECT_GT(p.power.leakageW, 0.0);
}

TEST_F(FifoFixture, AreaGrowsWithDepthAndWidth)
{
    FifoConfig a;
    a.entries = 4;
    a.widthBits = 32;
    FifoConfig b = a;
    b.entries = 16;
    FifoConfig c = a;
    c.widthBits = 128;
    EXPECT_GT(fifoPAT(tech, b).areaUm2, fifoPAT(tech, a).areaUm2);
    EXPECT_GT(fifoPAT(tech, c).areaUm2, fifoPAT(tech, a).areaUm2);
}

TEST_F(FifoFixture, LargeFifoUsesSramAndIsDenser)
{
    // Storage above the 16 Kbit threshold switches to SRAM: per-bit
    // area must drop well below the flop-based small FIFO's.
    FifoConfig small;
    small.entries = 32;
    small.widthBits = 64; // 2 Kbit -> flops
    FifoConfig large;
    large.entries = 2048;
    large.widthBits = 64; // 128 Kbit -> SRAM
    const double small_per_bit =
        fifoPAT(tech, small).areaUm2 / (32.0 * 64.0);
    const double large_per_bit =
        fifoPAT(tech, large).areaUm2 / (2048.0 * 64.0);
    EXPECT_LT(large_per_bit, 0.5 * small_per_bit);
}

TEST_F(FifoFixture, ActivityScalesDynamicPower)
{
    FifoConfig busy;
    busy.entries = 8;
    busy.widthBits = 64;
    busy.activity = 1.0;
    FifoConfig quiet = busy;
    quiet.activity = 0.25;
    EXPECT_LT(fifoPAT(tech, quiet).power.dynamicW,
              fifoPAT(tech, busy).power.dynamicW);
}

TEST_F(FifoFixture, RejectsBadConfig)
{
    FifoConfig bad;
    bad.entries = 0;
    EXPECT_THROW(fifoPAT(tech, bad), ConfigError);
}

TEST_F(FifoFixture, ScratchpadSramBeatsFlopsAboveThreshold)
{
    const PAT regs = scratchpadPAT(tech, 64.0, 16, 700e6, 1.0, false);
    const PAT sram = scratchpadPAT(tech, 448.0, 16, 700e6, 1.0, true);
    EXPECT_GT(regs.areaUm2, 0.0);
    EXPECT_GT(sram.areaUm2, 0.0);
    // Per byte, SRAM must be denser than flops.
    EXPECT_LT(sram.areaUm2 / 448.0, regs.areaUm2 / 64.0);
}

TEST_F(FifoFixture, ScratchpadRejectsZeroSize)
{
    EXPECT_THROW(scratchpadPAT(tech, 0.0, 16, 1e9, 1.0, true),
                 ConfigError);
}

TEST_F(FifoFixture, EyerissSpadAnchor)
{
    // 448 B per-PE spad at 65 nm: a few thousand um^2 — small enough
    // that 168 PEs fit a 12.25 mm^2 die with room for the MACs.
    const TechNode t65 = TechNode::make(65.0);
    const PAT spad = scratchpadPAT(t65, 448.0, 16, 200e6, 1.5, true);
    EXPECT_LT(spad.areaUm2, 25e3);
    EXPECT_GT(spad.areaUm2, 2e3);
}

} // namespace
} // namespace neurometer
