/**
 * @file
 * Workload-module tests: operator accounting, GEMM lowering, and the
 * Table II calibration contract.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "perf/workload.hh"

namespace neurometer {
namespace {

TEST(OpTest, ConvOpsCountTwoPerMac)
{
    Op c;
    c.kind = OpKind::Conv2D;
    c.h = c.w = 8;
    c.cin = 4;
    c.kh = c.kw = 3;
    c.cout = 16;
    c.stride = 1;
    // SAME padding: out 8x8; MACs = 8*8*16*4*3*3.
    EXPECT_DOUBLE_EQ(c.opsPerSample(), 2.0 * 8 * 8 * 16 * 4 * 9);
    EXPECT_DOUBLE_EQ(c.paramBytes(), 4.0 * 9 * 16);
}

TEST(OpTest, StridedConvShrinksOutput)
{
    Op c;
    c.kind = OpKind::Conv2D;
    c.h = c.w = 224;
    c.cin = 3;
    c.kh = c.kw = 7;
    c.cout = 64;
    c.stride = 2;
    EXPECT_EQ(c.outH(), 112);
    EXPECT_EQ(c.outW(), 112);
}

TEST(OpTest, GemmLoweringConv)
{
    Op c;
    c.kind = OpKind::Conv2D;
    c.h = c.w = 56;
    c.cin = 64;
    c.kh = c.kw = 3;
    c.cout = 128;
    c.stride = 1;
    const GemmShape g = c.gemm(4);
    EXPECT_DOUBLE_EQ(g.m, 4.0 * 56 * 56);
    EXPECT_DOUBLE_EQ(g.k, 64.0 * 9);
    EXPECT_DOUBLE_EQ(g.n, 128.0);
}

TEST(OpTest, GemmLoweringMatMulAndDepthwise)
{
    Op fc;
    fc.kind = OpKind::MatMul;
    fc.mmK = 2048;
    fc.mmN = 1000;
    const GemmShape g = fc.gemm(8);
    EXPECT_DOUBLE_EQ(g.m, 8.0);
    EXPECT_DOUBLE_EQ(g.k, 2048.0);
    EXPECT_DOUBLE_EQ(g.n, 1000.0);

    Op dw;
    dw.kind = OpKind::DepthwiseConv2D;
    dw.h = dw.w = 28;
    dw.cin = 96;
    dw.kh = dw.kw = 3;
    dw.cout = 96;
    dw.stride = 1;
    const GemmShape gd = dw.gemm(1);
    EXPECT_DOUBLE_EQ(gd.k, 9.0);
    EXPECT_DOUBLE_EQ(gd.n, 1.0); // thin GEMM: poor TU fit
}

TEST(OpTest, TensorOpClassification)
{
    Op p;
    p.kind = OpKind::Pool;
    EXPECT_FALSE(p.isTensorOp());
    Op c;
    c.kind = OpKind::Conv2D;
    EXPECT_TRUE(c.isTensorOp());
    Op m;
    m.kind = OpKind::MatMul;
    EXPECT_TRUE(m.isTensorOp());
}

/** Table II contract: totals within tolerance of the paper's values. */
struct TableIIRef
{
    Workload (*make)();
    double ops_g, param_m;
};

class TableII : public ::testing::TestWithParam<TableIIRef>
{};

TEST_P(TableII, OpsAndParamsMatchPaper)
{
    const TableIIRef ref = GetParam();
    const Workload wl = ref.make();
    EXPECT_NEAR(wl.totalOps() / 1e9, ref.ops_g, 0.15 * ref.ops_g)
        << wl.name;
    EXPECT_NEAR(wl.totalParamBytes() / 1e6, ref.param_m,
                0.12 * ref.param_m)
        << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableII,
    ::testing::Values(TableIIRef{&resnet50, 7.8, 23.7},
                      TableIIRef{&inceptionV3, 5.7, 22.0},
                      TableIIRef{&nasnetALarge, 23.8, 84.9}));

TEST(Models, ResNetDataFootprintNearPaper)
{
    EXPECT_NEAR(resnet50().peakDataBytes() / 1e6, 5.72, 0.3 * 5.72);
}

TEST(Models, ResNetHasExpectedStructure)
{
    const Workload wl = resnet50();
    // 1 stem + 16 bottleneck blocks (3 convs each) + 4 projections +
    // pools/eltwise/fc.
    int convs = 0, matmuls = 0;
    for (const Op &op : wl.ops) {
        convs += op.kind == OpKind::Conv2D;
        matmuls += op.kind == OpKind::MatMul;
    }
    EXPECT_EQ(convs, 1 + 16 * 3 + 4);
    EXPECT_EQ(matmuls, 1);
}

TEST(Models, NasNetUsesDepthwiseSeparables)
{
    const Workload wl = nasnetALarge();
    int dw = 0;
    for (const Op &op : wl.ops)
        dw += op.kind == OpKind::DepthwiseConv2D;
    EXPECT_GT(dw, 50);
}

TEST(Models, AlexNetFcHeavy)
{
    const Workload wl = alexnet();
    // AlexNet's parameters are dominated by its FC layers.
    double fc_param = 0.0;
    for (const Op &op : wl.ops)
        if (op.kind == OpKind::MatMul)
            fc_param += op.paramBytes();
    EXPECT_GT(fc_param / wl.totalParamBytes(), 0.9);
    EXPECT_NEAR(wl.totalParamBytes() / 1e6, 61.0, 6.0);
}

TEST(Transformer, TableStyleAccounting)
{
    // One block at the defaults: S=512 new tokens, KV=2048 cache
    // length, d=4096, 32 heads, dFf=16384.
    const TransformerConfig tc;
    const Workload wl = transformerBlock(tc);
    const double S = tc.seqLen, KV = tc.kvLen, d = tc.dModel;
    const double ff = tc.dFf;

    // Params: QKV (d x 3d) + out (d x d) + two MLP GEMMs. The
    // attention score/context GEMMs are activation x activation —
    // zero weights.
    EXPECT_DOUBLE_EQ(wl.totalParamBytes(),
                     (4.0 * d * d + 2.0 * d * ff) * tc.operandBytes);

    // Tensor-op compute: 2*M*K*N per GEMM; the per-head logits and
    // attn*V GEMMs fold heads into M and contribute 2*S*d*KV each.
    double tensor_ops = 0.0;
    for (const Op &op : wl.ops)
        if (op.isTensorOp())
            tensor_ops += op.opsPerSample();
    EXPECT_DOUBLE_EQ(tensor_ops,
                     8.0 * S * d * d + 4.0 * S * d * KV +
                         4.0 * S * d * ff);

    // KV-cache side traffic: the new tokens' K/V rows are written
    // once (by QKV), and both cache halves are read (logits reads K,
    // attn*V reads V).
    double extra_rd = 0.0, extra_wr = 0.0;
    for (const Op &op : wl.ops) {
        extra_rd += op.extraReadBytes;
        extra_wr += op.extraWriteBytes;
    }
    EXPECT_DOUBLE_EQ(extra_wr, 2.0 * S * d * tc.operandBytes);
    EXPECT_DOUBLE_EQ(extra_rd, 2.0 * KV * d * tc.operandBytes);

    // The per-sample input is the token stream, not a CNN frame.
    EXPECT_DOUBLE_EQ(wl.inputBytesPerSample, S * d * tc.operandBytes);
}

TEST(Transformer, LayerCountScalesStructure)
{
    TransformerConfig tc;
    tc.nLayers = 4;
    const Workload wl4 = transformerBlock(tc);
    const Workload wl1 = transformer();
    EXPECT_EQ(wl4.ops.size(), 4u * wl1.ops.size());
    EXPECT_DOUBLE_EQ(wl4.totalParamBytes(),
                     4.0 * wl1.totalParamBytes());
}

TEST(Transformer, RejectsBadConfigs)
{
    TransformerConfig tc;
    tc.kvLen = tc.seqLen - 1; // cache shorter than the new tokens
    EXPECT_THROW(transformerBlock(tc), ConfigError);
    tc = {};
    tc.nHeads = 33; // does not divide dModel
    EXPECT_THROW(transformerBlock(tc), ConfigError);
    tc = {};
    tc.operandBytes = 0.0;
    EXPECT_THROW(transformerBlock(tc), ConfigError);
}

TEST(OperandBytes, DefaultIsOneByteEverywhere)
{
    for (const Workload &wl :
         {resnet50(), inceptionV3(), nasnetALarge(), alexnet()})
        for (const Op &op : wl.ops)
            EXPECT_DOUBLE_EQ(op.operandBytes, 1.0) << op.name;
}

TEST(OperandBytes, ScalesByteAccountingNotOps)
{
    Workload wl = resnet50();
    const double ops1 = wl.totalOps();
    const double params1 = wl.totalParamBytes();
    const double acts1 = wl.totalActivationBytes();
    wl.setOperandBytes(2.0); // e.g. bf16 operands
    EXPECT_DOUBLE_EQ(wl.totalOps(), ops1);
    EXPECT_DOUBLE_EQ(wl.totalParamBytes(), 2.0 * params1);
    EXPECT_DOUBLE_EQ(wl.totalActivationBytes(), 2.0 * acts1);
    EXPECT_THROW(wl.setOperandBytes(0.0), ConfigError);
}

TEST(WorkloadRegistry, ByNameRoundTripAndErrors)
{
    const std::vector<std::string> names = workloadNames();
    EXPECT_EQ(names.size(), 5u);
    for (const std::string &n : names)
        EXPECT_FALSE(workloadByName(n).ops.empty()) << n;
    EXPECT_EQ(workloadByName("resnet50").name, resnet50().name);
    EXPECT_EQ(workloadByName("transformer").name, "Transformer");
    EXPECT_THROW(workloadByName("vgg16"), ConfigError);
    EXPECT_THROW(workloadByName(""), ConfigError);
}

TEST(Models, AllModelsWellFormed)
{
    for (const Workload &wl :
         {resnet50(), inceptionV3(), nasnetALarge(), alexnet()}) {
        EXPECT_GT(wl.ops.size(), 10u) << wl.name;
        for (const Op &op : wl.ops) {
            EXPECT_GE(op.opsPerSample(), 0.0) << op.name;
            EXPECT_GE(op.paramBytes(), 0.0) << op.name;
            if (op.isTensorOp()) {
                const GemmShape g = op.gemm(1);
                EXPECT_GT(g.m * g.k * g.n, 0.0) << op.name;
            }
        }
    }
}

} // namespace
} // namespace neurometer
