/**
 * @file
 * Workload-module tests: operator accounting, GEMM lowering, and the
 * Table II calibration contract.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "perf/workload.hh"

namespace neurometer {
namespace {

TEST(OpTest, ConvOpsCountTwoPerMac)
{
    Op c;
    c.kind = OpKind::Conv2D;
    c.h = c.w = 8;
    c.cin = 4;
    c.kh = c.kw = 3;
    c.cout = 16;
    c.stride = 1;
    // SAME padding: out 8x8; MACs = 8*8*16*4*3*3.
    EXPECT_DOUBLE_EQ(c.opsPerSample(), 2.0 * 8 * 8 * 16 * 4 * 9);
    EXPECT_DOUBLE_EQ(c.paramBytes(), 4.0 * 9 * 16);
}

TEST(OpTest, StridedConvShrinksOutput)
{
    Op c;
    c.kind = OpKind::Conv2D;
    c.h = c.w = 224;
    c.cin = 3;
    c.kh = c.kw = 7;
    c.cout = 64;
    c.stride = 2;
    EXPECT_EQ(c.outH(), 112);
    EXPECT_EQ(c.outW(), 112);
}

TEST(OpTest, GemmLoweringConv)
{
    Op c;
    c.kind = OpKind::Conv2D;
    c.h = c.w = 56;
    c.cin = 64;
    c.kh = c.kw = 3;
    c.cout = 128;
    c.stride = 1;
    const GemmShape g = c.gemm(4);
    EXPECT_DOUBLE_EQ(g.m, 4.0 * 56 * 56);
    EXPECT_DOUBLE_EQ(g.k, 64.0 * 9);
    EXPECT_DOUBLE_EQ(g.n, 128.0);
}

TEST(OpTest, GemmLoweringMatMulAndDepthwise)
{
    Op fc;
    fc.kind = OpKind::MatMul;
    fc.mmK = 2048;
    fc.mmN = 1000;
    const GemmShape g = fc.gemm(8);
    EXPECT_DOUBLE_EQ(g.m, 8.0);
    EXPECT_DOUBLE_EQ(g.k, 2048.0);
    EXPECT_DOUBLE_EQ(g.n, 1000.0);

    Op dw;
    dw.kind = OpKind::DepthwiseConv2D;
    dw.h = dw.w = 28;
    dw.cin = 96;
    dw.kh = dw.kw = 3;
    dw.cout = 96;
    dw.stride = 1;
    const GemmShape gd = dw.gemm(1);
    EXPECT_DOUBLE_EQ(gd.k, 9.0);
    EXPECT_DOUBLE_EQ(gd.n, 1.0); // thin GEMM: poor TU fit
}

TEST(OpTest, TensorOpClassification)
{
    Op p;
    p.kind = OpKind::Pool;
    EXPECT_FALSE(p.isTensorOp());
    Op c;
    c.kind = OpKind::Conv2D;
    EXPECT_TRUE(c.isTensorOp());
    Op m;
    m.kind = OpKind::MatMul;
    EXPECT_TRUE(m.isTensorOp());
}

/** Table II contract: totals within tolerance of the paper's values. */
struct TableIIRef
{
    Workload (*make)();
    double ops_g, param_m;
};

class TableII : public ::testing::TestWithParam<TableIIRef>
{};

TEST_P(TableII, OpsAndParamsMatchPaper)
{
    const TableIIRef ref = GetParam();
    const Workload wl = ref.make();
    EXPECT_NEAR(wl.totalOps() / 1e9, ref.ops_g, 0.15 * ref.ops_g)
        << wl.name;
    EXPECT_NEAR(wl.totalParamBytes() / 1e6, ref.param_m,
                0.12 * ref.param_m)
        << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableII,
    ::testing::Values(TableIIRef{&resnet50, 7.8, 23.7},
                      TableIIRef{&inceptionV3, 5.7, 22.0},
                      TableIIRef{&nasnetALarge, 23.8, 84.9}));

TEST(Models, ResNetDataFootprintNearPaper)
{
    EXPECT_NEAR(resnet50().peakDataBytes() / 1e6, 5.72, 0.3 * 5.72);
}

TEST(Models, ResNetHasExpectedStructure)
{
    const Workload wl = resnet50();
    // 1 stem + 16 bottleneck blocks (3 convs each) + 4 projections +
    // pools/eltwise/fc.
    int convs = 0, matmuls = 0;
    for (const Op &op : wl.ops) {
        convs += op.kind == OpKind::Conv2D;
        matmuls += op.kind == OpKind::MatMul;
    }
    EXPECT_EQ(convs, 1 + 16 * 3 + 4);
    EXPECT_EQ(matmuls, 1);
}

TEST(Models, NasNetUsesDepthwiseSeparables)
{
    const Workload wl = nasnetALarge();
    int dw = 0;
    for (const Op &op : wl.ops)
        dw += op.kind == OpKind::DepthwiseConv2D;
    EXPECT_GT(dw, 50);
}

TEST(Models, AlexNetFcHeavy)
{
    const Workload wl = alexnet();
    // AlexNet's parameters are dominated by its FC layers.
    double fc_param = 0.0;
    for (const Op &op : wl.ops)
        if (op.kind == OpKind::MatMul)
            fc_param += op.paramBytes();
    EXPECT_GT(fc_param / wl.totalParamBytes(), 0.9);
    EXPECT_NEAR(wl.totalParamBytes() / 1e6, 61.0, 6.0);
}

TEST(Models, AllModelsWellFormed)
{
    for (const Workload &wl :
         {resnet50(), inceptionV3(), nasnetALarge(), alexnet()}) {
        EXPECT_GT(wl.ops.size(), 10u) << wl.name;
        for (const Op &op : wl.ops) {
            EXPECT_GE(op.opsPerSample(), 0.0) << op.name;
            EXPECT_GE(op.paramBytes(), 0.0) << op.name;
            if (op.isTensorOp()) {
                const GemmShape g = op.gemm(1);
                EXPECT_GT(g.m * g.k * g.n, 0.0) << op.name;
            }
        }
    }
}

} // namespace
} // namespace neurometer
