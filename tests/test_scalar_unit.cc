/**
 * @file
 * Scalar unit (stripped Cortex-A9-like control core) tests.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "components/scalar_unit.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class SuFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);
};

TEST_F(SuFixture, HasExpectedSubBlocks)
{
    ScalarUnitModel su(tech, {});
    for (const char *part :
         {"ifu", "regfile", "alu", "lsu", "imem", "dspad"}) {
        EXPECT_NE(su.breakdown().find(part), nullptr) << part;
    }
}

TEST_F(SuFixture, SizeAnchorSimplifiedA9)
{
    // A stripped A9-class control core at 28 nm: a fraction of a mm^2
    // (the full A9 is ~1 mm^2 at 28 nm with caches).
    ScalarUnitConfig cfg;
    cfg.freqHz = 700e6;
    ScalarUnitModel su(tech, cfg);
    const double mm2 = um2ToMm2(su.breakdown().total().areaUm2);
    EXPECT_GT(mm2, 0.02);
    EXPECT_LT(mm2, 0.8);
}

TEST_F(SuFixture, MeetsClock)
{
    ScalarUnitConfig cfg;
    cfg.freqHz = 700e6;
    ScalarUnitModel su(tech, cfg);
    EXPECT_LE(su.minCycleS(), 1.0 / 700e6);
}

TEST_F(SuFixture, BiggerCachesBiggerCore)
{
    ScalarUnitConfig small;
    small.icacheBytes = 4096;
    small.dspadBytes = 4096;
    ScalarUnitConfig big;
    big.icacheBytes = 32768;
    big.dspadBytes = 32768;
    ScalarUnitModel a(tech, small), b(tech, big);
    EXPECT_GT(b.breakdown().total().areaUm2,
              a.breakdown().total().areaUm2);
}

TEST_F(SuFixture, WiderDatapathCostsMore)
{
    ScalarUnitConfig w32;
    w32.dataBits = 32;
    ScalarUnitConfig w64;
    w64.dataBits = 64;
    ScalarUnitModel a(tech, w32), b(tech, w64);
    EXPECT_GT(b.breakdown().areaOfUm2("alu"),
              a.breakdown().areaOfUm2("alu"));
}

} // namespace
} // namespace neurometer
