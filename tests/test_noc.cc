/**
 * @file
 * NoC model tests across topologies.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "components/noc.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class NocFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);

    NocConfig
    cfg(int tx, int ty, NocTopology topo = NocTopology::Mesh2D) const
    {
        NocConfig c;
        c.tx = tx;
        c.ty = ty;
        c.topology = topo;
        c.freqHz = 700e6;
        c.tileAreaUm2 = 10e6; // ~3.2 mm tiles
        c.bisectionBwBytesPerS = 256e9;
        return c;
    }
};

TEST_F(NocFixture, MeshStructure)
{
    NocModel noc(tech, cfg(4, 4));
    EXPECT_EQ(noc.numRouters(), 16);
    EXPECT_EQ(noc.numLinks(), 2 * (3 * 4 + 4 * 3));
}

TEST_F(NocFixture, RingStructure)
{
    NocModel noc(tech, cfg(2, 2, NocTopology::Ring));
    EXPECT_EQ(noc.numRouters(), 4);
    EXPECT_EQ(noc.numLinks(), 8);
}

TEST_F(NocFixture, BisectionTargetIsMet)
{
    for (auto topo : {NocTopology::Mesh2D, NocTopology::Ring,
                      NocTopology::Bus, NocTopology::HTree}) {
        NocModel noc(tech, cfg(4, 4, topo));
        EXPECT_GE(noc.bisectionBwBytesPerS(), 256e9)
            << nocTopologyName(topo);
    }
}

TEST_F(NocFixture, ExplicitFlitWidthWins)
{
    NocConfig c = cfg(4, 4);
    c.flitBits = 128;
    NocModel noc(tech, c);
    EXPECT_EQ(noc.flitBits(), 128);
}

TEST_F(NocFixture, FewerBisectionChannelsNeedWiderLinks)
{
    NocModel mesh(tech, cfg(4, 4));
    NocModel ring(tech, cfg(4, 4, NocTopology::Ring));
    EXPECT_GT(ring.flitBits(), mesh.flitBits());
}

TEST_F(NocFixture, BiggerMeshCostsMore)
{
    NocModel small(tech, cfg(2, 4));
    NocModel big(tech, cfg(4, 8));
    EXPECT_GT(big.breakdown().total().areaUm2,
              small.breakdown().total().areaUm2);
    EXPECT_GT(big.breakdown().total().power.total(),
              small.breakdown().total().power.total());
}

TEST_F(NocFixture, AverageHopsGrowWithSize)
{
    NocModel small(tech, cfg(2, 2));
    NocModel big(tech, cfg(8, 8));
    EXPECT_GT(big.avgHops(), small.avgHops());
}

TEST_F(NocFixture, EnergyPerByteHopPositiveAndSane)
{
    NocModel noc(tech, cfg(4, 4));
    EXPECT_GT(noc.energyPerByteHopJ(), 0.05e-12);
    EXPECT_LT(noc.energyPerByteHopJ(), 60e-12);
}

TEST_F(NocFixture, BiggerTilesLongerLinksMoreEnergy)
{
    NocConfig small_tile = cfg(4, 4);
    NocConfig big_tile = cfg(4, 4);
    big_tile.tileAreaUm2 = 4.0 * small_tile.tileAreaUm2;
    NocModel a(tech, small_tile), b(tech, big_tile);
    EXPECT_GT(b.energyPerByteHopJ(), a.energyPerByteHopJ());
}

TEST_F(NocFixture, RejectsBadConfig)
{
    NocConfig bad = cfg(0, 4);
    EXPECT_THROW(NocModel(tech, bad), ConfigError);
    NocConfig bad2 = cfg(2, 2);
    bad2.tileAreaUm2 = 0.0;
    EXPECT_THROW(NocModel(tech, bad2), ConfigError);
}

TEST_F(NocFixture, RoutersAndLinksInBreakdown)
{
    NocModel noc(tech, cfg(4, 4));
    EXPECT_NE(noc.breakdown().find("routers"), nullptr);
    EXPECT_NE(noc.breakdown().find("links"), nullptr);
}

/** Topology sweep: all are well formed on an 8-tile chip. */
class NocTopoSweep : public ::testing::TestWithParam<NocTopology>
{};

TEST_P(NocTopoSweep, WellFormed)
{
    const TechNode tech = TechNode::make(28.0);
    NocConfig c;
    c.tx = 2;
    c.ty = 4;
    c.topology = GetParam();
    c.freqHz = 700e6;
    c.tileAreaUm2 = 8e6;
    c.bisectionBwBytesPerS = 128e9;
    NocModel noc(tech, c);
    EXPECT_GT(noc.breakdown().total().areaUm2, 0.0);
    EXPECT_GT(noc.flitBits(), 0);
}

INSTANTIATE_TEST_SUITE_P(Topologies, NocTopoSweep,
                         ::testing::Values(NocTopology::Bus,
                                           NocTopology::Ring,
                                           NocTopology::Mesh2D,
                                           NocTopology::HTree));

} // namespace
} // namespace neurometer
