/**
 * @file
 * Process-wide memory-design cache tests: key canonicalization, the
 * concurrent same-key rendezvous, failure caching, stats counters, and
 * the end-to-end property the cache exists for — a second ChipModel
 * build with an unchanged memory subsystem re-runs no memory search.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "chip/chip.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "memory/design_cache.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

MemoryRequest
baseRequest()
{
    MemoryRequest r;
    r.capacityBytes = 256.0 * 1024.0;
    r.blockBytes = 64.0;
    r.targetCycleS = 1.0 / 700e6;
    return r;
}

TEST(MemoryRequestKey, SensitiveToEveryField)
{
    const TechNode tech = TechNode::make(28.0);
    const std::string base = memoryRequestKey(baseRequest(), tech);

    const auto differs = [&](void (*mutate)(MemoryRequest &)) {
        MemoryRequest r = baseRequest();
        mutate(r);
        return memoryRequestKey(r, tech) != base;
    };

    EXPECT_TRUE(differs([](MemoryRequest &r) { r.capacityBytes *= 2.0; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.blockBytes = 32.0; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.cell = MemCellType::DFF; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.readPorts = 2; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.writePorts = 2; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.searchPorts = true; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.fixedBanks = 4; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.cacheMode = true; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.cacheWays = 8; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.tagBits = 32; }));
    EXPECT_TRUE(differs([](MemoryRequest &r) { r.targetCycleS = 2e-9; }));
    EXPECT_TRUE(
        differs([](MemoryRequest &r) { r.targetReadBwBytesPerS = 1e9; }));
    EXPECT_TRUE(
        differs([](MemoryRequest &r) { r.targetWriteBwBytesPerS = 1e9; }));

    // The tech identity participates too: node and supply each change
    // the key (an ulp of Vdd is a different design space).
    EXPECT_NE(memoryRequestKey(baseRequest(), TechNode::make(16.0)), base);
    EXPECT_NE(memoryRequestKey(baseRequest(), TechNode::make(28.0, 0.95)),
              base);
}

TEST(MemoryDesignCache, SecondLookupIsAHit)
{
    MemoryDesignCache cache;
    const TechNode tech = TechNode::make(28.0);
    const MemoryRequest r = baseRequest();

    const MemoryDesign d1 = cache.optimize(tech, r);
    const MemoryDesign d2 = cache.optimize(tech, r);

    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(d1.areaUm2, d2.areaUm2);
    EXPECT_EQ(d1.banks, d2.banks);
    // The cached design keeps its breakdown (lazily built once).
    EXPECT_GT(d2.breakdown.total().areaUm2, 0.0);
}

TEST(MemoryDesignCache, OptimizeAndEvaluateKeysDoNotCollide)
{
    MemoryDesignCache cache;
    const TechNode tech = TechNode::make(28.0);
    const MemoryRequest r = baseRequest();

    cache.optimize(tech, r);
    cache.evaluate(tech, r, 4, 256, 128, 1, 1);
    cache.evaluate(tech, r, 4, 256, 128, 2, 1);

    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(MemoryDesignCache, ClearDropsEntriesAndCounters)
{
    MemoryDesignCache cache;
    const TechNode tech = TechNode::make(28.0);
    cache.optimize(tech, baseRequest());
    cache.optimize(tech, baseRequest());
    ASSERT_GT(cache.size(), 0u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().hitRate(), 0.0);

    cache.optimize(tech, baseRequest());
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MemoryDesignCache, ConcurrentSameKeyComputesExactlyOnce)
{
    MemoryDesignCache cache;
    std::atomic<int> computes{0};
    constexpr int kThreads = 8;

    MemoryDesign seed;
    seed.banks = 7;
    seed.areaUm2 = 42.0;
    seed.feasible = true;

    std::vector<std::thread> threads;
    std::vector<MemoryDesign> got(kThreads);
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            got[t] = cache.getOrCompute("race-key", [&] {
                computes.fetch_add(1);
                return seed;
            });
        });
    }
    for (auto &th : threads)
        th.join();

    // All threads rendezvous on one computation and share its result.
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, std::uint64_t(kThreads - 1));
    for (const MemoryDesign &d : got) {
        EXPECT_EQ(d.banks, 7);
        EXPECT_EQ(d.areaUm2, 42.0);
    }
}

TEST(MemoryDesignCache, FailuresAreCachedAndRethrownVerbatim)
{
    MemoryDesignCache cache;
    const TechNode tech = TechNode::make(28.0);
    MemoryRequest r = baseRequest();
    r.targetCycleS = 1e-12; // 1 THz: unsatisfiable

    std::string first;
    try {
        cache.optimize(tech, r);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        first = e.what();
    }
    // The second request must not re-run the search — and it must see
    // the byte-identical message (no prefix stacking).
    std::string second;
    try {
        cache.optimize(tech, r);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        second = e.what();
    }
    EXPECT_EQ(first, second);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    int computes = 0;
    for (int i = 0; i < 2; ++i) {
        try {
            cache.getOrCompute("model-failure", [&]() -> MemoryDesign {
                ++computes;
                throw ModelError("synthetic failure");
            });
            FAIL() << "expected ModelError";
        } catch (const ModelError &e) {
            EXPECT_STREQ(e.what(), "model error: synthetic failure");
        }
    }
    EXPECT_EQ(computes, 1);
}

/**
 * Cached failures must keep their structured identity: a ConfigError
 * computed once rethrows as a ConfigError on every hit, a ModelError
 * as a ModelError — the error *category* a sweep records for a point
 * (see common/error.hh) is the same whether the failure was computed
 * or replayed from the cache.
 */
TEST(MemoryDesignCache, CachedFailuresKeepTheirErrorCategory)
{
    MemoryDesignCache cache;
    const TechNode tech = TechNode::make(28.0);
    MemoryRequest r = baseRequest();
    r.targetCycleS = 1e-12; // 1 THz: unsatisfiable

    const auto category_of = [](auto &&fn) {
        try {
            fn();
        } catch (...) {
            return captureCurrentException("test").category;
        }
        return ErrorCategory::None;
    };

    // Miss then hit: same category both times.
    EXPECT_EQ(category_of([&] { cache.optimize(tech, r); }),
              ErrorCategory::Config);
    EXPECT_EQ(category_of([&] { cache.optimize(tech, r); }),
              ErrorCategory::Config);
    EXPECT_EQ(cache.stats().hits, 1u);

    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(category_of([&] {
                      cache.getOrCompute(
                          "model-cat", [&]() -> MemoryDesign {
                              throw ModelError("no fit");
                          });
                  }),
                  ErrorCategory::Model);
    }
}

/**
 * Injected faults are synthetic, not properties of the design point —
 * caching one would poison every later lookup of the same key. The
 * cache must let the fault propagate uncached and recompute on the
 * next request.
 */
TEST(MemoryDesignCache, InjectedFaultsAreNotCached)
{
    MemoryDesignCache cache;
    int computes = 0;
    MemoryDesign seed;
    seed.banks = 3;
    seed.feasible = true;

    EXPECT_THROW(cache.getOrCompute("inject-key",
                                    [&]() -> MemoryDesign {
                                        ++computes;
                                        throw InjectedFault(
                                            "memory.search", 0);
                                    }),
                 InjectedFault);
    // The retry recomputes — and this time succeeds.
    const MemoryDesign d = cache.getOrCompute("inject-key", [&] {
        ++computes;
        return seed;
    });
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(d.banks, 3);
}

/**
 * The end-to-end property: chip builds whose memory subsystem is
 * unchanged run zero memory searches against a warm cache. The config
 * pins memBlockBytes and vuLanes so that varying the TU rows leaves
 * every derived MemoryRequest identical.
 */
TEST(MemoryDesignCache, SecondChipBuildHitsProcessWideCache)
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.tx = cfg.ty = 1;
    cfg.core.numTU = 2;
    cfg.core.tu.rows = 64;
    cfg.core.tu.cols = 64;
    cfg.core.vuLanes = 64;          // pin: otherwise follows tu.cols
    cfg.core.memBlockBytes = 64.0;  // pin: otherwise follows tu.rows
    cfg.totalMemBytes = 4.0 * 1024 * 1024;

    MemoryDesignCache &cache = memoryDesignCache();
    cache.clear();

    ChipModel first(cfg);
    const MemoryCacheStats cold = cache.stats();
    EXPECT_GT(cold.misses, 0u);

    // Identical rebuild: pure hits.
    ChipModel second(cfg);
    const MemoryCacheStats warm = cache.stats();
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_GT(warm.hits, cold.hits);

    // A TU-geometry-only variation (the design-space sweep axis) also
    // leaves the memory subsystem untouched.
    ChipConfig taller = cfg;
    taller.core.tu.rows = 128;
    ChipModel third(taller);
    EXPECT_EQ(cache.stats().misses, cold.misses);

    // Same models either way.
    EXPECT_EQ(first.breakdown().total().areaUm2,
              second.breakdown().total().areaUm2);
}

} // namespace
} // namespace neurometer
