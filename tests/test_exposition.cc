/**
 * @file
 * Prometheus text exposition (obs/exposition.hh): metric-name
 * sanitization, non-finite sample literals, cumulative histogram
 * series, HELP escaping, and a line-format validator run over a real
 * registry snapshot so every line the daemon would serve from
 * GET /metrics parses. Also pins the within-bucket interpolated
 * histogram quantiles to exact values (the buckets are powers of two,
 * so the expected interpolants are computable by hand).
 */

#include <cmath>
#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "neurometer/neurometer.hh"

using namespace neurometer;

namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

bool
hasLine(const std::string &text, const std::string &wanted)
{
    for (const std::string &line : splitLines(text))
        if (line == wanted)
            return true;
    return false;
}

const obs::HistogramSnapshot *
findHist(const obs::Snapshot &snap, const std::string &name)
{
    for (const auto &[n, h] : snap.histograms)
        if (n == name)
            return &h;
    return nullptr;
}

// ---------------------------------------------------------------------
// Name sanitization and value formatting

TEST(Exposition, SanitizeMetricName)
{
    EXPECT_EQ(obs::sanitizeMetricName("eval_cache.hits"),
              "eval_cache_hits");
    EXPECT_EQ(obs::sanitizeMetricName("serve.requests.ok"),
              "serve_requests_ok");
    EXPECT_EQ(obs::sanitizeMetricName("already_clean"), "already_clean");
    EXPECT_EQ(obs::sanitizeMetricName("a-b/c d"), "a_b_c_d");
    EXPECT_EQ(obs::sanitizeMetricName("9lives"), "_9lives");
    EXPECT_EQ(obs::sanitizeMetricName(""), "_");
    EXPECT_EQ(obs::sanitizeMetricName("a:b"), "a_b");
    EXPECT_EQ(obs::sanitizeMetricName("üñï"), "______");
}

TEST(Exposition, PromValueLiterals)
{
    EXPECT_EQ(obs::promValue(std::nan("")), "NaN");
    EXPECT_EQ(obs::promValue(std::numeric_limits<double>::infinity()),
              "+Inf");
    EXPECT_EQ(obs::promValue(-std::numeric_limits<double>::infinity()),
              "-Inf");
    EXPECT_EQ(obs::promValue(0.25), "0.25");
    EXPECT_EQ(obs::promValue(0.0), "0");
}

TEST(Exposition, EscapeHelp)
{
    EXPECT_EQ(obs::escapeHelp("plain text"), "plain text");
    EXPECT_EQ(obs::escapeHelp("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::escapeHelp("line1\nline2"), "line1\\nline2");
}

// ---------------------------------------------------------------------
// Rendering

TEST(Exposition, CounterRendersAsTotalWithHelp)
{
    obs::counter("expo.test_requests", "requests seen by the test")
        .inc(7);
    const std::string text = obs::renderPrometheus(obs::snapshot());
    EXPECT_TRUE(hasLine(text, "# HELP expo_test_requests_total "
                              "requests seen by the test"));
    EXPECT_TRUE(hasLine(text, "# TYPE expo_test_requests_total counter"));
    EXPECT_NE(text.find("expo_test_requests_total 7"), std::string::npos);
}

TEST(Exposition, NonFiniteGaugesUseLiterals)
{
    obs::gauge("expo.nan_gauge").set(std::nan(""));
    obs::gauge("expo.inf_gauge")
        .set(std::numeric_limits<double>::infinity());
    obs::gauge("expo.neg_inf_gauge")
        .set(-std::numeric_limits<double>::infinity());
    const std::string text = obs::renderPrometheus(obs::snapshot());
    EXPECT_TRUE(hasLine(text, "expo_nan_gauge NaN"));
    EXPECT_TRUE(hasLine(text, "expo_inf_gauge +Inf"));
    EXPECT_TRUE(hasLine(text, "expo_neg_inf_gauge -Inf"));
}

TEST(Exposition, EmptyHistogramRendersZeroSeries)
{
    obs::histogram("expo.empty_hist"); // registered, never recorded
    const std::string text = obs::renderPrometheus(obs::snapshot());
    EXPECT_TRUE(hasLine(text, "# TYPE expo_empty_hist histogram"));
    EXPECT_TRUE(hasLine(text, "expo_empty_hist_bucket{le=\"+Inf\"} 0"));
    EXPECT_TRUE(hasLine(text, "expo_empty_hist_sum 0"));
    EXPECT_TRUE(hasLine(text, "expo_empty_hist_count 0"));
}

TEST(Exposition, HistogramBucketsAreCumulative)
{
    const obs::Histogram h = obs::histogram("expo.cum_hist");
    // Three samples in two distinct power-of-two ns buckets:
    // 600ns and 700ns land in (512, 1024]ns, 3000ns in (2048, 4096]ns.
    h.record(600e-9);
    h.record(700e-9);
    h.record(3000e-9);
    const std::string text = obs::renderPrometheus(obs::snapshot());
    EXPECT_TRUE(
        hasLine(text, "expo_cum_hist_bucket{le=\"1.024e-06\"} 2"));
    EXPECT_TRUE(
        hasLine(text, "expo_cum_hist_bucket{le=\"4.096e-06\"} 3"));
    EXPECT_TRUE(hasLine(text, "expo_cum_hist_bucket{le=\"+Inf\"} 3"));
    EXPECT_TRUE(hasLine(text, "expo_cum_hist_count 3"));

    // Cumulative counts never decrease across the rendered series.
    std::uint64_t prev = 0;
    for (const std::string &line : splitLines(text)) {
        if (line.rfind("expo_cum_hist_bucket{", 0) != 0)
            continue;
        const std::size_t sp = line.rfind(' ');
        const std::uint64_t v = std::stoull(line.substr(sp + 1));
        EXPECT_GE(v, prev) << line;
        prev = v;
    }
}

TEST(Exposition, HelpEscapingSurvivesRendering)
{
    obs::counter("expo.escaped_doc", "path\\to\nthing").inc();
    const std::string text = obs::renderPrometheus(obs::snapshot());
    EXPECT_TRUE(hasLine(
        text, "# HELP expo_escaped_doc_total path\\\\to\\nthing"));
}

// ---------------------------------------------------------------------
// The whole snapshot passes a line-format validator

TEST(Exposition, EveryLineOfARealSnapshotParses)
{
    // Populate a bit of everything, including hit-rate derivation.
    obs::counter("expo.val_cache.hits").inc(3);
    obs::counter("expo.val_cache.misses").inc(1);
    obs::gauge("expo.val_gauge").set(-2.5e-3);
    obs::histogram("expo.val_hist").record(1.5e-6);

    const std::string name = "[a-zA-Z_:][a-zA-Z0-9_:]*";
    const std::regex help("^# HELP " + name + " .*$");
    const std::regex type("^# TYPE " + name +
                          " (counter|gauge|histogram|summary|untyped)$");
    const std::regex sample(
        "^" + name + R"((\{le="[^"]*"\})? )" +
        R"((NaN|\+Inf|-Inf|[-+]?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?)$)");

    const std::string text = obs::renderPrometheus(obs::snapshot());
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    for (const std::string &line : splitLines(text)) {
        const bool ok = std::regex_match(line, help) ||
                        std::regex_match(line, type) ||
                        std::regex_match(line, sample);
        EXPECT_TRUE(ok) << "unparseable exposition line: " << line;
    }

    // The derived hit rate made it out as a gauge.
    EXPECT_NE(text.find("expo_val_cache_hit_rate 0.75"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Interpolated quantiles (obs/metrics.hh HistogramSnapshot)

TEST(Exposition, InterpolatedQuantilesExactWithinBucket)
{
    const obs::Histogram h = obs::histogram("expo.quant_hist");
    // Both samples land in the (512, 1024]ns bucket. With count = 2:
    //   p50 target = 1 -> lo + (1/2)(hi - lo) = 512ns + 256ns = 768ns
    //   p90/p99 target = 2 -> bucket upper bound 1024ns, clamped to
    //   the observed max of 1000ns.
    h.record(600e-9);
    h.record(1000e-9);

    const obs::Snapshot snap = obs::snapshot();
    const obs::HistogramSnapshot *hs = findHist(snap, "expo.quant_hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, 2u);
    EXPECT_NEAR(hs->minS, 600e-9, 1e-20);
    EXPECT_NEAR(hs->maxS, 1000e-9, 1e-20);
    EXPECT_NEAR(hs->p50S, 768e-9, 1e-20);
    EXPECT_NEAR(hs->p90S, 1000e-9, 1e-20);
    EXPECT_NEAR(hs->p99S, 1000e-9, 1e-20);
    EXPECT_DOUBLE_EQ(hs->p90S, hs->maxS);

    // The snapshot's bucket list carries the single non-empty bucket.
    ASSERT_EQ(hs->buckets.size(), 1u);
    EXPECT_NEAR(hs->buckets[0].first, 1024e-9, 1e-20);
    EXPECT_EQ(hs->buckets[0].second, 2u);
}

TEST(Exposition, SingleSampleQuantilesClampToTheSample)
{
    const obs::Histogram h = obs::histogram("expo.one_hist");
    h.record(3e-6); // (2048, 4096]ns bucket
    const obs::Snapshot snap = obs::snapshot();
    const obs::HistogramSnapshot *hs = findHist(snap, "expo.one_hist");
    ASSERT_NE(hs, nullptr);
    // Clamping to [min, max] makes every quantile the sample itself.
    EXPECT_NEAR(hs->p50S, 3e-6, 1e-17);
    EXPECT_NEAR(hs->p99S, 3e-6, 1e-17);
    EXPECT_DOUBLE_EQ(hs->p50S, hs->minS);
    EXPECT_DOUBLE_EQ(hs->p99S, hs->maxS);
}

TEST(Exposition, SnapshotDocsLookup)
{
    obs::counter("expo.documented", "the doc text");
    const obs::Snapshot snap = obs::snapshot();
    const std::string *doc = snap.doc("expo.documented");
    ASSERT_NE(doc, nullptr);
    EXPECT_EQ(*doc, "the doc text");
    EXPECT_EQ(snap.doc("expo.never_registered"), nullptr);
}

} // namespace
