/**
 * @file
 * Wire model tests: Elmore closed forms, repeater insertion behavior,
 * and pipelined bus properties.
 */

#include <gtest/gtest.h>

#include "circuit/wire.hh"
#include "common/error.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class WireFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);
    WireModel wires{tech};
};

TEST_F(WireFixture, UnrepeatedMatchesClosedForm)
{
    const double len = 100.0, rd = 1000.0, cl = 2e-15;
    const WireParams &w = tech.wire(WireLayer::Intermediate);
    const WireResult r =
        wires.unrepeated(WireLayer::Intermediate, len, rd, cl);
    const double rw = w.rOhmPerUm * len;
    const double cw = w.cFPerUm * len;
    const double expect =
        0.69 * rd * (cw + cl) + 0.38 * rw * cw + 0.69 * rw * cl;
    EXPECT_NEAR(r.delayS, expect, 1e-18);
    EXPECT_NEAR(r.energyJ, (cw + cl) * tech.vdd() * tech.vdd(), 1e-21);
    EXPECT_EQ(r.numRepeaters, 0);
}

TEST_F(WireFixture, ZeroLengthWireIsDriverOnly)
{
    const WireResult r =
        wires.unrepeated(WireLayer::Local, 0.0, 500.0, 1e-15);
    EXPECT_NEAR(r.delayS, 0.69 * 500.0 * 1e-15, 1e-20);
    EXPECT_THROW(wires.unrepeated(WireLayer::Local, -1.0, 1.0, 0.0),
                 ConfigError);
}

TEST_F(WireFixture, UnrepeatedDelayGrowsQuadratically)
{
    auto d = [&](double len) {
        return wires
            .unrepeated(WireLayer::Global, len, 100.0, 1e-15)
            .delayS;
    };
    // For long wires the r*c*L^2 term dominates: doubling length must
    // more than triple the wire-dominated part.
    const double d1 = d(5000.0), d2 = d(10000.0);
    EXPECT_GT(d2 / d1, 3.0);
}

TEST_F(WireFixture, RepeatedDelayGrowsLinearly)
{
    auto d = [&](double len) {
        return wires.repeated(WireLayer::Global, len, 1e-15).delayS;
    };
    const double d1 = d(5000.0), d2 = d(10000.0);
    EXPECT_NEAR(d2 / d1, 2.0, 0.35);
}

TEST_F(WireFixture, RepeatersBeatUnrepeatedOnLongWires)
{
    const double len = 8000.0;
    const double d_rep =
        wires.repeated(WireLayer::Global, len, 1e-15).delayS;
    const double d_unrep =
        wires
            .unrepeated(WireLayer::Global, len,
                        wires.unitDriverROhm() / 24.0, 1e-15)
            .delayS;
    EXPECT_LT(d_rep, d_unrep);
}

TEST_F(WireFixture, ShortWireGetsNoRepeaters)
{
    const WireResult r = wires.repeated(WireLayer::Global, 10.0, 1e-15);
    EXPECT_EQ(r.numRepeaters, 0);
}

TEST_F(WireFixture, RepeaterCountGrowsWithLength)
{
    const WireResult a = wires.repeated(WireLayer::Global, 2000.0, 1e-15);
    const WireResult b = wires.repeated(WireLayer::Global, 8000.0, 1e-15);
    EXPECT_GE(b.numRepeaters, a.numRepeaters);
    EXPECT_GT(b.repeaterAreaUm2, a.repeaterAreaUm2);
    EXPECT_GT(b.leakageW, a.leakageW);
}

TEST_F(WireFixture, EnergyScalesWithLength)
{
    const WireResult a = wires.repeated(WireLayer::Global, 1000.0, 1e-15);
    const WireResult b = wires.repeated(WireLayer::Global, 2000.0, 1e-15);
    EXPECT_NEAR(b.energyJ / a.energyJ, 2.0, 0.25);
}

TEST_F(WireFixture, BusPipelinesToMeetCycle)
{
    // A multi-mm wire at a fast clock needs more than one stage.
    int stages = 0;
    const PAT bus = wires.bus(WireLayer::Global, 12000.0, 64, 2e9, 0.5,
                              &stages);
    EXPECT_GT(stages, 1);
    EXPECT_LE(bus.timing.cycleS, 1.0 / 2e9 + tech.dffDelayS());
    EXPECT_GT(bus.areaUm2, 0.0);
    EXPECT_GT(bus.power.dynamicW, 0.0);
}

TEST_F(WireFixture, SlowClockNeedsOneStage)
{
    int stages = 0;
    wires.bus(WireLayer::Global, 1000.0, 32, 100e6, 0.5, &stages);
    EXPECT_EQ(stages, 1);
}

TEST_F(WireFixture, BusPowerScalesWithBitsAndActivity)
{
    const PAT b32 = wires.bus(WireLayer::Global, 3000.0, 32, 1e9, 0.5);
    const PAT b64 = wires.bus(WireLayer::Global, 3000.0, 64, 1e9, 0.5);
    EXPECT_NEAR(b64.power.dynamicW / b32.power.dynamicW, 2.0, 0.01);
    const PAT quiet = wires.bus(WireLayer::Global, 3000.0, 32, 1e9, 0.1);
    EXPECT_LT(quiet.power.dynamicW, b32.power.dynamicW);
}

TEST_F(WireFixture, BusRejectsBadArgs)
{
    EXPECT_THROW(wires.bus(WireLayer::Global, 100.0, 0, 1e9, 0.5),
                 ConfigError);
    EXPECT_THROW(wires.bus(WireLayer::Global, 100.0, 8, 0.0, 0.5),
                 ConfigError);
}

/** Layer sweep: every layer must produce self-consistent results. */
class WireLayerSweep : public ::testing::TestWithParam<WireLayer>
{};

TEST_P(WireLayerSweep, RepeatedWireInvariants)
{
    const TechNode tech = TechNode::make(16.0);
    const WireModel wires(tech);
    const WireResult r = wires.repeated(GetParam(), 4000.0, 2e-15);
    EXPECT_GT(r.delayS, 0.0);
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_GT(r.routingAreaUm2, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllLayers, WireLayerSweep,
                         ::testing::Values(WireLayer::Local,
                                           WireLayer::Intermediate,
                                           WireLayer::Global));

TEST_F(WireFixture, LocalLayerSlowerThanGlobalForSameRun)
{
    const double len = 3000.0;
    const double d_local =
        wires.repeated(WireLayer::Local, len, 1e-15).delayS;
    const double d_global =
        wires.repeated(WireLayer::Global, len, 1e-15).delayS;
    EXPECT_GT(d_local, d_global);
}

} // namespace
} // namespace neurometer
