/**
 * @file
 * Field-schema tests: registry completeness against the eval-cache
 * key (the regression guard the old hand-rolled serializer never
 * had), legacy key-layout compatibility, config-file parser error
 * paths with line-numbered diagnostics, exact toString()/fromString()
 * round-trips, and the registry-driven validate() bounds.
 *
 * Unregistered-field detection is split between build time and here:
 * the sizeof static_asserts in chip/config_schema.cc trip when a
 * config struct gains a member, and the mutation test below trips
 * when a registered field's accessors don't actually reach the key.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chip/config_schema.hh"
#include "common/error.hh"
#include "explore/eval_cache.hh"

namespace neurometer {
namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

/** The message a ConfigError-throwing callable produces. */
template <typename Fn>
std::string
configErrorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const ConfigError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected ConfigError";
    return "";
}

/** A legal value for `f` different from its current one. */
double
differentValue(const FieldDef<ChipConfig> &f, double v)
{
    if (f.kind == FieldKind::Bool)
        return v == 0.0 ? 1.0 : 0.0;
    if (f.kind == FieldKind::Enum)
        return double((std::size_t(v) + 1) % f.enumNames.size());
    for (double cand : {v + 1.0, v - 1.0, v / 2.0, v * 2.0, 0.5}) {
        const bool integral = cand == std::floor(cand);
        if (cand != v && f.bounds.contains(cand) &&
            (f.kind != FieldKind::Int || integral))
            return cand;
    }
    ADD_FAILURE() << "no alternative value for " << f.name;
    return v;
}

TEST(Schema, RegistersEveryField)
{
    // 3 tech + 14 chip architecture + 22 core + 11 activity factors.
    // (core.tu.freqHz / core.rt.freqHz are derived, not registered.)
    EXPECT_EQ(chipSchema().size(), 50u);
    for (const FieldDef<ChipConfig> &f : chipSchema().fields()) {
        EXPECT_FALSE(f.doc.empty()) << f.name << " lacks a doc string";
        if (f.kind == FieldKind::Enum) {
            EXPECT_FALSE(f.enumNames.empty()) << f.name;
        }
    }
}

// The satellite regression guard: every registered field, mutated one
// at a time on a default config, must perturb the eval-cache key. A
// field whose getter/setter pair is wired to the wrong member shows
// up here as a key collision.
TEST(Schema, EveryFieldMutationChangesTheCacheKey)
{
    const ChipConfig base;
    const std::string base_key = configKey(base);
    for (const FieldDef<ChipConfig> &f : chipSchema().fields()) {
        ChipConfig mutated = base;
        const double v = f.get(base);
        const double nv = differentValue(f, v);
        f.set(mutated, nv);
        EXPECT_EQ(f.get(mutated), nv) << f.name;
        EXPECT_NE(configKey(mutated), base_key)
            << "mutating " << f.name
            << " did not change the cache key";
        // One-field mutation must change exactly that field.
        f.set(mutated, v);
        EXPECT_EQ(configKey(mutated), base_key) << f.name;
    }
}

// The registry walk must reproduce the historical hand-rolled key
// byte for byte: '|'-separated, doubles in hex-float, ints/enums
// decimal, bools 0/1, in registration order.
TEST(Schema, KeyKeepsTheLegacyLayout)
{
    std::vector<std::string> tok;
    {
        const std::string key = configKey(ChipConfig{});
        std::string cur;
        for (char c : key) {
            if (c == '|') {
                tok.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        EXPECT_TRUE(cur.empty()) << "key must end with a separator";
    }
    ASSERT_EQ(tok.size(), chipSchema().size());

    char hex[40];
    std::snprintf(hex, sizeof(hex), "%a", 28.0);
    EXPECT_EQ(tok[0], hex);   // nodeNm, hex-float
    EXPECT_EQ(tok[3], "1");   // tx, decimal int
    EXPECT_EQ(tok[5], "1");   // autoNocTopology, bool as 0/1
    EXPECT_EQ(tok[6], "2");   // nocTopology, enum as index (Mesh2D)
    EXPECT_EQ(tok[13], "16"); // pcieLanes
    EXPECT_EQ(tok[18], "128"); // core.tu.rows
}

ChipConfig
oddConfig()
{
    ChipConfig c;
    c.vddVolt = 0.815;
    c.freqHz = 940e6;
    c.tx = 2;
    c.ty = 4;
    c.whiteSpaceFraction = 1.0 / 3.0;
    c.memCell = MemCellType::EDRAM;
    c.memCacheMode = true;
    c.core.tu.mulType = DataType::BF16;
    c.core.tu.accType = DataType::FP32;
    c.core.tu.perCellRegBytes = 3.25;
    c.core.shareVregPorts = true;
    c.core.memBlockBytes = 123.5;
    c.tdpActivity.noc = 0.123456789012345678;
    return c;
}

TEST(ConfigFile, ToStringRoundTripsToAnIdenticalCacheKey)
{
    const ChipConfig c = oddConfig();
    const ChipConfig back = ChipConfig::fromString(c.toString());
    EXPECT_EQ(configKey(back), configKey(c));

    // And the echo covers every field (one line each + header).
    std::size_t lines = 0;
    for (char ch : c.toString())
        lines += ch == '\n';
    EXPECT_EQ(lines, chipSchema().size() + 1);
}

TEST(ConfigFile, EmptyTextYieldsTheDefaultConfig)
{
    EXPECT_EQ(configKey(ChipConfig::fromString("")),
              configKey(ChipConfig{}));
}

TEST(ConfigFile, ParsesCommentsWhitespaceAndEnums)
{
    const ChipConfig c = ChipConfig::fromString(
        "# a comment\n"
        "\n"
        "  tx = 2   # trailing comment\n"
        "dram = hbm2\n"
        "core.tu.mulType = BF16\n" // spellings are case-insensitive
        "memCacheMode = true\n"
        "freqHz = 1.05e9\n");
    EXPECT_EQ(c.tx, 2);
    EXPECT_EQ(c.dram, DramKind::HBM2);
    EXPECT_EQ(c.core.tu.mulType, DataType::BF16);
    EXPECT_TRUE(c.memCacheMode);
    EXPECT_DOUBLE_EQ(c.freqHz, 1.05e9);
}

TEST(ConfigFile, UnknownKeyCitesKeyAndLine)
{
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("tx = 2\nbogus.key = 3\n", "chip.cfg");
    });
    EXPECT_TRUE(contains(msg, "chip.cfg:2")) << msg;
    EXPECT_TRUE(contains(msg, "bogus.key")) << msg;
}

TEST(ConfigFile, MalformedValueCitesKeyAndLine)
{
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("freqHz = fast\n", "chip.cfg");
    });
    EXPECT_TRUE(contains(msg, "chip.cfg:1")) << msg;
    EXPECT_TRUE(contains(msg, "freqHz")) << msg;

    const std::string enum_msg = configErrorOf([] {
        ChipConfig::fromString("x = 1\ndram = hbm3\n", "m.cfg");
    });
    EXPECT_TRUE(contains(enum_msg, "m.cfg:1")) << enum_msg; // unknown x
}

TEST(ConfigFile, BadEnumListsTheValidSpellings)
{
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("dram = hbm3\n", "chip.cfg");
    });
    EXPECT_TRUE(contains(msg, "chip.cfg:1")) << msg;
    EXPECT_TRUE(contains(msg, "hbm3")) << msg;
    EXPECT_TRUE(contains(msg, "hbm2")) << msg;
}

TEST(ConfigFile, OutOfBoundsValueCitesTheRange)
{
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("\nnodeNm = 3\n", "chip.cfg");
    });
    EXPECT_TRUE(contains(msg, "chip.cfg:2")) << msg;
    EXPECT_TRUE(contains(msg, "nodeNm")) << msg;
    EXPECT_TRUE(contains(msg, "[7, 65]")) << msg;
}

TEST(ConfigFile, DuplicateKeyCitesKeyAndLine)
{
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("tx = 2\ntx = 3\n", "chip.cfg");
    });
    EXPECT_TRUE(contains(msg, "chip.cfg:2")) << msg;
    EXPECT_TRUE(contains(msg, "duplicate key 'tx'")) << msg;
}

TEST(ConfigFile, MissingDelimiterOrValueIsRejected)
{
    EXPECT_TRUE(contains(configErrorOf([] {
                             ChipConfig::fromString("tx 2\n", "c");
                         }),
                         "c:1"));
    EXPECT_TRUE(contains(configErrorOf([] {
                             ChipConfig::fromString("tx =\n", "c");
                         }),
                         "missing value"));
    EXPECT_TRUE(contains(configErrorOf([] {
                             ChipConfig::fromString("= 3\n", "c");
                         }),
                         "missing key"));
}

// Robustness satellites: hostile input never crashes the parser — it
// either parses or produces a line-numbered ConfigError.

TEST(ConfigFile, CrlfLineEndingsParseIdentically)
{
    const ChipConfig unix_c =
        ChipConfig::fromString("tx = 2\nty = 3\ndram = hbm2\n");
    const ChipConfig crlf_c =
        ChipConfig::fromString("tx = 2\r\nty = 3\r\ndram = hbm2\r\n");
    EXPECT_EQ(configKey(unix_c), configKey(crlf_c));

    // And CRLF diagnostics still carry the right line number.
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("tx = 2\r\nbogus = 1\r\n", "w.cfg");
    });
    EXPECT_TRUE(contains(msg, "w.cfg:2")) << msg;
}

TEST(ConfigFile, TruncatedFinalLineStillParses)
{
    // A file cut mid-write (no trailing newline) must not lose or
    // corrupt its last assignment.
    const ChipConfig c = ChipConfig::fromString("tx = 2\nty = 4");
    EXPECT_EQ(c.tx, 2);
    EXPECT_EQ(c.ty, 4);

    // Cut mid-token: a normal line-numbered value error, not a crash.
    const std::string msg = configErrorOf([] {
        ChipConfig::fromString("tx = 2\nfreqHz = 1.0e", "t.cfg");
    });
    EXPECT_TRUE(contains(msg, "t.cfg:2")) << msg;
}

TEST(ConfigFile, OverLongLinesAreRejectedWithALineNumber)
{
    // 4 KiB is far beyond any legitimate key = value line; beyond it
    // the parser refuses rather than echoing megabytes back into the
    // error message.
    const std::string huge(8192, 'x');
    const std::string msg = configErrorOf([&] {
        ChipConfig::fromString("tx = 2\n" + huge + "\n", "big.cfg");
    });
    EXPECT_TRUE(contains(msg, "big.cfg:2")) << msg;
    EXPECT_TRUE(contains(msg, "line too long")) << msg;
    EXPECT_LT(msg.size(), 256u) << "error echoed the oversized line";

    // At or under the limit, length alone is not an error.
    const std::string padded =
        "tx = 2" + std::string(1000, ' ') + "# comment\n";
    EXPECT_EQ(ChipConfig::fromString(padded).tx, 2);
}

TEST(ConfigFile, BinaryGarbageNeverCrashesTheParser)
{
    // NUL bytes, high-bit noise, lone '=', control characters: every
    // outcome must be a ConfigError (or a clean parse), never a crash.
    const std::vector<std::string> garbage = {
        std::string("\x00\x01\x02\x03", 4),
        "\xff\xfe\xfd = \xfc\xfb\n",
        "====\n",
        std::string(100, '='),
        "tx = 2\n\x7f\x1b[31m = 3\n",
    };
    for (const std::string &text : garbage) {
        try {
            ChipConfig::fromString(text, "bin.cfg");
        } catch (const ConfigError &e) {
            EXPECT_TRUE(contains(e.what(), "bin.cfg:")) << e.what();
        }
    }
}

TEST(ConfigFile, FromFileReadsAndLabelsDiagnosticsWithThePath)
{
    const std::string path =
        testing::TempDir() + "neurometer_schema_test.cfg";
    {
        std::ofstream f(path);
        f << "tx = 2\nty = 2\ncore.tu.rows = 32\ncore.tu.cols = 32\n";
    }
    const ChipConfig c = ChipConfig::fromFile(path);
    EXPECT_EQ(c.tx * c.ty, 4);
    EXPECT_EQ(c.core.tu.rows, 32);

    {
        std::ofstream f(path);
        f << "nonsense = 1\n";
    }
    const std::string msg =
        configErrorOf([&] { ChipConfig::fromFile(path); });
    EXPECT_TRUE(contains(msg, path + ":1")) << msg;

    EXPECT_THROW(ChipConfig::fromFile(path + ".does-not-exist"),
                 ConfigError);
    std::remove(path.c_str());
}

// Satellite: bounds validate() historically accepted silently.
TEST(Validate, RejectsTheFormerlyUncheckedFields)
{
    EXPECT_NO_THROW(validate(ChipConfig{}));

    ChipConfig c;
    c.tdpActivity.mem = 1.2;
    EXPECT_THROW(validate(c), ConfigError);
    c = ChipConfig{};
    c.tdpActivity.tensorUnit = -0.1;
    EXPECT_THROW(validate(c), ConfigError);
    c = ChipConfig{};
    c.core.vregEntries = 0;
    EXPECT_THROW(validate(c), ConfigError);
    c = ChipConfig{};
    c.core.vuLanes = -1;
    EXPECT_THROW(validate(c), ConfigError);
    c = ChipConfig{};
    c.core.memSliceBytes = -1.0;
    EXPECT_THROW(validate(c), ConfigError);
    c = ChipConfig{};
    c.core.memBlockBytes = -64.0;
    EXPECT_THROW(validate(c), ConfigError);
}

TEST(Validate, ErrorsNameTheFieldAndItsRange)
{
    ChipConfig c;
    c.tdpActivity.mem = 1.2;
    const std::string msg = configErrorOf([&] { validate(c); });
    EXPECT_TRUE(contains(msg, "tdpActivity.mem")) << msg;
    EXPECT_TRUE(contains(msg, "[0, 1]")) << msg;
}

TEST(Validate, KeepsTheCrossFieldRules)
{
    ChipConfig c;
    c.core.numTU = 0;
    c.core.numRT = 0;
    EXPECT_THROW(validate(c), ConfigError);
}

} // namespace
} // namespace neurometer
