/**
 * @file
 * Peripheral (DRAM/HBM ports, PCIe, ICI, DMA) model tests, including
 * the TPU-v1/v2 floorplan anchors the constants were fit to.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/units.hh"
#include "components/periph.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

TEST(DramPortTest, Tpu1Ddr3Anchor)
{
    // Two DDR3 channels (~34 GB/s) at 28 nm: the paper's own model
    // attributes ~6% of a ~300 mm^2 chip (~18 mm^2) to DRAM ports.
    const TechNode t = TechNode::make(28.0);
    const Breakdown bd = dramPort(t, DramKind::DDR3, 34e9);
    const double mm2 = um2ToMm2(bd.total().areaUm2);
    EXPECT_GT(mm2, 10.0);
    EXPECT_LT(mm2, 25.0);
}

TEST(DramPortTest, Tpu2HbmAnchor)
{
    // 700 GB/s of HBM at 16 nm: ~9% of ~513 mm^2 (~46 mm^2).
    const TechNode t = TechNode::make(16.0);
    const Breakdown bd = dramPort(t, DramKind::HBM2, 700e9);
    const double mm2 = um2ToMm2(bd.total().areaUm2);
    EXPECT_GT(mm2, 30.0);
    EXPECT_LT(mm2, 60.0);
}

TEST(DramPortTest, AreaAndPowerScaleWithBandwidth)
{
    const TechNode t = TechNode::make(16.0);
    const Breakdown a = dramPort(t, DramKind::HBM2, 100e9);
    const Breakdown b = dramPort(t, DramKind::HBM2, 400e9);
    EXPECT_GT(b.total().areaUm2, a.total().areaUm2);
    EXPECT_GT(b.total().power.dynamicW, 3.0 * a.total().power.dynamicW);
}

TEST(DramPortTest, HbmMoreEfficientPerByteThanDdr)
{
    const TechNode t = TechNode::make(16.0);
    const double bw = 34e9;
    const double ddr_w =
        dramPort(t, DramKind::DDR3, bw).total().power.dynamicW;
    const double hbm_w =
        dramPort(t, DramKind::HBM2, bw).total().power.dynamicW;
    EXPECT_LT(hbm_w, ddr_w);
}

TEST(DramPortTest, RejectsZeroBandwidth)
{
    const TechNode t = TechNode::make(28.0);
    EXPECT_THROW(dramPort(t, DramKind::DDR4, 0.0), ConfigError);
}

TEST(PcieTest, Tpu1Gen3x16Anchor)
{
    // PCIe Gen3 x16 at 28 nm: paper's model shows ~3% of the die
    // (~9-10 mm^2).
    const TechNode t = TechNode::make(28.0);
    const Breakdown bd = pcieInterface(t, 16);
    const double mm2 = um2ToMm2(bd.total().areaUm2);
    EXPECT_GT(mm2, 5.0);
    EXPECT_LT(mm2, 14.0);
}

TEST(PcieTest, LanesScaleArea)
{
    const TechNode t = TechNode::make(28.0);
    const double a4 = pcieInterface(t, 4).total().areaUm2;
    const double a16 = pcieInterface(t, 16).total().areaUm2;
    EXPECT_GT(a16, 3.0 * a4);
    EXPECT_THROW(pcieInterface(t, 0), ConfigError);
}

TEST(IciTest, Tpu2Anchor)
{
    // ICI at 496 Gb/s/direction with 4 links at 16 nm: the paper's
    // model attributes ~12% of ~513 mm^2 (~60 mm^2).
    const TechNode t = TechNode::make(16.0);
    const Breakdown bd = iciInterface(t, 4, 496.0);
    const double mm2 = um2ToMm2(bd.total().areaUm2);
    EXPECT_GT(mm2, 40.0);
    EXPECT_LT(mm2, 80.0);
}

TEST(IciTest, MoreLinksMoreArea)
{
    const TechNode t = TechNode::make(16.0);
    EXPECT_GT(iciInterface(t, 4, 496.0).total().areaUm2,
              iciInterface(t, 2, 496.0).total().areaUm2);
}

TEST(DmaTest, ScalesWithBandwidth)
{
    const TechNode t = TechNode::make(28.0);
    const Breakdown a = dmaEngine(t, 10e9, 700e6);
    const Breakdown b = dmaEngine(t, 160e9, 700e6);
    EXPECT_GT(b.total().areaUm2, a.total().areaUm2);
}

TEST(AnalogScaling, WeakNodeScaling)
{
    // Peripheral area shrinks much more slowly than logic between 28
    // and 7 nm (sqrt vs quadratic shrink).
    const TechNode t28 = TechNode::make(28.0);
    const TechNode t7 = TechNode::make(7.0);
    const double r = pcieInterface(t7, 16).total().areaUm2 /
                     pcieInterface(t28, 16).total().areaUm2;
    EXPECT_GT(r, 0.4); // logic would be ~0.06
    EXPECT_LT(r, 1.0);
}

} // namespace
} // namespace neurometer
