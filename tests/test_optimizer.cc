/**
 * @file
 * Optimizer tests: clock solve for a TOPS target and core-count
 * maximization under Table I constraints.
 */

#include <gtest/gtest.h>

#include "chip/optimizer.hh"
#include "common/error.hh"

namespace neurometer {
namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * 1024 * 1024;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

TEST(ClockSolve, HitsTheTopsTarget)
{
    ChipConfig cfg = datacenterBase();
    cfg.tx = cfg.ty = 1;
    cfg.core.numTU = 1;
    cfg.core.tu.rows = cfg.core.tu.cols = 256;
    // TPU-v1 geometry: 92 TOPS needs ~700 MHz.
    const double f = solveClockForTops(cfg, 91.75);
    EXPECT_NEAR(f, 700e6, 0.01 * 700e6);
}

TEST(ClockSolve, ScalesInverselyWithMacs)
{
    ChipConfig cfg = datacenterBase();
    cfg.tx = cfg.ty = 1;
    cfg.core.numTU = 4;
    cfg.core.tu.rows = cfg.core.tu.cols = 128;
    const double f = solveClockForTops(cfg, 91.75);
    EXPECT_NEAR(f, 700e6, 0.01 * 700e6);
}

TEST(ClockSolve, ThrowsOnImpossibleTarget)
{
    ChipConfig cfg = datacenterBase();
    cfg.tx = cfg.ty = 1;
    cfg.core.numTU = 1;
    cfg.core.tu.rows = cfg.core.tu.cols = 8;
    // Needs ~720 GHz.
    EXPECT_THROW(solveClockForTops(cfg, 92.0), ConfigError);
    EXPECT_THROW(solveClockForTops(cfg, -1.0), ConfigError);
}

TEST(Grids, ShapeRules)
{
    for (const auto &[tx, ty] : candidateGrids()) {
        EXPECT_TRUE(tx == ty || 2 * tx == ty)
            << tx << "x" << ty;
        // Power-of-two counts.
        const int n = tx * ty;
        EXPECT_EQ(n & (n - 1), 0);
    }
}

TEST(Grids, AscendingAndBounded)
{
    const auto grids = candidateGrids(64);
    int prev = 0;
    for (const auto &[tx, ty] : grids) {
        EXPECT_GE(tx * ty, prev);
        prev = tx * ty;
        EXPECT_LE(tx * ty, 64);
    }
    EXPECT_EQ(grids.front().first * grids.front().second, 1);
}

TEST(MaximizeCores, BrawnyHitsTheTopsCap)
{
    // (64, 2): 8 cores reach exactly 91.75 TOPS at 700 MHz; more
    // cores would overshoot the 92 TOPS bound.
    const ChipConfig base = datacenterBase();
    DesignConstraints c;
    const GridSearchResult r = maximizeCores(base, 64, 2, c);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.point.tx * r.point.ty, 8);
    EXPECT_NEAR(r.peakTops, 91.75, 0.1);
    EXPECT_LE(r.areaMm2, c.areaBudgetMm2);
    EXPECT_LE(r.tdpW, c.powerBudgetW);
}

TEST(MaximizeCores, WimpyIsBudgetLimitedBelowTheCap)
{
    const ChipConfig base = datacenterBase();
    DesignConstraints c;
    const GridSearchResult r = maximizeCores(base, 4, 4, c);
    ASSERT_TRUE(r.feasible);
    // 4x4 TUs cannot come close to 92 TOPS inside 500 mm^2 / 300 W
    // (the paper reports <1/12 of the brawny peak).
    EXPECT_LT(r.peakTops, 92.0 / 4.0);
}

TEST(MaximizeCores, TighterAreaBudgetShrinksTheChip)
{
    const ChipConfig base = datacenterBase();
    DesignConstraints loose;
    DesignConstraints tight;
    // The 32 MB Mem + HBM baseline alone is ~250 mm^2: pick a budget
    // that forces fewer cores without being unsatisfiable.
    tight.areaBudgetMm2 = 310.0;
    const GridSearchResult rl = maximizeCores(base, 16, 2, loose);
    const GridSearchResult rt = maximizeCores(base, 16, 2, tight);
    ASSERT_TRUE(rl.feasible);
    ASSERT_TRUE(rt.feasible);
    EXPECT_LE(rt.areaMm2, 310.0);
    EXPECT_LE(rt.peakTops, rl.peakTops);
}

TEST(BuildChip, MatchesDesignPoint)
{
    DesignPoint dp;
    dp.tuLength = 32;
    dp.tuPerCore = 2;
    dp.tx = 1;
    dp.ty = 2;
    ChipModel chip = buildChip(datacenterBase(), dp);
    EXPECT_NEAR(chip.peakTops(),
                2.0 * 2.0 * 2.0 * 32 * 32 * 700e6 / 1e12, 1e-9);
    EXPECT_EQ(dp.str(), "(32,2,1,2)");
}

} // namespace
} // namespace neurometer
