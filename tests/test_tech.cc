/**
 * @file
 * Tests of the technology-node model: tabulated anchors, interpolation,
 * monotone scaling across nodes, and supply-voltage overrides.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

TEST(TechNode, RejectsOutOfRangeNodes)
{
    EXPECT_THROW(TechNode::make(5.0), ConfigError);
    EXPECT_THROW(TechNode::make(90.0), ConfigError);
    EXPECT_NO_THROW(TechNode::make(7.0));
    EXPECT_NO_THROW(TechNode::make(65.0));
}

TEST(TechNode, PublishedSramCellAnchors)
{
    // Anchors from DESIGN.md Sec. 5 (published foundry values).
    EXPECT_NEAR(TechNode::make(65).sramCellUm2(), 0.525, 1e-9);
    EXPECT_NEAR(TechNode::make(28).sramCellUm2(), 0.127, 1e-9);
    EXPECT_NEAR(TechNode::make(16).sramCellUm2(), 0.074, 1e-9);
    EXPECT_NEAR(TechNode::make(7).sramCellUm2(), 0.027, 1e-9);
}

TEST(TechNode, DefaultVddMatchesValidationSetups)
{
    // TPU-v1 runs 0.86 V at 28 nm, TPU-v2 0.75 V at 16 nm, Eyeriss
    // 1.0 V at 65 nm — the node defaults must match those setups.
    EXPECT_NEAR(TechNode::make(28).vdd(), 0.86, 1e-9);
    EXPECT_NEAR(TechNode::make(16).vdd(), 0.75, 1e-9);
    EXPECT_NEAR(TechNode::make(65).vdd(), 1.00, 1e-9);
}

/** Parameterized sweep: all adjacent node pairs must scale monotonely. */
class TechScaling : public ::testing::TestWithParam<std::pair<double, double>>
{};

TEST_P(TechScaling, SmallerNodeIsSmallerFasterDenser)
{
    const auto [big_nm, small_nm] = GetParam();
    const TechNode big = TechNode::make(big_nm);
    const TechNode small = TechNode::make(small_nm);

    EXPECT_LT(small.nand2AreaUm2(), big.nand2AreaUm2());
    EXPECT_LT(small.sramCellUm2(), big.sramCellUm2());
    EXPECT_LT(small.dffAreaUm2(), big.dffAreaUm2());
    EXPECT_LT(small.fo4S(), big.fo4S());
    EXPECT_LT(small.nand2EnergyJ(), big.nand2EnergyJ());
    // Wires get worse per um as they shrink.
    EXPECT_GT(small.wire(WireLayer::Local).rOhmPerUm,
              big.wire(WireLayer::Local).rOhmPerUm);
}

INSTANTIATE_TEST_SUITE_P(
    AdjacentNodes, TechScaling,
    ::testing::Values(std::make_pair(65.0, 45.0),
                      std::make_pair(45.0, 28.0),
                      std::make_pair(28.0, 16.0),
                      std::make_pair(16.0, 12.0),
                      std::make_pair(12.0, 7.0)));

/** Interpolated nodes must land strictly between their brackets. */
class TechInterp : public ::testing::TestWithParam<double>
{};

TEST_P(TechInterp, InterpolationIsBracketed)
{
    const double node = GetParam();
    // Find bracket nodes from the published table.
    const double table[] = {65, 45, 28, 16, 12, 7};
    double hi = 65, lo = 7;
    for (size_t i = 0; i + 1 < std::size(table); ++i) {
        if (node < table[i] && node > table[i + 1]) {
            hi = table[i];
            lo = table[i + 1];
        }
    }
    const TechNode t = TechNode::make(node);
    const TechNode th = TechNode::make(hi);
    const TechNode tl = TechNode::make(lo);
    EXPECT_LT(t.nand2AreaUm2(), th.nand2AreaUm2());
    EXPECT_GT(t.nand2AreaUm2(), tl.nand2AreaUm2());
    EXPECT_LT(t.fo4S(), th.fo4S());
    EXPECT_GT(t.fo4S(), tl.fo4S());
    EXPECT_LT(t.sramCellUm2(), th.sramCellUm2());
    EXPECT_GT(t.sramCellUm2(), tl.sramCellUm2());
}

INSTANTIATE_TEST_SUITE_P(BetweenNodes, TechInterp,
                         ::testing::Values(55.0, 40.0, 32.0, 22.0, 20.0,
                                           14.0, 10.0));

TEST(TechNode, VddOverrideScalesEnergyQuadratically)
{
    const TechNode nominal = TechNode::make(28.0); // 0.86 V default
    const TechNode low = TechNode::make(28.0, 0.70);
    const double ratio = low.nand2EnergyJ() / nominal.nand2EnergyJ();
    EXPECT_NEAR(ratio, (0.70 / 0.86) * (0.70 / 0.86), 1e-9);
}

TEST(TechNode, LowerVddSlowsAndLeaksLess)
{
    const TechNode nominal = TechNode::make(28.0);
    const TechNode low = TechNode::make(28.0, 0.70);
    EXPECT_GT(low.fo4S(), nominal.fo4S());
    EXPECT_LT(low.nand2LeakW(), nominal.nand2LeakW());
    EXPECT_LT(low.sramCellLeakW(), nominal.sramCellLeakW());
}

TEST(TechNode, WireLayersOrderedByParasitics)
{
    const TechNode t = TechNode::make(28.0);
    // Resistance: local worst; capacitance roughly comparable but
    // monotone; pitch: global widest.
    EXPECT_GT(t.wire(WireLayer::Local).rOhmPerUm,
              t.wire(WireLayer::Intermediate).rOhmPerUm);
    EXPECT_GT(t.wire(WireLayer::Intermediate).rOhmPerUm,
              t.wire(WireLayer::Global).rOhmPerUm);
    EXPECT_LT(t.wire(WireLayer::Local).pitchUm,
              t.wire(WireLayer::Global).pitchUm);
}

TEST(TechNode, DerivedCellRelations)
{
    const TechNode t = TechNode::make(28.0);
    EXPECT_NEAR(t.dffAreaUm2() / t.nand2AreaUm2(), 4.5, 1e-9);
    EXPECT_GT(t.dffEnergyJ(), t.nand2EnergyJ());
    EXPECT_GT(t.dffDelayS(), 0.0);
    EXPECT_LT(t.edramCellUm2(), t.sramCellUm2());
}

TEST(TechNode, ExactTableNodesBypassInterpolation)
{
    // make() at a tabulated node must return exactly the table row.
    const TechNode t = TechNode::make(45.0);
    EXPECT_NEAR(t.sramCellUm2(), 0.299, 1e-12);
    EXPECT_NEAR(t.vdd(), 0.95, 1e-12);
}

} // namespace
} // namespace neurometer
