/**
 * @file
 * Cross-module integration tests: full pipelines from config through
 * chip assembly, performance simulation, and runtime power — plus the
 * design-choice invariants the ablation bench reports.
 */

#include <gtest/gtest.h>

#include "chip/optimizer.hh"
#include "common/units.hh"
#include "perf/tfsim.hh"
#include "sparse/roofline.hh"

namespace neurometer {
namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

TEST(Integration, VregOverheadGrowsWithTuCount)
{
    // The ablation behind the paper's N <= 4 cap: VReg share of core
    // power grows superlinearly with TUs per core.
    double prev_share = 0.0;
    for (int n : {1, 2, 4, 8}) {
        ChipConfig cfg = datacenterBase();
        cfg.tx = cfg.ty = 8;
        cfg.core.numTU = n;
        cfg.core.tu.rows = cfg.core.tu.cols = 4;
        ChipModel chip(cfg);
        const Breakdown &core = *chip.breakdown().find("core0");
        const double share = core.powerOfW("vector_regfile") /
                             core.total().power.total();
        EXPECT_GT(share, prev_share) << n;
        prev_share = share;
    }
    EXPECT_GT(prev_share, 0.2); // N=8 blows up (paper: 24.9%)
}

TEST(Integration, SharedVregPortsContainTheExplosion)
{
    ChipConfig cfg = datacenterBase();
    cfg.tx = cfg.ty = 8;
    cfg.core.numTU = 8;
    cfg.core.tu.rows = cfg.core.tu.cols = 4;
    ChipModel full(cfg);
    cfg.core.shareVregPorts = true;
    ChipModel shared(cfg);
    EXPECT_LT(shared.breakdown().find("core0")
                  ->areaOfUm2("vector_regfile"),
              full.breakdown().find("core0")
                  ->areaOfUm2("vector_regfile"));
}

TEST(Integration, EdramMemShrinksDieGrowsRefresh)
{
    ChipConfig sram_cfg =
        applyDesignPoint(datacenterBase(), {64, 2, 2, 4});
    ChipConfig edram_cfg = sram_cfg;
    edram_cfg.memCell = MemCellType::EDRAM;
    ChipModel s(sram_cfg), e(edram_cfg);
    EXPECT_LT(e.areaMm2(), s.areaMm2());
}

TEST(Integration, CacheModeMemCostsMoreThanScratchpad)
{
    ChipConfig spad = applyDesignPoint(datacenterBase(), {64, 2, 2, 4});
    ChipConfig cache = spad;
    cache.memCacheMode = true;
    ChipModel cs(spad), cc(cache);
    EXPECT_GT(cc.areaMm2(), cs.areaMm2());
    EXPECT_GT(cc.coreEnergies().memReadPerByteJ,
              cs.coreEnergies().memReadPerByteJ);
}

TEST(Integration, ExplicitNocTopologiesAssemble)
{
    for (NocTopology topo :
         {NocTopology::Bus, NocTopology::Ring, NocTopology::Mesh2D,
          NocTopology::HTree}) {
        ChipConfig cfg = applyDesignPoint(datacenterBase(),
                                          {16, 2, 2, 4});
        cfg.autoNocTopology = false;
        cfg.nocTopology = topo;
        ChipModel chip(cfg);
        EXPECT_GT(chip.breakdown().areaOfUm2("noc"), 0.0)
            << nocTopologyName(topo);
    }
}

TEST(Integration, NodeScalingShrinksTheSameArchitecture)
{
    ChipConfig cfg = applyDesignPoint(datacenterBase(), {32, 2, 2, 2});
    ChipModel c28(cfg);
    cfg.nodeNm = 16.0;
    ChipModel c16(cfg);
    EXPECT_LT(c16.areaMm2(), c28.areaMm2());
    EXPECT_LT(c16.tdpW(), c28.tdpW());
    EXPECT_DOUBLE_EQ(c16.peakTops(), c28.peakTops());
}

TEST(Integration, ClockSolveThenSimulate)
{
    // The paper's default flow: give a TOPS target, get a clock, then
    // run the performance simulation on the resulting chip.
    ChipConfig cfg = applyDesignPoint(datacenterBase(), {64, 2, 2, 4});
    const double freq = solveClockForTops(cfg, 46.0);
    cfg.freqHz = freq;
    ChipModel chip(cfg);
    EXPECT_NEAR(chip.peakTops(), 46.0, 1e-6);
    TfSim sim(chip);
    const SimResult r = sim.run(resnet50(), {8, true});
    EXPECT_GT(r.achievedTops, 0.0);
    EXPECT_LE(r.achievedTops, chip.peakTops());
}

TEST(Integration, RuntimePowerConsistentBetweenSimAndChip)
{
    ChipModel chip = buildChip(datacenterBase(), {64, 2, 2, 4});
    TfSim sim(chip);
    const SimResult r = sim.run(inceptionV3(), {16, true});
    const Power direct = chip.runtimePower(r.stats);
    EXPECT_DOUBLE_EQ(direct.total(), r.runtimePower.total());
}

TEST(Integration, SparsityStudyEndToEnd)
{
    // Build the Sec. IV machine from a design point and confirm the
    // whole sparse pipeline (generator -> CSR -> roofline -> power)
    // produces the paper's qualitative result.
    ChipModel tu8 = buildChip(datacenterBase(), {8, 4, 4, 8});
    const SparseRoofline roofline(tu8, SkipScheme::TensorBlock, 8);
    SparseGenConfig g;
    g.rows = g.cols = 1024;
    g.sparsity = 0.95;
    const SparseMatrix m(g);
    const SparseRunResult r =
        roofline.eval(SpmvProblem{1024, 1024, 32}, m);
    EXPECT_GT(r.energyEfficiencyGain, 1.5);
    EXPECT_LT(r.tSparseS, r.tDenseS);
    EXPECT_LT(r.sparseP.total(), r.denseP.total() * 1.05);
}

TEST(Integration, WhiteSpaceQuadraticallyHurtsTco)
{
    ChipConfig lean = applyDesignPoint(datacenterBase(), {64, 2, 2, 4});
    lean.whiteSpaceFraction = 0.0;
    ChipConfig fat = lean;
    fat.whiteSpaceFraction = 0.30;
    ChipModel cl(lean), cf(fat);
    const double area_ratio = cf.areaMm2() / cl.areaMm2();
    const double tco_ratio = cl.peakTopsPerTco() / cf.peakTopsPerTco();
    EXPECT_NEAR(tco_ratio, area_ratio * area_ratio, 0.05 * tco_ratio);
}

TEST(Integration, EyerissStyleEdgeChipAssembles)
{
    // Mobile/edge corner: multicast TU with per-cell spads at 65 nm.
    ChipConfig cfg;
    cfg.nodeNm = 65.0;
    cfg.freqHz = 200e6;
    cfg.tx = cfg.ty = 1;
    cfg.core.numTU = 1;
    cfg.core.tu.rows = 12;
    cfg.core.tu.cols = 14;
    cfg.core.tu.mulType = DataType::Int16;
    cfg.core.tu.interconnect = TuInterconnect::Multicast;
    cfg.core.tu.perCellSramBytes = 448.0;
    cfg.core.hasScalarUnit = false;
    cfg.totalMemBytes = 108.0 * 1024.0;
    cfg.offchipBwBytesPerS = 1e9;
    cfg.dram = DramKind::DDR3;
    cfg.pcieLanes = 0;
    ChipModel chip(cfg);
    EXPECT_LT(chip.areaMm2(), 40.0);
    EXPECT_LT(chip.tdpW(), 2.0);
}

} // namespace
} // namespace neurometer
