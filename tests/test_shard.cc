/**
 * @file
 * Sharded-sweep and coordinator tests: the stable hash and backoff
 * primitives, deterministic i-of-N shard partitioning (axis-order
 * independent), the byte-stable checkpoint merge with its edge cases
 * (overlap, ok-beats-failed, last-writer-wins, torn tails, empty
 * shards), the fault-tolerant lease coordinator (grants, heartbeats,
 * expiry, reassignment, idempotent reports), and the headline
 * property end to end — a coordinated sweep with an abandoned worker
 * still produces output byte-identical to a single-process run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chip/config.hh"
#include "chip/optimizer.hh"
#include "common/backoff.hh"
#include "common/error.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/units.hh"
#include "explore/cancel.hh"
#include "explore/checkpoint.hh"
#include "explore/eval_cache.hh"
#include "explore/export.hh"
#include "explore/shard.hh"
#include "explore/sweep.hh"
#include "neurometer/api.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "serve/coordinator.hh"
#include "serve/net.hh"
#include "serve/server.hh"
#include "serve/worker.hh"

namespace neurometer {
namespace {

ChipConfig
smallBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 8.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    return cfg;
}

/** A 6-point grid, cheap enough to sweep repeatedly. */
SweepGrid
sixPoints()
{
    SweepGrid g;
    g.tuLengths = {8, 16, 32};
    g.tuPerCore = {1};
    g.coreGrids = {{1, 1}, {2, 1}};
    return g;
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::string s((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
    return s;
}

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

/** Self-deleting temp path under the test temp dir. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string &tag)
        : path(testing::TempDir() + "shard_" + tag)
    {
        std::remove(path.c_str());
    }
    ~TempFile() { std::remove(path.c_str()); }
};

/** All configKey()s of `grid` over `base`, enumeration order. */
std::vector<std::string>
gridKeys(const SweepGrid &grid, const ChipConfig &base)
{
    const GridExpander x(grid, base);
    std::vector<std::string> keys;
    for (std::size_t k = 0; k < x.size(); ++k)
        keys.push_back(configKey(x.at(k).config));
    return keys;
}

CheckpointEntry
okEntry(const std::string &key, double tops)
{
    CheckpointEntry e;
    e.key = key;
    e.metrics.buildOk = true;
    e.metrics.peakTops = tops;
    return e;
}

CheckpointEntry
failedEntry(const std::string &key)
{
    CheckpointEntry e;
    e.key = key;
    e.failed = true;
    e.error = {ErrorCategory::Model, "test.site", "injected boom"};
    return e;
}

/** Write a well-formed shard checkpoint file holding `entries`. */
void
writeShardFile(const std::string &path, const std::string &baseKey,
               const std::vector<CheckpointEntry> &entries)
{
    SweepCheckpoint ck(path, baseKey, 1);
    ck.seed(entries);
    ck.flush();
}

// ---------------------------------------------------------------------
// stableHash64

TEST(StableHash, DeterministicAcrossCallsAndSpread)
{
    static_assert(stableHash64("a") != stableHash64("b"),
                  "stableHash64 must be usable at compile time");
    EXPECT_EQ(stableHash64("neurometer"), stableHash64("neurometer"));
    EXPECT_NE(stableHash64(""), stableHash64(" "));

    // Near-identical keys must still spread across a small modulus:
    // with 64 keys differing in one digit, no 4-way bucket stays empty.
    std::set<std::uint64_t> buckets;
    for (int i = 0; i < 64; ++i)
        buckets.insert(stableHash64("key" + std::to_string(i)) % 4);
    EXPECT_EQ(buckets.size(), 4u);
}

// ---------------------------------------------------------------------
// Backoff

TEST(Backoff, NoJitterScheduleIsExactBoundedDoubling)
{
    Backoff b({.initialS = 0.05,
               .maxS = 2.0,
               .multiplier = 2.0,
               .jitter = 0.0,
               .seed = 0});
    const std::vector<double> want = {0.05, 0.1, 0.2, 0.4,
                                      0.8,  1.6, 2.0, 2.0};
    for (const double w : want)
        EXPECT_DOUBLE_EQ(b.nextS(), w);
    EXPECT_EQ(b.attempts(), want.size());
}

TEST(Backoff, JitterIsBoundedAndDeterministicPerSeed)
{
    Backoff::Options opts;
    opts.seed = 42;
    Backoff a(opts), b(opts);
    Backoff other([] {
        Backoff::Options o;
        o.seed = 43;
        return o;
    }());

    bool differs = false;
    double nominal = opts.initialS;
    for (int i = 0; i < 8; ++i) {
        const double da = a.nextS();
        const double db = b.nextS();
        const double dc = other.nextS();
        EXPECT_DOUBLE_EQ(da, db); // same seed: identical schedule
        differs = differs || da != dc;
        EXPECT_GE(da, nominal * (1.0 - opts.jitter));
        EXPECT_LE(da, nominal * (1.0 + opts.jitter));
        if (nominal < opts.maxS)
            nominal = std::min(nominal * opts.multiplier, opts.maxS);
    }
    EXPECT_TRUE(differs); // different seeds decorrelate
}

TEST(Backoff, ResetReplaysTheIdenticalSchedule)
{
    Backoff::Options opts;
    opts.seed = 7;
    Backoff b(opts);
    std::vector<double> first;
    for (int i = 0; i < 5; ++i)
        first.push_back(b.nextS());
    b.reset();
    EXPECT_EQ(b.attempts(), 0u);
    for (const double w : first)
        EXPECT_DOUBLE_EQ(b.nextS(), w);
}

// ---------------------------------------------------------------------
// ShardSpec

TEST(ShardSpec, ParseRoundTripsThroughStr)
{
    const ShardSpec a = ShardSpec::parse("0/1");
    EXPECT_EQ(a, (ShardSpec{0, 1}));
    EXPECT_FALSE(a.active());

    const ShardSpec b = ShardSpec::parse("2/8");
    EXPECT_EQ(b, (ShardSpec{2, 8}));
    EXPECT_TRUE(b.active());
    EXPECT_EQ(ShardSpec::parse(b.str()), b);
}

TEST(ShardSpec, ParseRejectsMalformedSpecs)
{
    for (const char *bad : {"", "3", "/4", "3/", "4/4", "5/4", "a/4",
                            "1/x", "1/0", "1//2"})
        EXPECT_THROW(ShardSpec::parse(bad), ConfigError) << bad;
}

TEST(ShardSpec, InactiveSpecOwnsEveryKey)
{
    const ShardSpec whole; // 0/1
    EXPECT_TRUE(whole.owns(""));
    EXPECT_TRUE(whole.owns("anything at all"));
}

TEST(ShardSpec, EveryKeyIsOwnedByExactlyOneShard)
{
    const std::vector<std::string> keys =
        gridKeys(sixPoints(), smallBase());
    ASSERT_EQ(keys.size(), 6u);
    for (const std::size_t n : {2u, 3u, 5u}) {
        for (const std::string &key : keys) {
            std::size_t owners = 0;
            for (std::size_t i = 0; i < n; ++i)
                owners += ShardSpec{i, n}.owns(key) ? 1 : 0;
            EXPECT_EQ(owners, 1u)
                << key << " with " << n << " shards";
        }
    }
}

TEST(ShardSpec, OwnershipIsIndependentOfAxisOrder)
{
    // The same point set spelled with axes in two different orders
    // enumerates differently, but shard membership is keyed on the
    // resolved config — the per-shard key sets must match exactly.
    const ChipConfig base = smallBase();
    SweepGrid a, b;
    a.axis("core.tu.rows", {8, 16}).axis("core.numTU", {1, 2});
    b.axis("core.numTU", {1, 2}).axis("core.tu.rows", {8, 16});

    const std::vector<std::string> ka = gridKeys(a, base);
    const std::vector<std::string> kb = gridKeys(b, base);
    ASSERT_EQ(ka.size(), kb.size());
    EXPECT_NE(ka, kb); // genuinely different enumeration order
    for (std::size_t i = 0; i < 3; ++i) {
        const ShardSpec shard{i, 3};
        std::set<std::string> owned_a, owned_b;
        for (const std::string &k : ka)
            if (shard.owns(k))
                owned_a.insert(k);
        for (const std::string &k : kb)
            if (shard.owns(k))
                owned_b.insert(k);
        EXPECT_EQ(owned_a, owned_b) << "shard " << shard.str();
    }
}

// ---------------------------------------------------------------------
// Sharded SweepEngine runs

TEST(ShardedSweep, ShardsPartitionTheGridExactly)
{
    const ChipConfig base = smallBase();
    const SweepGrid grid = sixPoints();

    SweepOptions full_opts;
    full_opts.threads = 1;
    SweepEngine full(base, full_opts);
    const std::vector<EvalRecord> all = full.run(grid);
    ASSERT_EQ(all.size(), 6u);

    std::size_t covered = 0, off = 0;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < 3; ++i) {
        SweepOptions opts;
        opts.threads = 1;
        opts.shardIndex = i;
        opts.shardCount = 3;
        SweepEngine eng(base, opts);
        const std::vector<EvalRecord> recs = eng.run(grid);
        const SweepRunStats &stats = eng.lastRun();
        EXPECT_EQ(stats.total, 6u);
        EXPECT_EQ(stats.offShard, 6u - recs.size());
        EXPECT_EQ(stats.evaluated, recs.size());
        covered += recs.size();
        off += stats.offShard;
        for (const EvalRecord &r : recs)
            EXPECT_TRUE(seen.insert(pointLabel(r)).second)
                << "point evaluated by two shards: " << pointLabel(r);
    }
    EXPECT_EQ(covered, 6u); // disjoint and complete
    EXPECT_EQ(off, 12u);    // each shard skips the other two thirds
}

TEST(ShardedSweep, MergedShardsMatchSingleProcessByteForByte)
{
    const ChipConfig base = smallBase();
    const SweepGrid grid = sixPoints();
    const std::string base_key = configKey(base);

    SweepOptions ref_opts;
    ref_opts.threads = 1;
    SweepEngine ref(base, ref_opts);
    const std::vector<EvalRecord> want = ref.run(grid);
    const std::string want_csv = toCsv(want);
    const std::string want_json = toJson(want);

    std::vector<std::string> shard_files;
    std::vector<std::unique_ptr<TempFile>> tmp;
    for (std::size_t i = 0; i < 3; ++i) {
        tmp.push_back(std::make_unique<TempFile>(
            "merge_shard" + std::to_string(i) + ".jsonl"));
        SweepOptions opts;
        opts.threads = 1;
        opts.shardIndex = i;
        opts.shardCount = 3;
        opts.checkpointPath = tmp.back()->path;
        opts.checkpointEveryN = 1;
        SweepEngine eng(base, opts);
        eng.run(grid);
        shard_files.push_back(tmp.back()->path);
    }

    MergeStats stats;
    const std::vector<CheckpointEntry> entries =
        mergeCheckpoints(shard_files, base_key, &stats);
    EXPECT_EQ(stats.files, 3u);
    EXPECT_EQ(stats.rows, 6u);
    EXPECT_EQ(stats.unique, 6u);
    EXPECT_EQ(stats.duplicates, 0u);

    const AssembledRecords out =
        assembleRecords(grid, base, entries);
    EXPECT_EQ(out.missingCount, 0u);
    EXPECT_EQ(toCsv(out.records), want_csv);
    EXPECT_EQ(toJson(out.records), want_json);
}

// ---------------------------------------------------------------------
// Merge edge cases

TEST(Merge, OverlappingShardsDeduplicateToTheSameBytes)
{
    const ChipConfig base = smallBase();
    const SweepGrid grid = sixPoints();
    const std::string base_key = configKey(base);

    // One full-coverage checkpoint plus a 2-way sharding of the same
    // grid: every point appears at least twice across the three files.
    TempFile full("overlap_full.jsonl");
    TempFile s0("overlap_s0.jsonl"), s1("overlap_s1.jsonl");
    std::string want_csv;
    {
        SweepOptions opts;
        opts.threads = 1;
        opts.checkpointPath = full.path;
        opts.checkpointEveryN = 1;
        SweepEngine eng(base, opts);
        want_csv = toCsv(eng.run(grid));
    }
    for (std::size_t i = 0; i < 2; ++i) {
        SweepOptions opts;
        opts.threads = 1;
        opts.shardIndex = i;
        opts.shardCount = 2;
        opts.checkpointPath = i == 0 ? s0.path : s1.path;
        opts.checkpointEveryN = 1;
        SweepEngine eng(base, opts);
        eng.run(grid);
    }

    MergeStats stats;
    const std::vector<CheckpointEntry> entries = mergeCheckpoints(
        {full.path, s0.path, s1.path}, base_key, &stats);
    EXPECT_EQ(stats.rows, 12u);
    EXPECT_EQ(stats.unique, 6u);
    EXPECT_EQ(stats.duplicates, 6u);

    const AssembledRecords out = assembleRecords(grid, base, entries);
    EXPECT_EQ(out.missingCount, 0u);
    EXPECT_EQ(toCsv(out.records), want_csv);
}

TEST(Merge, OkBeatsFailedRegardlessOfFileOrder)
{
    TempFile failed_file("conflict_failed.jsonl");
    TempFile ok_file("conflict_ok.jsonl");
    writeShardFile(failed_file.path, "bk", {failedEntry("p1")});
    writeShardFile(ok_file.path, "bk", {okEntry("p1", 3.5)});

    // failed first, ok later: the ok row supersedes.
    MergeStats stats;
    std::vector<CheckpointEntry> merged = mergeCheckpoints(
        {failed_file.path, ok_file.path}, "bk", &stats);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_FALSE(merged[0].failed);
    EXPECT_EQ(merged[0].metrics.peakTops, 3.5);
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.conflictsResolvedToOk, 1u);

    // ok first, failed later: the failed row must NOT displace it.
    merged = mergeCheckpoints({ok_file.path, failed_file.path}, "bk",
                              &stats);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_FALSE(merged[0].failed);
    EXPECT_EQ(merged[0].metrics.peakTops, 3.5);
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.conflictsResolvedToOk, 0u);
}

TEST(Merge, EqualStatusResolvesLastWriterWins)
{
    TempFile a("lww_a.jsonl"), b("lww_b.jsonl");
    writeShardFile(a.path, "bk", {okEntry("p1", 1.0), okEntry("p2", 9.0)});
    writeShardFile(b.path, "bk", {okEntry("p1", 2.0)});

    const std::vector<CheckpointEntry> merged =
        mergeCheckpoints({a.path, b.path}, "bk", nullptr);
    ASSERT_EQ(merged.size(), 2u);
    // First-appearance order is preserved; the later row's value wins.
    EXPECT_EQ(merged[0].key, "p1");
    EXPECT_EQ(merged[0].metrics.peakTops, 2.0);
    EXPECT_EQ(merged[1].key, "p2");
    EXPECT_EQ(merged[1].metrics.peakTops, 9.0);
}

TEST(Merge, TornTailOnlyShardContributesNothing)
{
    // A shard killed mid-write leaves a header plus a torn partial
    // line (no trailing newline). It must load as empty and leave the
    // merge of the healthy shards untouched.
    TempFile healthy("torn_healthy.jsonl");
    TempFile torn("torn_tail.jsonl");
    writeShardFile(healthy.path, "bk", {okEntry("p1", 1.0)});

    writeShardFile(torn.path, "bk", {});
    std::string torn_text = readFile(torn.path);
    torn_text += checkpointEntryLine(okEntry("p2", 2.0)).substr(0, 17);
    {
        std::ofstream f(torn.path, std::ios::binary | std::ios::trunc);
        f << torn_text; // no trailing newline: a torn tail
    }

    MergeStats stats;
    const std::vector<CheckpointEntry> merged = mergeCheckpoints(
        {torn.path, healthy.path}, "bk", &stats);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].key, "p1");
    EXPECT_EQ(stats.rows, 1u);
    EXPECT_EQ(stats.files, 2u);
}

TEST(Merge, EmptyAndMissingShardsAreIdentity)
{
    TempFile full("identity_full.jsonl");
    TempFile empty("identity_empty.jsonl");
    writeShardFile(full.path, "bk",
                   {okEntry("p1", 1.0), okEntry("p2", 2.0)});
    writeShardFile(empty.path, "bk", {}); // header-only: never started
    const std::string never_written =
        testing::TempDir() + "shard_identity_nonexistent.jsonl";
    ASSERT_FALSE(fileExists(never_written));

    const std::vector<CheckpointEntry> alone =
        mergeCheckpoints({full.path}, "bk", nullptr);
    const std::vector<CheckpointEntry> padded = mergeCheckpoints(
        {empty.path, full.path, never_written}, "bk", nullptr);
    EXPECT_EQ(alone, padded);

    // Merging only empties yields no entries at all.
    EXPECT_TRUE(
        mergeCheckpoints({empty.path, never_written}, "bk", nullptr)
            .empty());
}

TEST(Merge, RefusesShardsOfADifferentBaseConfig)
{
    TempFile ours("base_ours.jsonl");
    TempFile theirs("base_theirs.jsonl");
    writeShardFile(ours.path, "bk", {okEntry("p1", 1.0)});
    writeShardFile(theirs.path, "other-chip", {okEntry("p2", 2.0)});
    EXPECT_THROW(
        mergeCheckpoints({ours.path, theirs.path}, "bk", nullptr),
        ConfigError);
}

TEST(Assemble, UncoveredPointsAreReportedNotFabricated)
{
    const ChipConfig base = smallBase();
    const SweepGrid grid = sixPoints();
    const AssembledRecords out = assembleRecords(grid, base, {});
    EXPECT_TRUE(out.records.empty());
    EXPECT_EQ(out.missingCount, 6u);
    ASSERT_EQ(out.missing.size(), 6u);
    EXPECT_EQ(out.missing[0].gridIndex, 0u);
    EXPECT_FALSE(out.missing[0].key.empty());
}

// ---------------------------------------------------------------------
// Coordinator

using serve::CoordinateOptions;
using serve::Coordinator;

/** Manually advanced steady clock for deterministic expiry tests. */
struct FakeClock
{
    std::shared_ptr<Coordinator::TimePoint> now =
        std::make_shared<Coordinator::TimePoint>(
            std::chrono::steady_clock::now());

    Coordinator::Clock
    fn() const
    {
        auto p = now;
        return [p] { return *p; };
    }

    void
    advance(double seconds)
    {
        *now += std::chrono::nanoseconds(
            std::int64_t(seconds * 1e9));
    }
};

CoordinateOptions
coordOpts(const std::vector<NamedAxis> &axes)
{
    CoordinateOptions opts;
    opts.enabled = true;
    opts.configText = smallBase().toString();
    opts.axes = axes;
    opts.leaseTimeoutS = 10.0;
    return opts;
}

/** Evaluate grid index `k` into a wire row, the way a worker does. */
json::Value
rowFor(const GridExpander &x, std::size_t k)
{
    CheckpointEntry e;
    e.key = configKey(x.at(k).config);
    e.metrics = measurePoint(x.at(k).config);
    json::Value row = json::Value::object_();
    row.set("index", json::Value::number_(double(k)))
        .set("entry", json::Value::string_(checkpointEntryLine(e)));
    return row;
}

TEST(Coordinator, JobDescribesTheGridAndCadence)
{
    CoordinateOptions opts =
        coordOpts({{"core.numTU", {"1", "2"}}});
    opts.heartbeatS = 0.0; // default: timeout / 3
    const Coordinator coord(opts);
    EXPECT_EQ(coord.totalPoints(), 2u);

    const json::Value job = coord.job();
    EXPECT_EQ(job.find("config")->asString(), opts.configText);
    EXPECT_EQ(job.find("points")->asNumber(), 2.0);
    EXPECT_EQ(job.find("lease_timeout_s")->asNumber(), 10.0);
    EXPECT_NEAR(job.find("heartbeat_s")->asNumber(), 10.0 / 3.0, 1e-9);
    const json::Value *axes = job.find("axes");
    ASSERT_TRUE(axes != nullptr && axes->isArray());
    ASSERT_EQ(axes->items.size(), 1u);
    EXPECT_EQ(axes->items[0].find("path")->asString(), "core.numTU");
}

TEST(Coordinator, RejectsBadOptionsBeforeStarting)
{
    CoordinateOptions bad_timeout =
        coordOpts({{"core.numTU", {"1"}}});
    bad_timeout.leaseTimeoutS = 0.0;
    EXPECT_THROW(Coordinator{bad_timeout}, ConfigError);

    EXPECT_THROW(Coordinator{coordOpts({{"core.bogus", {"1"}}})},
                 ConfigError);
}

TEST(Coordinator, LeaseReportFinalizeIsByteIdenticalToDirectSweep)
{
    const std::vector<NamedAxis> axes = {
        {"core.numTU", {"1", "2", "4"}}};
    const ChipConfig base = smallBase();
    const SweepGrid grid = sweepGridForConfig(base, axes);

    SweepOptions ref_opts;
    ref_opts.threads = 1;
    SweepEngine ref(base, ref_opts);
    const std::string want_csv = toCsv(ref.run(grid));

    TempFile out("coord_out.csv");
    TempFile manifest("coord_out.csv.manifest.json");
    CoordinateOptions opts = coordOpts(axes);
    opts.leaseSize = 2;
    opts.outPath = out.path;
    Coordinator coord(opts);
    const GridExpander x(grid, base);

    // Two workers split the grid 2 + 1; a third finds it all leased.
    const json::Value g1 = coord.lease("w1");
    const json::Value g2 = coord.lease("w2");
    ASSERT_TRUE(g1.find("indices") != nullptr);
    ASSERT_TRUE(g2.find("indices") != nullptr);
    EXPECT_EQ(g1.find("indices")->items.size(), 2u);
    EXPECT_EQ(g2.find("indices")->items.size(), 1u);
    const json::Value starving = coord.lease("w3");
    EXPECT_TRUE(starving.find("wait") != nullptr);
    EXPECT_GT(starving.find("retry_ms")->asNumber(), 0.0);

    for (const json::Value *grant : {&g1, &g2}) {
        json::Value rows = json::Value::array_();
        for (const json::Value &idx : grant->find("indices")->items)
            rows.push(rowFor(x, std::size_t(idx.asNumber())));
        const json::Value ack = coord.report(
            "w", std::uint64_t(grant->find("lease")->asNumber()), rows);
        EXPECT_EQ(ack.find("duplicates")->asNumber(), 0.0);
    }

    EXPECT_TRUE(coord.complete());
    EXPECT_EQ(coord.donePoints(), 3u);
    EXPECT_EQ(readFile(out.path), want_csv);
    EXPECT_TRUE(fileExists(manifest.path));

    // Once complete, further lease calls answer {done}.
    const json::Value done = coord.lease("w4");
    ASSERT_TRUE(done.find("done") != nullptr);
    EXPECT_TRUE(done.find("done")->asBool());
}

TEST(Coordinator, ExpiredLeaseRequeuesToFrontAndCountsReassignment)
{
    obs::clearEvents();
    const obs::Snapshot before = obs::snapshot();

    FakeClock clk;
    CoordinateOptions opts =
        coordOpts({{"core.numTU", {"1", "2", "4", "8"}}});
    opts.leaseSize = 2;
    opts.leaseTimeoutS = 5.0;
    Coordinator coord(opts, clk.fn());

    const json::Value g1 = coord.lease("doomed");
    ASSERT_TRUE(g1.find("indices") != nullptr);
    EXPECT_EQ(coord.expireStale(), 0u); // not yet due

    clk.advance(5.1);
    EXPECT_EQ(coord.expireStale(), 1u);
    EXPECT_EQ(coord.expireStale(), 0u); // idempotent

    // The survivor receives exactly the dead worker's points, in
    // ascending order, from the queue front.
    const json::Value g2 = coord.lease("survivor");
    ASSERT_TRUE(g2.find("indices") != nullptr);
    std::vector<double> got, want;
    for (const json::Value &v : g2.find("indices")->items)
        got.push_back(v.asNumber());
    for (const json::Value &v : g1.find("indices")->items)
        want.push_back(v.asNumber());
    EXPECT_EQ(got, want);

    const obs::Snapshot after = obs::snapshot();
    EXPECT_EQ(after.counter("coord.leases.expired") -
                  before.counter("coord.leases.expired"),
              1u);
    EXPECT_EQ(after.counter("coord.leases.reassigned") -
                  before.counter("coord.leases.reassigned"),
              1u);
    EXPECT_EQ(obs::eventsOfType("lease.expire").size(), 1u);
    EXPECT_EQ(obs::eventsOfType("lease.reassign").size(), 1u);
    EXPECT_EQ(obs::eventsOfType("lease.grant").size(), 2u);
}

TEST(Coordinator, HeartbeatExtendsTheLeaseDeadline)
{
    FakeClock clk;
    CoordinateOptions opts = coordOpts({{"core.numTU", {"1", "2"}}});
    opts.leaseTimeoutS = 5.0;
    Coordinator coord(opts, clk.fn());

    const json::Value grant = coord.lease("beater");
    const auto lease_id =
        std::uint64_t(grant.find("lease")->asNumber());

    clk.advance(4.0);
    EXPECT_TRUE(coord.heartbeat("beater", lease_id)
                    .find("ok")
                    ->asBool());
    clk.advance(4.0); // 8s since grant, 4s since renewal: still live
    EXPECT_EQ(coord.expireStale(), 0u);
    clk.advance(1.5); // 5.5s since renewal: dead
    EXPECT_EQ(coord.expireStale(), 1u);

    // A heartbeat for the expired lease tells the worker to abandon.
    const json::Value pong = coord.heartbeat("beater", lease_id);
    EXPECT_FALSE(pong.find("ok")->asBool());
    EXPECT_TRUE(pong.find("expired")->asBool());
}

TEST(Coordinator, DuplicateReportsAreIdempotentAndOkUpgradesFailed)
{
    const std::vector<NamedAxis> axes = {{"core.numTU", {"1", "2"}}};
    const ChipConfig base = smallBase();
    const SweepGrid grid = sweepGridForConfig(base, axes);
    const GridExpander x(grid, base);

    SweepOptions ref_opts;
    ref_opts.threads = 1;
    SweepEngine ref(base, ref_opts);
    const std::string want_csv = toCsv(ref.run(grid));

    FakeClock clk;
    TempFile out("coord_dup_out.csv");
    TempFile manifest("coord_dup_out.csv.manifest.json");
    CoordinateOptions opts = coordOpts(axes);
    opts.leaseSize = 2;
    opts.leaseTimeoutS = 1.0;
    opts.outPath = out.path;
    Coordinator coord(opts, clk.fn());

    // Worker 1 takes the whole grid, then stalls; its lease expires.
    const json::Value g1 = coord.lease("w1");
    const auto lease1 = std::uint64_t(g1.find("lease")->asNumber());
    clk.advance(1.5);
    ASSERT_EQ(coord.expireStale(), 1u);

    // Worker 2 re-runs point 0 but reports it as FAILED.
    const json::Value g2 = coord.lease("w2");
    const auto lease2 = std::uint64_t(g2.find("lease")->asNumber());
    json::Value failed_rows = json::Value::array_();
    {
        CheckpointEntry e = failedEntry(configKey(x.at(0).config));
        json::Value row = json::Value::object_();
        row.set("index", json::Value::number_(0.0))
            .set("entry",
                 json::Value::string_(checkpointEntryLine(e)));
        failed_rows.push(std::move(row));
    }
    json::Value ack = coord.report("w2", lease2, failed_rows);
    EXPECT_EQ(ack.find("done")->asNumber(), 1.0);
    EXPECT_EQ(ack.find("duplicates")->asNumber(), 0.0);

    // Worker 1's late report lands with a long-gone lease id: both
    // rows are accepted idempotently, and its OK row for point 0
    // upgrades the failed one already on file.
    json::Value late_rows = json::Value::array_();
    late_rows.push(rowFor(x, 0));
    late_rows.push(rowFor(x, 1));
    ack = coord.report("w1", lease1, late_rows);
    EXPECT_EQ(ack.find("done")->asNumber(), 2.0);
    EXPECT_EQ(ack.find("duplicates")->asNumber(), 1.0);
    EXPECT_TRUE(ack.find("complete")->asBool());

    // The upgrade means the final export is indistinguishable from a
    // sweep where nothing ever failed.
    EXPECT_TRUE(coord.complete());
    EXPECT_EQ(readFile(out.path), want_csv);
}

TEST(Coordinator, PartialReportReturnsUnfinishedPointsToTheQueue)
{
    const std::vector<NamedAxis> axes = {{"core.numTU", {"1", "2"}}};
    const ChipConfig base = smallBase();
    const GridExpander x(sweepGridForConfig(base, axes), base);

    CoordinateOptions opts = coordOpts(axes);
    opts.leaseSize = 2;
    Coordinator coord(opts);

    const json::Value g1 = coord.lease("quitter");
    ASSERT_EQ(g1.find("indices")->items.size(), 2u);

    // A cancelled worker reports only its first point.
    json::Value rows = json::Value::array_();
    rows.push(rowFor(x, std::size_t(
                            g1.find("indices")->items[0].asNumber())));
    coord.report("quitter",
                 std::uint64_t(g1.find("lease")->asNumber()), rows);

    // The unreported point is immediately grantable again.
    const json::Value g2 = coord.lease("finisher");
    ASSERT_TRUE(g2.find("indices") != nullptr);
    ASSERT_EQ(g2.find("indices")->items.size(), 1u);
    EXPECT_EQ(g2.find("indices")->items[0].asNumber(),
              g1.find("indices")->items[1].asNumber());
}

TEST(Coordinator, RejectsRowsWhoseKeyDoesNotMatchTheIndex)
{
    const std::vector<NamedAxis> axes = {{"core.numTU", {"1", "2"}}};
    const ChipConfig base = smallBase();
    const GridExpander x(sweepGridForConfig(base, axes), base);

    CoordinateOptions opts = coordOpts(axes);
    opts.leaseSize = 2;
    Coordinator coord(opts);
    const json::Value g = coord.lease("w");

    // Claim index 0 but carry point 1's key: the row evaluated the
    // wrong config and must be rejected loudly, not merged.
    CheckpointEntry e = okEntry(configKey(x.at(1).config), 1.0);
    json::Value rows = json::Value::array_();
    json::Value row = json::Value::object_();
    row.set("index", json::Value::number_(0.0))
        .set("entry", json::Value::string_(checkpointEntryLine(e)));
    rows.push(std::move(row));
    EXPECT_THROW(
        coord.report("w", std::uint64_t(g.find("lease")->asNumber()),
                     rows),
        ConfigError);
}

// ---------------------------------------------------------------------
// Server wiring (dispatchLine-level, no sockets)

TEST(ServeCoordinate, DispatchLineAnswersCoordinateMethods)
{
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.coordinate = coordOpts({{"core.numTU", {"1"}}});
    serve::Server server(opts);
    ASSERT_TRUE(server.coordinator() != nullptr);

    json::Value resp = json::parse(server.dispatchLine(
        R"({"method": "job", "id": 1, "params": {}})"));
    ASSERT_TRUE(resp.find("ok")->asBool())
        << server.dispatchLine(
               R"({"method": "job", "id": 1, "params": {}})");
    EXPECT_EQ(resp.find("result")->find("points")->asNumber(), 1.0);

    resp = json::parse(server.dispatchLine(
        R"({"method": "lease", "id": 2, "params": {"worker": "w1"}})"));
    ASSERT_TRUE(resp.find("ok")->asBool());
    const json::Value &grant = *resp.find("result");
    ASSERT_TRUE(grant.find("indices") != nullptr);

    // Heartbeat for the granted lease succeeds over the wire too.
    const std::string hb_req =
        R"({"method": "heartbeat", "id": 3, "params": {"worker": "w1", "lease": )" +
        json::number(grant.find("lease")->asNumber()) + "}}";
    resp = json::parse(server.dispatchLine(hb_req));
    ASSERT_TRUE(resp.find("ok")->asBool());
    EXPECT_TRUE(resp.find("result")->find("ok")->asBool());

    // /statusz carries the coordinator section.
    EXPECT_NE(server.statuszText().find("coordinator:"),
              std::string::npos);
}

TEST(ServeCoordinate, CoordinateMethodsErrorWithoutACoordinator)
{
    serve::ServeOptions opts;
    opts.threads = 1;
    serve::Server server(opts);
    ASSERT_TRUE(server.coordinator() == nullptr);
    const json::Value resp = json::parse(server.dispatchLine(
        R"({"method": "lease", "id": 1, "params": {"worker": "w"}})"));
    EXPECT_FALSE(resp.find("ok")->asBool());
}

// ---------------------------------------------------------------------
// connectLocalRetry

TEST(Net, ConnectLocalRetryConnectsWhenAListenerExists)
{
    serve::ListenSocket listener(0);
    const serve::Fd fd =
        serve::connectLocalRetry(listener.port(), 1000, 1);
    EXPECT_TRUE(fd.valid());
}

TEST(Net, ConnectLocalRetryExhaustsItsBudgetThenThrows)
{
    // Find a port that is free right now, then release it.
    std::uint16_t dead_port = 0;
    {
        serve::ListenSocket probe(0);
        dead_port = probe.port();
    }
    EXPECT_THROW(serve::connectLocalRetry(dead_port, 150, 1), IoError);
}

// ---------------------------------------------------------------------
// End to end: coordinator daemon + workers, one of which vanishes

TEST(CoordinatedSweep, SurvivesAnAbandonedWorkerByteForByte)
{
    obs::clearEvents();

    const std::vector<NamedAxis> axes = {
        {"core.numTU", {"1", "2"}}, {"core.tu.rows", {"8", "16"}}};
    const ChipConfig base = smallBase();
    const SweepGrid grid = sweepGridForConfig(base, axes);

    SweepOptions ref_opts;
    ref_opts.threads = 1;
    SweepEngine ref(base, ref_opts);
    const std::string want_csv = toCsv(ref.run(grid));

    TempFile out("e2e_out.csv");
    TempFile manifest("e2e_out.csv.manifest.json");
    TempFile ledger("e2e_ledger.jsonl");
    serve::ServeOptions sopts;
    sopts.threads = 2;
    sopts.pollIntervalMs = 10;
    sopts.coordinate = coordOpts(axes);
    sopts.coordinate.leaseSize = 1;
    sopts.coordinate.leaseTimeoutS = 0.4;
    sopts.coordinate.outPath = out.path;
    sopts.coordinate.checkpointPath = ledger.path;
    serve::Server server(sopts);
    server.start();

    // Worker 1 takes exactly one lease, evaluates it, and vanishes
    // without reporting — a SIGKILL stand-in. Its lease must expire
    // and its point reassign.
    serve::WorkerOptions w1;
    w1.port = server.port();
    w1.name = "doomed";
    w1.abandonAfterLeases = 1;
    EXPECT_EQ(serve::runWorker(w1), 0);
    ASSERT_EQ(obs::eventsOfType("lease.grant").size(), 1u);

    // Worker 2 drains the rest, idles while the dead lease runs out,
    // then picks up the reassigned point and completes the sweep.
    serve::WorkerOptions w2;
    w2.port = server.port();
    w2.name = "survivor";
    int rc2 = -1;
    std::thread t2([&] { rc2 = serve::runWorker(w2); });

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!server.coordinator()->complete() &&
           std::chrono::steady_clock::now() < deadline) {
        server.coordinator()->expireStale();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    t2.join();
    server.stop();

    ASSERT_TRUE(server.coordinator()->complete());
    EXPECT_EQ(rc2, 0);
    EXPECT_EQ(server.coordinator()->donePoints(), 4u);

    // The merged export is byte-identical to the single-process run,
    // and the checkpoint ledger is resume-compatible.
    EXPECT_EQ(readFile(out.path), want_csv);
    const AssembledRecords assembled = assembleRecords(
        grid, base,
        SweepCheckpoint::loadEntries(ledger.path, configKey(base)));
    EXPECT_EQ(assembled.missingCount, 0u);
    EXPECT_EQ(toCsv(assembled.records), want_csv);

    // Every expired lease was reassigned, and the flight recorder
    // tells the whole story.
    EXPECT_GE(obs::eventsOfType("lease.expire").size(), 1u);
    EXPECT_GE(obs::eventsOfType("lease.reassign").size(), 1u);
    EXPECT_EQ(obs::eventsOfType("coord.done").size(), 1u);
    EXPECT_TRUE(fileExists(manifest.path));
}

// ---------------------------------------------------------------------
// SIGTERM cancellation (last: the signal latch is process-wide)

TEST(Cancel, SigtermLatchesCancellationLikeSigint)
{
    CancelToken token;
    token.armSigint();
    EXPECT_FALSE(token.cancelled());
    std::raise(SIGTERM);
    EXPECT_TRUE(token.cancelled());
}

} // namespace
} // namespace neurometer
