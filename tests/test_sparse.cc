/**
 * @file
 * Sparse-module tests: generator statistics, tiled CSR encoding
 * (functional SpMV vs dense reference), and the Sec. IV roofline.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "chip/optimizer.hh"
#include "common/error.hh"
#include "common/json.hh"
#include "common/units.hh"
#include "neurometer/api.hh"
#include "sparse/csr.hh"
#include "sparse/roofline.hh"
#include "sparse/sparse_matrix.hh"

namespace neurometer {
namespace {

SparseGenConfig
gen(double sparsity, int n = 1024)
{
    SparseGenConfig g;
    g.rows = g.cols = n;
    g.sparsity = sparsity;
    return g;
}

TEST(SparseMatrixTest, AchievesTargetSparsity)
{
    for (double s : {0.0, 0.3, 0.6, 0.9}) {
        const SparseMatrix m(gen(s));
        EXPECT_NEAR(1.0 - m.nonZeroRatio(), s, 0.03) << s;
    }
}

TEST(SparseMatrixTest, DeterministicBySeed)
{
    const SparseMatrix a(gen(0.5)), b(gen(0.5));
    EXPECT_DOUBLE_EQ(a.nnz(), b.nnz());
    SparseGenConfig g = gen(0.5);
    g.seed = 123;
    const SparseMatrix c(g);
    EXPECT_NE(a.nnz(), c.nnz()); // overwhelmingly likely
}

TEST(SparseMatrixTest, SmallBlocksSkipMoreThanBigBlocks)
{
    const SparseMatrix m(gen(0.9));
    EXPECT_GE(m.zeroBlockFraction(8, 8), m.zeroBlockFraction(32, 32));
    EXPECT_GE(m.zeroBlockFraction(4, 4), m.zeroBlockFraction(8, 8));
}

TEST(SparseMatrixTest, KneeBehaviorAtHighSparsity)
{
    // Fig. 11's mechanism: 8x8 zero-block fraction is negligible at
    // 0.5 sparsity but substantial past 0.9; 32x32 stays negligible.
    const SparseMatrix mid(gen(0.5));
    const SparseMatrix high(gen(0.95));
    EXPECT_LT(mid.zeroBlockFraction(8, 8), 0.08);
    EXPECT_GT(high.zeroBlockFraction(8, 8), 0.25);
    EXPECT_LT(high.zeroBlockFraction(32, 32), 0.15);
}

TEST(SparseMatrixTest, VectorSkipMatchesRowBlocks)
{
    const SparseMatrix m(gen(0.9));
    EXPECT_DOUBLE_EQ(m.zeroVectorFraction(64),
                     m.zeroBlockFraction(1, 64));
}

TEST(SparseMatrixTest, RejectsBadConfig)
{
    SparseGenConfig g = gen(1.0);
    EXPECT_THROW(SparseMatrix m(g), ConfigError);
    g = gen(0.5);
    g.rows = 0;
    EXPECT_THROW(SparseMatrix m(g), ConfigError);
}

TEST(CsrTest, BetaInPaperRange)
{
    // Paper: beta in [2.0, 2.5] depending on sparsity/shape.
    for (double s : {0.5, 0.7, 0.9, 0.95}) {
        const SparseMatrix m(gen(s));
        const double beta = csrBeta(m);
        EXPECT_GE(beta, 1.9) << s;
        EXPECT_LE(beta, 2.6) << s;
    }
}

TEST(CsrTest, SizePartsAddUp)
{
    const SparseMatrix m(gen(0.8));
    const TiledCsrSize sz = tiledCsrSize(m);
    EXPECT_DOUBLE_EQ(sz.valueBytes, m.nnz());
    EXPECT_DOUBLE_EQ(sz.colIndexBytes, m.nnz());
    EXPECT_GT(sz.rowIndexBytes, 0.0);
    EXPECT_GT(sz.tileIndexBytes, 0.0);
    EXPECT_NEAR(sz.total(),
                sz.valueBytes + sz.colIndexBytes + sz.rowIndexBytes +
                    sz.tileIndexBytes,
                1e-9);
}

TEST(CsrTest, SpmvMatchesDenseReference)
{
    const SparseMatrix occ(gen(0.7, 128));
    const CsrMatrix a(occ);
    std::vector<float> x(128);
    for (int i = 0; i < 128; ++i)
        x[i] = 0.25f * float((i % 11) - 5);

    const std::vector<float> y = a.spmv(x);
    const std::vector<float> dense = a.toDense();
    for (int r = 0; r < 128; ++r) {
        float acc = 0.0f;
        for (int c = 0; c < 128; ++c)
            acc += dense[size_t(r) * 128 + c] * x[c];
        EXPECT_NEAR(y[r], acc, 1e-3) << r;
    }
}

TEST(CsrTest, NnzMatchesMask)
{
    const SparseMatrix occ(gen(0.6, 256));
    const CsrMatrix a(occ);
    EXPECT_DOUBLE_EQ(double(a.nnz()), occ.nnz());
    EXPECT_THROW(a.spmv(std::vector<float>(7)), ConfigError);
}

// ---- Roofline --------------------------------------------------------

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

class RooflineFixture : public ::testing::Test
{
  protected:
    ChipModel tu8 = buildChip(datacenterBase(), {8, 4, 4, 8});
    ChipModel tu32 = buildChip(datacenterBase(), {32, 4, 2, 2});
    SpmvProblem prob{2048, 2048, 32};

    SparseMatrix
    mat(double s) const
    {
        SparseGenConfig g;
        g.rows = g.cols = 2048;
        g.sparsity = s;
        return SparseMatrix(g);
    }
};

TEST_F(RooflineFixture, DenseBaselineHasUnitGain)
{
    const SparseRoofline r(tu32, SkipScheme::TensorBlock, 32);
    const SparseRunResult res = r.eval(prob, mat(0.0));
    // Dense-as-sparse pays the CSR overhead: gain < 1.
    EXPECT_LT(res.energyEfficiencyGain, 1.0);
    EXPECT_NEAR(res.y, 1.0, 1e-9);
}

TEST_F(RooflineFixture, GainCrossesUnityNearHalfSparsity)
{
    const SparseRoofline r(tu32, SkipScheme::TensorBlock, 32);
    EXPECT_LT(r.eval(prob, mat(0.3)).energyEfficiencyGain, 1.0);
    EXPECT_GT(r.eval(prob, mat(0.7)).energyEfficiencyGain, 1.0);
}

TEST_F(RooflineFixture, GainMonotoneInSparsity)
{
    const SparseRoofline r(tu8, SkipScheme::TensorBlock, 8);
    double prev = 0.0;
    for (double s : {0.0, 0.3, 0.6, 0.9, 0.95}) {
        const double g = r.eval(prob, mat(s)).energyEfficiencyGain;
        EXPECT_GT(g, prev) << s;
        prev = g;
    }
}

TEST_F(RooflineFixture, WimpySkipsMoreComputeAtHighSparsity)
{
    const SparseRoofline r8(tu8, SkipScheme::TensorBlock, 8);
    const SparseRoofline r32(tu32, SkipScheme::TensorBlock, 32);
    const SparseMatrix m = mat(0.95);
    const SparseRunResult a8 = r8.eval(prob, m);
    const SparseRunResult a32 = r32.eval(prob, m);
    EXPECT_LT(a8.y, a32.y);                    // more zero-skip
    EXPECT_GT(a8.energyEfficiencyGain,
              a32.energyEfficiencyGain);       // bigger gain (Fig. 11)
}

TEST_F(RooflineFixture, DenseTimeMatchesRooflineClosedForm)
{
    // t_d = max(C/F, (S_V + S_W)/B) exactly (paper Sec. IV).
    const SparseRoofline r(tu32, SkipScheme::TensorBlock, 32);
    const SparseRunResult res = r.eval(prob, mat(0.5));
    const double s_w = 2048.0 * 2048.0;
    const double s_v = (2048.0 + 2048.0) * 32.0;
    const double c_ops = 2.0 * 2048.0 * 2048.0 * 32.0;
    const double expect = std::max(
        c_ops / (tu32.peakTops() * 1e12), (s_v + s_w) / 700e9);
    EXPECT_NEAR(res.tDenseS, expect, 1e-12);
}

TEST_F(RooflineFixture, SimulateRendersEvalIntoTheUnifiedPipeline)
{
    // simulate() is eval() re-shaped into the dense simulator's
    // SimResult: the numbers must agree exactly with the underlying
    // roofline evaluation, and the layer table must carry the run.
    const SparseRoofline r(tu32, SkipScheme::TensorBlock, 32);
    const SparseMatrix m = mat(0.9);
    const SparseRunResult e = r.eval(prob, m);

    const SimResult sp = r.simulate(prob, m, /*sparse_run=*/true);
    EXPECT_EQ(sp.dataflow, "sparse");
    EXPECT_EQ(sp.batch, prob.k);
    EXPECT_EQ(sp.latencyS, e.tSparseS);
    EXPECT_EQ(sp.runtimePower.total(), e.sparseP.total());
    ASSERT_EQ(sp.layers.size(), 1u);
    EXPECT_EQ(sp.layers[0].name, "spmv");
    EXPECT_TRUE(sp.layers[0].tensorOp);
    EXPECT_EQ(sp.layers[0].cost.seconds, sp.latencyS);
    EXPECT_GT(sp.tuUtilization, 0.0);
    EXPECT_LE(sp.tuUtilization, 1.0);

    const SimResult dn = r.simulate(prob, m, /*sparse_run=*/false);
    EXPECT_EQ(dn.dataflow, "dense");
    EXPECT_EQ(dn.latencyS, e.tDenseS);
    EXPECT_EQ(dn.runtimePower.total(), e.denseP.total());
    // Dense run retires the full 2*m*n*k compute.
    const double c_ops = 2.0 * 2048.0 * 2048.0 * 32.0;
    EXPECT_DOUBLE_EQ(dn.achievedTops,
                     c_ops / e.tDenseS / units::tera);

    // The unified report renders it like any dense run.
    const std::string js = simResultJson(sp, /*include_layers=*/true);
    const json::Value v = json::parse(js);
    EXPECT_EQ(v.find("dataflow")->asString(), "sparse");
    EXPECT_EQ(v.find("layers")->items.size(), 1u);
}

TEST_F(RooflineFixture, RejectsUndersizedProblems)
{
    const SparseRoofline r(tu32, SkipScheme::TensorBlock, 32);
    SpmvProblem small{512, 512, 32};
    SparseGenConfig g;
    g.rows = g.cols = 512;
    g.sparsity = 0.5;
    const SparseMatrix m(g);
    EXPECT_THROW(r.eval(small, m), ConfigError);
}

} // namespace
} // namespace neurometer
