/**
 * @file
 * Explore-subsystem tests: thread-pool coverage and exception
 * propagation, cache keying and hit/miss accounting, parallel-vs-
 * serial sweep determinism, infeasibility-reason classification,
 * Pareto invariants, top-k ordering, and export shape.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "common/error.hh"
#include "common/units.hh"
#include "explore/eval_cache.hh"
#include "explore/export.hh"
#include "explore/pareto.hh"
#include "explore/sweep.hh"
#include "explore/thread_pool.hh"

namespace neurometer {
namespace {

ChipConfig
datacenterBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 32.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.mulType = DataType::Int8;
    cfg.core.tu.accType = DataType::Int32;
    return cfg;
}

SweepGrid
smallGrid()
{
    SweepGrid g;
    g.tuLengths = {8, 16, 32};
    g.tuPerCore = {1, 2};
    g.coreGrids = candidateGrids(16);
    return g;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> seen(n);
    pool.parallelFor(n, [&](std::size_t i) { seen[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(seen[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SerialModeRunsInOrderInline)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(100, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i); // strict 0..n-1: the reference path
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.parallelFor(1000,
                                      [](std::size_t i) {
                                          if (i == 37)
                                              throw ConfigError("boom");
                                      }),
                     ConfigError);
    }
}

TEST(ThreadPool, SubmitFutureRethrows)
{
    ThreadPool pool(2);
    auto fut =
        pool.submit([] { throw ModelError("worker exploded"); });
    EXPECT_THROW(fut.get(), ModelError);
}

TEST(ThreadPool, SerialRethrowsTheStrictlyFirstException)
{
    // The serial path runs 0..n-1 in order, so "lowest-indexed
    // thrower" degenerates to strictly-first: index 11 aborts the loop
    // before 23 ever runs.
    ThreadPool pool(1);
    std::vector<std::size_t> ran;
    try {
        pool.parallelFor(100, [&](std::size_t i) {
            ran.push_back(i);
            if (i == 11 || i == 23)
                throw ConfigError("thrower " + std::to_string(i));
        });
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_STREQ(e.what(), "config error: thrower 11");
    }
    EXPECT_EQ(ran.size(), 12u); // 0..11 inclusive, nothing after
}

TEST(ThreadPool, ParallelSingleThrowerAlwaysWinsDeterministically)
{
    // Exactly one iteration throws. Nothing else sets the abandon
    // flag, so that iteration always runs and the rethrown exception
    // is its — byte-identical across runs and thread counts.
    for (int trial = 0; trial < 10; ++trial) {
        ThreadPool pool(4);
        try {
            pool.parallelFor(256, [](std::size_t i) {
                if (i == 37)
                    throw ModelError("thrower 37");
            });
            FAIL() << "expected ModelError";
        } catch (const ModelError &e) {
            EXPECT_STREQ(e.what(), "model error: thrower 37");
        }
    }
}

TEST(ThreadPool, ParallelExceptionPickIsTheLowestIndexThatRan)
{
    // With many concurrent throwers the winner must be the lowest
    // *index* among the iterations that actually ran — not whichever
    // thread lost the race to report first. The body records every
    // index it was called with, so the contract is checkable exactly.
    for (int trial = 0; trial < 10; ++trial) {
        ThreadPool pool(4);
        std::mutex mu;
        std::set<std::size_t> ran;
        try {
            pool.parallelFor(64, [&](std::size_t i) {
                {
                    std::lock_guard<std::mutex> lk(mu);
                    ran.insert(i);
                }
                throw ModelError(std::to_string(i));
            });
            FAIL() << "expected ModelError";
        } catch (const ModelError &e) {
            ASSERT_FALSE(ran.empty());
            const std::string want =
                "model error: " + std::to_string(*ran.begin());
            EXPECT_EQ(std::string(e.what()), want);
        }
    }
}

TEST(ThreadPool, PoolIsFullyUsableAfterAThrowingParallelFor)
{
    // A throwing parallelFor must not deadlock, leak queued work into
    // later calls, or lose workers: the next call covers every index.
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.parallelFor(500,
                                      [](std::size_t i) {
                                          if (i % 7 == 3)
                                              throw ConfigError("boom");
                                      }),
                     ConfigError);
        constexpr std::size_t n = 2000;
        std::vector<std::atomic<int>> seen(n);
        pool.parallelFor(n,
                         [&](std::size_t i) { seen[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(seen[i].load(), 1) << "round " << round
                                         << " index " << i;
    }
}

TEST(ThreadPool, CancellationDrainsWithoutAnException)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        CancelToken cancel;
        std::atomic<std::size_t> ran{0};
        // Cancel mid-run: completed iterations stay completed, the
        // rest are skipped, and parallelFor returns normally.
        pool.parallelFor(
            10000,
            [&](std::size_t) {
                if (ran.fetch_add(1) + 1 == 50)
                    cancel.requestCancel();
            },
            &cancel);
        EXPECT_GE(ran.load(), 50u) << "threads=" << threads;
        EXPECT_LT(ran.load(), 10000u) << "threads=" << threads;
    }
}

TEST(EvalCacheKey, IdenticalConfigsShareAKey)
{
    EXPECT_EQ(configKey(datacenterBase()), configKey(datacenterBase()));
}

TEST(EvalCacheKey, EveryAxisChangesTheKey)
{
    const ChipConfig base = datacenterBase();
    std::set<std::string> keys{configKey(base)};
    auto expect_new = [&](ChipConfig cfg, const char *what) {
        EXPECT_TRUE(keys.insert(configKey(cfg)).second)
            << what << " did not change the cache key";
    };

    ChipConfig c = base;
    c.freqHz = 701e6;
    expect_new(c, "freqHz");
    c = base;
    c.tx = 2;
    expect_new(c, "tx");
    c = base;
    c.nodeNm = 16.0;
    expect_new(c, "nodeNm");
    c = base;
    c.core.tu.rows = 65;
    expect_new(c, "tu.rows");
    c = base;
    c.core.tu.mulType = DataType::BF16;
    expect_new(c, "mulType");
    c = base;
    c.totalMemBytes = 16.0 * units::mib;
    expect_new(c, "totalMemBytes");
    c = base;
    c.tdpActivity.mem = 0.91;
    expect_new(c, "activity factor");
    c = base;
    c.core.shareVregPorts = true;
    expect_new(c, "shareVregPorts");
}

TEST(EvalCache, CountsHitsAndMissesAndReturnsIdenticalRecords)
{
    EvalCache cache;
    const ChipConfig cfg =
        applyDesignPoint(datacenterBase(), {32, 2, 2, 2});
    const PointMetrics first = cache.evaluate(cfg);
    const PointMetrics second = cache.evaluate(cfg);
    EXPECT_EQ(first, second);
    EXPECT_TRUE(first.buildOk);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Sweep, GridSizeIsTheCrossProduct)
{
    SweepGrid g = smallGrid();
    EXPECT_EQ(g.size(), 3u * 2u * candidateGrids(16).size());
    g.clocksHz = {600e6, 700e6};
    EXPECT_EQ(g.size(), 3u * 2u * candidateGrids(16).size() * 2u);
    g.axis("core.vregEntries", {16, 32, 64});
    EXPECT_EQ(g.size(), 3u * 2u * candidateGrids(16).size() * 2u * 3u);
}

TEST(Sweep, NamedAxisSweepsAnySchemaField)
{
    SweepGrid g;
    g.tuLengths = {16};
    g.tuPerCore = {1};
    g.coreGrids = {{1, 1}};
    // No typed axis exists for activity factors — that's the point.
    g.axis("tdpActivity.mem", {0.2, 0.9});

    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(datacenterBase(), opts);
    const std::vector<EvalRecord> recs = engine.run(g);
    ASSERT_EQ(recs.size(), 2u);

    ASSERT_EQ(recs[0].named.size(), 1u);
    EXPECT_EQ(recs[0].named[0].first, "tdpActivity.mem");
    EXPECT_EQ(recs[0].named[0].second, "0.2");
    EXPECT_EQ(recs[1].named[0].second, "0.9");
    // A hotter Mem raises TDP; the axis really reached the model.
    EXPECT_LT(recs[0].metrics.tdpW, recs[1].metrics.tdpW);
}

TEST(Sweep, NamedAxisAppliesAfterTypedAxes)
{
    // Both the typed clock axis and a named freqHz axis address the
    // same field; the named one must win.
    SweepGrid g;
    g.tuLengths = {16};
    g.tuPerCore = {1};
    g.coreGrids = {{1, 1}};
    g.clocksHz = {600e6};
    g.axis("freqHz", {500e6});

    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(datacenterBase(), opts);
    const std::vector<EvalRecord> recs = engine.run(g);
    ASSERT_EQ(recs.size(), 1u);

    ChipConfig expect = applyDesignPoint(datacenterBase(), recs[0].point);
    expect.freqHz = 500e6;
    EXPECT_EQ(recs[0].metrics, measurePoint(expect));
}

TEST(Sweep, BadNamedAxesFailBeforeAnyEvaluation)
{
    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(datacenterBase(), opts);

    SweepGrid unknown;
    unknown.axis("core.bogus", {1});
    EXPECT_THROW(engine.run(unknown), ConfigError);

    SweepGrid bad_value;
    bad_value.axis("core.tu.mulType",
                   std::vector<std::string>{"int8", "int9"});
    EXPECT_THROW(engine.run(bad_value), ConfigError);

    SweepGrid empty_axis;
    empty_axis.namedAxes.push_back({"freqHz", {}});
    EXPECT_THROW(engine.run(empty_axis), ConfigError);

    EXPECT_EQ(engine.cache().size(), 0u) << "points were evaluated";
}

TEST(Sweep, ExpandNamedIsFirstAxisOutermost)
{
    SweepGrid g;
    g.axis("core.tu.rows", {8, 16}).axis("core.numTU", {1, 2});
    const std::vector<ChipConfig> pts =
        g.expandNamed(datacenterBase());
    ASSERT_EQ(pts.size(), 4u);
    const int want[4][2] = {{8, 1}, {8, 2}, {16, 1}, {16, 2}};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(pts[i].core.tu.rows, want[i][0]) << i;
        EXPECT_EQ(pts[i].core.numTU, want[i][1]) << i;
    }
}

TEST(Sweep, ExpandNamedWithNoAxesYieldsJustTheBase)
{
    // An axis-less grid is a 1-point space, not an empty one: the
    // cross product of zero axes is the base design itself.
    SweepGrid g;
    const std::vector<ChipConfig> pts =
        g.expandNamed(datacenterBase());
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].toString(), datacenterBase().toString());
}

TEST(Sweep, ExpandNamedSinglePointGrid)
{
    // Every axis a singleton: still exactly one point, with each
    // axis value applied on top of the base.
    SweepGrid g;
    g.axis("core.tu.rows", {32}).axis("freqHz", {800e6});
    const std::vector<ChipConfig> pts =
        g.expandNamed(datacenterBase());
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].core.tu.rows, 32);
    EXPECT_EQ(pts[0].freqHz, 800e6);
}

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    const SweepGrid grid = smallGrid();

    SweepOptions serial_opts;
    serial_opts.threads = 1;
    SweepEngine serial(datacenterBase(), serial_opts);
    const std::vector<EvalRecord> ref = serial.run(grid);

    SweepOptions par_opts;
    par_opts.threads = 4;
    SweepEngine parallel(datacenterBase(), par_opts);
    const std::vector<EvalRecord> got = parallel.run(grid);

    ASSERT_EQ(ref.size(), got.size());
    ASSERT_EQ(ref.size(), grid.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(ref[i], got[i]) << "record " << i;
}

TEST(Sweep, RepeatedSweepIsAllCacheHits)
{
    SweepOptions opts;
    opts.threads = 4;
    SweepEngine engine(datacenterBase(), opts);
    const SweepGrid grid = smallGrid();

    const std::vector<EvalRecord> first = engine.run(grid);
    const CacheStats cold = engine.cache().stats();
    EXPECT_EQ(cold.misses, grid.size());

    const std::vector<EvalRecord> second = engine.run(grid);
    const CacheStats warm = engine.cache().stats();
    EXPECT_EQ(warm.misses, cold.misses) << "re-sweep recomputed points";
    EXPECT_EQ(warm.hits, cold.hits + grid.size());
    EXPECT_EQ(first, second);
}

TEST(Sweep, ReportsWhyAPointIsInfeasible)
{
    const ChipConfig base = datacenterBase();
    SweepGrid one;
    one.tuLengths = {64};
    one.tuPerCore = {2};
    one.coreGrids = {{2, 2}};

    auto run_with = [&](DesignConstraints c) {
        SweepOptions opts;
        opts.threads = 1;
        opts.constraints = c;
        SweepEngine engine(base, opts);
        return engine.run(one).at(0);
    };

    EXPECT_EQ(run_with(DesignConstraints{}).why,
              Feasibility::Feasible);

    DesignConstraints tight_area;
    tight_area.areaBudgetMm2 = 10.0;
    EXPECT_EQ(run_with(tight_area).why, Feasibility::AreaOverBudget);

    DesignConstraints tight_power;
    tight_power.powerBudgetW = 1.0;
    EXPECT_EQ(run_with(tight_power).why, Feasibility::PowerOverBudget);

    DesignConstraints tight_tops;
    tight_tops.topsUpperBound = 1.0;
    EXPECT_EQ(run_with(tight_tops).why, Feasibility::TopsOverCap);

    // A 100 GHz clock is un-closable: build fails, metrics say why.
    SweepGrid fast = one;
    fast.clocksHz = {100e9};
    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(base, opts);
    const EvalRecord r = engine.run(fast).at(0);
    EXPECT_EQ(r.why, Feasibility::TimingInfeasible);
    EXPECT_FALSE(r.metrics.buildOk);
    EXPECT_FALSE(r.metrics.buildError.empty());
}

TEST(Sweep, MaximizeCoresMatchesTheUncachedOptimizer)
{
    const ChipConfig base = datacenterBase();
    const DesignConstraints c;
    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(base, opts);

    for (int x : {16, 64}) {
        const GridSearchResult direct = maximizeCores(base, x, 2, c);
        const GridSearchResult cached = engine.maximizeCores(x, 2, c);
        EXPECT_EQ(direct.feasible, cached.feasible);
        EXPECT_EQ(direct.point.tx, cached.point.tx);
        EXPECT_EQ(direct.point.ty, cached.point.ty);
        EXPECT_EQ(direct.peakTops, cached.peakTops);
        EXPECT_EQ(direct.areaMm2, cached.areaMm2);
        EXPECT_EQ(direct.why, cached.why);
    }
}

TEST(MaximizeCores, NamesTheBindingConstraintWhenNothingFits)
{
    const ChipConfig base = datacenterBase();
    DesignConstraints impossible;
    impossible.areaBudgetMm2 = 1.0; // even one core busts this
    const GridSearchResult r = maximizeCores(base, 64, 2, impossible);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.why, Feasibility::AreaOverBudget);
    EXPECT_STREQ(feasibilityStr(r.why), "area_over_budget");
}

TEST(Pareto, FrontierInvariantsHoldOnARealSweep)
{
    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(datacenterBase(), opts);
    const std::vector<EvalRecord> recs = engine.run(smallGrid());
    const std::vector<Objective> objs = defaultObjectives();
    const std::vector<std::size_t> frontier = paretoFrontier(recs, objs);
    ASSERT_FALSE(frontier.empty());

    const std::set<std::size_t> on(frontier.begin(), frontier.end());
    for (std::size_t i : frontier) {
        EXPECT_TRUE(recs[i].feasible());
        for (std::size_t j = 0; j < recs.size(); ++j) {
            if (j != i && recs[j].feasible()) {
                EXPECT_FALSE(dominates(recs[j], recs[i], objs))
                    << j << " dominates frontier point " << i;
            }
        }
    }
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (!recs[i].feasible() || on.count(i))
            continue;
        bool dominated = false;
        for (std::size_t j : frontier)
            dominated = dominated || dominates(recs[j], recs[i], objs);
        EXPECT_TRUE(dominated)
            << "excluded point " << i << " is not dominated";
    }
}

EvalRecord
fakeRecord(double tops, double w, double mm2)
{
    EvalRecord r;
    r.metrics.buildOk = true;
    r.metrics.peakTops = tops;
    r.metrics.tdpW = w;
    r.metrics.areaMm2 = mm2;
    r.why = Feasibility::Feasible;
    return r;
}

TEST(Pareto, HandBuiltCase)
{
    std::vector<EvalRecord> recs;
    recs.push_back(fakeRecord(10.0, 100.0, 400.0)); // on frontier
    recs.push_back(fakeRecord(10.0, 120.0, 400.0)); // dominated by 0
    recs.push_back(fakeRecord(5.0, 50.0, 200.0));   // on frontier
    recs.push_back(fakeRecord(20.0, 200.0, 500.0)); // on frontier
    recs.push_back(fakeRecord(4.0, 60.0, 250.0));   // dominated by 2
    recs.push_back(fakeRecord(99.0, 1.0, 1.0));     // infeasible
    recs.back().why = Feasibility::AreaOverBudget;

    const std::vector<std::size_t> f = paretoFrontier(recs);
    EXPECT_EQ(f, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(Pareto, TopKOrdersDescendingAndSkipsInfeasible)
{
    std::vector<EvalRecord> recs;
    recs.push_back(fakeRecord(1.0, 10.0, 100.0));
    recs.push_back(fakeRecord(3.0, 10.0, 100.0));
    recs.push_back(fakeRecord(2.0, 10.0, 100.0));
    recs.push_back(fakeRecord(9.0, 10.0, 100.0));
    recs.back().why = Feasibility::PowerOverBudget;

    const auto k = topK(
        recs,
        [](const EvalRecord &r) { return r.metrics.peakTops; }, 2);
    EXPECT_EQ(k, (std::vector<std::size_t>{1, 2}));
}

TEST(Pareto, DuplicateTuplesKeepOnlyTheLowestIndex)
{
    // Exactly-equal metric tuples dominate nothing, so without the
    // dedupe pass every copy would land on the frontier. Only the
    // lowest index of each tuple may survive — a stable tie-break.
    std::vector<EvalRecord> recs;
    recs.push_back(fakeRecord(10.0, 100.0, 400.0)); // frontier, kept
    recs.push_back(fakeRecord(10.0, 100.0, 400.0)); // duplicate of 0
    recs.push_back(fakeRecord(5.0, 50.0, 200.0));   // frontier, kept
    recs.push_back(fakeRecord(10.0, 100.0, 400.0)); // duplicate of 0
    recs.push_back(fakeRecord(5.0, 50.0, 200.0));   // duplicate of 2

    const std::vector<std::size_t> f = paretoFrontier(recs);
    EXPECT_EQ(f, (std::vector<std::size_t>{0, 2}));
}

TEST(Pareto, DegenerateInputs)
{
    // Empty in, empty out.
    EXPECT_TRUE(paretoFrontier({}).empty());

    // A single feasible point is its own frontier.
    std::vector<EvalRecord> one{fakeRecord(1.0, 1.0, 1.0)};
    EXPECT_EQ(paretoFrontier(one), (std::vector<std::size_t>{0}));

    // A single infeasible point yields an empty frontier.
    one[0].why = Feasibility::PowerOverBudget;
    EXPECT_TRUE(paretoFrontier(one).empty());

    // All points identical: the whole set collapses to index 0.
    std::vector<EvalRecord> same(4, fakeRecord(2.0, 3.0, 4.0));
    EXPECT_EQ(paretoFrontier(same), (std::vector<std::size_t>{0}));
}

TEST(Export, CsvAndJsonShape)
{
    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(datacenterBase(), opts);
    SweepGrid g;
    g.tuLengths = {16, 64};
    g.tuPerCore = {1};
    g.coreGrids = {{1, 1}, {2, 2}};
    const std::vector<EvalRecord> recs = engine.run(g);

    const std::string csv = toCsv(recs);
    EXPECT_EQ(csv.find("core."), std::string::npos)
        << "no named-axis columns without named axes";
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, recs.size() + 1); // header + one row each
    EXPECT_NE(csv.find("peak_tops"), std::string::npos);
    EXPECT_NE(csv.find("why"), std::string::npos);
    EXPECT_NE(csv.find("int8"), std::string::npos);

    const std::string json = toJson(recs);
    std::size_t objects = 0;
    for (char c : json)
        objects += c == '{';
    EXPECT_EQ(objects, recs.size());
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"feasible\": true"), std::string::npos);
}

TEST(Export, NamedAxisValuesBecomeColumns)
{
    SweepOptions opts;
    opts.threads = 1;
    SweepEngine engine(datacenterBase(), opts);
    SweepGrid g;
    g.tuLengths = {16};
    g.tuPerCore = {1};
    g.coreGrids = {{1, 1}};
    g.axis("core.vregEntries", {16, 64});
    const std::vector<EvalRecord> recs = engine.run(g);
    ASSERT_EQ(recs.size(), 2u);

    const std::string csv = toCsv(recs);
    EXPECT_NE(csv.find("mul_type,core.vregEntries,feasible"),
              std::string::npos)
        << csv.substr(0, 200);
    EXPECT_NE(csv.find(",16,"), std::string::npos);

    const std::string json = toJson(recs);
    EXPECT_NE(json.find("\"core.vregEntries\": \"64\""),
              std::string::npos);
}

} // namespace
} // namespace neurometer
