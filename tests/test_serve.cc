/**
 * @file
 * Evaluation-service tests: the newline framing layer over real
 * socketpairs, the request/response protocol, the dispatcher driven
 * directly (no sockets), and full client/server round trips — shared
 * EvalCache hits across connections, admission-control rejections,
 * per-request deadlines cancelling a long sweep, malformed input and
 * injected faults answered as structured errors without taking the
 * daemon down.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "neurometer/neurometer.hh"

using namespace neurometer;
using namespace neurometer::serve;

namespace {

/** The test chip: small and cheap, mirrors test_robustness. */
ChipConfig
smallBase()
{
    ChipConfig cfg;
    cfg.nodeNm = 28.0;
    cfg.freqHz = 700e6;
    cfg.totalMemBytes = 8.0 * units::mib;
    cfg.offchipBwBytesPerS = 700e9;
    cfg.nocBisectionBwBytesPerS = 256e9;
    cfg.core.tu.rows = 8;
    cfg.core.tu.cols = 8;
    return cfg;
}

/** A connected AF_UNIX stream pair (framing works on any stream fd). */
struct SocketPair
{
    Fd a, b;

    SocketPair()
    {
        int sv[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        a.reset(sv[0]);
        b.reset(sv[1]);
    }
};

/** One client connection to an in-process Server. */
struct Client
{
    Fd fd;
    LineReader reader;

    explicit Client(std::uint16_t port, std::size_t max_line = 8 << 20)
        : fd(connectLocal(port)), reader(fd.get(), max_line)
    {}

    void send(const std::string &line) { writeLine(fd.get(), line); }

    json::Value
    recv(int timeout_ms = 60000)
    {
        std::string resp;
        const ReadStatus st = reader.readLine(resp, timeout_ms);
        EXPECT_EQ(st, ReadStatus::Line);
        return st == ReadStatus::Line ? json::parse(resp)
                                      : json::Value{};
    }

    json::Value
    call(const std::string &line, int timeout_ms = 60000)
    {
        send(line);
        return recv(timeout_ms);
    }
};

/** {"method": M, "id": ID, "params": {"config": <cfg>, EXTRA}} */
std::string
evalRequest(const ChipConfig &cfg, int id,
            const std::string &extra_params = "")
{
    json::Value req = json::Value::object_();
    json::Value params = json::Value::object_();
    params.set("config", json::Value::string_(cfg.toString()));
    req.set("method", json::Value::string_("eval"))
        .set("id", json::Value::number_(double(id)))
        .set("params", std::move(params));
    std::string line = req.dump();
    if (!extra_params.empty()) {
        // Splice extra params before the closing braces.
        const std::size_t pos = line.rfind("}}");
        line.insert(pos, ", " + extra_params);
    }
    return line;
}

std::uint64_t
counterNow(const std::string &name)
{
    return obs::snapshot().counter(name);
}

ServeOptions
quickOpts(int threads, int max_inflight = 0)
{
    ServeOptions o;
    o.port = 0; // ephemeral
    o.threads = threads;
    o.maxInflight = max_inflight;
    o.pollIntervalMs = 20;
    return o;
}

// ---------------------------------------------------------------------
// Framing (serve/net.hh)

TEST(ServeNet, LineRoundTripAndPipelining)
{
    SocketPair sp;
    // Three frames written as one burst must come back as three lines.
    writeAll(sp.a.get(), "one\ntwo\nthree\n", 14);
    LineReader r(sp.b.get());
    std::string line;
    EXPECT_EQ(r.readLine(line, 1000), ReadStatus::Line);
    EXPECT_EQ(line, "one");
    EXPECT_EQ(r.readLine(line, 1000), ReadStatus::Line);
    EXPECT_EQ(line, "two");
    EXPECT_EQ(r.readLine(line, 1000), ReadStatus::Line);
    EXPECT_EQ(line, "three");
}

TEST(ServeNet, CrlfToleratedAndTimeoutReported)
{
    SocketPair sp;
    writeLine(sp.a.get(), "hello\r");
    LineReader r(sp.b.get());
    std::string line;
    EXPECT_EQ(r.readLine(line, 1000), ReadStatus::Line);
    EXPECT_EQ(line, "hello");
    // Nothing else pending: a bounded wait must report Timeout.
    EXPECT_EQ(r.readLine(line, 20), ReadStatus::Timeout);
}

TEST(ServeNet, EofDropsTornTrailingPartial)
{
    SocketPair sp;
    writeAll(sp.a.get(), "complete\npartial-no-newline", 27);
    sp.a.reset(); // close the writer
    LineReader r(sp.b.get());
    std::string line;
    EXPECT_EQ(r.readLine(line, 1000), ReadStatus::Line);
    EXPECT_EQ(line, "complete");
    EXPECT_EQ(r.readLine(line, 1000), ReadStatus::Eof);
}

TEST(ServeNet, OversizeLineThrowsIoError)
{
    SocketPair sp;
    const std::string big(64, 'x');
    writeLine(sp.a.get(), big);
    LineReader r(sp.b.get(), /*max_line=*/16);
    std::string line;
    EXPECT_THROW(r.readLine(line, 1000), IoError);
}

// ---------------------------------------------------------------------
// Protocol (serve/protocol.hh)

TEST(ServeProtocol, ParseRequestShapes)
{
    const Request full = parseRequest(
        R"({"method": "eval", "id": 7, "params": {"config": "x"}})");
    EXPECT_EQ(full.method, "eval");
    EXPECT_EQ(full.id.asNumber(), 7.0);
    EXPECT_EQ(stringParam(full, "config"), "x");

    // id and params are optional; id echoes as null.
    const Request bare = parseRequest(R"({"method": "health"})");
    EXPECT_EQ(bare.method, "health");
    EXPECT_TRUE(bare.id.isNull());
    EXPECT_TRUE(bare.params.isObject());

    EXPECT_THROW(parseRequest("not json"), ConfigError);
    EXPECT_THROW(parseRequest("[1, 2]"), ConfigError);
    EXPECT_THROW(parseRequest(R"({"id": 1})"), ConfigError);
    EXPECT_THROW(parseRequest(R"({"method": 5})"), ConfigError);
    EXPECT_THROW(parseRequest(R"({"method": "m", "params": []})"),
                 ConfigError);
}

TEST(ServeProtocol, ParamAccessors)
{
    const Request req = parseRequest(
        R"({"method": "m", "params":)"
        R"( {"s": "text", "n": 2.5, "b": true}})");
    EXPECT_EQ(stringParam(req, "s"), "text");
    EXPECT_EQ(numberParamOr(req, "n", 0.0), 2.5);
    EXPECT_EQ(numberParamOr(req, "absent", 9.0), 9.0);
    EXPECT_TRUE(boolParamOr(req, "b", false));
    EXPECT_TRUE(boolParamOr(req, "absent", true));
    EXPECT_THROW(stringParam(req, "n"), ConfigError);
    EXPECT_THROW(numberParamOr(req, "s", 0.0), ConfigError);
    EXPECT_THROW(boolParamOr(req, "s", false), ConfigError);
}

TEST(ServeProtocol, ResponseRendering)
{
    const json::Value id = json::Value::number_(3.0);
    const json::Value ok = json::parse(okResponse(id, "{\"x\": 1}"));
    EXPECT_EQ(ok.find("id")->asNumber(), 3.0);
    EXPECT_TRUE(ok.find("ok")->asBool());
    EXPECT_EQ(ok.find("result")->find("x")->asNumber(), 1.0);

    const json::Value err = json::parse(errorResponse(
        id, PointError{ErrorCategory::Config, "serve.parse", "bad"}));
    EXPECT_FALSE(err.find("ok")->asBool());
    const json::Value *e = err.find("error");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->find("category")->asString(), "config");
    EXPECT_EQ(e->find("site")->asString(), "serve.parse");
    EXPECT_EQ(e->find("message")->asString(), "bad");
}

// ---------------------------------------------------------------------
// Dispatcher, no sockets (Server::dispatchLine)

TEST(ServeDispatch, HealthFieldsMetricsAndErrors)
{
    Server server(quickOpts(/*threads=*/1));

    const json::Value health = json::parse(
        server.dispatchLine(R"({"method": "health", "id": 1})"));
    EXPECT_TRUE(health.find("ok")->asBool());
    EXPECT_EQ(health.find("result")->find("status")->asString(), "ok");
    EXPECT_GE(health.find("result")->find("uptime_s")->asNumber(), 0.0);

    const json::Value fields = json::parse(
        server.dispatchLine(R"({"method": "fields"})"));
    EXPECT_TRUE(fields.find("ok")->asBool());
    EXPECT_TRUE(fields.find("result")->isArray());
    EXPECT_FALSE(fields.find("result")->items.empty());
    EXPECT_NE(fields.find("result")->items[0].find("name"), nullptr);

    const json::Value metrics = json::parse(
        server.dispatchLine(R"({"method": "metrics"})"));
    EXPECT_TRUE(metrics.find("ok")->asBool());
    EXPECT_NE(metrics.find("result")->find("counters"), nullptr);

    const json::Value unknown = json::parse(
        server.dispatchLine(R"({"method": "frobnicate", "id": 9})"));
    EXPECT_FALSE(unknown.find("ok")->asBool());
    EXPECT_EQ(unknown.find("id")->asNumber(), 9.0);
    EXPECT_EQ(unknown.find("error")->find("category")->asString(),
              "config");

    const json::Value garbage =
        json::parse(server.dispatchLine("} not json {"));
    EXPECT_FALSE(garbage.find("ok")->asBool());
    EXPECT_TRUE(garbage.find("id")->isNull());
    EXPECT_EQ(garbage.find("error")->find("site")->asString(),
              "serve.parse");
}

TEST(ServeDispatch, SimulateMatchesTheLibraryEntryPointExactly)
{
    // The acceptance contract: serve `simulate` and the library's
    // simulateWorkload/simResultJson pair (which the CLI's
    // `simulate --json` prints) return the SAME result object for the
    // same (config, workload, dataflow, batch).
    Server server(quickOpts(/*threads=*/1));
    const ChipConfig cfg = smallBase();

    for (const char *df : {"ws", "os", "is"}) {
        json::Value req = json::Value::object_();
        json::Value params = json::Value::object_();
        params.set("config", json::Value::string_(cfg.toString()))
            .set("workload", json::Value::string_("transformer"))
            .set("dataflow", json::Value::string_(df))
            .set("batch", json::Value::number_(4))
            .set("layers", json::Value::boolean_(true));
        req.set("method", json::Value::string_("simulate"))
            .set("id", json::Value::number_(7))
            .set("params", std::move(params));

        const json::Value resp =
            json::parse(server.dispatchLine(req.dump()));
        ASSERT_TRUE(resp.find("ok")->asBool()) << df;

        SimulateRequest sreq;
        sreq.workload = "transformer";
        sreq.dataflow = df;
        sreq.batch = 4;
        const std::string expected = simResultJson(
            simulateWorkload(cfg, sreq), /*include_layers=*/true);
        EXPECT_EQ(resp.find("result")->dump(),
                  json::parse(expected).dump())
            << df;
        EXPECT_EQ(resp.find("result")->find("dataflow")->asString(),
                  df);
        EXPECT_FALSE(resp.find("result")->find("layers")->items.empty())
            << df;
    }

    // Unknown workload / dataflow become structured config errors.
    json::Value bad = json::Value::object_();
    json::Value bp = json::Value::object_();
    bp.set("config", json::Value::string_(cfg.toString()))
        .set("workload", json::Value::string_("vgg16"));
    bad.set("method", json::Value::string_("simulate"))
        .set("id", json::Value::number_(8))
        .set("params", std::move(bp));
    const json::Value err = json::parse(server.dispatchLine(bad.dump()));
    EXPECT_FALSE(err.find("ok")->asBool());
    EXPECT_EQ(err.find("error")->find("category")->asString(),
              "config");
}

TEST(ServeDispatch, SearchIsDeterministicAndSharesTheDaemonCache)
{
    Server server(quickOpts(/*threads=*/2));
    const ChipConfig cfg = smallBase();

    auto searchRequest = [&](int id) {
        json::Value axis1 = json::Value::object_();
        json::Value vals1 = json::Value::array_();
        for (double v : {1.0, 2.0, 4.0})
            vals1.items.push_back(json::Value::number_(v));
        axis1.set("path", json::Value::string_("core.numTU"))
            .set("values", std::move(vals1));
        json::Value axis2 = json::Value::object_();
        json::Value vals2 = json::Value::array_();
        for (double v : {1.0, 2.0})
            vals2.items.push_back(json::Value::number_(v));
        axis2.set("path", json::Value::string_("tx"))
            .set("values", std::move(vals2));
        json::Value axes = json::Value::array_();
        axes.items.push_back(std::move(axis1));
        axes.items.push_back(std::move(axis2));

        json::Value params = json::Value::object_();
        params.set("config", json::Value::string_(cfg.toString()))
            .set("axes", std::move(axes))
            .set("seed", json::Value::number_(3))
            .set("objectives",
                 json::Value::string_("tops_per_w,tops_per_mm2"));
        json::Value req = json::Value::object_();
        req.set("method", json::Value::string_("search"))
            .set("id", json::Value::number_(double(id)))
            .set("params", std::move(params));
        return req.dump();
    };

    const std::uint64_t before = counterNow("serve.searches");
    const json::Value first =
        json::parse(server.dispatchLine(searchRequest(1)));
    ASSERT_TRUE(first.find("ok")->asBool()) << first.dump();
    const json::Value *r1 = first.find("result");
    EXPECT_EQ(r1->find("grid_points")->asNumber(), 6.0);
    EXPECT_EQ(r1->find("evals")->asNumber(), 6.0);
    EXPECT_EQ(r1->find("termination")->asString(), "space");
    EXPECT_FALSE(r1->find("frontier")->items.empty());
    EXPECT_FALSE(r1->find("points")->items.empty());
    EXPECT_EQ(counterNow("serve.searches"), before + 1);

    // Same seed through the same daemon: identical result, and every
    // point rendezvouses with the shared cache instead of recomputing.
    const json::Value second =
        json::parse(server.dispatchLine(searchRequest(2)));
    ASSERT_TRUE(second.find("ok")->asBool());
    const json::Value *r2 = second.find("result");
    EXPECT_EQ(r1->find("points")->dump(), r2->find("points")->dump());
    EXPECT_EQ(r1->find("frontier")->dump(),
              r2->find("frontier")->dump());
    EXPECT_EQ(r2->find("cache_hits")->asNumber(),
              r2->find("evals")->asNumber());

    // Objective specs are validated like everywhere else.
    std::string bad = searchRequest(3);
    const std::size_t pos = bad.find("tops_per_w,tops_per_mm2");
    bad.replace(pos, std::string("tops_per_w,tops_per_mm2").size(),
                "nope");
    const json::Value err = json::parse(server.dispatchLine(bad));
    EXPECT_FALSE(err.find("ok")->asBool());
    EXPECT_EQ(err.find("error")->find("category")->asString(),
              "config");
}

// ---------------------------------------------------------------------
// End-to-end over TCP

TEST(ServeE2E, RepeatEvalIsServedFromTheSharedCache)
{
    Server server(quickOpts(/*threads=*/1));
    server.start();
    const ChipConfig cfg = smallBase();

    Client first(server.port());
    const json::Value r1 = first.call(evalRequest(cfg, 1));
    ASSERT_TRUE(r1.find("ok")->asBool()) << r1.dump();
    EXPECT_EQ(r1.find("id")->asNumber(), 1.0);
    EXPECT_NE(r1.find("result")->find("status"), nullptr);

    // The same config from a *different* connection must hit the
    // process-wide EvalCache: one more cache hit, no new memory
    // searches, and an identical result.
    const std::uint64_t hits0 = counterNow("eval_cache.hits");
    const std::uint64_t searches0 = counterNow("memory_search.searches");
    Client second(server.port());
    const json::Value r2 = second.call(evalRequest(cfg, 2));
    ASSERT_TRUE(r2.find("ok")->asBool()) << r2.dump();
    EXPECT_EQ(counterNow("eval_cache.hits"), hits0 + 1);
    EXPECT_EQ(counterNow("memory_search.searches"), searches0);
    EXPECT_EQ(r1.find("result")->dump(), r2.find("result")->dump());

    server.stop();
    server.stop(); // idempotent
}

TEST(ServeE2E, MalformedLineAnswersErrorAndKeepsTheConnection)
{
    Server server(quickOpts(/*threads=*/1));
    server.start();

    Client c(server.port());
    const json::Value err = c.call("this is not json");
    EXPECT_FALSE(err.find("ok")->asBool());
    EXPECT_EQ(err.find("error")->find("category")->asString(),
              "config");

    // Same connection still serves valid requests.
    const json::Value ok = c.call(R"({"method": "health", "id": 2})");
    EXPECT_TRUE(ok.find("ok")->asBool());
    EXPECT_EQ(ok.find("id")->asNumber(), 2.0);
}

TEST(ServeE2E, EvalDeadlineExpiryIsAStructuredCancelledError)
{
    Server server(quickOpts(/*threads=*/1));
    server.start();

    // A deadline that is already unmeetable when the request arrives.
    Client c(server.port());
    const json::Value r = c.call(
        evalRequest(smallBase(), 4, R"("deadline_ms": 1e-6)"));
    ASSERT_FALSE(r.find("ok")->asBool()) << r.dump();
    EXPECT_EQ(r.find("error")->find("category")->asString(),
              "cancelled");
    EXPECT_EQ(r.find("error")->find("site")->asString(),
              "serve.deadline");

    // The daemon is unharmed.
    EXPECT_TRUE(c.call(evalRequest(smallBase(), 5))
                    .find("ok")
                    ->asBool());
}

TEST(ServeE2E, BusyRejectionAndSweepDeadlineCancellation)
{
    Server server(quickOpts(/*threads=*/1, /*max_inflight=*/1));
    server.start();
    const ChipConfig cfg = smallBase();

    // A sweep big enough to outlive its own deadline at one thread:
    // thousands of distinct clock rates, each a fresh chip build.
    std::string values;
    for (int i = 0; i < 20000; ++i)
        values += (i ? "," : "") + std::to_string(4e8 + 1e4 * i);
    const std::string sweep_req =
        R"({"method": "sweep", "id": 10, "params": {"config": )" +
        json::quote(cfg.toString()) +
        R"(, "axes": [{"path": "freqHz", "values": [)" + values +
        R"(]}], "deadline_ms": 1500}})";

    Client sweeper(server.port());
    sweeper.send(sweep_req);

    // Wait until the sweep holds the only admission slot...
    const auto t0 = std::chrono::steady_clock::now();
    while (server.inflight() < 1 &&
           std::chrono::steady_clock::now() - t0 <
               std::chrono::seconds(30)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(server.inflight(), 1);

    // ...then a second client's eval must be rejected immediately.
    const std::uint64_t rejected0 =
        counterNow("serve.requests.rejected");
    Client other(server.port());
    const json::Value busy = other.call(evalRequest(cfg, 11));
    ASSERT_FALSE(busy.find("ok")->asBool()) << busy.dump();
    EXPECT_EQ(busy.find("error")->find("category")->asString(),
              "busy");
    EXPECT_EQ(busy.find("error")->find("site")->asString(),
              "serve.admission");
    EXPECT_EQ(counterNow("serve.requests.rejected"), rejected0 + 1);

    // The sweep's deadline fires; the daemon returns the partial
    // result instead of late work or a dead connection.
    const json::Value done = sweeper.recv(/*timeout_ms=*/120000);
    ASSERT_TRUE(done.find("ok")->asBool()) << done.dump();
    const json::Value *result = done.find("result");
    EXPECT_TRUE(result->find("cancelled")->asBool());
    EXPECT_GT(result->find("not_evaluated")->asNumber(), 0.0);
    EXPECT_EQ(result->find("total")->asNumber(), 20000.0);

    // With the slot released, the next request is admitted again.
    EXPECT_TRUE(other.call(evalRequest(cfg, 12)).find("ok")->asBool());
}

TEST(ServeE2E, InjectedFaultBecomesAnErrorResponseNotACrash)
{
    Server server(quickOpts(/*threads=*/1));
    server.start();

    // Distinct configs defeat the EvalCache so each eval really
    // builds a chip (the injection site).
    ChipConfig faulty = smallBase();
    faulty.tx = 2;
    faultInjector().armFromSpec("chip.build=0"); // hit indices are 0-based

    Client c(server.port());
    const json::Value r = c.call(evalRequest(faulty, 20));
    faultInjector().reset();
    ASSERT_FALSE(r.find("ok")->asBool()) << r.dump();
    EXPECT_EQ(r.find("error")->find("category")->asString(),
              "injected");

    // The daemon (and the connection) survive; a clean config works.
    ChipConfig healthy = smallBase();
    healthy.ty = 2;
    EXPECT_TRUE(c.call(evalRequest(healthy, 21)).find("ok")->asBool());
}

// ---------------------------------------------------------------------
// HTTP observability plane (serve/http.hh + Server::httpReplyFor)

TEST(ServeHttp, RequestLineParsing)
{
    EXPECT_TRUE(looksLikeHttp("GET /metrics HTTP/1.1"));
    EXPECT_TRUE(looksLikeHttp("POST / HTTP/1.0"));
    EXPECT_FALSE(looksLikeHttp(R"({"method": "health"})"));
    EXPECT_FALSE(looksLikeHttp(""));
    EXPECT_FALSE(looksLikeHttp("GETX / HTTP/1.1"));

    HttpRequest req;
    ASSERT_TRUE(parseHttpRequestLine("GET /metrics HTTP/1.1", req));
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/metrics");
    EXPECT_EQ(req.version, "HTTP/1.1");

    // Query strings are dropped from the target.
    ASSERT_TRUE(parseHttpRequestLine("GET /statusz?verbose=1 HTTP/1.1",
                                     req));
    EXPECT_EQ(req.target, "/statusz");

    EXPECT_FALSE(parseHttpRequestLine("GET /metrics", req));
    EXPECT_FALSE(parseHttpRequestLine("", req));
    EXPECT_FALSE(parseHttpRequestLine("GET  HTTP/1.1", req));
}

TEST(ServeHttp, ResponseShape)
{
    const std::string resp =
        httpResponse(200, "text/plain; charset=utf-8", "hello\n");
    EXPECT_EQ(resp.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(resp.find("Content-Type: text/plain; charset=utf-8\r\n"),
              std::string::npos);
    EXPECT_NE(resp.find("Content-Length: 6\r\n"), std::string::npos);
    EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
    // Body follows the blank line.
    const std::size_t sep = resp.find("\r\n\r\n");
    ASSERT_NE(sep, std::string::npos);
    EXPECT_EQ(resp.substr(sep + 4), "hello\n");

    EXPECT_STREQ(httpStatusText(200), "OK");
    EXPECT_STREQ(httpStatusText(404), "Not Found");
    EXPECT_STREQ(httpStatusText(405), "Method Not Allowed");
}

TEST(ServeHttp, ReplyForDispatchesObservabilityTargets)
{
    Server server(quickOpts(/*threads=*/1));
    // One RPC so the request counters exist in the snapshot.
    server.dispatchLine(R"({"method": "health"})");

    const std::string metrics = server.httpReplyFor("GET", "/metrics");
    EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(metrics.find(obs::kPrometheusContentType),
              std::string::npos);
    EXPECT_NE(metrics.find("serve_requests_ok_total"),
              std::string::npos);

    const std::string health = server.httpReplyFor("GET", "/health");
    EXPECT_EQ(health.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    const std::size_t sep = health.find("\r\n\r\n");
    ASSERT_NE(sep, std::string::npos);
    const json::Value body = json::parse(health.substr(sep + 4));
    EXPECT_EQ(body.find("status")->asString(), "ok");

    const std::string statusz = server.httpReplyFor("GET", "/statusz");
    EXPECT_EQ(statusz.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(statusz.find("uptime_s:"), std::string::npos);
    EXPECT_NE(statusz.find("requests:"), std::string::npos);
    EXPECT_NE(statusz.find("recent events"), std::string::npos);

    EXPECT_EQ(server.httpReplyFor("GET", "/nope")
                  .rfind("HTTP/1.1 404 Not Found\r\n", 0),
              0u);
    EXPECT_EQ(server.httpReplyFor("POST", "/metrics")
                  .rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0),
              0u);
}

TEST(ServeHttp, EndToEndScrapeOverTheJsonListener)
{
    Server server(quickOpts(/*threads=*/1));
    server.start();

    // A JSON client and an HTTP scraper share one listener.
    Client rpc(server.port());
    ASSERT_TRUE(rpc.call(evalRequest(smallBase(), 1))
                    .find("ok")
                    ->asBool());

    const std::uint64_t scrapes0 = counterNow("serve.http_requests");
    const HttpReply metrics = httpGet(server.port(), "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("serve_requests_ok_total"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("eval_cache_misses_total"),
              std::string::npos);
    EXPECT_EQ(metrics.body.back(), '\n');
    EXPECT_EQ(counterNow("serve.http_requests"), scrapes0 + 1);

    const HttpReply health = httpGet(server.port(), "/health");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(json::parse(health.body).find("status")->asString(), "ok");

    const HttpReply statusz = httpGet(server.port(), "/statusz");
    EXPECT_EQ(statusz.status, 200);
    EXPECT_NE(statusz.body.find("uptime_s:"), std::string::npos);

    EXPECT_EQ(httpGet(server.port(), "/missing").status, 404);

    // The JSON connection is still healthy after interleaved scrapes.
    EXPECT_TRUE(
        rpc.call(R"({"method": "health", "id": 2})").find("ok")->asBool());
    server.stop();
}

// ---------------------------------------------------------------------
// Per-request attribution: ids thread through events and trace spans

TEST(ServeAttribution, EventsCarryTheRequestId)
{
    obs::clearEvents();
    Server server(quickOpts(/*threads=*/1));

    const json::Value ok = json::parse(
        server.dispatchLine(R"({"method": "health", "id": 1})"));
    ASSERT_TRUE(ok.find("ok")->asBool());

    std::string rid;
    bool saw_finish = false;
    for (const obs::Event &e : obs::recentEvents()) {
        if (e.type == "request.start") {
            rid = e.requestId;
            EXPECT_EQ(e.detail, "health");
        }
        if (e.type == "request.finish") {
            saw_finish = true;
            EXPECT_EQ(e.requestId, rid);
            EXPECT_EQ(e.detail, "health ok");
        }
    }
    ASSERT_FALSE(rid.empty());
    EXPECT_TRUE(saw_finish);
    // Ids are "r<N>" with N monotonically increasing.
    EXPECT_EQ(rid[0], 'r');
    const int n = std::stoi(rid.substr(1));
    EXPECT_GE(n, 1);

    // A failing request records request.fail under its own id.
    server.dispatchLine(R"({"method": "frobnicate", "id": 2})");
    bool saw_fail = false;
    for (const obs::Event &e : obs::recentEvents()) {
        if (e.type == "request.fail") {
            saw_fail = true;
            EXPECT_EQ(e.requestId, "r" + std::to_string(n + 1));
        }
    }
    EXPECT_TRUE(saw_fail);
    obs::clearEvents();
}

TEST(ServeAttribution, SweepSlowPointsAttributeToTheRequest)
{
    obs::clearEvents();
    obs::clearSlowOps();
    Server server(quickOpts(/*threads=*/1));

    const std::string sweep_req =
        R"({"method": "sweep", "id": 3, "params": {"config": )" +
        json::quote(smallBase().toString()) +
        R"(, "axes": [{"path": "tx", "values": [1, 2]}]}})";
    const json::Value resp = json::parse(server.dispatchLine(sweep_req));
    ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();

    // The request id that answered the RPC...
    std::string rid;
    for (const obs::Event &e : obs::recentEvents())
        if (e.type == "request.start")
            rid = e.requestId;
    ASSERT_FALSE(rid.empty());

    // ...is the one the engine stamped on its slow points.
    const std::vector<obs::SlowOp> ops = obs::slowOps();
    ASSERT_FALSE(ops.empty());
    EXPECT_EQ(ops[0].site, "sweep.point");
    EXPECT_EQ(ops[0].requestId, rid);
    obs::clearEvents();
    obs::clearSlowOps();
}

#if NEUROMETER_TRACE_ENABLED
TEST(ServeAttribution, TraceSpanArgMatchesTheEventRequestId)
{
    obs::clearTrace();
    obs::clearEvents();
    obs::setTraceEnabled(true);
    Server server(quickOpts(/*threads=*/1));
    ASSERT_TRUE(json::parse(server.dispatchLine(R"({"method": "health"})"))
                    .find("ok")
                    ->asBool());

    std::string rid;
    for (const obs::Event &e : obs::recentEvents())
        if (e.type == "request.start")
            rid = e.requestId;
    ASSERT_FALSE(rid.empty());
    const double rid_num = double(std::stoi(rid.substr(1)));

    // The serve.request span's arg is the numeric request id.
    bool saw_span = false;
    const json::Value trace = json::parse(obs::traceToJson());
    for (const json::Value &e : trace.find("traceEvents")->items) {
        if (e.find("ph")->text != "X" ||
            e.find("name")->text != "serve.request")
            continue;
        saw_span = true;
        EXPECT_DOUBLE_EQ(e.find("args")->find("arg")->number, rid_num);
    }
    EXPECT_TRUE(saw_span);
    obs::clearTrace();
    obs::clearEvents();
}
#endif

TEST(ServeE2E, StoppedServerRefusesConnections)
{
    Server server(quickOpts(/*threads=*/1));
    server.start();
    const std::uint16_t port = server.port();
    {
        Client c(port);
        EXPECT_TRUE(
            c.call(R"({"method": "health"})").find("ok")->asBool());
    }
    server.stop();
    EXPECT_THROW(
        {
            Fd fd = connectLocal(port);
            // Some kernels accept into the dead socket's backlog
            // momentarily; a read must still see EOF, not a response.
            LineReader r(fd.get());
            std::string line;
            if (r.readLine(line, 500) == ReadStatus::Eof)
                throw IoError("connection refused or closed");
        },
        IoError);
}

} // namespace
