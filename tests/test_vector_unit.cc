/**
 * @file
 * Vector-unit model tests.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "components/vector_unit.hh"
#include "tech/tech_node.hh"

namespace neurometer {
namespace {

class VuFixture : public ::testing::Test
{
  protected:
    TechNode tech = TechNode::make(28.0);

    VectorUnitConfig
    cfg(int lanes) const
    {
        VectorUnitConfig c;
        c.lanes = lanes;
        c.freqHz = 700e6;
        return c;
    }
};

TEST_F(VuFixture, BreakdownParts)
{
    VectorUnitModel vu(tech, cfg(64));
    EXPECT_NE(vu.breakdown().find("lanes"), nullptr);
    EXPECT_NE(vu.breakdown().find("pipeline"), nullptr);
    EXPECT_NE(vu.breakdown().find("control"), nullptr);
}

TEST_F(VuFixture, AreaNearLinearInLanes)
{
    VectorUnitModel a(tech, cfg(32)), b(tech, cfg(128));
    const double ratio =
        b.breakdown().total().areaUm2 / a.breakdown().total().areaUm2;
    EXPECT_GT(ratio, 3.3);
    EXPECT_LT(ratio, 4.3);
}

TEST_F(VuFixture, PeakOps)
{
    VectorUnitModel vu(tech, cfg(64));
    EXPECT_DOUBLE_EQ(vu.peakOpsPerCycle(), 128.0);
}

TEST_F(VuFixture, SfuAddsAreaButNotCriticalPath)
{
    VectorUnitConfig with = cfg(64);
    VectorUnitConfig without = cfg(64);
    without.hasSfu = false;
    VectorUnitModel a(tech, with), b(tech, without);
    EXPECT_GT(a.breakdown().total().areaUm2,
              b.breakdown().total().areaUm2);
    EXPECT_DOUBLE_EQ(a.minCycleS(), b.minCycleS());
}

TEST_F(VuFixture, DeeperPipelineShortensCycle)
{
    VectorUnitConfig shallow = cfg(64);
    shallow.pipelineStages = 1;
    VectorUnitConfig deep = cfg(64);
    deep.pipelineStages = 6;
    VectorUnitModel a(tech, shallow), b(tech, deep);
    EXPECT_GT(a.minCycleS(), b.minCycleS());
}

TEST_F(VuFixture, RejectsBadConfig)
{
    VectorUnitConfig bad = cfg(0);
    EXPECT_THROW(VectorUnitModel(tech, bad), ConfigError);
    VectorUnitConfig bad2 = cfg(8);
    bad2.pipelineStages = 0;
    EXPECT_THROW(VectorUnitModel(tech, bad2), ConfigError);
}

/** Lane-type sweep. */
class VuTypeSweep : public ::testing::TestWithParam<DataType>
{};

TEST_P(VuTypeSweep, WellFormed)
{
    const TechNode tech = TechNode::make(16.0);
    VectorUnitConfig c;
    c.lanes = 32;
    c.laneType = GetParam();
    c.freqHz = 940e6;
    VectorUnitModel vu(tech, c);
    EXPECT_GT(vu.breakdown().total().areaUm2, 0.0);
    EXPECT_GT(vu.breakdown().total().power.dynamicW, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Types, VuTypeSweep,
                         ::testing::Values(DataType::Int8, DataType::Int32,
                                           DataType::BF16,
                                           DataType::FP32));

} // namespace
} // namespace neurometer
